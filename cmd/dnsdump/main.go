// Command dnsdump prints an SIE transaction stream (from dnsgen or any
// compatible producer) as human-readable summary lines — the debugging
// companion to dnsgen and dnsobs.
//
//	$ dnsgen -duration 5 -o - | dnsdump | head
//	00:00:00.123 192.0.2.10 > 198.51.100.53 udp A www.example.com. NOERROR 23.1ms 120B
//
// With -snap it instead dumps one stored snapshot file as TSV text,
// auto-detecting the on-disk format — the way to inspect the columnar
// store's binary .col files:
//
//	$ dnsdump -snap observatory-data/qname-min-60.col | head
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/tsv"
)

func main() {
	var (
		in       = flag.String("i", "-", "input stream file ('-' for stdin)")
		limit    = flag.Uint64("n", 0, "stop after N transactions (0 = all)")
		qname    = flag.String("grep", "", "only show transactions whose QNAME contains this substring")
		snapFile = flag.String("snap", "", "dump a stored snapshot file (TSV or columnar, auto-detected) as TSV text and exit")
	)
	flag.Parse()
	if *snapFile != "" {
		if err := dumpSnapshot(*snapFile); err != nil {
			fatal(err)
		}
		return
	}

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	reader := sie.NewReader(bufio.NewReaderSize(r, 1<<20))
	var summarizer sie.Summarizer
	summarizer.KeepUnparsableResponses = true
	var tx sie.Transaction
	var sum sie.Summary
	var shown uint64
	for {
		err := reader.Read(&tx)
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		if err := summarizer.Summarize(&tx, &sum); err != nil {
			fmt.Fprintf(out, "%s UNPARSABLE: %v\n", tx.QueryTime.Format("15:04:05.000"), err)
			continue
		}
		if *qname != "" && !strings.Contains(sum.QName, *qname) {
			continue
		}
		proto := "udp"
		if sum.TCP {
			proto = "tcp"
		}
		status := "TIMEOUT"
		detail := ""
		if sum.Answered {
			status = sum.RCode.String()
			if sum.Trunc {
				status += "+TC"
			}
			detail = fmt.Sprintf(" %.1fms %dB", sum.DelayMs, sum.RespSize)
			if sum.AA {
				detail += " aa"
			}
		}
		fmt.Fprintf(out, "%s %s > %s %s %s %s %s%s\n",
			tx.QueryTime.Format("15:04:05.000"),
			sum.Resolver, sum.Nameserver, proto,
			sum.QType, sum.QName, status, detail)
		shown++
		if *limit > 0 && shown >= *limit {
			break
		}
	}
	fmt.Fprintf(os.Stderr, "dnsdump: %d transactions read, %d shown\n", reader.Count(), shown)
}

// dumpSnapshot prints one snapshot file as TSV text, decoding the
// columnar format when the file carries its magic.
func dumpSnapshot(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var snap *tsv.Snapshot
	if tsv.IsColumnar(data) {
		snap, err = tsv.DecodeColumnar(data)
	} else {
		snap, err = tsv.Read(bytes.NewReader(data))
	}
	if err != nil {
		return err
	}
	out := bufio.NewWriter(os.Stdout)
	if _, err := snap.WriteTo(out); err != nil {
		return err
	}
	if err := out.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dnsdump: %s: %d rows, %d columns, %d windows\n",
		path, len(snap.Rows), len(snap.Columns), snap.Windows)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dnsdump:", err)
	os.Exit(1)
}
