// Command experiments regenerates the paper's tables and figures from
// simulated SIE traffic. Run one experiment with -run <id> or everything
// with -run all; ids follow the paper (fig2, tab1, tab2, fig3, tab3,
// fig4, fig5, fig6, fig7, fig8, tab4, fig9, v6on).
//
// It is also a query client for the snapshot store: -ingest persists
// the shared main scenario into a store directory (then cascades it),
// and -top answers paper-style "top objects" questions through the
// query engine instead of in-memory scans:
//
//	$ experiments -store data -backend columnar -ingest
//	$ experiments -store data -backend columnar -top srvip -k 10 -col hits
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"dnsobservatory/internal/experiments"
	"dnsobservatory/internal/tsv"
)

func main() {
	var (
		run    = flag.String("run", "all", "experiment id or 'all'")
		scale  = flag.Float64("scale", 1, "scenario duration multiplier")
		seed   = flag.Int64("seed", 1, "simulation seed")
		outdir = flag.String("outdir", "", "directory for binary artifacts (fig6 heatmap)")
		list   = flag.Bool("list", false, "list experiments and exit")

		storeDir = flag.String("store", "", "snapshot store directory for -ingest/-top")
		backend  = flag.String("backend", tsv.BackendColumnar, "store backend for -ingest/-top: tsv or columnar")
		ingest   = flag.Bool("ingest", false, "persist the main scenario's snapshots into -store and cascade")
		top      = flag.String("top", "", "query -store for the top objects of this aggregation and exit")
		col      = flag.String("col", "", "ranking column for -top (default: first column)")
		cols     = flag.String("cols", "", "CSV column projection for -top (default: all)")
		k        = flag.Int("k", 10, "row cap for -top (0 = all)")
		level    = flag.String("level", "min", "cascade level name for -top (min, 10min, hour, ...)")
		from     = flag.Int64("from", 0, "inclusive window-start lower bound for -top")
		to       = flag.Int64("to", 0, "exclusive window-start upper bound for -top (0 = unbounded)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry {
			fmt.Printf("%-6s %s\n", e.ID, e.Title)
		}
		return
	}

	ctx := experiments.NewContext(experiments.Options{Scale: *scale, Seed: *seed, OutDir: *outdir})

	if *ingest || *top != "" {
		if *storeDir == "" {
			fmt.Fprintln(os.Stderr, "experiments: -ingest/-top require -store")
			os.Exit(2)
		}
		store, err := tsv.NewStoreBackend(*storeDir, *backend)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if *ingest {
			if err := ingestMain(ctx, store); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: ingest:", err)
				os.Exit(1)
			}
		}
		if *top != "" {
			if err := queryTop(store, *top, *level, *cols, *col, *k, *from, *to); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: top:", err)
				os.Exit(1)
			}
		}
		return
	}
	var todo []experiments.Experiment
	if *run == "all" {
		todo = experiments.Registry
	} else {
		e := experiments.Find(*run)
		if e == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *run)
			os.Exit(2)
		}
		todo = []experiments.Experiment{*e}
	}
	for _, e := range todo {
		fmt.Printf("==== %s — %s ====\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(ctx, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("---- %s done in %v ----\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

// ingestMain persists every main-scenario snapshot into the store and
// cascades, so -top queries can range over any level.
func ingestMain(ctx *experiments.Context, store *tsv.Store) error {
	snaps := ctx.MainSnapshots()
	var aggs []string
	files := 0
	var last int64
	for agg, list := range snaps {
		aggs = append(aggs, agg)
		for _, s := range list {
			if err := store.Put(s); err != nil {
				return err
			}
			files++
			if s.Start > last {
				last = s.Start
			}
		}
	}
	sort.Strings(aggs)
	if err := store.CascadeAll(aggs, last+60); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "experiments: ingested %d snapshots (%s) into %s [%s backend]\n",
		files, strings.Join(aggs, ", "), store.Dir(), store.Backend())
	return nil
}

// queryTop answers one top-k question through the query engine and
// prints the result as a table.
func queryTop(store *tsv.Store, agg, levelName, colsCSV, orderBy string, k int, from, to int64) error {
	var lv tsv.Level
	found := false
	for l := tsv.Minutely; l <= tsv.MaxLevel; l++ {
		if l.Name() == levelName {
			lv, found = l, true
			break
		}
	}
	if !found {
		return fmt.Errorf("unknown level %q", levelName)
	}
	q := tsv.Query{Agg: agg, Level: lv, From: from, To: to, OrderBy: orderBy, K: k}
	if colsCSV != "" {
		q.Columns = strings.Split(colsCSV, ",")
	}
	res, err := tsv.RunQuery(store, q)
	if err != nil {
		return err
	}
	fmt.Printf("top %s (%s, %d windows over %d files)\n", agg, res.Level.Name(), res.Windows, res.Files)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "rank\tkey\t%s\n", strings.Join(res.Columns, "\t"))
	for i, r := range res.Rows {
		fmt.Fprintf(tw, "%d\t%s", i+1, r.Key)
		for _, v := range r.Values {
			fmt.Fprintf(tw, "\t%g", v)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}
