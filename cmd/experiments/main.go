// Command experiments regenerates the paper's tables and figures from
// simulated SIE traffic. Run one experiment with -run <id> or everything
// with -run all; ids follow the paper (fig2, tab1, tab2, fig3, tab3,
// fig4, fig5, fig6, fig7, fig8, tab4, fig9, v6on).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dnsobservatory/internal/experiments"
)

func main() {
	var (
		run    = flag.String("run", "all", "experiment id or 'all'")
		scale  = flag.Float64("scale", 1, "scenario duration multiplier")
		seed   = flag.Int64("seed", 1, "simulation seed")
		outdir = flag.String("outdir", "", "directory for binary artifacts (fig6 heatmap)")
		list   = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry {
			fmt.Printf("%-6s %s\n", e.ID, e.Title)
		}
		return
	}

	ctx := experiments.NewContext(experiments.Options{Scale: *scale, Seed: *seed, OutDir: *outdir})
	var todo []experiments.Experiment
	if *run == "all" {
		todo = experiments.Registry
	} else {
		e := experiments.Find(*run)
		if e == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *run)
			os.Exit(2)
		}
		todo = []experiments.Experiment{*e}
	}
	for _, e := range todo {
		fmt.Printf("==== %s — %s ====\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(ctx, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("---- %s done in %v ----\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
