// Command dnsprobe is the active measurement plane: a high-concurrency
// iterative prober that resolves a target feed against the simnet
// population's authoritative servers — shared NS cache, singleflight
// dedup, per-nameserver politeness — and emits every wire exchange as
// SIE transactions to a file, stdout, or a dnsobs collector, closing
// the loop between passive observation and active verification.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"dnsobservatory/internal/chaos"
	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/metrics"
	"dnsobservatory/internal/probe"
	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/simnet"
	"dnsobservatory/internal/transport"
	"dnsobservatory/internal/tsv"
	"dnsobservatory/internal/webui"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "dnsprobe:", err)
		}
		os.Exit(1)
	}
}

// run is main minus the exit code, so tests drive the full flag-to-
// summary path in process.
func run(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("dnsprobe", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		slds  = fs.Int("slds", 4000, "registered domains in the probed population")
		seed  = fs.Int64("seed", 1, "population and probe-order seed")
		count = fs.Int("count", 0, "population sweep size (0 probes every hostname once); ignored with -targets or -from-store")

		targets   = fs.String("targets", "", "file of probe targets, one qname per line ('-' for stdin)")
		fromStore = fs.String("from-store", "", "closed loop: probe the top keys of an aggregation in this snapshot store directory")
		backend   = fs.String("backend", tsv.BackendTSV, "snapshot store backend with -from-store (tsv or columnar)")
		agg       = fs.String("agg", "esld", "aggregation whose keys feed the probe queue with -from-store")
		top       = fs.Int("top", 1000, "how many top keys to probe with -from-store")
		qtype     = fs.String("qtype", "A", "query type for swept and store-fed targets")

		workers    = fs.Int("workers", 512, "concurrent resolver workers")
		queue      = fs.Int("queue", 4096, "probe queue depth")
		timeout    = fs.Duration("timeout", time.Second, "per-exchange timeout before a reply counts as lost")
		retries    = fs.Int("retries", 2, "extra attempts after a timeout or SERVFAIL")
		rate       = fs.Float64("rate", 4000, "per-server token-bucket limit for leaf authoritatives, queries/sec (negative disables)")
		hierRate   = fs.Float64("hier-rate", 500, "per-server limit for root and TLD servers, queries/sec (negative disables)")
		rateWait   = fs.Duration("rate-wait", 250*time.Millisecond, "longest a probe waits for a rate token before dropping as rate-limited")
		delayScale = fs.Float64("delay-scale", 0, "fraction of each server's modeled delay really slept (0 = CPU-bound)")

		out        = fs.String("o", "", "write the probe transaction stream to this file ('-' for stdout)")
		connect    = fs.String("connect", "", "stream transactions to a dnsobs collector (host:port, tcp:host:port or unix:/path)")
		sensorName = fs.String("sensor", "dnsprobe", "sensor name sent in the transport handshake (with -connect)")
		sensorWAL  = fs.String("wal", "", "with -connect: spill unacknowledged batches to a write-ahead log in this directory")

		httpAddr = fs.String("http", "", "serve /metrics and /healthz (with the probe engine status) on this address")

		chaosLoss     = fs.Float64("chaos-loss", 0, "inject reply loss on the probe path at this rate (0..1)")
		chaosDelay    = fs.Float64("chaos-delay", 0, "inject past-timeout reply delays at this rate (0..1)")
		chaosServfail = fs.Float64("chaos-servfail", 0, "inject SERVFAIL rewrites at this rate (0..1)")
		chaosTrunc    = fs.Float64("chaos-trunc", 0, "inject UDP truncation (forcing TCP retries) at this rate (0..1)")
		chaosSeed     = fs.Int64("chaos-seed", 1, "fault injector seed (replay a failing run)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	qt, err := parseQType(*qtype)
	if err != nil {
		return err
	}

	// The population: a frozen, concurrency-safe authoritative plane
	// over the same universe dnsgen generates passive traffic from.
	cfg := simnet.DefaultConfig()
	cfg.SLDs = *slds
	cfg.Seed = *seed
	cfg.QPS = 1
	cfg.Resolvers = 1
	cfg.Duration = 1
	cfg.ColdCaches = true
	sim := simnet.New(cfg)
	auth := simnet.NewAuthority(sim, simnet.AuthorityConfig{DelayScale: *delayScale})

	var exch probe.Exchanger = auth
	var inj *chaos.Injector
	if *chaosLoss > 0 || *chaosDelay > 0 || *chaosServfail > 0 || *chaosTrunc > 0 {
		inj = chaos.New(chaos.Config{
			Seed:              *chaosSeed,
			ProbeLossRate:     *chaosLoss,
			ProbeDelayRate:    *chaosDelay,
			ProbeServFailRate: *chaosServfail,
			ProbeTruncateRate: *chaosTrunc,
			ProbeDelay:        2 * *timeout,
		})
		exch = inj.WrapExchanger(auth)
	}

	// The transaction sink: collector, file, stdout, or none.
	var writeErr error
	var emit func(*sie.Transaction)
	finish := func() error { return nil }
	switch {
	case *connect != "":
		sensor := transport.NewSensor(transport.SensorConfig{
			Addr: *connect, Name: *sensorName, WALDir: *sensorWAL,
		})
		emit = func(tx *sie.Transaction) {
			if writeErr == nil {
				writeErr = sensor.Write(tx)
			}
		}
		finish = sensor.Close
	case *out != "":
		var w io.Writer = os.Stdout
		var f *os.File
		if *out != "-" {
			if f, err = os.Create(*out); err != nil {
				return err
			}
			w = f
		}
		bw := bufio.NewWriterSize(w, 1<<20)
		writer := sie.NewWriter(bw)
		emit = func(tx *sie.Transaction) {
			if writeErr == nil {
				writeErr = writer.Write(tx)
			}
		}
		finish = func() error {
			if err := bw.Flush(); err != nil {
				return err
			}
			if f != nil {
				return f.Close()
			}
			return nil
		}
	}

	reg := metrics.NewRegistry()
	e := probe.New(probe.Config{
		Exchanger:     exch,
		Roots:         auth.RootAddrs(),
		Workers:       *workers,
		QueueDepth:    *queue,
		Timeout:       *timeout,
		Retries:       *retries,
		AuthRate:      *rate,
		HierarchyRate: *hierRate,
		MaxRateWait:   *rateWait,
		Seed:          *seed,
		Metrics:       reg,
		OnTransaction: emit,
	})

	if *httpAddr != "" {
		ui := webui.NewServer(nil)
		ui.Registry = reg
		ui.Probe = func() any { return e.Status() }
		srv := &http.Server{Addr: *httpAddr, Handler: ui.Handler()}
		go srv.ListenAndServe()
		defer srv.Close()
	}

	// The target feed, in priority order of trust: an explicit list, the
	// store's top keys (the passive pipeline naming what to verify), or
	// a sweep of the population's own hostnames.
	submitted := 0
	submit := func(qname string) error {
		qname = strings.TrimSpace(strings.ToLower(qname))
		if qname == "" || strings.HasPrefix(qname, "#") {
			return nil
		}
		if !strings.HasSuffix(qname, ".") {
			qname += "."
		}
		if err := e.Submit(probe.Target{QName: qname, QType: qt}); err != nil {
			return err
		}
		submitted++
		return nil
	}
	switch {
	case *targets != "":
		f := os.Stdin
		if *targets != "-" {
			if f, err = os.Open(*targets); err != nil {
				return err
			}
			defer f.Close()
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			if err := submit(sc.Text()); err != nil {
				return err
			}
		}
		if err := sc.Err(); err != nil {
			return err
		}
	case *fromStore != "":
		store, err := tsv.NewStoreBackend(*fromStore, *backend)
		if err != nil {
			return err
		}
		res, err := tsv.NewEngine(store).Run(tsv.Query{Agg: *agg, Level: tsv.Minutely, K: *top})
		if err != nil {
			return err
		}
		for _, row := range res.Rows {
			if err := submit(row.Key); err != nil {
				return err
			}
		}
	default:
		n := *count
		for _, zone := range sim.Universe.SLDs {
			for _, f := range zone.FQDNs {
				if n > 0 && submitted >= n {
					break
				}
				if err := submit(f.Name); err != nil {
					return err
				}
			}
		}
	}

	start := time.Now()
	if err := e.Close(); err != nil {
		return err
	}
	if err := finish(); err != nil && writeErr == nil {
		writeErr = err
	}
	if writeErr != nil {
		return writeErr
	}

	st := e.Status()
	fmt.Fprintf(stderr, "dnsprobe: %d probes (%d answered, %d timeout, %d rate-limited, %d merged) in %v\n",
		st.Issued, st.Answered, st.Timeouts, st.RateLimited, st.Merged, time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(stderr, "dnsprobe: %d wire queries, %d cache hits (%d negative), %d retries (%d servfail), %d tcp retries\n",
		st.WireQueries, st.CacheHits, st.NegativeHits, st.Retries, st.ServFailRetries, st.TCPRetries)
	if inj != nil {
		cs := inj.Stats()
		fmt.Fprintf(stderr, "dnsprobe: chaos: %d faults (lost %d, delayed %d, servfail %d, truncated %d)\n",
			cs.Total(), cs.ProbeLost, cs.ProbeDelayed, cs.ProbeServFails, cs.ProbeTruncated)
	}
	return nil
}

// parseQType maps a type name to its dnswire constant.
func parseQType(s string) (dnswire.Type, error) {
	for _, t := range []dnswire.Type{
		dnswire.TypeA, dnswire.TypeAAAA, dnswire.TypeNS,
		dnswire.TypeSOA, dnswire.TypeMX, dnswire.TypePTR, dnswire.TypeTXT,
	} {
		if strings.EqualFold(t.String(), s) {
			return t, nil
		}
	}
	return 0, fmt.Errorf("unsupported -qtype %q", s)
}
