// Command dnsobs runs the DNS Observatory pipeline over an SIE stream
// (from dnsgen or any compatible producer): it tracks the standard Top-k
// aggregations, writes minutely TSV snapshots into a store directory,
// runs the time-aggregation cascade and applies the retention policy.
// The stream comes from a file, stdin, or — with -listen — a fleet of
// remote sensors speaking the transport frame protocol.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"dnsobservatory/internal/detect"
	"dnsobservatory/internal/encwire"
	"dnsobservatory/internal/fleet"
	"dnsobservatory/internal/metrics"
	"dnsobservatory/internal/observatory"
	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/transport"
	"dnsobservatory/internal/tsv"
	"dnsobservatory/internal/wal"
	"dnsobservatory/internal/webui"
)

// txSource abstracts where transactions come from: a framed stream file
// (sie.Reader) or a transport collector fed by remote sensors.
type txSource interface {
	Read(*sie.Transaction) error
	Count() uint64
}

// collectorSource adapts the collector's ingest channel to txSource,
// returning io.EOF once the collector is closed and its queue drained.
type collectorSource struct {
	c <-chan *sie.Transaction
	n uint64
}

func (s *collectorSource) Read(tx *sie.Transaction) error {
	rx, ok := <-s.c
	if !ok {
		return io.EOF
	}
	*tx = *rx
	s.n++
	return nil
}

func (s *collectorSource) Count() uint64 { return s.n }

func main() {
	var (
		in       = flag.String("i", "-", "input stream file ('-' for stdin)")
		listen   = flag.String("listen", "", "accept sensor connections on this address (host:port, tcp:host:port or unix:/path) instead of reading a stream")
		dir      = flag.String("dir", "observatory-data", "snapshot store directory")
		backend  = flag.String("store", tsv.BackendTSV, "snapshot store backend: tsv (plain text) or columnar (compressed, indexed)")
		factor   = flag.Float64("k", 0.1, "top-k capacity factor (1.0 = paper scale)")
		retain   = flag.Int("retain-min", 0, "minutely files to retain (0 = all)")
		httpAddr = flag.String("http", "", "serve the live web UI on this address (e.g. :8053)")
		parallel = flag.Bool("parallel", false, "run each aggregation on its own goroutine (legacy fan-out)")
		detectOn = flag.Bool("detect", false, "enable the streaming detection layer (information-content heavy hitters + newly-observed domains; snapshots under detect_esld/detect_nod, live view at /api/detect)")
		sharded  = flag.Bool("sharded", false, "use the key-hash-sharded engine (implied by -shards/-workers)")
		shards   = flag.Int("shards", 0, "sharded engine: key-hash shards per aggregation (0 = one per worker)")
		workers  = flag.Int("workers", 0, "sharded engine: worker goroutines (0 = GOMAXPROCS, capped at 16)")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the web UI (requires -http)")
		report   = flag.Duration("report", 60*time.Second, "self-report interval for the health log line (0 disables)")
		walDir   = flag.String("wal", "", "with -listen: journal accepted frames to a write-ahead log in this directory (durable ingest: spill instead of shed, replay after a crash)")
		overload = flag.String("overload", "block", "with -listen: full-queue policy, block (backpressure) or shed (drop with accounting); a -wal collector spills instead")
		fleetN   = flag.String("fleet", "", "this collector's fleet member name (with -peers)")
		peers    = flag.String("peers", "", "fleet membership as name=addr,name=addr,... including this member (with -fleet)")
		absorb   = flag.String("absorb", "", "comma-separated WAL directories of dead fleet peers to absorb before serving (frames past their last checkpoint re-enter ingest; with -fleet, filtered to sensors this member now owns)")
		encIn    = flag.String("enc-in", "", "encrypted client-leg observation file (from dnsgen -enc-out): accounted into per-mode counters served as dnsobs_encwire_* metrics and /api/encdns")
	)
	flag.Parse()
	if *pprofOn && *httpAddr == "" {
		fatal(errors.New("-pprof requires -http"))
	}
	if *listen != "" && *in != "-" {
		fatal(errors.New("-listen and -i are mutually exclusive"))
	}
	if *listen == "" {
		for name, v := range map[string]string{"-wal": *walDir, "-fleet": *fleetN, "-peers": *peers, "-absorb": *absorb} {
			if v != "" {
				fatal(errors.New(name + " requires -listen"))
			}
		}
	}
	if (*fleetN == "") != (*peers == "") {
		fatal(errors.New("-fleet and -peers go together"))
	}
	var shedPolicy transport.OverloadPolicy
	switch *overload {
	case "block":
		shedPolicy = transport.Block
	case "shed":
		shedPolicy = transport.Shed
	default:
		fatal(fmt.Errorf("unknown -overload policy %q (block or shed)", *overload))
	}

	inFile := os.Stdin
	if *listen == "" && *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		inFile = f
	}

	store, err := tsv.NewStoreBackend(*dir, *backend)
	if err != nil {
		fatal(err)
	}
	if *retain > 0 {
		store.Retain[tsv.Minutely] = *retain
	}

	// Every layer publishes into the process-wide registry: the engines
	// via Config.Metrics, the store and the dependency-free platform
	// counters (hll, sie) via read-through registration.
	reg := metrics.Default()
	observatory.InstrumentPlatform(reg)
	store.Instrument(reg)

	aggs := observatory.StandardAggregations(*factor)
	var aggNames []string
	for _, a := range aggs {
		aggNames = append(aggNames, a.Name)
	}
	if *detectOn {
		if *parallel {
			fatal(errors.New("-detect is not supported with -parallel (the legacy fan-out would duplicate the detection layer per aggregation); use the serial or sharded engine"))
		}
		// Detection snapshots persist and cascade like any aggregation.
		aggNames = append(aggNames, "detect_esld", "detect_nod")
	}

	ui := webui.NewServer(store)
	ui.Registry = reg
	ui.EnablePprof = *pprofOn

	// The encrypted client-leg side channel: observations are summary
	// statistics, not transactions — they accumulate into per-mode
	// counters (wire bytes, messages, handshakes, decode errors) exposed
	// through /metrics, /healthz and /api/encdns, next to the SIE-derived
	// aggregations of the same traffic.
	if *encIn != "" {
		f, err := os.Open(*encIn)
		if err != nil {
			fatal(err)
		}
		acc := encwire.NewAccumulator()
		acc.Instrument(reg)
		ui.Enc = acc.Status
		r := encwire.NewReader(bufio.NewReaderSize(f, 1<<20))
		var obs encwire.Observation
		var encErrs uint64
		for {
			err := r.Read(&obs)
			if err == io.EOF {
				break
			}
			var de *encwire.DecodeError
			if errors.As(err, &de) {
				encErrs++
				acc.RecordDecodeError()
				continue
			}
			if err != nil {
				fatal(fmt.Errorf("enc-in: %w", err))
			}
			acc.Add(&obs)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "dnsobs: enc-in: %d observations (%d undecodable) from %s\n",
			r.Count(), encErrs, *encIn)
	}

	// The parallel and sharded engines call onSnapshot from their own
	// goroutines, so store state is mutex-guarded. checkpoint, when set
	// (serial engine over a -wal collector), advances the journal's
	// consumer checkpoint after each snapshot lands.
	var mu sync.Mutex
	var snapErr error
	var lastStart int64 = -1
	var checkpoint func()
	onSnapshot := func(s *tsv.Snapshot) {
		ui.OnSnapshot(s)
		mu.Lock()
		defer mu.Unlock()
		if snapErr != nil {
			return
		}
		if err := store.Put(s); err != nil {
			snapErr = err
			return
		}
		lastStart = s.Start
		if checkpoint != nil {
			checkpoint()
		}
	}
	failed := func() error {
		mu.Lock()
		defer mu.Unlock()
		return snapErr
	}

	// borrow/ingest/discard/flush/reject/stats abstract over the three
	// engines. borrow returns the summary to fill; ingest commits it at a
	// stream time, discard drops it after a summarize failure, reject
	// additionally accounts it in the engine's ingest statistics.
	var (
		borrow  func() *sie.Summary
		ingest  func(now float64)
		discard func()
		flush   func()
		reject  func()
		stats   func() observatory.EngineStats
	)
	engineCfg := observatory.DefaultConfig()
	engineCfg.Metrics = reg
	if *detectOn {
		dc := detect.DefaultConfig()
		engineCfg.Detect = &dc
	}
	switch {
	case *sharded || *shards > 0 || *workers > 0:
		eng := observatory.NewSharded(observatory.ShardedConfig{
			Config:  engineCfg,
			Shards:  *shards,
			Workers: *workers,
		}, aggs, onSnapshot)
		// Zero-copy path: summarize straight into pooled buffers.
		var cur *sie.Shared
		borrow = func() *sie.Summary { cur = eng.Borrow(); return &cur.Summary }
		ingest = func(now float64) { eng.IngestShared(cur, now) }
		discard = func() { eng.Discard(cur) }
		flush = eng.Close
		reject = eng.RecordRejected
		stats = eng.Stats
		fmt.Fprintf(os.Stderr, "dnsobs: sharded engine: %d shards, %d workers\n",
			eng.Shards(), eng.Workers())
	case *parallel:
		pipe := observatory.NewParallel(engineCfg, aggs, onSnapshot)
		var sum sie.Summary
		borrow = func() *sie.Summary { return &sum }
		ingest = func(now float64) { pipe.Ingest(&sum, now) }
		discard = func() {}
		flush = pipe.Close
		reject = pipe.RecordRejected
		stats = pipe.Stats
	default:
		pipe := observatory.New(engineCfg, aggs, onSnapshot)
		var sum sie.Summary
		borrow = func() *sie.Summary { return &sum }
		ingest = func(now float64) { pipe.Ingest(&sum, now) }
		discard = func() {}
		flush = pipe.Flush
		reject = pipe.RecordRejected
		stats = pipe.Stats
	}

	// The transaction source. stop unblocks a Read in progress: closing
	// the input file for the stream path, closing the collector (which
	// drains its queue, then closes the channel) for the listen path.
	var src txSource
	var stop func()
	var finalize func()
	if *listen != "" {
		ln, err := transport.Listen(*listen)
		if err != nil {
			fatal(err)
		}
		coll := transport.NewCollector(transport.CollectorConfig{
			Metrics:  reg,
			Overload: shedPolicy,
			// A frame that is not a transaction is accounted exactly
			// like an unparsable record from a stream file; the engine
			// counters are atomic, so collector goroutines may call
			// this concurrently with the ingest loop.
			OnReject: func(error) { reject() },
		})
		if *walDir != "" {
			if err := coll.OpenWAL(*walDir, wal.Options{}); err != nil {
				fatal(err)
			}
			if ws, ok := coll.WALStatus(); ok && ws.Recovered > 0 {
				fmt.Fprintf(os.Stderr, "dnsobs: wal: replaying %d unconfirmed transactions from %s\n", ws.Recovered, *walDir)
			}
			ui.WAL = func() any { ws, _ := coll.WALStatus(); return ws }
		}

		// Fleet membership: the ring tells this member which sensors it
		// owns — both for /healthz and for filtering absorbed journals.
		var keep func(sensor string) bool
		if *fleetN != "" {
			rt := fleet.NewRouter(fleet.RouterConfig{})
			ring := fleet.NewRing(0)
			self := false
			for _, kv := range strings.Split(*peers, ",") {
				name, addr, ok := strings.Cut(strings.TrimSpace(kv), "=")
				if !ok || name == "" || addr == "" {
					fatal(fmt.Errorf("bad -peers entry %q (want name=addr)", kv))
				}
				rt.SetNode(name, addr)
				ring.Add(name)
				self = self || name == *fleetN
			}
			if !self {
				fatal(fmt.Errorf("-fleet member %q is not in -peers", *fleetN))
			}
			ui.Fleet = func() any { return rt.Status() }
			keep = func(sensor string) bool {
				owner, ok := ring.Owner(sensor)
				return ok && owner == *fleetN
			}
			fmt.Fprintf(os.Stderr, "dnsobs: fleet member %q of %d\n", *fleetN, len(ring.Nodes()))
		}

		// Absorb dead peers' journals before accepting connections, so
		// their unconfirmed work re-enters ingest ahead of the displaced
		// sensors' retransmissions (which then dedup cleanly).
		if *absorb != "" {
			if *walDir == "" {
				// Without a journal of our own the absorbed backlog has
				// nowhere to spill and could deadlock a full queue.
				fatal(errors.New("-absorb requires -wal"))
			}
			for _, dir := range strings.Split(*absorb, ",") {
				dir = strings.TrimSpace(dir)
				if dir == "" {
					continue
				}
				peerLog, err := wal.Open(dir, wal.Options{})
				if err != nil {
					fatal(fmt.Errorf("absorb %s: %w", dir, err))
				}
				absorbed, deduped, err := coll.AbsorbLog(peerLog, keep)
				closeErr := peerLog.Close()
				if err != nil {
					fatal(fmt.Errorf("absorb %s: %w", dir, err))
				}
				if closeErr != nil {
					fatal(closeErr)
				}
				fmt.Fprintf(os.Stderr, "dnsobs: absorbed %d transactions (%d duplicate) from %s\n", absorbed, deduped, dir)
			}
		}

		go func() {
			if err := coll.Serve(ln); err != nil {
				fmt.Fprintln(os.Stderr, "dnsobs: listen:", err)
			}
		}()
		ui.Sensors = func() any { return coll.Sensors() }
		csrc := &collectorSource{c: coll.C()}
		src = csrc
		stop = func() { coll.Close() }
		if *walDir != "" {
			serial := !*parallel && !*sharded && *shards == 0 && *workers == 0
			if serial {
				// Snapshot n lands when transaction n+1 opens the next
				// window, so everything before the current read is
				// durably applied. Parallel engines apply out of order;
				// they only checkpoint at shutdown.
				ckptBroken := false
				checkpoint = func() {
					if csrc.n == 0 || ckptBroken {
						return
					}
					if err := coll.Checkpoint(csrc.n - 1); err != nil {
						fmt.Fprintln(os.Stderr, "dnsobs: wal checkpoint:", err)
						ckptBroken = true
					}
				}
			}
			finalize = func() {
				if err := coll.Checkpoint(csrc.n); err != nil {
					fmt.Fprintln(os.Stderr, "dnsobs: wal checkpoint:", err)
				}
				if err := coll.CloseWAL(); err != nil {
					fmt.Fprintln(os.Stderr, "dnsobs: wal close:", err)
				}
			}
		}
		fmt.Fprintf(os.Stderr, "dnsobs: listening for sensors on %s\n", *listen)
	} else {
		src = sie.NewReader(bufio.NewReaderSize(io.Reader(inFile), 1<<20))
		stop = func() { inFile.Close() }
	}

	// On SIGINT/SIGTERM, drain what has been read, flush the final
	// partial window and exit 0. stop unblocks a read in progress; a
	// second signal aborts immediately.
	var stopping atomic.Bool
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		fmt.Fprintf(os.Stderr, "dnsobs: %v: draining (signal again to abort)\n", sig)
		stopping.Store(true)
		stop()
		<-sigc
		os.Exit(1)
	}()

	if *httpAddr != "" {
		go func() {
			if err := http.ListenAndServe(*httpAddr, ui.Handler()); err != nil {
				fmt.Fprintln(os.Stderr, "dnsobs: http:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "dnsobs: web UI on http://%s\n", *httpAddr)
	}

	// Periodic one-line self-report so headless runs log their own
	// health: wall-clock ingest rate, heap in use, and live top-k
	// occupancy summed over aggregations.
	if *report > 0 {
		go func() {
			tick := time.NewTicker(*report)
			defer tick.Stop()
			last := uint64(0)
			for range tick.C {
				cur := stats().Ingested
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				fmt.Fprintf(os.Stderr, "dnsobs: report: %.0f tx/s, heap %d MiB, topk %.0f objects\n",
					float64(cur-last)/report.Seconds(),
					ms.HeapAlloc>>20,
					reg.Sum(observatory.MetricTopkOccupancy))
				last = cur
			}
		}()
	}

	var summarizer sie.Summarizer
	summarizer.KeepUnparsableResponses = true
	var tx sie.Transaction
	var errs uint64
	var base time.Time
	wall := time.Now()
	for {
		err := src.Read(&tx)
		if err == io.EOF {
			break
		}
		if err != nil {
			var de *sie.DecodeError
			if errors.As(err, &de) {
				// The frame was sound but its body was not a transaction;
				// the stream is still in sync. (The listen path accounts
				// these collector-side, via OnReject.)
				errs++
				reject()
				continue
			}
			if stopping.Load() {
				break // interrupted mid-read by the signal handler
			}
			fatal(err)
		}
		if tx.QueryTime.IsZero() {
			// An unset timestamp cannot be placed in any window.
			errs++
			reject()
			continue
		}
		if !base.IsZero() && tx.QueryTime.Before(base) {
			// Backdated beyond the very first window; no window exists
			// to clamp it into.
			errs++
			reject()
			continue
		}
		sum := borrow()
		if err := summarizer.Summarize(&tx, sum); err != nil {
			errs++
			discard()
			reject()
			continue
		}
		if base.IsZero() {
			base = tx.QueryTime.Truncate(time.Minute)
		}
		ingest(tx.QueryTime.Sub(base).Seconds())
		if err := failed(); err != nil {
			fatal(err)
		}
		if stopping.Load() && *listen == "" {
			break
		}
	}
	flush()
	if err := failed(); err != nil {
		fatal(err)
	}
	if err := store.CascadeAll(aggNames, lastStart+60); err != nil {
		fatal(err)
	}
	for _, name := range aggNames {
		if err := store.Retention(name); err != nil {
			fatal(err)
		}
	}
	if finalize != nil {
		finalize() // final WAL checkpoint: a clean shutdown replays nothing
	}
	es := stats()
	fmt.Fprintf(os.Stderr, "dnsobs: %d transactions (%d unparsable) -> %s in %v\n",
		src.Count(), errs, *dir, time.Since(wall).Round(time.Millisecond))
	fmt.Fprintf(os.Stderr, "dnsobs: engine: ingested %d accepted %d rejected %d shed %d panics %d quarantined %d; store: %d corrupt snapshots skipped\n",
		es.Ingested, es.Accepted, es.Rejected, es.Shed, es.Panics, es.Quarantined, store.CorruptSkipped())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dnsobs:", err)
	os.Exit(1)
}
