// Command dnsobs runs the DNS Observatory pipeline over an SIE stream
// (from dnsgen or any compatible producer): it tracks the standard Top-k
// aggregations, writes minutely TSV snapshots into a store directory,
// runs the time-aggregation cascade and applies the retention policy.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"dnsobservatory/internal/observatory"
	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/tsv"
	"dnsobservatory/internal/webui"
)

func main() {
	var (
		in       = flag.String("i", "-", "input stream file ('-' for stdin)")
		dir      = flag.String("dir", "observatory-data", "snapshot store directory")
		factor   = flag.Float64("k", 0.1, "top-k capacity factor (1.0 = paper scale)")
		retain   = flag.Int("retain-min", 0, "minutely files to retain (0 = all)")
		httpAddr = flag.String("http", "", "serve the live web UI on this address (e.g. :8053)")
		parallel = flag.Bool("parallel", false, "run each aggregation on its own goroutine (legacy fan-out)")
		sharded  = flag.Bool("sharded", false, "use the key-hash-sharded engine (implied by -shards/-workers)")
		shards   = flag.Int("shards", 0, "sharded engine: key-hash shards per aggregation (0 = one per worker)")
		workers  = flag.Int("workers", 0, "sharded engine: worker goroutines (0 = GOMAXPROCS, capped at 16)")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}

	store, err := tsv.NewStore(*dir)
	if err != nil {
		fatal(err)
	}
	if *retain > 0 {
		store.Retain[tsv.Minutely] = *retain
	}

	aggs := observatory.StandardAggregations(*factor)
	var aggNames []string
	for _, a := range aggs {
		aggNames = append(aggNames, a.Name)
	}

	ui := webui.NewServer(store)
	if *httpAddr != "" {
		go func() {
			if err := http.ListenAndServe(*httpAddr, ui.Handler()); err != nil {
				fmt.Fprintln(os.Stderr, "dnsobs: http:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "dnsobs: web UI on http://%s\n", *httpAddr)
	}

	// The parallel and sharded engines call onSnapshot from their own
	// goroutines, so store state is mutex-guarded.
	var mu sync.Mutex
	var snapErr error
	var lastStart int64 = -1
	onSnapshot := func(s *tsv.Snapshot) {
		ui.OnSnapshot(s)
		mu.Lock()
		defer mu.Unlock()
		if snapErr != nil {
			return
		}
		if err := store.Put(s); err != nil {
			snapErr = err
			return
		}
		lastStart = s.Start
	}
	failed := func() error {
		mu.Lock()
		defer mu.Unlock()
		return snapErr
	}

	// borrow/ingest/discard/flush abstract over the three engines.
	// borrow returns the summary to fill; ingest commits it at a stream
	// time, discard drops it after a summarize failure.
	var (
		borrow  func() *sie.Summary
		ingest  func(now float64)
		discard func()
		flush   func()
	)
	switch {
	case *sharded || *shards > 0 || *workers > 0:
		eng := observatory.NewSharded(observatory.ShardedConfig{
			Config:  observatory.DefaultConfig(),
			Shards:  *shards,
			Workers: *workers,
		}, aggs, onSnapshot)
		// Zero-copy path: summarize straight into pooled buffers.
		var cur *sie.Shared
		borrow = func() *sie.Summary { cur = eng.Borrow(); return &cur.Summary }
		ingest = func(now float64) { eng.IngestShared(cur, now) }
		discard = func() { eng.Discard(cur) }
		flush = eng.Close
		fmt.Fprintf(os.Stderr, "dnsobs: sharded engine: %d shards, %d workers\n",
			eng.Shards(), eng.Workers())
	case *parallel:
		pipe := observatory.NewParallel(observatory.DefaultConfig(), aggs, onSnapshot)
		var sum sie.Summary
		borrow = func() *sie.Summary { return &sum }
		ingest = func(now float64) { pipe.Ingest(&sum, now) }
		discard = func() {}
		flush = pipe.Close
	default:
		pipe := observatory.New(observatory.DefaultConfig(), aggs, onSnapshot)
		var sum sie.Summary
		borrow = func() *sie.Summary { return &sum }
		ingest = func(now float64) { pipe.Ingest(&sum, now) }
		discard = func() {}
		flush = pipe.Flush
	}

	reader := sie.NewReader(bufio.NewReaderSize(r, 1<<20))
	var summarizer sie.Summarizer
	summarizer.KeepUnparsableResponses = true
	var tx sie.Transaction
	var errs uint64
	var base time.Time
	wall := time.Now()
	for {
		err := reader.Read(&tx)
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		sum := borrow()
		if err := summarizer.Summarize(&tx, sum); err != nil {
			errs++
			discard()
			continue
		}
		if base.IsZero() {
			base = tx.QueryTime.Truncate(time.Minute)
		}
		ui.CountIngest()
		ingest(tx.QueryTime.Sub(base).Seconds())
		if err := failed(); err != nil {
			fatal(err)
		}
	}
	flush()
	if err := failed(); err != nil {
		fatal(err)
	}
	for _, name := range aggNames {
		if err := store.Cascade(name, lastStart+60); err != nil {
			fatal(err)
		}
		if err := store.Retention(name); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "dnsobs: %d transactions (%d unparsable) -> %s in %v\n",
		reader.Count(), errs, *dir, time.Since(wall).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dnsobs:", err)
	os.Exit(1)
}
