// Command dnsobs runs the DNS Observatory pipeline over an SIE stream
// (from dnsgen or any compatible producer): it tracks the standard Top-k
// aggregations, writes minutely TSV snapshots into a store directory,
// runs the time-aggregation cascade and applies the retention policy.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"dnsobservatory/internal/observatory"
	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/tsv"
	"dnsobservatory/internal/webui"
)

func main() {
	var (
		in       = flag.String("i", "-", "input stream file ('-' for stdin)")
		dir      = flag.String("dir", "observatory-data", "snapshot store directory")
		factor   = flag.Float64("k", 0.1, "top-k capacity factor (1.0 = paper scale)")
		retain   = flag.Int("retain-min", 0, "minutely files to retain (0 = all)")
		httpAddr = flag.String("http", "", "serve the live web UI on this address (e.g. :8053)")
		parallel = flag.Bool("parallel", false, "run each aggregation on its own goroutine")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}

	store, err := tsv.NewStore(*dir)
	if err != nil {
		fatal(err)
	}
	if *retain > 0 {
		store.Retain[tsv.Minutely] = *retain
	}

	aggs := observatory.StandardAggregations(*factor)
	var aggNames []string
	for _, a := range aggs {
		aggNames = append(aggNames, a.Name)
	}

	ui := webui.NewServer(store)
	if *httpAddr != "" {
		go func() {
			if err := http.ListenAndServe(*httpAddr, ui.Handler()); err != nil {
				fmt.Fprintln(os.Stderr, "dnsobs: http:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "dnsobs: web UI on http://%s\n", *httpAddr)
	}

	var snapErr error
	var lastStart int64 = -1
	onSnapshot := func(s *tsv.Snapshot) {
		ui.OnSnapshot(s)
		if snapErr != nil {
			return
		}
		if err := store.Put(s); err != nil {
			snapErr = err
			return
		}
		lastStart = s.Start
	}
	// ingest/flush abstract over the serial and parallel pipelines.
	var ingest func(*sie.Summary, float64)
	var flush func()
	if *parallel {
		pipe := observatory.NewParallel(observatory.DefaultConfig(), aggs, onSnapshot)
		ingest, flush = pipe.Ingest, pipe.Close
	} else {
		pipe := observatory.New(observatory.DefaultConfig(), aggs, onSnapshot)
		ingest, flush = pipe.Ingest, pipe.Flush
	}

	reader := sie.NewReader(bufio.NewReaderSize(r, 1<<20))
	var summarizer sie.Summarizer
	summarizer.KeepUnparsableResponses = true
	var tx sie.Transaction
	var sum sie.Summary
	var errs uint64
	var base time.Time
	wall := time.Now()
	for {
		err := reader.Read(&tx)
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		if err := summarizer.Summarize(&tx, &sum); err != nil {
			errs++
			continue
		}
		if base.IsZero() {
			base = tx.QueryTime.Truncate(time.Minute)
		}
		ui.CountIngest()
		ingest(&sum, tx.QueryTime.Sub(base).Seconds())
		if snapErr != nil {
			fatal(snapErr)
		}
	}
	flush()
	if snapErr != nil {
		fatal(snapErr)
	}
	for _, name := range aggNames {
		if err := store.Cascade(name, lastStart+60); err != nil {
			fatal(err)
		}
		if err := store.Retention(name); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "dnsobs: %d transactions (%d unparsable) -> %s in %v\n",
		reader.Count(), errs, *dir, time.Since(wall).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dnsobs:", err)
	os.Exit(1)
}
