// Command dnsgen generates a synthetic SIE passive-DNS stream — framed
// transactions of raw IP/UDP/DNS packets — to a file, stdout, or a
// remote dnsobs collector, for feeding into dnsobs or third-party
// tooling.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"dnsobservatory/internal/chaos"
	"dnsobservatory/internal/encwire"
	"dnsobservatory/internal/fleet"
	"dnsobservatory/internal/scenario"
	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/simnet"
	"dnsobservatory/internal/transport"
)

// parseConnect splits a -connect value: one bare address is a single
// collector; a comma-separated list of name=addr pairs is a fleet.
func parseConnect(s string) (names, addrs []string, isFleet bool, err error) {
	parts := strings.Split(s, ",")
	if len(parts) == 1 && !strings.Contains(parts[0], "=") {
		return nil, []string{strings.TrimSpace(parts[0])}, false, nil
	}
	for _, p := range parts {
		name, addr, ok := strings.Cut(strings.TrimSpace(p), "=")
		if !ok || name == "" || addr == "" {
			return nil, nil, false, fmt.Errorf("bad -connect fleet entry %q (want name=addr)", p)
		}
		names = append(names, name)
		addrs = append(addrs, addr)
	}
	return names, addrs, true, nil
}

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "dnsgen:", err)
		}
		os.Exit(1)
	}
}

// run is main minus the exit code: every failure — including a write
// error surfacing mid-stream or only at the final flush — comes back as
// a non-nil error so the process cannot report success for a truncated
// stream.
func run(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("dnsgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out        = fs.String("o", "-", "output file ('-' for stdout)")
		connect    = fs.String("connect", "", "stream to a dnsobs collector (host:port, tcp:host:port or unix:/path) instead of writing a file; a comma-separated list of name=addr pairs addresses a fleet, routed by consistent hash of the sensor name")
		sensorName = fs.String("sensor", "dnsgen", "sensor name sent in the transport handshake (with -connect)")
		sensorWAL  = fs.String("wal", "", "with -connect: spill the unacknowledged batch to a write-ahead log in this directory, so a restarted dnsgen retransmits what was never confirmed")
		duration   = fs.Float64("duration", 300, "simulated seconds")
		qps        = fs.Float64("qps", 2000, "client query events per second")
		resolvers  = fs.Int("resolvers", 200, "recursive resolvers")
		slds       = fs.Int("slds", 4000, "registered domains")
		seed       = fs.Int64("seed", 1, "simulation seed")
		scenPath   = fs.String("scenario", "", "JSON scenario file (overrides the flags above)")
		chaosRate  = fs.Float64("chaos", 0, "inject every stream fault class at this rate (0..1)")
		chaosWrite = fs.Float64("chaos-write", 0, "inject output write failures at this rate (0..1)")
		chaosShort = fs.Float64("chaos-short", 0, "inject short output writes at this rate (0..1)")
		chaosSeed  = fs.Int64("chaos-seed", 1, "fault injector seed (replay a failing run)")
		encMode    = fs.String("enc-mode", "", "model an encrypted client→resolver leg: dot, doh or doq (empty: plaintext)")
		encPad     = fs.String("enc-pad", "none", "padding policy for the encrypted leg: none, edns0 or block")
		encBlock   = fs.Int("enc-block", 0, "block size for -enc-pad block (0: default 256)")
		encOut     = fs.String("enc-out", "", "write the encrypted-leg size/timing observations to this file as framed records (requires -enc-mode)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var inj *chaos.Injector
	if *chaosRate > 0 || *chaosWrite > 0 || *chaosShort > 0 {
		cfg := chaos.Uniform(*chaosRate, *chaosSeed)
		cfg.WriteErrRate = *chaosWrite
		cfg.ShortWriteRate = *chaosShort
		inj = chaos.New(cfg)
	}

	// The modeled encrypted client→resolver leg: -enc-mode turns it on,
	// -enc-out streams its size/timing observations to a framed file the
	// dnsobs -enc-in flag (or encwire.Reader) consumes. The SIE stream
	// itself is byte-identical with or without it.
	var writeErr error
	var encW *encwire.Writer
	var encBW *bufio.Writer
	var encFile *os.File
	encCfg := func(cfg *simnet.Config) {}
	if *encMode != "" {
		mode, err := encwire.ParseMode(*encMode)
		if err != nil {
			return err
		}
		policy, err := encwire.ParsePolicy(*encPad)
		if err != nil {
			return err
		}
		if *encOut != "" {
			if encFile, err = os.Create(*encOut); err != nil {
				return err
			}
			encBW = bufio.NewWriterSize(encFile, 1<<20)
			encW = encwire.NewWriter(encBW)
		}
		encCfg = func(cfg *simnet.Config) {
			cfg.EncMode = mode
			cfg.EncPolicy = policy
			cfg.EncBlock = *encBlock
			if encW != nil {
				cfg.EncEmit = func(o *encwire.Observation) {
					if writeErr == nil {
						writeErr = encW.Write(o)
					}
				}
			}
		}
	} else if *encOut != "" {
		return fmt.Errorf("-enc-out requires -enc-mode")
	}

	var sim *simnet.Sim
	if *scenPath != "" {
		f, err := os.Open(*scenPath)
		if err != nil {
			return err
		}
		doc, err := scenario.Load(f)
		f.Close()
		if err != nil {
			return err
		}
		sim, err = doc.BuildWith(encCfg)
		if err != nil {
			return err
		}
	} else {
		cfg := simnet.DefaultConfig()
		cfg.Duration = *duration
		cfg.QPS = *qps
		cfg.Resolvers = *resolvers
		cfg.SLDs = *slds
		cfg.Seed = *seed
		encCfg(&cfg)
		sim = simnet.New(cfg)
	}

	// The sink: either a transport sensor streaming to a collector, or
	// a framed file/stdout writer. finish flushes and closes it; its
	// error matters as much as a mid-stream one (a buffered tail that
	// never reached the output is still data loss).
	var emit func(*sie.Transaction)
	var finish func() error
	if *connect != "" {
		cfg := transport.SensorConfig{
			Name:   *sensorName,
			WALDir: *sensorWAL,
		}
		if names, addrs, isFleet, err := parseConnect(*connect); err != nil {
			return err
		} else if isFleet {
			// A fleet: route by consistent hash of the sensor name, with
			// automatic failover to the next ring member when the owner
			// stops answering.
			rt := fleet.NewRouter(fleet.RouterConfig{})
			for i := range names {
				rt.SetNode(names[i], addrs[i])
			}
			cfg.Dial = rt.DialFunc(*sensorName)
		} else {
			cfg.Addr = addrs[0]
		}
		sensor := transport.NewSensor(cfg)
		emit = func(tx *sie.Transaction) {
			if writeErr == nil {
				writeErr = sensor.Write(tx)
			}
		}
		finish = sensor.Close
	} else {
		var w io.Writer = os.Stdout
		var f *os.File
		if *out != "-" {
			var err error
			if f, err = os.Create(*out); err != nil {
				return err
			}
			w = f
		}
		if *chaosWrite > 0 || *chaosShort > 0 {
			// Wrap under bufio so injected faults hit the real write
			// path, exactly where a full disk or closed pipe would.
			w = inj.WrapWriter(w)
		}
		bw := bufio.NewWriterSize(w, 1<<20)
		writer := sie.NewWriter(bw)
		emit = func(tx *sie.Transaction) {
			if writeErr == nil {
				writeErr = writer.Write(tx)
			}
		}
		finish = func() error {
			if err := bw.Flush(); err != nil {
				return err
			}
			if f != nil {
				return f.Close()
			}
			return nil
		}
	}

	if inj != nil {
		emit = inj.Transactions(emit)
	}
	start := time.Now()
	stats := sim.Run(emit)
	if inj != nil {
		inj.Flush() // release reorder-held transactions
	}
	finishErr := finish()
	if encFile != nil {
		// Same contract as the main stream: a buffered observation tail
		// that never hit the disk is data loss, not success.
		if err := encBW.Flush(); err != nil && writeErr == nil {
			writeErr = err
		}
		if err := encFile.Close(); err != nil && writeErr == nil {
			writeErr = err
		}
	}
	if writeErr != nil {
		return writeErr
	}
	if finishErr != nil {
		return finishErr
	}
	fmt.Fprintf(stderr, "dnsgen: %d transactions (%d client queries, %d cache hits) in %v\n",
		stats.Transactions, stats.ClientQueries, stats.CacheHits, time.Since(start).Round(time.Millisecond))
	if es, ok := sim.EncStats(); ok {
		fmt.Fprintf(stderr, "dnsgen: enc leg (%s/%s): %d flows, %d messages, %d handshakes, %d up / %d down wire bytes (%d padding)\n",
			*encMode, *encPad, es.Flows, es.Messages, es.Handshakes, es.WireUp, es.WireDown, es.PadBytes)
	}
	if inj != nil {
		cs := inj.Stats()
		fmt.Fprintf(stderr, "dnsgen: chaos: %d faults (corrupt %d, truncate %d, dup %d, reorder %d, zerotime %d, backtime %d, oversize %d, writeerr %d, shortwrite %d)\n",
			cs.Total(), cs.Corrupted, cs.Truncated, cs.Duplicated, cs.Reordered, cs.ZeroTime, cs.BackTime, cs.Oversized, cs.WriteErrs, cs.ShortWrites)
	}
	return nil
}
