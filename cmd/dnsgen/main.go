// Command dnsgen generates a synthetic SIE passive-DNS stream — framed
// transactions of raw IP/UDP/DNS packets — to a file or stdout, for
// feeding into dnsobs or third-party tooling.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dnsobservatory/internal/chaos"
	"dnsobservatory/internal/scenario"
	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/simnet"
)

func main() {
	var (
		out       = flag.String("o", "-", "output file ('-' for stdout)")
		duration  = flag.Float64("duration", 300, "simulated seconds")
		qps       = flag.Float64("qps", 2000, "client query events per second")
		resolvers = flag.Int("resolvers", 200, "recursive resolvers")
		slds      = flag.Int("slds", 4000, "registered domains")
		seed      = flag.Int64("seed", 1, "simulation seed")
		scenPath  = flag.String("scenario", "", "JSON scenario file (overrides the flags above)")
		chaosRate = flag.Float64("chaos", 0, "inject every stream fault class at this rate (0..1)")
		chaosSeed = flag.Int64("chaos-seed", 1, "fault injector seed (replay a failing run)")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)

	var sim *simnet.Sim
	if *scenPath != "" {
		f, err := os.Open(*scenPath)
		if err != nil {
			fatal(err)
		}
		doc, err := scenario.Load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		sim, err = doc.Build()
		if err != nil {
			fatal(err)
		}
	} else {
		cfg := simnet.DefaultConfig()
		cfg.Duration = *duration
		cfg.QPS = *qps
		cfg.Resolvers = *resolvers
		cfg.SLDs = *slds
		cfg.Seed = *seed
		sim = simnet.New(cfg)
	}

	writer := sie.NewWriter(bw)
	start := time.Now()
	var writeErr error
	emit := func(tx *sie.Transaction) {
		if writeErr == nil {
			writeErr = writer.Write(tx)
		}
	}
	var inj *chaos.Injector
	if *chaosRate > 0 {
		inj = chaos.New(chaos.Uniform(*chaosRate, *chaosSeed))
		emit = inj.Transactions(emit)
	}
	stats := sim.Run(emit)
	if inj != nil {
		inj.Flush() // release reorder-held transactions
	}
	if writeErr != nil {
		fatal(writeErr)
	}
	if err := bw.Flush(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "dnsgen: %d transactions (%d client queries, %d cache hits) in %v\n",
		stats.Transactions, stats.ClientQueries, stats.CacheHits, time.Since(start).Round(time.Millisecond))
	if inj != nil {
		cs := inj.Stats()
		fmt.Fprintf(os.Stderr, "dnsgen: chaos: %d faults (corrupt %d, truncate %d, dup %d, reorder %d, zerotime %d, backtime %d, oversize %d)\n",
			cs.Total(), cs.Corrupted, cs.Truncated, cs.Duplicated, cs.Reordered, cs.ZeroTime, cs.BackTime, cs.Oversized)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dnsgen:", err)
	os.Exit(1)
}
