package main

import (
	"bytes"
	"errors"
	"flag"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"time"

	"dnsobservatory/internal/chaos"
	"dnsobservatory/internal/transport"
)

// genArgs are a small, fast simulation shared by the tests.
func genArgs(extra ...string) []string {
	return append([]string{"-duration", "5", "-qps", "100", "-resolvers", "4", "-slds", "50"}, extra...)
}

func TestRunWritesStream(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.sie")
	var stderr bytes.Buffer
	if err := run(genArgs("-o", out), &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "transactions") {
		t.Errorf("no summary on stderr: %q", stderr.String())
	}
}

// Regression: a failing output writer must surface as a non-nil error
// from run (and so a non-zero exit), whether the failure hits
// mid-stream or only when the buffered tail flushes. A generator that
// exits 0 after truncating its stream poisons everything downstream.
func TestRunPropagatesWriteFailure(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.sie")
	var stderr bytes.Buffer
	err := run(genArgs("-o", out, "-chaos-write", "1"), &stderr)
	if err == nil {
		t.Fatal("run reported success with every write failing")
	}
	if !errors.Is(err, chaos.ErrInjectedWrite) {
		t.Fatalf("err = %v, want the injected write error", err)
	}
}

func TestRunPropagatesShortWrite(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.sie")
	var stderr bytes.Buffer
	err := run(genArgs("-o", out, "-chaos-short", "1"), &stderr)
	if err == nil {
		t.Fatal("run reported success with every write truncated")
	}
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("err = %v, want io.ErrShortWrite", err)
	}
}

func TestRunConnectStreamsToCollector(t *testing.T) {
	ln, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coll := transport.NewCollector(transport.CollectorConfig{})
	go coll.Serve(ln)
	var n int
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range coll.C() {
			n++
		}
	}()

	var stderr bytes.Buffer
	if err := run(genArgs("-connect", ln.Addr().String(), "-sensor", "gen-test"), &stderr); err != nil {
		t.Fatal(err)
	}
	// run has returned with sensor.Close() succeeded, so every frame is
	// on the wire — but the collector may still be draining its socket.
	// Its handler exits (marking the sensor disconnected) only after
	// reading through the Bye, so wait for that before closing.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := coll.Sensors()
		if len(s) == 1 && !s[0].Connected {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sensor never finished draining: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
	coll.Close()
	<-done
	if n == 0 {
		t.Fatal("collector received no transactions")
	}
	sensors := coll.Sensors()
	if len(sensors) != 1 || sensors[0].Name != "gen-test" {
		t.Fatalf("sensors = %+v", sensors)
	}
	if uint64(n) != sensors[0].Frames {
		t.Errorf("delivered %d, collector counted %d frames", n, sensors[0].Frames)
	}
}

func TestRunBadFlag(t *testing.T) {
	var stderr bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &stderr); err == nil || err == flag.ErrHelp {
		t.Fatalf("err = %v", err)
	}
}
