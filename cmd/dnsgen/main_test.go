package main

import (
	"bytes"
	"errors"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"time"

	"dnsobservatory/internal/chaos"
	"dnsobservatory/internal/encwire"
	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/transport"
)

// genArgs are a small, fast simulation shared by the tests.
func genArgs(extra ...string) []string {
	return append([]string{"-duration", "5", "-qps", "100", "-resolvers", "4", "-slds", "50"}, extra...)
}

func TestRunWritesStream(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.sie")
	var stderr bytes.Buffer
	if err := run(genArgs("-o", out), &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "transactions") {
		t.Errorf("no summary on stderr: %q", stderr.String())
	}
}

// Regression: a failing output writer must surface as a non-nil error
// from run (and so a non-zero exit), whether the failure hits
// mid-stream or only when the buffered tail flushes. A generator that
// exits 0 after truncating its stream poisons everything downstream.
func TestRunPropagatesWriteFailure(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.sie")
	var stderr bytes.Buffer
	err := run(genArgs("-o", out, "-chaos-write", "1"), &stderr)
	if err == nil {
		t.Fatal("run reported success with every write failing")
	}
	if !errors.Is(err, chaos.ErrInjectedWrite) {
		t.Fatalf("err = %v, want the injected write error", err)
	}
}

func TestRunPropagatesShortWrite(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.sie")
	var stderr bytes.Buffer
	err := run(genArgs("-o", out, "-chaos-short", "1"), &stderr)
	if err == nil {
		t.Fatal("run reported success with every write truncated")
	}
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("err = %v, want io.ErrShortWrite", err)
	}
}

func TestRunConnectStreamsToCollector(t *testing.T) {
	ln, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coll := transport.NewCollector(transport.CollectorConfig{})
	go coll.Serve(ln)
	var n int
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range coll.C() {
			n++
		}
	}()

	var stderr bytes.Buffer
	if err := run(genArgs("-connect", ln.Addr().String(), "-sensor", "gen-test"), &stderr); err != nil {
		t.Fatal(err)
	}
	// run has returned with sensor.Close() succeeded, so every frame is
	// on the wire — but the collector may still be draining its socket.
	// Its handler exits (marking the sensor disconnected) only after
	// reading through the Bye, so wait for that before closing.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := coll.Sensors()
		if len(s) == 1 && !s[0].Connected {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sensor never finished draining: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
	coll.Close()
	<-done
	if n == 0 {
		t.Fatal("collector received no transactions")
	}
	sensors := coll.Sensors()
	if len(sensors) != 1 || sensors[0].Name != "gen-test" {
		t.Fatalf("sensors = %+v", sensors)
	}
	if uint64(n) != sensors[0].Frames {
		t.Errorf("delivered %d, collector counted %d frames", n, sensors[0].Frames)
	}
}

// TestRunEncOut: -enc-mode/-enc-out writes a readable observation
// stream alongside the SIE stream, and the SIE stream matches a
// plaintext run of the same seed record for record once the transport
// tag — the one field encryption is allowed to add — is normalized.
func TestRunEncOut(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "plain.sie")
	encSIE := filepath.Join(dir, "enc.sie")
	encObs := filepath.Join(dir, "enc.obs")
	var stderr bytes.Buffer
	if err := run(genArgs("-o", plain), &stderr); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	if err := run(genArgs("-o", encSIE, "-enc-mode", "doh", "-enc-pad", "edns0", "-enc-out", encObs), &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "enc leg (doh/edns0)") {
		t.Errorf("no enc summary on stderr: %q", stderr.String())
	}
	pf, err := os.Open(plain)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	ef, err := os.Open(encSIE)
	if err != nil {
		t.Fatal(err)
	}
	defer ef.Close()
	pr, er := sie.NewReader(pf), sie.NewReader(ef)
	var ptx, etx sie.Transaction
	for rec := 0; ; rec++ {
		perr, eerr := pr.Read(&ptx), er.Read(&etx)
		if perr == io.EOF || eerr == io.EOF {
			if perr != eerr {
				t.Fatalf("stream lengths differ at record %d: plain %v, enc %v", rec, perr, eerr)
			}
			break
		}
		if perr != nil || eerr != nil {
			t.Fatalf("record %d: plain %v, enc %v", rec, perr, eerr)
		}
		if etx.ClientTransport != sie.TransportDoH {
			t.Fatalf("record %d: ClientTransport = %d, want %d", rec, etx.ClientTransport, sie.TransportDoH)
		}
		etx.ClientTransport = ptx.ClientTransport
		if !bytes.Equal(ptx.Append(nil), etx.Append(nil)) {
			t.Fatalf("record %d differs between plaintext and encrypted runs of the same seed", rec)
		}
	}
	if pr.Count() == 0 {
		t.Fatal("plain stream is empty")
	}
	f, err := os.Open(encObs)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r := encwire.NewReader(f)
	var o encwire.Observation
	n := 0
	for {
		if err := r.Read(&o); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("observation %d: %v", n, err)
		}
		if o.Mode != encwire.ModeDoH || o.Policy != encwire.PadEDNS0 {
			t.Fatalf("observation %d tagged %v/%v", n, o.Mode, o.Policy)
		}
		n++
	}
	if n == 0 {
		t.Fatal("observation file is empty")
	}
}

func TestRunEncFlagErrors(t *testing.T) {
	var stderr bytes.Buffer
	if err := run(genArgs("-enc-mode", "rot13"), &stderr); err == nil {
		t.Error("unknown -enc-mode accepted")
	}
	if err := run(genArgs("-enc-out", filepath.Join(t.TempDir(), "x.obs")), &stderr); err == nil {
		t.Error("-enc-out without -enc-mode accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var stderr bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &stderr); err == nil || err == flag.ErrHelp {
		t.Fatalf("err = %v", err)
	}
}
