module dnsobservatory

go 1.22
