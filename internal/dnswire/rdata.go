package dnswire

import (
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// ErrRDataTruncated is returned when RDATA is shorter than its RDLENGTH
// or than its type requires.
var ErrRDataTruncated = errors.New("dnswire: rdata truncated")

// RData is the typed contents of a resource record. Concrete types cover
// every record the Observatory feature extractor inspects; anything else
// is carried opaquely as RawRData.
type RData interface {
	// appendRData appends the wire encoding. cmap/base support name
	// compression for the name-bearing record types; base is the offset
	// of the RDATA within the message.
	appendRData(dst []byte, cmap map[string]int) ([]byte, error)
	// String returns zone-file-style presentation data.
	String() string
}

// ARData is an IPv4 address record (RFC 1035 §3.4.1).
type ARData struct{ Addr netip.Addr }

func (r ARData) appendRData(dst []byte, _ map[string]int) ([]byte, error) {
	a4 := r.Addr.As4()
	return append(dst, a4[:]...), nil
}

// String implements RData.
func (r ARData) String() string { return r.Addr.String() }

// AAAARData is an IPv6 address record (RFC 3596).
type AAAARData struct{ Addr netip.Addr }

func (r AAAARData) appendRData(dst []byte, _ map[string]int) ([]byte, error) {
	a16 := r.Addr.As16()
	return append(dst, a16[:]...), nil
}

// String implements RData.
func (r AAAARData) String() string { return r.Addr.String() }

// NSRData names an authoritative server (RFC 1035 §3.3.11).
type NSRData struct{ NS string }

func (r NSRData) appendRData(dst []byte, cmap map[string]int) ([]byte, error) {
	return AppendName(dst, r.NS, cmap)
}

// String implements RData.
func (r NSRData) String() string { return Canonical(r.NS) }

// CNAMERData is an alias record (RFC 1035 §3.3.1).
type CNAMERData struct{ Target string }

func (r CNAMERData) appendRData(dst []byte, cmap map[string]int) ([]byte, error) {
	return AppendName(dst, r.Target, cmap)
}

// String implements RData.
func (r CNAMERData) String() string { return Canonical(r.Target) }

// PTRRData is a pointer record (RFC 1035 §3.3.12), used by reverse DNS.
type PTRRData struct{ Target string }

func (r PTRRData) appendRData(dst []byte, cmap map[string]int) ([]byte, error) {
	return AppendName(dst, r.Target, cmap)
}

// String implements RData.
func (r PTRRData) String() string { return Canonical(r.Target) }

// SOARData is a start-of-authority record (RFC 1035 §3.3.13). Minimum is
// the negative-caching TTL (RFC 2308 §4) central to the paper's §5.
type SOARData struct {
	MName   string
	RName   string
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

func (r SOARData) appendRData(dst []byte, cmap map[string]int) ([]byte, error) {
	var err error
	dst, err = AppendName(dst, r.MName, cmap)
	if err != nil {
		return dst, err
	}
	dst, err = AppendName(dst, r.RName, cmap)
	if err != nil {
		return dst, err
	}
	for _, v := range [...]uint32{r.Serial, r.Refresh, r.Retry, r.Expire, r.Minimum} {
		dst = append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	return dst, nil
}

// String implements RData.
func (r SOARData) String() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d",
		Canonical(r.MName), Canonical(r.RName), r.Serial, r.Refresh, r.Retry, r.Expire, r.Minimum)
}

// MXRData is a mail-exchange record (RFC 1035 §3.3.9).
type MXRData struct {
	Preference uint16
	MX         string
}

func (r MXRData) appendRData(dst []byte, cmap map[string]int) ([]byte, error) {
	dst = append(dst, byte(r.Preference>>8), byte(r.Preference))
	return AppendName(dst, r.MX, cmap)
}

// String implements RData.
func (r MXRData) String() string { return fmt.Sprintf("%d %s", r.Preference, Canonical(r.MX)) }

// TXTRData is one or more character strings (RFC 1035 §3.3.14).
type TXTRData struct{ Strings []string }

func (r TXTRData) appendRData(dst []byte, _ map[string]int) ([]byte, error) {
	for _, s := range r.Strings {
		if len(s) > 255 {
			return dst, ErrLabelTooLong
		}
		dst = append(dst, byte(len(s)))
		dst = append(dst, s...)
	}
	return dst, nil
}

// String implements RData.
func (r TXTRData) String() string {
	parts := make([]string, len(r.Strings))
	for i, s := range r.Strings {
		parts[i] = fmt.Sprintf("%q", s)
	}
	return strings.Join(parts, " ")
}

// SRVRData is a service-location record (RFC 2782). The target name is
// not compressed, per the RFC.
type SRVRData struct {
	Priority uint16
	Weight   uint16
	Port     uint16
	Target   string
}

func (r SRVRData) appendRData(dst []byte, _ map[string]int) ([]byte, error) {
	dst = append(dst,
		byte(r.Priority>>8), byte(r.Priority),
		byte(r.Weight>>8), byte(r.Weight),
		byte(r.Port>>8), byte(r.Port))
	return AppendName(dst, r.Target, nil)
}

// String implements RData.
func (r SRVRData) String() string {
	return fmt.Sprintf("%d %d %d %s", r.Priority, r.Weight, r.Port, Canonical(r.Target))
}

// DSRData is a delegation-signer record (RFC 4034 §5).
type DSRData struct {
	KeyTag     uint16
	Algorithm  uint8
	DigestType uint8
	Digest     []byte
}

func (r DSRData) appendRData(dst []byte, _ map[string]int) ([]byte, error) {
	dst = append(dst, byte(r.KeyTag>>8), byte(r.KeyTag), r.Algorithm, r.DigestType)
	return append(dst, r.Digest...), nil
}

// String implements RData.
func (r DSRData) String() string {
	return fmt.Sprintf("%d %d %d %x", r.KeyTag, r.Algorithm, r.DigestType, r.Digest)
}

// RRSIGRData is a DNSSEC signature record (RFC 4034 §3). Its presence in
// a section is what the paper's ok_sec feature checks. The signer name is
// never compressed.
type RRSIGRData struct {
	TypeCovered Type
	Algorithm   uint8
	Labels      uint8
	OriginalTTL uint32
	Expiration  uint32
	Inception   uint32
	KeyTag      uint16
	SignerName  string
	Signature   []byte
}

func (r RRSIGRData) appendRData(dst []byte, _ map[string]int) ([]byte, error) {
	dst = append(dst,
		byte(r.TypeCovered>>8), byte(r.TypeCovered),
		r.Algorithm, r.Labels,
		byte(r.OriginalTTL>>24), byte(r.OriginalTTL>>16), byte(r.OriginalTTL>>8), byte(r.OriginalTTL),
		byte(r.Expiration>>24), byte(r.Expiration>>16), byte(r.Expiration>>8), byte(r.Expiration),
		byte(r.Inception>>24), byte(r.Inception>>16), byte(r.Inception>>8), byte(r.Inception),
		byte(r.KeyTag>>8), byte(r.KeyTag))
	var err error
	dst, err = AppendName(dst, r.SignerName, nil)
	if err != nil {
		return dst, err
	}
	return append(dst, r.Signature...), nil
}

// String implements RData.
func (r RRSIGRData) String() string {
	return fmt.Sprintf("%s %d %d %d sig=%dB", r.TypeCovered, r.Algorithm, r.Labels, r.OriginalTTL, len(r.Signature))
}

// DNSKEYRData is a DNSSEC public key record (RFC 4034 §2).
type DNSKEYRData struct {
	Flags     uint16 // 256 = ZSK, 257 = KSK (SEP bit)
	Protocol  uint8  // always 3
	Algorithm uint8  // 15 = Ed25519 (RFC 8080)
	PublicKey []byte
}

func (r DNSKEYRData) appendRData(dst []byte, _ map[string]int) ([]byte, error) {
	dst = append(dst, byte(r.Flags>>8), byte(r.Flags), r.Protocol, r.Algorithm)
	return append(dst, r.PublicKey...), nil
}

// String implements RData.
func (r DNSKEYRData) String() string {
	return fmt.Sprintf("%d %d %d key=%dB", r.Flags, r.Protocol, r.Algorithm, len(r.PublicKey))
}

// OPTRData is the EDNS0 OPT pseudo-record body (RFC 6891). The UDP
// payload size, extended RCODE and DO bit live in the record's CLASS and
// TTL fields, handled by RR packing; options (e.g. cookies, client
// subnet) are carried as raw code/data pairs — the Observatory pipeline
// drops them during preprocessing for privacy (§2.5).
type OPTRData struct {
	Options []EDNSOption
}

// EDNSOption is a single EDNS0 option TLV.
type EDNSOption struct {
	Code uint16
	Data []byte
}

// EDNS0 option codes relevant to the preprocessing privacy filter.
const (
	EDNSOptionCookie       uint16 = 10 // RFC 7873
	EDNSOptionClientSubnet uint16 = 8  // RFC 7871
)

func (r OPTRData) appendRData(dst []byte, _ map[string]int) ([]byte, error) {
	for _, o := range r.Options {
		dst = append(dst, byte(o.Code>>8), byte(o.Code), byte(len(o.Data)>>8), byte(len(o.Data)))
		dst = append(dst, o.Data...)
	}
	return dst, nil
}

// String implements RData.
func (r OPTRData) String() string { return fmt.Sprintf("OPT %d options", len(r.Options)) }

// RawRData carries the RDATA of record types the package does not model.
type RawRData struct{ Data []byte }

func (r RawRData) appendRData(dst []byte, _ map[string]int) ([]byte, error) {
	return append(dst, r.Data...), nil
}

// String implements RData.
func (r RawRData) String() string { return fmt.Sprintf("\\# %d %x", len(r.Data), r.Data) }

// AppendRData appends rr's RDATA in uncompressed wire form — the
// canonical encoding DNSSEC signs over (RFC 4034 §6.2).
func AppendRData(dst []byte, rr RR) ([]byte, error) {
	if rr.Data == nil {
		return dst, nil
	}
	return rr.Data.appendRData(dst, nil)
}

// unpackRData decodes the RDATA of typ occupying msg[off:off+n]; msg is
// the whole message so compressed names inside RDATA resolve.
func unpackRData(typ Type, msg []byte, off, n int) (RData, error) {
	if off+n > len(msg) {
		return nil, ErrRDataTruncated
	}
	rd := msg[off : off+n]
	switch typ {
	case TypeA:
		if n != 4 {
			return nil, ErrRDataTruncated
		}
		return ARData{netip.AddrFrom4([4]byte(rd))}, nil
	case TypeAAAA:
		if n != 16 {
			return nil, ErrRDataTruncated
		}
		return AAAARData{netip.AddrFrom16([16]byte(rd))}, nil
	case TypeNS:
		name, _, err := ReadName(msg, off)
		return NSRData{name}, err
	case TypeCNAME:
		name, _, err := ReadName(msg, off)
		return CNAMERData{name}, err
	case TypePTR:
		name, _, err := ReadName(msg, off)
		return PTRRData{name}, err
	case TypeSOA:
		mname, p, err := ReadName(msg, off)
		if err != nil {
			return nil, err
		}
		rname, p, err := ReadName(msg, p)
		if err != nil {
			return nil, err
		}
		if p+20 > off+n {
			return nil, ErrRDataTruncated
		}
		u32 := func(i int) uint32 {
			return uint32(msg[i])<<24 | uint32(msg[i+1])<<16 | uint32(msg[i+2])<<8 | uint32(msg[i+3])
		}
		return SOARData{
			MName: mname, RName: rname,
			Serial: u32(p), Refresh: u32(p + 4), Retry: u32(p + 8),
			Expire: u32(p + 12), Minimum: u32(p + 16),
		}, nil
	case TypeMX:
		if n < 3 {
			return nil, ErrRDataTruncated
		}
		name, _, err := ReadName(msg, off+2)
		return MXRData{uint16(rd[0])<<8 | uint16(rd[1]), name}, err
	case TypeTXT:
		var ss []string
		for i := 0; i < n; {
			l := int(rd[i])
			if i+1+l > n {
				return nil, ErrRDataTruncated
			}
			ss = append(ss, string(rd[i+1:i+1+l]))
			i += 1 + l
		}
		return TXTRData{ss}, nil
	case TypeSRV:
		if n < 7 {
			return nil, ErrRDataTruncated
		}
		name, _, err := ReadName(msg, off+6)
		return SRVRData{
			Priority: uint16(rd[0])<<8 | uint16(rd[1]),
			Weight:   uint16(rd[2])<<8 | uint16(rd[3]),
			Port:     uint16(rd[4])<<8 | uint16(rd[5]),
			Target:   name,
		}, err
	case TypeDS:
		if n < 4 {
			return nil, ErrRDataTruncated
		}
		return DSRData{
			KeyTag:     uint16(rd[0])<<8 | uint16(rd[1]),
			Algorithm:  rd[2],
			DigestType: rd[3],
			Digest:     append([]byte(nil), rd[4:]...),
		}, nil
	case TypeRRSIG:
		if n < 18 {
			return nil, ErrRDataTruncated
		}
		signer, p, err := ReadName(msg, off+18)
		if err != nil {
			return nil, err
		}
		if p > off+n {
			return nil, ErrRDataTruncated
		}
		u32 := func(i int) uint32 {
			return uint32(rd[i])<<24 | uint32(rd[i+1])<<16 | uint32(rd[i+2])<<8 | uint32(rd[i+3])
		}
		return RRSIGRData{
			TypeCovered: Type(uint16(rd[0])<<8 | uint16(rd[1])),
			Algorithm:   rd[2],
			Labels:      rd[3],
			OriginalTTL: u32(4),
			Expiration:  u32(8),
			Inception:   u32(12),
			KeyTag:      uint16(rd[16])<<8 | uint16(rd[17]),
			SignerName:  signer,
			Signature:   append([]byte(nil), msg[p:off+n]...),
		}, nil
	case TypeDNSKEY:
		if n < 4 {
			return nil, ErrRDataTruncated
		}
		return DNSKEYRData{
			Flags:     uint16(rd[0])<<8 | uint16(rd[1]),
			Protocol:  rd[2],
			Algorithm: rd[3],
			PublicKey: append([]byte(nil), rd[4:]...),
		}, nil
	case TypeOPT:
		var opts []EDNSOption
		for i := 0; i < n; {
			if i+4 > n {
				return nil, ErrRDataTruncated
			}
			code := uint16(rd[i])<<8 | uint16(rd[i+1])
			l := int(rd[i+2])<<8 | int(rd[i+3])
			if i+4+l > n {
				return nil, ErrRDataTruncated
			}
			opts = append(opts, EDNSOption{code, append([]byte(nil), rd[i+4:i+4+l]...)})
			i += 4 + l
		}
		return OPTRData{opts}, nil
	default:
		return RawRData{append([]byte(nil), rd...)}, nil
	}
}
