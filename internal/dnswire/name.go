package dnswire

import (
	"errors"
	"strings"
)

// Errors returned by the name codec.
var (
	ErrNameTooLong     = errors.New("dnswire: name exceeds 255 octets")
	ErrLabelTooLong    = errors.New("dnswire: label exceeds 63 octets")
	ErrEmptyLabel      = errors.New("dnswire: empty label inside name")
	ErrBadPointer      = errors.New("dnswire: bad compression pointer")
	ErrPointerLoop     = errors.New("dnswire: compression pointer loop")
	ErrNameTruncated   = errors.New("dnswire: name truncated")
	ErrBadLabelType    = errors.New("dnswire: unsupported label type")
	ErrTooManyPointers = errors.New("dnswire: too many compression pointers")
)

const (
	maxNameLen  = 255
	maxLabelLen = 63
	// maxPointers bounds pointer chains; a legitimate name has at most
	// 127 labels, so 128 pointers always indicates a loop or abuse.
	maxPointers = 128
)

// AppendName appends the wire encoding of name to dst. Compression
// pointers into earlier parts of the message are taken from cmap, which
// maps a fully-qualified suffix (e.g. "example.com.") to its offset in
// the message; new suffixes encoded at reachable offsets are added to
// cmap. Pass a nil cmap to disable compression.
//
// name is in presentation form; a trailing dot is optional. The root is
// "" or ".".
func AppendName(dst []byte, name string, cmap map[string]int) ([]byte, error) {
	name = Canonical(name)
	if len(name) > maxNameLen {
		return dst, ErrNameTooLong
	}
	// Walk suffix by suffix so every tail can be compressed independently.
	// The canonical form ends in "."; after the last label the remainder
	// is empty.
	for name != "." && name != "" {
		if cmap != nil {
			if off, ok := cmap[name]; ok {
				return append(dst, 0xc0|byte(off>>8), byte(off)), nil
			}
		}
		dot := strings.IndexByte(name, '.')
		label := name[:dot]
		if len(label) > maxLabelLen {
			return dst, ErrLabelTooLong
		}
		if label == "" {
			return dst, ErrEmptyLabel
		}
		if cmap != nil && len(dst) <= 0x3fff {
			cmap[name] = len(dst)
		}
		dst = append(dst, byte(len(label)))
		dst = append(dst, label...)
		name = name[dot+1:]
	}
	return append(dst, 0), nil
}

// ReadName decodes a (possibly compressed) name starting at msg[off].
// It returns the canonical presentation form (lower-case, trailing dot)
// and the offset just past the name in the original byte stream.
func ReadName(msg []byte, off int) (string, int, error) {
	var sb strings.Builder
	ptrBudget := maxPointers
	end := -1 // offset after the name in the top-level stream
	for {
		if off >= len(msg) {
			return "", 0, ErrNameTruncated
		}
		b := msg[off]
		switch {
		case b == 0:
			if end < 0 {
				end = off + 1
			}
			if sb.Len() == 0 {
				return ".", end, nil
			}
			if sb.Len() > maxNameLen {
				return "", 0, ErrNameTooLong
			}
			return sb.String(), end, nil
		case b&0xc0 == 0xc0:
			if off+1 >= len(msg) {
				return "", 0, ErrNameTruncated
			}
			if end < 0 {
				end = off + 2
			}
			ptr := int(b&0x3f)<<8 | int(msg[off+1])
			if ptr >= off {
				// Forward (or self) pointers are invalid: compression
				// may only reference earlier data (RFC 1035 §4.1.4).
				return "", 0, ErrBadPointer
			}
			ptrBudget--
			if ptrBudget <= 0 {
				return "", 0, ErrTooManyPointers
			}
			off = ptr
		case b&0xc0 != 0:
			return "", 0, ErrBadLabelType
		default:
			n := int(b)
			if off+1+n > len(msg) {
				return "", 0, ErrNameTruncated
			}
			for _, c := range msg[off+1 : off+1+n] {
				if c >= 'A' && c <= 'Z' {
					c += 'a' - 'A'
				}
				sb.WriteByte(c)
			}
			sb.WriteByte('.')
			off += 1 + n
		}
	}
}

// Canonical lower-cases name and guarantees a single trailing dot; the
// root name canonicalizes to ".".
//
// Lower-casing is byte-wise ASCII, matching ReadName: DNS names are
// byte strings, and strings.ToLower would replace non-UTF-8 bytes
// (legal in wire names) with U+FFFD.
func Canonical(name string) string {
	name = asciiLower(name)
	if name == "" || name == "." {
		return "."
	}
	if name[len(name)-1] != '.' {
		name += "."
	}
	return name
}

// asciiLower lower-cases A–Z only, allocating just when needed.
func asciiLower(s string) string {
	i := 0
	for ; i < len(s); i++ {
		if c := s[i]; c >= 'A' && c <= 'Z' {
			break
		}
	}
	if i == len(s) {
		return s
	}
	b := []byte(s)
	for ; i < len(b); i++ {
		if c := b[i]; c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

// CountLabels returns the number of labels in a canonical or
// presentation-form name; the root has zero. This is the paper's
// "qdots" measure of QNAME depth.
func CountLabels(name string) int {
	name = Canonical(name)
	if name == "." {
		return 0
	}
	return strings.Count(name, ".")
}

// LastLabels returns the last n labels of name joined in canonical form,
// or the whole name if it has fewer than n labels. LastLabels("www.bbc.co.uk.", 2)
// is "co.uk.".
func LastLabels(name string, n int) string {
	name = Canonical(name)
	if name == "." || n <= 0 {
		return "."
	}
	// The result is a suffix of the canonical name: walk back over n
	// label boundaries instead of splitting, so no allocation.
	i := len(name) - 1 // the trailing dot
	for ; n > 0; n-- {
		j := strings.LastIndexByte(name[:i], '.')
		if j < 0 {
			return name
		}
		i = j
	}
	return name[i+1:]
}

// TLD returns the last label of name in canonical form ("com."), or "."
// for the root.
func TLD(name string) string { return LastLabels(name, 1) }

// SLD returns the last two labels ("example.com."), or fewer if the name
// is shorter.
func SLD(name string) string { return LastLabels(name, 2) }

// IsSubdomainOf reports whether child is equal to or below parent.
// Both are canonicalized first; every name is a subdomain of the root.
func IsSubdomainOf(child, parent string) bool {
	child, parent = Canonical(child), Canonical(parent)
	if parent == "." {
		return true
	}
	if child == parent {
		return true
	}
	return strings.HasSuffix(child, "."+parent)
}
