package dnswire

import (
	"net/netip"
	"reflect"
	"strings"
	"testing"
)

func TestFlagsRoundTrip(t *testing.T) {
	cases := []Flags{
		{},
		{Response: true, RCode: RCodeNXDomain},
		{Response: true, Authoritative: true, RecursionAvailable: true},
		{RecursionDesired: true, CheckingDisabled: true},
		{Opcode: OpcodeUpdate, Truncated: true, AuthenticData: true},
		{Response: true, Opcode: OpcodeNotify, RCode: RCodeRefused},
	}
	for _, f := range cases {
		if got := UnpackFlags(f.Pack()); got != f {
			t.Errorf("round trip %+v -> %+v", f, got)
		}
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{ID: 0xbeef, Flags: Flags{Response: true, RCode: RCodeServFail}, QD: 1, AN: 2, NS: 3, AR: 4}
	buf := h.AppendHeader(nil)
	if len(buf) != HeaderLen {
		t.Fatalf("header len %d", len(buf))
	}
	got, err := UnpackHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("round trip %+v -> %+v", h, got)
	}
	if _, err := UnpackHeader(buf[:5]); err != ErrHeaderTruncated {
		t.Errorf("short header: %v", err)
	}
}

func exampleResponse() *Message {
	return &Message{
		ID: 4242,
		Flags: Flags{
			Response: true, Authoritative: true,
			RecursionDesired: true, RCode: RCodeNoError,
		},
		Questions: []Question{{Name: "www.example.com.", Type: TypeA, Class: ClassINET}},
		Answers: []RR{
			{Name: "www.example.com.", Type: TypeCNAME, Class: ClassINET, TTL: 300,
				Data: CNAMERData{"web.example.com."}},
			{Name: "web.example.com.", Type: TypeA, Class: ClassINET, TTL: 60,
				Data: ARData{netip.MustParseAddr("192.0.2.1")}},
		},
		Authority: []RR{
			{Name: "example.com.", Type: TypeNS, Class: ClassINET, TTL: 86400,
				Data: NSRData{"ns1.example.com."}},
			{Name: "example.com.", Type: TypeNS, Class: ClassINET, TTL: 86400,
				Data: NSRData{"ns2.example.com."}},
		},
		Additional: []RR{
			{Name: "ns1.example.com.", Type: TypeA, Class: ClassINET, TTL: 86400,
				Data: ARData{netip.MustParseAddr("192.0.2.53")}},
		},
	}
}

func TestMessageRoundTrip(t *testing.T) {
	m := exampleResponse()
	wire, err := m.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	var got Message
	if err := got.Unpack(wire); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, m) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", &got, m)
	}
}

func TestMessageCompressionSavesSpace(t *testing.T) {
	m := exampleResponse()
	wire, err := m.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Without compression the names repeat: www.example.com appears twice,
	// example.com four more times. A compressed message must be much smaller.
	var raw int
	for _, q := range m.Questions {
		raw += len(q.Name) + 6
	}
	if len(wire) >= 180 {
		t.Errorf("message not compressed: %d bytes", len(wire))
	}
}

func TestAllRDataRoundTrip(t *testing.T) {
	rrs := []RR{
		{Name: "a.test.", Type: TypeA, Class: ClassINET, TTL: 1, Data: ARData{netip.MustParseAddr("198.51.100.7")}},
		{Name: "aaaa.test.", Type: TypeAAAA, Class: ClassINET, TTL: 2, Data: AAAARData{netip.MustParseAddr("2001:db8::7")}},
		{Name: "ns.test.", Type: TypeNS, Class: ClassINET, TTL: 3, Data: NSRData{"ns1.test."}},
		{Name: "cn.test.", Type: TypeCNAME, Class: ClassINET, TTL: 4, Data: CNAMERData{"target.test."}},
		{Name: "7.2.0.192.in-addr.arpa.", Type: TypePTR, Class: ClassINET, TTL: 5, Data: PTRRData{"host.test."}},
		{Name: "test.", Type: TypeSOA, Class: ClassINET, TTL: 6, Data: SOARData{
			MName: "ns1.test.", RName: "hostmaster.test.",
			Serial: 2019040101, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300}},
		{Name: "mx.test.", Type: TypeMX, Class: ClassINET, TTL: 7, Data: MXRData{10, "mail.test."}},
		{Name: "txt.test.", Type: TypeTXT, Class: ClassINET, TTL: 8, Data: TXTRData{[]string{"v=spf1 -all", "second"}}},
		{Name: "_sip._udp.test.", Type: TypeSRV, Class: ClassINET, TTL: 9, Data: SRVRData{1, 2, 5060, "sip.test."}},
		{Name: "ds.test.", Type: TypeDS, Class: ClassINET, TTL: 10, Data: DSRData{12345, 8, 2, []byte{1, 2, 3, 4}}},
		{Name: "sig.test.", Type: TypeRRSIG, Class: ClassINET, TTL: 11, Data: RRSIGRData{
			TypeCovered: TypeA, Algorithm: 8, Labels: 2, OriginalTTL: 300,
			Expiration: 1556668800, Inception: 1554076800, KeyTag: 31337,
			SignerName: "test.", Signature: []byte{9, 8, 7}}},
		{Name: "raw.test.", Type: Type(9999), Class: ClassINET, TTL: 12, Data: RawRData{[]byte{0xde, 0xad}}},
	}
	m := &Message{ID: 7, Flags: Flags{Response: true}, Answers: rrs}
	wire, err := m.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	var got Message
	if err := got.Unpack(wire); err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != len(rrs) {
		t.Fatalf("answers %d, want %d", len(got.Answers), len(rrs))
	}
	for i, rr := range rrs {
		if !reflect.DeepEqual(got.Answers[i], rr) {
			t.Errorf("rr %d mismatch:\n got %+v\nwant %+v", i, got.Answers[i], rr)
		}
	}
}

func TestEDNS(t *testing.T) {
	var m Message
	m.Questions = []Question{{Name: "example.com.", Type: TypeAAAA, Class: ClassINET}}
	if m.EDNSDo() {
		t.Error("DO set on message without OPT")
	}
	m.SetEDNS(4096, true)
	if !m.EDNSDo() {
		t.Error("DO not set after SetEDNS")
	}
	opt := m.OPT()
	if opt == nil || Class(opt.Class) != Class(4096) {
		t.Fatalf("OPT = %+v", opt)
	}
	// Replacing must not add a second OPT.
	m.SetEDNS(1232, false)
	if m.EDNSDo() {
		t.Error("DO still set after replacement")
	}
	var count int
	for _, rr := range m.Additional {
		if rr.Type == TypeOPT {
			count++
		}
	}
	if count != 1 {
		t.Errorf("OPT count = %d", count)
	}
	wire, err := m.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	var got Message
	if err := got.Unpack(wire); err != nil {
		t.Fatal(err)
	}
	if got.OPT() == nil {
		t.Error("OPT lost in round trip")
	}
}

func TestEDNSOptionsRoundTrip(t *testing.T) {
	m := &Message{
		Questions: []Question{{Name: "example.com.", Type: TypeA, Class: ClassINET}},
		Additional: []RR{{Name: ".", Type: TypeOPT, Class: 4096, Data: OPTRData{[]EDNSOption{
			{Code: EDNSOptionCookie, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
			{Code: EDNSOptionClientSubnet, Data: []byte{0, 1, 24, 0, 192, 0, 2}},
		}}}},
	}
	wire, err := m.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	var got Message
	if err := got.Unpack(wire); err != nil {
		t.Fatal(err)
	}
	opt := got.OPT()
	if opt == nil {
		t.Fatal("no OPT")
	}
	opts := opt.Data.(OPTRData).Options
	if len(opts) != 2 || opts[0].Code != EDNSOptionCookie || opts[1].Code != EDNSOptionClientSubnet {
		t.Errorf("options = %+v", opts)
	}
}

func TestUnpackRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		// Header claiming 1000 answers in a 20-byte message.
		{0, 1, 0x80, 0, 0, 0, 3, 0xe8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
	}
	var m Message
	for i, buf := range cases {
		if err := m.Unpack(buf); err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
}

func TestUnpackTruncatedEverywhere(t *testing.T) {
	wire, err := exampleResponse().Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	var m Message
	for i := 0; i < len(wire); i++ {
		if err := m.Unpack(wire[:i]); err == nil {
			t.Errorf("truncation at %d accepted", i)
		}
	}
	if err := m.Unpack(wire); err != nil {
		t.Errorf("full message rejected: %v", err)
	}
}

func TestMessageResetReusesCapacity(t *testing.T) {
	wire, err := exampleResponse().Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	var m Message
	if err := m.Unpack(wire); err != nil {
		t.Fatal(err)
	}
	c1 := cap(m.Answers)
	if err := m.Unpack(wire); err != nil {
		t.Fatal(err)
	}
	if cap(m.Answers) != c1 {
		t.Errorf("answers capacity changed %d -> %d", c1, cap(m.Answers))
	}
}

func TestQuestionAccessor(t *testing.T) {
	var m Message
	if q := m.Question(); q != (Question{}) {
		t.Errorf("empty message question = %+v", q)
	}
	m.Questions = []Question{{Name: "x.test.", Type: TypeTXT, Class: ClassINET}}
	if q := m.Question(); q.Name != "x.test." || q.Type != TypeTXT {
		t.Errorf("question = %+v", q)
	}
}

func TestMessageString(t *testing.T) {
	s := exampleResponse().String()
	for _, want := range []string{"www.example.com.", "NOERROR", "ANSWER", "AUTHORITY", "aa"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in:\n%s", want, s)
		}
	}
}
