package dnswire

import "errors"

// HeaderLen is the fixed size of the DNS message header.
const HeaderLen = 12

// ErrHeaderTruncated is returned when fewer than HeaderLen bytes are given.
var ErrHeaderTruncated = errors.New("dnswire: header truncated")

// Header is the fixed 12-octet DNS message header (RFC 1035 §4.1.1).
type Header struct {
	ID    uint16
	Flags Flags
	QD    uint16 // question count
	AN    uint16 // answer count
	NS    uint16 // authority count
	AR    uint16 // additional count
}

// Flags holds the 16 bits of flags/opcode/rcode between ID and QDCOUNT.
type Flags struct {
	Response           bool   // QR
	Opcode             Opcode // 4 bits
	Authoritative      bool   // AA
	Truncated          bool   // TC
	RecursionDesired   bool   // RD
	RecursionAvailable bool   // RA
	AuthenticData      bool   // AD (RFC 4035)
	CheckingDisabled   bool   // CD (RFC 4035)
	RCode              RCode  // 4 bits (extended bits live in OPT TTL)
}

// Pack encodes the flag word.
func (f Flags) Pack() uint16 {
	var w uint16
	if f.Response {
		w |= 1 << 15
	}
	w |= uint16(f.Opcode&0xf) << 11
	if f.Authoritative {
		w |= 1 << 10
	}
	if f.Truncated {
		w |= 1 << 9
	}
	if f.RecursionDesired {
		w |= 1 << 8
	}
	if f.RecursionAvailable {
		w |= 1 << 7
	}
	if f.AuthenticData {
		w |= 1 << 5
	}
	if f.CheckingDisabled {
		w |= 1 << 4
	}
	w |= uint16(f.RCode & 0xf)
	return w
}

// UnpackFlags decodes the flag word.
func UnpackFlags(w uint16) Flags {
	return Flags{
		Response:           w&(1<<15) != 0,
		Opcode:             Opcode(w >> 11 & 0xf),
		Authoritative:      w&(1<<10) != 0,
		Truncated:          w&(1<<9) != 0,
		RecursionDesired:   w&(1<<8) != 0,
		RecursionAvailable: w&(1<<7) != 0,
		AuthenticData:      w&(1<<5) != 0,
		CheckingDisabled:   w&(1<<4) != 0,
		RCode:              RCode(w & 0xf),
	}
}

// AppendHeader appends the 12-octet header to dst.
func (h Header) AppendHeader(dst []byte) []byte {
	w := h.Flags.Pack()
	return append(dst,
		byte(h.ID>>8), byte(h.ID),
		byte(w>>8), byte(w),
		byte(h.QD>>8), byte(h.QD),
		byte(h.AN>>8), byte(h.AN),
		byte(h.NS>>8), byte(h.NS),
		byte(h.AR>>8), byte(h.AR))
}

// UnpackHeader decodes the header at the start of msg.
func UnpackHeader(msg []byte) (Header, error) {
	if len(msg) < HeaderLen {
		return Header{}, ErrHeaderTruncated
	}
	return Header{
		ID:    uint16(msg[0])<<8 | uint16(msg[1]),
		Flags: UnpackFlags(uint16(msg[2])<<8 | uint16(msg[3])),
		QD:    uint16(msg[4])<<8 | uint16(msg[5]),
		AN:    uint16(msg[6])<<8 | uint16(msg[7]),
		NS:    uint16(msg[8])<<8 | uint16(msg[9]),
		AR:    uint16(msg[10])<<8 | uint16(msg[11]),
	}, nil
}
