// Package dnswire implements the DNS wire format (RFC 1035 and friends):
// domain-name encoding with message compression, header and flag packing,
// resource records for the record types observed by DNS Observatory
// (A, NS, CNAME, SOA, PTR, MX, TXT, AAAA, SRV, DS, RRSIG) and the EDNS0
// OPT pseudo-record (RFC 6891).
//
// The package is written in the style of gopacket's DecodingLayerParser:
// a Message can be unpacked repeatedly into the same value, reusing its
// backing slices, so steady-state parsing performs no allocations beyond
// what the record data itself requires.
//
// Concurrency: a Message is single-owner — the buffer reuse that makes
// Unpack allocation-free also means one goroutine per Message. Give each
// worker its own Message value; the package itself holds no shared state.
package dnswire
