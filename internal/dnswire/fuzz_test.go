// Fuzz targets for the wire codec, in an external test package so the
// seed corpus can be drawn from simnet traffic (simnet imports dnswire,
// so the targets cannot live in package dnswire itself).
package dnswire_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/ipwire"
	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/simnet"
)

// fuzzSeeds extracts raw DNS payloads from a small deterministic simnet
// run: real-shaped queries and responses (compression, EDNS, DNSSEC,
// truncation, NXDOMAIN) exercise far more of the codec than hand-rolled
// seeds would.
var fuzzSeeds = sync.OnceValue(func() [][]byte {
	cfg := simnet.DefaultConfig()
	cfg.Duration = 2
	cfg.QPS = 400
	cfg.Resolvers = 20
	cfg.SLDs = 200
	sim := simnet.New(cfg)
	var seeds [][]byte
	const maxSeeds = 64
	sim.Run(func(tx *sie.Transaction) {
		for _, pkt := range [][]byte{tx.QueryPacket, tx.ResponsePacket} {
			if len(seeds) >= maxSeeds || len(pkt) == 0 {
				continue
			}
			p, _, err := ipwire.DecodeAny(pkt)
			if err != nil {
				continue
			}
			seeds = append(seeds, bytes.Clone(p.Payload))
		}
	})
	return seeds
})

// FuzzUnpackMessage asserts that Unpack never panics, and that any
// message it accepts survives a Pack/Unpack round trip with its section
// counts intact.
func FuzzUnpackMessage(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var m dnswire.Message
		if err := m.Unpack(data); err != nil {
			return
		}
		// Accepted messages must re-encode; names that Unpack produced can
		// legitimately be un-encodable (a wire label may contain '.', which
		// presentation form cannot express), so a Pack error is a skip, not
		// a failure.
		packed, err := m.Pack(nil)
		if err != nil {
			return
		}
		var m2 dnswire.Message
		if err := m2.Unpack(packed); err != nil {
			t.Fatalf("repacked message rejected: %v\noriginal: %x\npacked: %x", err, data, packed)
		}
		if len(m2.Questions) != len(m.Questions) ||
			len(m2.Answers) != len(m.Answers) ||
			len(m2.Authority) != len(m.Authority) ||
			len(m2.Additional) != len(m.Additional) {
			t.Fatalf("section counts changed across round trip: %d/%d/%d/%d -> %d/%d/%d/%d",
				len(m.Questions), len(m.Answers), len(m.Authority), len(m.Additional),
				len(m2.Questions), len(m2.Answers), len(m2.Authority), len(m2.Additional))
		}
	})
}

// FuzzReadName asserts that ReadName never panics, stays in bounds, and
// that every name it accepts is canonical and (when encodable) survives
// an AppendName/ReadName round trip.
func FuzzReadName(f *testing.F) {
	for _, s := range fuzzSeeds() {
		if len(s) > dnswire.HeaderLen {
			f.Add(s[dnswire.HeaderLen:]) // question-section name at offset 0
		}
	}
	f.Add([]byte{3, 'w', 'w', 'w', 7, 'e', 'x', 'a', 'm', 'p', 'l', 'e', 3, 'c', 'o', 'm', 0})
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		name, end, err := dnswire.ReadName(data, 0)
		if err != nil {
			return
		}
		if end <= 0 || end > len(data) {
			t.Fatalf("end %d out of bounds for %d-byte input", end, len(data))
		}
		if name != "." && (len(name) > 256 || name[len(name)-1] != '.') {
			t.Fatalf("non-canonical name %q (len %d)", name, len(name))
		}
		if name != dnswire.Canonical(name) {
			t.Fatalf("name %q is not canonical", name)
		}
		if strings.Contains(name, "..") {
			// A wire label ending in '.' yields "..", which presentation
			// form cannot express; AppendName would silently re-split it.
			return
		}
		wire, err := dnswire.AppendName(nil, name, nil)
		if err != nil {
			return // e.g. a label over 63 octets assembled via pointers
		}
		name2, _, err := dnswire.ReadName(wire, 0)
		if err != nil {
			t.Fatalf("re-reading re-encoded name %q: %v", name, err)
		}
		if name2 != name {
			t.Fatalf("round trip changed name: %q -> %q", name, name2)
		}
	})
}
