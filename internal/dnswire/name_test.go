package dnswire

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCanonical(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "."},
		{".", "."},
		{"com", "com."},
		{"COM.", "com."},
		{"WwW.Example.COM", "www.example.com."},
		{"example.com.", "example.com."},
	}
	for _, c := range cases {
		if got := Canonical(c.in); got != c.want {
			t.Errorf("Canonical(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCountLabels(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{".", 0},
		{"com", 1},
		{"example.com", 2},
		{"www.example.com.", 3},
		{"a.b.c.d.e.f", 6},
	}
	for _, c := range cases {
		if got := CountLabels(c.in); got != c.want {
			t.Errorf("CountLabels(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestLastLabels(t *testing.T) {
	cases := []struct {
		in   string
		n    int
		want string
	}{
		{"www.bbc.co.uk", 1, "uk."},
		{"www.bbc.co.uk", 2, "co.uk."},
		{"www.bbc.co.uk", 3, "bbc.co.uk."},
		{"www.bbc.co.uk", 9, "www.bbc.co.uk."},
		{"com", 2, "com."},
		{".", 1, "."},
		{"x.y", 0, "."},
	}
	for _, c := range cases {
		if got := LastLabels(c.in, c.n); got != c.want {
			t.Errorf("LastLabels(%q, %d) = %q, want %q", c.in, c.n, got, c.want)
		}
	}
}

func TestTLDAndSLD(t *testing.T) {
	if got := TLD("www.example.com"); got != "com." {
		t.Errorf("TLD = %q", got)
	}
	if got := SLD("www.example.com"); got != "example.com." {
		t.Errorf("SLD = %q", got)
	}
}

func TestIsSubdomainOf(t *testing.T) {
	cases := []struct {
		child, parent string
		want          bool
	}{
		{"www.example.com", "example.com", true},
		{"example.com", "example.com", true},
		{"example.com", "com", true},
		{"anything.", ".", true},
		{"notexample.com", "example.com", false},
		{"example.org", "example.com", false},
		{"com", "example.com", false},
	}
	for _, c := range cases {
		if got := IsSubdomainOf(c.child, c.parent); got != c.want {
			t.Errorf("IsSubdomainOf(%q, %q) = %v, want %v", c.child, c.parent, got, c.want)
		}
	}
}

func TestNameRoundTrip(t *testing.T) {
	names := []string{".", "com.", "example.com.", "www.example.com.",
		"a.very.deep.chain.of.labels.example.net.",
		strings.Repeat("a", 63) + ".example.org."}
	for _, name := range names {
		buf, err := AppendName(nil, name, nil)
		if err != nil {
			t.Fatalf("AppendName(%q): %v", name, err)
		}
		got, end, err := ReadName(buf, 0)
		if err != nil {
			t.Fatalf("ReadName(%q): %v", name, err)
		}
		if got != name {
			t.Errorf("round trip %q -> %q", name, got)
		}
		if end != len(buf) {
			t.Errorf("end = %d, want %d", end, len(buf))
		}
	}
}

func TestNameCompression(t *testing.T) {
	cmap := make(map[string]int)
	buf, err := AppendName(nil, "example.com.", cmap)
	if err != nil {
		t.Fatal(err)
	}
	full := len(buf)
	buf, err = AppendName(buf, "www.example.com.", cmap)
	if err != nil {
		t.Fatal(err)
	}
	// "www" label (4 bytes) + 2-byte pointer instead of re-encoding.
	if len(buf)-full != 6 {
		t.Errorf("compressed suffix used %d bytes, want 6", len(buf)-full)
	}
	name, _, err := ReadName(buf, full)
	if err != nil {
		t.Fatal(err)
	}
	if name != "www.example.com." {
		t.Errorf("decoded %q", name)
	}
}

func TestNameCompressionSharedTail(t *testing.T) {
	cmap := make(map[string]int)
	var buf []byte
	var offs []int
	names := []string{"a.example.com.", "b.example.com.", "c.b.example.com.", "example.com."}
	for _, n := range names {
		offs = append(offs, len(buf))
		var err error
		buf, err = AppendName(buf, n, cmap)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i, n := range names {
		got, _, err := ReadName(buf, offs[i])
		if err != nil {
			t.Fatalf("ReadName(%q): %v", n, err)
		}
		if got != n {
			t.Errorf("decoded %q, want %q", got, n)
		}
	}
}

func TestNameErrors(t *testing.T) {
	if _, err := AppendName(nil, strings.Repeat("a", 64)+".com", nil); err != ErrLabelTooLong {
		t.Errorf("long label: %v", err)
	}
	long := strings.Repeat("abcdefgh.", 32) // 288 > 255
	if _, err := AppendName(nil, long, nil); err != ErrNameTooLong {
		t.Errorf("long name: %v", err)
	}
	if _, err := AppendName(nil, "a..com", nil); err != ErrEmptyLabel {
		t.Errorf("empty label: %v", err)
	}
}

func TestReadNameErrors(t *testing.T) {
	cases := []struct {
		name string
		buf  []byte
		err  error
	}{
		{"empty", nil, ErrNameTruncated},
		{"cut label", []byte{5, 'a', 'b'}, ErrNameTruncated},
		{"no terminator", []byte{1, 'a'}, ErrNameTruncated},
		{"forward pointer", []byte{0xc0, 10}, ErrBadPointer},
		{"self pointer", []byte{0xc0, 0}, ErrBadPointer},
		{"cut pointer", []byte{0xc0}, ErrNameTruncated},
		{"bad label type", []byte{0x80, 0}, ErrBadLabelType},
	}
	for _, c := range cases {
		if _, _, err := ReadName(c.buf, 0); err != c.err {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.err)
		}
	}
}

func TestReadNamePointerChainTerminates(t *testing.T) {
	// Build a long chain of backward pointers; must error out, not hang.
	buf := []byte{0} // offset 0: root
	for i := 0; i < 300; i++ {
		off := len(buf) - 2
		if off < 0 {
			off = 0
		}
		buf = append(buf, 0xc0|byte(off>>8), byte(off))
	}
	_, _, err := ReadName(buf, len(buf)-2)
	if err != nil && err != ErrTooManyPointers {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestNameRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gen := func() string {
		n := rng.Intn(5) + 1
		labels := make([]string, n)
		for i := range labels {
			l := rng.Intn(10) + 1
			b := make([]byte, l)
			for j := range b {
				b[j] = byte('a' + rng.Intn(26))
			}
			labels[i] = string(b)
		}
		return strings.Join(labels, ".") + "."
	}
	f := func() bool {
		name := gen()
		buf, err := AppendName(nil, name, nil)
		if err != nil {
			return false
		}
		got, _, err := ReadName(buf, 0)
		return err == nil && got == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParseType(t *testing.T) {
	for typ, name := range typeNames {
		if got := ParseType(name); got != typ {
			t.Errorf("ParseType(%q) = %v, want %v", name, got, typ)
		}
	}
	if got := ParseType("TYPE999"); got != Type(999) {
		t.Errorf("ParseType(TYPE999) = %v", got)
	}
	if got := ParseType("BOGUS"); got != TypeNone {
		t.Errorf("ParseType(BOGUS) = %v", got)
	}
	if s := Type(9999).String(); s != "TYPE9999" {
		t.Errorf("Type(9999).String() = %q", s)
	}
}
