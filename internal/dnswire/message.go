package dnswire

import (
	"errors"
	"fmt"
	"strings"
)

// Errors returned by the message codec.
var (
	ErrMessageTruncated = errors.New("dnswire: message truncated")
	ErrTooManyRecords   = errors.New("dnswire: record count exceeds message size")
)

// ParseError reports where in a message Unpack gave up: which section
// ("header", "question", "answer", "authority", "additional") and which
// entry within it. It unwraps to the codec sentinel (ErrMessageTruncated,
// ErrBadPointer, …), so errors.Is checks written against the sentinels
// keep working; the location exists for operators triaging rejected
// traffic, not for control flow.
type ParseError struct {
	Section string
	Index   int
	Err     error
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("dnswire: %s[%d]: %v", e.Section, e.Index, e.Err)
}

// Unwrap returns the underlying codec error.
func (e *ParseError) Unwrap() error { return e.Err }

// Question is a single entry of the question section.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// String returns "name TYPE CLASS".
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", Canonical(q.Name), q.Class, q.Type)
}

// RR is a resource record from any of the three record sections.
type RR struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32
	Data  RData
}

// String returns a zone-file-style line.
func (rr RR) String() string {
	return fmt.Sprintf("%s %d %s %s %s", Canonical(rr.Name), rr.TTL, rr.Class, rr.Type, rr.Data)
}

// Message is a full DNS message. The zero value is an empty query.
type Message struct {
	ID    uint16
	Flags Flags

	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR
}

// Reset clears the message for reuse, keeping section slice capacity so
// steady-state Unpack loops do not reallocate.
func (m *Message) Reset() {
	m.ID = 0
	m.Flags = Flags{}
	m.Questions = m.Questions[:0]
	m.Answers = m.Answers[:0]
	m.Authority = m.Authority[:0]
	m.Additional = m.Additional[:0]
}

// Question returns the first question, or a zero Question if the section
// is empty. Virtually every real transaction has exactly one.
func (m *Message) Question() Question {
	if len(m.Questions) == 0 {
		return Question{}
	}
	return m.Questions[0]
}

// OPT returns the EDNS0 OPT record from the additional section, or nil.
func (m *Message) OPT() *RR {
	for i := range m.Additional {
		if m.Additional[i].Type == TypeOPT {
			return &m.Additional[i]
		}
	}
	return nil
}

// EDNSDo reports whether an OPT record is present with the DO (DNSSEC OK)
// bit set. The DO bit is the top bit of the OPT TTL field (RFC 4035 §3).
func (m *Message) EDNSDo() bool {
	opt := m.OPT()
	return opt != nil && opt.TTL&(1<<15) != 0
}

// SetEDNS attaches an OPT record advertising udpSize, with the DO bit if
// requested. An existing OPT record is replaced.
func (m *Message) SetEDNS(udpSize uint16, do bool) {
	var ttl uint32
	if do {
		ttl = 1 << 15
	}
	rr := RR{Name: ".", Type: TypeOPT, Class: Class(udpSize), TTL: ttl, Data: OPTRData{}}
	if opt := m.OPT(); opt != nil {
		*opt = rr
		return
	}
	m.Additional = append(m.Additional, rr)
}

// Pack appends the wire encoding of m to dst (which must begin the DNS
// message: compression offsets are relative to len(dst) at entry being 0;
// pass nil or an empty slice).
func (m *Message) Pack(dst []byte) ([]byte, error) {
	h := Header{
		ID: m.ID, Flags: m.Flags,
		QD: uint16(len(m.Questions)), AN: uint16(len(m.Answers)),
		NS: uint16(len(m.Authority)), AR: uint16(len(m.Additional)),
	}
	dst = h.AppendHeader(dst)
	cmap := make(map[string]int, 8)
	var err error
	for _, q := range m.Questions {
		dst, err = AppendName(dst, q.Name, cmap)
		if err != nil {
			return dst, err
		}
		dst = append(dst, byte(q.Type>>8), byte(q.Type), byte(q.Class>>8), byte(q.Class))
	}
	for _, sec := range [...][]RR{m.Answers, m.Authority, m.Additional} {
		for _, rr := range sec {
			dst, err = appendRR(dst, rr, cmap)
			if err != nil {
				return dst, err
			}
		}
	}
	return dst, nil
}

func appendRR(dst []byte, rr RR, cmap map[string]int) ([]byte, error) {
	var err error
	dst, err = AppendName(dst, rr.Name, cmap)
	if err != nil {
		return dst, err
	}
	dst = append(dst,
		byte(rr.Type>>8), byte(rr.Type),
		byte(rr.Class>>8), byte(rr.Class),
		byte(rr.TTL>>24), byte(rr.TTL>>16), byte(rr.TTL>>8), byte(rr.TTL))
	// Reserve RDLENGTH, encode RDATA, then patch the length in.
	lenAt := len(dst)
	dst = append(dst, 0, 0)
	if rr.Data != nil {
		dst, err = rr.Data.appendRData(dst, cmap)
		if err != nil {
			return dst, err
		}
	}
	n := len(dst) - lenAt - 2
	if n > 0xffff {
		return dst, ErrNameTooLong
	}
	dst[lenAt] = byte(n >> 8)
	dst[lenAt+1] = byte(n)
	return dst, nil
}

// Unpack decodes msg into m, replacing its contents. Section slices are
// reused when capacity allows.
func (m *Message) Unpack(msg []byte) error {
	h, err := UnpackHeader(msg)
	if err != nil {
		return &ParseError{Section: "header", Err: err}
	}
	m.Reset()
	m.ID = h.ID
	m.Flags = h.Flags
	// A record needs at least 11 octets (root name + fixed fields), a
	// question at least 5; reject counts the message cannot possibly hold.
	if int(h.QD)*5+(int(h.AN)+int(h.NS)+int(h.AR))*11 > len(msg)-HeaderLen {
		return &ParseError{Section: "header", Err: ErrTooManyRecords}
	}
	off := HeaderLen
	for i := 0; i < int(h.QD); i++ {
		var q Question
		q.Name, off, err = ReadName(msg, off)
		if err != nil {
			return &ParseError{Section: "question", Index: i, Err: err}
		}
		if off+4 > len(msg) {
			return &ParseError{Section: "question", Index: i, Err: ErrMessageTruncated}
		}
		q.Type = Type(uint16(msg[off])<<8 | uint16(msg[off+1]))
		q.Class = Class(uint16(msg[off+2])<<8 | uint16(msg[off+3]))
		off += 4
		m.Questions = append(m.Questions, q)
	}
	for _, sec := range [...]struct {
		name string
		rrs  *[]RR
		n    int
	}{
		{"answer", &m.Answers, int(h.AN)},
		{"authority", &m.Authority, int(h.NS)},
		{"additional", &m.Additional, int(h.AR)},
	} {
		for i := 0; i < sec.n; i++ {
			var rr RR
			rr, off, err = unpackRR(msg, off)
			if err != nil {
				return &ParseError{Section: sec.name, Index: i, Err: err}
			}
			*sec.rrs = append(*sec.rrs, rr)
		}
	}
	return nil
}

func unpackRR(msg []byte, off int) (RR, int, error) {
	var rr RR
	var err error
	rr.Name, off, err = ReadName(msg, off)
	if err != nil {
		return rr, off, err
	}
	if off+10 > len(msg) {
		return rr, off, ErrMessageTruncated
	}
	rr.Type = Type(uint16(msg[off])<<8 | uint16(msg[off+1]))
	rr.Class = Class(uint16(msg[off+2])<<8 | uint16(msg[off+3]))
	rr.TTL = uint32(msg[off+4])<<24 | uint32(msg[off+5])<<16 | uint32(msg[off+6])<<8 | uint32(msg[off+7])
	n := int(msg[off+8])<<8 | int(msg[off+9])
	off += 10
	if off+n > len(msg) {
		return rr, off, ErrMessageTruncated
	}
	rr.Data, err = unpackRData(rr.Type, msg, off, n)
	return rr, off + n, err
}

// String renders the message in dig-like presentation form.
func (m *Message) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, ";; id %d opcode %d rcode %s", m.ID, m.Flags.Opcode, m.Flags.RCode)
	if m.Flags.Response {
		sb.WriteString(" qr")
	}
	if m.Flags.Authoritative {
		sb.WriteString(" aa")
	}
	if m.Flags.RecursionDesired {
		sb.WriteString(" rd")
	}
	sb.WriteByte('\n')
	for _, q := range m.Questions {
		fmt.Fprintf(&sb, ";%s\n", q)
	}
	secs := [...]struct {
		name string
		rrs  []RR
	}{{"ANSWER", m.Answers}, {"AUTHORITY", m.Authority}, {"ADDITIONAL", m.Additional}}
	for _, sec := range secs {
		for _, rr := range sec.rrs {
			fmt.Fprintf(&sb, "%s %s\n", sec.name, rr.String())
		}
	}
	return sb.String()
}
