package dnswire

import (
	"math/rand"
	"net/netip"
	"testing"
)

// TestUnpackNeverPanicsOnMutations flips random bytes of valid messages
// and random garbage; Unpack must always return (error or not) without
// panicking and without unbounded allocation.
func TestUnpackNeverPanicsOnMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	base, err := exampleResponse().Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	var m Message
	for i := 0; i < 20000; i++ {
		buf := append([]byte(nil), base...)
		for f := 0; f < 1+rng.Intn(6); f++ {
			buf[rng.Intn(len(buf))] = byte(rng.Intn(256))
		}
		_ = m.Unpack(buf) // must not panic
	}
	for i := 0; i < 5000; i++ {
		buf := make([]byte, rng.Intn(200))
		rng.Read(buf)
		_ = m.Unpack(buf)
	}
}

// TestRepackAfterUnpack: any message that unpacks cleanly must pack
// again and unpack to the same structure (canonicalization fixpoint).
func TestRepackAfterUnpack(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base, err := exampleResponse().Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	var m1, m2 Message
	ok := 0
	for i := 0; i < 20000; i++ {
		buf := append([]byte(nil), base...)
		buf[rng.Intn(len(buf))] = byte(rng.Intn(256))
		if err := m1.Unpack(buf); err != nil {
			continue
		}
		// Counts above the section lengths are rejected at Unpack, so a
		// clean parse must round-trip unless the mutation produced a
		// semantically unpackable name (too long after decompression).
		wire, err := m1.Pack(nil)
		if err != nil {
			continue
		}
		if err := m2.Unpack(wire); err != nil {
			t.Fatalf("iteration %d: repack does not parse: %v", i, err)
		}
		ok++
	}
	if ok == 0 {
		t.Error("no mutation survived parsing; mutation test is vacuous")
	}
}

// TestNameInsaneCompressionChains builds adversarial pointer structures.
func TestNameInsaneCompressionChains(t *testing.T) {
	// A ladder of names each pointing into the previous one, ending in a
	// maximum-length name: decoding must respect the 255-octet cap.
	var buf []byte
	// 120 labels of "aa." = 360 octets worth of name at the deepest point.
	start := len(buf)
	for i := 0; i < 120; i++ {
		buf = append(buf, 2, 'a', 'a')
	}
	buf = append(buf, 0)
	// A pointer to the start.
	ptrAt := len(buf)
	buf = append(buf, 0xc0|byte(start>>8), byte(start))
	if _, _, err := ReadName(buf, ptrAt); err != ErrNameTooLong {
		// The direct read also exceeds the cap.
		if _, _, err2 := ReadName(buf, start); err2 != ErrNameTooLong {
			t.Errorf("over-long names accepted: ptr=%v direct=%v", err, err2)
		}
	}
}

func TestPackSectionsIndependent(t *testing.T) {
	// Messages with only additional records, only authority, etc.
	cases := []*Message{
		{Additional: []RR{{Name: "x.test.", Type: TypeA, Class: ClassINET, Data: ARData{netip.MustParseAddr("192.0.2.1")}}}},
		{Authority: []RR{{Name: "test.", Type: TypeNS, Class: ClassINET, Data: NSRData{"ns.test."}}}},
		{Questions: []Question{{Name: ".", Type: TypeANY, Class: ClassANY}}},
		{},
	}
	var got Message
	for i, m := range cases {
		wire, err := m.Pack(nil)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if err := got.Unpack(wire); err != nil {
			t.Fatalf("case %d unpack: %v", i, err)
		}
		if len(got.Answers) != len(m.Answers) || len(got.Authority) != len(m.Authority) ||
			len(got.Additional) != len(m.Additional) || len(got.Questions) != len(m.Questions) {
			t.Errorf("case %d: section counts differ", i)
		}
	}
}
