package ipwire

// Encrypted-transport byte arithmetic. The simulator never performs real
// cryptography: the encwire layer only needs the *sizes* a passive
// observer of the client→resolver leg would see, so this file models the
// fixed per-record and per-packet overheads of TLS 1.3 (DoT/DoH) and
// QUIC 1 (DoQ) as pure functions over the plaintext length.

// Well-known ports of the encrypted client-leg transports.
const (
	DoTPort = 853 // RFC 7858, DNS over TLS
	DoHPort = 443 // RFC 8484, DNS over HTTPS
	DoQPort = 853 // RFC 9250, DNS over dedicated QUIC
)

// TLS 1.3 record layer (RFC 8446 §5). Every TLSCiphertext carries a
// 5-byte record header, one inner content-type byte appended to the
// plaintext, and the AEAD tag; plaintext is split into records of at
// most TLSMaxPlaintext bytes.
const (
	TLSRecordHeaderLen = 5     // type, legacy version, length
	TLSInnerTypeLen    = 1     // TLSInnerPlaintext content type byte
	TLSAEADTagLen      = 16    // AES-GCM / ChaCha20-Poly1305 tag
	TLSMaxPlaintext    = 16384 // 2^14 plaintext bytes per record
)

// TLSRecordOverhead is the fixed per-record ciphertext expansion.
const TLSRecordOverhead = TLSRecordHeaderLen + TLSInnerTypeLen + TLSAEADTagLen

// TLSRecordWireLen returns the total ciphertext bytes on the wire for n
// plaintext bytes sent through the TLS 1.3 record layer, splitting into
// multiple records when n exceeds TLSMaxPlaintext. n == 0 still costs
// one record (an empty application-data record, as real stacks emit for
// keep-alives).
func TLSRecordWireLen(n int) int {
	records := (n + TLSMaxPlaintext - 1) / TLSMaxPlaintext
	if records == 0 {
		records = 1
	}
	return n + records*TLSRecordOverhead
}

// QUIC 1 short-header packet (RFC 9000 §17.3). The model uses an 8-byte
// destination connection ID and a 2-byte packet number — the common
// steady-state sizes — plus the AEAD tag on the protected payload.
const (
	QUICShortHeaderLen = 1 + 8 + 2 // flags, DCID, packet number
	QUICAEADTagLen     = 16
	QUICMaxPayload     = 1200 // conservative per-packet payload budget
)

// QUICPacketOverhead is the fixed per-packet expansion of a short-header
// QUIC packet.
const QUICPacketOverhead = QUICShortHeaderLen + QUICAEADTagLen

// QUICPacketWireLen returns the total bytes on the wire for n payload
// bytes sent in QUIC short-header packets, splitting into multiple
// packets when n exceeds QUICMaxPayload. n == 0 still costs one packet
// (a bare ACK or PING).
func QUICPacketWireLen(n int) int {
	packets := (n + QUICMaxPayload - 1) / QUICMaxPayload
	if packets == 0 {
		packets = 1
	}
	return n + packets*QUICPacketOverhead
}
