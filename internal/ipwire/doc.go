// Package ipwire encodes and decodes the IPv4, IPv6 and UDP headers that
// frame every DNS transaction captured by the Observatory sensors, and
// infers the number of network hops between resolver and nameserver from
// the received IP TTL / hop-limit, following the hop-count-filtering
// technique of Jin, Wang and Shin (CCS 2003) cited by the paper.
//
// Concurrency: the package is stateless — append-style encoders and
// pure parsers, safe to call from any number of goroutines.
package ipwire
