package ipwire

import "testing"

func TestTLSRecordWireLen(t *testing.T) {
	cases := []struct {
		n, want int
	}{
		{0, TLSRecordOverhead},
		{1, 1 + TLSRecordOverhead},
		{100, 100 + TLSRecordOverhead},
		{TLSMaxPlaintext, TLSMaxPlaintext + TLSRecordOverhead},
		{TLSMaxPlaintext + 1, TLSMaxPlaintext + 1 + 2*TLSRecordOverhead},
		{3 * TLSMaxPlaintext, 3 * (TLSMaxPlaintext + TLSRecordOverhead)},
	}
	for _, c := range cases {
		if got := TLSRecordWireLen(c.n); got != c.want {
			t.Errorf("TLSRecordWireLen(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestQUICPacketWireLen(t *testing.T) {
	cases := []struct {
		n, want int
	}{
		{0, QUICPacketOverhead},
		{1, 1 + QUICPacketOverhead},
		{QUICMaxPayload, QUICMaxPayload + QUICPacketOverhead},
		{QUICMaxPayload + 1, QUICMaxPayload + 1 + 2*QUICPacketOverhead},
	}
	for _, c := range cases {
		if got := QUICPacketWireLen(c.n); got != c.want {
			t.Errorf("QUICPacketWireLen(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

// TestEncWireLenMonotonic: more plaintext never costs fewer wire bytes.
func TestEncWireLenMonotonic(t *testing.T) {
	prevTLS, prevQUIC := 0, 0
	for n := 0; n < 4*TLSMaxPlaintext; n += 97 {
		if got := TLSRecordWireLen(n); got < prevTLS {
			t.Fatalf("TLSRecordWireLen(%d) = %d < previous %d", n, got, prevTLS)
		} else {
			prevTLS = got
		}
		if got := QUICPacketWireLen(n); got < prevQUIC {
			t.Fatalf("QUICPacketWireLen(%d) = %d < previous %d", n, got, prevQUIC)
		} else {
			prevQUIC = got
		}
	}
}
