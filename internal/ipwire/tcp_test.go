package ipwire

import (
	"bytes"
	"testing"
)

func TestIPv4TCPDNSRoundTrip(t *testing.T) {
	msg := []byte("a full dns message, length-prefixed in the segment")
	pkt := AppendIPv4TCPDNS(nil, v4a, v4b, 33000, DNSPort, 64, 12345, msg)
	p, isTCP, err := DecodeAny(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if !isTCP {
		t.Error("not detected as TCP")
	}
	if p.Src != v4a || p.Dst != v4b || p.SrcPort != 33000 || p.DstPort != DNSPort {
		t.Errorf("decoded %+v", p)
	}
	if !bytes.Equal(p.Payload, msg) {
		t.Errorf("payload %q", p.Payload)
	}
}

func TestIPv6TCPDNSRoundTrip(t *testing.T) {
	msg := []byte("v6 tcp dns")
	pkt := AppendIPv6TCPDNS(nil, v6a, v6b, 40001, DNSPort, 57, 7, msg)
	p, isTCP, err := DecodeAny(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if !isTCP || p.Src != v6a || p.TTL != 57 {
		t.Errorf("decoded %+v tcp=%v", p, isTCP)
	}
	if !bytes.Equal(p.Payload, msg) {
		t.Errorf("payload %q", p.Payload)
	}
}

func TestDecodeAnyUDP(t *testing.T) {
	pkt := AppendIPv4UDP(nil, v4a, v4b, 1000, 53, 64, []byte("udp dns"))
	p, isTCP, err := DecodeAny(pkt)
	if err != nil || isTCP {
		t.Fatalf("err=%v tcp=%v", err, isTCP)
	}
	if string(p.Payload) != "udp dns" {
		t.Errorf("payload %q", p.Payload)
	}
}

func TestDecodeAnyErrors(t *testing.T) {
	if _, _, err := DecodeAny(nil); err != ErrTruncated {
		t.Errorf("empty: %v", err)
	}
	if _, _, err := DecodeAny([]byte{0x50}); err != ErrBadVersion {
		t.Errorf("bad version: %v", err)
	}
	// ICMP protocol.
	pkt := AppendIPv4UDP(nil, v4a, v4b, 1, 53, 64, []byte("x"))
	icmp := append([]byte(nil), pkt...)
	icmp[9] = 1
	if _, _, err := DecodeAny(icmp); err != ErrNotUDP {
		t.Errorf("icmp: %v", err)
	}
}

func TestTCPDecodeErrors(t *testing.T) {
	good := AppendIPv4TCPDNS(nil, v4a, v4b, 33000, 53, 64, 1, []byte("hello dns"))

	// Lying DNS length prefix.
	lied := append([]byte(nil), good...)
	lied[IPv4HeaderLen+TCPHeaderLen] = 0xff
	lied[IPv4HeaderLen+TCPHeaderLen+1] = 0xff
	if _, _, err := DecodeAny(lied); err != ErrDNSLenMismatch {
		t.Errorf("lied length: %v", err)
	}

	// Bad data offset.
	badOff := append([]byte(nil), good...)
	badOff[IPv4HeaderLen+12] = 0xf0 // 60-byte header beyond segment
	if _, _, err := DecodeAny(badOff); err != ErrBadTCPOffset {
		t.Errorf("bad offset: %v", err)
	}

	// Truncations never panic and always error.
	for i := 0; i < len(good); i++ {
		if _, _, err := DecodeAny(good[:i]); err == nil {
			t.Errorf("truncation at %d accepted", i)
		}
	}
}

func TestTCPChecksumVerifies(t *testing.T) {
	pkt := AppendIPv4TCPDNS(nil, v4a, v4b, 2000, 53, 64, 99, []byte("checksummed"))
	seg := pkt[IPv4HeaderLen:]
	// Recomputing over the segment with its embedded checksum must give 0.
	var sum uint32
	add := func(b []byte) {
		for i := 0; i+1 < len(b); i += 2 {
			sum += uint32(b[i])<<8 | uint32(b[i+1])
		}
		if len(b)%2 == 1 {
			sum += uint32(b[len(b)-1]) << 8
		}
	}
	s4, d4 := v4a.As4(), v4b.As4()
	add(s4[:])
	add(d4[:])
	sum += ProtoTCP
	sum += uint32(len(seg))
	add(seg)
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	if uint16(sum) != 0xffff {
		t.Errorf("tcp checksum does not verify: %#x", sum)
	}
}
