package ipwire

import (
	"bytes"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	v4a = netip.MustParseAddr("192.0.2.10")
	v4b = netip.MustParseAddr("198.51.100.53")
	v6a = netip.MustParseAddr("2001:db8::10")
	v6b = netip.MustParseAddr("2001:db8:1::53")
)

func TestIPv4UDPRoundTrip(t *testing.T) {
	payload := []byte("dns message bytes")
	pkt := AppendIPv4UDP(nil, v4a, v4b, 40000, DNSPort, 57, payload)
	if len(pkt) != IPv4HeaderLen+UDPHeaderLen+len(payload) {
		t.Fatalf("packet len %d", len(pkt))
	}
	p, err := Decode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if p.Src != v4a || p.Dst != v4b || p.SrcPort != 40000 || p.DstPort != DNSPort || p.TTL != 57 {
		t.Errorf("decoded %+v", p)
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Errorf("payload %q", p.Payload)
	}
}

func TestIPv6UDPRoundTrip(t *testing.T) {
	payload := []byte("v6 dns message")
	pkt := AppendIPv6UDP(nil, v6a, v6b, 50123, DNSPort, 60, payload)
	if len(pkt) != IPv6HeaderLen+UDPHeaderLen+len(payload) {
		t.Fatalf("packet len %d", len(pkt))
	}
	p, err := Decode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if p.Src != v6a || p.Dst != v6b || p.SrcPort != 50123 || p.DstPort != DNSPort || p.TTL != 60 {
		t.Errorf("decoded %+v", p)
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Errorf("payload %q", p.Payload)
	}
}

func TestIPv4HeaderChecksumValid(t *testing.T) {
	pkt := AppendIPv4UDP(nil, v4a, v4b, 1234, 53, 64, []byte("x"))
	// Recomputing the checksum over the header including the stored
	// checksum must yield zero (ones-complement property).
	var sum uint32
	for i := 0; i < IPv4HeaderLen; i += 2 {
		sum += uint32(pkt[i])<<8 | uint32(pkt[i+1])
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	if uint16(sum) != 0xffff {
		t.Errorf("header checksum does not verify: %#x", sum)
	}
}

func TestDecodeErrors(t *testing.T) {
	good := AppendIPv4UDP(nil, v4a, v4b, 1, 53, 64, []byte("hello"))
	cases := []struct {
		name string
		pkt  []byte
		err  error
	}{
		{"empty", nil, ErrTruncated},
		{"bad version", []byte{0x50, 0, 0, 0}, ErrBadVersion},
		{"short v4", good[:10], ErrTruncated},
		{"bad ihl", append([]byte{0x42}, good[1:]...), ErrBadIHL},
		{"short v6", AppendIPv6UDP(nil, v6a, v6b, 1, 53, 64, nil)[:20], ErrTruncated},
	}
	for _, c := range cases {
		if _, err := Decode(c.pkt); err != c.err {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.err)
		}
	}

	tcp := append([]byte(nil), good...)
	tcp[9] = 6 // protocol = TCP
	if _, err := Decode(tcp); err != ErrNotUDP {
		t.Errorf("tcp: err = %v", err)
	}

	lied := append([]byte(nil), good...)
	lied[2], lied[3] = 0xff, 0xff // total length > buffer
	if _, err := Decode(lied); err != ErrLengthField {
		t.Errorf("lied total length: err = %v", err)
	}
}

func TestDecodeTruncatedEverywhere(t *testing.T) {
	for _, pkt := range [][]byte{
		AppendIPv4UDP(nil, v4a, v4b, 9, 53, 64, []byte("abcdef")),
		AppendIPv6UDP(nil, v6a, v6b, 9, 53, 64, []byte("abcdef")),
	} {
		for i := 0; i < len(pkt); i++ {
			if _, err := Decode(pkt[:i]); err == nil {
				t.Errorf("truncation at %d accepted", i)
			}
		}
	}
}

func TestInferHops(t *testing.T) {
	cases := []struct {
		recv uint8
		want int
	}{
		{64, 0},
		{57, 3},    // smallest initial >= 57 is 60
		{55, 5},    // 60 - 55
		{128, 0},   // exactly Windows initial
		{120, 8},   // 128 - 120
		{247, 8},   // 255 - 247
		{255, 0},   // no hops
		{30, 0},    // smallest initial
		{29, 1},    // 30 - 29
		{1, 29},    // nearly exhausted
		{0, 30},    // exhausted
		{65, 63},   // just above 64 -> initial 128
		{129, 126}, // just above 128 -> initial 255
	}
	for _, c := range cases {
		if got := InferHops(c.recv); got != c.want {
			t.Errorf("InferHops(%d) = %d, want %d", c.recv, got, c.want)
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(sp, dp uint16, ttl uint8, n uint8) bool {
		payload := make([]byte, int(n))
		rng.Read(payload)
		pkt := AppendIPv4UDP(nil, v4a, v4b, sp, dp, ttl, payload)
		p, err := Decode(pkt)
		if err != nil {
			return false
		}
		return p.SrcPort == sp && p.DstPort == dp && p.TTL == ttl && bytes.Equal(p.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAppendPreservesPrefix(t *testing.T) {
	prefix := []byte{0xaa, 0xbb}
	pkt := AppendIPv4UDP(prefix, v4a, v4b, 1, 2, 3, []byte("p"))
	if !bytes.Equal(pkt[:2], prefix) {
		t.Error("prefix clobbered")
	}
	if _, err := Decode(pkt[2:]); err != nil {
		t.Errorf("decode after prefix: %v", err)
	}
}
