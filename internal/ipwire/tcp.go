package ipwire

import (
	"errors"
	"net/netip"
)

// TCP/53 support. The paper's pipeline analyzed UDP/53 only and listed
// TCP as future work (§2.1, noting TCP is <3 % of DNS traffic); this
// implementation covers that extension. Passive sensors reassemble TCP
// streams, so a captured transaction carries one segment holding the
// complete DNS message behind the RFC 1035 §4.2.2 two-octet length
// prefix.

// TCPHeaderLen is the fixed TCP header size (no options).
const TCPHeaderLen = 20

// ProtoTCP is the IP protocol number of TCP.
const ProtoTCP = 6

// TCP flag bits.
const (
	TCPFlagFIN = 1 << 0
	TCPFlagSYN = 1 << 1
	TCPFlagRST = 1 << 2
	TCPFlagPSH = 1 << 3
	TCPFlagACK = 1 << 4
)

// Errors returned by the TCP codec.
var (
	ErrNotTCP          = errors.New("ipwire: not a TCP packet")
	ErrDNSLenMismatch  = errors.New("ipwire: DNS length prefix disagrees with segment")
	ErrBadTCPOffset    = errors.New("ipwire: bad TCP data offset")
	ErrSegmentTooShort = errors.New("ipwire: TCP segment truncated")
)

// AppendIPv4TCPDNS appends an IPv4+TCP segment carrying one complete DNS
// message (length-prefixed per RFC 1035 §4.2.2), as a stream-reassembly
// sensor would emit it. The segment has PSH|ACK set.
func AppendIPv4TCPDNS(dst []byte, src, dstAddr netip.Addr, srcPort, dstPort uint16, ttl uint8, seq uint32, msg []byte) []byte {
	payload := make([]byte, 2+len(msg))
	payload[0] = byte(len(msg) >> 8)
	payload[1] = byte(len(msg))
	copy(payload[2:], msg)

	total := IPv4HeaderLen + TCPHeaderLen + len(payload)
	s4, d4 := src.As4(), dstAddr.As4()
	hdrAt := len(dst)
	dst = append(dst,
		0x45, 0,
		byte(total>>8), byte(total),
		0, 0, 0x40, 0,
		ttl, ProtoTCP,
		0, 0,
	)
	dst = append(dst, s4[:]...)
	dst = append(dst, d4[:]...)
	ck := headerChecksum(dst[hdrAt : hdrAt+IPv4HeaderLen])
	dst[hdrAt+10] = byte(ck >> 8)
	dst[hdrAt+11] = byte(ck)
	return appendTCP(dst, src, dstAddr, srcPort, dstPort, seq, payload)
}

// AppendIPv6TCPDNS is AppendIPv4TCPDNS over IPv6.
func AppendIPv6TCPDNS(dst []byte, src, dstAddr netip.Addr, srcPort, dstPort uint16, hopLimit uint8, seq uint32, msg []byte) []byte {
	payload := make([]byte, 2+len(msg))
	payload[0] = byte(len(msg) >> 8)
	payload[1] = byte(len(msg))
	copy(payload[2:], msg)

	plen := TCPHeaderLen + len(payload)
	s16, d16 := src.As16(), dstAddr.As16()
	dst = append(dst,
		0x60, 0, 0, 0,
		byte(plen>>8), byte(plen),
		ProtoTCP, hopLimit,
	)
	dst = append(dst, s16[:]...)
	dst = append(dst, d16[:]...)
	return appendTCP(dst, src, dstAddr, srcPort, dstPort, seq, payload)
}

func appendTCP(dst []byte, src, dstAddr netip.Addr, srcPort, dstPort uint16, seq uint32, payload []byte) []byte {
	tcpAt := len(dst)
	dst = append(dst,
		byte(srcPort>>8), byte(srcPort),
		byte(dstPort>>8), byte(dstPort),
		byte(seq>>24), byte(seq>>16), byte(seq>>8), byte(seq),
		0, 0, 0, 0, // ack
		5<<4, TCPFlagPSH|TCPFlagACK, // data offset 5 words, flags
		0xff, 0xff, // window
		0, 0, // checksum (patched)
		0, 0, // urgent pointer
	)
	dst = append(dst, payload...)
	ck := tcpChecksum(src, dstAddr, dst[tcpAt:])
	dst[tcpAt+16] = byte(ck >> 8)
	dst[tcpAt+17] = byte(ck)
	return dst
}

// tcpChecksum is the ones-complement sum over the TCP pseudo-header and
// segment.
func tcpChecksum(src, dst netip.Addr, seg []byte) uint16 {
	var sum uint32
	add := func(b []byte) {
		for i := 0; i+1 < len(b); i += 2 {
			sum += uint32(b[i])<<8 | uint32(b[i+1])
		}
		if len(b)%2 == 1 {
			sum += uint32(b[len(b)-1]) << 8
		}
	}
	if src.Is4() {
		s4, d4 := src.As4(), dst.As4()
		add(s4[:])
		add(d4[:])
	} else {
		s16, d16 := src.As16(), dst.As16()
		add(s16[:])
		add(d16[:])
	}
	sum += ProtoTCP
	sum += uint32(len(seg))
	add(seg)
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// DecodeAny parses an IPv4/IPv6 packet carrying either UDP/53-style DNS
// (payload is the raw message) or TCP/53 DNS (payload is behind a
// two-octet length prefix). The returned Packet's Payload is always the
// bare DNS message; IsTCP reports the transport.
func DecodeAny(pkt []byte) (p Packet, isTCP bool, err error) {
	if len(pkt) < 1 {
		return Packet{}, false, ErrTruncated
	}
	var proto byte
	switch pkt[0] >> 4 {
	case 4:
		if len(pkt) < IPv4HeaderLen {
			return Packet{}, false, ErrTruncated
		}
		proto = pkt[9]
	case 6:
		if len(pkt) < IPv6HeaderLen {
			return Packet{}, false, ErrTruncated
		}
		proto = pkt[6]
	default:
		return Packet{}, false, ErrBadVersion
	}
	if proto == ProtoUDP {
		p, err = Decode(pkt)
		return p, false, err
	}
	if proto != ProtoTCP {
		return Packet{}, false, ErrNotUDP
	}
	p, err = decodeTCP(pkt)
	return p, true, err
}

func decodeTCP(pkt []byte) (Packet, error) {
	var p Packet
	var seg []byte
	switch pkt[0] >> 4 {
	case 4:
		ihl := int(pkt[0]&0xf) * 4
		if ihl < IPv4HeaderLen || len(pkt) < ihl {
			return Packet{}, ErrBadIHL
		}
		total := int(pkt[2])<<8 | int(pkt[3])
		if total > len(pkt) || total < ihl+TCPHeaderLen {
			return Packet{}, ErrLengthField
		}
		p.Src = netip.AddrFrom4([4]byte(pkt[12:16]))
		p.Dst = netip.AddrFrom4([4]byte(pkt[16:20]))
		p.TTL = pkt[8]
		seg = pkt[ihl:total]
	case 6:
		plen := int(pkt[4])<<8 | int(pkt[5])
		if IPv6HeaderLen+plen > len(pkt) || plen < TCPHeaderLen {
			return Packet{}, ErrLengthField
		}
		p.Src = netip.AddrFrom16([16]byte(pkt[8:24]))
		p.Dst = netip.AddrFrom16([16]byte(pkt[24:40]))
		p.TTL = pkt[7]
		seg = pkt[IPv6HeaderLen : IPv6HeaderLen+plen]
	}
	if len(seg) < TCPHeaderLen {
		return Packet{}, ErrSegmentTooShort
	}
	p.SrcPort = uint16(seg[0])<<8 | uint16(seg[1])
	p.DstPort = uint16(seg[2])<<8 | uint16(seg[3])
	off := int(seg[12]>>4) * 4
	if off < TCPHeaderLen || off > len(seg) {
		return Packet{}, ErrBadTCPOffset
	}
	data := seg[off:]
	if len(data) < 2 {
		return Packet{}, ErrSegmentTooShort
	}
	n := int(data[0])<<8 | int(data[1])
	if 2+n > len(data) {
		return Packet{}, ErrDNSLenMismatch
	}
	p.Payload = data[2 : 2+n]
	return p, nil
}
