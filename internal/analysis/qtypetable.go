package analysis

import (
	"sort"

	"dnsobservatory/internal/tsv"
)

// QTypeRow is one row of Table 2: per-QTYPE traffic characteristics.
type QTypeRow struct {
	QType  string
	Global float64 // share of all observed transactions
	Data   float64 // NoError+data share within the QTYPE
	NoData float64
	NXD    float64
	Err    float64 // everything else: other RCODEs and unanswered
	QDots  float64 // mean QNAME labels
	TLDs   float64 // unique TLDs per minute (NoError)
	ESLDs  float64 // unique effective SLDs per minute
	FQDNs  float64 // unique FQDNs per minute (NoError)
	Valid  float64 // existing FQDNs / all FQDNs
	TTL    float64 // top answer TTL
	Srvs   float64 // unique nameserver IPs per minute
	Delay  float64 // median response delay [ms]
	Hops   float64
	Size   float64 // median response size [B]
}

// QTypeTable computes Table 2 from a whole-run qtype snapshot (§3.4).
func QTypeTable(snap *tsv.Snapshot, topN int) []QTypeRow {
	get := func(r *tsv.Row, name string) float64 { return r.Values[colIndex(snap, name)] }
	var total float64
	for i := range snap.Rows {
		total += get(&snap.Rows[i], "hits")
	}
	rows := make([]QTypeRow, 0, len(snap.Rows))
	for i := range snap.Rows {
		r := &snap.Rows[i]
		hits := get(r, "hits")
		if hits == 0 {
			continue
		}
		ok, nxd, nil_ := get(r, "ok"), get(r, "nxd"), get(r, "ok_nil")
		rows = append(rows, QTypeRow{
			QType:  r.Key,
			Global: safeDiv(hits, total),
			Data:   safeDiv(ok-nil_, hits),
			NoData: safeDiv(nil_, hits),
			NXD:    safeDiv(nxd, hits),
			Err:    1 - safeDiv(ok+nxd, hits),
			QDots:  get(r, "qdots"),
			TLDs:   get(r, "tlds"),
			ESLDs:  get(r, "eslds"),
			FQDNs:  get(r, "qnames"),
			Valid:  safeDiv(get(r, "qnames"), get(r, "qnamesa")),
			TTL:    get(r, "ttl1"),
			Srvs:   get(r, "srvips"),
			Delay:  get(r, "delay_q50"),
			Hops:   get(r, "hops_q50"),
			Size:   get(r, "size_q50"),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Global != rows[j].Global {
			return rows[i].Global > rows[j].Global
		}
		return rows[i].QType < rows[j].QType
	})
	if topN > 0 && topN < len(rows) {
		rows = rows[:topN]
	}
	return rows
}
