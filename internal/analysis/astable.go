package analysis

import (
	"net/netip"
	"sort"

	"dnsobservatory/internal/routing"
	"dnsobservatory/internal/tsv"
)

// OrgRow is one row of Table 1: an AS organization ranked by DNS
// transaction volume.
type OrgRow struct {
	Name    string
	ASes    int     // matching ASNs
	Global  float64 // share of observed transactions
	Servers int     // nameserver IPs in the top list
	DelayMs float64 // hits-weighted mean of median response delays
	Hops    float64 // hits-weighted mean of median hop counts
}

// ASTable joins a whole-run srvip snapshot against the routing table and
// ranks organizations by transaction volume (§3.3, Table 1).
func ASTable(snap *tsv.Snapshot, rt *routing.Table, topN int) []OrgRow {
	iHits, iDelay, iHops := colIndex(snap, "hits"), colIndex(snap, "delay_q50"), colIndex(snap, "hops_q50")
	type acc struct {
		asns    map[uint32]bool
		hits    float64
		servers int
		dwSum   float64 // delay*hits
		hwSum   float64 // hops*hits
	}
	byOrg := map[string]*acc{}
	var total float64
	for _, r := range snap.Rows {
		addr, err := netip.ParseAddr(r.Key)
		if err != nil {
			continue
		}
		hits := r.Values[iHits]
		total += hits
		asn, ok := rt.Lookup(addr)
		if !ok {
			continue
		}
		org := routing.OrgName(rt.ASName(asn))
		a := byOrg[org]
		if a == nil {
			a = &acc{asns: map[uint32]bool{}}
			byOrg[org] = a
		}
		a.asns[asn] = true
		a.hits += hits
		a.servers++
		a.dwSum += r.Values[iDelay] * hits
		a.hwSum += r.Values[iHops] * hits
	}
	rows := make([]OrgRow, 0, len(byOrg))
	for org, a := range byOrg {
		rows = append(rows, OrgRow{
			Name:    org,
			ASes:    len(a.asns),
			Global:  safeDiv(a.hits, total),
			Servers: a.servers,
			DelayMs: safeDiv(a.dwSum, a.hits),
			Hops:    safeDiv(a.hwSum, a.hits),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Global != rows[j].Global {
			return rows[i].Global > rows[j].Global
		}
		return rows[i].Name < rows[j].Name
	})
	if topN > 0 && topN < len(rows) {
		rows = rows[:topN]
	}
	return rows
}

// TopOrgsShare sums the global share of the first n rows — the paper's
// "half of the world's DNS queries go to prefixes of 10 organizations".
func TopOrgsShare(rows []OrgRow, n int) float64 {
	if n > len(rows) {
		n = len(rows)
	}
	var s float64
	for _, r := range rows[:n] {
		s += r.Global
	}
	return s
}

func colIndex(snap *tsv.Snapshot, name string) int {
	for i, c := range snap.Columns {
		if c == name {
			return i
		}
	}
	panic("analysis: missing column " + name)
}
