package analysis

import (
	"math"
	"sort"

	"dnsobservatory/internal/tsv"
)

// TTLSeriesPoint is one minute of the Fig. 7 time series: a domain's
// query rate and served TTL.
type TTLSeriesPoint struct {
	Start   int64
	Hits    float64
	TopTTL  float64
	OKRate  float64 // NoError responses per minute (the "response rate")
	NXDRate float64
}

// TTLSeries extracts the per-window series for one object key (an eSLD
// for Fig. 7) from a list of snapshots.
func TTLSeries(snaps []*tsv.Snapshot, key string) []TTLSeriesPoint {
	var out []TTLSeriesPoint
	for _, s := range snaps {
		p := TTLSeriesPoint{Start: s.Start}
		if r := s.Find(key); r != nil {
			p.Hits, _ = s.Value(r, "hits")
			p.TopTTL, _ = s.Value(r, "ttl1")
			p.OKRate, _ = s.Value(r, "ok")
			p.NXDRate, _ = s.Value(r, "nxd")
		}
		out = append(out, p)
	}
	return out
}

// TTLTrafficChange is one point of Fig. 8: a domain's TTL change and
// query-rate change between two periods.
type TTLTrafficChange struct {
	Key         string
	TTLBefore   float64
	TTLAfter    float64
	HitsBefore  float64 // queries per minute
	HitsAfter   float64
	OKBefore    float64 // responses with NoError per minute
	OKAfter     float64
	QueryChange float64 // hitsAfter/hitsBefore - 1
	TTLChange   float64 // ttlAfter/ttlBefore - 1
	NXDDriven   bool    // query rate rose but NoError response rate did not
}

// TTLTrafficChanges compares two period aggregates (e.g. the paper's
// March vs April eSLD data) and returns the topN objects by absolute
// query-rate change that also changed their TTL (§4.1, Fig. 8).
func TTLTrafficChanges(before, after *tsv.Snapshot, topN int) []TTLTrafficChange {
	var out []TTLTrafficChange
	for i := range before.Rows {
		rb := &before.Rows[i]
		ra := after.Find(rb.Key)
		if ra == nil {
			continue
		}
		get := func(s *tsv.Snapshot, r *tsv.Row, c string) float64 {
			v, _ := s.Value(r, c)
			return v
		}
		c := TTLTrafficChange{
			Key:        rb.Key,
			TTLBefore:  get(before, rb, "ttl1"),
			TTLAfter:   get(after, ra, "ttl1"),
			HitsBefore: get(before, rb, "hits"),
			HitsAfter:  get(after, ra, "hits"),
			OKBefore:   get(before, rb, "ok"),
			OKAfter:    get(after, ra, "ok"),
		}
		if c.TTLBefore == 0 || c.HitsBefore == 0 || c.TTLBefore == c.TTLAfter {
			continue
		}
		c.QueryChange = c.HitsAfter/c.HitsBefore - 1
		c.TTLChange = c.TTLAfter/c.TTLBefore - 1
		// "28 of the 34 cases only increase their query rate, but not
		// their response rate": NoError responses stay flat while
		// queries rise — NXDOMAIN or otherwise unusual traffic.
		c.NXDDriven = c.QueryChange > 0.2 && c.OKAfter < c.OKBefore*1.1
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		return math.Abs(out[i].QueryChange) > math.Abs(out[j].QueryChange)
	})
	if topN > 0 && topN < len(out) {
		out = out[:topN]
	}
	return out
}

// Fig8Quadrants summarizes the Fig. 8 narrative: among TTL-decreasing
// domains, how many gained queries; among TTL-increasing domains, how
// many gained vs lost, and how many of the gainers are NXDOMAIN-driven.
type Fig8Quadrants struct {
	DownUp   int // TTL down, queries up (the expected inverse relation)
	DownDown int
	UpUp     int // TTL up, queries up anyway (paper: 34)
	UpDown   int // TTL up, queries down (paper: 17)
	UpUpNXD  int // of UpUp, NXD-driven (paper: 28)
}

// Quadrants classifies the change list.
func Quadrants(changes []TTLTrafficChange) Fig8Quadrants {
	var q Fig8Quadrants
	for _, c := range changes {
		switch {
		case c.TTLChange < 0 && c.QueryChange > 0:
			q.DownUp++
		case c.TTLChange < 0:
			q.DownDown++
		case c.QueryChange > 0:
			q.UpUp++
			if c.NXDDriven {
				q.UpUpNXD++
			}
		default:
			q.UpDown++
		}
	}
	return q
}
