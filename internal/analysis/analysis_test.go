package analysis

import (
	"bytes"
	"net/netip"
	"testing"

	"dnsobservatory/internal/observatory"
	"dnsobservatory/internal/simnet"
	"dnsobservatory/internal/tsv"
)

// testRun executes one small scenario shared by several tests.
func testRun(t *testing.T) *RunResult {
	t.Helper()
	simCfg := simnet.DefaultConfig()
	simCfg.Duration = 180
	simCfg.QPS = 600
	simCfg.Resolvers = 60
	simCfg.SLDs = 800
	obsCfg := observatory.DefaultConfig()
	obsCfg.SkipFreshObjects = false
	obsCfg.Features.HLLPrecision = 9
	res := RunWith(simCfg, obsCfg, func(sim *simnet.Sim) []observatory.Aggregation {
		return append(observatory.StandardAggregations(0.01),
			QMinAggregation("qminpairs", 20000, sim))
	})
	if res.Errors > 0 {
		t.Fatalf("%d summarize errors", res.Errors)
	}
	if res.Parsed < 10000 {
		t.Fatalf("only %d transactions parsed", res.Parsed)
	}
	return res
}

var shared *RunResult

func sharedRun(t *testing.T) *RunResult {
	if shared == nil {
		shared = testRun(t)
	}
	return shared
}

func TestDistributionHeavyTail(t *testing.T) {
	res := sharedRun(t)
	snap, err := res.Total("srvip")
	if err != nil {
		t.Fatal(err)
	}
	cdf := DistributionCDF(snap)
	if len(cdf.All) < 50 {
		t.Fatalf("only %d ranked nameservers", len(cdf.All))
	}
	// Heavy tail: the top 1% of nameservers must carry a large share,
	// and half the traffic must come from a small head (Fig. 2a).
	top1pct := cdf.ShareOfTopN(len(cdf.All) / 100)
	if top1pct < 0.18 {
		t.Errorf("top 1%% of nameservers carry only %.2f of traffic", top1pct)
	}
	if r := cdf.RankForShare(0.5); r > len(cdf.All)/5 {
		t.Errorf("half the traffic needs %d of %d nameservers", r, len(cdf.All))
	}
	// CDFs are monotone and end at 1.
	last := cdf.All[len(cdf.All)-1]
	if last < 0.999 || last > 1.001 {
		t.Errorf("all-CDF ends at %f", last)
	}
	for i := 1; i < len(cdf.All); i++ {
		if cdf.All[i] < cdf.All[i-1]-1e-12 {
			t.Fatal("CDF not monotone")
		}
	}
	// NXDOMAIN concentrates on the most popular servers (the paper's
	// botnet-at-the-gTLDs observation): the top 10 ranked servers hold
	// a large share of all NXDOMAIN traffic, and the TLD hierarchy is
	// present among them.
	if cdf.NXD[9] < 0.25 {
		t.Errorf("top-10 servers hold only %.3f of NXD traffic", cdf.NXD[9])
	}
	hierarchyInTop := false
	for i := 0; i < 10 && i < len(snap.Rows); i++ {
		if a, err := netip.ParseAddr(snap.Rows[i].Key); err == nil && res.Sim.IsHierarchyServer(a) {
			hierarchyInTop = true
			break
		}
	}
	if !hierarchyInTop {
		t.Error("no root/TLD server among the top-10 ranked nameservers")
	}
	if cdf.CapturedShare <= 0.5 {
		t.Errorf("top list captured only %.2f of stream", cdf.CapturedShare)
	}
}

func TestASTableShape(t *testing.T) {
	res := sharedRun(t)
	snap, err := res.Total("srvip")
	if err != nil {
		t.Fatal(err)
	}
	rows := ASTable(snap, res.Sim.Infra.Routing, 10)
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	share := TopOrgsShare(rows, 10)
	if share < 0.35 || share > 0.95 {
		t.Errorf("top-10 orgs share = %.2f, want roughly half", share)
	}
	// The named giants should appear high in the table.
	found := map[string]int{}
	for i, r := range rows {
		found[r.Name] = i + 1
	}
	if found["AMAZON"] == 0 {
		t.Errorf("AMAZON missing from top 10: %+v", rows)
	}
	if found["VERISIGN"] == 0 {
		t.Errorf("VERISIGN missing from top 10 (gTLD volume): %+v", rows)
	}
	for _, r := range rows {
		if r.Global <= 0 || r.Servers == 0 || r.DelayMs <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
	}
}

func TestQTypeTableShape(t *testing.T) {
	res := sharedRun(t)
	snap, err := res.Total("qtype")
	if err != nil {
		t.Fatal(err)
	}
	rows := QTypeTable(snap, 10)
	if len(rows) < 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].QType != "A" {
		t.Errorf("top QTYPE = %s", rows[0].QType)
	}
	if rows[1].QType != "AAAA" {
		t.Errorf("second QTYPE = %s", rows[1].QType)
	}
	byType := map[string]QTypeRow{}
	for _, r := range rows {
		byType[r.QType] = r
	}
	a, aaaa := byType["A"], byType["AAAA"]
	if a.Global < 2*aaaa.Global {
		t.Errorf("A share %.2f not ~3x AAAA %.2f", a.Global, aaaa.Global)
	}
	// AAAA sees far more NoData than A (server-side IPv6 gap).
	if aaaa.NoData < 5*a.NoData {
		t.Errorf("AAAA NoData %.3f vs A %.3f — Happy Eyeballs shape missing", aaaa.NoData, a.NoData)
	}
	// PTR names are deep.
	if ptr, ok := byType["PTR"]; ok {
		if ptr.QDots < 5 {
			t.Errorf("PTR qdots = %.1f", ptr.QDots)
		}
	} else {
		t.Error("PTR missing")
	}
	// NS queries are NXDOMAIN-heavy (PRSD).
	if ns, ok := byType["NS"]; ok {
		if ns.NXD < 0.3 {
			t.Errorf("NS NXD share = %.2f", ns.NXD)
		}
	}
}

func TestDelayAnalyses(t *testing.T) {
	res := sharedRun(t)
	snap, err := res.Total("srvip")
	if err != nil {
		t.Fatal(err)
	}
	medians, sections := DelayCDF(snap)
	if len(medians) == 0 {
		t.Fatal("no medians")
	}
	total := sections.Colocated + sections.Regional + sections.Distant + sections.Impaired
	if total < 0.999 || total > 1.001 {
		t.Errorf("sections sum to %f", total)
	}
	if sections.Distant < 0.3 {
		t.Errorf("distant share %.2f, expected the dominant class", sections.Distant)
	}

	groups := DelayByRank(snap, 0, 50)
	if len(groups) < 2 {
		t.Fatalf("groups = %d", len(groups))
	}

	var rootAddrs []netip.Addr
	for _, s := range res.Sim.Infra.RootServers {
		rootAddrs = append(rootAddrs, s.Addr)
	}
	roots := LetterStats(snap, rootAddrs)
	if len(roots) < 10 {
		t.Fatalf("only %d root letters observed", len(roots))
	}
	for _, ls := range roots {
		if !(ls.Q25 <= ls.Q50 && ls.Q50 <= ls.Q75) {
			t.Errorf("letter %c quartiles not ordered: %v %v %v", ls.Letter, ls.Q25, ls.Q50, ls.Q75)
		}
	}
	// Roots see overwhelmingly NXDOMAIN (junk TLD queries).
	share, nxd := GroupShare(snap, rootAddrs)
	if share <= 0 || share > 0.2 {
		t.Errorf("root traffic share = %.3f", share)
	}
	if nxd < 0.5 {
		t.Errorf("root NXD share = %.2f, want high", nxd)
	}
}

func TestQMinAnalysis(t *testing.T) {
	res := sharedRun(t)
	snap, err := res.Total("qminpairs")
	if err != nil {
		t.Fatal(err)
	}
	roots, tlds, whitelist := HierarchySets(res.Sim)
	qr := QMin(snap, roots, tlds, whitelist)
	if qr.RootPairs == 0 || qr.TLDPairs == 0 {
		t.Fatalf("no pairs: %+v", qr)
	}
	// The scenario has 3 qmin resolvers; the strict pair criterion may
	// additionally accept a resolver whose sampled TLD queries happened
	// to all be apex names, so allow a little slack upward.
	if len(qr.QMinResolver) < 3 || len(qr.QMinResolver) > 6 {
		t.Errorf("qmin resolvers = %v, want ~3", qr.QMinResolver)
	}
	// The paper reports minuscule qmin traffic shares (0.005 % / 0.0001 %).
	if qr.RootQMinShare <= 0 || qr.RootQMinShare > 0.2 {
		t.Errorf("root qmin share = %g", qr.RootQMinShare)
	}
	if qr.RootNonQMin == 0 || qr.TLDNonQMin == 0 {
		t.Error("no non-qmin pairs detected")
	}
}

func TestHappyEyeballsAnalysis(t *testing.T) {
	res := sharedRun(t)
	snap, err := res.Total("qname")
	if err != nil {
		t.Fatal(err)
	}
	rows := HappyEyeballs(snap, 200)
	if len(rows) < 50 {
		t.Fatalf("rows = %d", len(rows))
	}
	worst := WorstOffenders(rows, 0.3)
	// Some pathological neg-TTL domains exist in the default universe.
	if len(worst) == 0 {
		t.Error("no empty-AAAA offenders found")
	}
	for _, w := range worst {
		if w.EmptyAAAA > 1.0001 {
			t.Errorf("share > 1: %+v", w)
		}
	}
}

func TestRecordingRepresentativeness(t *testing.T) {
	cfg := simnet.DefaultConfig()
	cfg.Duration = 60
	cfg.QPS = 500
	cfg.Resolvers = 50
	cfg.SLDs = 500
	rec := Record(simnet.New(cfg))
	if rec.Len() < 5000 {
		t.Fatalf("recorded %d", rec.Len())
	}
	fracs := []float64{0.1, 0.5, 1.0}
	ns := rec.NameserversSeen(fracs, 60, 3, 7)
	if len(ns) != 3 {
		t.Fatal("wrong point count")
	}
	// More vantage points see at least as many nameservers (converging).
	if !(ns[0].Value <= ns[1].Value && ns[1].Value <= ns[2].Value) {
		t.Errorf("not monotone: %+v", ns)
	}
	// Convergence: second half adds less than the first half.
	gain1 := ns[1].Value - ns[0].Value
	gain2 := ns[2].Value - ns[1].Value
	if gain2 > gain1 {
		t.Errorf("no convergence: gains %f then %f", gain1, gain2)
	}

	cov := rec.TopKCoverage(fracs, 100, 60, 3, 7)
	if cov[0].Value < 50 {
		t.Errorf("10%% sample sees only %.1f%% of top-100", cov[0].Value)
	}
	if cov[2].Value < 99.9 {
		t.Errorf("full pool sees %.1f%% of its own top-100", cov[2].Value)
	}

	tlds := rec.TLDsSeen(fracs, 60, 3, 7)
	if tlds[2].Value < 10 {
		t.Errorf("only %.0f TLDs seen", tlds[2].Value)
	}

	tp := rec.ServersOverTime(10)
	if len(tp) < 3 {
		t.Fatalf("time points = %d", len(tp))
	}
	lastT := tp[len(tp)-1]
	if lastT.Count < tp[1].Count {
		t.Error("cumulative count decreased")
	}

	density := rec.PrefixDensity()
	if len(density) == 0 {
		t.Fatal("no prefixes")
	}
	one, two, three := DensityShares(density)
	if one <= 0 || one+two+three > 1.0001 {
		t.Errorf("density shares %f %f %f", one, two, three)
	}
}

func TestHilbert(t *testing.T) {
	// The curve visits every cell exactly once.
	seen := map[[2]uint32]bool{}
	for d := uint32(0); d < 256; d++ {
		x, y := hilbertD2XY(4, d)
		if x >= 16 || y >= 16 {
			t.Fatalf("out of range: %d -> %d,%d", d, x, y)
		}
		seen[[2]uint32{x, y}] = true
	}
	if len(seen) != 256 {
		t.Fatalf("curve visited %d cells", len(seen))
	}
	// Consecutive points are adjacent.
	px, py := hilbertD2XY(4, 0)
	for d := uint32(1); d < 256; d++ {
		x, y := hilbertD2XY(4, d)
		dx, dy := int(x)-int(px), int(y)-int(py)
		if dx*dx+dy*dy != 1 {
			t.Fatalf("jump at d=%d: (%d,%d)->(%d,%d)", d, px, py, x, y)
		}
		px, py = x, y
	}

	g := Heatmap(map[uint32]int{0: 3, 0xffffff: 1}, 8)
	if g.Occupied() != 2 || g.Max != 3 {
		t.Errorf("grid: occupied=%d max=%d", g.Occupied(), g.Max)
	}
	var buf bytes.Buffer
	if err := g.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 256*256 {
		t.Errorf("PGM too small: %d", buf.Len())
	}
}

func TestTTLSeriesAndChanges(t *testing.T) {
	mk := func(start int64, key string, hits, ttl, ok float64) *tsv.Snapshot {
		return &tsv.Snapshot{
			Level: tsv.Minutely, Start: start,
			Columns: []string{"hits", "ok", "nxd", "ttl1", "ttl1_share"},
			Kinds:   []tsv.Kind{tsv.Counter, tsv.Counter, tsv.Counter, tsv.Gauge, tsv.Gauge},
			Rows:    []tsv.Row{{Key: key, Values: []float64{hits, ok, 0, ttl, 1}}},
			Windows: 1,
		}
	}
	snaps := []*tsv.Snapshot{
		mk(0, "x.com.", 10, 600, 10),
		mk(60, "x.com.", 12, 600, 12),
		mk(120, "x.com.", 80, 10, 80),
	}
	series := TTLSeries(snaps, "x.com.")
	if len(series) != 3 || series[2].TopTTL != 10 || series[2].Hits != 80 {
		t.Errorf("series = %+v", series)
	}
	if pt := TTLSeries(snaps, "missing."); pt[0].Hits != 0 {
		t.Error("missing key should yield zeros")
	}

	before := mk(0, "x.com.", 10, 600, 10)
	after := mk(60, "x.com.", 80, 10, 80)
	changes := TTLTrafficChanges(before, after, 0)
	if len(changes) != 1 {
		t.Fatalf("changes = %+v", changes)
	}
	c := changes[0]
	if c.TTLChange >= 0 || c.QueryChange <= 0 || c.NXDDriven {
		t.Errorf("change = %+v", c)
	}
	q := Quadrants(changes)
	if q.DownUp != 1 {
		t.Errorf("quadrants = %+v", q)
	}

	// NXD-driven case: queries up, NoError flat.
	before2 := mk(0, "y.com.", 10, 60, 10)
	after2 := mk(60, "y.com.", 50, 600, 10)
	changes2 := TTLTrafficChanges(before2, after2, 0)
	if len(changes2) != 1 || !changes2[0].NXDDriven {
		t.Errorf("nxd-driven missed: %+v", changes2)
	}
	q2 := Quadrants(changes2)
	if q2.UpUp != 1 || q2.UpUpNXD != 1 {
		t.Errorf("quadrants2 = %+v", q2)
	}
}

func TestDetectAndClassifyTTLChanges(t *testing.T) {
	mk := func(start int64, rows ...tsv.Row) *tsv.Snapshot {
		return &tsv.Snapshot{
			Level: tsv.Hourly, Start: start,
			Columns: []string{"ttl1", "ttl1_share"},
			Kinds:   []tsv.Kind{tsv.Gauge, tsv.Gauge},
			Rows:    rows, Windows: 1,
		}
	}
	row := func(k string, ttl, share float64) tsv.Row {
		return tsv.Row{Key: k, Values: []float64{ttl, share}}
	}
	snaps := []*tsv.Snapshot{
		mk(0, row("stable.com.", 300, 1), row("renum.com.", 600, 1), row("flappy.com.", 100, 0.5), row("low.com.", 300, 0.05)),
		mk(3600, row("stable.com.", 300, 1), row("renum.com.", 38400, 1), row("flappy.com.", 700, 0.5), row("low.com.", 900, 0.05)),
		mk(7200, row("stable.com.", 300, 1), row("renum.com.", 38400, 1), row("flappy.com.", 50, 0.5)),
		mk(10800, row("flappy.com.", 900, 0.5)),
	}
	changes := DetectTTLChanges(snaps, 0.1)
	keys := map[string]TTLChangeObs{}
	for _, c := range changes {
		keys[c.Key] = c
	}
	if _, ok := keys["stable.com."]; ok {
		t.Error("stable domain flagged")
	}
	if _, ok := keys["low.com."]; ok {
		t.Error("below-share change flagged")
	}
	r, ok := keys["renum.com."]
	if !ok || r.TTLBefore != 600 || r.TTLAfter != 38400 {
		t.Errorf("renum change = %+v", r)
	}
	f, ok := keys["flappy.com."]
	if !ok || f.Flips < 3 {
		t.Errorf("flappy = %+v", f)
	}

	gt := GroundTruth{
		Renumbered: map[string]bool{"renum.com.": true},
		NSChanged:  map[string]bool{},
	}
	classes := Classify(changes, gt)
	if len(classes[ClassRenumbering]) != 1 {
		t.Errorf("renumbering class: %+v", classes)
	}
	if len(classes[ClassNonConforming]) != 1 {
		t.Errorf("non-conforming class: %+v", classes)
	}
}

func TestClassNames(t *testing.T) {
	for c := ClassNonConforming; c <= ClassUnknown; c++ {
		if c.String() == "?" {
			t.Errorf("class %d unnamed", c)
		}
	}
}
