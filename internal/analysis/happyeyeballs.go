package analysis

import (
	"sort"

	"dnsobservatory/internal/tsv"
)

// HERow is one FQDN of the Fig. 9 scatter: its rank by traffic, the
// share of its responses that are empty AAAA (NoData), and the quotient
// of the A record TTL over the negative-caching TTL — the larger the
// quotient, the more empty AAAA responses Happy Eyeballs clients force.
type HERow struct {
	Rank      int
	Key       string
	Hits      float64
	EmptyAAAA float64 // ok6nil / hits
	ATTL      float64 // dominant answer TTL
	NegTTL    float64 // dominant negative-caching TTL (SOA minimum)
	Quotient  float64 // ATTL / NegTTL
}

// HappyEyeballs computes the Fig. 9 rows for the topN FQDNs by traffic
// of a whole-period qname snapshot (§5.2 analyzes the top 200).
func HappyEyeballs(snap *tsv.Snapshot, topN int) []HERow {
	snap.SortByColumn("hits")
	iHits, iNil6 := colIndex(snap, "hits"), colIndex(snap, "ok6nil")
	iTTL, iNeg := colIndex(snap, "ttl1"), colIndex(snap, "negttl1")
	n := len(snap.Rows)
	if topN > 0 && topN < n {
		n = topN
	}
	out := make([]HERow, 0, n)
	for i := 0; i < n; i++ {
		r := &snap.Rows[i]
		row := HERow{
			Rank:      i + 1,
			Key:       r.Key,
			Hits:      r.Values[iHits],
			EmptyAAAA: safeDiv(r.Values[iNil6], r.Values[iHits]),
			ATTL:      r.Values[iTTL],
			NegTTL:    r.Values[iNeg],
		}
		if row.NegTTL > 0 {
			row.Quotient = row.ATTL / row.NegTTL
		}
		out = append(out, row)
	}
	return out
}

// WorstOffenders returns the rows with empty-AAAA share at or above
// threshold, most affected first (the paper highlights 5 FQDNs above
// 70 % in the top 200, up to 94 %).
func WorstOffenders(rows []HERow, threshold float64) []HERow {
	var out []HERow
	for _, r := range rows {
		if r.EmptyAAAA >= threshold {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].EmptyAAAA > out[j].EmptyAAAA })
	return out
}

// V6EnablementEffect compares an FQDN's empty-AAAA share and query
// volume before and after an IPv6 enablement event (§5.3): the empty
// share must drop while the query volume stays about flat.
type V6EnablementEffect struct {
	Key              string
	EmptyShareBefore float64
	EmptyShareAfter  float64
	HitsBefore       float64
	HitsAfter        float64
}

// V6Effect computes the §5.3 comparison from two period aggregates.
func V6Effect(before, after *tsv.Snapshot, key string) (V6EnablementEffect, bool) {
	rb, ra := before.Find(key), after.Find(key)
	if rb == nil || ra == nil {
		return V6EnablementEffect{}, false
	}
	get := func(s *tsv.Snapshot, r *tsv.Row, c string) float64 {
		v, _ := s.Value(r, c)
		return v
	}
	return V6EnablementEffect{
		Key:              key,
		EmptyShareBefore: safeDiv(get(before, rb, "ok6nil"), get(before, rb, "hits")),
		EmptyShareAfter:  safeDiv(get(after, ra, "ok6nil"), get(after, ra, "hits")),
		HitsBefore:       get(before, rb, "hits"),
		HitsAfter:        get(after, ra, "hits"),
	}, true
}
