package analysis

import (
	"sort"

	"dnsobservatory/internal/tsv"
)

// The Table 4 experiment: detect TTL changes in hourly aafqdn snapshots
// and classify them. The paper classifies against DNSDB, an external
// historical record; our substitute oracle is the simulator's
// ground-truth event schedule (see DESIGN.md).

// TTLChangeObs is one detected change: an FQDN whose dominant answer
// TTL moved between consecutive hourly windows, with the new value
// backed by at least 10 % of the responses (§4.2.1).
type TTLChangeObs struct {
	Key       string
	Hour      int64 // window start of the change
	TTLBefore float64
	TTLAfter  float64
	Flips     int // how many distinct changes this key showed in total
}

// DetectTTLChanges scans consecutive snapshots (hourly files in the
// paper) for objects whose top TTL changed with at least minShare of
// responses behind the new value.
func DetectTTLChanges(snaps []*tsv.Snapshot, minShare float64) []TTLChangeObs {
	last := map[string]float64{}
	flips := map[string]int{}
	firstChange := map[string]*TTLChangeObs{}
	var out []TTLChangeObs
	for _, s := range snaps {
		iTTL, iShare := colIndex(s, "ttl1"), colIndex(s, "ttl1_share")
		for i := range s.Rows {
			r := &s.Rows[i]
			ttl, share := r.Values[iTTL], r.Values[iShare]
			if share < minShare {
				continue
			}
			prev, seen := last[r.Key]
			if seen && prev != ttl {
				flips[r.Key]++
				if firstChange[r.Key] == nil {
					out = append(out, TTLChangeObs{
						Key: r.Key, Hour: s.Start, TTLBefore: prev, TTLAfter: ttl,
					})
					firstChange[r.Key] = &out[len(out)-1]
				}
			}
			last[r.Key] = ttl
		}
	}
	for i := range out {
		out[i].Flips = flips[out[i].Key]
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// ChangeClass is a Table 4 category.
type ChangeClass int

// Table 4 categories.
const (
	ClassNonConforming ChangeClass = iota
	ClassRenumbering
	ClassTTLDecrease
	ClassTTLIncrease
	ClassChangeNS
	ClassUnknown
)

var classNames = [...]string{
	"Non-conforming", "Renumbering", "TTL Decrease", "TTL Increase", "Change NS", "Unknown"}

// String names the class as in Table 4.
func (c ChangeClass) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "?"
}

// GroundTruth is the oracle: which eSLDs actually renumbered, changed
// NS, or are non-conforming (from the scenario's event schedule). Keys
// are canonical eSLD names.
type GroundTruth struct {
	NonConforming map[string]bool
	Renumbered    map[string]bool
	NSChanged     map[string]bool
	// ESLDOf maps an observed FQDN key to its zone; when nil, the
	// classifier matches by suffix containment.
	ESLDOf func(fqdn string) string
}

// Classify assigns each detected change to a Table 4 category:
// many flips → non-conforming; otherwise consult the oracle for
// renumbering / NS changes; otherwise a plain TTL decrease or increase.
// Changes whose zone the oracle does not know land in Unknown.
func Classify(changes []TTLChangeObs, gt GroundTruth) map[ChangeClass][]TTLChangeObs {
	out := map[ChangeClass][]TTLChangeObs{}
	for _, c := range changes {
		zone := c.Key
		if gt.ESLDOf != nil {
			zone = gt.ESLDOf(c.Key)
		}
		var cls ChangeClass
		switch {
		case c.Flips >= 3:
			cls = ClassNonConforming
		case gt.NSChanged[zone]:
			cls = ClassChangeNS
		case gt.Renumbered[zone]:
			cls = ClassRenumbering
		case gt.NonConforming[zone]:
			cls = ClassNonConforming
		case c.TTLAfter < c.TTLBefore:
			cls = ClassTTLDecrease
		case c.TTLAfter > c.TTLBefore:
			cls = ClassTTLIncrease
		default:
			cls = ClassUnknown
		}
		out[cls] = append(out[cls], c)
	}
	return out
}
