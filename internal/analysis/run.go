package analysis

import (
	"fmt"

	"dnsobservatory/internal/observatory"
	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/simnet"
	"dnsobservatory/internal/tsv"
)

// RunResult bundles one simulate→observe pass.
type RunResult struct {
	Sim       *simnet.Sim
	SimStats  simnet.Stats
	Snapshots map[string][]*tsv.Snapshot // per aggregation, time order
	Parsed    uint64
	Errors    uint64
}

// Run generates traffic from simCfg and feeds it through an Observatory
// pipeline with the given aggregations, collecting minutely snapshots.
func Run(simCfg simnet.Config, obsCfg observatory.Config, aggs []observatory.Aggregation) *RunResult {
	return RunWith(simCfg, obsCfg, func(*simnet.Sim) []observatory.Aggregation { return aggs })
}

// RunWith is Run for aggregations that need the instantiated scenario
// (e.g. the qmin dataset filters on the scenario's root/TLD addresses).
func RunWith(simCfg simnet.Config, obsCfg observatory.Config, aggsFor func(*simnet.Sim) []observatory.Aggregation) *RunResult {
	res := &RunResult{Snapshots: map[string][]*tsv.Snapshot{}}
	res.Sim = simnet.New(simCfg)
	pipe := observatory.New(obsCfg, aggsFor(res.Sim), func(s *tsv.Snapshot) {
		res.Snapshots[s.Aggregation] = append(res.Snapshots[s.Aggregation], s)
	})
	var summarizer sie.Summarizer
	var sum sie.Summary
	start := simCfg.Start
	res.SimStats = res.Sim.Run(func(tx *sie.Transaction) {
		if err := summarizer.Summarize(tx, &sum); err != nil {
			res.Errors++
			return
		}
		res.Parsed++
		pipe.Ingest(&sum, tx.QueryTime.Sub(start).Seconds())
	})
	pipe.Flush()
	return res
}

// Total aggregates every snapshot of one aggregation into a single
// whole-run view (counter columns become mean per-minute rates).
func (r *RunResult) Total(agg string) (*tsv.Snapshot, error) {
	snaps := r.Snapshots[agg]
	if len(snaps) == 0 {
		return nil, fmt.Errorf("analysis: no snapshots for %q", agg)
	}
	return tsv.Aggregate(snaps)
}

// TotalBetween aggregates the snapshots of agg whose window start falls
// in [from, to) seconds of simulation time.
func (r *RunResult) TotalBetween(agg string, from, to int64) (*tsv.Snapshot, error) {
	var in []*tsv.Snapshot
	base := int64(0)
	for _, s := range r.Snapshots[agg] {
		off := s.Start - base
		if off >= from && off < to {
			in = append(in, s)
		}
	}
	if len(in) == 0 {
		return nil, fmt.Errorf("analysis: no %q snapshots in [%d,%d)", agg, from, to)
	}
	return tsv.Aggregate(in)
}
