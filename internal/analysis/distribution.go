package analysis

import "dnsobservatory/internal/tsv"

// TrafficCDF is the Fig. 2 artifact: independent CDFs of DNS
// transactions against object rank, for all queries and for the
// NXDOMAIN / NoError+data / NoData splits. Each curve is normalized to
// end at 1.0, as in the paper's plot.
type TrafficCDF struct {
	Ranks  []int // 1-based ranks (by total traffic)
	All    []float64
	NXD    []float64
	OKData []float64 // NoError with answer or delegation
	NoData []float64 // NoError, empty

	// Shares of the raw stream captured by the top list and by each
	// split, for the §3.2 headline numbers.
	CapturedShare float64 // top-list transactions / all transactions seen
	NXDShare      float64 // NXDOMAIN share within the top list
	OKDataShare   float64
	NoDataShare   float64
}

// DistributionCDF computes the Fig. 2 curves from a whole-run snapshot
// of one aggregation (srvip for 2a, qname for 2b, esld for 2c).
func DistributionCDF(snap *tsv.Snapshot) *TrafficCDF {
	snap.SortByColumn("hits")
	idx := func(name string) int {
		for i, c := range snap.Columns {
			if c == name {
				return i
			}
		}
		return -1
	}
	iHits, iOK, iNXD, iNil := idx("hits"), idx("ok"), idx("nxd"), idx("ok_nil")

	n := len(snap.Rows)
	out := &TrafficCDF{
		Ranks:  make([]int, n),
		All:    make([]float64, n),
		NXD:    make([]float64, n),
		OKData: make([]float64, n),
		NoData: make([]float64, n),
	}
	var tAll, tNXD, tOKData, tNoData float64
	for _, r := range snap.Rows {
		tAll += r.Values[iHits]
		tNXD += r.Values[iNXD]
		tOKData += r.Values[iOK] - r.Values[iNil]
		tNoData += r.Values[iNil]
	}
	var cAll, cNXD, cOKData, cNoData float64
	for i, r := range snap.Rows {
		out.Ranks[i] = i + 1
		cAll += r.Values[iHits]
		cNXD += r.Values[iNXD]
		cOKData += r.Values[iOK] - r.Values[iNil]
		cNoData += r.Values[iNil]
		out.All[i] = safeDiv(cAll, tAll)
		out.NXD[i] = safeDiv(cNXD, tNXD)
		out.OKData[i] = safeDiv(cOKData, tOKData)
		out.NoData[i] = safeDiv(cNoData, tNoData)
	}
	if snap.TotalBefore > 0 {
		out.CapturedShare = float64(snap.TotalAfter) / float64(snap.TotalBefore)
	}
	out.NXDShare = safeDiv(tNXD, tAll)
	out.OKDataShare = safeDiv(tOKData, tAll)
	out.NoDataShare = safeDiv(tNoData, tAll)
	return out
}

// ShareOfTopN returns the fraction of the top list's traffic handled by
// its first n objects — the paper's "top 1,000 nameservers handle half
// of all traffic" observation reads directly off this.
func (c *TrafficCDF) ShareOfTopN(n int) float64 {
	if len(c.All) == 0 {
		return 0
	}
	if n > len(c.All) {
		n = len(c.All)
	}
	if n < 1 {
		return 0
	}
	return c.All[n-1]
}

// RankForShare returns the smallest rank whose CDF reaches share.
func (c *TrafficCDF) RankForShare(share float64) int {
	for i, v := range c.All {
		if v >= share {
			return i + 1
		}
	}
	return len(c.All)
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
