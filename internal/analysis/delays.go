package analysis

import (
	"net/netip"
	"sort"

	"dnsobservatory/internal/tsv"
)

// DelaySections are the four regimes of Fig. 3a, as shares of
// nameservers: colocated (0–5 ms), same/neighboring country (5–35 ms),
// distant (35–350 ms), impaired (>350 ms).
type DelaySections struct {
	Colocated float64
	Regional  float64
	Distant   float64
	Impaired  float64
}

// DelayCDF extracts each nameserver's median response delay from a
// whole-run srvip snapshot, sorted ascending, plus the Fig. 3a section
// shares.
func DelayCDF(snap *tsv.Snapshot) ([]float64, DelaySections) {
	iDelay := colIndex(snap, "delay_q50")
	medians := make([]float64, 0, len(snap.Rows))
	for i := range snap.Rows {
		medians = append(medians, snap.Rows[i].Values[iDelay])
	}
	sort.Float64s(medians)
	var sec DelaySections
	for _, d := range medians {
		switch {
		case d < 5:
			sec.Colocated++
		case d < 35:
			sec.Regional++
		case d < 350:
			sec.Distant++
		default:
			sec.Impaired++
		}
	}
	n := float64(len(medians))
	if n > 0 {
		sec.Colocated /= n
		sec.Regional /= n
		sec.Distant /= n
		sec.Impaired /= n
	}
	return medians, sec
}

// RankGroup is one dot of Fig. 3b: a group of neighboring-rank
// nameservers with their mean delay and hop count.
type RankGroup struct {
	RankLo    int // 1-based first rank in the group
	MeanDelay float64
	MeanHops  float64
}

// DelayByRank ranks nameservers by traffic and averages delay/hops over
// consecutive groups of groupSize (Fig. 3b uses 100).
func DelayByRank(snap *tsv.Snapshot, maxRank, groupSize int) []RankGroup {
	snap.SortByColumn("hits")
	iDelay, iHops := colIndex(snap, "delay_q50"), colIndex(snap, "hops_q50")
	if maxRank > len(snap.Rows) || maxRank <= 0 {
		maxRank = len(snap.Rows)
	}
	if groupSize < 1 {
		groupSize = 100
	}
	var out []RankGroup
	for lo := 0; lo < maxRank; lo += groupSize {
		hi := lo + groupSize
		if hi > maxRank {
			hi = maxRank
		}
		var d, h float64
		for i := lo; i < hi; i++ {
			d += snap.Rows[i].Values[iDelay]
			h += snap.Rows[i].Values[iHops]
		}
		n := float64(hi - lo)
		out = append(out, RankGroup{RankLo: lo + 1, MeanDelay: d / n, MeanHops: h / n})
	}
	return out
}

// LetterStat is one lettered root/gTLD server of Fig. 3c/d.
type LetterStat struct {
	Letter byte // 'A'..'M'
	Q25    float64
	Q50    float64
	Q75    float64
	Hops   float64
	Hits   float64
	NXD    float64 // NXDOMAIN share of this letter's traffic
}

// LetterStats reads the delay quartiles of an ordered server set
// (roots or gTLDs) from a srvip snapshot. Missing letters are skipped.
func LetterStats(snap *tsv.Snapshot, addrs []netip.Addr) []LetterStat {
	iQ25, iQ50, iQ75 := colIndex(snap, "delay_q25"), colIndex(snap, "delay_q50"), colIndex(snap, "delay_q75")
	iHops, iHits, iNXD := colIndex(snap, "hops_q50"), colIndex(snap, "hits"), colIndex(snap, "nxd")
	var out []LetterStat
	for i, a := range addrs {
		r := snap.Find(a.String())
		if r == nil {
			continue
		}
		out = append(out, LetterStat{
			Letter: byte('A' + i),
			Q25:    r.Values[iQ25],
			Q50:    r.Values[iQ50],
			Q75:    r.Values[iQ75],
			Hops:   r.Values[iHops],
			Hits:   r.Values[iHits],
			NXD:    safeDiv(r.Values[iNXD], r.Values[iHits]),
		})
	}
	return out
}

// GroupShare sums the hits of the given servers and divides by the
// snapshot total — e.g. "root nameservers handle 3.0% of all queries".
func GroupShare(snap *tsv.Snapshot, addrs []netip.Addr) (share, nxdShare float64) {
	iHits, iNXD := colIndex(snap, "hits"), colIndex(snap, "nxd")
	var total, group, groupNXD float64
	for i := range snap.Rows {
		total += snap.Rows[i].Values[iHits]
	}
	for _, a := range addrs {
		if r := snap.Find(a.String()); r != nil {
			group += r.Values[iHits]
			groupNXD += r.Values[iNXD]
		}
	}
	return safeDiv(group, total), safeDiv(groupNXD, group)
}
