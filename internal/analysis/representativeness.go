package analysis

import (
	"math/rand"
	"net/netip"
	"sort"

	"dnsobservatory/internal/publicsuffix"
	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/simnet"
)

// Recording is a compact trace of (resolver, nameserver, TLD, time)
// tuples used by the §3.7 representativeness experiments: vantage-point
// subsampling (Fig. 4) and coverage-over-time (Figs. 5 and 6).
type Recording struct {
	Resolvers []netip.Addr
	resIndex  map[netip.Addr]uint32
	Servers   []netip.Addr
	srvIndex  map[netip.Addr]uint32
	TLDs      []string
	tldIndex  map[string]uint32

	obs []obsTuple
	// serverHits supports Top-K lists.
	serverHits []uint64
}

type obsTuple struct {
	res, srv, tld uint32
	sec           int32
}

// Record runs sim once, recording every transaction as a tuple.
// Tuple times are relative to the first transaction.
func Record(sim *simnet.Sim) *Recording {
	rec := &Recording{
		resIndex: map[netip.Addr]uint32{},
		srvIndex: map[netip.Addr]uint32{},
		tldIndex: map[string]uint32{},
	}
	var s sie.Summarizer
	var sum sie.Summary
	var t0 float64
	first := true
	sim.Run(func(tx *sie.Transaction) {
		if err := s.Summarize(tx, &sum); err != nil {
			return
		}
		ts := tx.QueryTime.Unix()
		if first {
			t0 = float64(ts)
			first = false
		}
		rec.obs = append(rec.obs, obsTuple{
			res: rec.resID(sum.Resolver),
			srv: rec.srvID(sum.Nameserver),
			tld: rec.tldID(publicsuffix.ETLD(sum.QName)),
			sec: int32(float64(ts) - t0),
		})
	})
	return rec
}

func (rec *Recording) resID(a netip.Addr) uint32 {
	if id, ok := rec.resIndex[a]; ok {
		return id
	}
	id := uint32(len(rec.Resolvers))
	rec.resIndex[a] = id
	rec.Resolvers = append(rec.Resolvers, a)
	return id
}

func (rec *Recording) srvID(a netip.Addr) uint32 {
	if id, ok := rec.srvIndex[a]; ok {
		rec.serverHits[id]++
		return id
	}
	id := uint32(len(rec.Servers))
	rec.srvIndex[a] = id
	rec.Servers = append(rec.Servers, a)
	rec.serverHits = append(rec.serverHits, 1)
	return id
}

func (rec *Recording) tldID(t string) uint32 {
	if id, ok := rec.tldIndex[t]; ok {
		return id
	}
	id := uint32(len(rec.TLDs))
	rec.tldIndex[t] = id
	rec.TLDs = append(rec.TLDs, t)
	return id
}

// Len returns the number of recorded transactions.
func (rec *Recording) Len() int { return len(rec.obs) }

// SamplePoint is one x/y point of the Fig. 4 curves.
type SamplePoint struct {
	Fraction float64 // resolver sample fraction (0–1]
	Value    float64 // mean over repetitions
}

// sampleResolvers draws a random subset of resolver IDs.
func (rec *Recording) sampleResolvers(rng *rand.Rand, fraction float64) map[uint32]bool {
	n := int(float64(len(rec.Resolvers))*fraction + 0.5)
	if n < 1 {
		n = 1
	}
	perm := rng.Perm(len(rec.Resolvers))
	set := make(map[uint32]bool, n)
	for _, i := range perm[:n] {
		set[uint32(i)] = true
	}
	return set
}

// NameserversSeen reproduces Fig. 4a: distinct authoritative nameserver
// IPs seen within windowSec, as a function of the resolver sample
// fraction, averaged over reps repetitions.
func (rec *Recording) NameserversSeen(fractions []float64, windowSec int32, reps int, seed int64) []SamplePoint {
	return rec.sweep(fractions, reps, seed, func(set map[uint32]bool) float64 {
		seen := map[uint32]bool{}
		for _, o := range rec.obs {
			if o.sec < windowSec && set[o.res] {
				seen[o.srv] = true
			}
		}
		return float64(len(seen))
	})
}

// TopKCoverage reproduces Fig. 4b: the fraction of the full-pool Top-K
// nameserver list visible from a resolver sample within windowSec.
func (rec *Recording) TopKCoverage(fractions []float64, topK int, windowSec int32, reps int, seed int64) []SamplePoint {
	top := rec.TopServers(topK)
	topSet := make(map[uint32]bool, len(top))
	for _, id := range top {
		topSet[id] = true
	}
	return rec.sweep(fractions, reps, seed, func(set map[uint32]bool) float64 {
		seen := map[uint32]bool{}
		for _, o := range rec.obs {
			if o.sec < windowSec && set[o.res] && topSet[o.srv] {
				seen[o.srv] = true
			}
		}
		return 100 * float64(len(seen)) / float64(len(topSet))
	})
}

// TLDsSeen reproduces Fig. 4c: distinct TLDs observed within windowSec.
func (rec *Recording) TLDsSeen(fractions []float64, windowSec int32, reps int, seed int64) []SamplePoint {
	return rec.sweep(fractions, reps, seed, func(set map[uint32]bool) float64 {
		seen := map[uint32]bool{}
		for _, o := range rec.obs {
			if o.sec < windowSec && set[o.res] {
				seen[o.tld] = true
			}
		}
		return float64(len(seen))
	})
}

func (rec *Recording) sweep(fractions []float64, reps int, seed int64, f func(map[uint32]bool) float64) []SamplePoint {
	rng := rand.New(rand.NewSource(seed))
	out := make([]SamplePoint, 0, len(fractions))
	for _, frac := range fractions {
		var sum float64
		for r := 0; r < reps; r++ {
			sum += f(rec.sampleResolvers(rng, frac))
		}
		out = append(out, SamplePoint{Fraction: frac, Value: sum / float64(reps)})
	}
	return out
}

// TopServers returns the IDs of the k most-hit servers.
func (rec *Recording) TopServers(k int) []uint32 {
	ids := make([]uint32, len(rec.serverHits))
	for i := range ids {
		ids[i] = uint32(i)
	}
	sort.Slice(ids, func(a, b int) bool { return rec.serverHits[ids[a]] > rec.serverHits[ids[b]] })
	if k > 0 && k < len(ids) {
		ids = ids[:k]
	}
	return ids
}

// TimePoint is one point of the Fig. 5 curve.
type TimePoint struct {
	Sec   int32
	Count float64 // cumulative distinct nameserver IPs
}

// ServersOverTime reproduces Fig. 5: cumulative distinct nameserver IPs
// as monitoring time grows, sampled every stepSec.
func (rec *Recording) ServersOverTime(stepSec int32) []TimePoint {
	// First sighting per server.
	first := make(map[uint32]int32)
	var maxSec int32
	for _, o := range rec.obs {
		if s, ok := first[o.srv]; !ok || o.sec < s {
			first[o.srv] = o.sec
		}
		if o.sec > maxSec {
			maxSec = o.sec
		}
	}
	counts := make([]int, maxSec/stepSec+2)
	for _, s := range first {
		counts[s/stepSec+1]++
	}
	var out []TimePoint
	cum := 0
	for i, c := range counts {
		cum += c
		out = append(out, TimePoint{Sec: int32(i) * stepSec, Count: float64(cum)})
	}
	return out
}

// PrefixDensity maps each observed /24 prefix to its distinct
// nameserver-address count — the Fig. 6 heatmap input and the §3.7
// "48 % of prefixes hold a single nameserver address" statistic.
func (rec *Recording) PrefixDensity() map[uint32]int {
	addrsByPrefix := map[uint32]map[byte]bool{}
	for _, a := range rec.Servers {
		if !a.Is4() {
			continue
		}
		b := a.As4()
		p := uint32(b[0])<<16 | uint32(b[1])<<8 | uint32(b[2])
		set := addrsByPrefix[p]
		if set == nil {
			set = map[byte]bool{}
			addrsByPrefix[p] = set
		}
		set[b[3]] = true
	}
	out := make(map[uint32]int, len(addrsByPrefix))
	for p, set := range addrsByPrefix {
		out[p] = len(set)
	}
	return out
}

// DensityShares returns the fractions of /24 prefixes holding exactly
// 1, 2 and 3 nameserver addresses.
func DensityShares(density map[uint32]int) (one, two, three float64) {
	if len(density) == 0 {
		return 0, 0, 0
	}
	var c1, c2, c3 int
	for _, n := range density {
		switch n {
		case 1:
			c1++
		case 2:
			c2++
		case 3:
			c3++
		}
	}
	n := float64(len(density))
	return float64(c1) / n, float64(c2) / n, float64(c3) / n
}
