package analysis

import (
	"testing"

	"dnsobservatory/internal/tsv"
)

func heSnap(rows ...tsv.Row) *tsv.Snapshot {
	return &tsv.Snapshot{
		Columns: []string{"hits", "ok6nil", "ttl1", "negttl1"},
		Kinds:   []tsv.Kind{tsv.Counter, tsv.Counter, tsv.Mode, tsv.Mode},
		Rows:    rows,
		Windows: 1,
	}
}

func TestHappyEyeballsRows(t *testing.T) {
	snap := heSnap(
		tsv.Row{Key: "time.example.", Values: []float64{100, 90, 750, 15}},
		tsv.Row{Key: "ok.example.", Values: []float64{200, 5, 300, 300}},
		tsv.Row{Key: "noneg.example.", Values: []float64{50, 0, 300, 0}},
	)
	rows := HappyEyeballs(snap, 10)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Sorted by hits: ok.example first.
	if rows[0].Key != "ok.example." || rows[0].EmptyAAAA != 0.025 {
		t.Errorf("row0 = %+v", rows[0])
	}
	if rows[1].Key != "time.example." || rows[1].Quotient != 50 || rows[1].EmptyAAAA != 0.9 {
		t.Errorf("row1 = %+v", rows[1])
	}
	// Zero negTTL yields zero quotient, not a division panic.
	if rows[2].Quotient != 0 {
		t.Errorf("row2 quotient = %f", rows[2].Quotient)
	}
	worst := WorstOffenders(rows, 0.7)
	if len(worst) != 1 || worst[0].Key != "time.example." {
		t.Errorf("worst = %+v", worst)
	}
}

func TestV6Effect(t *testing.T) {
	before := heSnap(tsv.Row{Key: "www.x.", Values: []float64{100, 45, 120, 120}})
	after := heSnap(tsv.Row{Key: "www.x.", Values: []float64{95, 0, 120, 120}})
	eff, ok := V6Effect(before, after, "www.x.")
	if !ok {
		t.Fatal("not found")
	}
	if eff.EmptyShareBefore != 0.45 || eff.EmptyShareAfter != 0 {
		t.Errorf("eff = %+v", eff)
	}
	if eff.HitsBefore != 100 || eff.HitsAfter != 95 {
		t.Errorf("hits = %+v", eff)
	}
	if _, ok := V6Effect(before, after, "missing."); ok {
		t.Error("phantom key found")
	}
}

func TestDelayByRankDefaults(t *testing.T) {
	snap := &tsv.Snapshot{
		Columns: []string{"hits", "delay_q50", "hops_q50"},
		Kinds:   []tsv.Kind{tsv.Counter, tsv.Gauge, tsv.Gauge},
	}
	for i := 0; i < 250; i++ {
		snap.Rows = append(snap.Rows, tsv.Row{
			Key:    string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune('A'+i/26%26)),
			Values: []float64{float64(1000 - i), float64(i), 5},
		})
	}
	groups := DelayByRank(snap, 0, 0) // defaults: all rows, groups of 100
	if len(groups) != 3 {
		t.Fatalf("groups = %d", len(groups))
	}
	if groups[0].RankLo != 1 || groups[1].RankLo != 101 {
		t.Errorf("ranks: %+v", groups)
	}
	// Rank groups average increasing delays.
	if !(groups[0].MeanDelay < groups[1].MeanDelay && groups[1].MeanDelay < groups[2].MeanDelay) {
		t.Errorf("means not increasing: %+v", groups)
	}
}

func TestTopOrgsShare(t *testing.T) {
	rows := []OrgRow{{Name: "A", Global: 0.3}, {Name: "B", Global: 0.2}}
	if got := TopOrgsShare(rows, 10); got != 0.5 {
		t.Errorf("share = %f", got)
	}
	if got := TopOrgsShare(rows, 1); got != 0.3 {
		t.Errorf("share = %f", got)
	}
	if got := TopOrgsShare(nil, 5); got != 0 {
		t.Errorf("share = %f", got)
	}
}
