package analysis

import (
	"net/netip"
	"sort"
	"strings"

	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/observatory"
	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/simnet"
	"dnsobservatory/internal/tsv"
)

// QMinAggregation builds a srcsrv-style aggregation restricted to root
// and TLD targets — the paper evaluates QNAMEs "sent to root and TLD
// authoritatives" only, so the pair cache is not wasted on SLD servers.
// Membership is checked live against the scenario, because ccTLD
// servers are minted lazily as their first traffic appears.
func QMinAggregation(name string, k int, sim *simnet.Sim) observatory.Aggregation {
	return observatory.Aggregation{
		Name: name, K: k, NoAdmitter: true,
		Key: func(sum *sie.Summary) (string, bool) {
			if !sim.IsHierarchyServer(sum.Nameserver) {
				return "", false
			}
			return sum.Resolver.String() + ">" + sum.Nameserver.String(), true
		},
	}
}

// HierarchySets extracts the root, TLD and whitelisted (multi-label
// suffix hosting) server address sets from a scenario; call after the
// run so lazily minted ccTLD servers are included.
func HierarchySets(sim *simnet.Sim) (roots, tlds, whitelisted map[netip.Addr]bool) {
	roots = map[netip.Addr]bool{}
	for _, s := range sim.Infra.RootServers {
		roots[s.Addr] = true
	}
	tlds = map[netip.Addr]bool{}
	for _, s := range sim.Infra.GTLDServers {
		tlds[s.Addr] = true
	}
	for _, s := range sim.Infra.CCTLDByTLD {
		tlds[s.Addr] = true
	}
	whitelisted = map[netip.Addr]bool{}
	for _, suf := range sim.Universe.Suffixes.MultiLabelSuffixes() {
		if s, ok := sim.Infra.CCTLDByTLD[dnswire.TLD(suf)]; ok {
			whitelisted[s.Addr] = true
		}
	}
	return roots, tlds, whitelisted
}

// QMinResult is the Table 3 / §3.6 artifact: QNAME-minimization
// deployment detected from resolver–nameserver pairs.
type QMinResult struct {
	RootPairs    int // resolver-root pairs observed
	RootNonQMin  int // pairs with QNAMEs of more than 1 label
	TLDPairs     int
	TLDNonQMin   int      // pairs with QNAMEs of more than 2 labels
	QMinResolver []string // resolvers minimizing toward root AND TLD

	// Traffic shares of qmin queries, for the "minuscule share" numbers.
	RootQMinShare float64
	TLDQMinShare  float64
}

// QMin classifies resolver–nameserver pairs from a whole-run srcsrv
// snapshot. Pair keys are "resolver>server". Following the paper we can
// only assert the negative: a pair sending deep QNAMEs is non-qmin; a
// resolver is reported as qmin only if none of its root/TLD pairs show
// non-qmin behavior (the strict 100 % notion of §3.6). The qdots feature
// is a mean over queries, so a threshold just above the minimized label
// count separates "only ever minimized" pairs exactly.
//
// whitelisted marks TLD servers hosting zones of more than one label
// (.uk hosting co.uk, .il hosting org.il, …); minimized queries to them
// legitimately carry three labels, so their threshold is relaxed, as in
// §3.6's lenient pass.
func QMin(snap *tsv.Snapshot, roots, tlds, whitelisted map[netip.Addr]bool) QMinResult {
	iQDots, iHits := colIndex(snap, "qdots"), colIndex(snap, "hits")
	const eps = 0.01

	type resolverState struct {
		rootPairs, rootMin int
		tldPairs, tldMin   int
		rootHits, tldHits  float64
		rootMinHits        float64
		tldMinHits         float64
	}
	byResolver := map[string]*resolverState{}
	var res QMinResult
	var rootHitsAll, tldHitsAll float64

	for i := range snap.Rows {
		r := &snap.Rows[i]
		resolver, server, ok := strings.Cut(r.Key, ">")
		if !ok {
			continue
		}
		addr, err := netip.ParseAddr(server)
		if err != nil {
			continue
		}
		isRoot, isTLD := roots[addr], tlds[addr]
		if !isRoot && !isTLD {
			continue
		}
		st := byResolver[resolver]
		if st == nil {
			st = &resolverState{}
			byResolver[resolver] = st
		}
		qdots, hits := r.Values[iQDots], r.Values[iHits]
		if isRoot {
			res.RootPairs++
			st.rootPairs++
			rootHitsAll += hits
			st.rootHits += hits
			if qdots <= 1+eps {
				st.rootMin++
				st.rootMinHits += hits
			} else {
				res.RootNonQMin++
			}
		}
		if isTLD {
			res.TLDPairs++
			st.tldPairs++
			tldHitsAll += hits
			st.tldHits += hits
			maxLabels := 2.0
			if whitelisted[addr] {
				maxLabels = 3
			}
			if qdots <= maxLabels+eps {
				st.tldMin++
				st.tldMinHits += hits
			} else {
				res.TLDNonQMin++
			}
		}
	}

	var rootMinHits, tldMinHits float64
	for resolver, st := range byResolver {
		// Strict: every observed pair of this resolver must be minimized,
		// at both hierarchy levels where it was seen.
		if st.rootPairs+st.tldPairs == 0 {
			continue
		}
		if st.rootMin == st.rootPairs && st.tldMin == st.tldPairs {
			res.QMinResolver = append(res.QMinResolver, resolver)
			rootMinHits += st.rootMinHits
			tldMinHits += st.tldMinHits
		}
	}
	sort.Strings(res.QMinResolver)
	res.RootQMinShare = safeDiv(rootMinHits, rootHitsAll)
	res.TLDQMinShare = safeDiv(tldMinHits, tldHitsAll)
	return res
}
