package analysis

import (
	"bufio"
	"fmt"
	"io"
)

// Hilbert heatmap of nameserver address density (Fig. 6). Following the
// ipv4-heatmap tool the paper used, each /24 prefix is one cell, laid
// out on a Hilbert space-filling curve so that numerically adjacent
// prefixes stay visually adjacent; we render at order 8 over the /24
// space projected down to a 256×256 grid of /16 cells (each pixel
// aggregates 256 /24s), written as a portable graymap (PGM).

// hilbertD2XY converts a distance d along a Hilbert curve of order
// `order` (side 2^order) to x/y coordinates.
func hilbertD2XY(order uint, d uint32) (x, y uint32) {
	t := d
	for s := uint32(1); s < 1<<order; s <<= 1 {
		rx := (t / 2) & 1
		ry := (t ^ rx) & 1
		// Rotate quadrant.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}

// HeatmapGrid renders /24 density onto a 2^order square Hilbert grid.
// Each /24 prefix index (the top 24 bits of the address) is first
// reduced to gridBits of prefix (e.g. order 8 → /16 cells), then placed
// along the curve. Cell values are summed address counts.
type HeatmapGrid struct {
	Order uint
	Side  int
	Cells []int // Side*Side, row-major
	Max   int
}

// Heatmap builds the Fig. 6 grid from PrefixDensity output at the given
// order (8 → 256×256 cells of /16 granularity).
func Heatmap(density map[uint32]int, order uint) *HeatmapGrid {
	side := 1 << order
	g := &HeatmapGrid{Order: order, Side: side, Cells: make([]int, side*side)}
	shift := 24 - 2*order // bits to drop from the /24 index
	for p24, count := range density {
		cell := p24 >> shift
		x, y := hilbertD2XY(order, cell)
		i := int(y)*side + int(x)
		g.Cells[i] += count
		if g.Cells[i] > g.Max {
			g.Max = g.Cells[i]
		}
	}
	return g
}

// Occupied returns the number of non-empty cells.
func (g *HeatmapGrid) Occupied() int {
	n := 0
	for _, c := range g.Cells {
		if c > 0 {
			n++
		}
	}
	return n
}

// WritePGM writes the grid as a binary PGM image, intensity scaled so
// the densest cell is white.
func (g *HeatmapGrid) WritePGM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", g.Side, g.Side); err != nil {
		return err
	}
	max := g.Max
	if max == 0 {
		max = 1
	}
	for _, c := range g.Cells {
		v := c * 255 / max
		if c > 0 && v == 0 {
			v = 1 // ensure occupied cells are visible
		}
		if err := bw.WriteByte(byte(v)); err != nil {
			return err
		}
	}
	return bw.Flush()
}
