package hll

import (
	"errors"
	"math"
	"math/bits"
	"slices"
	"sync/atomic"
)

// promotions counts sparse→dense promotions across every sketch in the
// process. Sketches are single-owner, but distinct sketches promote
// concurrently on different engine workers, hence the atomic.
var promotions atomic.Uint64

// Promotions returns the process-wide count of sparse→dense promotions
// — the signal that objects are outgrowing the compact representation
// (observatory.InstrumentPlatform exposes it as a metric).
func Promotions() uint64 { return promotions.Load() }

// Sketch is a HyperLogLog counter. Create one with New. Sketch is not
// safe for concurrent use.
type Sketch struct {
	p     uint8
	dense bool

	// Sparse form: packed idx<<rankBits|rank entries. sparse is sorted
	// by register index and deduplicated (max rank wins); buf is the
	// unsorted insertion buffer folded in by compact.
	sparse []uint32
	buf    []uint32

	// Dense form: 2^p registers plus the incrementally-maintained rank
	// histogram (hist[r] = number of registers holding r; hist[0] is the
	// zero-register count), so Estimate is O(64) instead of O(2^p).
	// Allocated at first promotion and kept across Reset.
	regs []uint8
	hist []uint32
}

const (
	// rankBits packs the rank into the low bits of a sparse entry; the
	// register index occupies the bits above (p <= 18 fits, and
	// rank <= 65-p <= 61 < 64).
	rankBits = 6
	rankMask = 1<<rankBits - 1
	// histLen covers every possible rank value (1..61) plus slot 0 for
	// empty registers.
	histLen = 64
	// bufCap bounds the unsorted insertion buffer; a full buffer is
	// merged into the sorted sparse list.
	bufCap = 32
)

// ErrPrecision is returned for precisions outside [4, 18].
var ErrPrecision = errors.New("hll: precision must be in [4, 18]")

// New returns a sketch with 2^p registers. p=14 gives a typical error
// of about 0.81 %; the Observatory default is p=10 (3.25 %).
func New(p uint8) (*Sketch, error) {
	if p < 4 || p > 18 {
		return nil, ErrPrecision
	}
	return &Sketch{p: p}, nil
}

// MustNew is New for static configuration; it panics on bad precision.
func MustNew(p uint8) *Sketch {
	s, err := New(p)
	if err != nil {
		panic(err)
	}
	return s
}

// HashString returns the fixed 64-bit hash of s that Add feeds to the
// sketch. It is deterministic across processes and runs — Observatory
// time aggregation averages estimates from different windows (and
// merges snapshots from different runs), which only makes sense when
// the same key hashes identically everywhere. Callers that add one
// string to several sketches should hash once and use AddHash.
func HashString(s string) uint64 {
	h := uint64(14695981039346656037) // FNV-1a, then finalized below
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return mix64(h)
}

// HashUint64 returns the fixed 64-bit hash of v, matching HashString's
// determinism contract.
func HashUint64(v uint64) uint64 {
	return mix64(v + 0x9e3779b97f4a7c15)
}

// mix64 is the SplitMix64 finalizer: full avalanche, so the FNV prefix
// only needs to be collision-resistant, not well distributed.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Add observes str.
func (s *Sketch) Add(str string) { s.AddHash(HashString(str)) }

// AddUint64 observes a numeric value.
func (s *Sketch) AddUint64(v uint64) { s.AddHash(HashUint64(v)) }

// AddHash observes a value by its 64-bit hash (HashString/HashUint64 or
// a caller-memoized copy of one). This is the fast path for feeding one
// string to many sketches: hash once, AddHash everywhere.
func (s *Sketch) AddHash(h uint64) {
	idx := uint32(h >> (64 - s.p))
	// Rank of the first set bit in the remaining 64-p bits, 1-based.
	rest := h<<s.p | 1<<(s.p-1) // guard bit bounds the rank
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	if s.dense {
		s.setDense(idx, rank)
		return
	}
	s.addSparse(idx, rank)
}

// setDense raises register idx to rank if larger, maintaining the rank
// histogram.
func (s *Sketch) setDense(idx uint32, rank uint8) {
	if old := s.regs[idx]; rank > old {
		s.regs[idx] = rank
		s.hist[old]--
		s.hist[rank]++
	}
}

// addSparse records (idx, rank) in the sparse form: an in-place update
// when the index is already tracked, otherwise an append to the
// insertion buffer.
func (s *Sketch) addSparse(idx uint32, rank uint8) {
	packed := idx<<rankBits | uint32(rank)
	if i, ok := s.findSparse(idx); ok {
		if uint32(rank) > s.sparse[i]&rankMask {
			s.sparse[i] = packed // same idx: sort order is unchanged
		}
		return
	}
	for i, e := range s.buf {
		if e>>rankBits == idx {
			if packed > e {
				s.buf[i] = packed
			}
			return
		}
	}
	s.buf = append(s.buf, packed)
	if len(s.buf) >= bufCap {
		s.compact()
	}
}

// findSparse binary-searches the sorted sparse list for a register
// index.
func (s *Sketch) findSparse(idx uint32) (int, bool) {
	lo, hi := 0, len(s.sparse)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.sparse[mid]>>rankBits < idx {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(s.sparse) && s.sparse[lo]>>rankBits == idx
}

// promoteLen is the sparse-entry count at which the sparse list costs as
// much memory as the dense register array (4 bytes/entry vs 2^p bytes).
func (s *Sketch) promoteLen() int { return 1 << s.p / 4 }

// compact folds the insertion buffer into the sorted sparse list with a
// backward in-place merge, deduplicating by register index (max rank
// wins), then promotes to dense once the list outgrows the register
// array's cost. Amortized alloc-free: the sparse slice only grows.
func (s *Sketch) compact() {
	if len(s.buf) == 0 {
		s.maybePromote()
		return
	}
	// Packed entries sort by index first, rank second, so after sorting
	// the last entry of an index run carries its max rank.
	slices.Sort(s.buf)
	w := 0
	for i, e := range s.buf {
		if i+1 < len(s.buf) && s.buf[i+1]>>rankBits == e>>rankBits {
			continue
		}
		s.buf[w] = e
		w++
	}
	buf := s.buf[:w]

	n, m := len(s.sparse), len(buf)
	s.sparse = slices.Grow(s.sparse, m)[:n+m]
	// Merge from the ends; duplicate indices shrink the result, leaving
	// a gap at the front that is shifted out afterwards.
	i, j, k := n-1, m-1, n+m-1
	for j >= 0 {
		switch {
		case i < 0 || s.sparse[i]>>rankBits < buf[j]>>rankBits:
			s.sparse[k] = buf[j]
			j--
		case s.sparse[i]>>rankBits == buf[j]>>rankBits:
			s.sparse[k] = max(s.sparse[i], buf[j])
			i--
			j--
		default:
			s.sparse[k] = s.sparse[i]
			i--
		}
		k--
	}
	for ; i >= 0; i-- {
		s.sparse[k] = s.sparse[i]
		k--
	}
	if gap := k + 1; gap > 0 {
		copy(s.sparse, s.sparse[gap:])
		s.sparse = s.sparse[:n+m-gap]
	}
	s.buf = s.buf[:0]
	s.maybePromote()
}

// maybePromote enforces the size threshold at every compaction site, so
// a sketch whose buffer is drained by Estimate still promotes.
func (s *Sketch) maybePromote() {
	if len(s.sparse) > s.promoteLen() {
		s.promote()
	}
}

// promote switches to the dense form, replaying the sparse entries into
// freshly cleared registers. The register array and histogram are
// allocated once and reused across Reset.
func (s *Sketch) promote() {
	promotions.Add(1)
	if s.regs == nil {
		s.regs = make([]uint8, 1<<s.p)
		s.hist = make([]uint32, histLen)
	} else {
		clear(s.regs)
		clear(s.hist)
	}
	s.hist[0] = uint32(len(s.regs))
	s.dense = true
	for _, e := range s.sparse {
		s.setDense(e>>rankBits, uint8(e&rankMask))
	}
	for _, e := range s.buf {
		s.setDense(e>>rankBits, uint8(e&rankMask))
	}
	s.sparse = s.sparse[:0]
	s.buf = s.buf[:0]
}

// Estimate returns the estimated number of distinct values added.
// Sparse and dense forms of the same observations produce identical
// estimates: both paths evaluate the same formula over the same rank
// histogram.
func (s *Sketch) Estimate() float64 {
	if !s.dense {
		s.compact() // may promote past the threshold
	}
	if s.dense {
		return estimateHist(s.hist, s.p)
	}
	var hist [histLen]uint32
	for _, e := range s.sparse {
		hist[e&rankMask]++
	}
	hist[0] = uint32(1)<<s.p - uint32(len(s.sparse))
	return estimateHist(hist[:], s.p)
}

// estimateHist evaluates the HLL estimate from a register rank
// histogram: the harmonic sum collapses to at most 64 terms.
func estimateHist(hist []uint32, p uint8) float64 {
	m := float64(uint64(1) << p)
	var sum float64
	for r := len(hist) - 1; r >= 0; r-- {
		if hist[r] != 0 {
			sum += float64(hist[r]) * math.Ldexp(1, -r)
		}
	}
	zeros := hist[0]
	raw := alphaM(int(m)) * m * m / sum
	// Small-range correction: linear counting while registers are sparse
	// (Heule et al. §4; with a 64-bit hash no large-range correction is
	// needed).
	if raw <= 2.5*m && zeros > 0 {
		return m * math.Log(m/float64(zeros))
	}
	return raw
}

// Count returns the estimate rounded to an integer.
func (s *Sketch) Count() uint64 {
	e := s.Estimate()
	if e < 0 {
		return 0
	}
	return uint64(e + 0.5)
}

// Merge folds other into s (register-wise max) across any combination
// of sparse and dense forms. Both sketches must have the same
// precision. other is read-only.
func (s *Sketch) Merge(other *Sketch) error {
	if s.p != other.p {
		return ErrPrecision
	}
	if other.dense {
		if !s.dense {
			s.promote()
		}
		for i, r := range other.regs {
			s.setDense(uint32(i), r)
		}
		return nil
	}
	// other is sparse; its buffer may duplicate list entries, which the
	// max-rank fold handles either way.
	for _, e := range other.sparse {
		s.addEntry(e)
	}
	for _, e := range other.buf {
		s.addEntry(e)
	}
	return nil
}

// addEntry folds one packed (idx, rank) into whichever form s currently
// has (s may promote mid-merge).
func (s *Sketch) addEntry(e uint32) {
	if s.dense {
		s.setDense(e>>rankBits, uint8(e&rankMask))
	} else {
		s.addSparse(e>>rankBits, uint8(e&rankMask))
	}
}

// Reset clears the sketch back to the (empty) sparse form. O(1): dense
// registers are cleared lazily at the next promotion, so pooled feature
// sets pay nothing per window for sketches that stay sparse.
func (s *Sketch) Reset() {
	s.dense = false
	s.sparse = s.sparse[:0]
	s.buf = s.buf[:0]
}

// Precision returns the sketch's precision parameter p.
func (s *Sketch) Precision() uint8 { return s.p }

// Dense reports whether the sketch has promoted to dense registers.
func (s *Sketch) Dense() bool { return s.dense }

// SizeBytes returns the sketch's current heap footprint (slice
// capacities plus the struct itself) — the per-object memory the
// Observatory accounts per feature.
func (s *Sketch) SizeBytes() int {
	const structSize = 8 + 4*24 // fixed fields plus four slice headers
	return structSize + cap(s.sparse)*4 + cap(s.buf)*4 + cap(s.regs) + cap(s.hist)*4
}

// alphaM is the standard bias-correction constant.
func alphaM(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	}
	return 0.7213 / (1 + 1.079/float64(m))
}
