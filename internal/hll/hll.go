// Package hll implements the HyperLogLog cardinality estimator with the
// practical improvements of Heule, Nunkesser and Hall (EDBT 2013) that
// the paper cites [30]: a 64-bit hash function (removing the large-range
// correction entirely) and linear counting for the small range. The
// Observatory uses HLL for per-object set-cardinality features such as
// qnames, tlds, eslds, ip4s and ip6s (§2.3).
package hll

import (
	"errors"
	"hash/maphash"
	"math"
	"math/bits"
)

// Sketch is a HyperLogLog counter. Create one with New. Sketch is not
// safe for concurrent use.
type Sketch struct {
	p    uint8 // precision: m = 2^p registers
	regs []uint8
	seed maphash.Seed
}

// ErrPrecision is returned for precisions outside [4, 18].
var ErrPrecision = errors.New("hll: precision must be in [4, 18]")

// fixedSeed makes estimates reproducible across runs. Observatory time
// aggregation averages estimates from different windows, which only
// makes sense when the same key hashes identically everywhere.
var fixedSeed = maphash.MakeSeed()

// New returns a sketch with 2^p registers. p=14 gives a typical error
// of about 0.81 %; the Observatory default is p=12 (1.6 %).
func New(p uint8) (*Sketch, error) {
	if p < 4 || p > 18 {
		return nil, ErrPrecision
	}
	return &Sketch{p: p, regs: make([]uint8, 1<<p), seed: fixedSeed}, nil
}

// MustNew is New for static configuration; it panics on bad precision.
func MustNew(p uint8) *Sketch {
	s, err := New(p)
	if err != nil {
		panic(err)
	}
	return s
}

// Add observes s.
func (s *Sketch) Add(str string) {
	h := maphash.String(s.seed, str)
	idx := h >> (64 - s.p)
	// Rank of the first set bit in the remaining 64-p bits, 1-based.
	rest := h<<s.p | 1<<(s.p-1) // guard bit bounds the rank
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	if rank > s.regs[idx] {
		s.regs[idx] = rank
	}
}

// AddUint64 observes a pre-hashed or numeric value.
func (s *Sketch) AddUint64(v uint64) {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	s.Add(string(b[:]))
}

// Estimate returns the estimated number of distinct values added.
func (s *Sketch) Estimate() float64 {
	m := float64(len(s.regs))
	var sum float64
	var zeros int
	for _, r := range s.regs {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := alphaM(len(s.regs))
	raw := alpha * m * m / sum
	// Small-range correction: linear counting while registers are sparse
	// (Heule et al. §4; with a 64-bit hash no large-range correction is
	// needed).
	if raw <= 2.5*m && zeros > 0 {
		return m * math.Log(m/float64(zeros))
	}
	return raw
}

// Count returns the estimate rounded to an integer.
func (s *Sketch) Count() uint64 {
	e := s.Estimate()
	if e < 0 {
		return 0
	}
	return uint64(e + 0.5)
}

// Merge folds other into s (register-wise max). Both sketches must have
// the same precision.
func (s *Sketch) Merge(other *Sketch) error {
	if s.p != other.p {
		return ErrPrecision
	}
	for i, r := range other.regs {
		if r > s.regs[i] {
			s.regs[i] = r
		}
	}
	return nil
}

// Reset clears all registers.
func (s *Sketch) Reset() { clear(s.regs) }

// Precision returns the sketch's precision parameter p.
func (s *Sketch) Precision() uint8 { return s.p }

// alphaM is the standard bias-correction constant.
func alphaM(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	}
	return 0.7213 / (1 + 1.079/float64(m))
}
