// Package hll implements the HyperLogLog cardinality estimator with the
// practical improvements of Heule, Nunkesser and Hall (EDBT 2013) that
// the paper cites [30]: a 64-bit hash function (removing the large-range
// correction entirely), linear counting for the small range, and a
// sparse representation for low-cardinality sketches. The Observatory
// uses HLL for per-object set-cardinality features such as qnames, tlds,
// eslds, ip4s and ip6s (§2.3); the vast majority of Top-k objects sit in
// the tail and see only a handful of distinct values per window, so the
// sparse form cuts per-object feature memory by an order of magnitude.
//
// A sketch starts sparse: observations are packed (register, rank) pairs
// kept as a small insertion buffer plus a sorted, deduplicated list.
// Once the sparse list would cost as much memory as the dense register
// array it promotes to classic 2^p byte registers. Estimates are
// identical in both forms — both are computed from the same register
// rank histogram, which the dense form maintains incrementally so
// Estimate never scans the register array.
//
// Concurrency: a Sketch is single-owner, like the feature Set that
// embeds it. The one piece of shared state is the process-wide
// sparse→dense promotion counter (Promotions), an atomic that sketches
// on any goroutine bump and that the metrics layer exposes as
// dnsobs_hll_promotions_total.
package hll
