package hll

import (
	"fmt"
	"math"
	"testing"
)

func TestNewValidatesPrecision(t *testing.T) {
	for _, p := range []uint8{0, 1, 3, 19, 200} {
		if _, err := New(p); err != ErrPrecision {
			t.Errorf("New(%d) err = %v", p, err)
		}
	}
	for _, p := range []uint8{4, 12, 18} {
		s, err := New(p)
		if err != nil || s.Precision() != p {
			t.Errorf("New(%d) = %v, %v", p, s, err)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	MustNew(1)
}

func TestEmptyEstimate(t *testing.T) {
	s := MustNew(12)
	if got := s.Count(); got != 0 {
		t.Errorf("empty count = %d", got)
	}
}

func TestSmallExactRange(t *testing.T) {
	// Linear counting keeps small cardinalities nearly exact.
	s := MustNew(12)
	for i := 0; i < 100; i++ {
		s.Add(fmt.Sprintf("item-%d", i))
	}
	got := float64(s.Count())
	if math.Abs(got-100) > 5 {
		t.Errorf("count = %v, want ~100", got)
	}
}

func TestDuplicatesDoNotCount(t *testing.T) {
	s := MustNew(12)
	for round := 0; round < 50; round++ {
		for i := 0; i < 20; i++ {
			s.Add(fmt.Sprintf("dup-%d", i))
		}
	}
	got := float64(s.Count())
	if math.Abs(got-20) > 3 {
		t.Errorf("count = %v, want ~20", got)
	}
}

func TestAccuracyAtScale(t *testing.T) {
	for _, n := range []int{1000, 10000, 100000} {
		s := MustNew(12)
		for i := 0; i < n; i++ {
			s.Add(fmt.Sprintf("scale-%d-%d", n, i))
		}
		got := float64(s.Count())
		relErr := math.Abs(got-float64(n)) / float64(n)
		// p=12 gives sigma ~1.6%; 5 sigma bound.
		if relErr > 0.08 {
			t.Errorf("n=%d: estimate %v, relative error %.3f", n, got, relErr)
		}
	}
}

func TestMerge(t *testing.T) {
	a, b := MustNew(12), MustNew(12)
	for i := 0; i < 5000; i++ {
		a.Add(fmt.Sprintf("a-%d", i))
		b.Add(fmt.Sprintf("b-%d", i))
	}
	// Overlap: b also gets half of a's items.
	for i := 0; i < 2500; i++ {
		b.Add(fmt.Sprintf("a-%d", i))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	got := float64(a.Count())
	relErr := math.Abs(got-10000) / 10000
	if relErr > 0.08 {
		t.Errorf("merged estimate %v, relative error %.3f", got, relErr)
	}
}

func TestMergePrecisionMismatch(t *testing.T) {
	a, b := MustNew(12), MustNew(14)
	if err := a.Merge(b); err != ErrPrecision {
		t.Errorf("err = %v", err)
	}
}

func TestMergeIdempotent(t *testing.T) {
	a, b := MustNew(10), MustNew(10)
	for i := 0; i < 1000; i++ {
		a.Add(fmt.Sprintf("x-%d", i))
		b.Add(fmt.Sprintf("x-%d", i))
	}
	before := a.Count()
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != before {
		t.Errorf("merging identical sketch changed estimate %d -> %d", before, a.Count())
	}
}

func TestReset(t *testing.T) {
	s := MustNew(10)
	for i := 0; i < 100; i++ {
		s.Add(fmt.Sprintf("r-%d", i))
	}
	s.Reset()
	if got := s.Count(); got != 0 {
		t.Errorf("count after reset = %d", got)
	}
}

func TestAddUint64(t *testing.T) {
	s := MustNew(12)
	for i := uint64(0); i < 1000; i++ {
		s.AddUint64(i)
		s.AddUint64(i) // duplicate
	}
	got := float64(s.Count())
	if math.Abs(got-1000)/1000 > 0.08 {
		t.Errorf("count = %v, want ~1000", got)
	}
}

func TestDeterministicAcrossSketches(t *testing.T) {
	// Two sketches over the same input must agree exactly — required for
	// time aggregation to be meaningful.
	a, b := MustNew(12), MustNew(12)
	for i := 0; i < 10000; i++ {
		a.Add(fmt.Sprintf("d-%d", i))
		b.Add(fmt.Sprintf("d-%d", i))
	}
	if a.Count() != b.Count() {
		t.Errorf("sketches disagree: %d vs %d", a.Count(), b.Count())
	}
}
