package hll

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// forceDense promotes a sketch immediately so tests can pin the form.
func forceDense(s *Sketch) *Sketch {
	s.promote()
	return s
}

// TestHashGolden pins the hash functions to fixed values: the seed is
// part of the on-disk contract (snapshots from different runs and
// processes are merged and averaged), so any change here is a breaking
// format change, not a refactor.
func TestHashGolden(t *testing.T) {
	strings := map[string]uint64{
		"":                         0xefd01f60ba992926,
		"example.com.":             0x846b325e3eb70e8a,
		"ns1.dns-observatory.net.": 0x99df6b6c2bdbdf22,
		"198.51.100.7":             0xa423aaea3afd7152,
	}
	for s, want := range strings {
		if got := HashString(s); got != want {
			t.Errorf("HashString(%q) = %#x, want %#x", s, got, want)
		}
	}
	ints := map[uint64]uint64{
		0:  0x9ca066f1a4ab2eea,
		1:  0xe5fdc025e13eeed5,
		28: 0xefa0ff9d014672d6,
	}
	for v, want := range ints {
		if got := HashUint64(v); got != want {
			t.Errorf("HashUint64(%d) = %#x, want %#x", v, got, want)
		}
	}
}

// TestSeparatelyConstructedSketchesAgree is the cross-run determinism
// contract: two sketches built independently (as two processes would)
// must agree bit-for-bit on the same input.
func TestSeparatelyConstructedSketchesAgree(t *testing.T) {
	build := func() *Sketch {
		s := MustNew(10)
		for i := 0; i < 5000; i++ {
			s.Add(fmt.Sprintf("host%d.example.net.", i%1700))
		}
		return s
	}
	a, b := build(), build()
	if a.Estimate() != b.Estimate() {
		t.Errorf("independent sketches disagree: %v vs %v", a.Estimate(), b.Estimate())
	}
}

// TestSparseDenseIdenticalEstimates feeds the same values to a sketch
// left in its natural form and one promoted to dense up front; the
// estimates must be exactly equal at every cardinality, across the
// promotion boundary, and after Reset and refill.
func TestSparseDenseIdenticalEstimates(t *testing.T) {
	natural, dense := MustNew(10), forceDense(MustNew(10))
	check := func(n int) {
		t.Helper()
		if ne, de := natural.Estimate(), dense.Estimate(); ne != de {
			t.Fatalf("after %d adds: natural (dense=%v) %v != forced-dense %v",
				n, natural.Dense(), ne, de)
		}
	}
	for i := 0; i < 2000; i++ {
		v := fmt.Sprintf("val-%d", i%900)
		natural.Add(v)
		dense.Add(v)
		if i%37 == 0 {
			check(i + 1)
		}
	}
	check(2000)
	if !natural.Dense() {
		t.Fatal("natural sketch never promoted; threshold untested")
	}

	natural.Reset()
	dense.Reset()
	if natural.Dense() {
		t.Error("Reset did not return the sketch to sparse form")
	}
	for i := 0; i < 50; i++ {
		v := fmt.Sprintf("refill-%d", i)
		natural.Add(v)
		dense.Add(v)
	}
	check(50)
	fresh := MustNew(10)
	for i := 0; i < 50; i++ {
		fresh.Add(fmt.Sprintf("refill-%d", i))
	}
	if fresh.Estimate() != natural.Estimate() {
		t.Errorf("recycled sketch %v != fresh sketch %v", natural.Estimate(), fresh.Estimate())
	}
}

// TestMergeFormMatrix checks every sparse/dense merge combination
// produces the exact estimate of the dense union.
func TestMergeFormMatrix(t *testing.T) {
	fill := func(s *Sketch, prefix string, n int) *Sketch {
		for i := 0; i < n; i++ {
			s.Add(fmt.Sprintf("%s-%d", prefix, i))
		}
		return s
	}
	// Reference: a single dense sketch over the union.
	want := fill(fill(forceDense(MustNew(10)), "a", 120), "b", 150).Estimate()

	cases := []struct {
		name string
		a, b *Sketch
	}{
		{"sparse+sparse", fill(MustNew(10), "a", 120), fill(MustNew(10), "b", 150)},
		{"sparse+dense", fill(MustNew(10), "a", 120), fill(forceDense(MustNew(10)), "b", 150)},
		{"dense+sparse", fill(forceDense(MustNew(10)), "a", 120), fill(MustNew(10), "b", 150)},
		{"dense+dense", fill(forceDense(MustNew(10)), "a", 120), fill(forceDense(MustNew(10)), "b", 150)},
	}
	for _, tc := range cases {
		if err := tc.a.Merge(tc.b); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := tc.a.Estimate(); got != want {
			t.Errorf("%s: merged estimate %v, want %v", tc.name, got, want)
		}
	}
}

// TestSparseDensePropertyQuick is the randomized form of the
// equivalence guarantee: arbitrary interleavings of adds, merges and
// resets keep a natural sketch and a forced-dense twin in exact
// agreement.
func TestSparseDensePropertyQuick(t *testing.T) {
	f := func(seed int64, ops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nat, den := MustNew(8), forceDense(MustNew(8))
		for op := 0; op < int(ops)%40+5; op++ {
			switch rng.Intn(10) {
			case 0: // reset both
				nat.Reset()
				den.Reset()
				den.promote()
			case 1, 2: // merge in a random batch, alternating forms
				mNat, mDen := MustNew(8), forceDense(MustNew(8))
				for i, n := 0, rng.Intn(200); i < n; i++ {
					v := fmt.Sprintf("m%d", rng.Intn(400))
					mNat.Add(v)
					mDen.Add(v)
				}
				if err := nat.Merge(mNat); err != nil {
					return false
				}
				if err := den.Merge(mDen); err != nil {
					return false
				}
			default: // a burst of adds
				for i, n := 0, rng.Intn(120); i < n; i++ {
					v := fmt.Sprintf("v%d", rng.Intn(600))
					nat.Add(v)
					den.Add(v)
				}
			}
			if nat.Estimate() != den.Estimate() {
				t.Logf("seed %d op %d: natural %v dense %v", seed, op, nat.Estimate(), den.Estimate())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSparseMemoryStaysSmall is the point of the representation: a
// tail object seeing a handful of distinct values must not pay for
// dense registers.
func TestSparseMemoryStaysSmall(t *testing.T) {
	s := MustNew(10)
	for i := 0; i < 8; i++ {
		s.Add(fmt.Sprintf("tail-%d", i))
	}
	if s.Dense() {
		t.Fatal("8 distinct values promoted to dense")
	}
	if got := s.SizeBytes(); got > 512 {
		t.Errorf("sparse sketch with 8 values occupies %d bytes", got)
	}
	dense := forceDense(MustNew(10))
	if got := dense.SizeBytes(); got < 1<<10 {
		t.Errorf("dense sketch reports %d bytes, expected at least the register array", got)
	}
}

// TestAddAllocationFree pins the hot paths at zero allocations once the
// sketch has reached steady state (dense, or sparse with stable
// capacity).
func TestAddAllocationFree(t *testing.T) {
	dense := forceDense(MustNew(10))
	if avg := testing.AllocsPerRun(1000, func() { dense.AddUint64(12345) }); avg != 0 {
		t.Errorf("dense AddUint64 allocates %v per op", avg)
	}
	sparse := MustNew(10)
	for i := 0; i < 8; i++ {
		sparse.AddUint64(uint64(i))
	}
	if avg := testing.AllocsPerRun(1000, func() { sparse.AddUint64(3) }); avg != 0 {
		t.Errorf("sparse duplicate AddUint64 allocates %v per op", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() { dense.Add("steady.example.com.") }); avg != 0 {
		t.Errorf("dense Add allocates %v per op", avg)
	}
}

// TestCompactMergesCorrectly hammers the buffer/compaction machinery
// against a map-based model.
func TestCompactMergesCorrectly(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := MustNew(12) // large m so the sketch stays sparse throughout
	model := map[uint32]uint8{}
	for i := 0; i < 5000; i++ {
		idx := uint32(rng.Intn(900))
		rank := uint8(rng.Intn(50) + 1)
		s.addSparse(idx, rank)
		if rank > model[idx] {
			model[idx] = rank
		}
	}
	s.compact()
	if s.Dense() {
		t.Fatal("sketch promoted; model comparison needs sparse form")
	}
	if len(s.sparse) != len(model) {
		t.Fatalf("sparse holds %d indices, model %d", len(s.sparse), len(model))
	}
	prev := int64(-1)
	for _, e := range s.sparse {
		idx, rank := e>>rankBits, uint8(e&rankMask)
		if int64(idx) <= prev {
			t.Fatalf("sparse list not strictly sorted at idx %d", idx)
		}
		prev = int64(idx)
		if model[idx] != rank {
			t.Fatalf("idx %d: rank %d, model %d", idx, rank, model[idx])
		}
	}
}
