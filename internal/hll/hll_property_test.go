package hll

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// Merge must be commutative and idempotent, and merging can only grow
// the estimate (registers take maxima).
func TestMergePropertiesQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(na, nb uint16) bool {
		a, b := MustNew(10), MustNew(10)
		for i := 0; i < int(na)%2000; i++ {
			a.Add(fmt.Sprintf("a%d", rng.Intn(5000)))
		}
		for i := 0; i < int(nb)%2000; i++ {
			b.Add(fmt.Sprintf("b%d", rng.Intn(5000)))
		}
		ab, ba := MustNew(10), MustNew(10)
		ab.Merge(a)
		ab.Merge(b)
		ba.Merge(b)
		ba.Merge(a)
		if ab.Count() != ba.Count() {
			return false
		}
		// Idempotence.
		before := ab.Count()
		ab.Merge(b)
		if ab.Count() != before {
			return false
		}
		// Monotonicity: the union estimate is at least each part's.
		return float64(ab.Count()) >= float64(a.Count())*0.95 &&
			float64(ab.Count()) >= float64(b.Count())*0.95
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Adding elements never decreases the estimate.
func TestMonotoneQuick(t *testing.T) {
	s := MustNew(10)
	prev := uint64(0)
	f := func(x uint32) bool {
		s.AddUint64(uint64(x))
		c := s.Count()
		ok := c+2 >= prev // tiny jitter from linear-counting boundaries
		if c > prev {
			prev = c
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
