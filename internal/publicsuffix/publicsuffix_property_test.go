package publicsuffix

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dnsobservatory/internal/dnswire"
)

// Structural invariants of eTLD/eSLD extraction over random names:
// the eTLD is a suffix of the eSLD, which is a suffix of the name; the
// eSLD has exactly one more label than the eTLD (unless the name is a
// bare suffix); and both are idempotent.
func TestSuffixInvariantsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	tlds := []string{"com", "co.uk", "org.il", "ck", "unknowntld", "net.me", "bn", "de"}
	gen := func() string {
		n := rng.Intn(4)
		labels := make([]string, 0, n+1)
		for i := 0; i < n; i++ {
			l := make([]byte, 1+rng.Intn(8))
			for j := range l {
				l[j] = byte('a' + rng.Intn(26))
			}
			labels = append(labels, string(l))
		}
		labels = append(labels, tlds[rng.Intn(len(tlds))])
		return strings.Join(labels, ".")
	}
	f := func() bool {
		name := dnswire.Canonical(gen())
		etld := ETLD(name)
		esld := ESLD(name)
		if !dnswire.IsSubdomainOf(name, etld) || !dnswire.IsSubdomainOf(name, esld) {
			return false
		}
		if !dnswire.IsSubdomainOf(esld, etld) {
			return false
		}
		if esld != etld && dnswire.CountLabels(esld) != dnswire.CountLabels(etld)+1 {
			return false
		}
		// Idempotence.
		return ETLD(etld) == etld && ESLD(esld) == esld
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
