// Package publicsuffix implements effective-TLD (eTLD) and effective-SLD
// (eSLD) extraction against an embedded, ICANN-style public suffix list,
// following the semantics of publicsuffix.org: exact rules, wildcard
// rules (*.ck) and exception rules (!www.ck). The paper's etld and esld
// aggregations (§3.1) key on these.
//
// Concurrency: the rule table is built once at init and immutable
// afterwards; lookups are pure and safe from any number of goroutines.
package publicsuffix
