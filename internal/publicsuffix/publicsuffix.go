package publicsuffix

import (
	"strings"

	"dnsobservatory/internal/dnswire"
)

// List is a compiled suffix list. Create one with NewList or use the
// package-level Default. Rules are stored in canonical form (trailing
// dot) so lookups can slice suffixes straight out of a canonical name
// without allocating.
type List struct {
	rules      map[string]bool // suffix -> true
	wildcards  map[string]bool // parent of "*.parent" rules
	exceptions map[string]bool // name carved out of a wildcard
}

// NewList compiles rules in public-suffix-list format: one rule per
// entry, "*." prefix for wildcards, "!" prefix for exceptions. Rules are
// given without trailing dots, as in the upstream file.
func NewList(rules []string) *List {
	l := &List{
		rules:      make(map[string]bool, len(rules)),
		wildcards:  make(map[string]bool),
		exceptions: make(map[string]bool),
	}
	for _, r := range rules {
		r = strings.ToLower(strings.TrimSpace(r))
		if r == "" || strings.HasPrefix(r, "//") {
			continue
		}
		switch {
		case strings.HasPrefix(r, "!"):
			l.exceptions[r[1:]+"."] = true
		case strings.HasPrefix(r, "*."):
			l.wildcards[r[2:]+"."] = true
		default:
			l.rules[r+"."] = true
		}
	}
	return l
}

// etldStart returns the byte offset where name's eTLD begins. name must
// be canonical and not ".". Every candidate suffix is a slice of name,
// so the scan is allocation-free — this runs twice per transaction on
// the etld/esld ingest path.
func (l *List) etldStart(name string) int {
	off := 0
	for {
		cand := name[off:]
		// Start of the next shorter suffix; len(name) when cand is the
		// bare TLD (its only dot is the trailing one).
		next := off + strings.IndexByte(cand, '.') + 1
		last := next == len(name)
		if l.exceptions[cand] {
			if last {
				return len(name) - 1 // degenerate "!tld" rule: eTLD is the root
			}
			return next // exception: the suffix is everything after this label
		}
		if l.rules[cand] {
			return off
		}
		// "*.parent": any single label directly under parent is a suffix.
		if !last && l.wildcards[name[next:]] {
			return off
		}
		if last {
			return off // implicit rule: the bare TLD
		}
		off = next
	}
}

// ETLD returns the effective TLD of name in canonical form ("co.uk."),
// or "." if the name is the root. A name that is itself a public suffix
// is its own eTLD. Unlisted TLDs fall back to the last label, per the
// PSL's implicit "*" rule.
func (l *List) ETLD(name string) string {
	name = dnswire.Canonical(name)
	if name == "." {
		return "."
	}
	return name[l.etldStart(name):]
}

// ESLD returns the effective SLD (eTLD plus one label, e.g.
// "bbc.co.uk.") of name, or the eTLD itself when the name is a bare
// public suffix.
func (l *List) ESLD(name string) string {
	name = dnswire.Canonical(name)
	if name == "." {
		return "."
	}
	off := l.etldStart(name)
	if off == 0 {
		return name // the name is itself a public suffix
	}
	// Extend one label to the left; still a slice of name.
	p := off - 1 // the dot ending the previous label
	for p > 0 && name[p-1] != '.' {
		p--
	}
	return name[p:]
}

// IsSuffix reports whether name is exactly a public suffix.
func (l *List) IsSuffix(name string) bool {
	name = dnswire.Canonical(name)
	return name != "." && l.ETLD(name) == name
}

// MultiLabelSuffixes returns the listed suffixes that contain more than
// one label (e.g. co.uk), canonical form. The qmin analysis (§3.6)
// whitelists TLD servers hosting such zones.
func (l *List) MultiLabelSuffixes() []string {
	var out []string
	for r := range l.rules {
		// Rules carry a trailing dot; multi-label means a dot before it.
		if strings.Contains(r[:len(r)-1], ".") {
			out = append(out, r)
		}
	}
	return out
}

// defaultRules is a compact, ICANN-style rule set: the generic TLDs and
// ccTLDs the simulator's domain universe uses, including the multi-label
// and wildcard cases the paper calls out (co.uk, org.il, net.me, *.ck).
var defaultRules = []string{
	// Generic TLDs.
	"com", "net", "org", "info", "biz", "edu", "gov", "mil", "int",
	"arpa", "in-addr.arpa", "ip6.arpa",
	// New gTLDs.
	"top", "xyz", "online", "site", "shop", "app", "dev", "cloud", "io",
	// ccTLDs, flat.
	"de", "nl", "fr", "it", "pl", "ru", "cn", "jp", "kr", "in", "ca",
	"ch", "se", "no", "fi", "es", "pt", "cz", "at", "be", "dk", "ie",
	"gr", "hu", "ro", "sk", "si", "hr", "bg", "lt", "lv", "ee", "us",
	"mx", "ar", "cl", "co", "pe", "ve", "ec", "by", "ua", "kz", "tr",
	"sa", "ae", "ir", "eg", "ma", "ng", "ke", "za", "tz", "gh", "et",
	"vn", "th", "my", "sg", "id", "ph", "tw", "hk", "mo", "bd", "pk",
	"lk", "np", "mm", "kh", "la", "mn", "ws", "to", "tv", "cc", "me",
	// Multi-label ccTLD registrations.
	"uk", "co.uk", "org.uk", "gov.uk", "ac.uk", "net.uk",
	"au", "com.au", "net.au", "org.au", "edu.au", "gov.au",
	"nz", "co.nz", "net.nz", "org.nz", "govt.nz",
	"br", "com.br", "net.br", "org.br", "gov.br",
	"il", "co.il", "org.il", "ac.il", "gov.il",
	"net.me", // .me also hosts net.me (paper §3.6)
	"ke.co",  // unused; keeps parser honest about odd rules
	"co.ke", "or.ke", "go.ke",
	"jp.net",
	"co.jp", "ne.jp", "or.jp", "ac.jp", "go.jp",
	"com.cn", "net.cn", "org.cn", "gov.cn", "edu.cn",
	"com.tr", "net.tr", "org.tr",
	"com.mx", "org.mx",
	"com.ar", "com.sg", "com.hk", "com.tw", "com.my",
	"in.th", "co.th", "ac.th", "go.th",
	"co.za", "org.za", "web.za",
	"co.in", "net.in", "org.in", "ac.in", "gov.in",
	// Wildcard and exception, exercising full PSL semantics.
	"ck", "*.ck", "!www.ck",
	"bn", "*.bn",
}

// Default is the embedded list used throughout the Observatory.
var Default = NewList(defaultRules)

// ETLD extracts the effective TLD using the Default list.
func ETLD(name string) string { return Default.ETLD(name) }

// ESLD extracts the effective SLD using the Default list.
func ESLD(name string) string { return Default.ESLD(name) }
