package publicsuffix

import "testing"

func TestETLD(t *testing.T) {
	cases := []struct{ name, want string }{
		{"www.example.com", "com."},
		{"example.com.", "com."},
		{"com", "com."},
		{"www.bbc.co.uk", "co.uk."},
		{"co.uk", "co.uk."},
		{"uk", "uk."},
		{"something.org.il", "org.il."},
		{"host.net.me", "net.me."},
		{"plain.me", "me."},
		{"7.2.0.192.in-addr.arpa", "in-addr.arpa."},
		{"x.ip6.arpa", "ip6.arpa."},
		// Unlisted TLD: implicit * rule.
		{"foo.unlistedtld", "unlistedtld."},
		// Wildcard: any label under .ck is a suffix…
		{"shop.weird.ck", "weird.ck."},
		// …except www.ck.
		{"www.ck", "ck."},
		{"sub.www.ck", "ck."},
		{".", "."},
	}
	for _, c := range cases {
		if got := ETLD(c.name); got != c.want {
			t.Errorf("ETLD(%q) = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestESLD(t *testing.T) {
	cases := []struct{ name, want string }{
		{"www.example.com", "example.com."},
		{"example.com", "example.com."},
		{"com", "com."},
		{"www.bbc.co.uk", "bbc.co.uk."},
		{"bbc.co.uk", "bbc.co.uk."},
		{"co.uk", "co.uk."},
		{"a.b.c.something.org.il", "something.org.il."},
		{"deep.shop.weird.ck", "shop.weird.ck."},
		{"www.ck", "www.ck."},
		{".", "."},
	}
	for _, c := range cases {
		if got := ESLD(c.name); got != c.want {
			t.Errorf("ESLD(%q) = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestIsSuffix(t *testing.T) {
	cases := []struct {
		name string
		want bool
	}{
		{"com", true},
		{"co.uk", true},
		{"example.com", false},
		{"anything.ck", true}, // wildcard
		{"www.ck", false},     // exception
		{".", false},
	}
	for _, c := range cases {
		if got := Default.IsSuffix(c.name); got != c.want {
			t.Errorf("IsSuffix(%q) = %v", c.name, got)
		}
	}
}

func TestMultiLabelSuffixes(t *testing.T) {
	found := map[string]bool{}
	for _, s := range Default.MultiLabelSuffixes() {
		found[s] = true
	}
	for _, want := range []string{"co.uk.", "org.il.", "net.me."} {
		if !found[want] {
			t.Errorf("missing multi-label suffix %q", want)
		}
	}
	if found["com."] {
		t.Error("single-label suffix reported as multi-label")
	}
}

func TestNewListSkipsCommentsAndBlank(t *testing.T) {
	l := NewList([]string{"", "// comment", "test", "*.wild", "!ok.wild"})
	if got := l.ETLD("a.test"); got != "test." {
		t.Errorf("ETLD = %q", got)
	}
	if got := l.ETLD("x.wild"); got != "x.wild." {
		t.Errorf("wildcard ETLD = %q", got)
	}
	if got := l.ETLD("ok.wild"); got != "wild." {
		t.Errorf("exception ETLD = %q", got)
	}
}

func TestCaseInsensitive(t *testing.T) {
	if got := ETLD("WWW.BBC.CO.UK"); got != "co.uk." {
		t.Errorf("ETLD upper = %q", got)
	}
}
