package encwire

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dnsobservatory/internal/metrics"
)

// Metric family names the accumulator publishes. All counters are
// registered read-through: collect loads the atomics, the ingest path
// pays one atomic add per observation.
const (
	MetricMessages     = "dnsobs_encwire_messages_total"
	MetricFlows        = "dnsobs_encwire_flows_total"
	MetricHandshakes   = "dnsobs_encwire_handshakes_total"
	MetricWireBytes    = "dnsobs_encwire_wire_bytes_total"
	MetricDecodeErrors = "dnsobs_encwire_decode_errors_total"
)

// Accumulator aggregates an observation stream: global counters plus a
// per-(mode, policy) breakdown. Add and RecordDecodeError are safe for
// concurrent use; Status and Instrument may run alongside them.
type Accumulator struct {
	queries, responses atomic.Uint64
	flows, handshakes  atomic.Uint64
	wireUp, wireDown   atomic.Uint64
	decodeErrs         atomic.Uint64

	mu       sync.Mutex
	lastFlow uint64
	haveFlow bool
	first    time.Time
	last     time.Time
	byKey    map[accKey]*accBucket
}

type accKey struct {
	mode   Mode
	policy Policy
}

type accBucket struct {
	flows, queries, responses, wireBytes uint64
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{byKey: make(map[accKey]*accBucket)}
}

// Add folds one observation in. Flow boundaries are detected by flow-id
// transitions, which is exact for the in-order streams the layer and
// the file format produce.
func (a *Accumulator) Add(obs *Observation) {
	if obs.Dir == DirResponse {
		a.responses.Add(1)
		a.wireDown.Add(uint64(obs.WireLen))
	} else {
		a.queries.Add(1)
		a.wireUp.Add(uint64(obs.WireLen))
	}
	if obs.Handshake {
		a.handshakes.Add(1)
	}

	a.mu.Lock()
	defer a.mu.Unlock()
	newFlow := !a.haveFlow || obs.Flow != a.lastFlow
	if newFlow {
		a.haveFlow = true
		a.lastFlow = obs.Flow
		a.flows.Add(1)
	}
	if a.first.IsZero() || obs.Time.Before(a.first) {
		a.first = obs.Time
	}
	if obs.Time.After(a.last) {
		a.last = obs.Time
	}
	k := accKey{obs.Mode, obs.Policy}
	b := a.byKey[k]
	if b == nil {
		b = &accBucket{}
		a.byKey[k] = b
	}
	if newFlow {
		b.flows++
	}
	if obs.Dir == DirResponse {
		b.responses++
	} else {
		b.queries++
	}
	b.wireBytes += uint64(obs.WireLen)
}

// RecordDecodeError counts a frame that failed to decode.
func (a *Accumulator) RecordDecodeError() { a.decodeErrs.Add(1) }

// ModeStatus is the per-(mode, policy) slice of Status.
type ModeStatus struct {
	Mode      string `json:"mode"`
	Policy    string `json:"policy"`
	Flows     uint64 `json:"flows"`
	Queries   uint64 `json:"queries"`
	Responses uint64 `json:"responses"`
	WireBytes uint64 `json:"wire_bytes"`
}

// Status is the JSON shape /api/encdns serves.
type Status struct {
	Flows         uint64       `json:"flows"`
	Messages      uint64       `json:"messages"`
	Queries       uint64       `json:"queries"`
	Responses     uint64       `json:"responses"`
	Handshakes    uint64       `json:"handshakes"`
	WireBytesUp   uint64       `json:"wire_bytes_up"`
	WireBytesDown uint64       `json:"wire_bytes_down"`
	DecodeErrors  uint64       `json:"decode_errors"`
	First         time.Time    `json:"first"`
	Last          time.Time    `json:"last"`
	Modes         []ModeStatus `json:"modes"`
}

// Status snapshots the accumulator (webui hook shape: func() any).
func (a *Accumulator) Status() any {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := Status{
		Flows:         a.flows.Load(),
		Queries:       a.queries.Load(),
		Responses:     a.responses.Load(),
		Handshakes:    a.handshakes.Load(),
		WireBytesUp:   a.wireUp.Load(),
		WireBytesDown: a.wireDown.Load(),
		DecodeErrors:  a.decodeErrs.Load(),
		First:         a.first,
		Last:          a.last,
		Modes:         make([]ModeStatus, 0, len(a.byKey)),
	}
	st.Messages = st.Queries + st.Responses
	for k, b := range a.byKey {
		st.Modes = append(st.Modes, ModeStatus{
			Mode:      k.mode.String(),
			Policy:    k.policy.String(),
			Flows:     b.flows,
			Queries:   b.queries,
			Responses: b.responses,
			WireBytes: b.wireBytes,
		})
	}
	sort.Slice(st.Modes, func(i, j int) bool {
		if st.Modes[i].Mode != st.Modes[j].Mode {
			return st.Modes[i].Mode < st.Modes[j].Mode
		}
		return st.Modes[i].Policy < st.Modes[j].Policy
	})
	return st
}

// Instrument registers the dnsobs_encwire_* families read-through.
func (a *Accumulator) Instrument(reg *metrics.Registry) {
	reg.CounterFunc(MetricMessages, "encrypted client-leg messages observed",
		a.queries.Load, "dir", "query")
	reg.CounterFunc(MetricMessages, "encrypted client-leg messages observed",
		a.responses.Load, "dir", "response")
	reg.CounterFunc(MetricFlows, "encrypted client-leg flows observed",
		a.flows.Load)
	reg.CounterFunc(MetricHandshakes, "modeled connection handshakes observed",
		a.handshakes.Load)
	reg.CounterFunc(MetricWireBytes, "ciphertext bytes observed on the encrypted channel",
		a.wireUp.Load, "dir", "query")
	reg.CounterFunc(MetricWireBytes, "ciphertext bytes observed on the encrypted channel",
		a.wireDown.Load, "dir", "response")
	reg.CounterFunc(MetricDecodeErrors, "observation frames that failed to decode",
		a.decodeErrs.Load)
}
