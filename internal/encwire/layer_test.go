package encwire

import (
	"sync"
	"testing"
	"time"
)

func layerConfig(emit func(*Observation)) Config {
	return Config{
		Mode:   ModeDoT,
		Policy: PadEDNS0,
		Seed:   7,
		Start:  time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC),
		Emit:   emit,
	}
}

func TestLayerDeterministic(t *testing.T) {
	run := func() []Observation {
		var got []Observation
		l := NewLayer(layerConfig(func(o *Observation) { got = append(got, *o) }))
		for i := 0; i < 50; i++ {
			f := l.StartFlow(float64(i)*0.1, uint32(i%5), 0)
			f.Message(float64(i)*0.1, "example.com.", 50+i, 120+i, 12)
		}
		return got
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 100 {
		t.Fatalf("got %d and %d observations, want 100 each", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("observation %d differs between identical runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// TestBeginFlowMatchesStartFlow: the allocation-free reuse API must
// produce the identical observation stream as per-flow allocation.
func TestBeginFlowMatchesStartFlow(t *testing.T) {
	run := func(reuse bool) []Observation {
		var got []Observation
		l := NewLayer(layerConfig(func(o *Observation) { got = append(got, *o) }))
		var scratch Flow
		for i := 0; i < 50; i++ {
			f := &scratch
			if reuse {
				l.BeginFlow(f, float64(i)*0.1, uint32(i%5), 0)
			} else {
				f = l.StartFlow(float64(i)*0.1, uint32(i%5), 0)
			}
			f.Message(float64(i)*0.1, "example.com.", 50+i, 120+i, 12)
		}
		return got
	}
	a, b := run(false), run(true)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("got %d and %d observations", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("observation %d differs between StartFlow and BeginFlow:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestLayerConnectionReuse(t *testing.T) {
	var got []Observation
	cfg := layerConfig(func(o *Observation) { got = append(got, *o) })
	cfg.Clients = 1 // force every flow onto one connection
	cfg.IdleTimeout = 5
	l := NewLayer(cfg)

	f := l.StartFlow(0, 0, 0)
	f.Message(0, "a.example.", 40, 100, 10)
	f.Message(0.5, "a.example.", 40, 100, 10)
	// Past the idle timeout: must re-handshake.
	f2 := l.StartFlow(20, 0, 0)
	f2.Message(20, "b.example.", 40, 100, 10)

	if len(got) != 6 {
		t.Fatalf("got %d observations, want 6", len(got))
	}
	wantHS := []bool{true, false, false, false, true, false}
	for i, o := range got {
		if o.Handshake != wantHS[i] {
			t.Errorf("obs %d handshake = %v, want %v", i, o.Handshake, wantHS[i])
		}
	}
	st := l.Stats()
	if st.Handshakes != 2 {
		t.Errorf("handshakes = %d, want 2", st.Handshakes)
	}
	// Handshake delay: the first message of a fresh connection leaves
	// later than its dispatch offset by the modeled setup RTTs.
	base := cfg.Start
	if d := got[0].Time.Sub(base); d < 2*15*time.Millisecond {
		t.Errorf("first message at +%v, want ≥ 2 RTT handshake delay", d)
	}
	if d := got[2].Time.Sub(base.Add(500 * time.Millisecond)); d > 10*time.Millisecond {
		t.Errorf("reused-connection query delayed %v, want no handshake delay", d)
	}
}

func TestLayerUnansweredAndDomainSticky(t *testing.T) {
	var got []Observation
	l := NewLayer(layerConfig(func(o *Observation) { got = append(got, *o) }))
	f := l.StartFlow(0, 1, 3)
	f.Message(0, "", 40, 0, 0)                // unanswered, no label yet
	f.Message(0.1, "tun.example.", 40, 90, 5) // label arrives
	f.Message(0.2, "", 40, 90, 5)             // label sticks
	if len(got) != 5 {
		t.Fatalf("got %d observations, want 5", len(got))
	}
	if got[0].Domain != "" || got[1].Domain != "tun.example." || got[4].Domain != "tun.example." {
		t.Errorf("domain labels = %q, %q, %q", got[0].Domain, got[1].Domain, got[4].Domain)
	}
	for i, o := range got {
		if o.Workload != 3 {
			t.Errorf("obs %d workload = %d, want 3", i, o.Workload)
		}
		if o.Flow != got[0].Flow {
			t.Errorf("obs %d flow = %d, want %d", i, o.Flow, got[0].Flow)
		}
	}
	st := l.Stats()
	if st.Queries != 3 || st.Responses != 2 || st.Messages != 5 {
		t.Errorf("stats = %+v", st)
	}
}

// TestLayerConcurrentFlows is the -race soak: many goroutines drive
// separate flows through one layer, and the accounting identity
// messages == queries + responses must hold at the end, with emit
// having seen every message exactly once.
func TestLayerConcurrentFlows(t *testing.T) {
	for _, mode := range []Mode{ModeDoT, ModeDoH, ModeDoQ} {
		for _, pol := range []Policy{PadNone, PadEDNS0, PadBlock} {
			var emitted int
			cfg := Config{Mode: mode, Policy: pol, Seed: 1, Emit: func(*Observation) { emitted++ }}
			l := NewLayer(cfg)
			const workers, msgs = 8, 200
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					f := l.StartFlow(float64(w), uint32(w), 0)
					for i := 0; i < msgs; i++ {
						resp := 120
						if i%7 == 0 {
							resp = 0 // unanswered
						}
						f.Message(float64(w)+float64(i)*0.01, "x.example.", 40+i%50, resp, 3)
					}
				}(w)
			}
			wg.Wait()
			st := l.Stats()
			if st.Messages != st.Queries+st.Responses {
				t.Fatalf("%v/%v: messages %d != queries %d + responses %d", mode, pol, st.Messages, st.Queries, st.Responses)
			}
			if st.Queries != workers*msgs {
				t.Fatalf("%v/%v: queries = %d, want %d", mode, pol, st.Queries, workers*msgs)
			}
			if st.Flows != workers {
				t.Fatalf("%v/%v: flows = %d, want %d", mode, pol, st.Flows, workers)
			}
			if uint64(emitted) != st.Messages {
				t.Fatalf("%v/%v: emit saw %d, stats %d", mode, pol, emitted, st.Messages)
			}
			if pol == PadNone && st.PadBytes != 0 {
				t.Fatalf("%v/none: pad bytes = %d, want 0", mode, st.PadBytes)
			}
			if pol != PadNone && st.PadBytes == 0 {
				t.Fatalf("%v/%v: pad bytes = 0, want > 0", mode, pol)
			}
		}
	}
}
