package encwire

import (
	"errors"
	"testing"
)

func TestModePolicyDirStrings(t *testing.T) {
	for _, m := range []Mode{ModePlain, ModeDoT, ModeDoH, ModeDoQ} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if m, err := ParseMode("udp"); err != nil || m != ModePlain {
		t.Errorf("ParseMode(udp) = %v, %v", m, err)
	}
	if _, err := ParseMode("tor"); !errors.Is(err, ErrUnknownMode) {
		t.Errorf("ParseMode(tor) err = %v", err)
	}
	for _, p := range []Policy{PadNone, PadEDNS0, PadBlock} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("random"); !errors.Is(err, ErrUnknownPolicy) {
		t.Errorf("ParsePolicy(random) err = %v", err)
	}
	if DirQuery.String() != "query" || DirResponse.String() != "response" {
		t.Error("Dir strings wrong")
	}
	if Mode(200).String() == "" || Policy(200).String() == "" {
		t.Error("out-of-range String must not be empty")
	}
}

// TestPaddingProperties is the satellite property test: for every mode,
// policy, direction and a sweep of plaintext sizes, padded sizes are
// never smaller than unpadded ones, EDNS0-padded messages land on the
// RFC 8467 quanta, and block-padded framed payloads are ≡ 0 mod block.
func TestPaddingProperties(t *testing.T) {
	modes := []Mode{ModePlain, ModeDoT, ModeDoH, ModeDoQ}
	dirs := []Dir{DirQuery, DirResponse}
	blocks := []int{0, 64, 256, 468}
	for _, mode := range modes {
		for _, dir := range dirs {
			for plain := 1; plain <= 5000; plain += 13 {
				for _, reused := range []bool{false, true} {
					base := FramedLen(mode, PadNone, 0, dir, plain, reused)
					// EDNS0: at least as large, message on a quantum boundary.
					e := FramedLen(mode, PadEDNS0, 0, dir, plain, reused)
					if e < base {
						t.Fatalf("%v/%v plain=%d: edns0 framed %d < unpadded %d", mode, dir, plain, e, base)
					}
					q := EDNS0QueryQuantum
					if dir == DirResponse {
						q = EDNS0ResponseQuantum
					}
					if padded := PadDNS(PadEDNS0, dir, plain); padded%q != 0 || padded < plain {
						t.Fatalf("%v plain=%d: PadDNS = %d, want ≥ plain multiple of %d", dir, plain, padded, q)
					}
					// Block: at least as large, framed ≡ 0 mod block.
					for _, block := range blocks {
						b := FramedLen(mode, PadBlock, block, dir, plain, reused)
						if b < base {
							t.Fatalf("%v/%v plain=%d block=%d: framed %d < unpadded %d", mode, dir, plain, block, b, base)
						}
						eff := block
						if eff <= 0 {
							eff = DefaultBlock
						}
						if b%eff != 0 {
							t.Fatalf("%v/%v plain=%d block=%d: framed %d not ≡ 0 mod %d", mode, dir, plain, block, b, eff)
						}
					}
					// Wire length dominates framed length for encrypted modes.
					for _, pol := range []Policy{PadNone, PadEDNS0, PadBlock} {
						f := FramedLen(mode, pol, 256, dir, plain, reused)
						w := WireLen(mode, pol, 256, dir, plain, reused)
						if mode == ModePlain {
							if w != f {
								t.Fatalf("plain: wire %d != framed %d", w, f)
							}
						} else if w <= f {
							t.Fatalf("%v: wire %d ≤ framed %d", mode, w, f)
						}
					}
				}
			}
		}
	}
}

func TestDoHHeaderCompression(t *testing.T) {
	fresh := FramedLen(ModeDoH, PadNone, 0, DirQuery, 60, false)
	reused := FramedLen(ModeDoH, PadNone, 0, DirQuery, 60, true)
	if reused >= fresh {
		t.Errorf("DoH reused query framing %d ≥ fresh %d", reused, fresh)
	}
	// DoT/DoQ framing must not depend on connection reuse.
	for _, m := range []Mode{ModeDoT, ModeDoQ} {
		if FramedLen(m, PadNone, 0, DirQuery, 60, false) != FramedLen(m, PadNone, 0, DirQuery, 60, true) {
			t.Errorf("%v framing depends on reuse", m)
		}
	}
}

func TestHandshakeRTTs(t *testing.T) {
	if HandshakeRTTs(ModePlain) != 0 {
		t.Error("plain mode has no handshake")
	}
	if HandshakeRTTs(ModeDoT) != 2 || HandshakeRTTs(ModeDoH) != 2 {
		t.Error("TCP+TLS1.3 modes = 2 RTT")
	}
	if HandshakeRTTs(ModeDoQ) != 1 {
		t.Error("QUIC = 1 RTT")
	}
}
