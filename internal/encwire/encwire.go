package encwire

import (
	"errors"
	"fmt"

	"dnsobservatory/internal/ipwire"
)

// Mode identifies the client→resolver transport.
type Mode uint8

// Transport modes. Values are wire-stable: they travel in observation
// frames and in sie.Transaction.ClientTransport.
const (
	ModePlain Mode = iota // UDP/53, no encryption
	ModeDoT               // DNS over TLS (RFC 7858)
	ModeDoH               // DNS over HTTPS/2 (RFC 8484)
	ModeDoQ               // DNS over dedicated QUIC (RFC 9250)
)

// String returns the conventional lowercase name.
func (m Mode) String() string {
	switch m {
	case ModePlain:
		return "plain"
	case ModeDoT:
		return "dot"
	case ModeDoH:
		return "doh"
	case ModeDoQ:
		return "doq"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// ErrUnknownMode reports an unparsable mode or policy name.
var ErrUnknownMode = errors.New("encwire: unknown transport mode")

// ErrUnknownPolicy reports an unparsable padding policy name.
var ErrUnknownPolicy = errors.New("encwire: unknown padding policy")

// ParseMode parses a mode name as printed by Mode.String ("udp" is
// accepted as an alias for "plain").
func ParseMode(s string) (Mode, error) {
	switch s {
	case "plain", "udp", "udp53", "":
		return ModePlain, nil
	case "dot":
		return ModeDoT, nil
	case "doh":
		return ModeDoH, nil
	case "doq":
		return ModeDoQ, nil
	}
	return ModePlain, fmt.Errorf("%w: %q", ErrUnknownMode, s)
}

// Policy selects the padding strategy applied to encrypted messages.
type Policy uint8

// Padding policies.
const (
	PadNone  Policy = iota // no padding
	PadEDNS0               // RFC 8467 EDNS0 padding of the DNS message
	PadBlock               // record-level padding to a block multiple
)

// String returns the conventional lowercase name.
func (p Policy) String() string {
	switch p {
	case PadNone:
		return "none"
	case PadEDNS0:
		return "edns0"
	case PadBlock:
		return "block"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// ParsePolicy parses a policy name as printed by Policy.String.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "none", "":
		return PadNone, nil
	case "edns0":
		return PadEDNS0, nil
	case "block":
		return PadBlock, nil
	}
	return PadNone, fmt.Errorf("%w: %q", ErrUnknownPolicy, s)
}

// Dir is the direction of a message on the client↔resolver channel.
type Dir uint8

// Directions.
const (
	DirQuery    Dir = iota // client → resolver
	DirResponse            // resolver → client
)

// String returns "query" or "response".
func (d Dir) String() string {
	if d == DirResponse {
		return "response"
	}
	return "query"
}

// RFC 8467 §4 recommended padding quanta, plus the 4-byte EDNS0 option
// header (option code + option length) the padding option itself costs.
const (
	EDNS0QueryQuantum    = 128
	EDNS0ResponseQuantum = 468
	EDNS0OptionLen       = 4
)

// DefaultBlock is the block size PadBlock uses when none is configured.
const DefaultBlock = 256

// roundUp rounds n up to the next multiple of q (q > 0).
func roundUp(n, q int) int { return (n + q - 1) / q * q }

// PadDNS returns the DNS message length after EDNS0 padding. PadNone
// and PadBlock leave the message itself untouched (block padding is
// applied to the framed payload by FramedLen).
func PadDNS(policy Policy, dir Dir, plain int) int {
	if policy != PadEDNS0 {
		return plain
	}
	q := EDNS0QueryQuantum
	if dir == DirResponse {
		q = EDNS0ResponseQuantum
	}
	return roundUp(plain+EDNS0OptionLen, q)
}

// DoH framing model: one HTTP/2 HEADERS frame plus one DATA frame per
// message (RFC 8484 POST exchanges). The first request on a connection
// carries full header fields; later ones hit the HPACK dynamic table
// and shrink to indexed references. Sizes are representative of real
// doh clients, not exact.
const (
	dohFrameHeaderLen   = 9 // HTTP/2 frame header
	dohReqHeadersFirst  = 124
	dohReqHeadersReused = 28
	dohRspHeadersFirst  = 80
	dohRspHeadersReused = 12
)

// DoQ framing model: one unidirectional stream per exchange (RFC 9250
// §4.2), a STREAM frame header (type + stream ID + length varints) and
// the RFC 9250 2-octet message length prefix.
const (
	doqStreamFrameLen = 4
	doqLenPrefix      = 2
)

// dotLenPrefix is the RFC 1035 §4.2.2 2-octet length prefix DoT keeps.
const dotLenPrefix = 2

// FramedLen returns the plaintext payload length after DNS-level
// padding and transport framing, before encryption: the byte count fed
// to the TLS record layer (DoT/DoH) or the QUIC STREAM frame (DoQ).
// reused reports whether the underlying connection has already carried
// a message (it only affects DoH header compression). For PadBlock the
// framed payload is padded to a multiple of block (DefaultBlock when
// block <= 0), modeling record-level padding.
func FramedLen(mode Mode, policy Policy, block int, dir Dir, plain int, reused bool) int {
	dns := PadDNS(policy, dir, plain)
	var framed int
	switch mode {
	case ModeDoT:
		framed = dotLenPrefix + dns
	case ModeDoH:
		hdr := dohReqHeadersFirst
		switch {
		case dir == DirQuery && reused:
			hdr = dohReqHeadersReused
		case dir == DirResponse && !reused:
			hdr = dohRspHeadersFirst
		case dir == DirResponse && reused:
			hdr = dohRspHeadersReused
		}
		framed = dohFrameHeaderLen + hdr + dohFrameHeaderLen + dns
	case ModeDoQ:
		framed = doqStreamFrameLen + doqLenPrefix + dns
	default:
		framed = dns
	}
	if policy == PadBlock {
		if block <= 0 {
			block = DefaultBlock
		}
		framed = roundUp(framed, block)
	}
	return framed
}

// WireLen returns the bytes a passive observer of the encrypted channel
// sees for one message: the TLS ciphertext (DoT/DoH) or QUIC packet
// bytes (DoQ) carrying the framed payload. IP and TCP/UDP headers are
// excluded — they are constant per segment and carry no signal the
// traffic-analysis features use. For ModePlain it is the bare DNS
// message length.
func WireLen(mode Mode, policy Policy, block int, dir Dir, plain int, reused bool) int {
	framed := FramedLen(mode, policy, block, dir, plain, reused)
	switch mode {
	case ModeDoT, ModeDoH:
		return ipwire.TLSRecordWireLen(framed)
	case ModeDoQ:
		return ipwire.QUICPacketWireLen(framed)
	}
	return framed
}

// HandshakeRTTs returns the modeled connection-setup round trips before
// the first message can leave: TCP + TLS 1.3 for DoT/DoH, one combined
// round trip for QUIC 1.
func HandshakeRTTs(mode Mode) int {
	switch mode {
	case ModeDoT, ModeDoH:
		return 2
	case ModeDoQ:
		return 1
	}
	return 0
}
