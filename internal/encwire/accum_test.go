package encwire

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dnsobservatory/internal/metrics"
)

func TestAccumulator(t *testing.T) {
	a := NewAccumulator()
	base := time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)
	// Two flows on dot/edns0, one on doh/none.
	feed := []Observation{
		{Flow: 1, Time: base, Mode: ModeDoT, Policy: PadEDNS0, Dir: DirQuery, WireLen: 150, Handshake: true},
		{Flow: 1, Time: base.Add(time.Second), Mode: ModeDoT, Policy: PadEDNS0, Dir: DirResponse, WireLen: 500},
		{Flow: 2, Time: base.Add(2 * time.Second), Mode: ModeDoT, Policy: PadEDNS0, Dir: DirQuery, WireLen: 150},
		{Flow: 3, Time: base.Add(3 * time.Second), Mode: ModeDoH, Policy: PadNone, Dir: DirQuery, WireLen: 120, Handshake: true},
	}
	for i := range feed {
		a.Add(&feed[i])
	}
	a.RecordDecodeError()

	st, ok := a.Status().(Status)
	if !ok {
		t.Fatal("Status() did not return a Status")
	}
	if st.Flows != 3 || st.Queries != 3 || st.Responses != 1 || st.Messages != 4 {
		t.Errorf("status = %+v", st)
	}
	if st.Handshakes != 2 || st.DecodeErrors != 1 {
		t.Errorf("handshakes/errors = %d/%d", st.Handshakes, st.DecodeErrors)
	}
	if st.WireBytesUp != 150+150+120 || st.WireBytesDown != 500 {
		t.Errorf("bytes = %d up, %d down", st.WireBytesUp, st.WireBytesDown)
	}
	if !st.First.Equal(base) || !st.Last.Equal(base.Add(3*time.Second)) {
		t.Errorf("time range = %v .. %v", st.First, st.Last)
	}
	if len(st.Modes) != 2 {
		t.Fatalf("modes = %+v", st.Modes)
	}
	// Sorted by mode then policy: doh/none < dot/edns0 lexically.
	if st.Modes[0].Mode != "doh" || st.Modes[1].Mode != "dot" {
		t.Errorf("mode order = %s, %s", st.Modes[0].Mode, st.Modes[1].Mode)
	}
	if st.Modes[1].Flows != 2 || st.Modes[1].Queries != 2 || st.Modes[1].Responses != 1 {
		t.Errorf("dot bucket = %+v", st.Modes[1])
	}
}

func TestAccumulatorInstrument(t *testing.T) {
	a := NewAccumulator()
	obs := sampleObs()
	a.Add(&obs)
	reg := metrics.NewRegistry()
	a.Instrument(reg)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, fam := range []string{MetricMessages, MetricFlows, MetricHandshakes, MetricWireBytes, MetricDecodeErrors} {
		if !strings.Contains(out, fam) {
			t.Errorf("exposition missing %s:\n%s", fam, out)
		}
	}
	if !strings.Contains(out, MetricWireBytes+`{dir="response"} 512`) {
		t.Errorf("wire bytes not exported read-through:\n%s", out)
	}
}
