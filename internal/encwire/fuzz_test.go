package encwire

import (
	"bytes"
	"testing"
)

// FuzzDecodeEncFrame hammers the observation decoder: it must never
// panic, never allocate more than the input's own length for the
// domain, and accepted inputs must re-encode to a canonical form that
// decodes back to itself.
func FuzzDecodeEncFrame(f *testing.F) {
	s := sampleObs()
	f.Add(s.Append(nil))
	s.Domain = ""
	s.Handshake = false
	f.Add(s.Append(nil))
	f.Add([]byte{})
	f.Add([]byte{0x08, 0xff})
	f.Add(appendVarintField(nil, obsFieldWireLen, 1))
	f.Fuzz(func(t *testing.T, data []byte) {
		var obs Observation
		if err := obs.Unmarshal(data); err != nil {
			return
		}
		if len(obs.Domain) > MaxDomainLen || len(obs.Domain) > len(data) {
			t.Fatalf("domain longer than allowed: %d bytes from %d input", len(obs.Domain), len(data))
		}
		if obs.WireLen == 0 || obs.WireLen > MaxWireLen {
			t.Fatalf("accepted out-of-range wire length %d", obs.WireLen)
		}
		// Canonical re-encode is a fixed point.
		c1 := obs.Append(nil)
		var obs2 Observation
		if err := obs2.Unmarshal(c1); err != nil {
			t.Fatalf("canonical form does not decode: %v", err)
		}
		c2 := obs2.Append(nil)
		if !bytes.Equal(c1, c2) {
			t.Fatalf("re-encode not a fixed point:\n%x\n%x", c1, c2)
		}
	})
}
