// Package encwire models the encrypted client→resolver leg of the DNS:
// DoT (RFC 7858), DoH (RFC 8484) and DoQ (RFC 9250) framing, padding
// policies (RFC 8467 EDNS0 padding, record-level block padding),
// connection reuse and handshake timing — without any real
// cryptography. What it produces is exactly what a passive observer of
// the encrypted channel would have: per-message ciphertext sizes and
// timestamps (Observation), streamed in the sie frame format.
//
// The Observatory of the paper sits on the plaintext
// resolver↔authoritative leg; this package exists so the simulation can
// also emit the *client*-side view under encryption, which is the input
// to the traffic-analysis experiment (cmd/experiments -run encdns)
// reproducing the Siby et al. result that size/timing features alone
// identify domains in a closed world, and that padding degrades but
// does not eliminate that signal.
//
// # Concurrency contract
//
// A Layer is safe for concurrent use: StartFlow and Flow.Message from
// any number of goroutines serialize on one internal mutex. A single
// Flow value, however, must only be used by one goroutine at a time.
// The Emit callback runs under the layer mutex — it must not call back
// into the layer, and the *Observation it receives is a scratch value
// valid only for the duration of the call (copy what you keep). The
// layer draws from its own seeded RNG and from nothing else, so
// attaching it to a simulation never perturbs the simulation's own
// random stream — the property TestEncModesGoldenStore in
// internal/simnet pins down.
//
// An Accumulator is safe for concurrent Add/RecordDecodeError/Status;
// Writer and Reader are single-goroutine like their sie counterparts.
package encwire
