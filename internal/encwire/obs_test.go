package encwire

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"dnsobservatory/internal/sie"
)

func sampleObs() Observation {
	return Observation{
		Flow:      42,
		Time:      time.Date(2019, 1, 1, 0, 0, 3, 500, time.UTC),
		Mode:      ModeDoH,
		Policy:    PadEDNS0,
		Dir:       DirResponse,
		WireLen:   512,
		Handshake: true,
		Workload:  sie.WorkloadTunnel,
		Domain:    "tunnel.example.com.",
	}
}

func TestObservationRoundTrip(t *testing.T) {
	in := sampleObs()
	buf := in.Append(nil)
	var out Observation
	if err := out.Unmarshal(buf); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !out.Time.Equal(in.Time) {
		t.Errorf("time = %v, want %v", out.Time, in.Time)
	}
	in.Time, out.Time = time.Time{}, time.Time{}
	if in != out {
		t.Errorf("round trip mismatch:\n%+v\n%+v", in, out)
	}
}

func TestObservationUnmarshalErrors(t *testing.T) {
	s := sampleObs()
	good := s.Append(nil)
	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"empty", nil, ErrObsFieldRange}, // no wire length
		{"truncated varint", good[:1], ErrObsTruncated},
		{"bad mode", appendVarintField(appendVarintField(nil, obsFieldWireLen, 10), obsFieldMode, 9), ErrObsFieldRange},
		{"bad dir", appendVarintField(appendVarintField(nil, obsFieldWireLen, 10), obsFieldDir, 7), ErrObsFieldRange},
		{"bad policy", appendVarintField(appendVarintField(nil, obsFieldWireLen, 10), obsFieldPolicy, 9), ErrObsFieldRange},
		{"zero wire len", appendVarintField(nil, obsFieldWireLen, 0), ErrObsFieldRange},
		{"huge wire len", appendVarintField(nil, obsFieldWireLen, MaxWireLen+1), ErrObsFieldRange},
		{"bad handshake", appendVarintField(appendVarintField(nil, obsFieldWireLen, 10), obsFieldHandshake, 2), ErrObsFieldRange},
		{"overflow varint", []byte{0x08, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}, ErrObsOverflow},
		{"bad wire type", []byte{0x0d, 0, 0, 0, 0}, ErrObsWireType}, // field 1, wire type 5
		{"domain too long", append(append(appendVarintField(nil, obsFieldWireLen, 10), 0x4a, 0x80, 0x02), make([]byte, 256)...), ErrObsFieldRange},
		{"domain past end", append(appendVarintField(nil, obsFieldWireLen, 10), 0x4a, 0x20, 'x'), ErrObsTruncated},
	}
	for _, c := range cases {
		var obs Observation
		if err := obs.Unmarshal(c.buf); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestObservationUnknownFieldsSkipped(t *testing.T) {
	s := sampleObs()
	buf := s.Append(nil)
	buf = appendVarintField(buf, 15, 99) // unknown varint field
	buf = append(buf, 15<<3|wireBytes, 3, 'a', 'b', 'c')
	var obs Observation
	if err := obs.Unmarshal(buf); err != nil {
		t.Fatalf("Unmarshal with unknown fields: %v", err)
	}
	if obs.WireLen != 512 || obs.Domain != "tunnel.example.com." {
		t.Errorf("decoded = %+v", obs)
	}
}

func TestWriterReader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := make([]Observation, 0, 10)
	for i := 0; i < 10; i++ {
		o := sampleObs()
		o.Flow = uint64(i/2 + 1)
		o.WireLen = uint32(100 + i)
		want = append(want, o)
		if err := w.Write(&o); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if w.Count() != 10 {
		t.Fatalf("writer count = %d", w.Count())
	}
	r := NewReader(&buf)
	var o Observation
	for i := 0; ; i++ {
		err := r.Read(&o)
		if err == io.EOF {
			if i != 10 {
				t.Fatalf("EOF after %d records", i)
			}
			break
		}
		if err != nil {
			t.Fatalf("Read %d: %v", i, err)
		}
		if o.WireLen != want[i].WireLen || o.Flow != want[i].Flow || o.Domain != want[i].Domain {
			t.Errorf("record %d = %+v, want %+v", i, o, want[i])
		}
	}
	if r.Count() != 10 {
		t.Fatalf("reader count = %d", r.Count())
	}
}

func TestReaderDecodeError(t *testing.T) {
	var buf bytes.Buffer
	// Frame 1: invalid body (mode out of range). Frame 2: valid.
	bad := appendVarintField(appendVarintField(nil, obsFieldWireLen, 10), obsFieldMode, 9)
	if err := sie.WriteFrame(&buf, bad); err != nil {
		t.Fatal(err)
	}
	good := sampleObs()
	if err := NewWriter(&buf).Write(&good); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	var o Observation
	err := r.Read(&o)
	var de *DecodeError
	if !errors.As(err, &de) || !errors.Is(err, ErrObsFieldRange) {
		t.Fatalf("first Read err = %v, want *DecodeError wrapping ErrObsFieldRange", err)
	}
	if err := r.Read(&o); err != nil {
		t.Fatalf("Read after decode error: %v", err)
	}
	if o.WireLen != good.WireLen {
		t.Errorf("resynced record = %+v", o)
	}
	if err := r.Read(&o); err != io.EOF {
		t.Errorf("final Read = %v, want EOF", err)
	}
}
