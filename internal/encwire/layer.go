package encwire

import (
	"math/rand"
	"sync"
	"time"
)

// Config parameterizes a Layer. The zero value of every field has a
// usable default except Mode (ModePlain produces a working layer that
// models an unencrypted channel — useful for differential baselines).
type Config struct {
	Mode   Mode
	Policy Policy
	Block  int // PadBlock block size; DefaultBlock when <= 0

	// Seed drives the layer's private RNG (client assignment, timing
	// jitter). The layer never touches any other RNG, so enabling it
	// inside a simulation cannot perturb the simulation's own stream.
	Seed int64

	// Start anchors observation timestamps: a message at simulation
	// offset t seconds is stamped Start.Add(t).
	Start time.Time

	// Clients is the modeled stub-client population sharing the
	// resolver connections (default 512).
	Clients int

	// IdleTimeout is the connection idle cutoff in seconds: a
	// (client, resolver) pair quiet for longer re-handshakes
	// (default 30).
	IdleTimeout float64

	// BaseRTTMs is the modeled client↔resolver round-trip time in
	// milliseconds (default 15).
	BaseRTTMs float64

	// Emit receives every observation. The pointer is only valid for
	// the duration of the call (the layer reuses one scratch value);
	// calls are serialized under the layer mutex. nil drops
	// observations but keeps the counters.
	Emit func(*Observation)
}

// Layer models the encrypted client→resolver leg: it turns "client
// resolved name X with a queryLen/respLen exchange" events into
// per-message ciphertext size/timing observations, tracking connection
// reuse per (client, resolver) pair.
type Layer struct {
	mode    Mode
	policy  Policy
	block   int
	clients int
	idle    float64
	rttSec  float64
	start   time.Time
	emit    func(*Observation)

	mu       sync.Mutex
	rng      *rand.Rand
	conns    map[uint64]float64 // (client<<32|resolver) → last activity
	obs      Observation        // scratch value passed to emit
	nextFlow uint64

	// Counters, all mutated under mu; Stats snapshots them.
	flows, messages, queries, responses, handshakes uint64
	wireUp, wireDown, padBytes                      uint64
}

// NewLayer returns a layer for cfg.
func NewLayer(cfg Config) *Layer {
	if cfg.Clients <= 0 {
		cfg.Clients = 512
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 30
	}
	if cfg.BaseRTTMs <= 0 {
		cfg.BaseRTTMs = 15
	}
	if cfg.Block <= 0 {
		cfg.Block = DefaultBlock
	}
	return &Layer{
		mode:    cfg.Mode,
		policy:  cfg.Policy,
		block:   cfg.Block,
		clients: cfg.Clients,
		idle:    cfg.IdleTimeout,
		rttSec:  cfg.BaseRTTMs / 1000,
		start:   cfg.Start,
		emit:    cfg.Emit,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		conns:   make(map[uint64]float64),
	}
}

// Mode returns the layer's transport mode.
func (l *Layer) Mode() Mode { return l.mode }

// Flow is one client resolution episode: the messages a single
// generator dispatch produces (one or more query/response exchanges on
// the same connection). Flows are the unit the traffic-analysis
// classifier works on.
type Flow struct {
	l        *Layer
	id       uint64
	client   uint32
	resolver uint32
	workload uint32
	domain   string
}

// StartFlow opens a flow at simulation offset t seconds: a modeled stub
// client (drawn from the layer's private RNG) talking to resolver,
// carrying the given ground-truth workload tag. The returned Flow must
// only be used by one goroutine at a time, but distinct flows may run
// concurrently.
func (l *Layer) StartFlow(t float64, resolver, workload uint32) *Flow {
	f := new(Flow)
	l.BeginFlow(f, t, resolver, workload)
	return f
}

// BeginFlow resets f in place to a fresh flow, exactly as StartFlow
// would return, without allocating. Hot paths that open one flow per
// event (the simnet dispatch loop) reuse a single Flow value this way.
// The previous flow state of f is discarded; it must not be mid-use on
// another goroutine.
func (l *Layer) BeginFlow(f *Flow, t float64, resolver, workload uint32) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextFlow++
	l.flows++
	*f = Flow{
		l:        l,
		id:       l.nextFlow,
		client:   uint32(l.rng.Intn(l.clients)),
		resolver: resolver,
		workload: workload,
	}
}

// Message records one query/response exchange on the flow at simulation
// offset t: a query of queryLen DNS bytes and, when respLen > 0, a
// response of respLen DNS bytes arriving after the resolver spent
// delayMs resolving (0 for a resolver cache hit). domain is the
// ground-truth label; the first non-empty one sticks to the flow.
// respLen == 0 models an unanswered query (only the query message is
// observed).
func (f *Flow) Message(t float64, domain string, queryLen, respLen int, delayMs float64) {
	l := f.l
	l.mu.Lock()
	defer l.mu.Unlock()
	if f.domain == "" && domain != "" {
		f.domain = domain
	}

	key := uint64(f.client)<<32 | uint64(f.resolver)
	last, ok := l.conns[key]
	fresh := !ok || t-last > l.idle
	qt := t + l.rng.Float64()*0.0003 // client-side scheduling jitter
	if fresh {
		l.handshakes++
		qt += float64(HandshakeRTTs(l.mode)) * l.rttSec
	}

	qWire := WireLen(l.mode, l.policy, l.block, DirQuery, queryLen, !fresh)
	l.queries++
	l.messages++
	l.wireUp += uint64(qWire)
	if l.policy != PadNone {
		l.padBytes += uint64(qWire - WireLen(l.mode, PadNone, 0, DirQuery, queryLen, !fresh))
	}
	l.emitLocked(f, qt, DirQuery, qWire, fresh)

	end := qt
	if respLen > 0 {
		rt := qt + l.rttSec/2 + delayMs/1000
		rWire := WireLen(l.mode, l.policy, l.block, DirResponse, respLen, true)
		l.responses++
		l.messages++
		l.wireDown += uint64(rWire)
		if l.policy != PadNone {
			l.padBytes += uint64(rWire - WireLen(l.mode, PadNone, 0, DirResponse, respLen, true))
		}
		l.emitLocked(f, rt, DirResponse, rWire, false)
		end = rt
	}
	l.conns[key] = end
}

// emitLocked fills the scratch observation and hands it to the sink.
// Caller holds l.mu, so emit calls are serialized and the scratch value
// is never aliased across messages.
func (l *Layer) emitLocked(f *Flow, t float64, dir Dir, wire int, handshake bool) {
	if l.emit == nil {
		return
	}
	l.obs = Observation{
		Flow:      f.id,
		Time:      l.start.Add(time.Duration(t * float64(time.Second))),
		Mode:      l.mode,
		Policy:    l.policy,
		Dir:       dir,
		WireLen:   uint32(wire),
		Handshake: handshake,
		Workload:  f.workload,
		Domain:    f.domain,
	}
	l.emit(&l.obs)
}

// Stats is a snapshot of the layer counters. The accounting identity
// Messages == Queries + Responses holds at every quiescent point.
type Stats struct {
	Flows      uint64
	Messages   uint64
	Queries    uint64
	Responses  uint64
	Handshakes uint64
	WireUp     uint64 // query-direction wire bytes
	WireDown   uint64 // response-direction wire bytes
	PadBytes   uint64 // bytes added by the padding policy
}

// Stats snapshots the layer counters.
func (l *Layer) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Flows:      l.flows,
		Messages:   l.messages,
		Queries:    l.queries,
		Responses:  l.responses,
		Handshakes: l.handshakes,
		WireUp:     l.wireUp,
		WireDown:   l.wireDown,
		PadBytes:   l.padBytes,
	}
}
