package encwire

import (
	"errors"
	"io"
	"time"

	"dnsobservatory/internal/sie"
)

// Observation is one encrypted message as a passive observer of the
// client→resolver channel records it: a timestamped ciphertext size
// with direction and flow identity, plus the simulator's ground-truth
// labels (Workload, Domain) that a real observer would not have.
type Observation struct {
	Flow      uint64    // flow (exchange sequence) the message belongs to
	Time      time.Time // when the message crossed the observation point
	Mode      Mode
	Policy    Policy
	Dir       Dir
	WireLen   uint32 // ciphertext bytes on the wire (see WireLen)
	Handshake bool   // first message after a connection handshake
	Workload  uint32 // sie.Workload* ground-truth tag
	Domain    string // ground-truth domain label ("" when none applies)
}

// Field numbers of the observation message (protobuf wire format).
const (
	obsFieldFlow      = 1
	obsFieldTimeNs    = 2
	obsFieldMode      = 3
	obsFieldPolicy    = 4
	obsFieldDir       = 5
	obsFieldWireLen   = 6
	obsFieldHandshake = 7
	obsFieldWorkload  = 8
	obsFieldDomain    = 9
)

// Limits enforced by Unmarshal so hostile frames cannot force large
// allocations or nonsense values into downstream accumulators.
const (
	// MaxDomainLen bounds the domain label (a DNS name is ≤ 255 octets).
	MaxDomainLen = 255
	// MaxWireLen bounds a single message's wire size (far above any
	// framed DNS message, but small enough to keep sums meaningful).
	MaxWireLen = 1 << 24
)

// Errors returned by the observation codec.
var (
	ErrObsTruncated  = errors.New("encwire: truncated observation")
	ErrObsOverflow   = errors.New("encwire: varint overflow")
	ErrObsWireType   = errors.New("encwire: unsupported wire type")
	ErrObsFieldRange = errors.New("encwire: observation field out of range")
)

const (
	wireVarint = 0
	wireBytes  = 2
)

func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func readUvarint(b []byte) (uint64, int, error) {
	var v uint64
	for i := 0; i < len(b); i++ {
		if i == 10 {
			return 0, 0, ErrObsOverflow
		}
		c := b[i]
		if c < 0x80 {
			if i == 9 && c > 1 {
				return 0, 0, ErrObsOverflow
			}
			return v | uint64(c)<<(7*i), i + 1, nil
		}
		v |= uint64(c&0x7f) << (7 * i)
	}
	return 0, 0, ErrObsTruncated
}

func appendVarintField(dst []byte, field int, v uint64) []byte {
	dst = appendUvarint(dst, uint64(field)<<3|wireVarint)
	return appendUvarint(dst, v)
}

// Append serializes obs in protobuf wire format. All scalar fields are
// written unconditionally (so Append∘Unmarshal is a fixed point); the
// domain is written only when non-empty.
func (obs *Observation) Append(dst []byte) []byte {
	dst = appendVarintField(dst, obsFieldFlow, obs.Flow)
	dst = appendVarintField(dst, obsFieldTimeNs, uint64(obs.Time.UnixNano()))
	dst = appendVarintField(dst, obsFieldMode, uint64(obs.Mode))
	dst = appendVarintField(dst, obsFieldPolicy, uint64(obs.Policy))
	dst = appendVarintField(dst, obsFieldDir, uint64(obs.Dir))
	dst = appendVarintField(dst, obsFieldWireLen, uint64(obs.WireLen))
	var hs uint64
	if obs.Handshake {
		hs = 1
	}
	dst = appendVarintField(dst, obsFieldHandshake, hs)
	dst = appendVarintField(dst, obsFieldWorkload, uint64(obs.Workload))
	if obs.Domain != "" {
		dst = appendUvarint(dst, uint64(obsFieldDomain)<<3|wireBytes)
		dst = appendUvarint(dst, uint64(len(obs.Domain)))
		dst = append(dst, obs.Domain...)
	}
	return dst
}

// Unmarshal decodes a serialized observation, replacing obs's contents.
// Unknown fields are skipped; out-of-range values are rejected with
// ErrObsFieldRange before any allocation, so hostile frames cost at
// most the frame's own length.
func (obs *Observation) Unmarshal(frame []byte) error {
	*obs = Observation{}
	for off := 0; off < len(frame); {
		tag, n, err := readUvarint(frame[off:])
		if err != nil {
			return err
		}
		off += n
		field, wt := int(tag>>3), int(tag&7)
		switch wt {
		case wireVarint:
			v, n, err := readUvarint(frame[off:])
			if err != nil {
				return err
			}
			off += n
			switch field {
			case obsFieldFlow:
				obs.Flow = v
			case obsFieldTimeNs:
				obs.Time = time.Unix(0, int64(v))
			case obsFieldMode:
				if v > uint64(ModeDoQ) {
					return ErrObsFieldRange
				}
				obs.Mode = Mode(v)
			case obsFieldPolicy:
				if v > uint64(PadBlock) {
					return ErrObsFieldRange
				}
				obs.Policy = Policy(v)
			case obsFieldDir:
				if v > uint64(DirResponse) {
					return ErrObsFieldRange
				}
				obs.Dir = Dir(v)
			case obsFieldWireLen:
				if v == 0 || v > MaxWireLen {
					return ErrObsFieldRange
				}
				obs.WireLen = uint32(v)
			case obsFieldHandshake:
				if v > 1 {
					return ErrObsFieldRange
				}
				obs.Handshake = v == 1
			case obsFieldWorkload:
				if v > 1<<16 {
					return ErrObsFieldRange
				}
				obs.Workload = uint32(v)
			}
		case wireBytes:
			l, n, err := readUvarint(frame[off:])
			if err != nil {
				return err
			}
			off += n
			if uint64(len(frame)-off) < l {
				return ErrObsTruncated
			}
			b := frame[off : off+int(l)]
			off += int(l)
			if field == obsFieldDomain {
				if len(b) > MaxDomainLen {
					return ErrObsFieldRange
				}
				obs.Domain = string(b)
			}
		default:
			return ErrObsWireType
		}
	}
	if obs.WireLen == 0 {
		return ErrObsFieldRange
	}
	return nil
}

// DecodeError reports a well-framed but undecodable observation; the
// stream is still in sync and the next Read continues.
type DecodeError struct {
	Err error
}

// Error implements error.
func (e *DecodeError) Error() string { return "encwire: undecodable observation: " + e.Err.Error() }

// Unwrap returns the underlying codec error.
func (e *DecodeError) Unwrap() error { return e.Err }

// Writer serializes observations onto an io.Writer as framed messages,
// reusing the sie stream framing (length prefix, same MaxFrameLen).
type Writer struct {
	w   io.Writer
	buf []byte
	n   uint64
}

// NewWriter returns an observation writer.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Write serializes and frames one observation.
func (ow *Writer) Write(obs *Observation) error {
	ow.buf = obs.Append(ow.buf[:0])
	if err := sie.WriteFrame(ow.w, ow.buf); err != nil {
		return err
	}
	ow.n++
	return nil
}

// Count returns the number of observations written.
func (ow *Writer) Count() uint64 { return ow.n }

// Reader deserializes framed observations from an io.Reader.
type Reader struct {
	fr *sie.FrameReader
	n  uint64
}

// NewReader returns an observation reader.
func NewReader(r io.Reader) *Reader { return &Reader{fr: sie.NewFrameReader(r)} }

// Read decodes the next observation into obs. It returns io.EOF at a
// clean end of stream and a *DecodeError for a well-framed but
// undecodable record (the next Read continues with the following
// frame); other errors mean the stream position is unreliable.
func (or *Reader) Read(obs *Observation) error {
	frame, err := or.fr.Next()
	if err != nil {
		return err
	}
	if err := obs.Unmarshal(frame); err != nil {
		return &DecodeError{Err: err}
	}
	or.n++
	return nil
}

// Count returns the number of observations read.
func (or *Reader) Count() uint64 { return or.n }
