// Package transport is the networked sensor→collector boundary: the
// paper's Observatory ingests a ~200k tx/s feed streamed from hundreds
// of distributed SIE sensors (§2.1), and this package makes that split
// a real network protocol instead of an in-process function call.
//
// The wire format is a sequence of typed, length-prefixed frames over
// TCP or a Unix socket: a Hello handshake naming the sensor, then Data
// frames each carrying one serialized sie.Transaction, then an
// optional Bye. Sensor is the client: it batches frames, writes with
// deadlines, and reconnects with jittered exponential backoff,
// retransmitting the unacknowledged batch so a connection torn
// mid-frame always resumes on a frame boundary (at-least-once
// delivery). Collector is the server: it accepts many concurrent
// sensor connections and fans their streams into one ordered ingest
// channel with a bounded queue under the Block/Shed overload policy,
// mirroring the sharded engine one layer up.
//
// Concurrency contract: a Sensor is owned by one goroutine (Stats is
// the exception). A Collector runs one goroutine per connection plus
// one per Serve call; Close stops accepting, cuts the connections,
// waits for the handlers and closes the ingest channel, so the
// consumer drains by ranging until the channel closes. Both ends
// publish dnsobs_transport_* metric families when given a registry.
package transport
