// Package transport is the networked sensor→collector boundary: the
// paper's Observatory ingests a ~200k tx/s feed streamed from hundreds
// of distributed SIE sensors (§2.1), and this package makes that split
// a real network protocol instead of an in-process function call.
//
// The wire format is a sequence of typed, length-prefixed frames over
// TCP or a Unix socket: a Hello handshake naming the sensor and its
// epoch, then Data or SeqData frames each carrying one serialized
// sie.Transaction, then an optional Bye. SeqData prefixes the payload
// with a per-sensor sequence number; the collector acknowledges the
// highest contiguous sequence with Ack frames (every AckEvery frames
// and at Bye), so both ends agree on exactly which prefix of the
// stream is durably accepted.
//
// Sensor is the client: it batches frames, writes with deadlines, and
// reconnects with jittered exponential backoff, retransmitting the
// unacknowledged suffix so a connection torn mid-frame always resumes
// on a frame boundary. With SensorConfig.WALDir set, that suffix also
// lives in a write-ahead log (internal/wal), so a sensor process crash
// retransmits it too — the unacked window survives restarts.
//
// Collector is the server: it accepts many concurrent sensor
// connections and fans their streams into one ordered ingest channel
// with a bounded queue under the Block/Shed overload policy, mirroring
// the sharded engine one layer up. Retransmission makes delivery
// at-least-once on the wire; the collector turns it into
// effectively-once at the channel by deduplicating on (sensor, epoch,
// seq) — a frame at or below the highest sequence already accepted
// from that sensor epoch is counted in Deduped and dropped. The epoch
// (chosen by the sensor, normally its start time) scopes the sequence
// space: a sensor that restarts without its WAL starts a fresh epoch
// and is not misjudged against the old one's watermark.
//
// A collector can itself journal: OpenWAL attaches a write-ahead log
// that absorbs bursts the bounded queue cannot (frames spill to disk
// and a tailer replays them in order), persists accepted-but-unconsumed
// frames across a crash, and is the unit of hand-off between fleet
// members — AbsorbLog replays a dead peer's journal through the same
// dedup gate, so a surviving collector adopts the dead one's sensors
// without loss or double counting (see internal/fleet).
//
// Concurrency contract: a Sensor is owned by one goroutine (Stats is
// the exception). A Collector runs one goroutine per connection plus
// one per Serve call, plus one WAL tailer when a journal is attached;
// Close stops accepting, cuts the connections, waits for the handlers
// and the tailer and closes the ingest channel, so the consumer drains
// by ranging until the channel closes. Both ends publish
// dnsobs_transport_* (and dnsobs_wal_*) metric families when given a
// registry.
package transport
