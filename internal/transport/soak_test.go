package transport

import (
	"sync"
	"testing"
	"time"

	"dnsobservatory/internal/chaos"
	"dnsobservatory/internal/metrics"
	"dnsobservatory/internal/observatory"
	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/tsv"
)

// TestChaosSoakEightSensors drives a collector with eight concurrent
// sensors whose connections are chaos-wrapped on both ends — resets
// mid-write, ack losses forcing duplicate retransmits, stalled reads on
// the collector side — and feeds the merged stream into a sharded
// engine. Run under -race in CI, it asserts the two accounting
// invariants the transport must not break: the engine's
// Ingested = Accepted + Rejected + Shed, and every reconnect any sensor
// performed is counted in dnsobs_transport_reconnects_total.
func TestChaosSoakEightSensors(t *testing.T) {
	const (
		sensors   = 8
		perSensor = 1200
	)
	reg := metrics.NewRegistry()
	base := time.Unix(1600000000, 0)

	// Collector-side chaos: stalled reads (short, so the soak finishes).
	collInj := chaos.New(chaos.Config{
		Seed:            99,
		StalledReadRate: 0.002,
		StallDuration:   2 * time.Millisecond,
	})
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coll := NewCollector(CollectorConfig{
		Metrics:  reg,
		QueueLen: 1024,
		Overload: Block,
		WrapConn: collInj.WrapConn,
	})
	go coll.Serve(ln)
	addr := ln.Addr().String()

	// The consumer: full dnsobs ingest into a sharded engine.
	eng := observatory.NewSharded(observatory.ShardedConfig{
		Config: func() observatory.Config {
			c := observatory.DefaultConfig()
			c.Metrics = reg
			return c
		}(),
		Shards:  2,
		Workers: 2,
	}, observatory.StandardAggregations(0.01), func(*tsv.Snapshot) {})
	var delivered uint64
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		var summarizer sie.Summarizer
		summarizer.KeepUnparsableResponses = true
		for tx := range coll.C() {
			delivered++
			buf := eng.Borrow()
			if err := summarizer.Summarize(tx, &buf.Summary); err != nil {
				eng.Discard(buf)
				eng.RecordRejected()
				continue
			}
			eng.IngestShared(buf, tx.QueryTime.Sub(base).Seconds())
		}
	}()

	// Eight sensors, each owned by its own goroutine, each with its own
	// chaos injector cutting connections mid-write and losing acks (the
	// duplicate-retransmit path). Retries are unlimited: under chaos the
	// contract is at-least-once, not best-effort.
	sens := make([]*Sensor, sensors)
	var wg sync.WaitGroup
	for si := 0; si < sensors; si++ {
		inj := chaos.New(chaos.Config{
			Seed:             int64(1000 + si),
			ConnResetRate:    0.05,
			DupReconnectRate: 0.03,
		})
		sens[si] = NewSensor(SensorConfig{
			Addr:        addr,
			Name:        "soak-" + string(rune('a'+si)),
			FlushBytes:  2 << 10, // small batches: many wire writes, many fault rolls
			BackoffMin:  time.Millisecond,
			BackoffMax:  8 * time.Millisecond,
			MaxAttempts: -1,
			Seed:        int64(si + 1),
			Metrics:     reg,
			WrapConn:    inj.WrapConn,
		})
		wg.Add(1)
		go func(si int, s *Sensor) {
			defer wg.Done()
			for i := 0; i < perSensor; i++ {
				if err := s.Write(dnsTx(t, si*perSensor+i, base)); err != nil {
					t.Errorf("sensor %d write: %v", si, err)
					return
				}
			}
			if err := s.Close(); err != nil {
				t.Errorf("sensor %d close: %v", si, err)
			}
		}(si, sens[si])
	}
	wg.Wait()

	// Every sensor closed successfully, so every transaction is on the
	// wire at least once. Wait for the handlers to drain their sockets,
	// then shut down and drain the queue.
	waitFor(t, func() bool {
		for _, s := range coll.Sensors() {
			if s.Connected {
				return false
			}
		}
		return coll.Stats().Frames >= sensors*perSensor
	})
	coll.Close()
	<-consumerDone
	eng.Close()

	const sent = sensors * perSensor
	if delivered < sent {
		t.Errorf("delivered %d < sent %d: transport lost transactions", delivered, sent)
	}
	t.Logf("soak: sent %d, delivered %d (%d duplicates from ack-loss retransmits)",
		sent, delivered, delivered-sent)

	// Invariant 1: engine accounting balances exactly.
	es := eng.Stats()
	if es.Ingested != es.Accepted+es.Rejected+es.Shed {
		t.Errorf("EngineStats invariant broken: ingested %d != accepted %d + rejected %d + shed %d",
			es.Ingested, es.Accepted, es.Rejected, es.Shed)
	}
	if es.Ingested != delivered {
		t.Errorf("engine ingested %d, consumer delivered %d", es.Ingested, delivered)
	}

	// Invariant 2: every reconnect is counted, per sensor and in the
	// metrics family.
	var totalReconnects uint64
	for si, s := range sens {
		st := s.Stats()
		if st.Connects == 0 {
			t.Errorf("sensor %d never connected", si)
			continue
		}
		if st.Reconnects != st.Connects-1 {
			t.Errorf("sensor %d: reconnects %d != connects %d - 1", si, st.Reconnects, st.Connects)
		}
		totalReconnects += st.Reconnects
	}
	if totalReconnects == 0 {
		t.Error("chaos soak produced no reconnects; fault rates too low to test anything")
	}
	if got := reg.SumCounter(MetricReconnects); got != totalReconnects {
		t.Errorf("%s = %d, sensors report %d", MetricReconnects, got, totalReconnects)
	}

	// The collector's chaos actually fired.
	cs := collInj.Stats()
	t.Logf("soak: collector stalls %d; sensor reconnects %d", cs.StalledRds, totalReconnects)
}
