package transport

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"dnsobservatory/internal/sie"
	"time"
)

// FuzzReadFrame throws arbitrary byte streams at the frame decoder. The
// contract under attack: Next never panics, never allocates beyond
// MaxFramePayload for a single frame no matter what length the prefix
// declares, and every malformed stream maps to a typed error —
// io.ErrUnexpectedEOF for truncation, ErrFrameTooLarge for oversized
// declared lengths, ErrVarintOverflow for unterminated varints,
// ErrUnknownFrameType for unknown envelope types.
func FuzzReadFrame(f *testing.F) {
	// Well-formed streams.
	f.Add(AppendHello(nil, "seed"))
	tx := &sie.Transaction{QueryPacket: []byte("q"), QueryTime: time.Unix(1, 0)}
	f.Add(AppendFrame(AppendHello(nil, "s"), FrameData, tx.Append(nil)))
	f.Add(AppendFrame(nil, FrameBye, nil))
	f.Add(AppendSeqData(AppendHelloEpoch(nil, "s2", 77), 9, tx.Append(nil)))
	f.Add(AppendAck(nil, 1<<40))
	// Malformed seeds steering the fuzzer at each error path.
	f.Add([]byte{FrameData})                               // missing length
	f.Add([]byte{FrameData, 0x80})                         // truncated varint
	f.Add([]byte{FrameData, 0x10, 'x'})                    // mid-frame EOF
	f.Add([]byte{FrameData, 0x80, 0x80, 0x80, 0x80, 0x01}) // oversized length
	f.Add([]byte{0x7f, 0x00})                              // unknown type
	f.Add(bytes.Repeat([]byte{0xff}, 12))                  // varint overflow
	f.Add(AppendFrame(nil, FrameData, bytes.Repeat([]byte("p"), 4096))[:100])

	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		var consumed int
		for {
			typ, payload, err := fr.Next()
			if err != nil {
				switch {
				case errors.Is(err, io.EOF),
					errors.Is(err, io.ErrUnexpectedEOF),
					errors.Is(err, ErrFrameTooLarge),
					errors.Is(err, ErrVarintOverflow),
					errors.Is(err, ErrUnknownFrameType):
					return
				default:
					t.Fatalf("untyped error from decoder: %v", err)
				}
			}
			if len(payload) > MaxFramePayload {
				t.Fatalf("decoder over-allocated: %d-byte payload", len(payload))
			}
			if typ < FrameHello || typ > FrameAck {
				t.Fatalf("decoder returned unknown type %#x without error", typ)
			}
			// Payload parsers must succeed or fail with typed errors too.
			switch typ {
			case FrameHello:
				if _, _, err := ParseHello(payload); err != nil &&
					!errors.Is(err, ErrBadHello) && !errors.Is(err, ErrBadVersion) {
					t.Fatalf("untyped hello error: %v", err)
				}
			case FrameSeqData:
				if _, _, err := ParseSeqData(payload); err != nil &&
					!errors.Is(err, ErrVarintOverflow) {
					t.Fatalf("untyped seq-data error: %v", err)
				}
			case FrameAck:
				if _, err := ParseAck(payload); err != nil &&
					!errors.Is(err, ErrVarintOverflow) {
					t.Fatalf("untyped ack error: %v", err)
				}
			}
			consumed++
			if consumed > len(data)+1 {
				t.Fatalf("decoder emitted %d frames from %d bytes", consumed, len(data))
			}
		}
	})
}
