package transport

import (
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync/atomic"
	"time"

	"dnsobservatory/internal/metrics"
	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/wal"
)

// ErrSensorClosed is returned by Write and Flush after Close.
var ErrSensorClosed = errors.New("transport: sensor is closed")

// SensorConfig tunes a Sensor. Addr is required unless Dial is set.
type SensorConfig struct {
	// Addr is the collector address in SplitAddr form ("host:port",
	// "tcp:host:port" or "unix:/path").
	Addr string
	// Name identifies this sensor in the handshake (default "sensor").
	// The collector keys per-sensor liveness and dedup by it, so names
	// must be unique across a fleet.
	Name string
	// Epoch identifies this sensor incarnation for collector-side
	// dedup. 0 (the default) derives a random nonzero epoch — or, with
	// a WAL holding unacknowledged frames, recovers the previous
	// incarnation's epoch so retransmitted frames keep their identity.
	// Tests set it for determinism.
	Epoch uint64
	// WALDir, when set, spills the unacknowledged batch to a write-
	// ahead log in that directory: every transaction is journaled
	// before it is buffered (and synced before it goes on the wire),
	// acknowledgements are journaled as they arrive, and a restarted
	// sensor resumes retransmission of everything unacknowledged.
	WALDir string
	// WALSegmentBytes tunes the spill log's rotation threshold
	// (default 1 MiB); the log is reset whenever every frame is
	// acknowledged and it has grown past the threshold.
	WALSegmentBytes int
	// DialTimeout bounds one connection attempt (default 5s).
	DialTimeout time.Duration
	// WriteTimeout is the per-flush write deadline (default 10s): a
	// collector that stops reading fails the write instead of hanging
	// the sensor forever, and the reconnect logic takes over.
	WriteTimeout time.Duration
	// AckTimeout bounds one blocking wait for acknowledgements during
	// Close (default = WriteTimeout). A window passing with no
	// progress counts as a failed attempt and forces a reconnect-and-
	// retransmit cycle, bounded by MaxAttempts.
	AckTimeout time.Duration
	// FlushBytes is the unsent-frame threshold that triggers a wire
	// write (default 32 KiB). Write flushes automatically past it;
	// call Flush to bound latency on a slow stream.
	FlushBytes int
	// BackoffMin/BackoffMax bound the jittered exponential reconnect
	// backoff (defaults 50ms / 5s).
	BackoffMin time.Duration
	BackoffMax time.Duration
	// MaxAttempts is the number of consecutive failed connect-or-write
	// attempts before Write/Flush/Close give up and return the error.
	// 0 means the default (8); negative retries forever.
	MaxAttempts int
	// Seed drives backoff jitter (default 1; fixed so failing runs
	// replay).
	Seed int64
	// Metrics, when set, receives the sensor's dnsobs_transport_*
	// families labeled with Name.
	Metrics *metrics.Registry
	// Dial overrides the connection factory (tests, chaos, fleet
	// routing). Default dials Addr.
	Dial func() (net.Conn, error)
	// WrapConn, when set, wraps every dialed connection — the chaos
	// injection point for network faults on the sensor side.
	WrapConn func(net.Conn) net.Conn
}

// SensorStats is a snapshot of one sensor's transport counters.
type SensorStats struct {
	// Connects counts successful connection establishments (dial plus
	// handshake write).
	Connects uint64
	// Reconnects counts re-establishments after a lost connection:
	// Connects minus the first.
	Reconnects uint64
	// Frames counts Data frames put on the wire by a successful write,
	// retransmissions included.
	Frames uint64
	// Acked is the highest cumulative sequence number the collector
	// has acknowledged — equivalently, the count of transactions
	// delivered with certainty.
	Acked uint64
	// Unacked is the depth of the unacknowledged batch: transactions
	// written but not yet acknowledged, which a reconnect (or a
	// restart, with a WAL) would retransmit.
	Unacked uint64
	// Spilled counts transactions journaled to the write-ahead log.
	Spilled uint64
	// Recovered counts unacknowledged transactions restored from the
	// write-ahead log at construction.
	Recovered uint64
}

// frameOff marks one pending frame in Sensor.buf: its sequence number
// and the buffer offset one past its encoding.
type frameOff struct {
	seq uint64
	end int
}

// Sensor is the client half of the transport: it serializes
// transactions into sequenced Data frames, batches them, and ships
// them to a collector with write deadlines and jittered exponential-
// backoff reconnect. Delivery is acknowledgement-driven: a frame
// leaves the pending batch only when the collector acknowledges its
// sequence number (having journaled it when running a WAL), so on a
// lost connection — or a process restart, when WALDir is set — the
// entire unacknowledged batch is retransmitted from the start and the
// collector dedups the overlap: effectively-once delivery end to end.
//
// A Sensor is not safe for concurrent use: one goroutine owns
// Write/Flush/Close. Stats is safe to call from other goroutines.
type Sensor struct {
	cfg   SensorConfig
	conn  net.Conn
	epoch uint64

	// buf holds the pending frames, frame-encoded: [head:sent) is
	// sent-but-unacknowledged, [sent:] is unsent. offs aligns one
	// entry per pending frame; sentFrames counts the sent ones.
	buf        []byte
	head, sent int
	offs       []frameOff
	sentFrames int
	seq        uint64 // last assigned sequence number

	log    *wal.Log
	walErr error // a failed WAL poisons the sensor: durability first

	ackTail []byte // partial ack-frame accumulator across sweeps
	readBuf []byte

	scratch []byte // transaction serialization scratch
	hello   []byte // pre-encoded handshake frame
	rng     *rand.Rand
	fails   int // consecutive failed attempts
	lastErr error
	ever    bool // connected at least once
	closed  bool

	acked     atomic.Uint64
	unacked   atomic.Uint64
	spilled   atomic.Uint64
	recovered uint64

	m *sensorMetrics
}

// NewSensor returns a sensor; the first Write or Flush dials. When
// WALDir is set and its log cannot be opened or recovered, the sensor
// is poisoned: every Write/Flush/Close returns the recovery error —
// durability was asked for and cannot be silently dropped.
func NewSensor(cfg SensorConfig) *Sensor {
	if cfg.Name == "" {
		cfg.Name = "sensor"
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = cfg.WriteTimeout
	}
	if cfg.FlushBytes <= 0 {
		cfg.FlushBytes = 32 << 10
	}
	if cfg.WALSegmentBytes <= 0 {
		cfg.WALSegmentBytes = 1 << 20
	}
	if cfg.BackoffMin <= 0 {
		cfg.BackoffMin = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 5 * time.Second
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 8
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	s := &Sensor{
		cfg:   cfg,
		epoch: cfg.Epoch,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		m:     newSensorMetrics(cfg.Metrics, cfg.Name),
	}
	if cfg.WALDir != "" {
		if err := s.openWAL(); err != nil {
			s.walErr = fmt.Errorf("transport: sensor %q: wal: %w", cfg.Name, err)
		}
	}
	if s.epoch == 0 {
		s.epoch = randomEpoch()
	}
	s.hello = AppendHelloEpoch(nil, cfg.Name, s.epoch)
	if reg := cfg.Metrics; reg != nil {
		reg.GaugeFunc(MetricUnacked, "transactions written but not yet acknowledged by the collector",
			func() float64 { return float64(s.unacked.Load()) }, "sensor", cfg.Name)
	}
	return s
}

// randomEpoch derives a nonzero incarnation epoch. Collisions across
// restarts or hosts would merge two dedup domains, so it is drawn from
// the OS entropy pool, not the clock.
func randomEpoch() uint64 {
	var b [8]byte
	for {
		if _, err := crand.Read(b[:]); err != nil {
			// No entropy source; nanotime is the best fallback left.
			return uint64(time.Now().UnixNano()) | 1
		}
		if v := binary.LittleEndian.Uint64(b[:]); v != 0 {
			return v
		}
	}
}

// openWAL opens the spill log and rebuilds the pending batch from it:
// data records still unacknowledged at the last crash re-enter the
// buffer in order, under their original epoch and sequence numbers.
func (s *Sensor) openWAL() error {
	log, err := wal.Open(s.cfg.WALDir, wal.Options{SegmentBytes: s.cfg.WALSegmentBytes})
	if err != nil {
		return err
	}
	type pending struct {
		seq     uint64
		payload []byte
	}
	var pend []pending
	var lastAck uint64
	err = log.Replay(func(_ uint64, r wal.Record) error {
		switch r.Kind {
		case wal.KindData:
			if r.Seq > s.seq {
				s.seq = r.Seq
			}
			if r.Epoch != 0 {
				s.epoch = r.Epoch
			}
			pend = append(pend, pending{seq: r.Seq, payload: append([]byte(nil), r.Payload...)})
		case wal.KindAck:
			if r.Seq > lastAck {
				lastAck = r.Seq
			}
			trimmed := pend[:0]
			for _, p := range pend {
				if p.seq > r.Seq {
					trimmed = append(trimmed, p)
				}
			}
			pend = trimmed
		}
		return nil
	})
	if err != nil {
		log.Close()
		return err
	}
	for _, p := range pend {
		s.buf = AppendSeqData(s.buf, p.seq, p.payload)
		s.offs = append(s.offs, frameOff{seq: p.seq, end: len(s.buf)})
	}
	s.acked.Store(lastAck)
	s.unacked.Store(uint64(len(s.offs)))
	s.recovered = uint64(len(pend))
	s.log = log
	return nil
}

// Stats returns a snapshot of the sensor's counters.
func (s *Sensor) Stats() SensorStats {
	return SensorStats{
		Connects:   s.m.connects.Value(),
		Reconnects: s.m.reconnects.Value(),
		Frames:     s.m.frames.Value(),
		Acked:      s.acked.Load(),
		Unacked:    s.unacked.Load(),
		Spilled:    s.spilled.Load(),
		Recovered:  s.recovered,
	}
}

// Write serializes one transaction into the pending batch (journaling
// it first when a WAL is configured) and flushes once FlushBytes of
// unsent frames accumulate. The transaction is copied immediately; the
// caller may reuse it.
func (s *Sensor) Write(tx *sie.Transaction) error {
	if s.closed {
		return ErrSensorClosed
	}
	if s.walErr != nil {
		return s.walErr
	}
	s.scratch = tx.Append(s.scratch[:0])
	if len(s.scratch) > MaxFramePayload-10 {
		return ErrFrameTooLarge
	}
	seq := s.seq + 1
	if s.log != nil {
		if _, err := s.log.Append(wal.Record{
			Kind: wal.KindData, Sensor: s.cfg.Name, Epoch: s.epoch, Seq: seq, Payload: s.scratch,
		}); err != nil {
			s.walErr = fmt.Errorf("transport: sensor %q: wal append: %w", s.cfg.Name, err)
			return s.walErr
		}
		s.spilled.Add(1)
	}
	s.seq = seq
	s.buf = AppendSeqData(s.buf, seq, s.scratch)
	s.offs = append(s.offs, frameOff{seq: seq, end: len(s.buf)})
	s.unacked.Store(uint64(len(s.offs)))
	if len(s.buf)-s.sent >= s.cfg.FlushBytes {
		return s.Flush()
	}
	return nil
}

// Flush writes the unsent frames to the collector, reconnecting with
// backoff as needed. On return with nil error every pending frame is
// on the wire (kernel-acknowledged); frames stay buffered until the
// collector acknowledges their sequence numbers.
func (s *Sensor) Flush() error {
	if s.closed {
		return ErrSensorClosed
	}
	if s.walErr != nil {
		return s.walErr
	}
	return s.flush()
}

func (s *Sensor) flush() error {
	for s.sent < len(s.buf) {
		if err := s.ensureConn(); err != nil {
			return err
		}
		if s.log != nil {
			// Write-ahead barrier: nothing goes on the wire before it is
			// on stable storage, so "sent" never outruns what a restart
			// can retransmit.
			if err := s.log.Sync(); err != nil {
				s.walErr = fmt.Errorf("transport: sensor %q: wal sync: %w", s.cfg.Name, err)
				return s.walErr
			}
		}
		s.conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if _, err := s.conn.Write(s.buf[s.sent:]); err != nil {
			// Partial-frame safety: whatever prefix the dead connection
			// carried, the whole unacknowledged batch goes out again on
			// the next one and the collector discards the torn tail and
			// dedups the overlap.
			s.lastErr = err
			s.fails++
			s.dropConn()
			continue
		}
		s.m.frames.Add(uint64(len(s.offs) - s.sentFrames))
		s.sent = len(s.buf)
		s.sentFrames = len(s.offs)
		s.fails = 0
	}
	// Opportunistic acknowledgement sweep: free the batch buffer once
	// enough has piled up. The tiny deadline only ever stalls when the
	// collector has fallen behind on acks.
	if s.conn != nil && s.head < len(s.buf) && len(s.buf)-s.head >= 4*s.cfg.FlushBytes {
		s.sweepAcks(time.Now().Add(time.Millisecond))
	}
	return nil
}

// Close delivers the pending batch — flush, then wait for the
// collector to acknowledge every sequence number, retransmitting on
// silence — sends a Bye frame and closes the connection. The delivery
// error, if any, is returned: a sensor that could not confirm its tail
// must not report success.
func (s *Sensor) Close() error {
	if s.closed {
		return ErrSensorClosed
	}
	if s.walErr != nil {
		s.closed = true
		s.dropConn()
		if s.log != nil {
			s.log.Close()
		}
		return s.walErr
	}
	var err error
	for {
		if err = s.flush(); err != nil {
			break
		}
		if len(s.offs) == 0 {
			break // everything acknowledged
		}
		before := s.acked.Load()
		s.sweepAcks(time.Now().Add(s.cfg.AckTimeout))
		if s.conn == nil {
			continue // connection died mid-wait; flush retransmits
		}
		if s.acked.Load() == before {
			// A full window with no progress: the collector is gone or
			// wedged. Count it and retransmit on a fresh connection.
			s.lastErr = fmt.Errorf("transport: sensor %q: no acknowledgement in %v",
				s.cfg.Name, s.cfg.AckTimeout)
			s.fails++
			s.dropConn()
			if s.cfg.MaxAttempts > 0 && s.fails >= s.cfg.MaxAttempts {
				err = fmt.Errorf("transport: sensor %q: giving up after %d attempts: %w",
					s.cfg.Name, s.fails, s.lastErr)
				break
			}
		}
	}
	if err == nil && s.conn != nil {
		s.conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		s.conn.Write(AppendFrame(nil, FrameBye, nil)) // best-effort
	}
	s.closed = true
	s.dropConn()
	if s.log != nil {
		if cerr := s.log.Close(); err == nil && cerr != nil {
			err = cerr
		}
	}
	return err
}

// sweepAcks reads whatever acknowledgement frames the collector has
// sent, up to the deadline, and prunes the pending batch. A timeout is
// not an error; any other read failure drops the connection (the write
// path reconnects and retransmits).
func (s *Sensor) sweepAcks(deadline time.Time) {
	if s.conn == nil {
		return
	}
	if s.readBuf == nil {
		s.readBuf = make([]byte, 4096)
	}
	s.conn.SetReadDeadline(deadline)
	n, err := s.conn.Read(s.readBuf)
	if n > 0 {
		s.ackTail = append(s.ackTail, s.readBuf[:n]...)
		if !s.parseAcks() {
			s.lastErr = errors.New("transport: unexpected frame from collector")
			s.dropConn()
			return
		}
	}
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return
		}
		s.lastErr = err
		s.dropConn()
	}
}

// parseAcks consumes complete Ack frames from the accumulated
// collector->sensor stream, pruning the batch. It reports false on a
// protocol violation (any non-Ack frame).
func (s *Sensor) parseAcks() bool {
	b := s.ackTail
	used := 0
	for len(b) > 0 {
		if b[0] != FrameAck {
			return false
		}
		if len(b) < 2 {
			break
		}
		plen, n := uvarint(b[1:])
		if n < 0 {
			return false
		}
		if n == 0 || uint64(len(b)-1-n) < plen {
			break // incomplete frame; keep the tail for the next sweep
		}
		seq, err := ParseAck(b[1+n : 1+n+int(plen)])
		if err != nil {
			return false
		}
		s.prune(seq)
		b = b[1+n+int(plen):]
		used = len(s.ackTail) - len(b)
	}
	if used > 0 {
		s.ackTail = append(s.ackTail[:0], s.ackTail[used:]...)
	}
	return true
}

// prune drops every pending frame with seq <= ack from the batch,
// journaling the acknowledgement when a WAL is configured.
func (s *Sensor) prune(ack uint64) {
	if ack > s.seq {
		ack = s.seq // a bogus ack cannot run ahead of what was sent
	}
	if ack <= s.acked.Load() {
		return
	}
	s.acked.Store(ack)
	k := 0
	for k < len(s.offs) && s.offs[k].seq <= ack {
		k++
	}
	if s.log != nil {
		if _, err := s.log.Append(wal.Record{
			Kind: wal.KindAck, Sensor: s.cfg.Name, Epoch: s.epoch, Seq: ack,
		}); err != nil {
			s.walErr = fmt.Errorf("transport: sensor %q: wal append: %w", s.cfg.Name, err)
		}
	}
	if k == 0 {
		return
	}
	s.head = s.offs[k-1].end
	s.offs = append(s.offs[:0], s.offs[k:]...)
	s.sentFrames -= k
	if s.sentFrames < 0 {
		s.sentFrames = 0
	}
	if s.head >= len(s.buf) {
		// Fully acknowledged: recycle the buffer, and the spill log once
		// it has grown past a segment.
		s.buf = s.buf[:0]
		s.head, s.sent, s.sentFrames = 0, 0, 0
		s.offs = s.offs[:0]
		if s.log != nil && s.log.Size() >= int64(s.cfg.WALSegmentBytes) {
			if err := s.log.Reset(); err != nil {
				s.walErr = fmt.Errorf("transport: sensor %q: wal reset: %w", s.cfg.Name, err)
			}
		}
	} else if s.head >= 1<<16 && s.head > len(s.buf)/2 {
		// Compact: slide the live tail down so the buffer stops growing.
		n := copy(s.buf, s.buf[s.head:])
		s.buf = s.buf[:n]
		for i := range s.offs {
			s.offs[i].end -= s.head
		}
		s.sent -= s.head
		s.head = 0
	}
	s.unacked.Store(uint64(len(s.offs)))
}

// ensureConn establishes a connection (dial plus handshake) if none is
// live, applying jittered exponential backoff between attempts and
// honoring MaxAttempts.
func (s *Sensor) ensureConn() error {
	for s.conn == nil {
		if s.cfg.MaxAttempts > 0 && s.fails >= s.cfg.MaxAttempts {
			return fmt.Errorf("transport: sensor %q: giving up after %d attempts: %w",
				s.cfg.Name, s.fails, s.lastErr)
		}
		if s.fails > 0 {
			time.Sleep(s.backoff(s.fails))
		}
		conn, err := s.dial()
		if err != nil {
			s.lastErr = err
			s.fails++
			continue
		}
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if _, err := conn.Write(s.hello); err != nil {
			s.lastErr = err
			s.fails++
			conn.Close()
			continue
		}
		s.conn = conn
		s.m.connects.Inc()
		if s.ever {
			s.m.reconnects.Inc()
		}
		s.ever = true
	}
	return nil
}

// dial opens one connection using the configured factory.
func (s *Sensor) dial() (net.Conn, error) {
	var conn net.Conn
	var err error
	if s.cfg.Dial != nil {
		conn, err = s.cfg.Dial()
	} else {
		network, address := SplitAddr(s.cfg.Addr)
		conn, err = net.DialTimeout(network, address, s.cfg.DialTimeout)
	}
	if err != nil {
		return nil, err
	}
	if s.cfg.WrapConn != nil {
		conn = s.cfg.WrapConn(conn)
	}
	return conn, nil
}

// dropConn closes and forgets the current connection. The next one
// starts with a retransmit of the whole unacknowledged batch, and any
// half-received ack frame from the dead connection is discarded.
func (s *Sensor) dropConn() {
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
	s.sent = s.head
	s.sentFrames = 0
	s.ackTail = s.ackTail[:0]
}

// backoff returns the jittered exponential delay for the given
// consecutive-failure count: base·2^(n-1) capped at BackoffMax, then
// uniformly jittered over [½d, 1½d) so a fleet of sensors cut by one
// collector restart does not reconnect in lockstep.
func (s *Sensor) backoff(fails int) time.Duration {
	d := s.cfg.BackoffMin
	for i := 1; i < fails && d < s.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > s.cfg.BackoffMax {
		d = s.cfg.BackoffMax
	}
	return d/2 + time.Duration(s.rng.Int63n(int64(d)))
}

// removeStaleSocket unlinks a leftover Unix socket file so a restarted
// collector can bind again. Only sockets are removed.
func removeStaleSocket(path string) {
	if fi, err := os.Stat(path); err == nil && fi.Mode()&os.ModeSocket != 0 {
		os.Remove(path)
	}
}
