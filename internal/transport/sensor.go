package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"time"

	"dnsobservatory/internal/metrics"
	"dnsobservatory/internal/sie"
)

// ErrSensorClosed is returned by Write and Flush after Close.
var ErrSensorClosed = errors.New("transport: sensor is closed")

// SensorConfig tunes a Sensor. Addr is required unless Dial is set.
type SensorConfig struct {
	// Addr is the collector address in SplitAddr form ("host:port",
	// "tcp:host:port" or "unix:/path").
	Addr string
	// Name identifies this sensor in the handshake (default "sensor").
	// The collector keys per-sensor liveness by it.
	Name string
	// DialTimeout bounds one connection attempt (default 5s).
	DialTimeout time.Duration
	// WriteTimeout is the per-flush write deadline (default 10s): a
	// collector that stops reading fails the write instead of hanging
	// the sensor forever, and the reconnect logic takes over.
	WriteTimeout time.Duration
	// FlushBytes is the buffered-frame threshold that triggers a wire
	// write (default 32 KiB). Write flushes automatically past it;
	// call Flush to bound latency on a slow stream.
	FlushBytes int
	// BackoffMin/BackoffMax bound the jittered exponential reconnect
	// backoff (defaults 50ms / 5s).
	BackoffMin time.Duration
	BackoffMax time.Duration
	// MaxAttempts is the number of consecutive failed connect-or-write
	// attempts before Write/Flush/Close give up and return the error.
	// 0 means the default (8); negative retries forever.
	MaxAttempts int
	// Seed drives backoff jitter (default 1; fixed so failing runs
	// replay).
	Seed int64
	// Metrics, when set, receives the sensor's dnsobs_transport_*
	// families labeled with Name.
	Metrics *metrics.Registry
	// Dial overrides the connection factory (tests, chaos). Default
	// dials Addr.
	Dial func() (net.Conn, error)
	// WrapConn, when set, wraps every dialed connection — the chaos
	// injection point for network faults on the sensor side.
	WrapConn func(net.Conn) net.Conn
}

// SensorStats is a snapshot of one sensor's transport counters.
type SensorStats struct {
	// Connects counts successful connection establishments (dial plus
	// handshake write).
	Connects uint64
	// Reconnects counts re-establishments after a lost connection:
	// Connects minus the first.
	Reconnects uint64
	// Frames counts Data frames acknowledged by a successful wire
	// write.
	Frames uint64
}

// Sensor is the client half of the transport: it serializes
// transactions into Data frames, batches them, and ships them to a
// collector with write deadlines and jittered exponential-backoff
// reconnect. On a lost connection the entire unacknowledged batch —
// including any frame the old connection tore mid-write — is
// retransmitted from the start on the new one, so the collector always
// resumes on a frame boundary (at-least-once delivery; a frame is
// dropped from the batch only after a fully successful write).
//
// A Sensor is not safe for concurrent use: one goroutine owns
// Write/Flush/Close. Stats is safe to call from other goroutines.
type Sensor struct {
	cfg     SensorConfig
	conn    net.Conn
	buf     []byte // encoded-but-unacknowledged frames
	nbuf    uint64 // frames in buf
	scratch []byte // transaction serialization scratch
	hello   []byte // pre-encoded handshake frame
	rng     *rand.Rand
	fails   int // consecutive failed attempts
	lastErr error
	ever    bool // connected at least once
	closed  bool
	m       *sensorMetrics
}

// NewSensor returns a sensor; the first Write or Flush dials.
func NewSensor(cfg SensorConfig) *Sensor {
	if cfg.Name == "" {
		cfg.Name = "sensor"
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.FlushBytes <= 0 {
		cfg.FlushBytes = 32 << 10
	}
	if cfg.BackoffMin <= 0 {
		cfg.BackoffMin = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 5 * time.Second
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 8
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &Sensor{
		cfg:   cfg,
		hello: AppendHello(nil, cfg.Name),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		m:     newSensorMetrics(cfg.Metrics, cfg.Name),
	}
}

// Stats returns a snapshot of the sensor's counters.
func (s *Sensor) Stats() SensorStats {
	return SensorStats{
		Connects:   s.m.connects.Value(),
		Reconnects: s.m.reconnects.Value(),
		Frames:     s.m.frames.Value(),
	}
}

// Write serializes one transaction into the pending batch and flushes
// it once FlushBytes accumulate. The transaction is copied immediately;
// the caller may reuse it.
func (s *Sensor) Write(tx *sie.Transaction) error {
	if s.closed {
		return ErrSensorClosed
	}
	s.scratch = tx.Append(s.scratch[:0])
	if len(s.scratch) > MaxFramePayload {
		return ErrFrameTooLarge
	}
	s.buf = AppendFrame(s.buf, FrameData, s.scratch)
	s.nbuf++
	if len(s.buf) >= s.cfg.FlushBytes {
		return s.Flush()
	}
	return nil
}

// Flush writes the pending batch to the collector, reconnecting with
// backoff as needed. On return with nil error the batch is on the wire
// (kernel-acknowledged) and the buffer is empty.
func (s *Sensor) Flush() error {
	if s.closed {
		return ErrSensorClosed
	}
	return s.flush()
}

func (s *Sensor) flush() error {
	for len(s.buf) > 0 {
		if err := s.ensureConn(); err != nil {
			return err
		}
		s.conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if _, err := s.conn.Write(s.buf); err != nil {
			// Partial-frame safety: whatever prefix the dead connection
			// carried, the whole batch goes out again on the next one
			// and the collector discards the torn tail it saw.
			s.lastErr = err
			s.fails++
			s.dropConn()
			continue
		}
		s.m.frames.Add(s.nbuf)
		s.nbuf = 0
		s.buf = s.buf[:0]
		s.fails = 0
	}
	return nil
}

// Close flushes the pending batch, sends a Bye frame and closes the
// connection. The flush error, if any, is returned — a sensor that
// could not deliver its tail must not report success.
func (s *Sensor) Close() error {
	if s.closed {
		return ErrSensorClosed
	}
	err := s.flush()
	if err == nil && s.conn != nil {
		s.conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		s.conn.Write(AppendFrame(nil, FrameBye, nil)) // best-effort
	}
	s.closed = true
	s.dropConn()
	return err
}

// ensureConn establishes a connection (dial plus handshake) if none is
// live, applying jittered exponential backoff between attempts and
// honoring MaxAttempts.
func (s *Sensor) ensureConn() error {
	for s.conn == nil {
		if s.cfg.MaxAttempts > 0 && s.fails >= s.cfg.MaxAttempts {
			return fmt.Errorf("transport: sensor %q: giving up after %d attempts: %w",
				s.cfg.Name, s.fails, s.lastErr)
		}
		if s.fails > 0 {
			time.Sleep(s.backoff(s.fails))
		}
		conn, err := s.dial()
		if err != nil {
			s.lastErr = err
			s.fails++
			continue
		}
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if _, err := conn.Write(s.hello); err != nil {
			s.lastErr = err
			s.fails++
			conn.Close()
			continue
		}
		s.conn = conn
		s.m.connects.Inc()
		if s.ever {
			s.m.reconnects.Inc()
		}
		s.ever = true
	}
	return nil
}

// dial opens one connection using the configured factory.
func (s *Sensor) dial() (net.Conn, error) {
	var conn net.Conn
	var err error
	if s.cfg.Dial != nil {
		conn, err = s.cfg.Dial()
	} else {
		network, address := SplitAddr(s.cfg.Addr)
		conn, err = net.DialTimeout(network, address, s.cfg.DialTimeout)
	}
	if err != nil {
		return nil, err
	}
	if s.cfg.WrapConn != nil {
		conn = s.cfg.WrapConn(conn)
	}
	return conn, nil
}

// dropConn closes and forgets the current connection.
func (s *Sensor) dropConn() {
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
}

// backoff returns the jittered exponential delay for the given
// consecutive-failure count: base·2^(n-1) capped at BackoffMax, then
// uniformly jittered over [½d, 1½d) so a fleet of sensors cut by one
// collector restart does not reconnect in lockstep.
func (s *Sensor) backoff(fails int) time.Duration {
	d := s.cfg.BackoffMin
	for i := 1; i < fails && d < s.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > s.cfg.BackoffMax {
		d = s.cfg.BackoffMax
	}
	return d/2 + time.Duration(s.rng.Int63n(int64(d)))
}

// removeStaleSocket unlinks a leftover Unix socket file so a restarted
// collector can bind again. Only sockets are removed.
func removeStaleSocket(path string) {
	if fi, err := os.Stat(path); err == nil && fi.Mode()&os.ModeSocket != 0 {
		os.Remove(path)
	}
}
