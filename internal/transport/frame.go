package transport

import (
	"bufio"
	"errors"
	"io"
)

// The sensor→collector stream is a sequence of typed, length-prefixed
// frames:
//
//	[type: 1 byte][payload length: uvarint][payload]
//
// The first frame on every connection must be a Hello; after it the
// sensor streams Data frames (each payload one serialized
// sie.Transaction) and optionally ends with a Bye. A clean EOF on a
// frame boundary is equivalent to a Bye.
const (
	// FrameHello opens a connection. A version-1 payload is [1][sensor
	// name]; a version-2 payload is [2][epoch: uvarint][sensor name],
	// where the epoch identifies the sensor incarnation for
	// effectively-once dedup. The collector rejects unknown versions.
	FrameHello = 0x01
	// FrameData carries one serialized sie.Transaction with no sequence
	// number (version-1 sensors; at-least-once only).
	FrameData = 0x02
	// FrameBye marks a clean end of stream; its payload is empty.
	FrameBye = 0x03
	// FrameSeqData carries [seq: uvarint][serialized sie.Transaction].
	// seq starts at 1 and increases by 1 per transaction within one
	// (sensor, epoch); the collector dedups replays and retransmits on
	// it and acknowledges delivery with Ack frames.
	FrameSeqData = 0x04
	// FrameAck flows collector→sensor: [seq: uvarint] acknowledges
	// every sequenced frame with seq' <= seq as durably accepted
	// (journaled and synced when the collector runs a WAL, enqueued
	// otherwise). The sensor prunes its retransmit buffer on it.
	FrameAck = 0x05
)

// ProtocolVersion is the baseline hello version (name only).
// ProtocolVersionSeq is the sequenced-delivery version carrying the
// sensor epoch. The collector accepts both.
const (
	ProtocolVersion    = 1
	ProtocolVersionSeq = 2
)

// MaxFramePayload bounds a single frame payload. It matches
// sie.MaxFrameLen — a Data payload is exactly one sie transaction
// message — and caps what a decoder will ever allocate for one frame.
const MaxFramePayload = 1 << 17

// MaxHelloName bounds the sensor name carried in a Hello payload.
const MaxHelloName = 256

// Errors returned by the frame codec. All malformed input maps to one
// of these (or io.EOF / io.ErrUnexpectedEOF for clean / mid-frame
// stream ends) — the decoder never panics and never allocates more
// than MaxFramePayload for a frame, whatever length the prefix claims.
var (
	ErrFrameTooLarge    = errors.New("transport: frame exceeds size limit")
	ErrUnknownFrameType = errors.New("transport: unknown frame type")
	ErrVarintOverflow   = errors.New("transport: length prefix overflows 64 bits")
	ErrBadHello         = errors.New("transport: malformed hello frame")
	ErrBadVersion       = errors.New("transport: unsupported protocol version")
)

// appendUvarint appends v in base-128 varint encoding.
func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// AppendFrame appends one frame to dst. The caller is responsible for
// keeping len(payload) within MaxFramePayload (Sensor.Write checks).
func AppendFrame(dst []byte, typ byte, payload []byte) []byte {
	dst = append(dst, typ)
	dst = appendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// AppendHello appends a version-1 Hello frame carrying the sensor
// name only.
func AppendHello(dst []byte, name string) []byte {
	payload := make([]byte, 0, 1+len(name))
	payload = append(payload, ProtocolVersion)
	payload = append(payload, name...)
	return AppendFrame(dst, FrameHello, payload)
}

// AppendHelloEpoch appends a version-2 Hello frame carrying the sensor
// name and its incarnation epoch.
func AppendHelloEpoch(dst []byte, name string, epoch uint64) []byte {
	payload := make([]byte, 0, 1+10+len(name))
	payload = append(payload, ProtocolVersionSeq)
	payload = appendUvarint(payload, epoch)
	payload = append(payload, name...)
	return AppendFrame(dst, FrameHello, payload)
}

// ParseHello decodes a Hello payload into the sensor name and epoch.
// Version-1 hellos have no epoch; they report 0, which disables dedup.
func ParseHello(payload []byte) (name string, epoch uint64, err error) {
	if len(payload) < 2 {
		return "", 0, ErrBadHello
	}
	switch payload[0] {
	case ProtocolVersion:
		payload = payload[1:]
	case ProtocolVersionSeq:
		var n int
		epoch, n = uvarint(payload[1:])
		if n <= 0 {
			return "", 0, ErrBadHello
		}
		payload = payload[1+n:]
		if len(payload) == 0 {
			return "", 0, ErrBadHello
		}
	default:
		return "", 0, ErrBadVersion
	}
	if len(payload) > MaxHelloName {
		return "", 0, ErrBadHello
	}
	return string(payload), epoch, nil
}

// AppendSeqData appends a sequenced Data frame: seq, then the
// serialized transaction bytes.
func AppendSeqData(dst []byte, seq uint64, tx []byte) []byte {
	dst = append(dst, FrameSeqData)
	var pre [10]byte
	n := len(appendUvarint(pre[:0], seq))
	dst = appendUvarint(dst, uint64(n+len(tx)))
	dst = append(dst, pre[:n]...)
	return append(dst, tx...)
}

// ParseSeqData splits a SeqData payload into the sequence number and
// the transaction bytes.
func ParseSeqData(payload []byte) (seq uint64, tx []byte, err error) {
	seq, n := uvarint(payload)
	if n <= 0 {
		return 0, nil, ErrVarintOverflow
	}
	return seq, payload[n:], nil
}

// AppendAck appends an Ack frame for the cumulative sequence number.
func AppendAck(dst []byte, seq uint64) []byte {
	var pre [10]byte
	return AppendFrame(dst, FrameAck, appendUvarint(pre[:0], seq))
}

// ParseAck decodes an Ack payload.
func ParseAck(payload []byte) (seq uint64, err error) {
	seq, n := uvarint(payload)
	if n <= 0 || n != len(payload) {
		return 0, ErrVarintOverflow
	}
	return seq, nil
}

// uvarint decodes a base-128 varint from the head of b, returning the
// value and the bytes consumed (<= 0 on truncated or overflowing
// input) — the slice-based twin of FrameReader.readUvarint.
func uvarint(b []byte) (uint64, int) {
	var v uint64
	var shift uint
	for i := 0; i < len(b); i++ {
		c := b[i]
		if shift >= 64 || (shift == 63 && c > 1) {
			return 0, -1
		}
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, i + 1
		}
		shift += 7
	}
	return 0, 0
}

// FrameReader decodes frames from a stream through one per-connection
// read buffer. The payload slice returned by Next is reused by the
// following call.
type FrameReader struct {
	br  *bufio.Reader
	buf []byte
}

// NewFrameReader returns a reader over r with a fresh read buffer.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{br: bufio.NewReaderSize(r, 64<<10)}
}

// Buffered reports the bytes already read from the connection but not
// yet consumed as frames — 0 means the next Next would hit the wire.
// The collector uses it to flush pending acks before blocking.
func (fr *FrameReader) Buffered() int { return fr.br.Buffered() }

// Next returns the next frame. It returns io.EOF at a clean end of
// stream (between frames) and io.ErrUnexpectedEOF when the stream ends
// inside a frame; all other malformed input returns one of the typed
// codec errors above. The payload is valid until the next call.
func (fr *FrameReader) Next() (typ byte, payload []byte, err error) {
	typ, err = fr.br.ReadByte()
	if err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, err
	}
	if typ < FrameHello || typ > FrameAck {
		return 0, nil, ErrUnknownFrameType
	}
	n, err := fr.readUvarint()
	if err != nil {
		return 0, nil, err
	}
	if n > MaxFramePayload {
		return 0, nil, ErrFrameTooLarge
	}
	// The allocation is bounded by the check above, no matter what the
	// prefix claimed.
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n)
	}
	payload = fr.buf[:n]
	if _, err := io.ReadFull(fr.br, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return typ, payload, nil
}

// readUvarint decodes a length prefix. A stream ending inside the
// varint is io.ErrUnexpectedEOF — a frame had started with the type
// byte already consumed.
func (fr *FrameReader) readUvarint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		c, err := fr.br.ReadByte()
		if err != nil {
			if err == io.EOF {
				return 0, io.ErrUnexpectedEOF
			}
			return 0, err
		}
		if shift >= 64 || (shift == 63 && c > 1) {
			return 0, ErrVarintOverflow
		}
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, nil
		}
		shift += 7
	}
}

// SplitAddr parses a listen/dial address into (network, address):
// "unix:/path" selects a Unix socket, "tcp:host:port" is explicit TCP,
// and a bare "host:port" defaults to TCP.
func SplitAddr(addr string) (network, address string) {
	const unixPrefix, tcpPrefix = "unix:", "tcp:"
	switch {
	case len(addr) > len(unixPrefix) && addr[:len(unixPrefix)] == unixPrefix:
		return "unix", addr[len(unixPrefix):]
	case len(addr) > len(tcpPrefix) && addr[:len(tcpPrefix)] == tcpPrefix:
		return "tcp", addr[len(tcpPrefix):]
	default:
		return "tcp", addr
	}
}
