package transport

import (
	"bytes"
	"testing"
	"time"

	"dnsobservatory/internal/metrics"
	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/wal"
)

// TestSensorWALRestartRetransmits is the sensor half of durable ingest:
// a sensor that buffered transactions into its spill log and died
// before delivering them is rebuilt from the log — same epoch, same
// sequence numbers — and retransmits everything on its next flush.
func TestSensorWALRestartRetransmits(t *testing.T) {
	dir := t.TempDir()
	const n = 40

	// Incarnation one: journal n transactions, never connect, "crash"
	// (no Close — the buffer dies with the process, the log survives).
	s1 := NewSensor(SensorConfig{
		Addr: "127.0.0.1:1", Name: "dur", Epoch: 7, WALDir: dir,
		FlushBytes: 1 << 20, // never triggers a flush
	})
	for i := 0; i < n; i++ {
		if err := s1.Write(testTx(i)); err != nil {
			t.Fatal(err)
		}
	}
	if st := s1.Stats(); st.Unacked != n || st.Spilled != n {
		t.Fatalf("pre-crash stats: %+v", st)
	}

	// Incarnation two recovers the batch and delivers it.
	coll, addr := startCollector(t, CollectorConfig{})
	got := make(chan []*sie.Transaction, 1)
	go func() { got <- drain(coll) }()
	s2 := NewSensor(SensorConfig{Addr: addr, Name: "dur", WALDir: dir})
	if st := s2.Stats(); st.Recovered != n || st.Unacked != n {
		t.Fatalf("post-recovery stats: %+v", st)
	}
	if err := s2.Close(); err != nil { // flush + wait for acks
		t.Fatal(err)
	}
	coll.Close()
	txs := <-got
	if len(txs) != n {
		t.Fatalf("delivered %d transactions, want %d", len(txs), n)
	}
	for i, tx := range txs {
		if !bytes.Equal(tx.QueryPacket, testTx(i).QueryPacket) {
			t.Fatalf("transaction %d out of order after restart", i)
		}
	}

	// Incarnation three: everything was acknowledged, nothing pending.
	s3 := NewSensor(SensorConfig{Addr: addr, Name: "dur", WALDir: dir})
	if st := s3.Stats(); st.Recovered != 0 || st.Unacked != 0 {
		t.Fatalf("stats after clean shutdown: %+v", st)
	}
}

// TestCollectorWALSpillAndReplay is overload under a WAL: a full ingest
// queue spills to the journal instead of shedding or stalling, frames
// are acknowledged on journal durability alone, and the tailer replays
// the spill into the queue in journal order once the consumer drains.
func TestCollectorWALSpillAndReplay(t *testing.T) {
	coll, addr := startCollector(t, CollectorConfig{QueueLen: 4})
	if err := coll.OpenWAL(t.TempDir(), wal.Options{}); err != nil {
		t.Fatal(err)
	}

	s := NewSensor(SensorConfig{Addr: addr, Name: "spiller", Epoch: 3, FlushBytes: 256})
	const n = 100
	for i := 0; i < n; i++ {
		if err := s.Write(testTx(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Close succeeds with no consumer running: acknowledgements follow
	// the journal, not the queue.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := coll.Stats()
	if st.Spilled == 0 {
		t.Fatalf("nothing spilled with a %d-deep queue: %+v", 4, st)
	}
	if ws, ok := coll.WALStatus(); !ok || !ws.Behind {
		t.Fatalf("wal status = %+v, ok=%v; want behind", ws, ok)
	}

	// Drain: direct enqueues plus the tailer's replay, in order.
	var txs []*sie.Transaction
	for len(txs) < n {
		select {
		case tx := <-coll.C():
			txs = append(txs, tx)
		case <-time.After(5 * time.Second):
			t.Fatalf("stalled at %d of %d transactions", len(txs), n)
		}
	}
	for i, tx := range txs {
		if !bytes.Equal(tx.QueryPacket, testTx(i).QueryPacket) {
			t.Fatalf("transaction %d out of order through the spill", i)
		}
	}
	waitFor(t, func() bool { st := coll.Stats(); return st.Enqueued == n })
	st = coll.Stats()
	if st.Replayed != st.Spilled {
		t.Errorf("replayed %d != spilled %d at quiescence", st.Replayed, st.Spilled)
	}
	if st.Frames+st.Replayed != st.Deduped+st.DecodeErrors+st.Shed+st.Enqueued+st.Spilled {
		t.Errorf("accounting identity broken: %+v", st)
	}

	if err := coll.Checkpoint(n); err != nil {
		t.Fatal(err)
	}
	if ws, _ := coll.WALStatus(); ws.Checkpoint == 0 {
		t.Errorf("checkpoint not recorded: %+v", ws)
	}
	coll.Close()
	if err := coll.CloseWAL(); err != nil {
		t.Fatal(err)
	}
}

// TestCollectorWALRestartRecovery is the collector half of durable
// ingest: journaled frames past the last consumer checkpoint are
// re-enqueued by a restarted collector, and the rebuilt dedup windows
// reject a full retransmission of everything already journaled.
func TestCollectorWALRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	const n, consumed = 50, 20

	coll, addr := startCollector(t, CollectorConfig{})
	if err := coll.OpenWAL(dir, wal.Options{}); err != nil {
		t.Fatal(err)
	}
	s := NewSensor(SensorConfig{Addr: addr, Name: "re", Epoch: 11})
	for i := 0; i < n; i++ {
		if err := s.Write(testTx(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The consumer durably applies the first 20 and checkpoints them;
	// the remaining 30 are read but never confirmed — a crash loses
	// that work, so the journal must re-deliver it.
	for i := 0; i < consumed; i++ {
		<-coll.C()
	}
	if err := coll.Checkpoint(consumed); err != nil {
		t.Fatal(err)
	}
	coll.Close()
	for range coll.C() { // drain without checkpointing
	}
	if err := coll.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// Restart: recovery re-enqueues transactions 21..50 in order.
	coll2, addr2 := startCollector(t, CollectorConfig{})
	if err := coll2.OpenWAL(dir, wal.Options{}); err != nil {
		t.Fatal(err)
	}
	if ws, ok := coll2.WALStatus(); !ok || ws.Recovered != n-consumed {
		t.Fatalf("recovered = %+v (ok=%v), want %d pending", ws, ok, n-consumed)
	}
	for i := consumed; i < n; i++ {
		select {
		case tx := <-coll2.C():
			if !bytes.Equal(tx.QueryPacket, testTx(i).QueryPacket) {
				t.Fatalf("recovered transaction %d mismatched", i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("recovery stalled at transaction %d", i)
		}
	}

	// A full retransmission under the same (name, epoch) — the sensor
	// never saw acks for its journal — is entirely deduplicated.
	s2 := NewSensor(SensorConfig{Addr: addr2, Name: "re", Epoch: 11})
	for i := 0; i < n; i++ {
		if err := s2.Write(testTx(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return coll2.Stats().Deduped == n })
	if got := coll2.Stats().Replayed; got != n-consumed {
		t.Errorf("replayed = %d, want %d", got, n-consumed)
	}
	coll2.Close()
	if err := coll2.CloseWAL(); err != nil {
		t.Fatal(err)
	}
}

// TestCollectorAbsorbLog is fleet failover at the journal level: a
// surviving collector absorbs a dead peer's log past its checkpoint,
// delivering the work the peer accepted but never finished — and a
// second absorb (or a sensor retransmission of the same frames) dedups
// completely.
func TestCollectorAbsorbLog(t *testing.T) {
	peerDir := t.TempDir()
	const n, consumed = 30, 10

	// The doomed peer journals 30 frames and checkpoints 10.
	peer, addr := startCollector(t, CollectorConfig{})
	if err := peer.OpenWAL(peerDir, wal.Options{}); err != nil {
		t.Fatal(err)
	}
	s := NewSensor(SensorConfig{Addr: addr, Name: "fo", Epoch: 21})
	for i := 0; i < n; i++ {
		if err := s.Write(testTx(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < consumed; i++ {
		<-peer.C()
	}
	if err := peer.Checkpoint(consumed); err != nil {
		t.Fatal(err)
	}
	peer.Close()
	if err := peer.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// The survivor absorbs the orphaned tail.
	surv, _ := startCollector(t, CollectorConfig{})
	peerLog, err := wal.Open(peerDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan []*sie.Transaction, 1)
	go func() { done <- drain(surv) }()
	absorbed, deduped, err := surv.AbsorbLog(peerLog, nil)
	if err != nil || absorbed != n-consumed || deduped != 0 {
		t.Fatalf("first absorb: absorbed=%d deduped=%d err=%v", absorbed, deduped, err)
	}
	absorbed, deduped, err = surv.AbsorbLog(peerLog, nil)
	if err != nil || absorbed != 0 || deduped != n-consumed {
		t.Fatalf("second absorb: absorbed=%d deduped=%d err=%v", absorbed, deduped, err)
	}
	peerLog.Close()
	surv.Close()
	txs := <-done
	if len(txs) != n-consumed {
		t.Fatalf("survivor delivered %d, want %d", len(txs), n-consumed)
	}
	for i, tx := range txs {
		if !bytes.Equal(tx.QueryPacket, testTx(consumed+i).QueryPacket) {
			t.Fatalf("absorbed transaction %d mismatched", i)
		}
	}
	if got := surv.Stats().Replayed; got != n-consumed {
		t.Errorf("replayed = %d, want %d", got, n-consumed)
	}
}

// TestBlockPolicyBackpressure pins the Block overload contract: a slow
// consumer stalls the sensor through TCP backpressure — the queue
// holds, nothing is shed, nothing is lost — and delivery completes
// exactly-once when the consumer resumes.
func TestBlockPolicyBackpressure(t *testing.T) {
	const queueLen, n = 4, 120
	coll, addr := startCollector(t, CollectorConfig{QueueLen: queueLen, Overload: Block})
	s := NewSensor(SensorConfig{
		Addr: addr, Name: "bp", Epoch: 5, FlushBytes: 64,
		WriteTimeout: 500 * time.Millisecond, AckTimeout: 200 * time.Millisecond,
		MaxAttempts: -1, BackoffMin: time.Millisecond, BackoffMax: 8 * time.Millisecond,
	})

	sent := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := s.Write(testTx(i)); err != nil {
				sent <- err
				return
			}
		}
		sent <- s.Close()
	}()

	// Nobody consumes: the pipeline must wedge with at most the queue
	// plus one in-flight transaction enqueued, and shed nothing.
	time.Sleep(300 * time.Millisecond)
	if st := coll.Stats(); st.Shed != 0 || st.Enqueued > queueLen+1 {
		t.Fatalf("stalled-consumer stats: %+v", st)
	}
	select {
	case err := <-sent:
		t.Fatalf("sensor finished against a stalled consumer: %v", err)
	default:
	}

	// Resume consumption: everything arrives exactly once, in order.
	var txs []*sie.Transaction
	for len(txs) < n {
		select {
		case tx := <-coll.C():
			txs = append(txs, tx)
		case <-time.After(10 * time.Second):
			t.Fatalf("stalled at %d of %d transactions", len(txs), n)
		}
	}
	if err := <-sent; err != nil {
		t.Fatalf("sensor error: %v", err)
	}
	for i, tx := range txs {
		if !bytes.Equal(tx.QueryPacket, testTx(i).QueryPacket) {
			t.Fatalf("transaction %d duplicated or reordered under backpressure", i)
		}
	}
	st := coll.Stats()
	if st.Shed != 0 || st.Enqueued != n {
		t.Errorf("final stats: %+v", st)
	}
	coll.Close()
}

// TestUnackedGaugeAndLiveness covers the two observability satellites:
// the dnsobs_transport_unacked gauge tracks the pending batch, and a
// disconnected sensor lingers in Sensors() with its last error for the
// grace period, then drops out.
func TestUnackedGaugeAndLiveness(t *testing.T) {
	reg := metrics.NewRegistry()
	coll, addr := startCollector(t, CollectorConfig{
		Metrics: reg, SensorGrace: 80 * time.Millisecond,
	})
	go func() {
		for range coll.C() {
		}
	}()

	s := NewSensor(SensorConfig{
		Addr: addr, Name: "obs", Metrics: reg, FlushBytes: 1 << 20,
	})
	const n = 25
	for i := 0; i < n; i++ {
		if err := s.Write(testTx(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Sum(MetricUnacked); got != n {
		t.Errorf("unacked gauge = %v, want %d before flush", got, n)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Sum(MetricUnacked); got != 0 {
		t.Errorf("unacked gauge = %v after close, want 0", got)
	}

	waitFor(t, func() bool {
		ss := coll.Sensors()
		return len(ss) == 1 && !ss[0].Connected
	})
	ss := coll.Sensors()
	if ss[0].LastError != "eof" || ss[0].DisconnectedAgeSec < 0 {
		t.Errorf("disconnected status: %+v", ss[0])
	}
	// Past the grace period the record is forgotten.
	waitFor(t, func() bool { return len(coll.Sensors()) == 0 })
	coll.Close()
}
