package transport

import "dnsobservatory/internal/metrics"

// Metric family names published by the transport layer. Exported as
// constants so consumers (health checks, the chaos soaks) read
// families by name without string drift.
const (
	// MetricConnections counts connections by role: accepted sensor
	// connections on the collector, successful dials on a sensor.
	MetricConnections = "dnsobs_transport_connections_total"
	// MetricActiveConns is the collector's live connection count.
	MetricActiveConns = "dnsobs_transport_active_connections"
	// MetricFrames counts frames by role and direction: Data frames
	// received by the collector (dir="rx"), frames flushed to the wire
	// by a sensor (dir="tx").
	MetricFrames = "dnsobs_transport_frames_total"
	// MetricReconnects counts successful sensor re-dials after a lost
	// connection, labeled by sensor name.
	MetricReconnects = "dnsobs_transport_reconnects_total"
	// MetricQueueDepth is the collector's ingest channel depth, sampled
	// at scrape time.
	MetricQueueDepth = "dnsobs_transport_queue_depth"
	// MetricShed counts transactions dropped by the collector's Shed
	// overload policy.
	MetricShed = "dnsobs_transport_shed_total"
	// MetricDecodeErrors counts well-framed Data payloads that failed
	// to decode as transactions.
	MetricDecodeErrors = "dnsobs_transport_decode_errors_total"
	// MetricDisconnects counts collector-side connection ends by
	// reason: "eof" (clean), "error" (read/frame error, including
	// deadline cuts of stalled senders), "protocol" (handshake or
	// unexpected frame).
	MetricDisconnects = "dnsobs_transport_disconnects_total"
	// MetricUnacked is a sensor's unacknowledged-batch depth:
	// transactions written but not yet confirmed by the collector,
	// sampled at scrape time and labeled by sensor name.
	MetricUnacked = "dnsobs_transport_unacked"
	// MetricDeduped counts sequenced frames the collector dropped as
	// already-seen (sensor, epoch, seq) replays.
	MetricDeduped = "dnsobs_transport_deduped_total"
	// MetricAcks counts acknowledgement frames the collector sent.
	MetricAcks = "dnsobs_transport_acks_total"
	// MetricEnqueued counts transactions the collector put on its
	// ingest channel, from the live stream or the journal.
	MetricEnqueued = "dnsobs_transport_enqueued_total"
	// MetricWALSpilled counts journaled transactions deferred to the
	// spill tailer because the ingest queue was full.
	MetricWALSpilled = "dnsobs_wal_spilled_total"
	// MetricWALReplayed counts transactions enqueued from the journal:
	// spill drains, restart recovery, absorbed peer logs.
	MetricWALReplayed = "dnsobs_wal_replayed_total"
	// MetricWALAppends counts journal record appends.
	MetricWALAppends = "dnsobs_wal_appends_total"
	// MetricWALSize is the journal's on-disk size in bytes.
	MetricWALSize = "dnsobs_wal_size_bytes"
	// MetricWALSegments is the journal's segment-file count.
	MetricWALSegments = "dnsobs_wal_segments"
	// MetricWALCheckpoint is the highest checkpointed journal position.
	MetricWALCheckpoint = "dnsobs_wal_checkpoint_position"
)

// collectorMetrics is the collector's counter set. Like the engines'
// accounting, the counters are the single source of truth — with a
// registry configured they are registered under role="collector", with
// none they are standalone so tests never contaminate a shared
// registry. Stats() reads the same storage either way.
type collectorMetrics struct {
	connections    *metrics.Counter
	frames         *metrics.Counter
	shed           *metrics.Counter
	decodeErrors   *metrics.Counter
	disconnectEOF  *metrics.Counter
	disconnectErr  *metrics.Counter
	disconnectProt *metrics.Counter
	deduped        *metrics.Counter
	acks           *metrics.Counter
	enqueued       *metrics.Counter
	spilled        *metrics.Counter
	replayed       *metrics.Counter
}

func newCollectorMetrics(reg *metrics.Registry) *collectorMetrics {
	if reg == nil {
		return &collectorMetrics{
			connections:    metrics.NewCounter(),
			frames:         metrics.NewCounter(),
			shed:           metrics.NewCounter(),
			decodeErrors:   metrics.NewCounter(),
			disconnectEOF:  metrics.NewCounter(),
			disconnectErr:  metrics.NewCounter(),
			disconnectProt: metrics.NewCounter(),
			deduped:        metrics.NewCounter(),
			acks:           metrics.NewCounter(),
			enqueued:       metrics.NewCounter(),
			spilled:        metrics.NewCounter(),
			replayed:       metrics.NewCounter(),
		}
	}
	return &collectorMetrics{
		connections:    reg.Counter(MetricConnections, "transport connections by role", "role", "collector"),
		frames:         reg.Counter(MetricFrames, "transport frames by role and direction", "role", "collector", "dir", "rx"),
		shed:           reg.Counter(MetricShed, "transactions dropped by the collector overload policy", "role", "collector"),
		decodeErrors:   reg.Counter(MetricDecodeErrors, "well-framed payloads that failed to decode", "role", "collector"),
		disconnectEOF:  reg.Counter(MetricDisconnects, "connection ends by reason", "role", "collector", "reason", "eof"),
		disconnectErr:  reg.Counter(MetricDisconnects, "connection ends by reason", "role", "collector", "reason", "error"),
		disconnectProt: reg.Counter(MetricDisconnects, "connection ends by reason", "role", "collector", "reason", "protocol"),
		deduped:        reg.Counter(MetricDeduped, "sequenced frames dropped as already-seen replays", "role", "collector"),
		acks:           reg.Counter(MetricAcks, "acknowledgement frames sent to sensors", "role", "collector"),
		enqueued:       reg.Counter(MetricEnqueued, "transactions put on the ingest channel", "role", "collector"),
		spilled:        reg.Counter(MetricWALSpilled, "journaled transactions deferred to the spill tailer", "role", "collector"),
		replayed:       reg.Counter(MetricWALReplayed, "transactions enqueued from the journal", "role", "collector"),
	}
}

// sensorMetrics is one sensor's counter set, labeled by sensor name so
// N sensors in one process stay separable.
type sensorMetrics struct {
	connects   *metrics.Counter
	reconnects *metrics.Counter
	frames     *metrics.Counter
}

func newSensorMetrics(reg *metrics.Registry, name string) *sensorMetrics {
	if reg == nil {
		return &sensorMetrics{
			connects:   metrics.NewCounter(),
			reconnects: metrics.NewCounter(),
			frames:     metrics.NewCounter(),
		}
	}
	return &sensorMetrics{
		connects:   reg.Counter(MetricConnections, "transport connections by role", "role", "sensor", "sensor", name),
		reconnects: reg.Counter(MetricReconnects, "successful sensor re-dials after a lost connection", "sensor", name),
		frames:     reg.Counter(MetricFrames, "transport frames by role and direction", "role", "sensor", "dir", "tx", "sensor", name),
	}
}
