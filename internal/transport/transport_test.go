package transport

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"path/filepath"
	"testing"
	"time"

	"dnsobservatory/internal/metrics"
	"dnsobservatory/internal/sie"
)

// testTx builds a minimal transaction (transport does not care whether
// the packets parse as DNS — that is the summarizer's job upstack).
func testTx(i int) *sie.Transaction {
	return &sie.Transaction{
		QueryPacket:    []byte(fmt.Sprintf("query-%04d", i)),
		ResponsePacket: []byte(fmt.Sprintf("resp-%04d", i)),
		QueryTime:      time.Unix(1600000000, int64(i)*1e6),
		ResponseTime:   time.Unix(1600000000, int64(i)*1e6+5e6),
		SensorID:       7,
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var wire []byte
	wire = AppendHello(wire, "s1")
	payloads := [][]byte{[]byte("a"), {}, bytes.Repeat([]byte("xy"), 5000)}
	for _, p := range payloads {
		wire = AppendFrame(wire, FrameData, p)
	}
	wire = AppendFrame(wire, FrameBye, nil)

	fr := NewFrameReader(bytes.NewReader(wire))
	typ, p, err := fr.Next()
	if err != nil || typ != FrameHello {
		t.Fatalf("hello: typ=%d err=%v", typ, err)
	}
	name, epoch, err := ParseHello(p)
	if err != nil || name != "s1" || epoch != 0 {
		t.Fatalf("hello name=%q epoch=%d err=%v", name, epoch, err)
	}
	for i, want := range payloads {
		typ, p, err = fr.Next()
		if err != nil || typ != FrameData {
			t.Fatalf("frame %d: typ=%d err=%v", i, typ, err)
		}
		if !bytes.Equal(p, want) {
			t.Fatalf("frame %d: payload %d bytes, want %d", i, len(p), len(want))
		}
	}
	typ, _, err = fr.Next()
	if err != nil || typ != FrameBye {
		t.Fatalf("bye: typ=%d err=%v", typ, err)
	}
	if _, _, err = fr.Next(); err != io.EOF {
		t.Fatalf("after bye: err=%v, want io.EOF", err)
	}
}

func TestFrameDecoderTypedErrors(t *testing.T) {
	cases := []struct {
		name string
		wire []byte
		want error
	}{
		{"clean EOF", nil, io.EOF},
		{"unknown type", []byte{0x7f, 0x00}, ErrUnknownFrameType},
		{"truncated length prefix", []byte{FrameData, 0x80}, io.ErrUnexpectedEOF},
		{"missing length prefix", []byte{FrameData}, io.ErrUnexpectedEOF},
		{"mid-frame EOF", append([]byte{FrameData, 0x10}, []byte("short")...), io.ErrUnexpectedEOF},
		{"oversized declared length", []byte{FrameData, 0x80, 0x80, 0x80, 0x80, 0x01}, ErrFrameTooLarge},
		{"varint overflow", []byte{FrameData, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}, ErrVarintOverflow},
	}
	for _, tc := range cases {
		_, _, err := NewFrameReader(bytes.NewReader(tc.wire)).Next()
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestParseHelloErrors(t *testing.T) {
	if _, _, err := ParseHello(nil); !errors.Is(err, ErrBadHello) {
		t.Errorf("empty hello: %v", err)
	}
	if _, _, err := ParseHello([]byte{ProtocolVersion}); !errors.Is(err, ErrBadHello) {
		t.Errorf("nameless hello: %v", err)
	}
	if _, _, err := ParseHello(append([]byte{99}, "x"...)); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: %v", err)
	}
	long := append([]byte{ProtocolVersion}, bytes.Repeat([]byte("n"), MaxHelloName+1)...)
	if _, _, err := ParseHello(long); !errors.Is(err, ErrBadHello) {
		t.Errorf("oversized name: %v", err)
	}
	if _, _, err := ParseHello([]byte{ProtocolVersionSeq, 0x80}); !errors.Is(err, ErrBadHello) {
		t.Errorf("truncated epoch: %v", err)
	}
	if _, _, err := ParseHello([]byte{ProtocolVersionSeq, 0x07}); !errors.Is(err, ErrBadHello) {
		t.Errorf("nameless v2 hello: %v", err)
	}
	name, epoch, err := ParseHello(AppendHelloEpoch(nil, "s9", 1<<40)[2:])
	if err != nil || name != "s9" || epoch != 1<<40 {
		t.Errorf("v2 hello round trip: name=%q epoch=%d err=%v", name, epoch, err)
	}
}

func TestSplitAddr(t *testing.T) {
	for _, tc := range []struct{ in, network, address string }{
		{"localhost:8054", "tcp", "localhost:8054"},
		{"tcp:127.0.0.1:9", "tcp", "127.0.0.1:9"},
		{"unix:/tmp/x.sock", "unix", "/tmp/x.sock"},
		{":8054", "tcp", ":8054"},
	} {
		n, a := SplitAddr(tc.in)
		if n != tc.network || a != tc.address {
			t.Errorf("SplitAddr(%q) = %q,%q want %q,%q", tc.in, n, a, tc.network, tc.address)
		}
	}
}

// drain collects everything from the collector channel until it closes.
func drain(c *Collector) []*sie.Transaction {
	var out []*sie.Transaction
	for tx := range c.C() {
		out = append(out, tx)
	}
	return out
}

// startCollector serves cfg on a loopback TCP listener.
func startCollector(t testing.TB, cfg CollectorConfig) (*Collector, string) {
	t.Helper()
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollector(cfg)
	go c.Serve(ln)
	return c, ln.Addr().String()
}

func TestSensorToCollectorTCP(t *testing.T) {
	reg := metrics.NewRegistry()
	coll, addr := startCollector(t, CollectorConfig{Metrics: reg})
	got := make(chan []*sie.Transaction, 1)
	go func() { got <- drain(coll) }()

	s := NewSensor(SensorConfig{Addr: addr, Name: "unit", Metrics: reg})
	const n = 200
	for i := 0; i < n; i++ {
		if err := s.Write(testTx(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return coll.Stats().Frames == n })
	coll.Close()
	txs := <-got

	if len(txs) != n {
		t.Fatalf("received %d transactions, want %d", len(txs), n)
	}
	for i, tx := range txs {
		want := testTx(i)
		if !bytes.Equal(tx.QueryPacket, want.QueryPacket) ||
			!tx.QueryTime.Equal(want.QueryTime) || tx.SensorID != want.SensorID {
			t.Fatalf("transaction %d mangled in transit: %+v", i, tx)
		}
	}
	if st := s.Stats(); st.Connects != 1 || st.Reconnects != 0 || st.Frames != n {
		t.Errorf("sensor stats: %+v", st)
	}
	sensors := coll.Sensors()
	if len(sensors) != 1 || sensors[0].Name != "unit" {
		t.Fatalf("sensors: %+v", sensors)
	}
	if sensors[0].Connected || sensors[0].Frames != n || sensors[0].Connects != 1 {
		t.Errorf("sensor status after close: %+v", sensors[0])
	}
	if got := reg.SumCounter(MetricFrames); got != 2*n { // rx + tx
		t.Errorf("frames family = %d, want %d", got, 2*n)
	}
	if reg.SumCounter(MetricConnections) != 2 { // one accept + one dial
		t.Errorf("connections family = %d, want 2", reg.SumCounter(MetricConnections))
	}
}

func TestSensorToCollectorUnixSocket(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "sie.sock")
	ln, err := Listen("unix:" + sock)
	if err != nil {
		t.Fatal(err)
	}
	coll := NewCollector(CollectorConfig{})
	go coll.Serve(ln)
	got := make(chan []*sie.Transaction, 1)
	go func() { got <- drain(coll) }()

	s := NewSensor(SensorConfig{Addr: "unix:" + sock, Name: "uds"})
	for i := 0; i < 50; i++ {
		if err := s.Write(testTx(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return coll.Stats().Frames == 50 })
	coll.Close()
	if txs := <-got; len(txs) != 50 {
		t.Fatalf("received %d transactions, want 50", len(txs))
	}
}

// flakyConn fails the nth Write before delivering anything, simulating
// a connection lost between flushes.
type flakyConn struct {
	net.Conn
	failAt *int // shared across redials; decremented per write
}

func (fc *flakyConn) Write(p []byte) (int, error) {
	*fc.failAt--
	if *fc.failAt == 0 {
		fc.Conn.Close()
		return 0, errors.New("flaky: connection lost")
	}
	return fc.Conn.Write(p)
}

func TestSensorReconnectResumesExactly(t *testing.T) {
	coll, addr := startCollector(t, CollectorConfig{})
	got := make(chan []*sie.Transaction, 1)
	go func() { got <- drain(coll) }()

	// Fail the 4th write outright (nothing delivered): the sensor must
	// redial and retransmit the unacknowledged batch; the collector
	// dedups whatever overlap the retransmission carries, so delivery
	// is exactly-once with no gaps and no reordering.
	failAt := 4
	s := NewSensor(SensorConfig{
		Addr: addr, Name: "flaky", FlushBytes: 256,
		BackoffMin: time.Millisecond, BackoffMax: 4 * time.Millisecond,
		WrapConn: func(c net.Conn) net.Conn { return &flakyConn{Conn: c, failAt: &failAt} },
	})
	const n = 100
	for i := 0; i < n; i++ {
		if err := s.Write(testTx(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return coll.Stats().Enqueued == n })
	coll.Close()
	txs := <-got
	if len(txs) != n {
		t.Fatalf("received %d transactions, want %d", len(txs), n)
	}
	for i, tx := range txs {
		if !bytes.Equal(tx.QueryPacket, testTx(i).QueryPacket) {
			t.Fatalf("transaction %d out of order after reconnect", i)
		}
	}
	cst := coll.Stats()
	if cst.Frames != cst.Deduped+cst.Enqueued {
		t.Errorf("frame accounting: frames=%d deduped=%d enqueued=%d", cst.Frames, cst.Deduped, cst.Enqueued)
	}
	st := s.Stats()
	if st.Connects != 2 || st.Reconnects != 1 {
		t.Errorf("stats after one cut: %+v", st)
	}
	if st.Acked != n {
		t.Errorf("acked = %d, want %d", st.Acked, n)
	}
}

func TestSensorGivesUpAfterMaxAttempts(t *testing.T) {
	// Dial a port nobody listens on.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	s := NewSensor(SensorConfig{
		Addr: addr, MaxAttempts: 3,
		BackoffMin: time.Millisecond, BackoffMax: 2 * time.Millisecond,
	})
	if err := s.Write(testTx(0)); err != nil {
		t.Fatal(err) // buffered, below FlushBytes
	}
	if err := s.Flush(); err == nil {
		t.Fatal("flush to a dead collector reported success")
	}
	if err := s.Close(); err == nil {
		t.Fatal("close with an undeliverable tail reported success")
	}
	if err := s.Write(testTx(1)); !errors.Is(err, ErrSensorClosed) {
		t.Fatalf("write after close: %v", err)
	}
}

func TestCollectorShedPolicy(t *testing.T) {
	coll, addr := startCollector(t, CollectorConfig{QueueLen: 8, Overload: Shed})
	s := NewSensor(SensorConfig{Addr: addr, Name: "shedder"})
	const n = 300
	for i := 0; i < n; i++ {
		if err := s.Write(testTx(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Nobody consumed during the stream: everything past the queue
	// capacity must be shed, and the accounting must balance.
	waitFor(t, func() bool {
		st := coll.Stats()
		return st.Frames == n && uint64(len(coll.C()))+st.Shed == n
	})
	coll.Close()
	st := coll.Stats()
	delivered := uint64(len(drain(coll)))
	if st.Shed == 0 {
		t.Fatal("shed policy never shed with a full queue")
	}
	if delivered+st.Shed != n {
		t.Fatalf("delivered %d + shed %d != sent %d", delivered, st.Shed, n)
	}
}

func TestCollectorRejectsBadHandshake(t *testing.T) {
	reg := metrics.NewRegistry()
	coll, addr := startCollector(t, CollectorConfig{Metrics: reg})
	defer coll.Close()

	// Garbage instead of a hello.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte{0x42, 0xff, 0xff})
	assertConnClosed(t, conn)

	// A data frame before the hello.
	conn, err = net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write(AppendFrame(nil, FrameData, []byte("x")))
	assertConnClosed(t, conn)

	waitFor(t, func() bool {
		return reg.SumCounter(MetricDisconnects) == 2
	})
	if len(coll.Sensors()) != 0 {
		t.Errorf("unhandshaken connections registered sensors: %+v", coll.Sensors())
	}
}

func TestCollectorCountsDecodeErrors(t *testing.T) {
	var rejects int
	rejected := make(chan struct{}, 8)
	coll, addr := startCollector(t, CollectorConfig{
		OnReject: func(error) { rejects++; rejected <- struct{}{} },
	})
	got := make(chan []*sie.Transaction, 1)
	go func() { got <- drain(coll) }()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	wire := AppendHello(nil, "bad")
	// A well-framed payload that is not a transaction (no query packet).
	wire = AppendFrame(wire, FrameData, []byte{0xff, 0xff, 0xff})
	// Followed by a good one: the stream stays in sync.
	good := testTx(1)
	wire = AppendFrame(wire, FrameData, good.Append(nil))
	wire = AppendFrame(wire, FrameBye, nil)
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	<-rejected
	waitFor(t, func() bool { return coll.Stats().Frames == 2 })
	coll.Close()
	txs := <-got
	if len(txs) != 1 || !bytes.Equal(txs[0].QueryPacket, good.QueryPacket) {
		t.Fatalf("good transaction lost after a decode error: %d", len(txs))
	}
	if st := coll.Stats(); st.DecodeErrors != 1 {
		t.Errorf("DecodeErrors = %d, want 1", st.DecodeErrors)
	}
	if rejects != 1 {
		t.Errorf("OnReject ran %d times, want 1", rejects)
	}
}

func TestCollectorReadTimeoutCutsStalledSensor(t *testing.T) {
	reg := metrics.NewRegistry()
	coll, addr := startCollector(t, CollectorConfig{ReadTimeout: 30 * time.Millisecond, Metrics: reg})
	defer coll.Close()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(AppendHello(nil, "staller")); err != nil {
		t.Fatal(err)
	}
	// Send nothing more: the collector must cut us, not wait forever.
	assertConnClosed(t, conn)
	waitFor(t, func() bool { return reg.SumCounter(MetricDisconnects) == 1 })
}

func TestWriteOversizedTransaction(t *testing.T) {
	s := NewSensor(SensorConfig{Addr: "127.0.0.1:1"})
	huge := &sie.Transaction{
		QueryPacket: bytes.Repeat([]byte("x"), MaxFramePayload),
		QueryTime:   time.Unix(1, 0),
	}
	if err := s.Write(huge); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

// assertConnClosed reads until the peer closes the connection, failing
// after a timeout.
func assertConnClosed(t *testing.T, conn net.Conn) {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("peer wrote instead of closing")
	} else if errors.Is(err, io.EOF) {
		return
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("peer left the connection open")
	}
}

// waitFor polls cond for up to 5 s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
