package transport

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
	"io/fs"
	"net/netip"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/ipwire"
	"dnsobservatory/internal/observatory"
	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/tsv"
)

// dnsTx builds one well-formed answered transaction with a varied query
// name, timestamped i*50ms after base — the same workload shape as the
// observatory soak tests.
func dnsTx(t testing.TB, i int, base time.Time) *sie.Transaction {
	t.Helper()
	var q dnswire.Message
	q.ID = uint16(i)
	q.Flags.RecursionDesired = true
	qname := fmt.Sprintf("h%d.example%d.com.", i%7, i%90)
	q.Questions = append(q.Questions, dnswire.Question{
		Name: qname, Type: dnswire.TypeA, Class: dnswire.ClassINET})
	qw, err := q.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	r := q
	r.Flags.Response = true
	r.Flags.Authoritative = true
	r.Answers = append(r.Answers, dnswire.RR{
		Name: qname, Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: 300,
		Data: dnswire.ARData{Addr: netip.MustParseAddr("192.0.2.1")},
	})
	rw, err := r.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	src := netip.AddrFrom4([4]byte{198, 51, 100, byte(i%50 + 1)})
	dst := netip.AddrFrom4([4]byte{192, 0, 2, byte(i%20 + 1)})
	at := base.Add(time.Duration(i) * 50 * time.Millisecond)
	return &sie.Transaction{
		QueryPacket:    ipwire.AppendIPv4UDP(nil, src, dst, 4242, ipwire.DNSPort, 64, qw),
		ResponsePacket: ipwire.AppendIPv4UDP(nil, dst, src, ipwire.DNSPort, 4242, 64, rw),
		QueryTime:      at,
		ResponseTime:   at.Add(5 * time.Millisecond),
		SensorID:       1,
	}
}

// ingestAll replays a transaction stream through the dnsobs ingest
// contract — base from the first query time truncated to the minute,
// summarize, serial pipeline, snapshots into a store — then flushes and
// cascades. Returns the aggregation names.
func ingestAll(t *testing.T, dir string, next func(*sie.Transaction) error) []string {
	t.Helper()
	store, err := tsv.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	aggs := observatory.StandardAggregations(0.01)
	var aggNames []string
	for _, a := range aggs {
		aggNames = append(aggNames, a.Name)
	}
	var lastStart int64 = -1
	pipe := observatory.New(observatory.DefaultConfig(), aggs, func(s *tsv.Snapshot) {
		if err := store.Put(s); err != nil {
			t.Error(err)
		}
		lastStart = s.Start
	})
	var summarizer sie.Summarizer
	summarizer.KeepUnparsableResponses = true
	var tx sie.Transaction
	var sum sie.Summary
	var base time.Time
	for {
		err := next(&tx)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := summarizer.Summarize(&tx, &sum); err != nil {
			pipe.RecordRejected()
			continue
		}
		if base.IsZero() {
			base = tx.QueryTime.Truncate(time.Minute)
		}
		pipe.Ingest(&sum, tx.QueryTime.Sub(base).Seconds())
	}
	pipe.Flush()
	if err := store.CascadeAll(aggNames, lastStart+60); err != nil {
		t.Fatal(err)
	}
	return aggNames
}

// storeDigests hashes every file under a store directory, keyed by
// relative path.
func storeDigests(t *testing.T, dir string) map[string][32]byte {
	t.Helper()
	out := map[string][32]byte{}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		out[rel] = sha256.Sum256(b)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestEndToEndGoldenTSV proves the transport is invisible to the
// pipeline: the same serialized stream produces byte-identical TSV
// store contents whether it is decoded in-process or shipped through a
// sensor over loopback TCP into a collector first.
func TestEndToEndGoldenTSV(t *testing.T) {
	// One serialized stream, the single source of truth for both paths.
	const n = 3000 // 150 simulated seconds: multiple windows + cascade input
	base := time.Unix(1600000000, 0)
	var stream bytes.Buffer
	w := sie.NewWriter(&stream)
	for i := 0; i < n; i++ {
		if err := w.Write(dnsTx(t, i, base)); err != nil {
			t.Fatal(err)
		}
	}

	// Path A: decode directly.
	dirDirect := t.TempDir()
	rd := sie.NewReader(bytes.NewReader(stream.Bytes()))
	ingestAll(t, dirDirect, rd.Read)

	// Path B: decode, ship through sensor→TCP→collector, ingest from
	// the collector channel.
	dirNet := t.TempDir()
	coll, addr := startCollector(t, CollectorConfig{})
	sendErr := make(chan error, 1)
	go func() {
		s := NewSensor(SensorConfig{Addr: addr, Name: "golden"})
		rd := sie.NewReader(bytes.NewReader(stream.Bytes()))
		var tx sie.Transaction
		for {
			err := rd.Read(&tx)
			if err == io.EOF {
				break
			}
			if err == nil {
				err = s.Write(&tx)
			}
			if err != nil {
				sendErr <- err
				return
			}
		}
		sendErr <- s.Close()
	}()
	go func() {
		// Once the sensor has delivered everything, wait for the
		// collector's handler to finish reading it, then release the
		// channel. t.Fatal is off-limits off the test goroutine, so on
		// a timeout just close; the digest comparison will fail loudly.
		if err := <-sendErr; err != nil {
			t.Error(err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for coll.Stats().Frames < n && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		coll.Close()
	}()
	aggNames := ingestAll(t, dirNet, func(tx *sie.Transaction) error {
		rx, ok := <-coll.C()
		if !ok {
			return io.EOF
		}
		*tx = *rx
		return nil
	})

	// The two stores must be indistinguishable.
	direct := storeDigests(t, dirDirect)
	networked := storeDigests(t, dirNet)
	if len(direct) == 0 {
		t.Fatal("direct path produced no snapshot files")
	}
	if len(direct) < len(aggNames) {
		t.Fatalf("only %d files for %d aggregations", len(direct), len(aggNames))
	}
	if len(direct) != len(networked) {
		t.Fatalf("file count differs: direct %d, networked %d", len(direct), len(networked))
	}
	for rel, sum := range direct {
		nsum, ok := networked[rel]
		if !ok {
			t.Errorf("networked store is missing %s", rel)
			continue
		}
		if sum != nsum {
			t.Errorf("%s differs between direct and networked ingest", rel)
		}
	}
}
