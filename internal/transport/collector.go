package transport

import (
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"dnsobservatory/internal/metrics"
	"dnsobservatory/internal/sie"
)

// OverloadPolicy selects what a connection handler does when the
// collector's ingest channel is full. It mirrors the sharded engine's
// policy of the same name (observatory.Block / observatory.Shed) one
// layer down the stack.
type OverloadPolicy int

const (
	// Block applies backpressure: the handler waits for the consumer,
	// which stalls the sensor's TCP stream once kernel buffers fill.
	// The default, and the right choice when sensors buffer locally.
	Block OverloadPolicy = iota
	// Shed drops the transaction when the queue is full, counting it
	// in Stats().Shed — for a collector that must never stall reads.
	Shed
)

// CollectorConfig tunes a Collector. The zero value is usable.
type CollectorConfig struct {
	// QueueLen is the capacity of the ordered ingest channel (default
	// 4096 transactions).
	QueueLen int
	// Overload selects the bounded-queue policy: Block (default)
	// applies backpressure, Shed drops with accounting.
	Overload OverloadPolicy
	// ReadTimeout, when positive, is the per-frame read deadline: a
	// sensor that stalls mid-stream longer than this is cut (it will
	// reconnect and resume). 0 disables deadlines.
	ReadTimeout time.Duration
	// HelloTimeout bounds the wait for the handshake frame on a new
	// connection (default 10s).
	HelloTimeout time.Duration
	// Metrics, when set, is the registry the collector publishes the
	// dnsobs_transport_* families to. Nil keeps standalone counters.
	Metrics *metrics.Registry
	// WrapConn, when set, wraps every accepted connection — the chaos
	// injection point for network faults (chaos.Injector.WrapConn).
	WrapConn func(net.Conn) net.Conn
	// OnReject, when set, is called for every well-framed Data payload
	// that failed to decode as a transaction (so the pipeline can
	// account it as rejected, keeping the EngineStats invariant).
	OnReject func(err error)
}

// Collector accepts many concurrent sensor connections and fans their
// transaction streams into one ordered ingest channel: per-sensor
// frame order is preserved (TCP FIFO per connection), interleaving
// between sensors is arrival order. Transactions on the channel own
// their buffers; the consumer may hold them indefinitely.
//
// Concurrency contract: Serve may be called for several listeners
// (e.g. one TCP, one Unix); each connection runs on its own goroutine.
// Close stops accepting, cuts every connection, waits for the
// handlers, then closes the ingest channel — transactions already
// queued remain readable, so the consumer drains by ranging until the
// channel closes.
type Collector struct {
	cfg CollectorConfig
	out chan *sie.Transaction
	// stop unblocks handlers waiting on a full ingest channel under
	// the Block policy once Close begins.
	stop chan struct{}

	mu        sync.Mutex
	closed    bool
	listeners []net.Listener
	conns     map[net.Conn]struct{}
	sensors   map[string]*sensorState

	serveWG sync.WaitGroup // accept loops
	connWG  sync.WaitGroup // connection handlers

	m *collectorMetrics
}

// sensorState is the liveness record behind one sensor name. Guarded
// by Collector.mu.
type sensorState struct {
	conns     int
	connects  uint64
	frames    uint64
	lastFrame time.Time
}

// SensorStatus is one sensor's liveness as reported by Sensors (and,
// through it, the web UI /healthz endpoint).
type SensorStatus struct {
	Name string `json:"name"`
	// Connected reports a live connection claiming this sensor name.
	Connected bool `json:"connected"`
	// Connects counts connections ever accepted under this name — a
	// value above 1 means the sensor reconnected.
	Connects uint64 `json:"connects"`
	// Frames counts Data frames received from this sensor.
	Frames uint64 `json:"frames"`
	// LastFrameAgeSec is the age of the newest frame, or -1 when the
	// sensor completed its handshake but has sent no data yet.
	LastFrameAgeSec float64 `json:"last_frame_age_sec"`
}

// CollectorStats is the collector's ingest accounting.
type CollectorStats struct {
	// Connections counts accepted sensor connections.
	Connections uint64
	// Frames counts Data frames received across all sensors.
	Frames uint64
	// Shed counts transactions dropped by the Shed overload policy.
	Shed uint64
	// DecodeErrors counts well-framed payloads that were not valid
	// transactions.
	DecodeErrors uint64
}

// NewCollector returns a collector; start it with Serve.
func NewCollector(cfg CollectorConfig) *Collector {
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 4096
	}
	if cfg.HelloTimeout <= 0 {
		cfg.HelloTimeout = 10 * time.Second
	}
	c := &Collector{
		cfg:     cfg,
		out:     make(chan *sie.Transaction, cfg.QueueLen),
		stop:    make(chan struct{}),
		conns:   map[net.Conn]struct{}{},
		sensors: map[string]*sensorState{},
		m:       newCollectorMetrics(cfg.Metrics),
	}
	if reg := cfg.Metrics; reg != nil {
		reg.GaugeFunc(MetricQueueDepth, "transactions queued in the collector ingest channel",
			func() float64 { return float64(len(c.out)) }, "role", "collector")
		reg.GaugeFunc(MetricActiveConns, "live sensor connections",
			func() float64 { return float64(c.activeConns()) }, "role", "collector")
	}
	return c
}

// C returns the ordered ingest channel. It closes after Close, once
// every handler has exited; queued transactions remain readable.
func (c *Collector) C() <-chan *sie.Transaction { return c.out }

// Stats returns a snapshot of the collector's counters.
func (c *Collector) Stats() CollectorStats {
	return CollectorStats{
		Connections:  c.m.connections.Value(),
		Frames:       c.m.frames.Value(),
		Shed:         c.m.shed.Value(),
		DecodeErrors: c.m.decodeErrors.Value(),
	}
}

// Sensors returns per-sensor liveness, sorted by name.
func (c *Collector) Sensors() []SensorStatus {
	now := time.Now()
	c.mu.Lock()
	out := make([]SensorStatus, 0, len(c.sensors))
	for name, st := range c.sensors {
		s := SensorStatus{
			Name:            name,
			Connected:       st.conns > 0,
			Connects:        st.connects,
			Frames:          st.frames,
			LastFrameAgeSec: -1,
		}
		if !st.lastFrame.IsZero() {
			s.LastFrameAgeSec = now.Sub(st.lastFrame).Seconds()
		}
		out = append(out, s)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// activeConns returns the live connection count.
func (c *Collector) activeConns() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.conns)
}

// Serve accepts sensor connections on ln until Close (which closes the
// listener). It returns nil on a Close-triggered shutdown and the
// accept error otherwise. Run it on its own goroutine; it may be
// called for several listeners concurrently.
func (c *Collector) Serve(ln net.Listener) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		ln.Close()
		return nil
	}
	c.listeners = append(c.listeners, ln)
	c.serveWG.Add(1)
	c.mu.Unlock()
	defer c.serveWG.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		if c.cfg.WrapConn != nil {
			conn = c.cfg.WrapConn(conn)
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			conn.Close()
			return nil
		}
		c.conns[conn] = struct{}{}
		c.connWG.Add(1)
		c.mu.Unlock()
		c.m.connections.Inc()
		go c.handle(conn)
	}
}

// Close stops accepting, cuts every live connection, waits for the
// handlers, and closes the ingest channel. Safe to call once;
// transactions already queued stay readable after it returns.
func (c *Collector) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	listeners := c.listeners
	conns := make([]net.Conn, 0, len(c.conns))
	for conn := range c.conns {
		conns = append(conns, conn)
	}
	c.mu.Unlock()
	close(c.stop)
	for _, ln := range listeners {
		ln.Close()
	}
	for _, conn := range conns {
		conn.Close() // unblocks any read in progress
	}
	c.serveWG.Wait()
	c.connWG.Wait()
	close(c.out)
}

// dropConn forgets a finished connection.
func (c *Collector) dropConn(conn net.Conn) {
	c.mu.Lock()
	delete(c.conns, conn)
	c.mu.Unlock()
}

// register binds a connection to its sensor name after the handshake.
func (c *Collector) register(name string) *sensorState {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.sensors[name]
	if st == nil {
		st = &sensorState{}
		c.sensors[name] = st
	}
	st.conns++
	st.connects++
	return st
}

// unregister releases a connection's claim on its sensor name. The
// liveness record survives (Connected goes false) so /healthz keeps
// reporting a sensor that died.
func (c *Collector) unregister(st *sensorState) {
	c.mu.Lock()
	st.conns--
	c.mu.Unlock()
}

// noteFrame updates a sensor's liveness for one received Data frame.
func (c *Collector) noteFrame(st *sensorState) {
	c.mu.Lock()
	st.frames++
	st.lastFrame = time.Now()
	c.mu.Unlock()
}

// handle runs one connection: handshake, then Data frames until EOF,
// Bye, an error, or Close. A torn trailing frame (the sensor died or
// was cut mid-frame) is discarded here; the sensor retransmits it in
// full on its next connection, so the stream resumes on a frame
// boundary — at-least-once delivery across reconnects.
func (c *Collector) handle(conn net.Conn) {
	defer c.connWG.Done()
	defer c.dropConn(conn)
	defer conn.Close()
	fr := NewFrameReader(conn)

	conn.SetReadDeadline(time.Now().Add(c.cfg.HelloTimeout))
	typ, payload, err := fr.Next()
	if err != nil || typ != FrameHello {
		c.m.disconnectProt.Inc()
		return
	}
	name, err := ParseHello(payload)
	if err != nil {
		c.m.disconnectProt.Inc()
		return
	}
	st := c.register(name)
	defer c.unregister(st)

	for {
		if c.cfg.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(c.cfg.ReadTimeout))
		} else {
			conn.SetReadDeadline(time.Time{})
		}
		typ, payload, err := fr.Next()
		if err == io.EOF {
			c.m.disconnectEOF.Inc()
			return
		}
		if err != nil {
			c.m.disconnectErr.Inc()
			return
		}
		switch typ {
		case FrameData:
			c.m.frames.Inc()
			c.noteFrame(st)
			// The frame reader reuses its buffer, so the transaction
			// decodes from its own copy — the consumer owns it outright.
			body := make([]byte, len(payload))
			copy(body, payload)
			tx := new(sie.Transaction)
			if err := tx.Unmarshal(body); err != nil {
				c.m.decodeErrors.Inc()
				if c.cfg.OnReject != nil {
					c.cfg.OnReject(err)
				}
				continue
			}
			if !c.enqueue(tx) {
				return // closing
			}
		case FrameBye:
			c.m.disconnectEOF.Inc()
			return
		default: // a second Hello mid-stream
			c.m.disconnectProt.Inc()
			return
		}
	}
}

// enqueue applies the overload policy. It reports false only when the
// collector is closing (the handler should exit).
func (c *Collector) enqueue(tx *sie.Transaction) bool {
	if c.cfg.Overload == Shed {
		select {
		case c.out <- tx:
		default:
			c.m.shed.Inc()
		}
		return true
	}
	select {
	case c.out <- tx:
		return true
	case <-c.stop:
		return false
	}
}

// Listen opens a listener for a SplitAddr-style address: "host:port"
// or "tcp:host:port" for TCP, "unix:/path" for a Unix socket (a stale
// socket file from a previous run is removed first).
func Listen(addr string) (net.Listener, error) {
	network, address := SplitAddr(addr)
	if network == "unix" {
		removeStaleSocket(address)
	}
	return net.Listen(network, address)
}
