package transport

import (
	"errors"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"dnsobservatory/internal/metrics"
	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/wal"
)

// OverloadPolicy selects what a connection handler does when the
// collector's ingest channel is full. It mirrors the sharded engine's
// policy of the same name (observatory.Block / observatory.Shed) one
// layer down the stack.
type OverloadPolicy int

const (
	// Block applies backpressure: the handler waits for the consumer,
	// which stalls the sensor's TCP stream once kernel buffers fill.
	// The default, and the right choice when sensors buffer locally.
	Block OverloadPolicy = iota
	// Shed drops the transaction when the queue is full, counting it
	// in Stats().Shed — for a collector that must never stall reads.
	Shed
)

// ackWriteTimeout bounds one acknowledgement write; a sensor that
// stopped reading acks cannot wedge its handler.
const ackWriteTimeout = 5 * time.Second

// dedupWindowSize is the per-(sensor, epoch) sliding window of sequence
// numbers the collector remembers, as a bitmap ring. Retransmission is
// whole-batch from the first unacknowledged frame, so the window only
// has to cover one in-flight batch — 64Ki frames is orders beyond any
// sane FlushBytes backlog.
const dedupWindowSize = 1 << 16

// maxEpochsPerSensor caps retained dedup windows per sensor name, so N
// processes sharing one name (or a crash-looping sensor) cannot grow
// state without bound. Eviction drops the smallest non-current epoch.
const maxEpochsPerSensor = 4

// CollectorConfig tunes a Collector. The zero value is usable.
type CollectorConfig struct {
	// QueueLen is the capacity of the ordered ingest channel (default
	// 4096 transactions).
	QueueLen int
	// Overload selects the bounded-queue policy: Block (default)
	// applies backpressure, Shed drops with accounting. A collector
	// with a WAL (OpenWAL) ignores it: a full queue spills to the log
	// and a tailer replays, so reads never stall and nothing drops.
	Overload OverloadPolicy
	// ReadTimeout, when positive, is the per-frame read deadline: a
	// sensor that stalls mid-stream longer than this is cut (it will
	// reconnect and resume). 0 disables deadlines.
	ReadTimeout time.Duration
	// HelloTimeout bounds the wait for the handshake frame on a new
	// connection (default 10s).
	HelloTimeout time.Duration
	// AckEvery forces an acknowledgement at least every N sequenced
	// frames on a busy connection (default 256); on an idle one the
	// collector acks as soon as its read buffer drains.
	AckEvery int
	// DisableAcks suppresses acknowledgements entirely (chaos tests:
	// a collector that accepts frames but never confirms them, forcing
	// full retransmission to its successor).
	DisableAcks bool
	// SensorGrace is how long a disconnected sensor's liveness record
	// is retained — Connected=false with the disconnect reason — before
	// Sensors() forgets it (default 10m). Dedup state is kept
	// regardless; only the health listing is pruned.
	SensorGrace time.Duration
	// Metrics, when set, is the registry the collector publishes the
	// dnsobs_transport_* families to. Nil keeps standalone counters.
	Metrics *metrics.Registry
	// WrapConn, when set, wraps every accepted connection — the chaos
	// injection point for network faults (chaos.Injector.WrapConn).
	WrapConn func(net.Conn) net.Conn
	// OnReject, when set, is called for every well-framed Data payload
	// that failed to decode as a transaction (so the pipeline can
	// account it as rejected, keeping the EngineStats invariant).
	OnReject func(err error)
}

// Collector accepts many concurrent sensor connections and fans their
// transaction streams into one ordered ingest channel: per-sensor
// frame order is preserved (TCP FIFO per connection), interleaving
// between sensors is arrival order. Transactions on the channel own
// their buffers; the consumer may hold them indefinitely.
//
// Sequenced sensors (version-2 hello) get effectively-once delivery:
// the collector deduplicates (sensor, epoch, seq) replays against a
// sliding window and acknowledges accepted sequence numbers, so a
// reconnecting sensor retransmits its unacknowledged batch and only
// the genuinely-new frames pass. With a WAL attached (OpenWAL),
// accepted frames are journaled before they are acknowledged, overload
// spills to the log instead of dropping or stalling, and a restart
// replays everything past the last consumer checkpoint.
//
// Concurrency contract: Serve may be called for several listeners
// (e.g. one TCP, one Unix); each connection runs on its own goroutine.
// Close stops accepting, cuts every connection, waits for the
// handlers, then closes the ingest channel — transactions already
// queued remain readable, so the consumer drains by ranging until the
// channel closes. The WAL stays open through Close so the consumer can
// take a final Checkpoint after draining; CloseWAL releases it.
type Collector struct {
	cfg CollectorConfig
	out chan *sie.Transaction
	// stop unblocks handlers waiting on a full ingest channel under
	// the Block policy once Close begins.
	stop chan struct{}

	mu        sync.Mutex
	closed    bool
	listeners []net.Listener
	conns     map[net.Conn]struct{}
	sensors   map[string]*sensorState
	// dedup is the seen-sequence state, keyed sensor name → epoch.
	// Deliberately separate from the liveness records: those are pruned
	// after SensorGrace, dedup marks must outlive a long disconnect.
	dedup map[string]map[uint64]*epochWindow

	ws *walState // nil without OpenWAL

	serveWG sync.WaitGroup // accept loops
	connWG  sync.WaitGroup // connection handlers

	m *collectorMetrics
}

// walState is the durable-ingest half of a collector: the journal, the
// spill tailer's position, and the consumed-position log that turns
// consumer progress into checkpoints.
type walState struct {
	log *wal.Log

	mu sync.Mutex
	// behind is true while the tailer owns delivery: frames journaled
	// at a position the tailer has not reached yet must not be enqueued
	// directly, or they would jump the queue order.
	behind bool
	// nextRead is the journal position delivery has reached: everything
	// below it is either enqueued or checkpointed.
	nextRead uint64
	// posLog maps enqueue order to journal positions: posLog[i] is the
	// position of the (consumedBase+i+1)-th transaction ever enqueued.
	// Checkpoint(consumed) indexes it to find the trim position.
	posLog       []uint64
	consumedBase uint64
	lastCkpt     uint64
	err          error // first journal failure; poisons acks

	kick chan struct{}
	wg   sync.WaitGroup

	recovered uint64 // data records re-enqueued by restart recovery
}

// epochWindow is the dedup window for one (sensor, epoch): a bitmap
// ring over the last dedupWindowSize sequence numbers plus the highest
// seen. Sequence numbers that fall off the back are assumed seen —
// safe, because the sensor prunes acknowledged frames and never
// retransmits that far back.
type epochWindow struct {
	max  uint64
	bits [dedupWindowSize / 64]uint64
}

// claim marks seq seen and reports whether it was fresh.
func (w *epochWindow) claim(seq uint64) bool {
	idx := func(s uint64) (int, uint64) { p := s % dedupWindowSize; return int(p / 64), uint64(1) << (p % 64) }
	switch {
	case seq > w.max:
		if seq-w.max >= dedupWindowSize {
			w.bits = [dedupWindowSize / 64]uint64{}
		} else {
			for p := w.max + 1; p < seq; p++ {
				i, b := idx(p)
				w.bits[i] &^= b
			}
		}
		i, b := idx(seq)
		w.bits[i] |= b
		w.max = seq
		return true
	case w.max-seq >= dedupWindowSize:
		return false
	default:
		i, b := idx(seq)
		fresh := w.bits[i]&b == 0
		w.bits[i] |= b
		return fresh
	}
}

// sensorState is the liveness record behind one sensor name. Guarded
// by Collector.mu.
type sensorState struct {
	conns          int
	connects       uint64
	frames         uint64
	lastFrame      time.Time
	lastErr        string
	disconnectedAt time.Time
}

// SensorStatus is one sensor's liveness as reported by Sensors (and,
// through it, the web UI /healthz endpoint).
type SensorStatus struct {
	Name string `json:"name"`
	// Connected reports a live connection claiming this sensor name.
	Connected bool `json:"connected"`
	// Connects counts connections ever accepted under this name — a
	// value above 1 means the sensor reconnected.
	Connects uint64 `json:"connects"`
	// Frames counts Data frames received from this sensor.
	Frames uint64 `json:"frames"`
	// LastFrameAgeSec is the age of the newest frame, or -1 when the
	// sensor completed its handshake but has sent no data yet.
	LastFrameAgeSec float64 `json:"last_frame_age_sec"`
	// LastError is why the newest connection ended ("eof" for a clean
	// close), empty while none has.
	LastError string `json:"last_error,omitempty"`
	// DisconnectedAgeSec is how long the sensor has been without a
	// connection, or -1 while connected. Records older than the grace
	// period drop out of the listing entirely.
	DisconnectedAgeSec float64 `json:"disconnected_age_sec"`
}

// CollectorStats is the collector's ingest accounting. At quiescence
// the counters satisfy
//
//	Frames + Replayed = Deduped + DecodeErrors + Shed + Enqueued + Spilled
//
// — every received frame is deduplicated, rejected, shed, enqueued
// directly, or spilled; and every spilled, recovered or absorbed
// transaction re-enters through Replayed.
type CollectorStats struct {
	// Connections counts accepted sensor connections.
	Connections uint64
	// Frames counts Data frames received across all sensors.
	Frames uint64
	// Shed counts transactions dropped by the Shed overload policy.
	Shed uint64
	// DecodeErrors counts well-framed payloads that were not valid
	// transactions.
	DecodeErrors uint64
	// Deduped counts sequenced frames dropped as already-seen
	// (sensor, epoch, seq) replays.
	Deduped uint64
	// Acks counts acknowledgement frames sent to sensors.
	Acks uint64
	// Spilled counts journaled transactions deferred to the spill
	// tailer because the ingest queue was full.
	Spilled uint64
	// Replayed counts journal-sourced acceptances: spill drains,
	// restart recovery, and logs absorbed from dead peers. An absorbed
	// transaction that itself spills counts twice — once at absorption
	// and once when the tailer drains it — matching its two appearances
	// on the other side of the identity (Spilled and Enqueued).
	Replayed uint64
	// Enqueued counts transactions put on the ingest channel, from
	// either path.
	Enqueued uint64
}

// WALStatus reports the journal's health for /healthz.
type WALStatus struct {
	Dir        string `json:"dir"`
	Segments   int    `json:"segments"`
	SizeBytes  int64  `json:"size_bytes"`
	LastPos    uint64 `json:"last_pos"`
	Checkpoint uint64 `json:"checkpoint"`
	// Behind reports the spill tailer owning delivery (queue pressure).
	Behind bool `json:"behind"`
	// Recovered counts transactions re-enqueued by restart recovery.
	Recovered uint64 `json:"recovered"`
	// Error is the first journal failure, empty while healthy. A
	// failed journal stops acknowledgements: sensors buffer and
	// retransmit instead of being lied to about durability.
	Error string `json:"error,omitempty"`
}

// NewCollector returns a collector; start it with Serve.
func NewCollector(cfg CollectorConfig) *Collector {
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 4096
	}
	if cfg.HelloTimeout <= 0 {
		cfg.HelloTimeout = 10 * time.Second
	}
	if cfg.AckEvery <= 0 {
		cfg.AckEvery = 256
	}
	if cfg.SensorGrace <= 0 {
		cfg.SensorGrace = 10 * time.Minute
	}
	c := &Collector{
		cfg:     cfg,
		out:     make(chan *sie.Transaction, cfg.QueueLen),
		stop:    make(chan struct{}),
		conns:   map[net.Conn]struct{}{},
		sensors: map[string]*sensorState{},
		dedup:   map[string]map[uint64]*epochWindow{},
		m:       newCollectorMetrics(cfg.Metrics),
	}
	if reg := cfg.Metrics; reg != nil {
		reg.GaugeFunc(MetricQueueDepth, "transactions queued in the collector ingest channel",
			func() float64 { return float64(len(c.out)) }, "role", "collector")
		reg.GaugeFunc(MetricActiveConns, "live sensor connections",
			func() float64 { return float64(c.activeConns()) }, "role", "collector")
	}
	return c
}

// OpenWAL attaches a journal in dir and recovers it: dedup windows are
// rebuilt from every retained record, and records past the last
// checkpoint — journaled but never confirmed consumed — are re-
// enqueued in position order. Call it after NewCollector and before
// Serve. With a WAL attached the overload policy is spill-then-replay
// regardless of cfg.Overload, and acknowledgements are sent only after
// the journal is synced.
func (c *Collector) OpenWAL(dir string, opts wal.Options) error {
	if c.ws != nil {
		return errors.New("transport: collector WAL already open")
	}
	log, err := wal.Open(dir, opts)
	if err != nil {
		return err
	}
	ws := &walState{log: log, kick: make(chan struct{}, 1)}
	var pending uint64
	err = log.Replay(func(pos uint64, r wal.Record) error {
		switch r.Kind {
		case wal.KindData:
			if r.Epoch != 0 {
				c.claim(r.Sensor, r.Epoch, r.Seq)
			}
			if pos > ws.lastCkpt {
				pending++
			}
		case wal.KindCheckpoint:
			if r.Seq > ws.lastCkpt {
				ws.lastCkpt = r.Seq
			}
		}
		return nil
	})
	if err != nil {
		log.Close()
		return err
	}
	// Records checkpointed before positions counted as pending above —
	// a checkpoint record follows the data it covers, so recount.
	if ws.lastCkpt > 0 {
		pending = 0
		err = log.Replay(func(pos uint64, r wal.Record) error {
			if r.Kind == wal.KindData && pos > ws.lastCkpt {
				pending++
			}
			return nil
		})
		if err != nil {
			log.Close()
			return err
		}
	}
	ws.nextRead = ws.lastCkpt + 1
	ws.recovered = pending
	if pending > 0 {
		ws.behind = true
	}
	c.ws = ws
	ws.wg.Add(1)
	go c.tailer()
	if pending > 0 {
		ws.kickTailer()
	}
	if reg := c.cfg.Metrics; reg != nil {
		reg.GaugeFunc(MetricWALSize, "journal size on disk",
			func() float64 { return float64(log.Size()) }, "role", "collector")
		reg.GaugeFunc(MetricWALSegments, "journal segment count",
			func() float64 { return float64(log.Segments()) }, "role", "collector")
		reg.GaugeFunc(MetricWALCheckpoint, "highest checkpointed journal position",
			func() float64 { ws.mu.Lock(); defer ws.mu.Unlock(); return float64(ws.lastCkpt) }, "role", "collector")
		reg.CounterFunc(MetricWALAppends, "journal record appends",
			func() uint64 { return log.Stats().Appends }, "role", "collector")
	}
	return nil
}

// WALStatus reports journal health; ok is false without an open WAL.
func (c *Collector) WALStatus() (WALStatus, bool) {
	ws := c.ws
	if ws == nil {
		return WALStatus{}, false
	}
	ws.mu.Lock()
	st := WALStatus{
		Dir:        ws.log.Dir(),
		Segments:   ws.log.Segments(),
		SizeBytes:  ws.log.Size(),
		LastPos:    ws.log.LastPos(),
		Checkpoint: ws.lastCkpt,
		Behind:     ws.behind,
		Recovered:  ws.recovered,
	}
	if ws.err != nil {
		st.Error = ws.err.Error()
	}
	ws.mu.Unlock()
	return st, true
}

// Checkpoint records that the consumer has durably applied the first
// `consumed` transactions ever read off C() (cumulative, in channel
// order), then garbage-collects journal segments below that point.
// Call it when consumed state hits stable storage — after a snapshot
// flush — and once more after the final drain. No-op without a WAL.
func (c *Collector) Checkpoint(consumed uint64) error {
	ws := c.ws
	if ws == nil {
		return nil
	}
	ws.mu.Lock()
	if consumed <= ws.consumedBase || len(ws.posLog) == 0 {
		ws.mu.Unlock()
		return nil
	}
	n := consumed - ws.consumedBase
	if n > uint64(len(ws.posLog)) {
		n = uint64(len(ws.posLog))
	}
	pos := ws.posLog[n-1]
	ws.posLog = append(ws.posLog[:0], ws.posLog[n:]...)
	ws.consumedBase += n
	ws.lastCkpt = pos
	ws.mu.Unlock()
	if _, err := ws.log.Append(wal.Record{Kind: wal.KindCheckpoint, Seq: pos}); err != nil {
		return err
	}
	if err := ws.log.Sync(); err != nil {
		return err
	}
	return ws.log.TrimTo(pos)
}

// AbsorbLog replays a dead peer collector's journal into this one:
// every data record past the peer's last checkpoint — accepted by the
// peer but never confirmed consumed — runs through this collector's
// dedup, journal and queue as if its sensor had retransmitted it. keep
// filters by sensor name (nil takes everything): in a fleet, each
// survivor absorbs exactly the sensors the rebalanced ring assigns to
// it. Returns how many were absorbed and how many were already seen.
// The peer's log must not have a live writer.
func (c *Collector) AbsorbLog(peer *wal.Log, keep func(sensor string) bool) (absorbed, deduped uint64, err error) {
	var peerCkpt uint64
	err = peer.Replay(func(_ uint64, r wal.Record) error {
		if r.Kind == wal.KindCheckpoint && r.Seq > peerCkpt {
			peerCkpt = r.Seq
		}
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	err = peer.Replay(func(pos uint64, r wal.Record) error {
		if r.Kind != wal.KindData || pos <= peerCkpt {
			return nil
		}
		if keep != nil && !keep(r.Sensor) {
			return nil
		}
		if r.Epoch != 0 && !c.claim(r.Sensor, r.Epoch, r.Seq) {
			deduped++
			c.m.deduped.Inc()
			return nil
		}
		tx := new(sie.Transaction)
		body := append([]byte(nil), r.Payload...)
		if uerr := tx.Unmarshal(body); uerr != nil {
			c.m.decodeErrors.Inc()
			return nil
		}
		if c.ws != nil {
			if _, _, jerr := c.journalAndDeliver(r.Sensor, r.Epoch, r.Seq, r.Payload, tx, true); jerr != nil {
				return jerr
			}
		} else {
			select {
			case c.out <- tx:
				c.m.enqueued.Inc()
				c.m.replayed.Inc()
			case <-c.stop:
				return errors.New("transport: collector closing")
			}
		}
		absorbed++
		return nil
	})
	return absorbed, deduped, err
}

// C returns the ordered ingest channel. It closes after Close, once
// every handler has exited; queued transactions remain readable.
func (c *Collector) C() <-chan *sie.Transaction { return c.out }

// Stats returns a snapshot of the collector's counters.
func (c *Collector) Stats() CollectorStats {
	return CollectorStats{
		Connections:  c.m.connections.Value(),
		Frames:       c.m.frames.Value(),
		Shed:         c.m.shed.Value(),
		DecodeErrors: c.m.decodeErrors.Value(),
		Deduped:      c.m.deduped.Value(),
		Acks:         c.m.acks.Value(),
		Spilled:      c.m.spilled.Value(),
		Replayed:     c.m.replayed.Value(),
		Enqueued:     c.m.enqueued.Value(),
	}
}

// Sensors returns per-sensor liveness, sorted by name. Disconnected
// sensors linger for the grace period with their last error, then drop
// out (their dedup state is retained independently).
func (c *Collector) Sensors() []SensorStatus {
	now := time.Now()
	c.mu.Lock()
	out := make([]SensorStatus, 0, len(c.sensors))
	for name, st := range c.sensors {
		if st.conns == 0 && !st.disconnectedAt.IsZero() &&
			now.Sub(st.disconnectedAt) > c.cfg.SensorGrace {
			delete(c.sensors, name)
			continue
		}
		s := SensorStatus{
			Name:               name,
			Connected:          st.conns > 0,
			Connects:           st.connects,
			Frames:             st.frames,
			LastFrameAgeSec:    -1,
			LastError:          st.lastErr,
			DisconnectedAgeSec: -1,
		}
		if !st.lastFrame.IsZero() {
			s.LastFrameAgeSec = now.Sub(st.lastFrame).Seconds()
		}
		if st.conns == 0 && !st.disconnectedAt.IsZero() {
			s.DisconnectedAgeSec = now.Sub(st.disconnectedAt).Seconds()
		}
		out = append(out, s)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// activeConns returns the live connection count.
func (c *Collector) activeConns() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.conns)
}

// Serve accepts sensor connections on ln until Close (which closes the
// listener). It returns nil on a Close-triggered shutdown and the
// accept error otherwise. Run it on its own goroutine; it may be
// called for several listeners concurrently.
func (c *Collector) Serve(ln net.Listener) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		ln.Close()
		return nil
	}
	c.listeners = append(c.listeners, ln)
	c.serveWG.Add(1)
	c.mu.Unlock()
	defer c.serveWG.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		if c.cfg.WrapConn != nil {
			conn = c.cfg.WrapConn(conn)
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			conn.Close()
			return nil
		}
		c.conns[conn] = struct{}{}
		c.connWG.Add(1)
		c.mu.Unlock()
		c.m.connections.Inc()
		go c.handle(conn)
	}
}

// Close stops accepting, cuts every live connection, waits for the
// handlers and the spill tailer, and closes the ingest channel. Safe
// to call once; transactions already queued stay readable after it
// returns, and the WAL stays open for a final Checkpoint (CloseWAL
// releases it). Frames spilled but not yet replayed stay in the
// journal — the next OpenWAL re-enqueues them.
func (c *Collector) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	listeners := c.listeners
	conns := make([]net.Conn, 0, len(c.conns))
	for conn := range c.conns {
		conns = append(conns, conn)
	}
	c.mu.Unlock()
	close(c.stop)
	for _, ln := range listeners {
		ln.Close()
	}
	for _, conn := range conns {
		conn.Close() // unblocks any read in progress
	}
	c.serveWG.Wait()
	c.connWG.Wait()
	if c.ws != nil {
		c.ws.wg.Wait()
	}
	close(c.out)
}

// CloseWAL syncs and closes the journal. Call after the final
// Checkpoint; the collector must already be closed.
func (c *Collector) CloseWAL() error {
	if c.ws == nil {
		return nil
	}
	if err := c.ws.log.Sync(); err != nil {
		c.ws.log.Close()
		return err
	}
	return c.ws.log.Close()
}

// dropConn forgets a finished connection.
func (c *Collector) dropConn(conn net.Conn) {
	c.mu.Lock()
	delete(c.conns, conn)
	c.mu.Unlock()
}

// register binds a connection to its sensor name after the handshake.
func (c *Collector) register(name string) *sensorState {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.sensors[name]
	if st == nil {
		st = &sensorState{}
		c.sensors[name] = st
	}
	st.conns++
	st.connects++
	return st
}

// unregister releases a connection's claim on its sensor name,
// recording why it ended. The liveness record survives for the grace
// period (Connected goes false) so /healthz keeps reporting a sensor
// that died, and with what error.
func (c *Collector) unregister(st *sensorState, reason string) {
	c.mu.Lock()
	st.conns--
	st.lastErr = reason
	if st.conns == 0 {
		st.disconnectedAt = time.Now()
	}
	c.mu.Unlock()
}

// noteFrame updates a sensor's liveness for one received Data frame.
func (c *Collector) noteFrame(st *sensorState) {
	c.mu.Lock()
	st.frames++
	st.lastFrame = time.Now()
	c.mu.Unlock()
}

// noteSeqFrame is noteFrame plus the dedup claim, one lock for both.
// fresh reports whether (epoch, seq) was first-seen.
func (c *Collector) noteSeqFrame(st *sensorState, name string, epoch, seq uint64) (fresh bool) {
	c.mu.Lock()
	st.frames++
	st.lastFrame = time.Now()
	fresh = c.claimLocked(name, epoch, seq)
	c.mu.Unlock()
	return fresh
}

// claim marks (name, epoch, seq) seen, reporting whether it was fresh.
func (c *Collector) claim(name string, epoch, seq uint64) bool {
	c.mu.Lock()
	fresh := c.claimLocked(name, epoch, seq)
	c.mu.Unlock()
	return fresh
}

func (c *Collector) claimLocked(name string, epoch, seq uint64) bool {
	epochs := c.dedup[name]
	if epochs == nil {
		epochs = map[uint64]*epochWindow{}
		c.dedup[name] = epochs
	}
	w := epochs[epoch]
	if w == nil {
		if len(epochs) >= maxEpochsPerSensor {
			var victim uint64 = ^uint64(0)
			for e := range epochs {
				if e < victim {
					victim = e
				}
			}
			delete(epochs, victim)
		}
		w = &epochWindow{}
		epochs[epoch] = w
	}
	return w.claim(seq)
}

// handle runs one connection: handshake, then Data frames until EOF,
// Bye, an error, or Close. A torn trailing frame (the sensor died or
// was cut mid-frame) is discarded here; the sensor retransmits it in
// full on its next connection, so the stream resumes on a frame
// boundary. Sequenced frames are deduplicated and acknowledged —
// effectively-once across reconnects; bare v1 Data frames stay
// at-least-once.
func (c *Collector) handle(conn net.Conn) {
	defer c.connWG.Done()
	defer c.dropConn(conn)
	defer conn.Close()
	fr := NewFrameReader(conn)

	conn.SetReadDeadline(time.Now().Add(c.cfg.HelloTimeout))
	typ, payload, err := fr.Next()
	if err != nil || typ != FrameHello {
		c.m.disconnectProt.Inc()
		return
	}
	name, epoch, err := ParseHello(payload)
	if err != nil {
		c.m.disconnectProt.Inc()
		return
	}
	st := c.register(name)
	reason := "eof"
	defer func() { c.unregister(st, reason) }()

	// Acks flow only on sequenced (v2) connections: a v1 sensor never
	// reads, and unread acks would eventually wedge the write.
	acks := epoch != 0 && !c.cfg.DisableAcks
	var lastSeq, ackedSeq uint64
	var ackBuf []byte
	maybeAck := func(force bool) bool {
		if !acks || lastSeq == ackedSeq {
			return true
		}
		if !force && fr.Buffered() > 0 && lastSeq-ackedSeq < uint64(c.cfg.AckEvery) {
			return true
		}
		if ws := c.ws; ws != nil {
			// Durability barrier: never acknowledge a frame the journal
			// has not persisted. A failed journal stops acks entirely —
			// the sensor keeps buffering instead of being lied to.
			ws.mu.Lock()
			broken := ws.err != nil
			ws.mu.Unlock()
			if broken {
				return true
			}
			if err := ws.log.Sync(); err != nil {
				c.walFail(err)
				return true
			}
		}
		conn.SetWriteDeadline(time.Now().Add(ackWriteTimeout))
		ackBuf = AppendAck(ackBuf[:0], lastSeq)
		if _, err := conn.Write(ackBuf); err != nil {
			return false
		}
		ackedSeq = lastSeq
		c.m.acks.Inc()
		return true
	}

	for {
		if c.cfg.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(c.cfg.ReadTimeout))
		} else {
			conn.SetReadDeadline(time.Time{})
		}
		typ, payload, err := fr.Next()
		if err == io.EOF {
			c.m.disconnectEOF.Inc()
			return
		}
		if err != nil {
			c.m.disconnectErr.Inc()
			reason = err.Error()
			return
		}
		switch typ {
		case FrameData:
			c.m.frames.Inc()
			c.noteFrame(st)
			// The frame reader reuses its buffer, so the transaction
			// decodes from its own copy — the consumer owns it outright.
			body := make([]byte, len(payload))
			copy(body, payload)
			tx := new(sie.Transaction)
			if err := tx.Unmarshal(body); err != nil {
				c.m.decodeErrors.Inc()
				if c.cfg.OnReject != nil {
					c.cfg.OnReject(err)
				}
				continue
			}
			if c.ws != nil {
				if ok, _, err := c.journalAndDeliver(name, 0, 0, payload, tx, false); err != nil || !ok {
					reason = "collector closing"
					return
				}
			} else if !c.enqueue(tx) {
				reason = "collector closing"
				return
			}
		case FrameSeqData:
			c.m.frames.Inc()
			seq, txb, perr := ParseSeqData(payload)
			if perr != nil {
				c.m.disconnectProt.Inc()
				reason = perr.Error()
				return
			}
			if seq > lastSeq {
				lastSeq = seq
			}
			fresh := true
			if epoch != 0 {
				fresh = c.noteSeqFrame(st, name, epoch, seq)
			} else {
				c.noteFrame(st)
			}
			if !fresh {
				c.m.deduped.Inc()
				if !maybeAck(false) {
					reason = "ack write failed"
					return
				}
				continue
			}
			body := make([]byte, len(txb))
			copy(body, txb)
			tx := new(sie.Transaction)
			if err := tx.Unmarshal(body); err != nil {
				// Accounted and acknowledged: retransmitting an
				// undecodable payload cannot help.
				c.m.decodeErrors.Inc()
				if c.cfg.OnReject != nil {
					c.cfg.OnReject(err)
				}
				if !maybeAck(false) {
					reason = "ack write failed"
					return
				}
				continue
			}
			if c.ws != nil {
				if ok, _, err := c.journalAndDeliver(name, epoch, seq, txb, tx, false); err != nil || !ok {
					reason = "collector closing"
					return
				}
			} else if !c.enqueue(tx) {
				reason = "collector closing"
				return
			}
			if !maybeAck(false) {
				reason = "ack write failed"
				return
			}
		case FrameBye:
			maybeAck(true)
			c.m.disconnectEOF.Inc()
			return
		default: // a second Hello mid-stream
			c.m.disconnectProt.Inc()
			reason = "protocol violation"
			return
		}
	}
}

// journalAndDeliver is the durable ingest path: append the raw
// transaction bytes to the journal, then either enqueue directly (tx,
// already decoded) or leave delivery to the spill tailer when the
// queue is full or the tailer is already behind — order through the
// queue always matches journal position order. replay marks the
// transaction as journal-sourced (AbsorbLog) for the Replayed counter.
// ok is false only when the collector is closing.
func (c *Collector) journalAndDeliver(name string, epoch, seq uint64, raw []byte, tx *sie.Transaction, replay bool) (ok bool, spilled bool, err error) {
	ws := c.ws
	// The append happens under ws.mu: concurrent handlers must enqueue
	// in journal order, or nextRead can regress past a position another
	// handler already delivered and the tailer would deliver it twice.
	ws.mu.Lock()
	pos, err := ws.log.Append(wal.Record{Kind: wal.KindData, Sensor: name, Epoch: epoch, Seq: seq, Payload: raw})
	if err != nil {
		ws.mu.Unlock()
		c.walFail(err)
		return false, false, err
	}
	if !ws.behind {
		select {
		case c.out <- tx:
			ws.posLog = append(ws.posLog, pos)
			ws.nextRead = pos + 1
			ws.mu.Unlock()
			c.m.enqueued.Inc()
			if replay {
				c.m.replayed.Inc()
			}
			return true, false, nil
		case <-c.stop:
			// Closing with a full queue: the frame is safely journaled
			// past nextRead; the next OpenWAL replays it.
			ws.mu.Unlock()
			return false, true, nil
		default:
			ws.behind = true
		}
	}
	ws.mu.Unlock()
	c.m.spilled.Inc()
	if replay {
		// An absorbed frame that spills counts as a replay now (the
		// absorb accepted it) and again when the tailer drains it —
		// both sides of the accounting identity see the spill cycle.
		c.m.replayed.Inc()
	}
	ws.kickTailer()
	return true, true, nil
}

// walFail records the first journal failure. Acknowledgements stop;
// delivery of what is already queued continues.
func (c *Collector) walFail(err error) {
	ws := c.ws
	ws.mu.Lock()
	if ws.err == nil {
		ws.err = err
	}
	ws.mu.Unlock()
}

func (ws *walState) kickTailer() {
	select {
	case ws.kick <- struct{}{}:
	default:
	}
}

// tailer is the replay half of spill-then-replay: whenever delivery
// falls behind the journal, it reads forward from nextRead and feeds
// the queue (blocking — backpressure lands on the journal, which is
// exactly where it is durable), then hands delivery back to the direct
// path once caught up.
func (c *Collector) tailer() {
	ws := c.ws
	defer ws.wg.Done()
	var cur *wal.Cursor
	defer func() {
		if cur != nil {
			cur.Close()
		}
	}()
	for {
		select {
		case <-c.stop:
			return
		case <-ws.kick:
		}
		for {
			ws.mu.Lock()
			if !ws.behind {
				ws.mu.Unlock()
				break
			}
			start := ws.nextRead
			ws.mu.Unlock()
			if cur == nil {
				cur = ws.log.NewCursor(start)
			}
			pos, rec, ok, err := cur.Next()
			if err != nil {
				c.walFail(err)
				ws.mu.Lock()
				ws.behind = false
				ws.mu.Unlock()
				cur.Close()
				cur = nil
				break
			}
			if !ok {
				// Caught up — unless an append slipped in between the read
				// and this check, in which case keep going.
				ws.mu.Lock()
				if cur.Pos() > ws.log.LastPos() {
					ws.behind = false
					ws.mu.Unlock()
					cur.Close()
					cur = nil
					break
				}
				ws.mu.Unlock()
				continue
			}
			if rec.Kind != wal.KindData {
				ws.mu.Lock()
				ws.nextRead = pos + 1
				ws.mu.Unlock()
				continue
			}
			tx := new(sie.Transaction)
			body := append([]byte(nil), rec.Payload...)
			if uerr := tx.Unmarshal(body); uerr != nil {
				// Journaled records decoded once already; treat a failure
				// here as corruption-equivalent and skip it, accounted.
				c.m.decodeErrors.Inc()
				ws.mu.Lock()
				ws.nextRead = pos + 1
				ws.mu.Unlock()
				continue
			}
			select {
			case c.out <- tx:
			case <-c.stop:
				return
			}
			ws.mu.Lock()
			ws.posLog = append(ws.posLog, pos)
			ws.nextRead = pos + 1
			ws.mu.Unlock()
			c.m.enqueued.Inc()
			c.m.replayed.Inc()
		}
	}
}

// enqueue applies the overload policy (the no-WAL path). It reports
// false only when the collector is closing (the handler should exit).
func (c *Collector) enqueue(tx *sie.Transaction) bool {
	if c.cfg.Overload == Shed {
		select {
		case c.out <- tx:
			c.m.enqueued.Inc()
		default:
			c.m.shed.Inc()
		}
		return true
	}
	select {
	case c.out <- tx:
		c.m.enqueued.Inc()
		return true
	case <-c.stop:
		return false
	}
}

// Listen opens a listener for a SplitAddr-style address: "host:port"
// or "tcp:host:port" for TCP, "unix:/path" for a Unix socket (a stale
// socket file from a previous run is removed first).
func Listen(addr string) (net.Listener, error) {
	network, address := SplitAddr(addr)
	if network == "unix" {
		removeStaleSocket(address)
	}
	return net.Listen(network, address)
}
