package transport

import (
	"sync"
	"testing"
	"time"

	"dnsobservatory/internal/observatory"
	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/tsv"
)

// BenchmarkTransportIngest compares the full ingest path — summarize +
// serial pipeline — fed directly from in-memory transactions against
// the same path fed through eight sensors over loopback TCP into a
// collector. The delta between the two sub-benchmarks is the transport
// tax per transaction at the paper's multi-sensor fan-in shape.
func BenchmarkTransportIngest(b *testing.B) {
	base := time.Unix(1600000000, 0)
	const pool = 4096
	txs := make([]*sie.Transaction, pool)
	for i := range txs {
		tx := dnsTx(b, i, base)
		tx.QueryTime = base // one window: no snapshot flushes mid-benchmark
		tx.ResponseTime = base.Add(5 * time.Millisecond)
		txs[i] = tx
	}
	newPipe := func() *observatory.Pipeline {
		return observatory.New(observatory.DefaultConfig(),
			observatory.StandardAggregations(0.01), func(*tsv.Snapshot) {})
	}
	ingest := func(pipe *observatory.Pipeline, summarizer *sie.Summarizer, sum *sie.Summary, tx *sie.Transaction) {
		if err := summarizer.Summarize(tx, sum); err != nil {
			pipe.RecordRejected()
			return
		}
		pipe.Ingest(sum, 0)
	}

	b.Run("direct", func(b *testing.B) {
		pipe := newPipe()
		var summarizer sie.Summarizer
		var sum sie.Summary
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ingest(pipe, &summarizer, &sum, txs[i%pool])
		}
	})

	b.Run("tcp-8-sensors", func(b *testing.B) {
		const sensors = 8
		coll, addr := startCollector(b, CollectorConfig{QueueLen: 4096})
		pipe := newPipe()
		var summarizer sie.Summarizer
		var sum sie.Summary
		per := b.N / sensors
		rem := b.N % sensors
		b.ReportAllocs()
		b.ResetTimer()
		var wg sync.WaitGroup
		for si := 0; si < sensors; si++ {
			n := per
			if si < rem {
				n++
			}
			wg.Add(1)
			go func(si, n int) {
				defer wg.Done()
				s := NewSensor(SensorConfig{Addr: addr, Name: "bench"})
				for i := 0; i < n; i++ {
					if err := s.Write(txs[(si*per+i)%pool]); err != nil {
						b.Error(err)
						return
					}
				}
				if err := s.Close(); err != nil {
					b.Error(err)
				}
			}(si, n)
		}
		for i := 0; i < b.N; i++ {
			tx, ok := <-coll.C()
			if !ok {
				b.Fatal("collector channel closed early")
			}
			ingest(pipe, &summarizer, &sum, tx)
		}
		wg.Wait()
		b.StopTimer()
		coll.Close()
	})
}
