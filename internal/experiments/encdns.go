package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"text/tabwriter"
	"time"

	"dnsobservatory/internal/encwire"
	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/simnet"
)

// Encrypted-DNS traffic-analysis parameters. The closed world is the
// standard website-fingerprinting setup: the adversary knows the
// candidate domain set and trains on its own visits; the question is
// whether ciphertext size/timing alone identifies which domain a flow
// resolved, and how much a padding policy buys back.
const (
	encdnsWorld    = 40 // closed-world domain count
	encdnsMinFlows = 8  // flows needed for a domain to enter the world
	encdnsFeatures = 9
	encdnsK        = 3 // k-NN neighborhood
)

var (
	encdnsModes    = []encwire.Mode{encwire.ModeDoT, encwire.ModeDoH, encwire.ModeDoQ}
	encdnsPolicies = []encwire.Policy{encwire.PadNone, encwire.PadEDNS0, encwire.PadBlock}
)

// encdnsConfig is the scenario every (mode, policy) cell replays: the
// same seed each time, so the underlying resolution traffic is
// byte-identical across cells (the encwire golden invariant) and the
// only thing that varies is what the on-path observer sees.
func (c *Context) encdnsConfig() simnet.Config {
	cfg := simnet.DefaultConfig()
	cfg.Seed = c.opts.Seed
	cfg.Duration = 60 * c.opts.Scale
	if cfg.Duration < 45 {
		cfg.Duration = 45
	}
	cfg.QPS = 250
	cfg.Resolvers = 40
	cfg.Sensors = 8
	cfg.SLDs = 400
	cfg.Mix.Exfil = 0.002 // keep the C2-style channels on the wire
	return cfg
}

// encFlowRec aggregates one client flow from its observations.
type encFlowRec struct {
	domain   string
	workload uint32
	up, down []float64 // per-message wire sizes in observation order
	t0, t1   time.Time
}

func (f *encFlowRec) add(o *encwire.Observation) {
	if len(f.up)+len(f.down) == 0 {
		f.t0 = o.Time
	}
	f.t1 = o.Time
	if o.Domain != "" {
		f.domain = o.Domain
	}
	f.workload = o.Workload
	if o.Dir == encwire.DirQuery {
		f.up = append(f.up, float64(o.WireLen))
	} else {
		f.down = append(f.down, float64(o.WireLen))
	}
}

// features is the per-flow vector the classifier sees: message count,
// directional byte totals, the first and second message size in each
// direction, the largest response, and flow duration. All derivable
// from ciphertext alone.
func (f *encFlowRec) features() [encdnsFeatures]float64 {
	var v [encdnsFeatures]float64
	v[0] = float64(len(f.up) + len(f.down))
	for _, b := range f.up {
		v[1] += b
	}
	for _, b := range f.down {
		v[2] += b
		if b > v[7] {
			v[7] = b
		}
	}
	if len(f.up) > 0 {
		v[3] = f.up[0]
	}
	if len(f.down) > 0 {
		v[4] = f.down[0]
	}
	if len(f.up) > 1 {
		v[5] = f.up[1]
	}
	if len(f.down) > 1 {
		v[6] = f.down[1]
	}
	v[8] = f.t1.Sub(f.t0).Seconds() * 1000
	return v
}

// encdnsCollect runs one (mode, policy) cell and returns the per-flow
// aggregates in flow-id order plus the layer counters.
func encdnsCollect(cfg simnet.Config, mode encwire.Mode, policy encwire.Policy) ([]encFlowRec, encwire.Stats) {
	cfg.EncMode = mode
	cfg.EncPolicy = policy
	var flows []encFlowRec
	cfg.EncEmit = func(o *encwire.Observation) {
		for uint64(len(flows)) < o.Flow {
			flows = append(flows, encFlowRec{})
		}
		flows[o.Flow-1].add(o)
	}
	sim := simnet.New(cfg)
	sim.Run(nil)
	stats, _ := sim.EncStats()
	return flows, stats
}

// encdnsWorldOf picks the closed world: the top domains by flow count
// (ties broken by name) with at least encdnsMinFlows flows each.
func encdnsWorldOf(flows []encFlowRec) []string {
	counts := map[string]int{}
	for i := range flows {
		if flows[i].domain != "" {
			counts[flows[i].domain]++
		}
	}
	names := make([]string, 0, len(counts))
	for d, n := range counts {
		if n >= encdnsMinFlows {
			names = append(names, d)
		}
	}
	sort.Slice(names, func(i, j int) bool {
		if counts[names[i]] != counts[names[j]] {
			return counts[names[i]] > counts[names[j]]
		}
		return names[i] < names[j]
	})
	if len(names) > encdnsWorld {
		names = names[:encdnsWorld]
	}
	sort.Strings(names)
	return names
}

// encdnsEval is one cell of the results table.
type encdnsEval struct {
	accuracy, macroP, macroR float64
	train, test              int
	padShare                 float64 // padding bytes / total wire bytes
}

// encdnsClassify runs the closed-world evaluation on one cell: per
// domain, flows split even/odd into train/test; features standardized
// on train statistics; k-NN (k = encdnsK) majority vote. A domain's
// flows are multi-modal (cache hit vs full resolution differ in
// timing, truncation retries change counts), which k-NN handles and a
// centroid would blur. Distance ties keep the lower train index and
// vote ties the earlier neighbor, so the result is deterministic for a
// fixed seed.
func encdnsClassify(flows []encFlowRec, world []string) encdnsEval {
	idx := map[string]int{}
	for i, d := range world {
		idx[d] = i
	}
	var train, test [][encdnsFeatures]float64
	var trainLab, testLab []int
	perDomain := make([]int, len(world))
	for i := range flows {
		f := &flows[i]
		cl, ok := idx[f.domain]
		if !ok || len(f.up) == 0 {
			continue
		}
		v := f.features()
		if perDomain[cl]%2 == 0 {
			train = append(train, v)
			trainLab = append(trainLab, cl)
		} else {
			test = append(test, v)
			testLab = append(testLab, cl)
		}
		perDomain[cl]++
	}

	// Standardize on train statistics.
	var mean, std [encdnsFeatures]float64
	for _, v := range train {
		for k, x := range v {
			mean[k] += x
		}
	}
	for k := range mean {
		mean[k] /= float64(len(train))
	}
	for _, v := range train {
		for k, x := range v {
			d := x - mean[k]
			std[k] += d * d
		}
	}
	for k := range std {
		std[k] = math.Sqrt(std[k] / float64(len(train)))
		if std[k] == 0 {
			std[k] = 1
		}
	}
	norm := func(v [encdnsFeatures]float64) [encdnsFeatures]float64 {
		for k := range v {
			v[k] = (v[k] - mean[k]) / std[k]
		}
		return v
	}

	trainN := make([][encdnsFeatures]float64, len(train))
	for i, v := range train {
		trainN[i] = norm(v)
	}

	// Classify the test flows; confusion counts for macro P/R.
	tp := make([]float64, len(world))
	predicted := make([]float64, len(world))
	actual := make([]float64, len(world))
	correct := 0
	for i, v := range test {
		n := norm(v)
		// k smallest distances by linear scan; strict less keeps the
		// lower train index on ties.
		var nd [encdnsK]float64
		var nc [encdnsK]int
		for j := range nd {
			nd[j] = math.Inf(1)
			nc[j] = -1
		}
		for j := range trainN {
			var d float64
			for k, x := range n {
				dx := x - trainN[j][k]
				d += dx * dx
			}
			for s := 0; s < encdnsK; s++ {
				if d < nd[s] {
					copy(nd[s+1:], nd[s:])
					copy(nc[s+1:], nc[s:])
					nd[s], nc[s] = d, trainLab[j]
					break
				}
			}
		}
		// Majority vote; ties go to the class seen earliest in distance
		// order (its nearest representative wins).
		votes := map[int]int{}
		best, bestVotes := nc[0], 0
		for _, cl := range nc {
			if cl < 0 {
				continue
			}
			votes[cl]++
			if votes[cl] > bestVotes {
				best, bestVotes = cl, votes[cl]
			}
		}
		predicted[best]++
		actual[testLab[i]]++
		if best == testLab[i] {
			tp[best]++
			correct++
		}
	}
	var ev encdnsEval
	ev.train, ev.test = len(train), len(test)
	if len(test) > 0 {
		ev.accuracy = float64(correct) / float64(len(test))
	}
	var nP, nR int
	for cl := range world {
		if predicted[cl] > 0 {
			ev.macroP += tp[cl] / predicted[cl]
			nP++
		}
		if actual[cl] > 0 {
			ev.macroR += tp[cl] / actual[cl]
			nR++
		}
	}
	if nP > 0 {
		ev.macroP /= float64(nP)
	}
	if nR > 0 {
		ev.macroR /= float64(nR)
	}
	return ev
}

// EncDNS runs the encrypted-DNS traffic-analysis experiment: the same
// seeded scenario replayed over DoT, DoH and DoQ under each padding
// policy, a closed-world domain-identification attack on the resulting
// observation streams, and the padding ablation the encwire layer
// exists to study.
func (c *Context) EncDNS(w io.Writer) error {
	cfg := c.encdnsConfig()

	// The world comes from the first cell; the traffic is identical in
	// every cell (same seed, encryption never perturbs the simulation),
	// so the world and the train/test split line up across the table.
	type cell struct {
		mode   encwire.Mode
		policy encwire.Policy
		eval   encdnsEval
	}
	var cells []cell
	var world []string
	var tunnelFlows, exfilFlows int
	for _, mode := range encdnsModes {
		for _, policy := range encdnsPolicies {
			flows, stats := encdnsCollect(cfg, mode, policy)
			if world == nil {
				world = encdnsWorldOf(flows)
				if len(world) < 2 {
					return fmt.Errorf("experiments: closed world too small (%d domains)", len(world))
				}
				for i := range flows {
					switch flows[i].workload {
					case sie.WorkloadTunnel:
						tunnelFlows++
					case sie.WorkloadExfil:
						exfilFlows++
					}
				}
			}
			ev := encdnsClassify(flows, world)
			if wire := stats.WireUp + stats.WireDown; wire > 0 {
				ev.padShare = float64(stats.PadBytes) / float64(wire)
			}
			cells = append(cells, cell{mode, policy, ev})
		}
	}

	ref := cells[0].eval
	fmt.Fprintf(w, "encrypted-DNS traffic analysis: closed world of %d domains, %d train / %d test flows per cell\n",
		len(world), ref.train, ref.test)
	fmt.Fprintf(w, "scenario: %.0f s x %.0f qps, identical seeded traffic in every cell; C2-style channels on the wire: %d tunnel flows, %d exfil flows\n",
		cfg.Duration, cfg.QPS, tunnelFlows, exfilFlows)
	fmt.Fprintf(w, "classifier: %d-NN over %d standardized size/timing features, random-guess baseline %.3f\n\n",
		encdnsK, encdnsFeatures, 1/float64(len(world)))

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  mode\tpadding\taccuracy\tmacroP\tmacroR\tpad overhead")
	for _, cl := range cells {
		fmt.Fprintf(tw, "  %v\t%v\t%.3f\t%.3f\t%.3f\t%.1f%%\n",
			cl.mode, cl.policy, cl.eval.accuracy, cl.eval.macroP, cl.eval.macroR, 100*cl.eval.padShare)
	}
	tw.Flush()

	fmt.Fprintln(w, "\nablation: accuracy drop vs no padding")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  mode\tnone\tedns0\tblock\tedns0 drop\tblock drop")
	for _, mode := range encdnsModes {
		var none, edns0, block float64
		for _, cl := range cells {
			if cl.mode != mode {
				continue
			}
			switch cl.policy {
			case encwire.PadNone:
				none = cl.eval.accuracy
			case encwire.PadEDNS0:
				edns0 = cl.eval.accuracy
			case encwire.PadBlock:
				block = cl.eval.accuracy
			}
		}
		fmt.Fprintf(tw, "  %v\t%.3f\t%.3f\t%.3f\t%+.3f\t%+.3f\n",
			mode, none, edns0, block, edns0-none, block-none)
	}
	tw.Flush()
	fmt.Fprintln(w, "unpadded encrypted DNS leaks domain identity through sizes alone; RFC 8467")
	fmt.Fprintln(w, "padding collapses size features and pushes the attack toward timing and counts.")
	return nil
}
