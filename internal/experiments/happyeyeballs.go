package experiments

import (
	"fmt"
	"io"
	"net/netip"
	"text/tabwriter"

	"dnsobservatory/internal/analysis"
	"dnsobservatory/internal/observatory"
	"dnsobservatory/internal/simnet"
)

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }

// Fig9 configures the paper's negative-caching pathologies — the
// network-time domains (neg TTL 50x below the A TTL), the ad network
// (5x) and the CDN update host (6x) — on popular v4-only domains, and
// correlates the A-TTL/neg-TTL quotient with the share of empty AAAA
// responses over the top 200 FQDNs.
func (c *Context) Fig9(w io.Writer) error {
	simCfg := simnet.DefaultConfig()
	simCfg.Seed = c.opts.Seed + 300
	simCfg.Duration = 1800 * c.opts.Scale
	if simCfg.Duration < 600 {
		simCfg.Duration = 600
	}
	simCfg.HEShare = 0.7
	simCfg.SLDs = 1500
	var pathological []string
	obsCfg := observatory.DefaultConfig()
	obsCfg.SkipFreshObjects = false
	res := analysis.RunWith(simCfg, obsCfg, func(sim *simnet.Sim) []observatory.Aggregation {
		cases := []struct {
			idx    int
			attl   uint32
			negttl uint32
		}{
			{8, 750, 15},    // "time-a": rank-81 analogue, quotient 50
			{11, 600, 15},   // "time-b": rank-116 analogue
			{14, 300, 60},   // "ads": rank-141 analogue, quotient 5
			{17, 3600, 600}, // "cdn-updates": rank-167 analogue, quotient 6
			{20, 600, 120},  // another low-negTTL host
		}
		for _, cs := range cases {
			z := sim.Universe.SLDs[cs.idx]
			z.ATTL = cs.attl
			z.NegTTL = cs.negttl
			z.IPv6 = false
			for _, f := range z.FQDNs {
				f.V6Override = 0
			}
			pathological = append(pathological, z.FQDNs[0].Name)
		}
		return []observatory.Aggregation{
			{Name: "qname", K: 50_000, Key: observatory.QNameKey},
		}
	})
	snap, err := res.Total("qname")
	if err != nil {
		return err
	}
	rows := analysis.HappyEyeballs(snap, 200)
	fmt.Fprintf(w, "Fig9: top %d FQDNs by traffic — empty AAAA responses vs. negative-caching TTL\n", len(rows))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  rank\tFQDN\tempty-AAAA\tA TTL\tneg TTL\tquotient")
	for _, r := range rows {
		if r.EmptyAAAA < 0.25 {
			continue
		}
		fmt.Fprintf(tw, "  %d\t%s\t%.0f%%\t%.0f\t%.0f\t%.1f\n",
			r.Rank, r.Key, 100*r.EmptyAAAA, r.ATTL, r.NegTTL, r.Quotient)
	}
	tw.Flush()
	worst := analysis.WorstOffenders(rows, 0.7)
	fmt.Fprintf(w, "  FQDNs with >70%% empty responses: %d (pathological configs: %v)\n",
		len(worst), pathological)
	return nil
}

// V6On reproduces §5.3: ten popular v4-only FQDNs enable IPv6 mid-run;
// their empty-AAAA share collapses while query volume stays flat
// (their negative TTLs match their A TTLs).
func (c *Context) V6On(w io.Writer) error {
	simCfg := simnet.DefaultConfig()
	simCfg.Seed = c.opts.Seed + 400
	simCfg.Duration = 1800 * c.opts.Scale
	if simCfg.Duration < 600 {
		simCfg.Duration = 600
	}
	simCfg.HEShare = 0.7
	simCfg.SLDs = 1500
	mid := simCfg.Duration / 2
	var enabled []string
	obsCfg := observatory.DefaultConfig()
	obsCfg.SkipFreshObjects = false
	res := analysis.RunWith(simCfg, obsCfg, func(sim *simnet.Sim) []observatory.Aggregation {
		for i := 0; i < 10; i++ {
			z := sim.Universe.SLDs[5+i]
			z.ATTL = 120
			z.NegTTL = 120 // equal TTLs: volume must not change (§5.3)
			z.IPv6 = false
			for _, f := range z.FQDNs {
				f.V6Override = 0
			}
			sim.Schedule(simnet.V6EnableEvent(mid, z.Name))
			enabled = append(enabled, z.FQDNs[0].Name)
		}
		return []observatory.Aggregation{
			{Name: "qname", K: 50_000, Key: observatory.QNameKey},
		}
	})
	before, err := res.TotalBetween("qname", 0, int64(mid))
	if err != nil {
		return err
	}
	after, err := res.TotalBetween("qname", int64(mid), int64(simCfg.Duration)+60)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "§5.3: FQDNs enabling IPv6 mid-observation")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  FQDN\tempty-AAAA before\tafter\tqueries/min before\tafter")
	var okCount int
	for _, name := range enabled {
		eff, ok := analysis.V6Effect(before, after, name)
		if !ok {
			continue
		}
		okCount++
		fmt.Fprintf(tw, "  %s\t%.0f%%\t%.0f%%\t%.1f\t%.1f\n",
			eff.Key, 100*eff.EmptyShareBefore, 100*eff.EmptyShareAfter,
			eff.HitsBefore, eff.HitsAfter)
	}
	tw.Flush()
	fmt.Fprintf(w, "  %d/%d enabled FQDNs observed in both periods\n", okCount, len(enabled))
	return nil
}
