package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"dnsobservatory/internal/detect"
	"dnsobservatory/internal/observatory"
	"dnsobservatory/internal/publicsuffix"
	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/simnet"
	"dnsobservatory/internal/tsv"
)

// Detection evaluation parameters. The comparison k is deliberately
// small: the claim under test is that information-content ranking
// surfaces low-and-slow channels within the same attention budget a
// volume-only top list gets.
const (
	detectEvalK          = 20
	detectNODHorizonSec  = 120
	detectNODBucketCount = 4
)

// workloadName maps sie.Workload* tags to display labels.
var workloadName = [...]string{"benign", "dga", "prsd", "tunnel", "exfil"}

// truthEntry is the per-eSLD ground truth accumulated from the
// generator tags the simulator stamps on every transaction.
type truthEntry struct {
	counts [5]uint64 // observations per workload class
}

// class returns the majority workload class of the eSLD. Zone-apex and
// infrastructure queries dilute attack eSLDs with a few benign
// observations, so majority vote (not "any") decides the label.
func (e *truthEntry) class() int {
	best := 0
	for c := 1; c < len(e.counts); c++ {
		if e.counts[c] > e.counts[best] {
			best = c
		}
	}
	return best
}

// Detect runs the detection workload: the default scenario plus a
// low-and-slow exfiltration channel, scored against the simulator's
// generator tags (carried through sie.Transaction.Workload — scoring
// never pattern-matches names). It reports information-content vs
// volume-only top-k composition, rank of first detection per labeled
// class, and newly-observed-domain precision/recall.
func (c *Context) Detect(w io.Writer) error {
	simCfg := simnet.DefaultConfig()
	simCfg.Seed = c.opts.Seed
	simCfg.Duration = 300 * c.opts.Scale
	if simCfg.Duration < 300 {
		simCfg.Duration = 300
	}
	// ~0.1% of client events: a couple of queries per second hiding
	// under ~2000 tx/s — invisible to a volume ranking.
	simCfg.Mix.Exfil = 0.0008

	obsCfg := observatory.DefaultConfig()
	obsCfg.SkipFreshObjects = false
	dc := detect.DefaultConfig()
	dc.NODHorizonSec = detectNODHorizonSec
	dc.NODBuckets = detectNODBucketCount
	// The evaluation reads complete windows, so lift the snapshot row
	// caps well above the per-window first-seen volume.
	dc.NODK = 50_000
	dc.NODMaxPerWindow = 8192
	obsCfg.Detect = &dc

	snaps := map[string][]*tsv.Snapshot{}
	pipe := observatory.New(obsCfg, []observatory.Aggregation{
		{Name: "esld", K: 10_000, Key: observatory.ESLDKeyFunc(nil)},
	}, func(s *tsv.Snapshot) {
		snaps[s.Aggregation] = append(snaps[s.Aggregation], s)
	})

	// Ground truth and the online newly-observed reference model: for
	// every window, which eSLDs were genuinely unseen for at least the
	// horizon (strict) or at least horizon minus one bucket (band, the
	// detector's guaranteed-forget tolerance).
	suffixes := publicsuffix.Default
	truth := map[string]*truthEntry{}
	lastObs := map[string]float64{}
	expectStrict := map[int64]map[string]bool{}
	expectBand := map[int64]map[string]bool{}
	bucketSec := float64(detectNODHorizonSec) / detectNODBucketCount

	sim := simnet.New(simCfg)
	var summarizer sie.Summarizer
	var sum sie.Summary
	start := simCfg.Start
	var parsed, errs uint64
	sim.Run(func(tx *sie.Transaction) {
		if err := summarizer.Summarize(tx, &sum); err != nil {
			errs++
			return
		}
		parsed++
		t := tx.QueryTime.Sub(start).Seconds()
		if esld := suffixes.ESLD(sum.QName); len(esld) > 1 {
			key := strings.Clone(esld)
			te := truth[key]
			if te == nil {
				te = &truthEntry{}
				truth[key] = te
			}
			te.counts[sum.Workload%uint32(len(workloadName))]++
			ws := int64(t/60) * 60
			prev, seen := lastObs[key]
			if !seen || t-prev >= detectNODHorizonSec {
				markExpect(expectStrict, ws, key)
				markExpect(expectBand, ws, key)
			} else if t-prev >= detectNODHorizonSec-bucketSec {
				markExpect(expectBand, ws, key)
			}
			lastObs[key] = t
		}
		pipe.Ingest(&sum, t)
	})
	pipe.Flush()
	fmt.Fprintf(w, "detection workload: %d transactions (%d unparsable), %d distinct eSLDs, %.0f s\n",
		parsed, errs, len(truth), simCfg.Duration)

	icSnaps, nodSnaps, volSnaps := snaps[detect.AggESLD], snaps[detect.AggNOD], snaps["esld"]
	if len(icSnaps) == 0 || len(volSnaps) == 0 {
		return fmt.Errorf("experiments: no detection snapshots emitted")
	}

	classOf := func(key string) int {
		if te := truth[key]; te != nil {
			return te.class()
		}
		return 0
	}

	// Part 1: final-window top-k composition, information content vs
	// volume at equal k.
	final := len(icSnaps) - 1
	ic, vol := icSnaps[final], volSnaps[final]
	fmt.Fprintf(w, "\nTop-%d composition, final window (start %ds): information content vs volume\n",
		detectEvalK, ic.Start)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  rank\tIC key\tclass\tscore\tvolume key\tclass\thits")
	for i := 0; i < detectEvalK; i++ {
		var icKey, volKey, icClass, volClass string
		var icScore, volHits float64
		if i < len(ic.Rows) {
			icKey, icScore = ic.Rows[i].Key, ic.Rows[i].Values[0]
			icClass = workloadName[classOf(icKey)]
		}
		if i < len(vol.Rows) {
			volKey, volHits = vol.Rows[i].Key, vol.Rows[i].Values[0]
			volClass = workloadName[classOf(volKey)]
		}
		fmt.Fprintf(tw, "  %d\t%s\t%s\t%.1f\t%s\t%s\t%.0f\n",
			i+1, icKey, icClass, icScore, volKey, volClass, volHits)
	}
	tw.Flush()

	labeledIn := func(rows []tsv.Row, k int) map[int][]int {
		out := map[int][]int{} // class -> ranks (1-based)
		for i := 0; i < k && i < len(rows); i++ {
			if cl := classOf(rows[i].Key); cl != 0 {
				out[cl] = append(out[cl], i+1)
			}
		}
		return out
	}
	icHits, volHits := labeledIn(ic.Rows, detectEvalK), labeledIn(vol.Rows, detectEvalK)
	fmt.Fprintf(w, "  labeled rows in IC top-%d: %d, in volume top-%d: %d\n",
		detectEvalK, countRanks(icHits), detectEvalK, countRanks(volHits))
	for cl := 1; cl < len(workloadName); cl++ {
		if len(icHits[cl]) > 0 && len(volHits[cl]) == 0 {
			fmt.Fprintf(w, "  %s: ranked by IC (best rank %d) but MISSED by volume top-%d\n",
				workloadName[cl], icHits[cl][0], detectEvalK)
		}
	}

	// Part 2: rank of first detection per labeled class, both rankings.
	fmt.Fprintf(w, "\nRank of first detection (top-%d per window)\n", detectEvalK)
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  class\tIC window\tIC rank\tIC key\tvolume window\tvolume rank")
	for cl := 1; cl < len(workloadName); cl++ {
		icW, icR, icK := firstDetection(icSnaps, classOf, cl, detectEvalK)
		vW, vR, _ := firstDetection(volSnaps, classOf, cl, detectEvalK)
		fmt.Fprintf(tw, "  %s\t%s\t%s\t%s\t%s\t%s\n", workloadName[cl],
			windowLabel(icW), rankLabel(icR), icK, windowLabel(vW), rankLabel(vR))
	}
	tw.Flush()

	// Part 3: newly-observed-domain precision/recall after warm-up (the
	// first horizon of windows only fills the seen-set).
	var reported, truePos, strictTotal, strictHit uint64
	var dgaStrict, dgaHit uint64
	evaluated := 0
	for _, ns := range nodSnaps {
		if ns.Start < detectNODHorizonSec {
			continue
		}
		evaluated++
		rows := map[string]bool{}
		for _, r := range ns.Rows {
			rows[r.Key] = true
			reported++
			if expectBand[ns.Start][r.Key] {
				truePos++
			}
		}
		for key := range expectStrict[ns.Start] {
			strictTotal++
			if rows[key] {
				strictHit++
			}
			if classOf(key) == int(sie.WorkloadDGA) {
				dgaStrict++
				if rows[key] {
					dgaHit++
				}
			}
		}
	}
	if evaluated == 0 {
		return fmt.Errorf("experiments: run too short for NOD warm-up (%d s horizon)", detectNODHorizonSec)
	}
	fmt.Fprintf(w, "\nNewly-observed domains, %d post-warmup windows (horizon %d s, %d buckets)\n",
		evaluated, detectNODHorizonSec, detectNODBucketCount)
	fmt.Fprintf(w, "  reported first-seen: %d, of which correct (unseen >= %0.f s): %d -> precision %.3f\n",
		reported, detectNODHorizonSec-bucketSec, truePos, ratio(truePos, reported))
	fmt.Fprintf(w, "  truly new (unseen >= %d s): %d, of which reported: %d -> recall %.3f\n",
		detectNODHorizonSec, strictTotal, strictHit, ratio(strictHit, strictTotal))
	fmt.Fprintf(w, "  DGA eSLDs truly new: %d, reported: %d -> DGA recall %.3f\n",
		dgaStrict, dgaHit, ratio(dgaHit, dgaStrict))
	return nil
}

func markExpect(m map[int64]map[string]bool, ws int64, key string) {
	set := m[ws]
	if set == nil {
		set = map[string]bool{}
		m[ws] = set
	}
	set[key] = true
}

func countRanks(m map[int][]int) (n int) {
	for _, ranks := range m {
		n += len(ranks)
	}
	return n
}

// firstDetection scans windows in time order for the first appearance
// of an eSLD of the given class within the top k rows.
func firstDetection(snaps []*tsv.Snapshot, classOf func(string) int, class, k int) (window int64, rank int, key string) {
	for _, s := range snaps {
		for i := 0; i < k && i < len(s.Rows); i++ {
			if classOf(s.Rows[i].Key) == class {
				return s.Start, i + 1, s.Rows[i].Key
			}
		}
	}
	return -1, 0, ""
}

func windowLabel(start int64) string {
	if start < 0 {
		return "never"
	}
	return fmt.Sprintf("%ds", start)
}

func rankLabel(rank int) string {
	if rank == 0 {
		return "-"
	}
	return fmt.Sprintf("%d", rank)
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
