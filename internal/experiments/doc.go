// Package experiments regenerates every table and figure of the paper's
// evaluation (sections 3–5). Each experiment is a function that runs the
// required scenario through the Observatory pipeline, applies the
// matching analysis, and prints the same rows or series the paper
// reports. See DESIGN.md for the per-experiment index and EXPERIMENTS.md
// for paper-vs-measured results.
//
// Concurrency: a Context is single-owner — each experiment run builds
// (or is handed) its own and never shares it. Experiments themselves are
// independent and may run concurrently, each with a separate Context;
// the registry of experiments is populated at init time and read-only
// afterwards.
package experiments
