package experiments

import (
	"fmt"
	"io"
	"net/netip"
	"sort"
	"text/tabwriter"

	"dnsobservatory/internal/analysis"
	"dnsobservatory/internal/observatory"
	"dnsobservatory/internal/simnet"
	"dnsobservatory/internal/tsv"
)

// Options scales and seeds the experiment scenarios.
type Options struct {
	// Scale multiplies scenario duration; 1.0 is the standard
	// laptop-scale run (the paper's absolute scale is 4 months of
	// 200 k tx/s, far beyond a test harness).
	Scale float64
	// Seed makes runs reproducible.
	Seed int64
	// OutDir receives binary artifacts (the Fig. 6 PGM heatmap). Empty
	// disables artifact writing.
	OutDir string
}

// DefaultOptions runs each experiment in seconds-to-a-minute.
func DefaultOptions() Options { return Options{Scale: 1, Seed: 1} }

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Context caches the shared main-scenario run so that fig2, tab1, tab2,
// fig3 and tab3 do not regenerate identical traffic.
type Context struct {
	opts Options
	main *analysis.RunResult
}

// NewContext prepares an experiment context.
func NewContext(opts Options) *Context {
	return &Context{opts: opts.withDefaults()}
}

// mainScenario is the default Observatory deployment: the full workload
// mix, the standard aggregations, plus the qmin pair dataset.
func (c *Context) mainScenario() *analysis.RunResult {
	if c.main != nil {
		return c.main
	}
	simCfg := simnet.DefaultConfig()
	simCfg.Seed = c.opts.Seed
	simCfg.Duration = 600 * c.opts.Scale
	if simCfg.Duration < 120 {
		simCfg.Duration = 120
	}
	obsCfg := observatory.DefaultConfig()
	obsCfg.SkipFreshObjects = false
	c.main = analysis.RunWith(simCfg, obsCfg, func(sim *simnet.Sim) []observatory.Aggregation {
		return append(observatory.StandardAggregations(0.1),
			analysis.QMinAggregation("qminpairs", 30_000, sim))
	})
	return c.main
}

// MainSnapshots exposes the cached main-scenario snapshots per
// aggregation, generating the scenario on first use. It feeds
// store-backed workflows: ingest these into a SnapshotStore and the
// experiment tables become answerable through the query engine instead
// of in-memory scans.
func (c *Context) MainSnapshots() map[string][]*tsv.Snapshot {
	return c.mainScenario().Snapshots
}

// Experiment is one regenerable artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(*Context, io.Writer) error
}

// Registry lists every experiment in paper order.
var Registry = []Experiment{
	{"fig2", "Fig. 2: traffic distributions for Top-k objects", (*Context).Fig2},
	{"tab1", "Table 1: top 10 AS organizations by transaction volume", (*Context).Table1},
	{"tab2", "Table 2: top 10 QTYPEs", (*Context).Table2},
	{"fig3", "Fig. 3: response delays and network hops", (*Context).Fig3},
	{"tab3", "Table 3 / §3.6: QNAME minimization deployment", (*Context).Table3},
	{"fig4", "Fig. 4: data representativeness vs. resolver sample", (*Context).Fig4},
	{"fig5", "Fig. 5: nameservers seen over monitoring time", (*Context).Fig5},
	{"fig6", "Fig. 6: Hilbert heatmap of nameserver /24 density", (*Context).Fig6},
	{"fig7", "Fig. 7: TTL slash causing a query-rate jump", (*Context).Fig7},
	{"fig8", "Fig. 8: TTL changes vs. query-rate changes", (*Context).Fig8},
	{"tab4", "Table 4: classified TTL-change events", (*Context).Table4},
	{"fig9", "Fig. 9: negative-caching TTLs vs. empty AAAA responses", (*Context).Fig9},
	{"v6on", "§5.3: effect of enabling IPv6", (*Context).V6On},
	{"ablate", "ablations: admission guard, rate decay, HLL precision", (*Context).Ablate},
	{"detect", "detection: information-content heavy hitters and newly-observed domains vs ground truth", (*Context).Detect},
	{"encdns", "encrypted DNS: closed-world traffic analysis per transport mode and padding policy", (*Context).EncDNS},
}

// Find returns the experiment with the given id, or nil.
func Find(id string) *Experiment {
	for i := range Registry {
		if Registry[i].ID == id {
			return &Registry[i]
		}
	}
	return nil
}

// Fig2 prints the Fig. 2 CDFs for the srvip, qname and esld top lists.
func (c *Context) Fig2(w io.Writer) error {
	res := c.mainScenario()
	for _, sub := range []struct{ agg, label string }{
		{"srvip", "a) nameservers"},
		{"qname", "b) FQDNs"},
		{"esld", "c) effective SLDs"},
	} {
		snap, err := res.Total(sub.agg)
		if err != nil {
			return err
		}
		cdf := analysis.DistributionCDF(snap)
		fmt.Fprintf(w, "Fig2%s ranked by traffic (%d objects, %.1f%% of stream captured)\n",
			sub.label, len(cdf.Ranks), 100*cdf.CapturedShare)
		fmt.Fprintf(w, "  splits: NOERROR+data %.1f%%  NXDOMAIN %.1f%%  NODATA %.1f%%\n",
			100*cdf.OKDataShare, 100*cdf.NXDShare, 100*cdf.NoDataShare)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  rank\tall\tNXDOMAIN\tNOERROR+data\tNODATA")
		for _, rank := range logRanks(len(cdf.Ranks)) {
			i := rank - 1
			fmt.Fprintf(tw, "  %d\t%.3f\t%.3f\t%.3f\t%.3f\n",
				rank, cdf.All[i], cdf.NXD[i], cdf.OKData[i], cdf.NoData[i])
		}
		tw.Flush()
		fmt.Fprintf(w, "  half of the traffic is handled by the top %d objects (%.1f%% of the list)\n\n",
			cdf.RankForShare(0.5), 100*float64(cdf.RankForShare(0.5))/float64(len(cdf.Ranks)))
	}
	return nil
}

// logRanks picks log-spaced ranks 1,2,5,10,… up to n.
func logRanks(n int) []int {
	var out []int
	for _, base := range []int{1, 2, 5} {
		for m := 1; ; m *= 10 {
			r := base * m
			if r > n {
				break
			}
			out = append(out, r)
		}
	}
	sort.Ints(out)
	if len(out) == 0 || out[len(out)-1] != n {
		out = append(out, n)
	}
	return out
}

// Table1 prints the AS-organization ranking.
func (c *Context) Table1(w io.Writer) error {
	res := c.mainScenario()
	snap, err := res.Total("srvip")
	if err != nil {
		return err
	}
	rows := analysis.ASTable(snap, res.Sim.Infra.Routing, 10)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "#\tName\tASes\tglobal\tservers\tdelay\thops")
	for i, r := range rows {
		fmt.Fprintf(tw, "%d\t%s\t%d\t%.1f%%\t%d\t%.1f\t%.1f\n",
			i+1, r.Name, r.ASes, 100*r.Global, r.Servers, r.DelayMs, r.Hops)
	}
	tw.Flush()
	fmt.Fprintf(w, "top 10 organizations receive %.1f%% of observed DNS transactions\n",
		100*analysis.TopOrgsShare(rows, 10))
	return nil
}

// Table2 prints the QTYPE table.
func (c *Context) Table2(w io.Writer) error {
	res := c.mainScenario()
	snap, err := res.Total("qtype")
	if err != nil {
		return err
	}
	rows := analysis.QTypeTable(snap, 10)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "#\tQTYPE\tglobal\tdata\tnodata\tnxd\terr\tqdots\tTLDs\teSLDs\tFQDNs\tvalid\tTTL\tservers\tdelay\thops\tsize")
	for i, r := range rows {
		fmt.Fprintf(tw, "%d\t%s\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f\t%.0f\t%.0f\t%.0f\t%.0f%%\t%.0f\t%.0f\t%.0f\t%.1f\t%.0f\n",
			i+1, r.QType, 100*r.Global, 100*r.Data, 100*r.NoData, 100*r.NXD, 100*r.Err,
			r.QDots, r.TLDs, r.ESLDs, r.FQDNs, 100*r.Valid, r.TTL, r.Srvs, r.Delay, r.Hops, r.Size)
	}
	return tw.Flush()
}

// Fig3 prints the delay analyses: the Fig. 3a sections, the Fig. 3b
// rank groups, and the Fig. 3c/d root and gTLD letter quartiles.
func (c *Context) Fig3(w io.Writer) error {
	res := c.mainScenario()
	snap, err := res.Total("srvip")
	if err != nil {
		return err
	}
	medians, sec := analysis.DelayCDF(snap)
	fmt.Fprintf(w, "Fig3a) median response delay across %d nameservers\n", len(medians))
	fmt.Fprintf(w, "  sections: 0-5ms %.1f%%  5-35ms %.1f%%  35-350ms %.1f%%  >350ms %.1f%%\n",
		100*sec.Colocated, 100*sec.Regional, 100*sec.Distant, 100*sec.Impaired)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		fmt.Fprintf(w, "  p%.0f = %.1f ms\n", q*100, quantileOf(medians, q))
	}

	fmt.Fprintln(w, "Fig3b) delay and hops vs. nameserver rank (groups of 100)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  rank\tdelay[ms]\thops")
	groups := analysis.DelayByRank(snap, 2500, 100)
	for _, g := range groups {
		fmt.Fprintf(tw, "  %d\t%.1f\t%.1f\n", g.RankLo, g.MeanDelay, g.MeanHops)
	}
	tw.Flush()

	for _, sub := range []struct {
		label   string
		servers []*simnet.Server
	}{
		{"Fig3c) root nameservers", res.Sim.Infra.RootServers},
		{"Fig3d) gTLD nameservers", res.Sim.Infra.GTLDServers},
	} {
		addrs := serverAddrs(sub.servers)
		stats := analysis.LetterStats(snap, addrs)
		fmt.Fprintln(w, sub.label)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  letter\tq25\tmedian\tq75\thops\tNXD")
		for _, ls := range stats {
			fmt.Fprintf(tw, "  %c\t%.1f\t%.1f\t%.1f\t%.1f\t%.0f%%\n",
				ls.Letter, ls.Q25, ls.Q50, ls.Q75, ls.Hops, 100*ls.NXD)
		}
		tw.Flush()
		share, nxd := analysis.GroupShare(snap, addrs)
		fmt.Fprintf(w, "  group handles %.1f%% of all queries, %.1f%% of them NXDOMAIN\n",
			100*share, 100*nxd)
	}
	return nil
}

func serverAddrs(servers []*simnet.Server) (out []netip.Addr) {
	for _, s := range servers {
		out = append(out, s.Addr)
	}
	return out
}

// Table3 prints the qmin deployment matrix and shares.
func (c *Context) Table3(w io.Writer) error {
	res := c.mainScenario()
	snap, err := res.Total("qminpairs")
	if err != nil {
		return err
	}
	roots, tlds, whitelist := analysis.HierarchySets(res.Sim)
	qr := analysis.QMin(snap, roots, tlds, whitelist)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "pairs with\tobserved\tnon-qmin\tpossible-qmin")
	fmt.Fprintf(tw, "root NS\t%d\t%d\t%d\n", qr.RootPairs, qr.RootNonQMin, qr.RootPairs-qr.RootNonQMin)
	fmt.Fprintf(tw, "TLD NS\t%d\t%d\t%d\n", qr.TLDPairs, qr.TLDNonQMin, qr.TLDPairs-qr.TLDNonQMin)
	tw.Flush()
	fmt.Fprintf(w, "strictly qmin resolvers: %d %v\n", len(qr.QMinResolver), qr.QMinResolver)
	fmt.Fprintf(w, "qmin traffic share: root %.4f%%, TLD %.4f%%\n",
		100*qr.RootQMinShare, 100*qr.TLDQMinShare)
	return nil
}

func quantileOf(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
