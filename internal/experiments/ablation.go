package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"text/tabwriter"

	"dnsobservatory/internal/bloom"
	"dnsobservatory/internal/hll"
	"dnsobservatory/internal/spacesaving"
)

// Ablate quantifies the accuracy impact of the design choices DESIGN.md
// calls out: the Bloom admission guard in front of Space-Saving
// eviction, decayed-rate versus all-time-count ranking, and HLL
// precision. It prints accuracy against exact ground truth, not
// throughput (the bench harness covers speed).
func (c *Context) Ablate(w io.Writer) error {
	rng := rand.New(rand.NewSource(c.opts.Seed + 500))
	c.ablateAdmission(w, rng)
	c.ablateDecay(w, rng)
	c.ablateHLL(w, rng)
	return nil
}

// ablateAdmission compares Space-Saving top-k precision with and
// without the Bloom guard on a stream where half the volume is one-off
// keys — the Observatory's reality (ephemeral FQDNs, DGA names).
func (c *Context) ablateAdmission(w io.Writer, rng *rand.Rand) {
	const (
		capacity = 500
		topK     = 100
		events   = 400_000
	)
	zipf := rand.NewZipf(rng, 1.1, 1, 50_000)
	keys := make([]string, events)
	for i := range keys {
		if rng.Float64() < 0.5 {
			keys[i] = fmt.Sprintf("stable%05d", zipf.Uint64())
		} else {
			keys[i] = fmt.Sprintf("oneoff%09d", rng.Int31())
		}
	}
	truth := map[string]int{}
	for _, k := range keys {
		truth[k]++
	}
	trueTop := topNKeys(truth, topK)

	precision := func(adm spacesaving.Admitter) float64 {
		cache := spacesaving.New(capacity, 60, adm)
		for i, k := range keys {
			cache.Observe(k, float64(i)/1000)
		}
		got := map[string]bool{}
		for _, e := range cache.Top(topK) {
			got[e.Key] = true
		}
		hits := 0
		for _, k := range trueTop {
			if got[k] {
				hits++
			}
		}
		return float64(hits) / float64(len(trueTop))
	}

	pGuarded := precision(bloom.New(1<<21, 0.01))
	pBare := precision(nil)
	fmt.Fprintln(w, "Ablation 1: Bloom admission guard for Space-Saving eviction (§2.2)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  variant\tprecision@100 vs exact counts")
	fmt.Fprintf(tw, "  with admission filter\t%.2f\n", pGuarded)
	fmt.Fprintf(tw, "  without\t%.2f\n", pBare)
	tw.Flush()
	fmt.Fprintln(w)
}

// ablateDecay compares decayed-rate ranking against all-time counts
// after a mid-stream popularity shift: the paper tracks "the rate of
// transactions per second" precisely so the top list follows current
// traffic.
func (c *Context) ablateDecay(w io.Writer, rng *rand.Rand) {
	const events = 200_000
	cache := spacesaving.New(2000, 30, nil)
	var nowKeys []string
	for i := 0; i < events; i++ {
		var k string
		if i < events/2 {
			k = fmt.Sprintf("old%04d", rng.Intn(500))
		} else {
			k = fmt.Sprintf("new%04d", rng.Intn(500))
		}
		cache.Observe(k, float64(i)/1000) // 200 s of stream
	}
	_ = nowKeys
	top := cache.Top(0)
	const streamEnd = float64(events) / 1000

	inTopBy := func(less func(a, b *spacesaving.Entry) bool) (newShare float64) {
		sorted := append([]*spacesaving.Entry(nil), top...)
		sort.Slice(sorted, func(i, j int) bool { return less(sorted[i], sorted[j]) })
		n := 0
		for _, e := range sorted[:100] {
			if e.Key[:3] == "new" {
				n++
			}
		}
		return float64(n) / 100
	}
	byCount := inTopBy(func(a, b *spacesaving.Entry) bool { return a.Count > b.Count })
	byRate := inTopBy(func(a, b *spacesaving.Entry) bool {
		return cache.RateAt(a, streamEnd) > cache.RateAt(b, streamEnd)
	})

	fmt.Fprintln(w, "Ablation 2: decayed-rate vs. all-time-count ranking after a popularity shift")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  ranking\tshare of currently-hot objects in top-100")
	fmt.Fprintf(tw, "  by decayed rate\t%.2f\n", byRate)
	fmt.Fprintf(tw, "  by all-time count\t%.2f\n", byCount)
	tw.Flush()
	fmt.Fprintln(w)
}

// ablateHLL reports observed relative error per precision against exact
// set cardinality — the memory/accuracy trade of the §2.3 estimators.
func (c *Context) ablateHLL(w io.Writer, rng *rand.Rand) {
	const n = 200_000
	fmt.Fprintln(w, "Ablation 3: HyperLogLog precision vs. exact cardinality")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  precision\tmemory\testimate\trelative error")
	for _, p := range []uint8{8, 10, 12, 14} {
		s := hll.MustNew(p)
		for i := 0; i < n; i++ {
			s.Add(fmt.Sprintf("card-%d-%d", p, i))
		}
		est := float64(s.Count())
		relErr := math.Abs(est-n) / n
		fmt.Fprintf(tw, "  p=%d\t%d B\t%.0f\t%.4f\n", p, 1<<p, est, relErr)
	}
	tw.Flush()
	_ = rng
}

func topNKeys(counts map[string]int, n int) []string {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if n < len(keys) {
		keys = keys[:n]
	}
	return keys
}
