package experiments

import (
	"bytes"
	"io"
	"path/filepath"
	"strings"
	"testing"
)

func testContext(t *testing.T) *Context {
	t.Helper()
	return NewContext(Options{Scale: 0.05, Seed: 3, OutDir: t.TempDir()})
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig2", "tab1", "tab2", "fig3", "tab3", "fig4",
		"fig5", "fig6", "fig7", "fig8", "tab4", "fig9", "v6on", "ablate", "detect", "encdns"}
	if len(Registry) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(Registry), len(want))
	}
	for i, id := range want {
		if Registry[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s", i, Registry[i].ID, id)
		}
		if Find(id) == nil {
			t.Errorf("Find(%q) = nil", id)
		}
		if Registry[i].Title == "" || Registry[i].Run == nil {
			t.Errorf("registry[%d] incomplete", i)
		}
	}
	if Find("nope") != nil {
		t.Error("Find(nope) != nil")
	}
}

func TestLogRanks(t *testing.T) {
	r := logRanks(1057)
	if r[0] != 1 || r[len(r)-1] != 1057 {
		t.Errorf("ranks = %v", r)
	}
	for i := 1; i < len(r); i++ {
		if r[i] <= r[i-1] {
			t.Fatalf("not increasing: %v", r)
		}
	}
	if got := logRanks(1); len(got) != 1 || got[0] != 1 {
		t.Errorf("logRanks(1) = %v", got)
	}
}

// TestMainScenarioExperiments exercises the five experiments that share
// the main scenario, checking each prints its key content.
func TestMainScenarioExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run in -short mode")
	}
	ctx := testContext(t)
	cases := []struct {
		id   string
		want []string
	}{
		{"fig2", []string{"Fig2a) nameservers", "NXDOMAIN", "half of the traffic"}},
		{"tab1", []string{"VERISIGN", "AMAZON", "global", "organizations receive"}},
		{"tab2", []string{"QTYPE", "A", "AAAA", "PTR"}},
		{"fig3", []string{"sections:", "root nameservers", "gTLD nameservers", "letter"}},
		{"tab3", []string{"root NS", "TLD NS", "qmin resolvers", "share"}},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		if err := Find(c.id).Run(ctx, &buf); err != nil {
			t.Fatalf("%s: %v", c.id, err)
		}
		out := buf.String()
		for _, want := range c.want {
			if !strings.Contains(out, want) {
				t.Errorf("%s output missing %q:\n%s", c.id, want, out)
			}
		}
	}
}

func TestFig6WritesArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run in -short mode")
	}
	dir := t.TempDir()
	ctx := NewContext(Options{Scale: 0.05, Seed: 3, OutDir: dir})
	var buf bytes.Buffer
	if err := ctx.Fig6(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "prefixes with 1 address") {
		t.Errorf("output:\n%s", buf.String())
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "*.pgm"))
	if len(matches) != 1 {
		t.Errorf("PGM artifacts: %v", matches)
	}
}

func TestTTLExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run in -short mode")
	}
	ctx := testContext(t)
	var buf bytes.Buffer
	if err := ctx.Fig7(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "slashes TTL") || !strings.Contains(out, "mean rate before") {
		t.Errorf("fig7 output:\n%s", out)
	}

	buf.Reset()
	if err := ctx.Table4(&buf); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	for _, want := range []string{"Non-conforming", "Renumbering", "Change NS"} {
		if !strings.Contains(out, want) {
			t.Errorf("tab4 output missing %q:\n%s", want, out)
		}
	}
}

func TestHappyEyeballsExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run in -short mode")
	}
	ctx := testContext(t)
	var buf bytes.Buffer
	if err := ctx.Fig9(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty AAAA") {
		t.Errorf("fig9 output:\n%s", buf.String())
	}

	buf.Reset()
	if err := ctx.V6On(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "enabling IPv6") {
		t.Errorf("v6on output:\n%s", buf.String())
	}
}

func TestRepresentativenessExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run in -short mode")
	}
	ctx := testContext(t)
	var buf bytes.Buffer
	if err := ctx.Fig4(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"nameservers seen", "top-1K coverage", "TLDs seen", "100%"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig4 missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := ctx.Fig5(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cumulative distinct nameserver IPs") {
		t.Errorf("fig5 output:\n%s", buf.String())
	}
}

func TestFig8Experiment(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run in -short mode")
	}
	ctx := testContext(t)
	var buf bytes.Buffer
	if err := ctx.Fig8(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"TTL down", "TTL up", "NXD-driven"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig8 missing %q:\n%s", want, out)
		}
	}
}

func TestAblateExperiment(t *testing.T) {
	ctx := testContext(t)
	var buf bytes.Buffer
	if err := ctx.Ablate(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Ablation 1", "Ablation 2", "Ablation 3", "precision@100"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablate missing %q", want)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != 1 || o.Seed != 1 {
		t.Errorf("defaults = %+v", o)
	}
	ctx := NewContext(Options{})
	if ctx.opts.Scale != 1 {
		t.Error("context did not apply defaults")
	}
	_ = io.Discard
}

// TestEncDNSExperiment runs the traffic-analysis workload end to end:
// the structural sections must be present, the run must be
// reproducible (two contexts, same options, byte-identical output —
// the property that makes the EXPERIMENTS.md numbers regenerable), and
// the unpadded attack must beat random guessing by a wide margin.
func TestEncDNSExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run in -short mode")
	}
	run := func() string {
		var buf bytes.Buffer
		if err := Find("encdns").Run(testContext(t), &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	out := run()
	for _, want := range []string{
		"closed world of",
		"tunnel flows",
		"exfil flows",
		"mode", "padding", "accuracy", "macroP", "macroR",
		"ablation: accuracy drop vs no padding",
		"edns0 drop",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("encdns output missing %q:\n%s", want, out)
		}
	}
	if again := run(); again != out {
		t.Error("encdns output not reproducible across runs with identical options")
	}
}

// TestDetectExperiment runs the detection workload end to end and
// checks the evaluation sections are present. The headline result (the
// exfiltration eSLD ranked by information content, missed by volume)
// is asserted for the default seed in cmd/experiments runs; here the
// structural output suffices since the test seed differs.
func TestDetectExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run in -short mode")
	}
	var buf bytes.Buffer
	if err := Find("detect").Run(testContext(t), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"detection workload:",
		"Top-20 composition",
		"Rank of first detection",
		"Newly-observed domains",
		"precision", "recall", "DGA recall",
		"exfil",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("detect output missing %q:\n%s", want, out)
		}
	}
}
