package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"dnsobservatory/internal/analysis"
	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/observatory"
	"dnsobservatory/internal/publicsuffix"
	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/simnet"
)

// ttlScenarioBase is the simulation config shared by the §4 experiments.
func (c *Context) ttlScenarioBase(duration float64) simnet.Config {
	cfg := simnet.DefaultConfig()
	cfg.Seed = c.opts.Seed + 200
	cfg.Duration = duration * c.opts.Scale
	if cfg.Duration < 600 {
		cfg.Duration = 600
	}
	cfg.SLDs = 1500
	return cfg
}

// esldAggs is the single-aggregation set used by the §4 experiments.
func esldAggs(k int) []observatory.Aggregation {
	return []observatory.Aggregation{
		{Name: "esld", K: k, Key: observatory.ESLDKeyFunc(nil)},
	}
}

// Fig7 reproduces the xmsecu.com case: one domain slashes its TTL and
// its cache-miss query rate jumps.
func (c *Context) Fig7(w io.Writer) error {
	simCfg := c.ttlScenarioBase(1800)
	cut := simCfg.Duration * 0.45
	// The pre-cut TTL must be able to expire within the observation, as
	// in the real event (600 s against days of data).
	ttlBefore := uint32(600)
	if float64(ttlBefore) > simCfg.Duration/3 {
		ttlBefore = uint32(simCfg.Duration / 3)
	}
	var target string
	obsCfg := observatory.DefaultConfig()
	obsCfg.SkipFreshObjects = false
	res := analysis.RunWith(simCfg, obsCfg, func(sim *simnet.Sim) []observatory.Aggregation {
		// The "xmsecu.com" analog: a popular surveillance-device domain.
		z := sim.Universe.SLDs[4]
		z.ATTL = ttlBefore
		target = z.Name
		sim.Schedule(simnet.TTLChangeEvent(cut, target, 10))
		return esldAggs(20000)
	})
	series := analysis.TTLSeries(res.Snapshots["esld"], target)
	fmt.Fprintf(w, "Fig7: %s slashes TTL %d -> 10 s at t=%.0fs\n", target, ttlBefore, cut)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  minute\tqueries/min\tTTL")
	stride := len(series)/24 + 1
	for i := 0; i < len(series); i += stride {
		p := series[i]
		fmt.Fprintf(tw, "  %d\t%.0f\t%.0f\n", p.Start/60, p.Hits, p.TopTTL)
	}
	tw.Flush()
	before, after := splitMeans(series, int64(cut))
	fmt.Fprintf(w, "  mean rate before %.1f/min, after %.1f/min (x%.1f)\n",
		before, after, safeRatio(after, before))
	return nil
}

func splitMeans(series []analysis.TTLSeriesPoint, cut int64) (before, after float64) {
	var nb, na int
	for _, p := range series {
		if p.Start < cut {
			before += p.Hits
			nb++
		} else {
			after += p.Hits
			na++
		}
	}
	if nb > 0 {
		before /= float64(nb)
	}
	if na > 0 {
		after /= float64(na)
	}
	return before, after
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Fig8 schedules TTL changes on dozens of popular domains at mid-run —
// some paired with PRSD attacks so their query rate rises despite a TTL
// increase — and correlates TTL change with query-rate change.
func (c *Context) Fig8(w io.Writer) error {
	simCfg := c.ttlScenarioBase(2400)
	simCfg.Mix.PRSD = 0.08 // attacks make the Fig. 8 outliers visible
	mid := simCfg.Duration / 2
	type plan struct {
		idx    int
		factor float64
		prsd   bool
	}
	var plans []plan
	for i := 0; i < 30; i++ {
		plans = append(plans, plan{idx: 5 + i, factor: 0.1}) // TTL decrease
	}
	for i := 0; i < 20; i++ {
		plans = append(plans, plan{idx: 40 + i, factor: 10}) // TTL increase
	}
	for i := 0; i < 8; i++ {
		plans = append(plans, plan{idx: 65 + i, factor: 10, prsd: true}) // NXD-driven
	}
	obsCfg := observatory.DefaultConfig()
	obsCfg.SkipFreshObjects = false
	res := analysis.RunWith(simCfg, obsCfg, func(sim *simnet.Sim) []observatory.Aggregation {
		for _, p := range plans {
			z := sim.Universe.SLDs[p.idx]
			// Start from a cacheable-but-expiring TTL so both halves
			// observe steady-state miss rates.
			z.ATTL = 120
			sim.Schedule(simnet.TTLChangeEvent(mid, z.Name, uint32(120*p.factor)))
			if p.prsd {
				sim.Schedule(simnet.PRSDTargetEvent(mid, z.Name))
			}
		}
		return esldAggs(20000)
	})
	before, err := res.TotalBetween("esld", 0, int64(mid))
	if err != nil {
		return err
	}
	after, err := res.TotalBetween("esld", int64(mid), int64(simCfg.Duration)+60)
	if err != nil {
		return err
	}
	changes := analysis.TTLTrafficChanges(before, after, 100)
	fmt.Fprintf(w, "Fig8: top %d eSLDs by query-rate change that also changed TTL\n", len(changes))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  eSLD\tTTL\tqueries/min\tNXD-driven")
	show := changes
	if len(show) > 20 {
		show = show[:20]
	}
	for _, ch := range show {
		fmt.Fprintf(tw, "  %s\t%.0f->%.0f\t%.1f->%.1f\t%v\n",
			ch.Key, ch.TTLBefore, ch.TTLAfter, ch.HitsBefore, ch.HitsAfter, ch.NXDDriven)
	}
	tw.Flush()
	q := analysis.Quadrants(changes)
	fmt.Fprintf(w, "  TTL down -> queries up: %d, down: %d\n", q.DownUp, q.DownDown)
	fmt.Fprintf(w, "  TTL up   -> queries up: %d (NXD-driven: %d), down: %d\n",
		q.UpUp, q.UpUpNXD, q.UpDown)
	return nil
}

// Table4 schedules the full palette of infrastructure events, detects
// TTL changes in "hourly" aafqdn aggregates, and classifies them against
// the scenario's ground truth (the DNSDB substitute).
func (c *Context) Table4(w io.Writer) error {
	simCfg := c.ttlScenarioBase(2400)
	mid := simCfg.Duration / 2
	gt := analysis.GroundTruth{
		NonConforming: map[string]bool{},
		Renumbered:    map[string]bool{},
		NSChanged:     map[string]bool{},
		ESLDOf:        publicsuffix.ESLD,
	}
	obsCfg := observatory.DefaultConfig()
	obsCfg.SkipFreshObjects = false
	// One pipeline window plays the role of the paper's hour, so the
	// per-window TTL mode is a true hourly mode (§4.2.1 analyzes
	// consecutive hourly files).
	obsCfg.WindowSec = simCfg.Duration / 10
	// The paper detects changes on A and NS record TTLs; keying the
	// authoritative-answer dataset on A transactions avoids the apex
	// qtype mixing (MX/SOA/NS answers carry their own TTLs).
	aafqdnA := func(sum *sie.Summary) (string, bool) {
		if sum.QType != dnswire.TypeA {
			return "", false
		}
		return observatory.AAFQDNKey(sum)
	}
	res := analysis.RunWith(simCfg, obsCfg, func(sim *simnet.Sim) []observatory.Aggregation {
		slds := sim.Universe.SLDs
		normalize := func(idx int) *simnet.SLD {
			z := slds[idx]
			z.ATTL = 600 // a stable, observable starting TTL
			return z
		}
		for i := 0; i < 6; i++ { // non-conforming servers
			z := normalize(4 + i)
			sim.Schedule(simnet.NonConformingEvent(0, z.Name))
			gt.NonConforming[z.Name] = true
		}
		for i := 0; i < 4; i++ { // renumbering into a cloud
			z := normalize(10 + i)
			addr := fmt.Sprintf("203.0.%d.10", 100+i)
			sim.Schedule(simnet.RenumberEvent(mid, z.Name, mustAddr(addr), 38400))
			gt.Renumbered[z.Name] = true
		}
		{ // provider switch with TTL slash
			z := normalize(15)
			sim.Schedule(simnet.NSChangeEvent(mid, z.Name, "dnsv2.com"))
			sim.Schedule(simnet.TTLChangeEvent(mid, z.Name, 10))
			gt.NSChanged[z.Name] = true
		}
		for i := 0; i < 2; i++ { // plain TTL decrease
			z := normalize(17 + i)
			sim.Schedule(simnet.TTLChangeEvent(mid, z.Name, 60))
		}
		{ // plain TTL increase
			z := normalize(19)
			sim.Schedule(simnet.TTLChangeEvent(mid, z.Name, 3600))
		}
		return []observatory.Aggregation{
			{Name: "aafqdn", K: 20000, Key: aafqdnA},
		}
	})
	hourly := res.Snapshots["aafqdn"]
	detected := analysis.DetectTTLChanges(hourly, 0.1)
	classes := analysis.Classify(detected, gt)
	fmt.Fprintf(w, "Table4: %d FQDNs with significant TTL changes across %d hourly files\n",
		len(detected), len(hourly))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  category\tdomains\tFQDNs\texample\tTTL before/after")
	for cls := analysis.ClassNonConforming; cls <= analysis.ClassUnknown; cls++ {
		obs := classes[cls]
		if len(obs) == 0 {
			fmt.Fprintf(tw, "  %s\t0\t0\t-\t-\n", cls)
			continue
		}
		// The paper counts affected domains; one zone change surfaces
		// on every popular FQDN below it.
		zones := map[string]bool{}
		for _, o := range obs {
			zones[publicsuffix.ESLD(o.Key)] = true
		}
		ex := obs[0]
		fmt.Fprintf(tw, "  %s\t%d\t%d\t%s\t%.0f/%.0f\n",
			cls, len(zones), len(obs), ex.Key, ex.TTLBefore, ex.TTLAfter)
	}
	return tw.Flush()
}
