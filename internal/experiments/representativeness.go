package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"text/tabwriter"

	"dnsobservatory/internal/analysis"
	"dnsobservatory/internal/simnet"
)

// recording runs the representativeness scenario once (a larger resolver
// pool, so subsampling has room) and records the tuples.
func (c *Context) recording(durationSec float64) *analysis.Recording {
	cfg := simnet.DefaultConfig()
	cfg.Seed = c.opts.Seed + 100
	cfg.Duration = durationSec * c.opts.Scale
	if cfg.Duration < 60 {
		cfg.Duration = 60
	}
	cfg.Resolvers = 400
	cfg.Sensors = 60
	return analysis.Record(simnet.New(cfg))
}

// Fig4 prints the three representativeness curves: nameservers seen,
// Top-10K coverage and TLDs seen within one window, as the resolver
// sample grows from 5 % to 100 % (20 repetitions, as in the paper).
func (c *Context) Fig4(w io.Writer) error {
	rec := c.recording(300)
	window := int32(300 * c.opts.Scale)
	if window < 60 {
		window = 60
	}
	fractions := []float64{0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0}
	const reps = 20
	ns := rec.NameserversSeen(fractions, window, reps, c.opts.Seed)
	top := rec.TopKCoverage(fractions, 1000, window, reps, c.opts.Seed)
	tlds := rec.TLDsSeen(fractions, window, reps, c.opts.Seed)

	fmt.Fprintf(w, "Fig4: representativeness over %d recorded transactions, %d resolvers, %d reps\n",
		rec.Len(), len(rec.Resolvers), reps)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  resolvers\ta) nameservers seen\tb) top-1K coverage\tc) TLDs seen")
	for i := range fractions {
		fmt.Fprintf(tw, "  %.0f%%\t%.0f\t%.1f%%\t%.0f\n",
			100*fractions[i], ns[i].Value, top[i].Value, tlds[i].Value)
	}
	return tw.Flush()
}

// Fig5 prints the cumulative nameserver count over monitoring time.
func (c *Context) Fig5(w io.Writer) error {
	rec := c.recording(1200)
	step := int32(60)
	points := rec.ServersOverTime(step)
	fmt.Fprintln(w, "Fig5: cumulative distinct nameserver IPs vs. monitoring time")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  time\tnameservers")
	stride := len(points)/20 + 1
	for i := 0; i < len(points); i += stride {
		fmt.Fprintf(tw, "  %dm\t%.0f\n", points[i].Sec/60, points[i].Count)
	}
	last := points[len(points)-1]
	fmt.Fprintf(tw, "  %dm\t%.0f\n", last.Sec/60, last.Count)
	return tw.Flush()
}

// Fig6 prints /24 density statistics and, when OutDir is set, writes the
// Hilbert heatmap PGM.
func (c *Context) Fig6(w io.Writer) error {
	rec := c.recording(600)
	density := rec.PrefixDensity()
	one, two, three := analysis.DensityShares(density)
	fmt.Fprintf(w, "Fig6: %d observed /24 prefixes with nameservers\n", len(density))
	fmt.Fprintf(w, "  prefixes with 1 address: %.1f%%, 2: %.1f%%, 3: %.1f%%\n",
		100*one, 100*two, 100*three)
	grid := analysis.Heatmap(density, 8)
	fmt.Fprintf(w, "  heatmap: %dx%d cells, %d occupied, max density %d\n",
		grid.Side, grid.Side, grid.Occupied(), grid.Max)
	if c.opts.OutDir != "" {
		if err := os.MkdirAll(c.opts.OutDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(c.opts.OutDir, "fig6-heatmap.pgm")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := grid.WritePGM(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "  wrote %s\n", path)
	}
	return nil
}
