package sie

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"

	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/hll"
)

func TestPrecomputeHashes(t *testing.T) {
	var s Summarizer
	var sum Summary
	if err := s.Summarize(makeTx(t, true), &sum); err != nil {
		t.Fatal(err)
	}
	sum.PrecomputeHashes(nil)
	if !sum.HashesReady {
		t.Fatal("HashesReady not set")
	}
	if sum.QNameHash != hll.HashString(sum.QName) {
		t.Error("QNameHash mismatch")
	}
	if sum.ResolverHash != hll.HashString(sum.Resolver.String()) {
		t.Error("ResolverHash mismatch")
	}
	if sum.NameserverHash != hll.HashString(sum.Nameserver.String()) {
		t.Error("NameserverHash mismatch")
	}
	if sum.TLDHash != hll.HashString(dnswire.TLD(sum.QName)) {
		t.Error("TLDHash mismatch")
	}
	if len(sum.V4Hashes) != len(sum.V4Addrs) {
		t.Errorf("V4Hashes: %d for %d addrs", len(sum.V4Hashes), len(sum.V4Addrs))
	}
	// Idempotent: a second call must not rehash (mutate a source field
	// and confirm the memoized hash is untouched).
	qh := sum.QNameHash
	sum.QName = "other.example.net."
	sum.PrecomputeHashes(nil)
	if sum.QNameHash != qh {
		t.Error("PrecomputeHashes rehashed a frozen summary")
	}
}

func TestAddressTextFallbacks(t *testing.T) {
	var sum Summary
	sum.Nameserver = netip.MustParseAddr("198.51.100.53")
	if got := sum.NameserverText(); got != "198.51.100.53" {
		t.Errorf("NameserverText = %q", got)
	}
	sum.NameserverStr = "memoized"
	if got := sum.NameserverText(); got != "memoized" {
		t.Errorf("NameserverText with memo = %q", got)
	}
	sum.V6Addrs = append(sum.V6Addrs, netip.MustParseAddr("2001:db8::1"))
	if got := sum.V6Text(0); got != "2001:db8::1" {
		t.Errorf("V6Text = %q", got)
	}
	sum.V6Strs = append(sum.V6Strs, "memo6")
	if got := sum.V6Text(0); got != "memo6" {
		t.Errorf("V6Text with memo = %q", got)
	}
}

func TestReaderDecodeError(t *testing.T) {
	// A well-framed record whose body is not a transaction: Read must
	// return a *DecodeError, bump the process-wide counter, and leave
	// the stream in sync for the next frame.
	before := DecodeErrors()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	good := makeTx(t, false)
	if err := w.Write(good); err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	if err := WriteFrame(&stream, []byte{0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	stream.Write(buf.Bytes())

	r := NewReader(bytes.NewReader(stream.Bytes()))
	var tx Transaction
	err := r.Read(&tx)
	var de *DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DecodeError", err)
	}
	if de.Error() == "" || de.Unwrap() == nil {
		t.Errorf("DecodeError not introspectable: %q / %v", de.Error(), de.Unwrap())
	}
	if DecodeErrors() != before+1 {
		t.Errorf("DecodeErrors = %d, want %d", DecodeErrors(), before+1)
	}
	if err := r.Read(&tx); err != nil {
		t.Fatalf("stream out of sync after DecodeError: %v", err)
	}
	if !bytes.Equal(tx.QueryPacket, good.QueryPacket) {
		t.Error("good record mangled after a bad one")
	}
	if r.Count() != 1 {
		t.Errorf("Count = %d, want 1 (bad records are not counted)", r.Count())
	}
}
