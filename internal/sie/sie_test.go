package sie

import (
	"bytes"
	"io"
	"net/netip"
	"testing"
	"time"

	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/ipwire"
)

func TestVarintRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 300, 1 << 20, 1<<63 - 1, 1 << 63, ^uint64(0)} {
		buf := appendUvarint(nil, v)
		got, n, err := readUvarint(buf)
		if err != nil || got != v || n != len(buf) {
			t.Errorf("varint %d: got %d n=%d err=%v", v, got, n, err)
		}
	}
}

func TestVarintErrors(t *testing.T) {
	if _, _, err := readUvarint(nil); err != ErrTruncatedFrame {
		t.Errorf("empty: %v", err)
	}
	if _, _, err := readUvarint([]byte{0x80, 0x80}); err != ErrTruncatedFrame {
		t.Errorf("truncated: %v", err)
	}
	over := bytes.Repeat([]byte{0xff}, 11)
	if _, _, err := readUvarint(over); err != ErrVarintOverflow {
		t.Errorf("overflow: %v", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	frames := [][]byte{[]byte("one"), {}, []byte("three is a bit longer"), bytes.Repeat([]byte{7}, 40000)}
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(&buf)
	for i, want := range frames {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame %d mismatch (%d vs %d bytes)", i, len(got), len(want))
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Errorf("end: %v", err)
	}
}

func TestFrameReaderOneByteReads(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("dribble")); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(iotest{r: &buf})
	got, err := fr.Next()
	if err != nil || string(got) != "dribble" {
		t.Errorf("got %q err %v", got, err)
	}
}

// iotest yields one byte per Read, stressing refill paths.
type iotest struct{ r io.Reader }

func (o iotest) Read(p []byte) (int, error) { return o.r.Read(p[:1]) }

func TestFrameTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("whole frame")); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-3]
	fr := NewFrameReader(bytes.NewReader(cut))
	if _, err := fr.Next(); err != io.ErrUnexpectedEOF {
		t.Errorf("err = %v", err)
	}
}

func TestWriteFrameTooLarge(t *testing.T) {
	if err := WriteFrame(io.Discard, make([]byte, MaxFrameLen+1)); err != ErrFrameTooLarge {
		t.Errorf("err = %v", err)
	}
}

func makeTx(t *testing.T, answered bool) *Transaction {
	t.Helper()
	resolver := netip.MustParseAddr("192.0.2.10")
	ns := netip.MustParseAddr("198.51.100.53")
	q := &dnswire.Message{
		ID:        77,
		Flags:     dnswire.Flags{RecursionDesired: false},
		Questions: []dnswire.Question{{Name: "www.example.com.", Type: dnswire.TypeA, Class: dnswire.ClassINET}},
	}
	q.SetEDNS(4096, true)
	qw, err := q.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	tx := &Transaction{
		QueryPacket: ipwire.AppendIPv4UDP(nil, resolver, ns, 40000, 53, 64, qw),
		QueryTime:   time.Unix(1554076800, 0),
		SensorID:    42,
	}
	if answered {
		r := &dnswire.Message{
			ID:    77,
			Flags: dnswire.Flags{Response: true, Authoritative: true, RCode: dnswire.RCodeNoError},
			Questions: []dnswire.Question{
				{Name: "www.example.com.", Type: dnswire.TypeA, Class: dnswire.ClassINET}},
			Answers: []dnswire.RR{{
				Name: "www.example.com.", Type: dnswire.TypeA, Class: dnswire.ClassINET,
				TTL: 300, Data: dnswire.ARData{Addr: netip.MustParseAddr("203.0.113.5")}}},
			Authority: []dnswire.RR{{
				Name: "example.com.", Type: dnswire.TypeNS, Class: dnswire.ClassINET,
				TTL: 86400, Data: dnswire.NSRData{NS: "ns1.example.com."}}},
		}
		rw, err := r.Pack(nil)
		if err != nil {
			t.Fatal(err)
		}
		tx.ResponsePacket = ipwire.AppendIPv4UDP(nil, ns, resolver, 53, 40000, 57, rw)
		tx.ResponseTime = tx.QueryTime.Add(23 * time.Millisecond)
	}
	return tx
}

func TestTransactionRoundTrip(t *testing.T) {
	tx := makeTx(t, true)
	frame := tx.Append(nil)
	var got Transaction
	if err := got.Unmarshal(frame); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.QueryPacket, tx.QueryPacket) || !bytes.Equal(got.ResponsePacket, tx.ResponsePacket) {
		t.Error("packets mismatch")
	}
	if !got.QueryTime.Equal(tx.QueryTime) || !got.ResponseTime.Equal(tx.ResponseTime) {
		t.Error("timestamps mismatch")
	}
	if got.SensorID != 42 {
		t.Errorf("sensor = %d", got.SensorID)
	}
	if got.Delay() != 23*time.Millisecond {
		t.Errorf("delay = %v", got.Delay())
	}
}

func TestTransactionUnanswered(t *testing.T) {
	tx := makeTx(t, false)
	frame := tx.Append(nil)
	var got Transaction
	if err := got.Unmarshal(frame); err != nil {
		t.Fatal(err)
	}
	if got.Answered() {
		t.Error("answered")
	}
	if got.Delay() != 0 {
		t.Errorf("delay = %v", got.Delay())
	}
}

func TestTransactionUnmarshalErrors(t *testing.T) {
	var tx Transaction
	if err := tx.Unmarshal(nil); err == nil {
		t.Error("empty frame accepted (no query packet)")
	}
	// Unknown wire type.
	if err := tx.Unmarshal([]byte{0x0d}); err != ErrUnknownField {
		t.Errorf("bad wiretype: %v", err)
	}
	// Length-delimited field longer than the frame.
	if err := tx.Unmarshal([]byte{0x0a, 0x7f, 1, 2}); err != ErrTruncatedFrame {
		t.Errorf("overlong bytes: %v", err)
	}
}

func TestTransactionUnknownFieldSkipped(t *testing.T) {
	tx := makeTx(t, false)
	frame := tx.Append(nil)
	// Append an unknown varint field 15.
	frame = appendVarintField(frame, 15, 999)
	var got Transaction
	if err := got.Unmarshal(frame); err != nil {
		t.Fatalf("unknown field not skipped: %v", err)
	}
	if !bytes.Equal(got.QueryPacket, tx.QueryPacket) {
		t.Error("payload corrupted")
	}
}

func TestStreamWriterReader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	const n = 200
	for i := 0; i < n; i++ {
		if err := w.Write(makeTx(t, i%3 != 0)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != n {
		t.Errorf("written = %d", w.Count())
	}
	r := NewReader(&buf)
	var tx Transaction
	var answered int
	for {
		err := r.Read(&tx)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if tx.Answered() {
			answered++
		}
	}
	if r.Count() != n {
		t.Errorf("read = %d", r.Count())
	}
	if answered != n-(n+2)/3 {
		t.Errorf("answered = %d", answered)
	}
}

func TestSummarizeAnswered(t *testing.T) {
	var s Summarizer
	var sum Summary
	if err := s.Summarize(makeTx(t, true), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Resolver != netip.MustParseAddr("192.0.2.10") || sum.Nameserver != netip.MustParseAddr("198.51.100.53") {
		t.Errorf("addrs: %v %v", sum.Resolver, sum.Nameserver)
	}
	if sum.QName != "www.example.com." || sum.QType != dnswire.TypeA || sum.QDots != 3 {
		t.Errorf("question: %q %v %d", sum.QName, sum.QType, sum.QDots)
	}
	if !sum.Answered || !sum.AA || sum.RCode != dnswire.RCodeNoError {
		t.Errorf("flags: %+v", sum)
	}
	if sum.DelayMs != 23 {
		t.Errorf("delay = %f", sum.DelayMs)
	}
	if sum.Hops != 3 { // initial 60, received 57
		t.Errorf("hops = %d", sum.Hops)
	}
	if !sum.DNSSECOK {
		t.Error("DO flag lost")
	}
	if len(sum.V4Addrs) != 1 || sum.V4Addrs[0] != netip.MustParseAddr("203.0.113.5") {
		t.Errorf("v4 = %v", sum.V4Addrs)
	}
	if sum.AuthorityNS != 1 || len(sum.NSNames) != 1 || sum.NSNames[0] != "ns1.example.com." {
		t.Errorf("authority: %+v", sum)
	}
	if len(sum.AnswerTTLs) != 1 || sum.AnswerTTLs[0] != 300 {
		t.Errorf("answer TTLs = %v", sum.AnswerTTLs)
	}
	if len(sum.NSTTLs) != 1 || sum.NSTTLs[0] != 86400 {
		t.Errorf("ns TTLs = %v", sum.NSTTLs)
	}
	if !sum.OKData() || sum.NoData() {
		t.Error("classification")
	}
	if sum.RespSize == 0 {
		t.Error("resp size")
	}
}

func TestSummarizeUnanswered(t *testing.T) {
	var s Summarizer
	var sum Summary
	if err := s.Summarize(makeTx(t, false), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Answered || sum.OKData() || sum.NoData() {
		t.Error("unanswered classified as answered")
	}
	if sum.QName != "www.example.com." {
		t.Errorf("qname = %q", sum.QName)
	}
}

func TestSummarizeNoDataWithSOA(t *testing.T) {
	resolver := netip.MustParseAddr("192.0.2.10")
	ns := netip.MustParseAddr("198.51.100.53")
	q := &dnswire.Message{
		ID:        5,
		Questions: []dnswire.Question{{Name: "v4only.example.com.", Type: dnswire.TypeAAAA, Class: dnswire.ClassINET}},
	}
	qw, _ := q.Pack(nil)
	r := &dnswire.Message{
		ID:        5,
		Flags:     dnswire.Flags{Response: true, Authoritative: true},
		Questions: q.Questions,
		Authority: []dnswire.RR{{
			Name: "example.com.", Type: dnswire.TypeSOA, Class: dnswire.ClassINET, TTL: 900,
			Data: dnswire.SOARData{MName: "ns1.example.com.", RName: "root.example.com.", Minimum: 15}}},
	}
	rw, _ := r.Pack(nil)
	tx := &Transaction{
		QueryPacket:    ipwire.AppendIPv4UDP(nil, resolver, ns, 4000, 53, 64, qw),
		ResponsePacket: ipwire.AppendIPv4UDP(nil, ns, resolver, 53, 4000, 60, rw),
		QueryTime:      time.Unix(0, 0),
		ResponseTime:   time.Unix(0, int64(5*time.Millisecond)),
	}
	var s Summarizer
	var sum Summary
	if err := s.Summarize(tx, &sum); err != nil {
		t.Fatal(err)
	}
	if !sum.NoData() {
		t.Error("not NoData")
	}
	if !sum.HasSOA || sum.SOAMinimum != 15 {
		t.Errorf("SOA minimum = %d (has=%v)", sum.SOAMinimum, sum.HasSOA)
	}
}

func TestSummarizeRejectsNonDNSPort(t *testing.T) {
	tx := makeTx(t, false)
	// Rewrite the query packet to port 5353.
	pkt, err := ipwire.Decode(tx.QueryPacket)
	if err != nil {
		t.Fatal(err)
	}
	tx.QueryPacket = ipwire.AppendIPv4UDP(nil, pkt.Src, pkt.Dst, pkt.SrcPort, 5353, 64, pkt.Payload)
	var s Summarizer
	var sum Summary
	if err := s.Summarize(tx, &sum); err != ErrNotDNSPort {
		t.Errorf("err = %v", err)
	}
}

func TestSummarizeRejectsMismatchedResponse(t *testing.T) {
	tx := makeTx(t, true)
	rp, err := ipwire.Decode(tx.ResponsePacket)
	if err != nil {
		t.Fatal(err)
	}
	// Response claims to come from a different server.
	tx.ResponsePacket = ipwire.AppendIPv4UDP(nil,
		netip.MustParseAddr("203.0.113.99"), rp.Dst, rp.SrcPort, rp.DstPort, 57, rp.Payload)
	var s Summarizer
	var sum Summary
	if err := s.Summarize(tx, &sum); err != ErrIPMismatch {
		t.Errorf("err = %v", err)
	}
}

func TestSummarizeTolerantMode(t *testing.T) {
	tx := makeTx(t, true)
	tx.ResponsePacket = tx.ResponsePacket[:10] // mangled
	s := Summarizer{KeepUnparsableResponses: true}
	var sum Summary
	if err := s.Summarize(tx, &sum); err != nil {
		t.Fatalf("tolerant mode: %v", err)
	}
	if sum.Answered {
		t.Error("mangled response counted as answered")
	}
	s.KeepUnparsableResponses = false
	if err := s.Summarize(tx, &sum); err == nil {
		t.Error("strict mode accepted mangled response")
	}
}

func TestSummarizeReusesSlices(t *testing.T) {
	var s Summarizer
	var sum Summary
	tx := makeTx(t, true)
	if err := s.Summarize(tx, &sum); err != nil {
		t.Fatal(err)
	}
	c1 := cap(sum.V4Addrs)
	if err := s.Summarize(tx, &sum); err != nil {
		t.Fatal(err)
	}
	if cap(sum.V4Addrs) != c1 {
		t.Error("V4Addrs reallocated")
	}
}
