package sie

import (
	"errors"
	"io"
)

// Errors returned by the wire codec.
var (
	ErrVarintOverflow = errors.New("sie: varint overflows 64 bits")
	ErrTruncatedFrame = errors.New("sie: truncated frame")
	ErrUnknownField   = errors.New("sie: unknown required field")
	ErrFrameTooLarge  = errors.New("sie: frame exceeds size limit")
)

// Protobuf wire types used by the transaction encoding.
const (
	wireVarint = 0
	wireBytes  = 2
)

// appendUvarint appends v in base-128 varint encoding.
func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// readUvarint decodes a varint from b, returning the value and the
// number of bytes consumed (0 with an error on malformed input).
func readUvarint(b []byte) (uint64, int, error) {
	var v uint64
	var shift uint
	for i := 0; i < len(b); i++ {
		if shift >= 64 {
			return 0, 0, ErrVarintOverflow
		}
		c := b[i]
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, i + 1, nil
		}
		shift += 7
	}
	return 0, 0, ErrTruncatedFrame
}

// appendTag appends a field tag.
func appendTag(dst []byte, field int, wt int) []byte {
	return appendUvarint(dst, uint64(field)<<3|uint64(wt))
}

// appendBytesField appends a length-delimited field.
func appendBytesField(dst []byte, field int, b []byte) []byte {
	dst = appendTag(dst, field, wireBytes)
	dst = appendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// appendVarintField appends a varint field.
func appendVarintField(dst []byte, field int, v uint64) []byte {
	dst = appendTag(dst, field, wireVarint)
	return appendUvarint(dst, v)
}

// MaxFrameLen bounds a single serialized transaction; two full-size UDP
// datagrams plus metadata fit comfortably.
const MaxFrameLen = 1 << 17

// WriteFrame writes one length-prefixed frame to w.
func WriteFrame(w io.Writer, frame []byte) error {
	if len(frame) > MaxFrameLen {
		return ErrFrameTooLarge
	}
	hdr := appendUvarint(make([]byte, 0, 5), uint64(len(frame)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(frame)
	return err
}

// FrameReader reads length-prefixed frames from an io.Reader.
type FrameReader struct {
	r       io.Reader
	pending []byte // read-but-unconsumed bytes
	off     int
	chunk   []byte // scratch read buffer
}

// NewFrameReader returns a reader over r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r, chunk: make([]byte, 32<<10)}
}

// Next returns the next frame. The returned slice is valid until the
// following call to Next. It returns io.EOF at a clean end of stream.
func (fr *FrameReader) Next() ([]byte, error) {
	n, err := fr.peekVarint()
	if err != nil {
		return nil, err
	}
	if n > MaxFrameLen {
		return nil, ErrFrameTooLarge
	}
	if err := fr.fill(int(n)); err != nil {
		if err == io.EOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	frame := fr.pending[fr.off : fr.off+int(n)]
	fr.off += int(n)
	return frame, nil
}

// peekVarint decodes the length prefix, consuming it.
func (fr *FrameReader) peekVarint() (uint64, error) {
	for {
		v, n, err := readUvarint(fr.pending[fr.off:])
		if err == nil {
			fr.off += n
			return v, nil
		}
		if err != ErrTruncatedFrame {
			return 0, err
		}
		// Need more bytes; a clean EOF with nothing pending ends the stream.
		if ferr := fr.refill(); ferr != nil {
			if ferr == io.EOF && fr.off == len(fr.pending) {
				return 0, io.EOF
			}
			if ferr == io.EOF {
				return 0, io.ErrUnexpectedEOF
			}
			return 0, ferr
		}
	}
}

// fill ensures at least n unconsumed bytes are pending.
func (fr *FrameReader) fill(n int) error {
	for len(fr.pending)-fr.off < n {
		if err := fr.refill(); err != nil {
			return err
		}
	}
	return nil
}

// refill compacts the buffer and reads more data.
func (fr *FrameReader) refill() error {
	if fr.off > 0 {
		fr.pending = fr.pending[:copy(fr.pending, fr.pending[fr.off:])]
		fr.off = 0
	}
	n, err := fr.r.Read(fr.chunk)
	if n > 0 {
		fr.pending = append(fr.pending, fr.chunk[:n]...)
		return nil
	}
	if err == nil {
		err = io.ErrNoProgress
	}
	return err
}
