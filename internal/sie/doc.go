// Package sie models the Security Information Exchange: the passive-DNS
// sensors that reconstruct resolver↔nameserver transactions from raw
// packets, the Protocol-Buffers-style serialization they submit, and the
// channel stream the Observatory ingests (paper §2.1).
//
// Concurrency and ownership: a Reader and a Summarizer are each
// single-owner — they reuse internal buffers between calls, so one
// goroutine each. A Summary filled by Summarize borrows the
// summarizer's buffers and is valid only until the next Summarize call;
// deep-copy (or use the pooled path below) to keep it. Shared wraps a
// Summary in a reference-counted pool buffer so the sharded engine can
// hand one decoded summary to several workers without copying —
// Retain/Release manage the count atomically. The package-wide decode
// error counter (DecodeErrors) is an atomic, exposed by the metrics
// layer as dnsobs_sie_decode_errors_total.
package sie
