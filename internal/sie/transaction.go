package sie

import (
	"io"
	"sync/atomic"
	"time"
)

// decodeErrors counts well-framed records that failed to decode, across
// every Reader in the process (readers run on independent goroutines,
// hence the atomic).
var decodeErrors atomic.Uint64

// DecodeErrors returns the process-wide count of records rejected with
// a *DecodeError (observatory.InstrumentPlatform exposes it as a
// metric).
func DecodeErrors() uint64 { return decodeErrors.Load() }

// Transaction is one DNS query/response pair reconstructed by a sensor,
// as submitted to the exchange: raw packets starting at the IP header,
// with detailed timestamps (paper §2.1). ResponsePacket is empty when
// the query went unanswered.
type Transaction struct {
	QueryPacket    []byte
	ResponsePacket []byte
	QueryTime      time.Time
	ResponseTime   time.Time
	SensorID       uint32 // the contributing SIE sensor (source)

	// Workload tags the generator class that produced this transaction
	// (simnet ground truth for detection scoring). Real sensors leave it
	// WorkloadUnlabeled; the field is optional on the wire, so streams
	// written by older encoders and readers decode unchanged.
	Workload uint32

	// ClientTransport records which transport the *client→resolver* leg
	// of the resolution ran over (the values mirror encwire.Mode: 0
	// UDP/53 plaintext, 1 DoT, 2 DoH, 3 DoQ). The transaction itself is
	// always the plaintext resolver→authoritative exchange — encryption
	// on the client leg never changes what the Observatory sensor sees —
	// so this tag only correlates SIE frames with an encwire observation
	// stream. Optional on the wire, omitted when zero.
	ClientTransport uint32
}

// Client-transport values (wire-stable, mirroring encwire.Mode).
const (
	TransportUDP53 uint32 = iota // plaintext UDP/53 (or TCP/53 retry)
	TransportDoT                 // DNS over TLS (RFC 7858)
	TransportDoH                 // DNS over HTTPS (RFC 8484)
	TransportDoQ                 // DNS over QUIC (RFC 9250)
)

// Workload classes. Values are wire-stable: they travel in SIE frames
// and in experiment ground-truth sets.
const (
	WorkloadUnlabeled uint32 = iota // real traffic, or benign simnet mix
	WorkloadDGA                     // algorithmically generated botnet lookups
	WorkloadPRSD                    // pseudo-random subdomain attack
	WorkloadTunnel                  // DNS tunneling / TXT-channel traffic
	WorkloadExfil                   // low-and-slow data exfiltration
)

// Answered reports whether a response was captured.
func (tx *Transaction) Answered() bool { return len(tx.ResponsePacket) > 0 }

// Delay returns the nameserver response delay, or 0 if unanswered.
func (tx *Transaction) Delay() time.Duration {
	if !tx.Answered() {
		return 0
	}
	d := tx.ResponseTime.Sub(tx.QueryTime)
	if d < 0 {
		return 0
	}
	return d
}

// Field numbers of the transaction message.
const (
	fieldQueryPacket    = 1
	fieldResponsePacket = 2
	fieldQueryTimeNs    = 3
	fieldResponseTimeNs = 4
	fieldSensorID       = 5
	fieldWorkload       = 6
	fieldClientTrans    = 7
)

// Append serializes tx in protobuf wire format.
func (tx *Transaction) Append(dst []byte) []byte {
	dst = appendBytesField(dst, fieldQueryPacket, tx.QueryPacket)
	if len(tx.ResponsePacket) > 0 {
		dst = appendBytesField(dst, fieldResponsePacket, tx.ResponsePacket)
	}
	dst = appendVarintField(dst, fieldQueryTimeNs, uint64(tx.QueryTime.UnixNano()))
	if !tx.ResponseTime.IsZero() {
		dst = appendVarintField(dst, fieldResponseTimeNs, uint64(tx.ResponseTime.UnixNano()))
	}
	dst = appendVarintField(dst, fieldSensorID, uint64(tx.SensorID))
	if tx.Workload != 0 {
		dst = appendVarintField(dst, fieldWorkload, uint64(tx.Workload))
	}
	if tx.ClientTransport != 0 {
		dst = appendVarintField(dst, fieldClientTrans, uint64(tx.ClientTransport))
	}
	return dst
}

// Unmarshal decodes a serialized transaction, replacing tx's contents.
// Packet slices alias frame. Unknown fields are skipped, as in protobuf.
func (tx *Transaction) Unmarshal(frame []byte) error {
	*tx = Transaction{}
	for off := 0; off < len(frame); {
		tag, n, err := readUvarint(frame[off:])
		if err != nil {
			return err
		}
		off += n
		field, wt := int(tag>>3), int(tag&7)
		switch wt {
		case wireVarint:
			v, n, err := readUvarint(frame[off:])
			if err != nil {
				return err
			}
			off += n
			switch field {
			case fieldQueryTimeNs:
				tx.QueryTime = time.Unix(0, int64(v))
			case fieldResponseTimeNs:
				tx.ResponseTime = time.Unix(0, int64(v))
			case fieldSensorID:
				tx.SensorID = uint32(v)
			case fieldWorkload:
				tx.Workload = uint32(v)
			case fieldClientTrans:
				tx.ClientTransport = uint32(v)
			}
		case wireBytes:
			l, n, err := readUvarint(frame[off:])
			if err != nil {
				return err
			}
			off += n
			if off+int(l) > len(frame) {
				return ErrTruncatedFrame
			}
			b := frame[off : off+int(l)]
			off += int(l)
			switch field {
			case fieldQueryPacket:
				tx.QueryPacket = b
			case fieldResponsePacket:
				tx.ResponsePacket = b
			}
		default:
			return ErrUnknownField
		}
	}
	if len(tx.QueryPacket) == 0 {
		return ErrTruncatedFrame
	}
	return nil
}

// Writer serializes transactions onto an io.Writer as framed messages.
type Writer struct {
	w   io.Writer
	buf []byte
	n   uint64
}

// NewWriter returns a transaction writer.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Write serializes and frames one transaction.
func (tw *Writer) Write(tx *Transaction) error {
	tw.buf = tx.Append(tw.buf[:0])
	if err := WriteFrame(tw.w, tw.buf); err != nil {
		return err
	}
	tw.n++
	return nil
}

// Count returns the number of transactions written.
func (tw *Writer) Count() uint64 { return tw.n }

// DecodeError reports a frame whose body failed to decode as a
// transaction. The frame boundary itself was sound, so the stream is
// still in sync: callers may count the bad record and keep reading.
// Frame-level errors (truncated prefix, oversized frame, I/O failures)
// are returned bare — after those the stream position is unreliable.
type DecodeError struct {
	Err error
}

// Error implements error.
func (e *DecodeError) Error() string { return "sie: undecodable transaction: " + e.Err.Error() }

// Unwrap returns the underlying codec error.
func (e *DecodeError) Unwrap() error { return e.Err }

// Reader deserializes framed transactions from an io.Reader.
type Reader struct {
	fr *FrameReader
	n  uint64
}

// NewReader returns a transaction reader.
func NewReader(r io.Reader) *Reader { return &Reader{fr: NewFrameReader(r)} }

// Read decodes the next transaction into tx. Packet slices are valid
// until the next Read. It returns io.EOF at a clean end of stream and
// a *DecodeError for a well-framed but undecodable record (the next
// Read continues with the following frame).
func (tr *Reader) Read(tx *Transaction) error {
	frame, err := tr.fr.Next()
	if err != nil {
		return err
	}
	if err := tx.Unmarshal(frame); err != nil {
		decodeErrors.Add(1)
		return &DecodeError{Err: err}
	}
	tr.n++
	return nil
}

// Count returns the number of transactions read.
func (tr *Reader) Count() uint64 { return tr.n }
