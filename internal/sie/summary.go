package sie

import (
	"errors"
	"net/netip"

	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/hll"
	"dnsobservatory/internal/ipwire"
	"dnsobservatory/internal/publicsuffix"
)

// Summary is the "line of text" the preprocessing stage keeps per
// transaction (paper §2.1): only the details that end up aggregated in
// traffic statistics. Possibly sensitive EDNS0 data (cookies, client
// subnet) is dropped here, and timestamps survive only as the computed
// response delay — the privacy layers of §2.5.
type Summary struct {
	Resolver   netip.Addr // recursive resolver IP (srcip)
	Nameserver netip.Addr // authoritative nameserver IP (srvip)
	SensorID   uint32
	Workload   uint32 // generator class tag (simnet ground truth); 0 unlabeled

	// ClientTransport mirrors Transaction.ClientTransport: the transport
	// of the client→resolver leg (Transport* constants); 0 = UDP/53.
	ClientTransport uint32

	QName string
	QType dnswire.Type
	QDots int // labels in QNAME

	Answered bool
	DelayMs  float64 // server response delay
	Hops     int     // inferred network hops, from the response IP TTL
	RespSize int     // response packet size in bytes (IP layer)
	TCP      bool    // transaction ran over TCP/53
	Trunc    bool    // response had the TC bit set (UDP size exceeded)

	RCode         dnswire.RCode
	AA            bool // authoritative answer
	HasAnswerData bool // non-empty ANSWER section (ok_ans)
	AuthorityNS   int  // NS records in AUTHORITY (ok_ns when > 0)
	HasAdditional bool // non-empty ADDITIONAL, skipping OPT (ok_add)
	AnswerCount   int  // records in ANSWER (lvl)
	DNSSECOK      bool // query had EDNS0 DO set
	HasRRSIG      bool // RRSIG present in answer/authority sections

	V4Addrs []netip.Addr // A records in NoError answers
	V6Addrs []netip.Addr // AAAA records in NoError answers

	AnswerTTLs []uint32 // TTLs of ANSWER records
	NSTTLs     []uint32 // TTLs of AUTHORITY NS records
	NSNames    []string // NS targets in AUTHORITY (infrastructure changes)

	SOAMinimum uint32 // negative-caching TTL from an AUTHORITY SOA
	HasSOA     bool

	// Memoized textual forms. Formatting an address costs an allocation,
	// and every aggregation and feature set downstream wants the same
	// string — so the Summarizer formats each address exactly once and
	// the accessors below fall back to formatting on demand for
	// summaries built by hand. Empty string / short slice means "not
	// memoized".
	ResolverStr   string
	NameserverStr string
	V4Strs        []string
	V6Strs        []string

	// Memoized 64-bit hll hashes of the fields every feature set
	// downstream counts cardinalities over. Eight aggregations × ten
	// sketches would otherwise re-hash the same strings dozens of times
	// per transaction; PrecomputeHashes fills these once and HashesReady
	// marks them valid. TLDHash/ESLDHash are only computed for NoError
	// answers (the only case the feature extractor reads them).
	QNameHash      uint64
	TLDHash        uint64
	ESLDHash       uint64
	ResolverHash   uint64
	NameserverHash uint64
	V4Hashes       []uint64
	V6Hashes       []uint64
	HashesReady    bool

	// ESLDOff memoizes eSLD extraction the same way: 1 + the start
	// offset of the eSLD suffix-substring within QName, or 0 when not
	// yet memoized. The esld aggregation and the detection layer both
	// key on the eSLD, so the public-suffix walk happens once per
	// transaction instead of once per consumer.
	ESLDOff uint16
}

// ESLD returns the memoized eSLD view of QName. ok is false until
// PrecomputeHashes has run; callers then walk the suffix list
// themselves (without writing the memo — the summary may already be
// shared with concurrent readers).
func (sum *Summary) ESLD() (string, bool) {
	if sum.ESLDOff == 0 {
		return "", false
	}
	return sum.QName[sum.ESLDOff-1:], true
}

// PrecomputeHashes memoizes the hll hashes of every field the feature
// extractor counts, so each string is hashed once per transaction
// instead of once per aggregation × sketch. suffixes drives eSLD
// extraction (nil uses the embedded default list) and must match the
// list the downstream feature sets are configured with. Engines that
// fan one summary out to concurrent readers must call this before
// sharing it; after it returns the summary's hash fields are frozen.
func (sum *Summary) PrecomputeHashes(suffixes *publicsuffix.List) {
	if sum.HashesReady {
		return
	}
	if suffixes == nil {
		suffixes = publicsuffix.Default
	}
	sum.QNameHash = hll.HashString(sum.QName)
	sum.ResolverHash = hll.HashString(sum.ResolverText())
	sum.NameserverHash = hll.HashString(sum.NameserverText())
	esld := suffixes.ESLD(sum.QName)
	// Memoize only a literal suffix view: ESLD canonicalizes internally,
	// so a non-canonical QName yields a string the offset cannot express.
	if n := len(sum.QName) - len(esld); n >= 0 && sum.QName[n:] == esld {
		sum.ESLDOff = uint16(n) + 1
	}
	if sum.Answered && sum.RCode == dnswire.RCodeNoError {
		sum.TLDHash = hll.HashString(dnswire.TLD(sum.QName))
		sum.ESLDHash = hll.HashString(esld)
	}
	sum.V4Hashes = sum.V4Hashes[:0]
	for i := range sum.V4Addrs {
		sum.V4Hashes = append(sum.V4Hashes, hll.HashString(sum.V4Text(i)))
	}
	sum.V6Hashes = sum.V6Hashes[:0]
	for i := range sum.V6Addrs {
		sum.V6Hashes = append(sum.V6Hashes, hll.HashString(sum.V6Text(i)))
	}
	sum.HashesReady = true
}

// ResolverText returns the resolver address as text, using the memoized
// form when present.
func (sum *Summary) ResolverText() string {
	if sum.ResolverStr != "" {
		return sum.ResolverStr
	}
	return sum.Resolver.String()
}

// NameserverText returns the nameserver address as text, using the
// memoized form when present.
func (sum *Summary) NameserverText() string {
	if sum.NameserverStr != "" {
		return sum.NameserverStr
	}
	return sum.Nameserver.String()
}

// V4Text returns V4Addrs[i] as text, memoized when available.
func (sum *Summary) V4Text(i int) string {
	if i < len(sum.V4Strs) {
		return sum.V4Strs[i]
	}
	return sum.V4Addrs[i].String()
}

// V6Text returns V6Addrs[i] as text, memoized when available.
func (sum *Summary) V6Text(i int) string {
	if i < len(sum.V6Strs) {
		return sum.V6Strs[i]
	}
	return sum.V6Addrs[i].String()
}

// Errors returned by the summarizer.
var (
	ErrNotDNSPort = errors.New("sie: transaction not on UDP/53")
	ErrIPMismatch = errors.New("sie: response addresses do not mirror query")
)

// Summarizer converts transactions to summaries, reusing parse buffers
// so a steady-state ingest loop allocates only per-record data.
type Summarizer struct {
	qmsg, rmsg dnswire.Message
	// KeepUnparsableResponses degrades a transaction with a malformed
	// response to an unanswered one instead of failing, matching a
	// tolerant production ingest path.
	KeepUnparsableResponses bool
}

// Summarize parses tx into out. out is fully overwritten; its slices are
// reused across calls.
func (s *Summarizer) Summarize(tx *Transaction, out *Summary) error {
	qpkt, qTCP, err := ipwire.DecodeAny(tx.QueryPacket)
	if err != nil {
		return err
	}
	if qpkt.DstPort != ipwire.DNSPort {
		return ErrNotDNSPort
	}
	if err := s.qmsg.Unpack(qpkt.Payload); err != nil {
		return err
	}
	q := s.qmsg.Question()

	*out = Summary{
		Resolver:        qpkt.Src,
		Nameserver:      qpkt.Dst,
		ResolverStr:     qpkt.Src.String(),
		NameserverStr:   qpkt.Dst.String(),
		SensorID:        tx.SensorID,
		Workload:        tx.Workload,
		ClientTransport: tx.ClientTransport,
		QName:           q.Name,
		QType:           q.Type,
		QDots:           dnswire.CountLabels(q.Name),
		DNSSECOK:        s.qmsg.EDNSDo(),
		TCP:             qTCP,
		V4Addrs:         out.V4Addrs[:0],
		V6Addrs:         out.V6Addrs[:0],
		V4Strs:          out.V4Strs[:0],
		V6Strs:          out.V6Strs[:0],
		V4Hashes:        out.V4Hashes[:0],
		V6Hashes:        out.V6Hashes[:0],
		AnswerTTLs:      out.AnswerTTLs[:0],
		NSTTLs:          out.NSTTLs[:0],
		NSNames:         out.NSNames[:0],
	}

	if !tx.Answered() {
		return nil
	}
	rpkt, _, err := ipwire.DecodeAny(tx.ResponsePacket)
	if err != nil {
		if s.KeepUnparsableResponses {
			return nil
		}
		return err
	}
	if rpkt.Src != qpkt.Dst || rpkt.Dst != qpkt.Src {
		return ErrIPMismatch
	}
	if err := s.rmsg.Unpack(rpkt.Payload); err != nil {
		if s.KeepUnparsableResponses {
			return nil
		}
		return err
	}

	out.Answered = true
	out.DelayMs = float64(tx.Delay().Microseconds()) / 1000
	out.Hops = ipwire.InferHops(rpkt.TTL)
	out.RespSize = len(tx.ResponsePacket)
	out.RCode = s.rmsg.Flags.RCode
	out.AA = s.rmsg.Flags.Authoritative
	out.Trunc = s.rmsg.Flags.Truncated
	out.AnswerCount = len(s.rmsg.Answers)
	out.HasAnswerData = len(s.rmsg.Answers) > 0

	for i := range s.rmsg.Answers {
		rr := &s.rmsg.Answers[i]
		out.AnswerTTLs = append(out.AnswerTTLs, rr.TTL)
		switch d := rr.Data.(type) {
		case dnswire.ARData:
			out.V4Addrs = append(out.V4Addrs, d.Addr)
			out.V4Strs = append(out.V4Strs, d.Addr.String())
		case dnswire.AAAARData:
			out.V6Addrs = append(out.V6Addrs, d.Addr)
			out.V6Strs = append(out.V6Strs, d.Addr.String())
		case dnswire.RRSIGRData:
			out.HasRRSIG = true
		}
	}
	for i := range s.rmsg.Authority {
		rr := &s.rmsg.Authority[i]
		switch d := rr.Data.(type) {
		case dnswire.NSRData:
			out.AuthorityNS++
			out.NSTTLs = append(out.NSTTLs, rr.TTL)
			out.NSNames = append(out.NSNames, d.NS)
		case dnswire.SOARData:
			out.HasSOA = true
			out.SOAMinimum = d.Minimum
			// RFC 2308: the negative-caching TTL is the lesser of the
			// SOA minimum and the SOA record's own TTL.
			if rr.TTL < out.SOAMinimum {
				out.SOAMinimum = rr.TTL
			}
		case dnswire.RRSIGRData:
			out.HasRRSIG = true
		}
	}
	for i := range s.rmsg.Additional {
		if s.rmsg.Additional[i].Type != dnswire.TypeOPT {
			out.HasAdditional = true
			break
		}
	}
	return nil
}

// NoError+NoData classification helpers used by the feature extractor
// and the Happy Eyeballs analysis.

// OKData reports a NoError response carrying an answer or a delegation
// ("NOERROR + data" in Fig. 2).
func (sum *Summary) OKData() bool {
	return sum.Answered && sum.RCode == dnswire.RCodeNoError &&
		(sum.HasAnswerData || sum.AuthorityNS > 0)
}

// NoData reports a NoError response with neither answer nor delegation
// (ok_nil, the NODATA case).
func (sum *Summary) NoData() bool {
	return sum.Answered && sum.RCode == dnswire.RCodeNoError &&
		!sum.HasAnswerData && sum.AuthorityNS == 0
}
