package sie

import (
	"net/netip"
	"sync"
	"testing"
)

func TestSharedCopyFromDeepCopiesSlices(t *testing.T) {
	sp := NewSummaryPool()
	src := &Summary{
		QName:      "a.example.com.",
		V4Addrs:    []netip.Addr{netip.MustParseAddr("192.0.2.1")},
		V4Strs:     []string{"192.0.2.1"},
		AnswerTTLs: []uint32{300},
		NSNames:    []string{"ns1.example.com."},
	}
	s := sp.Get(1)
	s.CopyFrom(src)
	// Mutating the source must not affect the pooled copy.
	src.V4Addrs[0] = netip.MustParseAddr("203.0.113.9")
	src.AnswerTTLs[0] = 1
	src.NSNames[0] = "evil."
	if s.V4Addrs[0] != netip.MustParseAddr("192.0.2.1") {
		t.Error("V4Addrs aliased")
	}
	if s.AnswerTTLs[0] != 300 {
		t.Error("AnswerTTLs aliased")
	}
	if s.NSNames[0] != "ns1.example.com." {
		t.Error("NSNames aliased")
	}
	s.Release()
}

func TestSharedRefCounting(t *testing.T) {
	sp := NewSummaryPool()
	s := sp.Get(2)
	s.QName = "x."
	s.Release()
	// Still one reference: the buffer must not have been recycled, so a
	// fresh Get must return a different buffer (pool is empty).
	other := sp.Get(1)
	if other == s {
		t.Fatal("buffer recycled while references remain")
	}
	other.Release()
	s.Release() // last reference: back to the pool
	got := sp.Get(1)
	if got != s && got != other {
		t.Error("released buffer not recycled")
	}
	got.Release()
}

func TestSharedRetain(t *testing.T) {
	sp := NewSummaryPool()
	s := sp.Get(1)
	s.Retain(2)
	s.Release()
	s.Release()
	fresh := sp.Get(1)
	if fresh == s {
		t.Fatal("buffer recycled while a retained reference remains")
	}
	s.Release()
	fresh.Release()
}

func TestSharedCopyReusesCapacity(t *testing.T) {
	sp := NewSummaryPool()
	src := &Summary{
		AnswerTTLs: []uint32{1, 2, 3, 4},
		NSTTLs:     []uint32{5},
		NSNames:    []string{"a.", "b."},
	}
	s := sp.Get(1)
	s.CopyFrom(src)
	first := &s.AnswerTTLs[0]
	s.Release()
	again := sp.Get(1)
	if again != s {
		t.Skip("pool returned a different buffer; capacity reuse untestable")
	}
	again.CopyFrom(src)
	if &again.AnswerTTLs[0] != first {
		t.Error("warm CopyFrom reallocated AnswerTTLs")
	}
	again.Release()
}

func TestSharedConcurrentReadersRace(t *testing.T) {
	sp := NewSummaryPool()
	src := &Summary{QName: "q.", AnswerTTLs: []uint32{60, 120}}
	for iter := 0; iter < 100; iter++ {
		const readers = 4
		s := sp.Get(readers)
		s.CopyFrom(src)
		var wg sync.WaitGroup
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if s.QName != "q." || len(s.AnswerTTLs) != 2 {
					t.Error("corrupted shared summary")
				}
				s.Release()
			}()
		}
		wg.Wait()
	}
}

func TestSummaryTextMemoFallback(t *testing.T) {
	sum := &Summary{
		Resolver:   netip.MustParseAddr("192.0.2.7"),
		Nameserver: netip.MustParseAddr("2001:db8::1"),
		V4Addrs:    []netip.Addr{netip.MustParseAddr("198.51.100.3")},
		V6Addrs:    []netip.Addr{netip.MustParseAddr("2001:db8::2")},
	}
	// No memo: accessors format on demand.
	if sum.ResolverText() != "192.0.2.7" || sum.NameserverText() != "2001:db8::1" {
		t.Errorf("fallback text: %q %q", sum.ResolverText(), sum.NameserverText())
	}
	if sum.V4Text(0) != "198.51.100.3" || sum.V6Text(0) != "2001:db8::2" {
		t.Errorf("fallback addr text: %q %q", sum.V4Text(0), sum.V6Text(0))
	}
	// Memoized forms win.
	sum.ResolverStr = "memo-resolver"
	sum.V4Strs = []string{"memo-v4"}
	if sum.ResolverText() != "memo-resolver" || sum.V4Text(0) != "memo-v4" {
		t.Errorf("memo ignored: %q %q", sum.ResolverText(), sum.V4Text(0))
	}
}
