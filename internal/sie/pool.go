package sie

import (
	"sync"
	"sync/atomic"
)

// Shared is a pooled, reference-counted Summary buffer. It is how the
// sharded ingest engine fans one transaction out to many workers without
// deep-copying slices per consumer: the producer acquires one buffer with
// as many references as there are consumers, every consumer reads it
// concurrently (reads only — the buffer is frozen once handed out), and
// the last Release returns it to the pool for reuse.
type Shared struct {
	Summary
	refs atomic.Int32
	pool *SummaryPool
}

// Retain adds n references. Call before handing the buffer to n
// additional consumers.
func (s *Shared) Retain(n int32) { s.refs.Add(n) }

// Release drops one reference; the last release returns the buffer (and
// its slice capacity) to the pool. The caller must not touch the buffer
// after releasing it.
func (s *Shared) Release() {
	if s.refs.Add(-1) == 0 {
		s.pool.p.Put(s)
	}
}

// CopyFrom overwrites the buffer with src, reusing the buffer's slice
// capacity — zero heap allocations once the pool is warm. String fields
// share src's immutable backing data; only slices are copied.
func (s *Shared) CopyFrom(src *Summary) {
	v4 := s.Summary.V4Addrs[:0]
	v6 := s.Summary.V6Addrs[:0]
	v4s := s.Summary.V4Strs[:0]
	v6s := s.Summary.V6Strs[:0]
	v4h := s.Summary.V4Hashes[:0]
	v6h := s.Summary.V6Hashes[:0]
	attl := s.Summary.AnswerTTLs[:0]
	nsttl := s.Summary.NSTTLs[:0]
	nsn := s.Summary.NSNames[:0]
	s.Summary = *src
	s.Summary.V4Addrs = append(v4, src.V4Addrs...)
	s.Summary.V6Addrs = append(v6, src.V6Addrs...)
	s.Summary.V4Strs = append(v4s, src.V4Strs...)
	s.Summary.V6Strs = append(v6s, src.V6Strs...)
	s.Summary.V4Hashes = append(v4h, src.V4Hashes...)
	s.Summary.V6Hashes = append(v6h, src.V6Hashes...)
	s.Summary.AnswerTTLs = append(attl, src.AnswerTTLs...)
	s.Summary.NSTTLs = append(nsttl, src.NSTTLs...)
	s.Summary.NSNames = append(nsn, src.NSNames...)
}

// SummaryPool recycles Shared summary buffers across ingest batches.
// The zero value is not usable; create one with NewSummaryPool.
type SummaryPool struct {
	p sync.Pool
}

// NewSummaryPool returns an empty pool.
func NewSummaryPool() *SummaryPool {
	sp := &SummaryPool{}
	sp.p.New = func() any { return &Shared{pool: sp} }
	return sp
}

// Get returns a buffer holding refs references. Its Summary content is
// undefined (stale from a previous use); fill it with CopyFrom or by
// summarizing directly into &buf.Summary (the Summarizer's slice-reuse
// contract composes with pooling: warm buffers keep their capacity).
func (sp *SummaryPool) Get(refs int32) *Shared {
	s := sp.p.Get().(*Shared)
	s.refs.Store(refs)
	return s
}
