// Package chaos is a deterministic, seeded fault injector for the
// Observatory's robustness harness. Real SIE sensors emit truncated,
// bit-flipped and spoofed packets, feeds duplicate and reorder
// transactions, and disks fail mid-write (paper §2: the platform runs
// unattended against a hostile 200 k tx/s feed) — this package produces
// all of those faults on demand, reproducibly, so every layer of the
// pipeline can be soaked against them in tests and from the command
// line (dnsgen -chaos).
//
// One Injector wraps three surfaces:
//
//   - the transaction stream (Transactions): bit corruption, truncation,
//     duplication, bounded reordering, zero and backwards timestamps,
//     and oversized (>255 octet) query names;
//   - the ingest engines (PanicHook): per-summary worker panics, which
//     the supervised engines must quarantine (observatory.Config);
//   - the snapshot store (WrapWriter): failing and short writes, which
//     tsv.Store.Put must surface as errors rather than half-written
//     files.
//
// All randomness comes from one seeded source guarded by a mutex, so a
// given (seed, input) pair always injects the same faults — a failing
// soak run is replayable by seed.
//
// Concurrency: an Injector is safe for concurrent use; the mutex around
// its random source is what makes multi-goroutine soaks deterministic
// per seed. Instrument publishes every fault class to a metrics
// registry as dnsobs_chaos_injected_total{kind=...}, read through
// Stats at collection time so the injection paths stay unchanged.
package chaos
