package chaos

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"dnsobservatory/internal/ipwire"
	"dnsobservatory/internal/metrics"
	"dnsobservatory/internal/sie"
)

// Errors and panic values produced by injected faults.
var (
	// ErrInjectedWrite is returned by a wrapped writer in place of a
	// successful write.
	ErrInjectedWrite = errors.New("chaos: injected write failure")
	// ErrInjectedPanic is the value PanicHook panics with.
	ErrInjectedPanic = errors.New("chaos: injected worker panic")
	// ErrInjectedReset is returned by a wrapped connection whose write
	// was cut mid-frame (the connection is closed underneath).
	ErrInjectedReset = errors.New("chaos: injected connection reset")
	// ErrInjectedAckLoss is returned by a wrapped connection that
	// completed the write but reports failure — the network delivered
	// the bytes, the sender does not know it, and its retransmit after
	// reconnecting produces duplicates downstream.
	ErrInjectedAckLoss = errors.New("chaos: injected ack loss")
	// ErrInjectedLoss is returned by a wrapped exchanger whose reply was
	// dropped — the probe engine sees a timeout.
	ErrInjectedLoss = errors.New("chaos: injected reply loss")
)

// Config sets per-fault injection probabilities (0..1). The zero value
// injects nothing.
type Config struct {
	Seed int64

	// Stream faults, rolled once per transaction.
	CorruptRate   float64 // flip 1–4 random bytes of a packet
	TruncateRate  float64 // cut a packet short
	DuplicateRate float64 // emit the transaction twice
	ReorderRate   float64 // hold the transaction back 1–4 slots
	ZeroTimeRate  float64 // zero the query timestamp
	BackTimeRate  float64 // response timestamped before its query
	OversizeRate  float64 // query name over 255 wire octets

	// Engine fault, rolled once per PanicHook call.
	PanicRate float64

	// Store faults, rolled once per wrapped Write call.
	WriteErrRate   float64 // fail the write outright
	ShortWriteRate float64 // write only a prefix, report success

	// Network faults, applied by WrapConn-wrapped connections.
	ConnResetRate    float64 // per Write: deliver a prefix, close the conn, fail
	DupReconnectRate float64 // per Write: deliver everything, report failure ("lost ack")
	StalledReadRate  float64 // per Read: stall StallDuration before reading
	// StallDuration is how long a stalled read sleeps (default 100ms
	// when a stall fires with it unset).
	StallDuration time.Duration

	// Probe-path faults, applied by WrapExchanger-wrapped exchangers
	// (at most one per exchange, rolled in this order).
	ProbeLossRate     float64 // drop the reply: the engine times out and retries
	ProbeDelayRate    float64 // inflate the modeled rtt by ProbeDelay (late reply)
	ProbeServFailRate float64 // rewrite the reply into a SERVFAIL
	ProbeTruncateRate float64 // set TC on a UDP reply, forcing the TCP retry
	// ProbeDelay is the extra modeled delay a delayed reply carries
	// (default 2s when a delay fires with it unset) — set it above the
	// probe engine's timeout to turn delays into retries.
	ProbeDelay time.Duration
}

// Uniform returns a Config injecting every stream fault at the given
// rate. Engine and store faults stay off; enable them explicitly.
func Uniform(rate float64, seed int64) Config {
	return Config{
		Seed:          seed,
		CorruptRate:   rate,
		TruncateRate:  rate,
		DuplicateRate: rate,
		ReorderRate:   rate,
		ZeroTimeRate:  rate,
		BackTimeRate:  rate,
		OversizeRate:  rate,
	}
}

// Stats counts injected faults by kind.
type Stats struct {
	Corrupted   uint64
	Truncated   uint64
	Duplicated  uint64
	Reordered   uint64
	ZeroTime    uint64
	BackTime    uint64
	Oversized   uint64
	Panics      uint64
	WriteErrs   uint64
	ShortWrites uint64
	ConnResets  uint64
	DupWrites   uint64
	StalledRds  uint64

	ProbeLost      uint64
	ProbeDelayed   uint64
	ProbeServFails uint64
	ProbeTruncated uint64
}

// Total returns the number of injected faults across all kinds.
func (s Stats) Total() uint64 {
	return s.Corrupted + s.Truncated + s.Duplicated + s.Reordered +
		s.ZeroTime + s.BackTime + s.Oversized + s.Panics +
		s.WriteErrs + s.ShortWrites +
		s.ConnResets + s.DupWrites + s.StalledRds +
		s.ProbeLost + s.ProbeDelayed + s.ProbeServFails + s.ProbeTruncated
}

// heldTx is a reordered transaction waiting out its delay.
type heldTx struct {
	tx    *sie.Transaction
	delay int // emitted when it reaches 0
}

// Injector applies a Config's faults. Safe for concurrent use: stream,
// engine and store hooks may fire from different goroutines.
type Injector struct {
	cfg Config

	mu    sync.Mutex
	rng   *rand.Rand
	stats Stats
	held  []heldTx
	emit  func(*sie.Transaction)
}

// New returns an injector for cfg.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats returns a snapshot of the fault counters.
func (inj *Injector) Stats() Stats {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.stats
}

// Instrument registers one dnsobs_chaos_injected_total{kind=...} counter
// per fault kind with reg, read through Stats at collect time — the
// injection hot paths gain no extra work. Re-instrumenting (a fresh
// injector per soak run) replaces the previous injector's slots.
func (inj *Injector) Instrument(reg *metrics.Registry) {
	kinds := []struct {
		kind string
		read func(Stats) uint64
	}{
		{"corrupted", func(s Stats) uint64 { return s.Corrupted }},
		{"truncated", func(s Stats) uint64 { return s.Truncated }},
		{"duplicated", func(s Stats) uint64 { return s.Duplicated }},
		{"reordered", func(s Stats) uint64 { return s.Reordered }},
		{"zero_time", func(s Stats) uint64 { return s.ZeroTime }},
		{"back_time", func(s Stats) uint64 { return s.BackTime }},
		{"oversized", func(s Stats) uint64 { return s.Oversized }},
		{"panics", func(s Stats) uint64 { return s.Panics }},
		{"write_errs", func(s Stats) uint64 { return s.WriteErrs }},
		{"short_writes", func(s Stats) uint64 { return s.ShortWrites }},
		{"conn_resets", func(s Stats) uint64 { return s.ConnResets }},
		{"dup_writes", func(s Stats) uint64 { return s.DupWrites }},
		{"stalled_reads", func(s Stats) uint64 { return s.StalledRds }},
		{"probe_lost", func(s Stats) uint64 { return s.ProbeLost }},
		{"probe_delayed", func(s Stats) uint64 { return s.ProbeDelayed }},
		{"probe_servfails", func(s Stats) uint64 { return s.ProbeServFails }},
		{"probe_truncated", func(s Stats) uint64 { return s.ProbeTruncated }},
	}
	for _, k := range kinds {
		read := k.read
		reg.CounterFunc("dnsobs_chaos_injected_total", "chaos faults injected by kind",
			func() uint64 { return read(inj.Stats()) }, "kind", k.kind)
	}
}

// roll returns true with probability rate. Caller holds inj.mu.
func (inj *Injector) roll(rate float64) bool {
	return rate > 0 && inj.rng.Float64() < rate
}

// Transactions wraps emit with the stream faults. The wrapper is the
// new producer callback; call Flush after the stream ends to release
// transactions still held by the reorder buffer.
func (inj *Injector) Transactions(emit func(*sie.Transaction)) func(*sie.Transaction) {
	inj.mu.Lock()
	inj.emit = emit
	inj.mu.Unlock()
	return func(tx *sie.Transaction) { inj.feed(tx) }
}

// Flush emits every transaction still waiting in the reorder buffer.
func (inj *Injector) Flush() {
	inj.mu.Lock()
	due := make([]*sie.Transaction, 0, len(inj.held))
	for _, h := range inj.held {
		due = append(due, h.tx)
	}
	inj.held = inj.held[:0]
	emit := inj.emit
	inj.mu.Unlock()
	for _, tx := range due {
		emit(tx)
	}
}

// feed applies stream faults to one transaction and forwards the
// results (possibly zero, one, or several transactions) to emit.
func (inj *Injector) feed(tx *sie.Transaction) {
	inj.mu.Lock()
	cp := tx
	if inj.roll(inj.cfg.OversizeRate) {
		cp = inj.oversize(cp)
	}
	if inj.roll(inj.cfg.CorruptRate) {
		cp = inj.corrupt(cp)
	}
	if inj.roll(inj.cfg.TruncateRate) {
		cp = inj.truncate(cp)
	}
	if inj.roll(inj.cfg.ZeroTimeRate) {
		cp = clone(cp)
		cp.QueryTime = time.Time{}
		inj.stats.ZeroTime++
	}
	if inj.roll(inj.cfg.BackTimeRate) && cp.Answered() {
		cp = clone(cp)
		cp.ResponseTime = cp.QueryTime.Add(-time.Duration(1+inj.rng.Intn(5000)) * time.Millisecond)
		inj.stats.BackTime++
	}

	var out []*sie.Transaction
	if inj.roll(inj.cfg.ReorderRate) {
		inj.held = append(inj.held, heldTx{tx: clone(cp), delay: 1 + inj.rng.Intn(4)})
		inj.stats.Reordered++
	} else {
		out = append(out, cp)
		if inj.roll(inj.cfg.DuplicateRate) {
			out = append(out, clone(cp))
			inj.stats.Duplicated++
		}
	}
	// Age the reorder buffer and release whatever came due.
	kept := inj.held[:0]
	for _, h := range inj.held {
		h.delay--
		if h.delay <= 0 {
			out = append(out, h.tx)
		} else {
			kept = append(kept, h)
		}
	}
	inj.held = kept
	emit := inj.emit
	inj.mu.Unlock()

	for _, t := range out {
		emit(t)
	}
}

// clone deep-copies a transaction so mutations and held references
// never alias the producer's reusable buffers.
func clone(tx *sie.Transaction) *sie.Transaction {
	cp := *tx
	cp.QueryPacket = append([]byte(nil), tx.QueryPacket...)
	if tx.ResponsePacket != nil {
		cp.ResponsePacket = append([]byte(nil), tx.ResponsePacket...)
	}
	return &cp
}

// corrupt flips 1–4 random bytes in one of the transaction's packets.
// Caller holds inj.mu.
func (inj *Injector) corrupt(tx *sie.Transaction) *sie.Transaction {
	cp := clone(tx)
	pkt := cp.QueryPacket
	if cp.Answered() && inj.rng.Intn(2) == 1 {
		pkt = cp.ResponsePacket
	}
	if len(pkt) == 0 {
		return cp
	}
	for i := 0; i < 1+inj.rng.Intn(4); i++ {
		pkt[inj.rng.Intn(len(pkt))] ^= byte(1 + inj.rng.Intn(255))
	}
	inj.stats.Corrupted++
	return cp
}

// truncate cuts one of the transaction's packets short. Caller holds
// inj.mu.
func (inj *Injector) truncate(tx *sie.Transaction) *sie.Transaction {
	cp := clone(tx)
	if cp.Answered() && inj.rng.Intn(2) == 1 {
		if len(cp.ResponsePacket) > 1 {
			cp.ResponsePacket = cp.ResponsePacket[:inj.rng.Intn(len(cp.ResponsePacket))]
		}
	} else if len(cp.QueryPacket) > 1 {
		cp.QueryPacket = cp.QueryPacket[:inj.rng.Intn(len(cp.QueryPacket))]
	}
	inj.stats.Truncated++
	return cp
}

// oversize replaces the query with one whose QNAME exceeds the 255-octet
// wire limit (six 60-byte labels) — the codec must reject it with a
// typed error before it reaches feature extraction. Caller holds inj.mu.
func (inj *Injector) oversize(tx *sie.Transaction) *sie.Transaction {
	pkt, _, err := ipwire.DecodeAny(tx.QueryPacket)
	if err != nil {
		return tx // already mangled beyond recognition; leave it
	}
	id := uint16(inj.rng.Intn(1 << 16))
	payload := make([]byte, 0, 400)
	payload = append(payload, byte(id>>8), byte(id), 0x01, 0x00, 0, 1, 0, 0, 0, 0, 0, 0)
	for l := 0; l < 6; l++ {
		payload = append(payload, 60)
		for j := 0; j < 60; j++ {
			payload = append(payload, byte('a'+inj.rng.Intn(26)))
		}
	}
	payload = append(payload, 0, 0, 1, 0, 1) // root, A, IN
	cp := clone(tx)
	if pkt.Src.Is4() && pkt.Dst.Is4() {
		cp.QueryPacket = ipwire.AppendIPv4UDP(nil, pkt.Src, pkt.Dst, pkt.SrcPort, pkt.DstPort, 64, payload)
	} else {
		cp.QueryPacket = ipwire.AppendIPv6UDP(nil, pkt.Src, pkt.Dst, pkt.SrcPort, pkt.DstPort, 64, payload)
	}
	inj.stats.Oversized++
	return cp
}

// PanicHook panics with ErrInjectedPanic at the configured rate. Install
// it as observatory.Config.ChaosHook to exercise the engines' panic
// supervision; sum is ignored.
func (inj *Injector) PanicHook(_ *sie.Summary) {
	inj.mu.Lock()
	fire := inj.roll(inj.cfg.PanicRate)
	if fire {
		inj.stats.Panics++
	}
	inj.mu.Unlock()
	if fire {
		panic(ErrInjectedPanic)
	}
}

// WrapWriter wraps w with the store faults: writes fail outright or
// complete short at the configured rates. Install it as
// tsv.Store.WrapWriter.
func (inj *Injector) WrapWriter(w io.Writer) io.Writer {
	return &faultWriter{inj: inj, w: w}
}

type faultWriter struct {
	inj *Injector
	w   io.Writer
}

// Write rolls the store faults before delegating. A short write reports
// success for a prefix — exactly what a crashed or full disk produces —
// which bufio surfaces as io.ErrShortWrite.
func (fw *faultWriter) Write(p []byte) (int, error) {
	fw.inj.mu.Lock()
	fail := fw.inj.roll(fw.inj.cfg.WriteErrRate)
	short := !fail && len(p) > 1 && fw.inj.roll(fw.inj.cfg.ShortWriteRate)
	var n int
	if fail {
		fw.inj.stats.WriteErrs++
	}
	if short {
		fw.inj.stats.ShortWrites++
		n = 1 + fw.inj.rng.Intn(len(p)-1)
	}
	fw.inj.mu.Unlock()
	if fail {
		return 0, ErrInjectedWrite
	}
	if short {
		if _, err := fw.w.Write(p[:n]); err != nil {
			return 0, err
		}
		return n, nil
	}
	return fw.w.Write(p)
}

// WrapConn wraps a network connection with the network faults: writes
// reset mid-frame or lose their acknowledgement, reads stall. Install
// it as transport.SensorConfig.WrapConn (sender-side faults) or
// transport.CollectorConfig.WrapConn (stalled reads on the receiver).
func (inj *Injector) WrapConn(c net.Conn) net.Conn {
	return &faultConn{Conn: c, inj: inj}
}

type faultConn struct {
	net.Conn
	inj *Injector
}

// Write rolls the network write faults before delegating. A reset
// delivers a prefix — cutting the stream mid-frame — then closes the
// connection; an ack loss delivers everything and lies about it.
func (fc *faultConn) Write(p []byte) (int, error) {
	fc.inj.mu.Lock()
	reset := fc.inj.roll(fc.inj.cfg.ConnResetRate)
	dup := !reset && fc.inj.roll(fc.inj.cfg.DupReconnectRate)
	var n int
	if reset {
		fc.inj.stats.ConnResets++
		n = fc.inj.rng.Intn(len(p) + 1)
	}
	if dup {
		fc.inj.stats.DupWrites++
	}
	fc.inj.mu.Unlock()
	if reset {
		if n > 0 {
			fc.Conn.Write(p[:n])
		}
		fc.Conn.Close()
		return 0, ErrInjectedReset
	}
	if dup {
		if _, err := fc.Conn.Write(p); err != nil {
			return 0, err
		}
		return 0, ErrInjectedAckLoss
	}
	return fc.Conn.Write(p)
}

// Read rolls the stalled-reader fault, sleeping outside the injector
// lock so concurrent connections never serialize on a stall. A read
// deadline set on the connection still applies to the delegated Read,
// so a receiver with a timeout cuts the stalled connection — exactly
// the slow-sensor behaviour the fault exists to exercise.
func (fc *faultConn) Read(p []byte) (int, error) {
	fc.inj.mu.Lock()
	stall := fc.inj.roll(fc.inj.cfg.StalledReadRate)
	d := fc.inj.cfg.StallDuration
	if stall {
		fc.inj.stats.StalledRds++
	}
	fc.inj.mu.Unlock()
	if stall {
		if d <= 0 {
			d = 100 * time.Millisecond
		}
		time.Sleep(d)
	}
	return fc.Conn.Read(p)
}
