package chaos

import (
	"errors"
	"net/netip"
	"testing"
	"time"

	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/ipwire"
)

// echoExchanger answers every query with a fixed A record, counting
// calls, framed to match the query (UDP or TCP).
type echoExchanger struct {
	calls int
}

func (ee *echoExchanger) Exchange(query []byte) ([]byte, time.Duration, error) {
	ee.calls++
	pkt, isTCP, err := ipwire.DecodeAny(query)
	if err != nil {
		return nil, 0, err
	}
	var q dnswire.Message
	if err := q.Unpack(pkt.Payload); err != nil {
		return nil, 0, err
	}
	m := dnswire.Message{
		ID:        q.ID,
		Flags:     dnswire.Flags{Response: true, Authoritative: true},
		Questions: []dnswire.Question{q.Question()},
		Answers: []dnswire.RR{{
			Name: q.Question().Name, Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: 60,
			Data: dnswire.ARData{Addr: netip.MustParseAddr("192.0.2.99")},
		}},
	}
	wire, err := m.Pack(nil)
	if err != nil {
		return nil, 0, err
	}
	if isTCP {
		return ipwire.AppendIPv4TCPDNS(nil, pkt.Dst, pkt.Src, pkt.DstPort, pkt.SrcPort, 64, 1, wire), 3 * time.Millisecond, nil
	}
	return ipwire.AppendIPv4UDP(nil, pkt.Dst, pkt.Src, pkt.DstPort, pkt.SrcPort, 64, wire), 3 * time.Millisecond, nil
}

// probeQuery frames one A question for the fake server.
func probeQuery(t *testing.T, tcp bool) []byte {
	t.Helper()
	var q dnswire.Message
	q.ID = 42
	q.Questions = append(q.Questions, dnswire.Question{
		Name: "www.example.com.", Type: dnswire.TypeA, Class: dnswire.ClassINET})
	w, err := q.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	src := netip.MustParseAddr("198.51.100.7")
	dst := netip.MustParseAddr("192.0.2.53")
	if tcp {
		return ipwire.AppendIPv4TCPDNS(nil, src, dst, 4242, ipwire.DNSPort, 64, 7, w)
	}
	return ipwire.AppendIPv4UDP(nil, src, dst, 4242, ipwire.DNSPort, 64, w)
}

// unpackResp decodes a framed exchanger response.
func unpackResp(t *testing.T, resp []byte) (*dnswire.Message, bool) {
	t.Helper()
	pkt, isTCP, err := ipwire.DecodeAny(resp)
	if err != nil {
		t.Fatal(err)
	}
	var m dnswire.Message
	if err := m.Unpack(pkt.Payload); err != nil {
		t.Fatal(err)
	}
	return &m, isTCP
}

func TestWrapExchangerLoss(t *testing.T) {
	inner := &echoExchanger{}
	x := New(Config{ProbeLossRate: 1}).WrapExchanger(inner)
	_, _, err := x.Exchange(probeQuery(t, false))
	if !errors.Is(err, ErrInjectedLoss) {
		t.Fatalf("err = %v, want ErrInjectedLoss", err)
	}
	if inner.calls != 0 {
		t.Fatal("lost query still reached the server")
	}
}

func TestWrapExchangerDelay(t *testing.T) {
	inj := New(Config{ProbeDelayRate: 1, ProbeDelay: 9 * time.Second})
	resp, rtt, err := inj.WrapExchanger(&echoExchanger{}).Exchange(probeQuery(t, false))
	if err != nil {
		t.Fatal(err)
	}
	if rtt < 9*time.Second {
		t.Fatalf("delayed rtt = %v", rtt)
	}
	if m, _ := unpackResp(t, resp); len(m.Answers) != 1 {
		t.Fatal("delay mangled the answer")
	}
	if inj.Stats().ProbeDelayed != 1 {
		t.Fatalf("stats: %+v", inj.Stats())
	}
}

func TestWrapExchangerDelayDefault(t *testing.T) {
	_, rtt, err := New(Config{ProbeDelayRate: 1}).WrapExchanger(&echoExchanger{}).Exchange(probeQuery(t, false))
	if err != nil {
		t.Fatal(err)
	}
	if rtt < 2*time.Second {
		t.Fatalf("default delay rtt = %v, want >= 2s", rtt)
	}
}

func TestWrapExchangerServFail(t *testing.T) {
	inj := New(Config{ProbeServFailRate: 1})
	resp, _, err := inj.WrapExchanger(&echoExchanger{}).Exchange(probeQuery(t, true))
	if err != nil {
		t.Fatal(err)
	}
	m, isTCP := unpackResp(t, resp)
	if !isTCP {
		t.Fatal("framing changed")
	}
	if m.Flags.RCode != dnswire.RCodeServFail || len(m.Answers) != 0 {
		t.Fatalf("rcode=%s answers=%d", m.Flags.RCode, len(m.Answers))
	}
	if inj.Stats().ProbeServFails != 1 {
		t.Fatalf("stats: %+v", inj.Stats())
	}
}

func TestWrapExchangerTruncate(t *testing.T) {
	inj := New(Config{ProbeTruncateRate: 1})
	x := inj.WrapExchanger(&echoExchanger{})

	resp, _, err := x.Exchange(probeQuery(t, false))
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := unpackResp(t, resp); !m.Flags.Truncated || len(m.Answers) != 0 {
		t.Fatalf("UDP reply not truncated: tc=%v answers=%d", m.Flags.Truncated, len(m.Answers))
	}

	// TCP replies must come back whole or the engine's TC retry loops.
	resp, _, err = x.Exchange(probeQuery(t, true))
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := unpackResp(t, resp); m.Flags.Truncated || len(m.Answers) != 1 {
		t.Fatalf("TCP reply mangled: tc=%v answers=%d", m.Flags.Truncated, len(m.Answers))
	}
	if st := inj.Stats(); st.ProbeTruncated != 1 || st.Total() != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestWrapExchangerCleanPath(t *testing.T) {
	inner := &echoExchanger{}
	resp, rtt, err := New(Config{}).WrapExchanger(inner).Exchange(probeQuery(t, false))
	if err != nil || rtt != 3*time.Millisecond {
		t.Fatalf("clean exchange: rtt=%v err=%v", rtt, err)
	}
	if m, _ := unpackResp(t, resp); len(m.Answers) != 1 {
		t.Fatal("clean exchange mangled the answer")
	}
}
