package chaos

import (
	"time"

	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/ipwire"
)

// Exchanger matches probe.Exchanger structurally, so a wrapped
// exchanger plugs straight into a probe engine without chaos importing
// the probe package.
type Exchanger interface {
	Exchange(query []byte) (resp []byte, rtt time.Duration, err error)
}

// WrapExchanger wraps x with the probe-path faults: replies get lost
// (the engine times out), delayed past the engine's timeout, rewritten
// into SERVFAIL, or truncated over UDP to force the TCP retry. At most
// one fault fires per exchange.
func (inj *Injector) WrapExchanger(x Exchanger) Exchanger {
	return &faultExchanger{inj: inj, x: x}
}

type faultExchanger struct {
	inj *Injector
	x   Exchanger
}

func (fe *faultExchanger) Exchange(query []byte) ([]byte, time.Duration, error) {
	inj := fe.inj
	inj.mu.Lock()
	lose := inj.roll(inj.cfg.ProbeLossRate)
	delay := !lose && inj.roll(inj.cfg.ProbeDelayRate)
	servfail := !lose && !delay && inj.roll(inj.cfg.ProbeServFailRate)
	trunc := !lose && !delay && !servfail && inj.roll(inj.cfg.ProbeTruncateRate)
	if lose {
		inj.stats.ProbeLost++
	}
	d := inj.cfg.ProbeDelay
	inj.mu.Unlock()
	if lose {
		return nil, 0, ErrInjectedLoss
	}

	resp, rtt, err := fe.x.Exchange(query)
	if err != nil {
		return resp, rtt, err
	}
	switch {
	case delay:
		if d <= 0 {
			d = 2 * time.Second
		}
		inj.count(&inj.stats.ProbeDelayed)
		return resp, rtt + d, nil
	case servfail:
		if mangled, ok := rewriteResponse(resp, func(m *dnswire.Message) {
			m.Answers = nil
			m.Authority = nil
			m.Additional = nil
			m.Flags.RCode = dnswire.RCodeServFail
		}, true); ok {
			inj.count(&inj.stats.ProbeServFails)
			return mangled, rtt, nil
		}
	case trunc:
		// Only UDP replies truncate; a TCP retry must come back whole
		// or the engine would loop.
		if _, isTCP, err := ipwire.DecodeAny(resp); err == nil && !isTCP {
			if mangled, ok := rewriteResponse(resp, func(m *dnswire.Message) {
				m.Answers = nil
				m.Authority = nil
				m.Additional = nil
				m.Flags.Truncated = true
			}, false); ok {
				inj.count(&inj.stats.ProbeTruncated)
				return mangled, rtt, nil
			}
		}
	}
	return resp, rtt, nil
}

// count bumps one stats counter under the injector lock.
func (inj *Injector) count(c *uint64) {
	inj.mu.Lock()
	*c++
	inj.mu.Unlock()
}

// rewriteResponse decodes an ipwire-framed DNS response, applies mutate
// to the message, and reframes it with the original addresses and
// framing. tcpOK controls whether TCP frames are rewritten too.
func rewriteResponse(resp []byte, mutate func(*dnswire.Message), tcpOK bool) ([]byte, bool) {
	pkt, isTCP, err := ipwire.DecodeAny(resp)
	if err != nil || (isTCP && !tcpOK) {
		return nil, false
	}
	var m dnswire.Message
	if err := m.Unpack(pkt.Payload); err != nil {
		return nil, false
	}
	mutate(&m)
	wire, err := m.Pack(nil)
	if err != nil {
		return nil, false
	}
	v6 := pkt.Src.Is6()
	switch {
	case isTCP && v6:
		return ipwire.AppendIPv6TCPDNS(nil, pkt.Src, pkt.Dst, pkt.SrcPort, pkt.DstPort, pkt.TTL, 1, wire), true
	case isTCP:
		return ipwire.AppendIPv4TCPDNS(nil, pkt.Src, pkt.Dst, pkt.SrcPort, pkt.DstPort, pkt.TTL, 1, wire), true
	case v6:
		return ipwire.AppendIPv6UDP(nil, pkt.Src, pkt.Dst, pkt.SrcPort, pkt.DstPort, pkt.TTL, wire), true
	default:
		return ipwire.AppendIPv4UDP(nil, pkt.Src, pkt.Dst, pkt.SrcPort, pkt.DstPort, pkt.TTL, wire), true
	}
}
