package chaos

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net"
	"net/netip"
	"testing"
	"time"

	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/ipwire"
	"dnsobservatory/internal/sie"
)

// sampleTx builds a well-formed answered transaction.
func sampleTx(t *testing.T, i int) *sie.Transaction {
	t.Helper()
	var q dnswire.Message
	q.ID = uint16(i)
	q.Flags.RecursionDesired = true
	q.Questions = append(q.Questions, dnswire.Question{Name: "www.example.com.", Type: dnswire.TypeA, Class: dnswire.ClassINET})
	qw, err := q.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	r := q
	r.Flags.Response = true
	r.Answers = append(r.Answers, dnswire.RR{
		Name: "www.example.com.", Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: 300,
		Data: dnswire.ARData{Addr: netip.MustParseAddr("192.0.2.1")},
	})
	rw, err := r.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	src := netip.MustParseAddr("198.51.100.7")
	dst := netip.MustParseAddr("192.0.2.53")
	base := time.Unix(1600000000, 0)
	return &sie.Transaction{
		QueryPacket:    ipwire.AppendIPv4UDP(nil, src, dst, 4242, ipwire.DNSPort, 64, qw),
		ResponsePacket: ipwire.AppendIPv4UDP(nil, dst, src, ipwire.DNSPort, 4242, 64, rw),
		QueryTime:      base.Add(time.Duration(i) * time.Millisecond),
		ResponseTime:   base.Add(time.Duration(i)*time.Millisecond + 5*time.Millisecond),
		SensorID:       1,
	}
}

// run feeds n transactions through an injector and returns the emitted
// stream plus the stats.
func run(t *testing.T, cfg Config, n int) ([]*sie.Transaction, Stats) {
	t.Helper()
	inj := New(cfg)
	var got []*sie.Transaction
	emit := inj.Transactions(func(tx *sie.Transaction) {
		cp := *tx
		cp.QueryPacket = append([]byte(nil), tx.QueryPacket...)
		cp.ResponsePacket = append([]byte(nil), tx.ResponsePacket...)
		got = append(got, &cp)
	})
	for i := 0; i < n; i++ {
		emit(sampleTx(t, i))
	}
	inj.Flush()
	return got, inj.Stats()
}

func TestZeroConfigPassesThrough(t *testing.T) {
	got, stats := run(t, Config{Seed: 1}, 50)
	if len(got) != 50 {
		t.Fatalf("emitted %d of 50", len(got))
	}
	if stats.Total() != 0 {
		t.Fatalf("zero config injected faults: %+v", stats)
	}
	for i, tx := range got {
		want := sampleTx(t, i)
		if !bytes.Equal(tx.QueryPacket, want.QueryPacket) || !bytes.Equal(tx.ResponsePacket, want.ResponsePacket) {
			t.Fatalf("tx %d mutated without faults", i)
		}
	}
}

func TestInjectionIsDeterministicAndLossless(t *testing.T) {
	cfg := Uniform(0.2, 42)
	a, sa := run(t, cfg, 400)
	b, sb := run(t, cfg, 400)
	if sa != sb {
		t.Fatalf("stats differ across identical runs:\n%+v\n%+v", sa, sb)
	}
	if len(a) != len(b) {
		t.Fatalf("stream lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i].QueryPacket, b[i].QueryPacket) {
			t.Fatalf("tx %d differs across identical runs", i)
		}
	}
	// Reordering and duplication never lose transactions: emitted count
	// is input plus duplicates.
	if want := 400 + int(sa.Duplicated); len(a) != want {
		t.Fatalf("emitted %d, want %d (400 + %d dups)", len(a), want, sa.Duplicated)
	}
	if sa.Total() == 0 {
		t.Fatal("uniform(0.2) injected nothing over 400 transactions")
	}
	for _, n := range []uint64{sa.Corrupted, sa.Truncated, sa.Duplicated, sa.Reordered, sa.ZeroTime, sa.BackTime, sa.Oversized} {
		if n == 0 {
			t.Fatalf("some stream fault never fired: %+v", sa)
		}
	}
}

func TestOversizedNamesAreRejectedByCodec(t *testing.T) {
	got, stats := run(t, Config{Seed: 7, OversizeRate: 1}, 20)
	if stats.Oversized != 20 {
		t.Fatalf("oversized = %d, want 20", stats.Oversized)
	}
	var s sie.Summarizer
	var sum sie.Summary
	for i, tx := range got {
		err := s.Summarize(tx, &sum)
		if err == nil {
			t.Fatalf("tx %d: oversized name accepted", i)
		}
		if !errors.Is(err, dnswire.ErrNameTooLong) {
			t.Fatalf("tx %d: err = %v, want ErrNameTooLong", i, err)
		}
	}
}

func TestBackwardsAndZeroTimestamps(t *testing.T) {
	got, stats := run(t, Config{Seed: 3, BackTimeRate: 1}, 10)
	if stats.BackTime != 10 {
		t.Fatalf("backtime = %d, want 10", stats.BackTime)
	}
	for i, tx := range got {
		if tx.Delay() != 0 {
			t.Fatalf("tx %d: negative delay not clamped: %v", i, tx.Delay())
		}
	}
	got, stats = run(t, Config{Seed: 3, ZeroTimeRate: 1}, 10)
	if stats.ZeroTime != 10 {
		t.Fatalf("zerotime = %d, want 10", stats.ZeroTime)
	}
	for i, tx := range got {
		if !tx.QueryTime.IsZero() {
			t.Fatalf("tx %d: query time not zeroed", i)
		}
	}
}

func TestPanicHook(t *testing.T) {
	inj := New(Config{Seed: 5, PanicRate: 1})
	defer func() {
		if r := recover(); r != ErrInjectedPanic {
			t.Fatalf("recovered %v, want ErrInjectedPanic", r)
		}
		if s := inj.Stats(); s.Panics != 1 {
			t.Fatalf("panics = %d, want 1", s.Panics)
		}
	}()
	inj.PanicHook(nil)
	t.Fatal("hook did not panic at rate 1")
}

func TestWrapWriterFaults(t *testing.T) {
	inj := New(Config{Seed: 9, WriteErrRate: 1})
	var buf bytes.Buffer
	if _, err := inj.WrapWriter(&buf).Write([]byte("hello")); !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("err = %v, want ErrInjectedWrite", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("failed write left %d bytes", buf.Len())
	}

	inj = New(Config{Seed: 9, ShortWriteRate: 1})
	buf.Reset()
	w := inj.WrapWriter(&buf)
	n, err := w.Write([]byte("hello world"))
	if err != nil || n >= 11 || n < 1 {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	if buf.Len() != n {
		t.Fatalf("underlying got %d bytes, reported %d", buf.Len(), n)
	}
	// bufio on top must surface the short write as an error.
	inj = New(Config{Seed: 9, ShortWriteRate: 1})
	buf.Reset()
	var sink io.Writer = inj.WrapWriter(&buf)
	bw := bufio.NewWriter(sink)
	if _, err := bw.Write(bytes.Repeat([]byte("x"), 4096)); err == nil {
		if err = bw.Flush(); err == nil {
			t.Fatal("bufio over short writer reported success")
		}
	}
}

// pipeConns returns both ends of an in-memory connection.
func pipeConns() (net.Conn, net.Conn) { return net.Pipe() }

func TestWrapConnReset(t *testing.T) {
	inj := New(Config{Seed: 3, ConnResetRate: 1})
	a, b := pipeConns()
	defer b.Close()
	go io.Copy(io.Discard, b) // drain whatever prefix the reset delivers
	wrapped := inj.WrapConn(a)
	if _, err := wrapped.Write([]byte("hello frame")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("err = %v, want ErrInjectedReset", err)
	}
	// The connection is dead: a later write must fail on the real conn.
	if _, err := a.Write([]byte("x")); err == nil {
		t.Fatal("connection survived an injected reset")
	}
	if inj.Stats().ConnResets != 1 {
		t.Fatalf("ConnResets = %d, want 1", inj.Stats().ConnResets)
	}
}

func TestWrapConnAckLoss(t *testing.T) {
	inj := New(Config{Seed: 3, DupReconnectRate: 1})
	a, b := pipeConns()
	defer a.Close()
	defer b.Close()
	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 16)
		n, _ := b.Read(buf)
		got <- buf[:n]
	}()
	wrapped := inj.WrapConn(a)
	msg := []byte("payload")
	if _, err := wrapped.Write(msg); !errors.Is(err, ErrInjectedAckLoss) {
		t.Fatalf("err = %v, want ErrInjectedAckLoss", err)
	}
	// Despite the reported failure, the bytes arrived in full — the
	// fault that forces a duplicate retransmit after reconnecting.
	if delivered := <-got; !bytes.Equal(delivered, msg) {
		t.Fatalf("delivered %q, want %q", delivered, msg)
	}
	if inj.Stats().DupWrites != 1 {
		t.Fatalf("DupWrites = %d, want 1", inj.Stats().DupWrites)
	}
}

func TestWrapConnStalledRead(t *testing.T) {
	inj := New(Config{Seed: 3, StalledReadRate: 1, StallDuration: 50 * time.Millisecond})
	a, b := pipeConns()
	defer a.Close()
	defer b.Close()
	go b.Write([]byte("x"))
	wrapped := inj.WrapConn(a)
	start := time.Now()
	buf := make([]byte, 1)
	if _, err := wrapped.Read(buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("read returned after %v, want >= 50ms stall", d)
	}
	if inj.Stats().StalledRds != 1 {
		t.Fatalf("StalledRds = %d, want 1", inj.Stats().StalledRds)
	}
}
