package routing

import (
	"math/rand"
	"net/netip"
	"testing"
)

// TestLookupMatchesBruteForce checks the trie against a linear scan
// over randomly generated prefix tables.
func TestLookupMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		var tb Table
		type entry struct {
			pfx netip.Prefix
			asn uint32
		}
		// More-specifics may overwrite less specifics at equal length;
		// keep the latest ASN per masked prefix, like the trie does.
		byPrefix := map[netip.Prefix]uint32{}
		for i := 0; i < 200; i++ {
			length := 4 + rng.Intn(25)
			addr := netip.AddrFrom4([4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))})
			pfx, err := addr.Prefix(length)
			if err != nil {
				t.Fatal(err)
			}
			asn := uint32(1000 + rng.Intn(500))
			tb.Add(pfx, asn)
			byPrefix[pfx] = asn
		}
		var entries []entry
		for p, a := range byPrefix {
			entries = append(entries, entry{p, a})
		}
		brute := func(a netip.Addr) (uint32, bool) {
			best := -1
			var bestASN uint32
			for _, e := range entries {
				if e.pfx.Contains(a) && e.pfx.Bits() > best {
					best = e.pfx.Bits()
					bestASN = e.asn
				}
			}
			return bestASN, best >= 0
		}
		for i := 0; i < 500; i++ {
			a := netip.AddrFrom4([4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))})
			wantASN, wantOK := brute(a)
			gotASN, gotOK := tb.Lookup(a)
			if gotOK != wantOK || (wantOK && gotASN != wantASN) {
				t.Fatalf("trial %d addr %v: got %d,%v want %d,%v", trial, a, gotASN, gotOK, wantASN, wantOK)
			}
		}
	}
}
