package routing

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
)

// Table is a routing table with AS metadata. The zero value is empty and
// usable. Table is not safe for concurrent mutation.
type Table struct {
	v4, v6 *node
	names  map[uint32]string // ASN -> registered AS name
	count  int
}

type node struct {
	children [2]*node
	asn      uint32
	valid    bool
}

// Add announces prefix from asn. More-specific announcements shadow less
// specific ones, as in BGP.
func (t *Table) Add(prefix netip.Prefix, asn uint32) {
	prefix = prefix.Masked()
	root := &t.v4
	if prefix.Addr().Is6() && !prefix.Addr().Is4In6() {
		root = &t.v6
	}
	if *root == nil {
		*root = &node{}
	}
	n := *root
	addr := prefix.Addr().Unmap()
	b := addr.AsSlice()
	for i := 0; i < prefix.Bits(); i++ {
		bit := b[i/8] >> (7 - i%8) & 1
		if n.children[bit] == nil {
			n.children[bit] = &node{}
		}
		n = n.children[bit]
	}
	if !n.valid {
		t.count++
	}
	n.asn = asn
	n.valid = true
}

// SetASName registers the AS-names-dataset entry for asn, e.g.
// "AMAZON-02 - Amazon.com, Inc., US".
func (t *Table) SetASName(asn uint32, name string) {
	if t.names == nil {
		t.names = make(map[uint32]string)
	}
	t.names[asn] = name
}

// Lookup returns the origin ASN of the longest matching prefix; ok is
// false when no announcement covers addr.
func (t *Table) Lookup(addr netip.Addr) (asn uint32, ok bool) {
	addr = addr.Unmap()
	root := t.v4
	if addr.Is6() {
		root = t.v6
	}
	if root == nil {
		return 0, false
	}
	b := addr.AsSlice()
	n := root
	if n.valid {
		asn, ok = n.asn, true
	}
	for i := 0; i < len(b)*8; i++ {
		bit := b[i/8] >> (7 - i%8) & 1
		n = n.children[bit]
		if n == nil {
			break
		}
		if n.valid {
			asn, ok = n.asn, true
		}
	}
	return asn, ok
}

// ASName returns the registered AS name for asn, or "AS<n>" when unknown.
func (t *Table) ASName(asn uint32) string {
	if name, ok := t.names[asn]; ok {
		return name
	}
	return fmt.Sprintf("AS%d", asn)
}

// Len returns the number of announced prefixes.
func (t *Table) Len() int { return t.count }

// OrgName extracts the organization from an AS-names-dataset string.
// The dataset format is "HANDLE - Long Org Name, CC"; the paper
// aggregates nameservers "based on the organization name extracted from
// each AS Name string". We take the handle, strip trailing numeric or
// regional qualifiers ("AMAZON-02" -> "AMAZON", "GOOGLE-CLOUD" stays
// distinct from "GOOGLE" only by its full qualifier list, so only purely
// numeric suffixes are stripped) and upper-case the result.
func OrgName(asName string) string {
	h := asName
	if i := strings.Index(h, " - "); i >= 0 {
		h = h[:i]
	}
	if i := strings.IndexByte(h, ','); i >= 0 {
		h = h[:i]
	}
	h = strings.ToUpper(strings.TrimSpace(h))
	// Strip trailing "-NN" or "-AS" qualifiers: AMAZON-02, VERISIGN-AS.
	for {
		i := strings.LastIndexByte(h, '-')
		if i <= 0 {
			break
		}
		suffix := h[i+1:]
		if suffix == "" || suffix == "AS" || isDigits(suffix) {
			h = h[:i]
			continue
		}
		break
	}
	return h
}

func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// OrgShare is one row of an organization ranking.
type OrgShare struct {
	Org  string
	ASNs map[uint32]bool
	Hits uint64
}

// RankOrgs groups per-ASN hit counts by organization name and returns
// organizations by descending hits — the join performed for Table 1.
func (t *Table) RankOrgs(hitsByASN map[uint32]uint64) []OrgShare {
	byOrg := map[string]*OrgShare{}
	for asn, hits := range hitsByASN {
		org := OrgName(t.ASName(asn))
		os, ok := byOrg[org]
		if !ok {
			os = &OrgShare{Org: org, ASNs: map[uint32]bool{}}
			byOrg[org] = os
		}
		os.ASNs[asn] = true
		os.Hits += hits
	}
	out := make([]OrgShare, 0, len(byOrg))
	for _, os := range byOrg {
		out = append(out, *os)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hits != out[j].Hits {
			return out[i].Hits > out[j].Hits
		}
		return out[i].Org < out[j].Org
	})
	return out
}
