// Package routing maps IP addresses to autonomous systems and AS
// organization names, standing in for the Route Views BGP table and the
// AS Names dataset the paper joins against in §3.3. Lookup is
// longest-prefix match over a binary trie, exactly as a BGP RIB resolves
// an address.
//
// Concurrency: build the table first, then share it — a Table is
// immutable once populated, and concurrent lookups need no locking.
// Inserting while other goroutines look up is not supported.
package routing
