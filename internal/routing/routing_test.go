package routing

import (
	"net/netip"
	"testing"
)

func mustPrefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func TestLookupLongestPrefix(t *testing.T) {
	var tb Table
	tb.Add(mustPrefix("10.0.0.0/8"), 100)
	tb.Add(mustPrefix("10.1.0.0/16"), 200)
	tb.Add(mustPrefix("10.1.2.0/24"), 300)

	cases := []struct {
		addr string
		asn  uint32
		ok   bool
	}{
		{"10.9.9.9", 100, true},
		{"10.1.9.9", 200, true},
		{"10.1.2.9", 300, true},
		{"11.0.0.1", 0, false},
	}
	for _, c := range cases {
		asn, ok := tb.Lookup(netip.MustParseAddr(c.addr))
		if asn != c.asn || ok != c.ok {
			t.Errorf("Lookup(%s) = %d,%v want %d,%v", c.addr, asn, ok, c.asn, c.ok)
		}
	}
	if tb.Len() != 3 {
		t.Errorf("Len = %d", tb.Len())
	}
}

func TestLookupIPv6(t *testing.T) {
	var tb Table
	tb.Add(mustPrefix("2001:db8::/32"), 64500)
	tb.Add(mustPrefix("2001:db8:1::/48"), 64501)
	if asn, ok := tb.Lookup(netip.MustParseAddr("2001:db8:1::53")); !ok || asn != 64501 {
		t.Errorf("v6 more specific: %d %v", asn, ok)
	}
	if asn, ok := tb.Lookup(netip.MustParseAddr("2001:db8:ffff::1")); !ok || asn != 64500 {
		t.Errorf("v6 covering: %d %v", asn, ok)
	}
	if _, ok := tb.Lookup(netip.MustParseAddr("2620::1")); ok {
		t.Error("v6 miss matched")
	}
	// v4 and v6 tries are independent.
	if _, ok := tb.Lookup(netip.MustParseAddr("32.1.13.184")); ok {
		t.Error("v4 address matched v6 prefix")
	}
}

func TestAddOverwrites(t *testing.T) {
	var tb Table
	tb.Add(mustPrefix("192.0.2.0/24"), 1)
	tb.Add(mustPrefix("192.0.2.0/24"), 2)
	if asn, _ := tb.Lookup(netip.MustParseAddr("192.0.2.1")); asn != 2 {
		t.Errorf("asn = %d", asn)
	}
	if tb.Len() != 1 {
		t.Errorf("Len = %d", tb.Len())
	}
}

func TestASName(t *testing.T) {
	var tb Table
	tb.SetASName(16509, "AMAZON-02 - Amazon.com, Inc., US")
	if got := tb.ASName(16509); got != "AMAZON-02 - Amazon.com, Inc., US" {
		t.Errorf("ASName = %q", got)
	}
	if got := tb.ASName(99); got != "AS99" {
		t.Errorf("unknown ASName = %q", got)
	}
}

func TestOrgName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"AMAZON-02 - Amazon.com, Inc., US", "AMAZON"},
		{"AMAZON-AES - Amazon.com, Inc., US", "AMAZON-AES"},
		{"GOOGLE - Google LLC, US", "GOOGLE"},
		{"CLOUDFLARENET - Cloudflare, Inc., US", "CLOUDFLARENET"},
		{"VERISIGN-AS - VeriSign Infrastructure, US", "VERISIGN"},
		{"AKAMAI-01, US", "AKAMAI"},
		{"lowercase-7 - Some Org, PL", "LOWERCASE"},
		{"PLAIN", "PLAIN"},
		{"", ""},
	}
	for _, c := range cases {
		if got := OrgName(c.in); got != c.want {
			t.Errorf("OrgName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRankOrgs(t *testing.T) {
	var tb Table
	tb.SetASName(1, "AMAZON-02 - Amazon, US")
	tb.SetASName(2, "AMAZON-77 - Amazon, US")
	tb.SetASName(3, "GOOGLE - Google LLC, US")
	ranks := tb.RankOrgs(map[uint32]uint64{1: 100, 2: 50, 3: 120})
	if len(ranks) != 2 {
		t.Fatalf("ranks = %+v", ranks)
	}
	if ranks[0].Org != "AMAZON" || ranks[0].Hits != 150 || len(ranks[0].ASNs) != 2 {
		t.Errorf("rank0 = %+v", ranks[0])
	}
	if ranks[1].Org != "GOOGLE" || ranks[1].Hits != 120 {
		t.Errorf("rank1 = %+v", ranks[1])
	}
}

func TestLookupEmptyTable(t *testing.T) {
	var tb Table
	if _, ok := tb.Lookup(netip.MustParseAddr("1.2.3.4")); ok {
		t.Error("empty table matched")
	}
}

func TestDefaultRoute(t *testing.T) {
	var tb Table
	tb.Add(mustPrefix("0.0.0.0/0"), 7)
	if asn, ok := tb.Lookup(netip.MustParseAddr("203.0.113.9")); !ok || asn != 7 {
		t.Errorf("default route: %d %v", asn, ok)
	}
}
