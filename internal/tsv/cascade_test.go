package tsv

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// TestFullCascadeToDaily feeds a day of synthetic minutely files through
// the store and cascades all the way to a daily aggregate, checking the
// mean-rate semantics at every level.
func TestFullCascadeToDaily(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const minutes = 24 * 60
	// Object "steady" appears every minute at rate 10; "half" only in
	// even minutes at rate 8.
	for i := int64(0); i < minutes; i++ {
		rows := []Row{{Key: "steady", Values: []float64{10, 100}}}
		if i%2 == 0 {
			rows = append(rows, Row{Key: "half", Values: []float64{8, 50}})
		}
		s := &Snapshot{
			Aggregation: "srvip", Level: Minutely, Start: i * 60,
			Columns: []string{"hits", "qnames"},
			Kinds:   []Kind{Counter, Gauge},
			Rows:    rows, Windows: 1, TotalBefore: 20, TotalAfter: 18,
		}
		if err := st.Put(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Cascade("srvip", minutes*60); err != nil {
		t.Fatal(err)
	}
	for _, level := range []Level{Decaminutely, Hourly, Daily} {
		starts, err := st.List("srvip", level)
		if err != nil {
			t.Fatal(err)
		}
		wantFiles := map[Level]int{Decaminutely: 144, Hourly: 24, Daily: 1}[level]
		if len(starts) != wantFiles {
			t.Fatalf("%s files = %d, want %d", level.Name(), len(starts), wantFiles)
		}
		snap, err := st.Get("srvip", level, starts[0])
		if err != nil {
			t.Fatal(err)
		}
		steady := snap.Find("steady")
		if steady == nil || math.Abs(steady.Values[0]-10) > 1e-9 {
			t.Errorf("%s steady = %+v", level.Name(), steady)
		}
		if math.Abs(steady.Values[1]-100) > 1e-9 {
			t.Errorf("%s steady gauge = %v", level.Name(), steady.Values[1])
		}
		half := snap.Find("half")
		// Counter: present half the windows at 8 -> mean rate 4.
		if half == nil || math.Abs(half.Values[0]-4) > 1e-9 {
			t.Errorf("%s half = %+v", level.Name(), half)
		}
		// Gauge: mean over present windows stays 50.
		if math.Abs(half.Values[1]-50) > 1e-9 {
			t.Errorf("%s half gauge = %v", level.Name(), half.Values[1])
		}
	}
	// Collection statistics accumulate.
	daily, err := st.Get("srvip", Daily, 0)
	if err != nil {
		t.Fatal(err)
	}
	if daily.TotalBefore != 20*minutes || daily.Windows != minutes {
		t.Errorf("daily stats: before=%d windows=%d", daily.TotalBefore, daily.Windows)
	}
}

// TestCascadePartialGroups: incomplete upper windows aggregate whatever
// files exist once the window closes (the paper averages available data
// points).
func TestCascadePartialGroups(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Only 3 of 10 minutes present in the first decaminutely window.
	for _, i := range []int64{0, 2, 7} {
		s := &Snapshot{
			Aggregation: "x", Level: Minutely, Start: i * 60,
			Columns: []string{"hits"},
			Kinds:   []Kind{Counter},
			Rows:    []Row{{Key: "k", Values: []float64{9}}},
			Windows: 1,
		}
		if err := st.Put(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Cascade("x", 600); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get("x", Decaminutely, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Mean over the 3 present windows (absent files are unknown, not
	// zero — only objects missing from present files count as zero).
	k := got.Find("k")
	if k == nil || math.Abs(k.Values[0]-9) > 1e-9 {
		t.Errorf("k = %+v", k)
	}
	if got.Windows != 3 {
		t.Errorf("windows = %d", got.Windows)
	}
}

func TestLevelMetadata(t *testing.T) {
	if Minutely.Seconds() != 60 || Decaminutely.GroupSize() != 10 ||
		Hourly.GroupSize() != 6 || Daily.GroupSize() != 24 {
		t.Error("level metadata wrong")
	}
	names := map[string]bool{}
	for l := Minutely; l <= MaxLevel; l++ {
		if names[l.Name()] {
			t.Errorf("duplicate level name %s", l.Name())
		}
		names[l.Name()] = true
	}
}

func TestStoreManyAggregations(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, agg := range []string{"srvip", "esld", "qname"} {
		for i := int64(0); i < 12; i++ {
			s := &Snapshot{
				Aggregation: agg, Level: Minutely, Start: i * 60,
				Columns: []string{"hits"}, Kinds: []Kind{Counter},
				Rows:    []Row{{Key: fmt.Sprintf("%s-key", agg), Values: []float64{1}}},
				Windows: 1,
			}
			if err := st.Put(s); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Cascade(agg, 1200); err != nil {
			t.Fatal(err)
		}
	}
	// Aggregations do not bleed into each other.
	for _, agg := range []string{"srvip", "esld", "qname"} {
		snap, err := st.Get(agg, Decaminutely, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(snap.Rows) != 1 || snap.Rows[0].Key != agg+"-key" {
			t.Errorf("%s rows = %+v", agg, snap.Rows)
		}
	}
}

// TestCascadeAllMatchesSerial runs the same minutely corpus through the
// serial per-aggregation cascade and the pooled CascadeAll and requires
// byte-identical output files: parallelism must only change wall clock,
// never content.
func TestCascadeAllMatchesSerial(t *testing.T) {
	aggs := []string{"srvip", "esld", "qname", "srcsrv"}
	fill := func(st *Store) {
		for ai, agg := range aggs {
			for i := int64(0); i < 180; i++ {
				s := &Snapshot{
					Aggregation: agg, Level: Minutely, Start: i * 60,
					Columns: []string{"hits", "qnames"},
					Kinds:   []Kind{Counter, Gauge},
					Rows: []Row{
						{Key: fmt.Sprintf("%s-a", agg), Values: []float64{float64(ai + 1), float64(i % 7)}},
						{Key: fmt.Sprintf("%s-b", agg), Values: []float64{float64(i%3 + 1), 5}},
					},
					Windows: 1, TotalBefore: 11, TotalAfter: 10,
				}
				if err := st.Put(s); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	serial, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	serial.Parallelism = 1
	fill(serial)
	for _, agg := range aggs {
		if err := serial.Cascade(agg, 180*60); err != nil {
			t.Fatal(err)
		}
	}

	parallel, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	parallel.Parallelism = 8
	fill(parallel)
	if err := parallel.CascadeAll(aggs, 180*60); err != nil {
		t.Fatal(err)
	}

	sFiles, err := os.ReadDir(serial.Dir())
	if err != nil {
		t.Fatal(err)
	}
	pFiles, err := os.ReadDir(parallel.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(sFiles) != len(pFiles) {
		t.Fatalf("file count: serial %d, parallel %d", len(sFiles), len(pFiles))
	}
	for _, e := range sFiles {
		sb, err := os.ReadFile(filepath.Join(serial.Dir(), e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		pb, err := os.ReadFile(filepath.Join(parallel.Dir(), e.Name()))
		if err != nil {
			t.Fatalf("parallel store missing %s: %v", e.Name(), err)
		}
		if !bytes.Equal(sb, pb) {
			t.Errorf("%s differs between serial and parallel cascade", e.Name())
		}
	}
}
