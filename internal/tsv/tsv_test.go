package tsv

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

func snap(agg string, level Level, start int64, rows []Row) *Snapshot {
	return &Snapshot{
		Aggregation: agg,
		Level:       level,
		Start:       start,
		Columns:     []string{"hits", "qnames"},
		Kinds:       []Kind{Counter, Gauge},
		Rows:        rows,
		TotalBefore: 100,
		TotalAfter:  90,
		Windows:     1,
	}
}

func TestFileNameRoundTrip(t *testing.T) {
	s := snap("srvip", Hourly, 1546300800, nil)
	name := s.FileName()
	if name != "srvip-hour-1546300800.tsv" {
		t.Errorf("name = %q", name)
	}
	agg, level, start, err := ParseFileName(name)
	if err != nil || agg != "srvip" || level != Hourly || start != 1546300800 {
		t.Errorf("parsed %q %v %d %v", agg, level, start, err)
	}
	// Aggregation names containing dashes survive.
	s2 := snap("src-srv", Minutely, 60, nil)
	agg, level, start, err = ParseFileName(s2.FileName())
	if err != nil || agg != "src-srv" || level != Minutely || start != 60 {
		t.Errorf("dashed: %q %v %d %v", agg, level, start, err)
	}
}

func TestParseFileNameErrors(t *testing.T) {
	for _, name := range []string{"", "x.tsv", "a-b.tsv", "a-hour-xyz.tsv", "a-lightyear-12.tsv"} {
		if _, _, _, err := ParseFileName(name); err == nil {
			t.Errorf("%q accepted", name)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := snap("qname", Minutely, 120, []Row{
		{Key: "www.example.com.", Values: []float64{42, 7}},
		{Key: "api.example.org.", Values: []float64{13, 2.5}},
	})
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.HasPrefix(text, "#key\thits\tqnames\n#kind\tc\tg\n") {
		t.Errorf("header:\n%s", text)
	}
	if !strings.Contains(text, "#stats\ttotal_before=100\ttotal_after=90\twindows=1\n") {
		t.Errorf("stats row missing:\n%s", text)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Columns, s.Columns) || !reflect.DeepEqual(got.Kinds, s.Kinds) {
		t.Errorf("schema mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.Rows, s.Rows) {
		t.Errorf("rows mismatch: %+v", got.Rows)
	}
	if got.TotalBefore != 100 || got.TotalAfter != 90 || got.Windows != 1 {
		t.Errorf("stats: %+v", got)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",                             // no header
		"www.test.\t1\t2\n",            // row before header
		"#key\ta\tb\nx\t1\n",           // wrong arity
		"#key\ta\nx\tnotanumber\n",     // bad float
		"#key\ta\n#stats\twindows=z\n", // bad stat value
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestAggregateCountersAndGauges(t *testing.T) {
	// Object "a" in both windows, "b" only in the first.
	s1 := snap("srvip", Minutely, 0, []Row{
		{Key: "a", Values: []float64{10, 100}},
		{Key: "b", Values: []float64{6, 50}},
	})
	s2 := snap("srvip", Minutely, 60, []Row{
		{Key: "a", Values: []float64{20, 200}},
	})
	out, err := Aggregate([]*Snapshot{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	if out.Level != Decaminutely || out.Windows != 2 || out.Start != 0 {
		t.Errorf("meta: %+v", out)
	}
	a := out.Find("a")
	if a == nil {
		t.Fatal("a missing")
	}
	// Counter: (10+20)/2; gauge: (100+200)/2.
	if a.Values[0] != 15 || a.Values[1] != 150 {
		t.Errorf("a = %v", a.Values)
	}
	b := out.Find("b")
	if b == nil {
		t.Fatal("b missing")
	}
	// Counter: absent window counts as zero -> 6/2. Gauge: skip missing -> 50.
	if b.Values[0] != 3 || b.Values[1] != 50 {
		t.Errorf("b = %v", b.Values)
	}
	if out.TotalBefore != 200 || out.TotalAfter != 180 {
		t.Errorf("stats: %+v", out)
	}
}

func TestAggregateWeightsByWindows(t *testing.T) {
	// Re-aggregating pre-aggregated snapshots must weight by window count.
	s1 := snap("x", Decaminutely, 0, []Row{{Key: "a", Values: []float64{10, 10}}})
	s1.Level = Decaminutely
	s1.Windows = 10
	s2 := snap("x", Decaminutely, 600, []Row{{Key: "a", Values: []float64{40, 40}}})
	s2.Level = Decaminutely
	s2.Windows = 10
	out, err := Aggregate([]*Snapshot{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	a := out.Find("a")
	if math.Abs(a.Values[0]-25) > 1e-9 || math.Abs(a.Values[1]-25) > 1e-9 {
		t.Errorf("a = %v", a.Values)
	}
	if out.Windows != 20 {
		t.Errorf("windows = %d", out.Windows)
	}
}

func TestAggregateErrors(t *testing.T) {
	if _, err := Aggregate(nil); err != ErrNothingToAgg {
		t.Errorf("empty: %v", err)
	}
	s1 := snap("x", Minutely, 0, nil)
	s2 := snap("x", Hourly, 0, nil)
	if _, err := Aggregate([]*Snapshot{s1, s2}); err != ErrMixedLevels {
		t.Errorf("mixed: %v", err)
	}
	s3 := snap("x", Minutely, 0, nil)
	s3.Columns = []string{"hits", "other"}
	if _, err := Aggregate([]*Snapshot{s1, s3}); err != ErrSchemaChange {
		t.Errorf("schema: %v", err)
	}
	y := snap("x", Yearly, 0, nil)
	y.Level = Yearly
	if _, err := Aggregate([]*Snapshot{y}); err != ErrMixedLevels {
		t.Errorf("beyond max: %v", err)
	}
}

func TestSortByColumn(t *testing.T) {
	s := snap("x", Minutely, 0, []Row{
		{Key: "low", Values: []float64{1, 0}},
		{Key: "high", Values: []float64{9, 0}},
		{Key: "mid", Values: []float64{5, 0}},
	})
	s.SortByColumn("hits")
	if s.Rows[0].Key != "high" || s.Rows[2].Key != "low" {
		t.Errorf("order: %v %v %v", s.Rows[0].Key, s.Rows[1].Key, s.Rows[2].Key)
	}
	// Unknown column: no-op, no panic.
	s.SortByColumn("bogus")
}

func TestValueLookup(t *testing.T) {
	s := snap("x", Minutely, 0, []Row{{Key: "a", Values: []float64{3, 4}}})
	r := s.Find("a")
	if v, ok := s.Value(r, "qnames"); !ok || v != 4 {
		t.Errorf("value = %f %v", v, ok)
	}
	if _, ok := s.Value(r, "none"); ok {
		t.Error("bogus column found")
	}
	if s.Find("zzz") != nil {
		t.Error("phantom row")
	}
}

func TestStorePutGetList(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, start := range []int64{60, 0, 120} {
		if err := st.Put(snap("srvip", Minutely, start, []Row{{Key: "k", Values: []float64{1, 2}}})); err != nil {
			t.Fatal(err)
		}
	}
	starts, err := st.List("srvip", Minutely)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(starts, []int64{0, 60, 120}) {
		t.Errorf("starts = %v", starts)
	}
	got, err := st.Get("srvip", Minutely, 60)
	if err != nil {
		t.Fatal(err)
	}
	if got.Start != 60 || got.Aggregation != "srvip" || len(got.Rows) != 1 {
		t.Errorf("got = %+v", got)
	}
	if _, err := st.Get("srvip", Minutely, 999); err == nil {
		t.Error("phantom file")
	}
}

func TestStoreCascade(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// 10 minutely files fill one decaminutely window.
	for i := int64(0); i < 10; i++ {
		s := snap("srvip", Minutely, i*60, []Row{{Key: "k", Values: []float64{float64(i + 1), 10}}})
		if err := st.Put(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Cascade("srvip", 600); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get("srvip", Decaminutely, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := got.Find("k")
	if k == nil || math.Abs(k.Values[0]-5.5) > 1e-9 { // mean of 1..10
		t.Errorf("aggregated = %+v", got)
	}
	// An open window (now too early) must not aggregate.
	if err := st.Put(snap("srvip", Minutely, 600, nil)); err != nil {
		t.Fatal(err)
	}
	if err := st.Cascade("srvip", 900); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get("srvip", Decaminutely, 600); err == nil {
		t.Error("open window aggregated")
	}
	// Cascade is idempotent.
	if err := st.Cascade("srvip", 600); err != nil {
		t.Fatal(err)
	}
}

func TestStoreRetention(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 20; i++ {
		if err := st.Put(snap("srvip", Minutely, i*60, []Row{{Key: "k", Values: []float64{1, 1}}})); err != nil {
			t.Fatal(err)
		}
	}
	st.Retain[Minutely] = 5
	// Nothing aggregated yet: retention must keep everything.
	if err := st.Retention("srvip"); err != nil {
		t.Fatal(err)
	}
	starts, _ := st.List("srvip", Minutely)
	if len(starts) != 20 {
		t.Fatalf("unaggregated files deleted: %d left", len(starts))
	}
	// Aggregate the first decaminutely window, then retention may delete
	// its minutely inputs.
	if err := st.Cascade("srvip", 600); err != nil {
		t.Fatal(err)
	}
	if err := st.Retention("srvip"); err != nil {
		t.Fatal(err)
	}
	starts, _ = st.List("srvip", Minutely)
	if len(starts) != 10 {
		t.Errorf("%d minutely files left, want 10 (second window unaggregated)", len(starts))
	}
	for _, s := range starts {
		if s < 600 {
			t.Errorf("aggregated input %d not deleted", s)
		}
	}
}
