package tsv

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"dnsobservatory/internal/metrics"
)

// Errors returned by the query engine.
var (
	// ErrBadQuery matches malformed queries: level out of range,
	// inverted time range, negative K.
	ErrBadQuery = errors.New("tsv: bad query")
	// ErrNoData matches queries whose time range holds no snapshot
	// files.
	ErrNoData = errors.New("tsv: no snapshots in range")
)

// Query is one read against a snapshot store: a time range of one
// aggregation at one level, a column projection, optional key and
// value-range predicates, and top-k ranking. Serving analysts through
// queries instead of handing them files is what lets the store choose
// how little to decode.
type Query struct {
	// Agg is the aggregation name (e.g. "srvip", "esld"). Required.
	Agg string
	// Level is the cascade granularity to read.
	Level Level
	// From and To bound the window starts: From <= start < To. A zero
	// To means unbounded; From is inclusive from zero.
	From, To int64
	// Columns is the projection, in the requested order; empty means
	// every column. OrderBy is implicitly included.
	Columns []string
	// OrderBy names the ranking column; empty means the first result
	// column. Rows order by descending value, ties broken by ascending
	// key.
	OrderBy string
	// K caps the result to the strongest K rows; 0 means all.
	K int
	// Key, when non-empty, restricts the query to one object — a point
	// lookup the columnar backend can answer from the bloom index.
	Key string
	// Where keeps only rows satisfying every predicate, evaluated
	// per window before aggregation.
	Where []Pred
}

// Result is a query's answer: rows aggregated over the matched windows
// (same counter/gauge/mode semantics as the cascade), ranked by the
// OrderBy column.
type Result struct {
	Agg     string
	Level   Level
	Columns []string
	Kinds   []Kind
	Rows    []Row
	// From and To echo the actual window-start range covered:
	// the first and last file start aggregated.
	From, To int64
	// Windows is the total number of base windows aggregated; Files the
	// number of snapshot files read; CorruptSkipped how many files in
	// range were unreadable and skipped.
	Windows        int
	Files          int
	CorruptSkipped int
	TotalBefore    uint64
	TotalAfter     uint64
}

// Engine runs queries against one store and keeps the query-side
// metrics. The zero value with Store set is ready to use; Engine is
// safe for concurrent use if the underlying store is.
type Engine struct {
	Store SnapshotStore

	queries      atomic.Uint64
	filesScanned atomic.Uint64
	rowsReturned atomic.Uint64
	corruptSkips atomic.Uint64
	seconds      *metrics.Histogram
}

// NewEngine returns a query engine over st.
func NewEngine(st SnapshotStore) *Engine { return &Engine{Store: st} }

// Instrument registers the engine's read-through counters and its
// latency histogram with reg.
func (e *Engine) Instrument(reg *metrics.Registry) {
	reg.CounterFunc("dnsobs_query_total", "queries executed", e.Queries)
	reg.CounterFunc("dnsobs_query_files_total", "snapshot files read by queries", e.FilesScanned)
	reg.CounterFunc("dnsobs_query_rows_returned_total", "rows returned by queries", e.RowsReturned)
	reg.CounterFunc("dnsobs_query_corrupt_skips_total", "corrupt snapshot files skipped by queries", e.CorruptSkips)
	e.seconds = reg.Histogram("dnsobs_query_seconds", "query execution duration", metrics.DurationBuckets)
}

// Queries returns how many queries the engine has executed.
func (e *Engine) Queries() uint64 { return e.queries.Load() }

// FilesScanned returns how many snapshot files queries have read.
func (e *Engine) FilesScanned() uint64 { return e.filesScanned.Load() }

// RowsReturned returns the total rows returned across queries.
func (e *Engine) RowsReturned() uint64 { return e.rowsReturned.Load() }

// CorruptSkips returns how many corrupt files queries have skipped.
func (e *Engine) CorruptSkips() uint64 { return e.corruptSkips.Load() }

// RunQuery executes q against st with a throwaway engine — the
// convenience form for tools and tests.
func RunQuery(st SnapshotStore, q Query) (*Result, error) {
	return (&Engine{Store: st}).Run(q)
}

// Run executes one query. Identical queries over identical logical
// contents return identical results on every backend: the TSV and
// columnar stores differ only in how much work reaching this answer
// takes.
func (e *Engine) Run(q Query) (*Result, error) {
	start := time.Now()
	res, err := e.run(q)
	e.queries.Add(1)
	if e.seconds != nil {
		e.seconds.Observe(time.Since(start).Seconds())
	}
	if res != nil {
		e.filesScanned.Add(uint64(res.Files))
		e.rowsReturned.Add(uint64(len(res.Rows)))
		e.corruptSkips.Add(uint64(res.CorruptSkipped))
	}
	return res, err
}

func (e *Engine) run(q Query) (*Result, error) {
	if q.Agg == "" {
		return nil, fmt.Errorf("%w: empty aggregation", ErrBadQuery)
	}
	if q.Level < Minutely || q.Level > MaxLevel {
		return nil, fmt.Errorf("%w: level out of range", ErrBadQuery)
	}
	if q.To != 0 && q.From > q.To {
		return nil, fmt.Errorf("%w: inverted time range", ErrBadQuery)
	}
	if q.K < 0 {
		return nil, fmt.Errorf("%w: negative k", ErrBadQuery)
	}
	all, err := e.Store.List(q.Agg, q.Level)
	if err != nil {
		return nil, err
	}
	var starts []int64
	for _, s := range all {
		if s >= q.From && (q.To == 0 || s < q.To) {
			starts = append(starts, s)
		}
	}
	if len(starts) == 0 {
		return nil, fmt.Errorf("%w: %s/%s in [%d, %d)", ErrNoData, q.Agg, q.Level.Name(), q.From, q.To)
	}

	proj := &Projection{Key: q.Key, Where: q.Where}
	if len(q.Columns) > 0 {
		proj.Columns = append([]string(nil), q.Columns...)
		if q.OrderBy != "" {
			found := false
			for _, c := range proj.Columns {
				if c == q.OrderBy {
					found = true
					break
				}
			}
			if !found {
				proj.Columns = append(proj.Columns, q.OrderBy)
			}
		}
	}

	res := &Result{Agg: q.Agg, Level: q.Level}
	var snaps []*Snapshot
	for _, s := range starts {
		snap, err := e.Store.GetProjected(q.Agg, q.Level, s, proj)
		if err != nil {
			if errors.Is(err, ErrCorruptSnapshot) {
				res.CorruptSkipped++
				continue
			}
			return res, err
		}
		if res.Files == 0 {
			res.From = s
		}
		res.To = s
		res.Files++
		snaps = append(snaps, snap)
	}
	if len(snaps) == 0 {
		return res, fmt.Errorf("%w: every file in range was corrupt", ErrNoData)
	}

	rows, err := mergeWindows(snaps, res)
	if err != nil {
		return res, err
	}

	orderIdx := 0
	if q.OrderBy != "" {
		first := snaps[0]
		j, err := first.columnIndex(q.OrderBy)
		if err != nil {
			return res, err
		}
		orderIdx = j
	}
	res.Rows = topRows(rows, orderIdx, q.K)
	return res, nil
}

// mergeWindows aggregates the projected snapshots of a range with the
// cascade's semantics — counters average over all windows with missing
// objects as zero, gauges average over present windows, modes take the
// window-weighted majority — and fills the result's schema and totals.
// One window passes through untouched, so a single-file query returns
// the file's rows bit-exactly.
func mergeWindows(snaps []*Snapshot, res *Result) ([]Row, error) {
	first := snaps[0]
	res.Columns = append([]string(nil), first.Columns...)
	res.Kinds = append([]Kind(nil), first.Kinds...)
	if len(snaps) == 1 {
		res.Windows = first.Windows
		res.TotalBefore = first.TotalBefore
		res.TotalAfter = first.TotalAfter
		return first.Rows, nil
	}
	type acc struct {
		sum     []float64
		present []int
		modes   []map[float64]int
	}
	hasModes := false
	for _, k := range first.Kinds {
		if k == Mode {
			hasModes = true
			break
		}
	}
	accs := map[string]*acc{}
	var order []string // first-appearance order, for deterministic iteration
	totalWindows := 0
	for _, s := range snaps {
		if len(s.Columns) != len(first.Columns) {
			return nil, ErrSchemaChange
		}
		for i := range s.Columns {
			if s.Columns[i] != first.Columns[i] || s.Kinds[i] != first.Kinds[i] {
				return nil, ErrSchemaChange
			}
		}
		totalWindows += s.Windows
		res.TotalBefore += s.TotalBefore
		res.TotalAfter += s.TotalAfter
		for _, r := range s.Rows {
			a, ok := accs[r.Key]
			if !ok {
				a = &acc{sum: make([]float64, len(first.Columns)), present: make([]int, len(first.Columns))}
				if hasModes {
					a.modes = make([]map[float64]int, len(first.Columns))
				}
				accs[r.Key] = a
				order = append(order, r.Key)
			}
			for i, v := range r.Values {
				a.sum[i] += v * float64(s.Windows)
				a.present[i] += s.Windows
				if first.Kinds[i] == Mode && v != 0 {
					if a.modes[i] == nil {
						a.modes[i] = map[float64]int{}
					}
					a.modes[i][v] += s.Windows
				}
			}
		}
	}
	res.Windows = totalWindows
	rows := make([]Row, 0, len(accs))
	flat := make([]float64, 0, len(accs)*len(first.Columns))
	for _, k := range order {
		a := accs[k]
		start := len(flat)
		for i := range first.Columns {
			switch first.Kinds[i] {
			case Counter:
				flat = append(flat, a.sum[i]/float64(totalWindows))
			case Mode:
				var best float64
				bestW := -1
				for v, w := range a.modes[i] {
					if w > bestW || (w == bestW && v < best) {
						best, bestW = v, w
					}
				}
				flat = append(flat, best)
			default:
				if a.present[i] > 0 {
					flat = append(flat, a.sum[i]/float64(a.present[i]))
				} else {
					flat = append(flat, 0)
				}
			}
		}
		rows = append(rows, Row{Key: k, Values: flat[start:len(flat):len(flat)]})
	}
	return rows, nil
}

// rowLess is the report order: descending value in the order column,
// ties broken by ascending key.
func rowLess(a, b *Row, idx int) bool {
	av, bv := a.Values[idx], b.Values[idx]
	if av != bv {
		return av > bv
	}
	return a.Key < b.Key
}

// topRows returns the strongest k rows by the order column (all rows
// when k is 0 or exceeds the row count), sorted in report order. For
// small k over a large row set it runs a partial selection over a
// size-k min-heap — the spacesaving Cache.Top idiom — instead of
// sorting everything.
func topRows(rows []Row, orderIdx, k int) []Row {
	if len(rows) == 0 {
		return nil
	}
	if orderIdx >= len(rows[0].Values) {
		// Zero-column projection: nothing to order by; return as-is.
		return rows
	}
	if k <= 0 || k >= len(rows) {
		out := append([]Row(nil), rows...)
		sort.SliceStable(out, func(i, j int) bool { return rowLess(&out[i], &out[j], orderIdx) })
		return out
	}
	// Min-heap of the k strongest rows seen so far, keyed by report
	// order so the root is the weakest survivor.
	sel := make([]Row, 0, k)
	for ri := range rows {
		r := &rows[ri]
		if len(sel) < k {
			sel = append(sel, *r)
			i := len(sel) - 1
			for i > 0 {
				p := (i - 1) / 2
				if !rowLess(&sel[p], &sel[i], orderIdx) {
					break
				}
				sel[i], sel[p] = sel[p], sel[i]
				i = p
			}
			continue
		}
		if !rowLess(r, &sel[0], orderIdx) {
			continue // weaker than the weakest survivor
		}
		sel[0] = *r
		i := 0
		for {
			l := 2*i + 1
			if l >= k {
				break
			}
			m := l
			if rt := l + 1; rt < k && rowLess(&sel[l], &sel[rt], orderIdx) {
				m = rt
			}
			if !rowLess(&sel[i], &sel[m], orderIdx) {
				break
			}
			sel[i], sel[m] = sel[m], sel[i]
			i = m
		}
	}
	sort.SliceStable(sel, func(i, j int) bool { return rowLess(&sel[i], &sel[j], orderIdx) })
	return sel
}
