package tsv

import (
	"errors"
	"math"
)

// ErrUnknownColumn is returned by projections and queries that name a
// column the snapshot schema does not have.
var ErrUnknownColumn = errors.New("tsv: unknown column")

// Backend names accepted by NewStoreBackend and the -store flag.
const (
	BackendTSV      = "tsv"
	BackendColumnar = "columnar"
)

// SnapshotStore is the persistence layer behind the Observatory read
// and write paths: the TSV backend (NewStore) and the columnar backend
// (NewColumnarStore) both satisfy it, so the cascade, the query engine,
// the web UI and the tools work against either. Both backends are the
// same *Store machinery under different codecs, but consumers should
// hold the interface so a remote or sharded store can slot in later.
type SnapshotStore interface {
	// Backend names the codec: BackendTSV or BackendColumnar.
	Backend() string
	// Dir returns the store's root directory.
	Dir() string
	// FileName returns the name Put would commit s under — the
	// backend's extension applied to the canonical agg-level-start stem.
	FileName(s *Snapshot) string
	// Put commits one snapshot crash-safely.
	Put(s *Snapshot) error
	// Get loads the snapshot for (agg, level, start); a file that exists
	// but cannot be decoded yields a *CorruptError.
	Get(agg string, level Level, start int64) (*Snapshot, error)
	// GetProjected is Get restricted to a projection: only the requested
	// columns are materialized and only rows passing the key and range
	// predicates are returned. The columnar backend skips undecoded
	// blocks; the TSV backend decodes fully and filters, producing an
	// identical result.
	GetProjected(agg string, level Level, start int64, proj *Projection) (*Snapshot, error)
	// List returns the stored window starts for (agg, level), ascending.
	List(agg string, level Level) ([]int64, error)
	// Cascade and CascadeAll build upper-level aggregates from closed
	// windows; Retention deletes aggregated fine-grained files beyond
	// the Retain caps.
	Cascade(agg string, now int64) error
	CascadeAll(aggs []string, now int64) error
	Retention(agg string) error
}

// Pred is one predicate for pushdown: keep rows whose value in Col lies
// in [Min, Max] (inclusive). Use -Inf / +Inf for open ends. NaN values
// never satisfy a predicate.
type Pred struct {
	Col string
	Min float64
	Max float64
}

// matches reports whether v satisfies the predicate. NaN fails both
// comparisons, so NaN rows are always filtered out.
func (p Pred) matches(v float64) bool { return v >= p.Min && v <= p.Max }

// AtLeast returns the one-sided predicate col >= min.
func AtLeast(col string, min float64) Pred {
	return Pred{Col: col, Min: min, Max: math.Inf(1)}
}

// Projection restricts what GetProjected materializes: a column subset,
// an exact-key filter, and value-range predicates. The zero value (or
// nil) selects everything.
type Projection struct {
	// Columns lists the columns to materialize, in the requested order;
	// nil or empty means all columns in file order.
	Columns []string
	// Key, when non-empty, keeps only rows with exactly this key. The
	// columnar backend answers a negative from the per-file bloom index
	// without decoding any row data.
	Key string
	// Where keeps only rows satisfying every predicate. Predicate
	// columns do not need to appear in Columns.
	Where []Pred
}

// empty reports whether the projection selects everything, i.e. Get and
// GetProjected would return the same snapshot.
func (p *Projection) empty() bool {
	return p == nil || (len(p.Columns) == 0 && p.Key == "" && len(p.Where) == 0)
}

// applyProjection is the reference implementation of projection +
// predicate evaluation over a fully decoded snapshot. The TSV backend
// uses it directly; the columnar fast path must produce byte-identical
// results (asserted by TestProjectionEquivalence). snap is not
// modified.
func applyProjection(snap *Snapshot, proj *Projection) (*Snapshot, error) {
	if proj.empty() {
		return snap, nil
	}
	// Resolve projected and predicate columns against the schema first,
	// so an unknown name is a typed error rather than a silent zero.
	outCols := proj.Columns
	if len(outCols) == 0 {
		outCols = snap.Columns
	}
	colIdx := make([]int, len(outCols))
	outKinds := make([]Kind, len(outCols))
	for i, name := range outCols {
		j, err := snap.columnIndex(name)
		if err != nil {
			return nil, err
		}
		colIdx[i] = j
		outKinds[i] = snap.Kinds[j]
	}
	predIdx := make([]int, len(proj.Where))
	for i, p := range proj.Where {
		j, err := snap.columnIndex(p.Col)
		if err != nil {
			return nil, err
		}
		predIdx[i] = j
	}
	out := &Snapshot{
		Aggregation: snap.Aggregation,
		Level:       snap.Level,
		Start:       snap.Start,
		Columns:     append([]string(nil), outCols...),
		Kinds:       outKinds,
		TotalBefore: snap.TotalBefore,
		TotalAfter:  snap.TotalAfter,
		Windows:     snap.Windows,
	}
	var flat []float64
	for ri := range snap.Rows {
		r := &snap.Rows[ri]
		if proj.Key != "" && r.Key != proj.Key {
			continue
		}
		keep := true
		for pi, p := range proj.Where {
			if !p.matches(r.Values[predIdx[pi]]) {
				keep = false
				break
			}
		}
		if !keep {
			continue
		}
		if len(flat)+len(colIdx) > cap(flat) {
			chunk := len(colIdx) * 256
			if chunk < 1024 {
				chunk = 1024
			}
			flat = make([]float64, 0, chunk)
		}
		start := len(flat)
		for _, j := range colIdx {
			flat = append(flat, r.Values[j])
		}
		out.Rows = append(out.Rows, Row{Key: r.Key, Values: flat[start:len(flat):len(flat)]})
	}
	return out, nil
}

// columnIndex resolves a column name to its index, with a typed error
// for unknown names.
func (s *Snapshot) columnIndex(name string) (int, error) {
	for i, c := range s.Columns {
		if c == name {
			return i, nil
		}
	}
	return 0, &UnknownColumnError{Column: name}
}

// UnknownColumnError names the missing column; it matches
// ErrUnknownColumn under errors.Is.
type UnknownColumnError struct{ Column string }

// Error implements error.
func (e *UnknownColumnError) Error() string { return "tsv: unknown column " + e.Column }

// Is matches ErrUnknownColumn.
func (e *UnknownColumnError) Is(target error) bool { return target == ErrUnknownColumn }
