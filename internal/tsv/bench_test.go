package tsv

import (
	"fmt"
	"testing"
)

// benchStore fills a store of the given backend with nWindows minutely
// snapshots of nRows objects and wide paper-like schemas (many columns,
// only a few of which any one query touches).
func benchStore(b *testing.B, backend string, nWindows, nRows int) *Store {
	b.Helper()
	st, err := NewStoreBackend(b.TempDir(), backend)
	if err != nil {
		b.Fatal(err)
	}
	cols := make([]string, 40)
	kinds := make([]Kind, 40)
	for i := range cols {
		cols[i] = fmt.Sprintf("f%02d", i)
		kinds[i] = Counter
		if i%3 == 1 {
			kinds[i] = Gauge
		}
	}
	cols[0], cols[1] = "hits", "delay"
	x := xorshift(1234)
	for w := 0; w < nWindows; w++ {
		s := &Snapshot{
			Aggregation: "srvip", Level: Minutely, Start: int64(w) * 60,
			Columns: cols, Kinds: kinds, Windows: 1,
			TotalBefore: 1000, TotalAfter: 900,
		}
		flat := make([]float64, 0, nRows*len(cols))
		for r := 0; r < nRows; r++ {
			start := len(flat)
			for c := range cols {
				if kinds[c] == Gauge {
					flat = append(flat, x.float())
				} else {
					flat = append(flat, float64(x.next()%100000))
				}
			}
			s.Rows = append(s.Rows, Row{
				Key:    fmt.Sprintf("obj-%05d", r),
				Values: flat[start:len(flat):len(flat)],
			})
		}
		if err := st.Put(s); err != nil {
			b.Fatal(err)
		}
	}
	return st
}

// BenchmarkQueryTopK is the headline read-path comparison: a top-10
// query projecting 2 of 40 columns over 10 windows of 5000 rows. The
// TSV backend must parse every cell of every file; the columnar backend
// decodes only the projected column blocks.
func BenchmarkQueryTopK(b *testing.B) {
	for _, backend := range []string{BackendTSV, BackendColumnar} {
		b.Run(backend, func(b *testing.B) {
			st := benchStore(b, backend, 10, 5000)
			q := Query{
				Agg: "srvip", Level: Minutely,
				Columns: []string{"delay"}, OrderBy: "hits", K: 10,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := RunQuery(st, q)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != 10 {
					b.Fatal("short result")
				}
			}
		})
	}
}

// BenchmarkQueryPointLookup measures a single-key query over the same
// corpus — the case the columnar bloom index short-circuits on files
// not holding the key (here every file holds it, so this measures
// selective row materialization instead).
func BenchmarkQueryPointLookup(b *testing.B) {
	for _, backend := range []string{BackendTSV, BackendColumnar} {
		b.Run(backend, func(b *testing.B) {
			st := benchStore(b, backend, 10, 5000)
			q := Query{Agg: "srvip", Level: Minutely, Key: "obj-02500", Columns: []string{"hits"}}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := RunQuery(st, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkColumnarCascade compares a full minutely->decaminutely fold
// on each backend: the cascade reads every column, so this bounds how
// much the columnar codec costs when projection cannot help.
func BenchmarkColumnarCascade(b *testing.B) {
	for _, backend := range []string{BackendTSV, BackendColumnar} {
		b.Run(backend, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				st := benchStore(b, backend, 10, 2000)
				b.StartTimer()
				if err := st.Cascade("srvip", 600); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkListLevel measures the directory-listing path the query
// engine and cascade lean on: cold = every call rescans (the old
// behavior, forced by invalidation), warm = served from the level cache.
func BenchmarkListLevel(b *testing.B) {
	st := benchStore(b, BackendTSV, 200, 2)
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st.invalidateLevel(Minutely)
			if _, err := st.List("srvip", Minutely); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		if _, err := st.List("srvip", Minutely); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.List("srvip", Minutely); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEncodeColumnar and BenchmarkDecodeColumnar isolate the codec.
func BenchmarkEncodeColumnar(b *testing.B) {
	snap := randomSnapshot(5, 5000, false)
	var n int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := EncodeColumnar(snap, discardWriter{})
		if err != nil {
			b.Fatal(err)
		}
		n = m
	}
	b.SetBytes(n)
}

func BenchmarkDecodeColumnar(b *testing.B) {
	data := encodeToBytes(b, randomSnapshot(5, 5000, false))
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeColumnar(data); err != nil {
			b.Fatal(err)
		}
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
