package tsv

import (
	"os"
	"path/filepath"
	"sort"
)

// Store manages snapshot files in a directory, running the aggregation
// cascade (minutely → 10-minutely → hourly → …) and the retention
// policy that deletes old fine-grained files once coarser aggregates
// exist (paper §2.4).
type Store struct {
	dir string
	// Retain caps how many files of each level are kept; zero means
	// unlimited. Older files beyond the cap are deleted by Retention.
	Retain map[Level]int
}

// NewStore returns a store rooted at dir, creating it if needed.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir, Retain: map[Level]int{}}, nil
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

// Put writes snap as a file.
func (st *Store) Put(snap *Snapshot) error {
	f, err := os.CreateTemp(st.dir, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := snap.WriteTo(f); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	return os.Rename(f.Name(), filepath.Join(st.dir, snap.FileName()))
}

// Get loads the snapshot for (agg, level, start), or an error.
func (st *Store) Get(agg string, level Level, start int64) (*Snapshot, error) {
	name := (&Snapshot{Aggregation: agg, Level: level, Start: start}).FileName()
	f, err := os.Open(filepath.Join(st.dir, name))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Read(f)
	if err != nil {
		return nil, err
	}
	s.Aggregation, s.Level, s.Start = agg, level, start
	return s, nil
}

// List returns the start times of stored files for (agg, level),
// ascending.
func (st *Store) List(agg string, level Level) ([]int64, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, err
	}
	var starts []int64
	for _, e := range entries {
		a, l, start, err := ParseFileName(e.Name())
		if err != nil || a != agg || l != level {
			continue
		}
		starts = append(starts, start)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	return starts, nil
}

// Cascade aggregates complete groups of files into the next level, for
// every level below Yearly. A group is complete when GroupSize files of
// the lower level fall within one upper-level window and that window has
// closed (its end is at or before now). Newly produced files trigger
// further cascading.
func (st *Store) Cascade(agg string, now int64) error {
	for level := Minutely; level < MaxLevel; level++ {
		upper := level + 1
		starts, err := st.List(agg, level)
		if err != nil {
			return err
		}
		groups := map[int64][]int64{}
		for _, s := range starts {
			w := s - s%upper.Seconds()
			groups[w] = append(groups[w], s)
		}
		ws := make([]int64, 0, len(groups))
		for w := range groups {
			ws = append(ws, w)
		}
		sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
		for _, w := range ws {
			if w+upper.Seconds() > now {
				continue // window still open
			}
			if _, err := st.Get(agg, upper, w); err == nil {
				continue // already aggregated
			}
			var snaps []*Snapshot
			for _, s := range groups[w] {
				snap, err := st.Get(agg, level, s)
				if err != nil {
					return err
				}
				snaps = append(snaps, snap)
			}
			out, err := Aggregate(snaps)
			if err != nil {
				return err
			}
			out.Start = w
			if err := st.Put(out); err != nil {
				return err
			}
		}
	}
	return nil
}

// Retention deletes the oldest files of each level beyond the configured
// Retain cap, but never deletes a file that has not yet been folded into
// an existing upper-level aggregate.
func (st *Store) Retention(agg string) error {
	for level := Minutely; level <= MaxLevel; level++ {
		keep := st.Retain[level]
		if keep <= 0 {
			continue
		}
		starts, err := st.List(agg, level)
		if err != nil {
			return err
		}
		if len(starts) <= keep {
			continue
		}
		var upperStarts map[int64]bool
		if level < MaxLevel {
			us, err := st.List(agg, level+1)
			if err != nil {
				return err
			}
			upperStarts = make(map[int64]bool, len(us))
			for _, u := range us {
				upperStarts[u] = true
			}
		}
		for _, s := range starts[:len(starts)-keep] {
			if level < MaxLevel {
				w := s - s%(level+1).Seconds()
				if !upperStarts[w] {
					continue // not yet aggregated; keep
				}
			}
			name := (&Snapshot{Aggregation: agg, Level: level, Start: s}).FileName()
			if err := os.Remove(filepath.Join(st.dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}
