package tsv

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dnsobservatory/internal/metrics"
)

// storeCodec is one on-disk snapshot representation. The store is
// generic over it: cascade, retention, crash-safety and listing are
// identical for every backend, only the bytes differ.
type storeCodec struct {
	name   string // backend name (BackendTSV, BackendColumnar)
	ext    string // file extension, with dot
	encode func(*Snapshot, io.Writer) (int64, error)
	decode func(data []byte, proj *Projection, stats *colStats) (*Snapshot, error)
}

var tsvCodec = storeCodec{
	name:   BackendTSV,
	ext:    ".tsv",
	encode: (*Snapshot).WriteTo,
	decode: func(data []byte, proj *Projection, stats *colStats) (*Snapshot, error) {
		// The row-oriented text format cannot skip anything: decode
		// fully, then filter. The result is identical to the columnar
		// fast path by construction.
		s, err := Read(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		return applyProjection(s, proj)
	},
}

var columnarCodec = storeCodec{
	name:   BackendColumnar,
	ext:    ".col",
	encode: EncodeColumnar,
	decode: decodeColumnar,
}

// ErrCorruptSnapshot matches (via errors.Is) any snapshot file the store
// could open but not parse — truncated, bit-rotted, or half-written.
// Callers that walk many files (Cascade) skip and count such files
// instead of aborting, since one bad file must not take down an entire
// aggregation level.
var ErrCorruptSnapshot = errors.New("tsv: corrupt snapshot file")

// CorruptError reports an unparsable snapshot file. It matches
// ErrCorruptSnapshot under errors.Is and unwraps to the codec error.
type CorruptError struct {
	Path string
	Err  error
}

// Error implements error.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("tsv: corrupt snapshot %s: %v", e.Path, e.Err)
}

// Unwrap returns the underlying codec error.
func (e *CorruptError) Unwrap() error { return e.Err }

// Is matches ErrCorruptSnapshot.
func (e *CorruptError) Is(target error) bool { return target == ErrCorruptSnapshot }

// Store manages snapshot files in a directory, running the aggregation
// cascade (minutely → 10-minutely → hourly → …) and the retention
// policy that deletes old fine-grained files once coarser aggregates
// exist (paper §2.4).
//
// Writes are crash-safe: snapshots land under temporary names and are
// renamed into place only once fully written, NewStore reaps temp files
// orphaned by an earlier crash, and corrupt files are detected (typed
// ErrCorruptSnapshot) and skipped with accounting rather than trusted.
type Store struct {
	dir   string
	codec storeCodec
	// Retain caps how many files of each level are kept; zero means
	// unlimited. Older files beyond the cap are deleted by Retention.
	Retain map[Level]int
	// FsyncOnPut syncs the snapshot file (and the directory, so the
	// rename itself is durable) before Put returns. Off by default:
	// minutely snapshots are reproducible from upstream, so most
	// deployments prefer throughput; turn it on when the store is the
	// only copy of the data.
	FsyncOnPut bool
	// WrapWriter, when set, wraps the snapshot file writer on every Put
	// — the chaos-injection point for failing and short writes. Nil in
	// production.
	WrapWriter func(io.Writer) io.Writer
	// Parallelism bounds the worker pool CascadeAll (and Cascade) uses to
	// build upper-level aggregates; 0 means GOMAXPROCS. 1 gives the fully
	// serial behavior. Output files are byte-identical at any setting:
	// jobs within a level write disjoint files from identical inputs.
	Parallelism int

	corruptSkipped atomic.Uint64
	tmpSeq         atomic.Uint64
	puts           atomic.Uint64
	rowsWritten    atomic.Uint64
	fsyncs         atomic.Uint64

	// The per-level directory-listing cache: the read path (cascade,
	// retention, web UI listings, range queries) used to rescan the
	// directory on every call. listMu guards the cache maps; the hit and
	// miss tallies are read-through metrics.
	listMu     sync.Mutex
	listCache  [MaxLevel + 1]map[string][]int64
	listHits   atomic.Uint64
	listMisses atomic.Uint64

	// Selective-read accounting from the columnar codec.
	blocksDecoded atomic.Uint64
	blocksSkipped atomic.Uint64
	bloomSkips    atomic.Uint64

	// cascadeSeconds[level] is the per-level cascade duration histogram,
	// populated by Instrument; nil slots are simply not observed.
	cascadeSeconds [MaxLevel]*metrics.Histogram
}

var _ SnapshotStore = (*Store)(nil)

// Instrument registers the store's counters with reg (rows written,
// puts, fsyncs, corrupt-skips) and creates the per-level cascade
// duration histograms. Counters are registered read-through: the
// store's own atomics stay the source of truth and the write path gains
// no extra work. Call once per store; safe to call again after reuse
// (the function slots are replaced).
func (st *Store) Instrument(reg *metrics.Registry) {
	reg.CounterFunc("dnsobs_store_puts_total", "snapshot files committed by Put", st.Puts)
	reg.CounterFunc("dnsobs_store_rows_written_total", "TSV rows across committed snapshots", st.RowsWritten)
	reg.CounterFunc("dnsobs_store_fsyncs_total", "file and directory fsyncs issued by Put", st.Fsyncs)
	reg.CounterFunc("dnsobs_store_corrupt_skips_total", "corrupt snapshot files skipped by the cascade", st.CorruptSkipped)
	reg.CounterFunc("dnsobs_store_list_cache_hits_total", "level listings served from the cached directory index", st.ListCacheHits)
	reg.CounterFunc("dnsobs_store_list_cache_misses_total", "level listings that scanned the store directory", st.ListCacheMisses)
	reg.CounterFunc("dnsobs_store_blocks_decoded_total", "columnar value blocks decoded", st.BlocksDecoded)
	reg.CounterFunc("dnsobs_store_blocks_skipped_total", "columnar value blocks skipped by projection or predicate pushdown", st.BlocksSkipped)
	reg.CounterFunc("dnsobs_store_bloom_skips_total", "point lookups answered negatively by the per-file key bloom", st.BloomSkips)
	for level := Minutely; level < MaxLevel; level++ {
		st.cascadeSeconds[level] = reg.Histogram("dnsobs_store_cascade_seconds",
			"duration of one cascade pass per source level", metrics.DurationBuckets,
			"level", level.Name())
	}
}

// Puts returns how many snapshot files Put has committed.
func (st *Store) Puts() uint64 { return st.puts.Load() }

// RowsWritten returns the total TSV rows across committed snapshots.
func (st *Store) RowsWritten() uint64 { return st.rowsWritten.Load() }

// Fsyncs returns how many fsyncs (file and directory) Put has issued.
func (st *Store) Fsyncs() uint64 { return st.fsyncs.Load() }

// NewStore returns a TSV-backed store rooted at dir, creating it if
// needed and deleting any .tmp-* files a crashed predecessor left
// behind (they were never renamed into place, so they hold no committed
// data).
func NewStore(dir string) (*Store, error) {
	return newStore(dir, tsvCodec)
}

// NewColumnarStore returns a store using the columnar snapshot format:
// same directory layout, cascade and crash-safety as the TSV store, but
// files decode by column with block skipping instead of row-by-row text
// parsing.
func NewColumnarStore(dir string) (*Store, error) {
	return newStore(dir, columnarCodec)
}

// NewStoreBackend returns a store with the named backend: BackendTSV or
// BackendColumnar. It is the -store flag's constructor.
func NewStoreBackend(dir, backend string) (*Store, error) {
	switch backend {
	case BackendTSV:
		return NewStore(dir)
	case BackendColumnar:
		return NewColumnarStore(dir)
	}
	return nil, fmt.Errorf("tsv: unknown store backend %q (want %q or %q)",
		backend, BackendTSV, BackendColumnar)
}

func newStore(dir string, codec storeCodec) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") && !e.IsDir() {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return nil, err
			}
		}
	}
	return &Store{dir: dir, codec: codec, Retain: map[Level]int{}}, nil
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

// Backend returns the store's codec name: BackendTSV or
// BackendColumnar.
func (st *Store) Backend() string { return st.codec.name }

// FileName returns the name Put commits s under: the canonical
// agg-level-start stem with the backend's extension.
func (st *Store) FileName(s *Snapshot) string { return s.fileStem() + st.codec.ext }

// CorruptSkipped returns how many corrupt snapshot files Cascade has
// skipped over the store's lifetime.
func (st *Store) CorruptSkipped() uint64 { return st.corruptSkipped.Load() }

// Put writes snap as a file: into a temp name first, renamed into place
// only after a fully successful write (and fsync, when configured), so
// a crash or write error never leaves a half-written snapshot under a
// committed name.
func (st *Store) Put(snap *Snapshot) error {
	// A store-scoped sequence number plus the pid gives a unique name in
	// one shot — os.CreateTemp's random-name retry loop costs noticeably
	// more when the cascade writes hundreds of small files. The .tmp-
	// prefix is the crash-recovery contract: NewStore reaps it.
	tmp := filepath.Join(st.dir, fmt.Sprintf(".tmp-%d-%d", os.Getpid(), st.tmpSeq.Add(1)))
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return err
	}
	var w io.Writer = f
	if st.WrapWriter != nil {
		w = st.WrapWriter(w)
	}
	if _, err := st.codec.encode(snap, w); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if st.FsyncOnPut {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(f.Name())
			return err
		}
		st.fsyncs.Add(1)
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), filepath.Join(st.dir, st.FileName(snap))); err != nil {
		os.Remove(f.Name())
		return err
	}
	st.notePut(snap.Aggregation, snap.Level, snap.Start)
	st.puts.Add(1)
	st.rowsWritten.Add(uint64(len(snap.Rows)))
	if st.FsyncOnPut {
		if err := syncDir(st.dir); err != nil {
			return err
		}
		st.fsyncs.Add(1)
	}
	return nil
}

// syncDir fsyncs a directory so a rename within it survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Get loads the snapshot for (agg, level, start). A file that exists
// but cannot be parsed yields a *CorruptError (matching
// ErrCorruptSnapshot); a missing file yields the usual fs.ErrNotExist.
func (st *Store) Get(agg string, level Level, start int64) (*Snapshot, error) {
	return st.GetProjected(agg, level, start, nil)
}

// GetProjected loads the snapshot restricted to proj: only the
// projected columns are materialized and only rows passing the key and
// range predicates are returned. The columnar backend skips whole
// blocks and answers negative point lookups from the bloom index; the
// TSV backend decodes fully and filters, with identical results. A nil
// or zero proj is a plain Get.
func (st *Store) GetProjected(agg string, level Level, start int64, proj *Projection) (*Snapshot, error) {
	snap := &Snapshot{Aggregation: agg, Level: level, Start: start}
	path := filepath.Join(st.dir, st.FileName(snap))
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cs colStats
	s, err := st.codec.decode(data, proj, &cs)
	st.blocksDecoded.Add(cs.blocksDecoded)
	st.blocksSkipped.Add(cs.blocksSkipped)
	st.bloomSkips.Add(cs.bloomSkips)
	if err != nil {
		if errors.Is(err, ErrUnknownColumn) {
			// A schema mismatch between query and file is the caller's
			// error, not file damage.
			return nil, err
		}
		return nil, &CorruptError{Path: path, Err: err}
	}
	s.Aggregation, s.Level, s.Start = agg, level, start
	return s, nil
}

// BlocksDecoded, BlocksSkipped and BloomSkips report the columnar
// codec's selective-read tallies (always zero for the TSV backend).
func (st *Store) BlocksDecoded() uint64 { return st.blocksDecoded.Load() }

// BlocksSkipped returns how many column blocks pushdown skipped.
func (st *Store) BlocksSkipped() uint64 { return st.blocksSkipped.Load() }

// BloomSkips returns how many point lookups the bloom index answered
// negatively without decoding row data.
func (st *Store) BloomSkips() uint64 { return st.bloomSkips.Load() }

// List returns the start times of stored files for (agg, level),
// ascending. The result is the caller's to keep.
func (st *Store) List(agg string, level Level) ([]int64, error) {
	byAgg, err := st.listLevel(level)
	if err != nil {
		return nil, err
	}
	return byAgg[agg], nil
}

// ListCacheHits and ListCacheMisses report directory-listing cache
// effectiveness.
func (st *Store) ListCacheHits() uint64 { return st.listHits.Load() }

// ListCacheMisses returns how many listLevel calls had to scan the
// directory.
func (st *Store) ListCacheMisses() uint64 { return st.listMisses.Load() }

// listLevel returns the start times of every stored file at one level,
// grouped by aggregation and ascending. The listing is cached per
// level: Put inserts into it and Retention invalidates it, so the read
// path (cascade grouping, web UI listings, query-engine ranges) stops
// paying a full directory scan per call. The returned map is a copy the
// caller may keep.
func (st *Store) listLevel(level Level) (map[string][]int64, error) {
	st.listMu.Lock()
	defer st.listMu.Unlock()
	cached := st.listCache[level]
	if cached == nil {
		st.listMisses.Add(1)
		entries, err := os.ReadDir(st.dir)
		if err != nil {
			return nil, err
		}
		cached = map[string][]int64{}
		for _, e := range entries {
			a, l, start, ext, err := parseStoreFileName(e.Name())
			if err != nil || l != level || ext != st.codec.ext {
				continue
			}
			cached[a] = append(cached[a], start)
		}
		for _, starts := range cached {
			sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
		}
		st.listCache[level] = cached
	} else {
		st.listHits.Add(1)
	}
	out := make(map[string][]int64, len(cached))
	for a, starts := range cached {
		out[a] = append([]int64(nil), starts...)
	}
	return out, nil
}

// notePut inserts a freshly committed file into the level's cached
// listing, keeping it warm through a cascade (which lists the level it
// just wrote on the next pass). A cold cache stays cold: the next
// listLevel scan will see the file.
func (st *Store) notePut(agg string, level Level, start int64) {
	st.listMu.Lock()
	defer st.listMu.Unlock()
	m := st.listCache[level]
	if m == nil {
		return
	}
	starts := m[agg]
	i := sort.Search(len(starts), func(i int) bool { return starts[i] >= start })
	if i < len(starts) && starts[i] == start {
		return // overwrite of an existing window
	}
	starts = append(starts, 0)
	copy(starts[i+1:], starts[i:])
	starts[i] = start
	m[agg] = starts
}

// invalidateLevel drops one level's cached listing (after Retention
// deletes files).
func (st *Store) invalidateLevel(level Level) {
	st.listMu.Lock()
	st.listCache[level] = nil
	st.listMu.Unlock()
}

// Cascade aggregates complete groups of files into the next level, for
// every level below Yearly. A group is complete when GroupSize files of
// the lower level fall within one upper-level window and that window has
// closed (its end is at or before now). Newly produced files trigger
// further cascading.
//
// A corrupt input file is skipped and counted (CorruptSkipped) rather
// than failing the level: the upper aggregate is built from whatever
// parses, matching the codec's contract that every committed file was
// written whole — anything else is damage to route around.
func (st *Store) Cascade(agg string, now int64) error {
	return st.CascadeAll([]string{agg}, now)
}

// cascadeJob is one upper-level aggregate to build: the lower-level
// start times of agg that fall into the upper window at window.
type cascadeJob struct {
	agg    string
	level  Level
	window int64
	starts []int64
}

// CascadeAll runs the cascade for every aggregation at once. Levels are
// sequential (upper levels consume the files lower levels just wrote),
// but within a level every (aggregation, closed window) aggregate is an
// independent job — disjoint input files, one distinct output file —
// fanned over a worker pool bounded by Parallelism. The produced files
// are identical to len(aggs) serial Cascade calls; only the wall clock
// differs.
func (st *Store) CascadeAll(aggs []string, now int64) error {
	workers := st.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	for level := Minutely; level < MaxLevel; level++ {
		upper := level + 1
		// One directory scan serves every aggregation at this level.
		byAgg, err := st.listLevel(level)
		if err != nil {
			return err
		}
		var jobs []cascadeJob
		for _, agg := range aggs {
			starts := byAgg[agg]
			groups := map[int64][]int64{}
			for _, s := range starts {
				w := s - s%upper.Seconds()
				groups[w] = append(groups[w], s)
			}
			ws := make([]int64, 0, len(groups))
			for w := range groups {
				ws = append(ws, w)
			}
			sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
			for _, w := range ws {
				if w+upper.Seconds() > now {
					continue // window still open
				}
				jobs = append(jobs, cascadeJob{agg: agg, level: level, window: w, starts: groups[w]})
			}
		}
		if len(jobs) == 0 {
			continue
		}
		levelStart := time.Now()
		var (
			wg      sync.WaitGroup
			sem     = make(chan struct{}, workers)
			errMu   sync.Mutex
			pending error
		)
		for _, j := range jobs {
			wg.Add(1)
			sem <- struct{}{}
			go func(j cascadeJob) {
				defer func() { <-sem; wg.Done() }()
				if err := st.buildUpper(j); err != nil {
					errMu.Lock()
					if pending == nil {
						pending = err
					}
					errMu.Unlock()
				}
			}(j)
		}
		wg.Wait()
		if h := st.cascadeSeconds[level]; h != nil {
			h.Observe(time.Since(levelStart).Seconds())
		}
		if pending != nil {
			return pending
		}
	}
	return nil
}

// buildUpper aggregates one closed upper-level window from its
// lower-level files, skipping (and counting) corrupt inputs.
func (st *Store) buildUpper(j cascadeJob) error {
	upper := j.level + 1
	if _, err := st.Get(j.agg, upper, j.window); err == nil {
		return nil // already aggregated
	} else if errors.Is(err, ErrCorruptSnapshot) {
		// A corrupt upper file: rebuild it from the lower level.
		st.corruptSkipped.Add(1)
	}
	var snaps []*Snapshot
	for _, s := range j.starts {
		snap, err := st.Get(j.agg, j.level, s)
		if err != nil {
			if errors.Is(err, ErrCorruptSnapshot) {
				st.corruptSkipped.Add(1)
				continue
			}
			return err
		}
		snaps = append(snaps, snap)
	}
	if len(snaps) == 0 {
		return nil // every input corrupt; nothing to aggregate
	}
	out, err := Aggregate(snaps)
	if err != nil {
		return err
	}
	out.Start = j.window
	return st.Put(out)
}

// Retention deletes the oldest files of each level beyond the configured
// Retain cap, but never deletes a file that has not yet been folded into
// an existing upper-level aggregate.
func (st *Store) Retention(agg string) error {
	for level := Minutely; level <= MaxLevel; level++ {
		keep := st.Retain[level]
		if keep <= 0 {
			continue
		}
		starts, err := st.List(agg, level)
		if err != nil {
			return err
		}
		if len(starts) <= keep {
			continue
		}
		var upperStarts map[int64]bool
		if level < MaxLevel {
			us, err := st.List(agg, level+1)
			if err != nil {
				return err
			}
			upperStarts = make(map[int64]bool, len(us))
			for _, u := range us {
				upperStarts[u] = true
			}
		}
		removed := false
		for _, s := range starts[:len(starts)-keep] {
			if level < MaxLevel {
				w := s - s%(level+1).Seconds()
				if !upperStarts[w] {
					continue // not yet aggregated; keep
				}
			}
			name := st.FileName(&Snapshot{Aggregation: agg, Level: level, Start: s})
			if err := os.Remove(filepath.Join(st.dir, name)); err != nil {
				st.invalidateLevel(level)
				return err
			}
			removed = true
		}
		if removed {
			st.invalidateLevel(level)
		}
	}
	return nil
}
