package tsv

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dnsobservatory/internal/metrics"
)

// ErrCorruptSnapshot matches (via errors.Is) any snapshot file the store
// could open but not parse — truncated, bit-rotted, or half-written.
// Callers that walk many files (Cascade) skip and count such files
// instead of aborting, since one bad file must not take down an entire
// aggregation level.
var ErrCorruptSnapshot = errors.New("tsv: corrupt snapshot file")

// CorruptError reports an unparsable snapshot file. It matches
// ErrCorruptSnapshot under errors.Is and unwraps to the codec error.
type CorruptError struct {
	Path string
	Err  error
}

// Error implements error.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("tsv: corrupt snapshot %s: %v", e.Path, e.Err)
}

// Unwrap returns the underlying codec error.
func (e *CorruptError) Unwrap() error { return e.Err }

// Is matches ErrCorruptSnapshot.
func (e *CorruptError) Is(target error) bool { return target == ErrCorruptSnapshot }

// Store manages snapshot files in a directory, running the aggregation
// cascade (minutely → 10-minutely → hourly → …) and the retention
// policy that deletes old fine-grained files once coarser aggregates
// exist (paper §2.4).
//
// Writes are crash-safe: snapshots land under temporary names and are
// renamed into place only once fully written, NewStore reaps temp files
// orphaned by an earlier crash, and corrupt files are detected (typed
// ErrCorruptSnapshot) and skipped with accounting rather than trusted.
type Store struct {
	dir string
	// Retain caps how many files of each level are kept; zero means
	// unlimited. Older files beyond the cap are deleted by Retention.
	Retain map[Level]int
	// FsyncOnPut syncs the snapshot file (and the directory, so the
	// rename itself is durable) before Put returns. Off by default:
	// minutely snapshots are reproducible from upstream, so most
	// deployments prefer throughput; turn it on when the store is the
	// only copy of the data.
	FsyncOnPut bool
	// WrapWriter, when set, wraps the snapshot file writer on every Put
	// — the chaos-injection point for failing and short writes. Nil in
	// production.
	WrapWriter func(io.Writer) io.Writer
	// Parallelism bounds the worker pool CascadeAll (and Cascade) uses to
	// build upper-level aggregates; 0 means GOMAXPROCS. 1 gives the fully
	// serial behavior. Output files are byte-identical at any setting:
	// jobs within a level write disjoint files from identical inputs.
	Parallelism int

	corruptSkipped atomic.Uint64
	tmpSeq         atomic.Uint64
	puts           atomic.Uint64
	rowsWritten    atomic.Uint64
	fsyncs         atomic.Uint64

	// cascadeSeconds[level] is the per-level cascade duration histogram,
	// populated by Instrument; nil slots are simply not observed.
	cascadeSeconds [MaxLevel]*metrics.Histogram
}

// Instrument registers the store's counters with reg (rows written,
// puts, fsyncs, corrupt-skips) and creates the per-level cascade
// duration histograms. Counters are registered read-through: the
// store's own atomics stay the source of truth and the write path gains
// no extra work. Call once per store; safe to call again after reuse
// (the function slots are replaced).
func (st *Store) Instrument(reg *metrics.Registry) {
	reg.CounterFunc("dnsobs_store_puts_total", "snapshot files committed by Put", st.Puts)
	reg.CounterFunc("dnsobs_store_rows_written_total", "TSV rows across committed snapshots", st.RowsWritten)
	reg.CounterFunc("dnsobs_store_fsyncs_total", "file and directory fsyncs issued by Put", st.Fsyncs)
	reg.CounterFunc("dnsobs_store_corrupt_skips_total", "corrupt snapshot files skipped by the cascade", st.CorruptSkipped)
	for level := Minutely; level < MaxLevel; level++ {
		st.cascadeSeconds[level] = reg.Histogram("dnsobs_store_cascade_seconds",
			"duration of one cascade pass per source level", metrics.DurationBuckets,
			"level", level.Name())
	}
}

// Puts returns how many snapshot files Put has committed.
func (st *Store) Puts() uint64 { return st.puts.Load() }

// RowsWritten returns the total TSV rows across committed snapshots.
func (st *Store) RowsWritten() uint64 { return st.rowsWritten.Load() }

// Fsyncs returns how many fsyncs (file and directory) Put has issued.
func (st *Store) Fsyncs() uint64 { return st.fsyncs.Load() }

// NewStore returns a store rooted at dir, creating it if needed and
// deleting any .tmp-* files a crashed predecessor left behind (they
// were never renamed into place, so they hold no committed data).
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") && !e.IsDir() {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return nil, err
			}
		}
	}
	return &Store{dir: dir, Retain: map[Level]int{}}, nil
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

// CorruptSkipped returns how many corrupt snapshot files Cascade has
// skipped over the store's lifetime.
func (st *Store) CorruptSkipped() uint64 { return st.corruptSkipped.Load() }

// Put writes snap as a file: into a temp name first, renamed into place
// only after a fully successful write (and fsync, when configured), so
// a crash or write error never leaves a half-written snapshot under a
// committed name.
func (st *Store) Put(snap *Snapshot) error {
	// A store-scoped sequence number plus the pid gives a unique name in
	// one shot — os.CreateTemp's random-name retry loop costs noticeably
	// more when the cascade writes hundreds of small files. The .tmp-
	// prefix is the crash-recovery contract: NewStore reaps it.
	tmp := filepath.Join(st.dir, fmt.Sprintf(".tmp-%d-%d", os.Getpid(), st.tmpSeq.Add(1)))
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return err
	}
	var w io.Writer = f
	if st.WrapWriter != nil {
		w = st.WrapWriter(w)
	}
	if _, err := snap.WriteTo(w); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if st.FsyncOnPut {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(f.Name())
			return err
		}
		st.fsyncs.Add(1)
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), filepath.Join(st.dir, snap.FileName())); err != nil {
		os.Remove(f.Name())
		return err
	}
	st.puts.Add(1)
	st.rowsWritten.Add(uint64(len(snap.Rows)))
	if st.FsyncOnPut {
		if err := syncDir(st.dir); err != nil {
			return err
		}
		st.fsyncs.Add(1)
	}
	return nil
}

// syncDir fsyncs a directory so a rename within it survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Get loads the snapshot for (agg, level, start). A file that exists
// but cannot be parsed yields a *CorruptError (matching
// ErrCorruptSnapshot); a missing file yields the usual fs.ErrNotExist.
func (st *Store) Get(agg string, level Level, start int64) (*Snapshot, error) {
	name := (&Snapshot{Aggregation: agg, Level: level, Start: start}).FileName()
	path := filepath.Join(st.dir, name)
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Read(f)
	if err != nil {
		return nil, &CorruptError{Path: path, Err: err}
	}
	s.Aggregation, s.Level, s.Start = agg, level, start
	return s, nil
}

// List returns the start times of stored files for (agg, level),
// ascending.
func (st *Store) List(agg string, level Level) ([]int64, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, err
	}
	var starts []int64
	for _, e := range entries {
		a, l, start, err := ParseFileName(e.Name())
		if err != nil || a != agg || l != level {
			continue
		}
		starts = append(starts, start)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	return starts, nil
}

// listLevel returns the start times of every stored file at one level,
// grouped by aggregation and ascending — one directory scan where a
// List-per-aggregation loop would rescan the directory each time.
func (st *Store) listLevel(level Level) (map[string][]int64, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, err
	}
	byAgg := map[string][]int64{}
	for _, e := range entries {
		a, l, start, err := ParseFileName(e.Name())
		if err != nil || l != level {
			continue
		}
		byAgg[a] = append(byAgg[a], start)
	}
	for _, starts := range byAgg {
		sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	}
	return byAgg, nil
}

// Cascade aggregates complete groups of files into the next level, for
// every level below Yearly. A group is complete when GroupSize files of
// the lower level fall within one upper-level window and that window has
// closed (its end is at or before now). Newly produced files trigger
// further cascading.
//
// A corrupt input file is skipped and counted (CorruptSkipped) rather
// than failing the level: the upper aggregate is built from whatever
// parses, matching the codec's contract that every committed file was
// written whole — anything else is damage to route around.
func (st *Store) Cascade(agg string, now int64) error {
	return st.CascadeAll([]string{agg}, now)
}

// cascadeJob is one upper-level aggregate to build: the lower-level
// start times of agg that fall into the upper window at window.
type cascadeJob struct {
	agg    string
	level  Level
	window int64
	starts []int64
}

// CascadeAll runs the cascade for every aggregation at once. Levels are
// sequential (upper levels consume the files lower levels just wrote),
// but within a level every (aggregation, closed window) aggregate is an
// independent job — disjoint input files, one distinct output file —
// fanned over a worker pool bounded by Parallelism. The produced files
// are identical to len(aggs) serial Cascade calls; only the wall clock
// differs.
func (st *Store) CascadeAll(aggs []string, now int64) error {
	workers := st.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	for level := Minutely; level < MaxLevel; level++ {
		upper := level + 1
		// One directory scan serves every aggregation at this level.
		byAgg, err := st.listLevel(level)
		if err != nil {
			return err
		}
		var jobs []cascadeJob
		for _, agg := range aggs {
			starts := byAgg[agg]
			groups := map[int64][]int64{}
			for _, s := range starts {
				w := s - s%upper.Seconds()
				groups[w] = append(groups[w], s)
			}
			ws := make([]int64, 0, len(groups))
			for w := range groups {
				ws = append(ws, w)
			}
			sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
			for _, w := range ws {
				if w+upper.Seconds() > now {
					continue // window still open
				}
				jobs = append(jobs, cascadeJob{agg: agg, level: level, window: w, starts: groups[w]})
			}
		}
		if len(jobs) == 0 {
			continue
		}
		levelStart := time.Now()
		var (
			wg      sync.WaitGroup
			sem     = make(chan struct{}, workers)
			errMu   sync.Mutex
			pending error
		)
		for _, j := range jobs {
			wg.Add(1)
			sem <- struct{}{}
			go func(j cascadeJob) {
				defer func() { <-sem; wg.Done() }()
				if err := st.buildUpper(j); err != nil {
					errMu.Lock()
					if pending == nil {
						pending = err
					}
					errMu.Unlock()
				}
			}(j)
		}
		wg.Wait()
		if h := st.cascadeSeconds[level]; h != nil {
			h.Observe(time.Since(levelStart).Seconds())
		}
		if pending != nil {
			return pending
		}
	}
	return nil
}

// buildUpper aggregates one closed upper-level window from its
// lower-level files, skipping (and counting) corrupt inputs.
func (st *Store) buildUpper(j cascadeJob) error {
	upper := j.level + 1
	if _, err := st.Get(j.agg, upper, j.window); err == nil {
		return nil // already aggregated
	} else if errors.Is(err, ErrCorruptSnapshot) {
		// A corrupt upper file: rebuild it from the lower level.
		st.corruptSkipped.Add(1)
	}
	var snaps []*Snapshot
	for _, s := range j.starts {
		snap, err := st.Get(j.agg, j.level, s)
		if err != nil {
			if errors.Is(err, ErrCorruptSnapshot) {
				st.corruptSkipped.Add(1)
				continue
			}
			return err
		}
		snaps = append(snaps, snap)
	}
	if len(snaps) == 0 {
		return nil // every input corrupt; nothing to aggregate
	}
	out, err := Aggregate(snaps)
	if err != nil {
		return err
	}
	out.Start = j.window
	return st.Put(out)
}

// Retention deletes the oldest files of each level beyond the configured
// Retain cap, but never deletes a file that has not yet been folded into
// an existing upper-level aggregate.
func (st *Store) Retention(agg string) error {
	for level := Minutely; level <= MaxLevel; level++ {
		keep := st.Retain[level]
		if keep <= 0 {
			continue
		}
		starts, err := st.List(agg, level)
		if err != nil {
			return err
		}
		if len(starts) <= keep {
			continue
		}
		var upperStarts map[int64]bool
		if level < MaxLevel {
			us, err := st.List(agg, level+1)
			if err != nil {
				return err
			}
			upperStarts = make(map[int64]bool, len(us))
			for _, u := range us {
				upperStarts[u] = true
			}
		}
		for _, s := range starts[:len(starts)-keep] {
			if level < MaxLevel {
				w := s - s%(level+1).Seconds()
				if !upperStarts[w] {
					continue // not yet aggregated; keep
				}
			}
			name := (&Snapshot{Aggregation: agg, Level: level, Start: s}).FileName()
			if err := os.Remove(filepath.Join(st.dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}
