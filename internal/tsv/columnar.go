package tsv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/bits"
)

// The columnar snapshot format. One file holds the same logical content
// as a TSV snapshot, laid out for selective reads:
//
//	magic "DNSC1\n"
//	header: column names + kinds, row count, collection statistics
//	key section (length-prefixed so it can be skipped):
//	    dictionary of distinct keys (concatenated bytes + lengths),
//	    optional per-row dictionary ids (omitted when keys are unique)
//	key bloom filter (deterministic, serialized)
//	column directory: rows-per-block + per-column section byte lengths
//	per-column sections: blocks of values, each with min/max bounds,
//	    an encoding tag and a length-prefixed payload
//	footer "CEND"
//
// Counter-style integral values use zigzag-delta varints, constant
// blocks store a single value, everything else is raw little-endian
// float64 — so decoding is bounded by varint/memcpy bandwidth, never by
// text parsing. The per-block min/max let predicate evaluation skip
// blocks wholesale; the bloom filter answers negative point lookups
// without touching row data. The directory lets a projection skip whole
// columns by slice arithmetic.
//
// Everything in the format is deterministic: the same snapshot always
// encodes to the same bytes, so cross-process and cross-backend golden
// comparisons stay valid.

// ErrBadColumnar matches (via errors.Is) every decode failure of the
// columnar codec: truncated files, hostile lengths, unknown encodings.
// The store wraps it in *CorruptError, so cascade-level skip/count
// handling is shared with the TSV codec.
var ErrBadColumnar = errors.New("tsv: malformed columnar snapshot")

const (
	colMagic  = "DNSC1\n"
	colFooter = "CEND"

	// colBlockRows is the number of values per column block. Small
	// enough that predicate pushdown has real skip granularity on
	// paper-scale files (30 k rows -> ~30 blocks), large enough that
	// per-block metadata stays negligible.
	colBlockRows = 1024

	encConst    = 0 // payload: one float64 (all values identical bits)
	encIntDelta = 1 // payload: zigzag varints of value deltas (integral values)
	encRaw      = 2 // payload: little-endian float64 per value
)

// colKindByte maps Kind to its single-byte file form and back.
func colKindByte(k Kind) byte {
	switch k {
	case Counter:
		return 'c'
	case Mode:
		return 'm'
	default:
		return 'g'
	}
}

func kindFromByte(b byte) (Kind, bool) {
	switch b {
	case 'c':
		return Counter, true
	case 'm':
		return Mode, true
	case 'g':
		return Gauge, true
	}
	return 0, false
}

// --- deterministic key bloom ------------------------------------------------

// colBloom is a serializable bloom filter over keys. Hashing is
// FNV-1a 64 finalized with the splitmix64 mixer — deterministic across
// processes, unlike hash/maphash, so the filter can live in the file.
type colBloom struct {
	k     int
	words []uint64
}

const colBloomK = 7

// newColBloom sizes the filter for n keys at roughly 1% false
// positives (~10 bits per key, power-of-two rounded).
func newColBloom(n int) *colBloom {
	bitsWanted := uint64(64)
	for bitsWanted < uint64(n)*10 {
		bitsWanted <<= 1
	}
	return &colBloom{k: colBloomK, words: make([]uint64, bitsWanted/64)}
}

// bloomHash2 derives the two Kirsch–Mitzenmacher base hashes of s.
func bloomHash2(s string) (uint64, uint64) {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	// splitmix64 finalizer decorrelates the low bits FNV leaves weak.
	z := h + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return h, z | 1 // odd step so all k probes are distinct mod 2^m
}

func (f *colBloom) add(s string) {
	h1, h2 := bloomHash2(s)
	mask := uint64(len(f.words)*64 - 1)
	for i := 0; i < f.k; i++ {
		b := (h1 + uint64(i)*h2) & mask
		f.words[b/64] |= 1 << (b % 64)
	}
}

func (f *colBloom) has(s string) bool {
	h1, h2 := bloomHash2(s)
	mask := uint64(len(f.words)*64 - 1)
	for i := 0; i < f.k; i++ {
		b := (h1 + uint64(i)*h2) & mask
		if f.words[b/64]&(1<<(b%64)) == 0 {
			return false
		}
	}
	return true
}

// --- encoding ---------------------------------------------------------------

// EncodeColumnar writes s in the columnar format. The same snapshot
// always produces the same bytes.
func EncodeColumnar(s *Snapshot, w io.Writer) (int64, error) {
	ncols := len(s.Columns)
	for i := range s.Rows {
		if len(s.Rows[i].Values) != ncols {
			return 0, fmt.Errorf("tsv: row %d has %d values for %d columns",
				i, len(s.Rows[i].Values), ncols)
		}
	}
	buf := make([]byte, 0, 64+len(s.Rows)*(8+ncols*4))
	buf = append(buf, colMagic...)
	buf = binary.AppendUvarint(buf, uint64(ncols))
	for i, name := range s.Columns {
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
		buf = append(buf, colKindByte(s.Kinds[i]))
	}
	nrows := len(s.Rows)
	buf = binary.AppendUvarint(buf, uint64(nrows))
	buf = binary.AppendUvarint(buf, s.TotalBefore)
	buf = binary.AppendUvarint(buf, s.TotalAfter)
	buf = binary.AppendUvarint(buf, uint64(s.Windows))

	// Key section: dictionary in first-appearance order; per-row ids
	// only when a duplicate key makes them necessary.
	dictID := make(map[string]int, nrows)
	var dictKeys []string
	ids := make([]int, nrows)
	for i := range s.Rows {
		k := s.Rows[i].Key
		id, ok := dictID[k]
		if !ok {
			id = len(dictKeys)
			dictID[k] = id
			dictKeys = append(dictKeys, k)
		}
		ids[i] = id
	}
	var keySect []byte
	keySect = binary.AppendUvarint(keySect, uint64(len(dictKeys)))
	concatLen := 0
	for _, k := range dictKeys {
		concatLen += len(k)
	}
	keySect = binary.AppendUvarint(keySect, uint64(concatLen))
	for _, k := range dictKeys {
		keySect = append(keySect, k...)
	}
	for _, k := range dictKeys {
		keySect = binary.AppendUvarint(keySect, uint64(len(k)))
	}
	if len(dictKeys) == nrows {
		keySect = append(keySect, 0) // ids are the identity
	} else {
		keySect = append(keySect, 1)
		for _, id := range ids {
			keySect = binary.AppendUvarint(keySect, uint64(id))
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(keySect)))
	buf = append(buf, keySect...)

	// Bloom over distinct keys.
	bloom := newColBloom(len(dictKeys))
	for _, k := range dictKeys {
		bloom.add(k)
	}
	buf = append(buf, byte(bloom.k))
	buf = binary.AppendUvarint(buf, uint64(len(bloom.words)))
	for _, wd := range bloom.words {
		buf = binary.LittleEndian.AppendUint64(buf, wd)
	}

	// Column sections, then the directory so a reader can skip columns.
	sects := make([][]byte, ncols)
	colVals := make([]float64, nrows)
	for c := 0; c < ncols; c++ {
		for r := 0; r < nrows; r++ {
			colVals[r] = s.Rows[r].Values[c]
		}
		sects[c] = encodeColumn(colVals)
	}
	buf = binary.AppendUvarint(buf, colBlockRows)
	for _, sect := range sects {
		buf = binary.AppendUvarint(buf, uint64(len(sect)))
	}
	for _, sect := range sects {
		buf = append(buf, sect...)
	}
	buf = append(buf, colFooter...)
	n, err := w.Write(buf)
	return int64(n), err
}

// encodeColumn encodes one column's values as blocks.
func encodeColumn(vals []float64) []byte {
	var out []byte
	for off := 0; off < len(vals); off += colBlockRows {
		end := off + colBlockRows
		if end > len(vals) {
			end = len(vals)
		}
		out = encodeBlock(out, vals[off:end])
	}
	return out
}

// encodeBlock appends one block: min/max, encoding tag, payload.
func encodeBlock(out []byte, vals []float64) []byte {
	mn, mx := math.Inf(1), math.Inf(-1)
	hasNaN := false
	firstBits := math.Float64bits(vals[0])
	allConst := true
	allInt := true
	for _, v := range vals {
		if math.IsNaN(v) {
			hasNaN = true
			allInt = false
			continue
		}
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
		if math.Float64bits(v) != firstBits {
			allConst = false
		}
		if allInt && !integralFloat(v) {
			allInt = false
		}
	}
	if hasNaN {
		// NaN never matches a predicate but the block may hold rows
		// that do: NaN bounds force per-row evaluation.
		mn, mx = math.NaN(), math.NaN()
		allConst = false
	}
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(mn))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(mx))
	switch {
	case allConst:
		out = append(out, encConst)
		out = binary.AppendUvarint(out, 8)
		out = binary.LittleEndian.AppendUint64(out, firstBits)
	case allInt:
		out = append(out, encIntDelta)
		var payload []byte
		prev := int64(0)
		for _, v := range vals {
			iv := int64(v)
			payload = binary.AppendUvarint(payload, zigzag(iv-prev))
			prev = iv
		}
		out = binary.AppendUvarint(out, uint64(len(payload)))
		out = append(out, payload...)
	default:
		out = append(out, encRaw)
		out = binary.AppendUvarint(out, uint64(8*len(vals)))
		for _, v := range vals {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
		}
	}
	return out
}

// integralFloat reports whether v round-trips exactly through int64:
// integral, within 2^53, and not the negative zero (whose sign bit an
// integer cannot carry).
func integralFloat(v float64) bool {
	if v != math.Trunc(v) || math.Abs(v) > 1<<53 {
		return false
	}
	return !(v == 0 && math.Signbit(v))
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// --- decoding ---------------------------------------------------------------

// colStats counts the selective-read work a single decode did; the
// store aggregates them into metrics.
type colStats struct {
	blocksDecoded uint64
	blocksSkipped uint64
	bloomSkips    uint64
}

// colReader is a bounds-checked cursor over the file bytes. Every read
// failure is a typed ErrBadColumnar: the decoder must never panic or
// allocate proportionally to a hostile length field.
type colReader struct {
	data []byte
	off  int
}

func (r *colReader) fail(what string) error {
	return fmt.Errorf("%w: %s at byte %d", ErrBadColumnar, what, r.off)
}

func (r *colReader) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, r.fail("bad varint: " + what)
	}
	r.off += n
	return v, nil
}

// length reads a uvarint that counts not-yet-read items each at least
// minSize bytes, rejecting values the remaining input cannot hold —
// the over-allocation guard.
func (r *colReader) length(what string, minSize int) (int, error) {
	v, err := r.uvarint(what)
	if err != nil {
		return 0, err
	}
	if minSize < 1 {
		minSize = 1
	}
	if v > uint64(len(r.data)-r.off)/uint64(minSize) {
		return 0, r.fail("oversized length: " + what)
	}
	return int(v), nil
}

func (r *colReader) bytes(n int, what string) ([]byte, error) {
	if n < 0 || n > len(r.data)-r.off {
		return nil, r.fail("truncated: " + what)
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *colReader) byte1(what string) (byte, error) {
	if r.off >= len(r.data) {
		return 0, r.fail("truncated: " + what)
	}
	b := r.data[r.off]
	r.off++
	return b, nil
}

func (r *colReader) f64(what string) (float64, error) {
	b, err := r.bytes(8, what)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

// lazyCol is one column's parsed block metadata with per-block lazy
// value decoding.
type lazyCol struct {
	nrows     int
	blockRows int
	blocks    []colBlockMeta
	vals      []float64 // allocated on first decode
	decoded   []bool
}

type colBlockMeta struct {
	min, max float64
	enc      byte
	payload  []byte
}

// parseColSection scans a column section's block headers, validating
// payload bounds without decoding any values.
func parseColSection(sect []byte, nrows, blockRows int) (*lazyCol, error) {
	nblocks := 0
	if nrows > 0 {
		nblocks = (nrows + blockRows - 1) / blockRows
	}
	c := &lazyCol{nrows: nrows, blockRows: blockRows, blocks: make([]colBlockMeta, nblocks)}
	r := &colReader{data: sect}
	for b := 0; b < nblocks; b++ {
		mn, err := r.f64("block min")
		if err != nil {
			return nil, err
		}
		mx, err := r.f64("block max")
		if err != nil {
			return nil, err
		}
		enc, err := r.byte1("block encoding")
		if err != nil {
			return nil, err
		}
		plen, err := r.length("block payload", 1)
		if err != nil {
			return nil, err
		}
		payload, err := r.bytes(plen, "block payload")
		if err != nil {
			return nil, err
		}
		count := blockRows
		if b == nblocks-1 {
			count = nrows - b*blockRows
		}
		switch enc {
		case encConst:
			if plen != 8 {
				return nil, r.fail("const block payload size")
			}
		case encRaw:
			if plen != 8*count {
				return nil, r.fail("raw block payload size")
			}
		case encIntDelta:
			// Lengths are validated on decode (varint count must match).
		default:
			return nil, r.fail("unknown block encoding")
		}
		c.blocks[b] = colBlockMeta{min: mn, max: mx, enc: enc, payload: payload}
	}
	if r.off != len(sect) {
		return nil, r.fail("trailing bytes in column section")
	}
	return c, nil
}

// blockRange returns the row range [lo, hi) of block b.
func (c *lazyCol) blockRange(b int) (int, int) {
	lo := b * c.blockRows
	hi := lo + c.blockRows
	if hi > c.nrows {
		hi = c.nrows
	}
	return lo, hi
}

// ensure decodes block b into c.vals.
func (c *lazyCol) ensure(b int, stats *colStats) error {
	if c.decoded == nil {
		c.vals = make([]float64, c.nrows)
		c.decoded = make([]bool, len(c.blocks))
	}
	if c.decoded[b] {
		return nil
	}
	lo, hi := c.blockRange(b)
	m := &c.blocks[b]
	switch m.enc {
	case encConst:
		v := math.Float64frombits(binary.LittleEndian.Uint64(m.payload))
		for i := lo; i < hi; i++ {
			c.vals[i] = v
		}
	case encRaw:
		for i := lo; i < hi; i++ {
			c.vals[i] = math.Float64frombits(
				binary.LittleEndian.Uint64(m.payload[(i-lo)*8:]))
		}
	case encIntDelta:
		off := 0
		prev := int64(0)
		for i := lo; i < hi; i++ {
			u, n := binary.Uvarint(m.payload[off:])
			if n <= 0 {
				return fmt.Errorf("%w: truncated delta block", ErrBadColumnar)
			}
			off += n
			prev += unzigzag(u)
			c.vals[i] = float64(prev)
		}
		if off != len(m.payload) {
			return fmt.Errorf("%w: trailing bytes in delta block", ErrBadColumnar)
		}
	}
	c.decoded[b] = true
	if stats != nil {
		stats.blocksDecoded++
	}
	return nil
}

// DecodeColumnar decodes a columnar snapshot file in full. Aggregation,
// Level and Start live in the file name, as with the TSV codec, and are
// left zero.
func DecodeColumnar(data []byte) (*Snapshot, error) {
	return decodeColumnar(data, nil, nil)
}

// IsColumnar reports whether data begins with the columnar file magic —
// the format sniff tools use to pick a decoder for a snapshot file.
func IsColumnar(data []byte) bool {
	return len(data) >= len(colMagic) && string(data[:len(colMagic)]) == colMagic
}

// decodeColumnar decodes data, materializing only what proj selects.
// The result is exactly applyProjection(fullDecode(data), proj); the
// point of the format is reaching it without decoding skipped blocks.
func decodeColumnar(data []byte, proj *Projection, stats *colStats) (*Snapshot, error) {
	r := &colReader{data: data}
	if m, err := r.bytes(len(colMagic), "magic"); err != nil || string(m) != colMagic {
		if err != nil {
			return nil, err
		}
		return nil, r.fail("bad magic")
	}
	ncols, err := r.length("column count", 2)
	if err != nil {
		return nil, err
	}
	s := &Snapshot{
		Columns: make([]string, ncols),
		Kinds:   make([]Kind, ncols),
	}
	for i := 0; i < ncols; i++ {
		nameLen, err := r.length("column name", 1)
		if err != nil {
			return nil, err
		}
		name, err := r.bytes(nameLen, "column name")
		if err != nil {
			return nil, err
		}
		kb, err := r.byte1("column kind")
		if err != nil {
			return nil, err
		}
		kind, ok := kindFromByte(kb)
		if !ok {
			return nil, r.fail("unknown column kind")
		}
		s.Columns[i] = string(name)
		s.Kinds[i] = kind
	}
	nrows, err := r.length("row count", 1)
	if err != nil {
		return nil, err
	}
	if s.TotalBefore, err = r.uvarint("total_before"); err != nil {
		return nil, err
	}
	if s.TotalAfter, err = r.uvarint("total_after"); err != nil {
		return nil, err
	}
	windows, err := r.uvarint("windows")
	if err != nil {
		return nil, err
	}
	if windows > uint64(math.MaxInt32) {
		return nil, r.fail("oversized windows")
	}
	s.Windows = int(windows)

	keySectLen, err := r.length("key section", 1)
	if err != nil {
		return nil, err
	}
	keySect, err := r.bytes(keySectLen, "key section")
	if err != nil {
		return nil, err
	}

	bloomK, err := r.byte1("bloom k")
	if err != nil {
		return nil, err
	}
	var bloom *colBloom
	if bloomK > 0 {
		if bloomK > 32 {
			return nil, r.fail("oversized bloom k")
		}
		nwords, err := r.length("bloom words", 8)
		if err != nil {
			return nil, err
		}
		if nwords == 0 || bits.OnesCount(uint(nwords)) != 1 {
			return nil, r.fail("bloom size not a power of two")
		}
		wordBytes, err := r.bytes(nwords*8, "bloom bits")
		if err != nil {
			return nil, err
		}
		bloom = &colBloom{k: int(bloomK), words: make([]uint64, nwords)}
		for i := range bloom.words {
			bloom.words[i] = binary.LittleEndian.Uint64(wordBytes[i*8:])
		}
	}

	blockRows64, err := r.uvarint("block rows")
	if err != nil {
		return nil, err
	}
	if blockRows64 == 0 || blockRows64 > 1<<20 {
		return nil, r.fail("bad block rows")
	}
	blockRows := int(blockRows64)
	sectLens := make([]int, ncols)
	for i := range sectLens {
		if sectLens[i], err = r.length("column section length", 1); err != nil {
			return nil, err
		}
	}
	sects := make([][]byte, ncols)
	for i := range sects {
		if sects[i], err = r.bytes(sectLens[i], "column section"); err != nil {
			return nil, err
		}
	}
	if f, err := r.bytes(len(colFooter), "footer"); err != nil || string(f) != colFooter {
		if err != nil {
			return nil, err
		}
		return nil, r.fail("bad footer")
	}
	if r.off != len(data) {
		return nil, r.fail("trailing bytes after footer")
	}

	// Resolve the projection against the schema before touching any row
	// data, so unknown columns error identically on every path (even a
	// bloom-rejected point lookup).
	outCols := s.Columns
	if proj != nil && len(proj.Columns) > 0 {
		outCols = proj.Columns
	}
	colIdx := make([]int, len(outCols))
	outKinds := make([]Kind, len(outCols))
	for i, name := range outCols {
		j, err := s.columnIndex(name)
		if err != nil {
			return nil, err
		}
		colIdx[i] = j
		outKinds[i] = s.Kinds[j]
	}
	var preds []Pred
	var predIdx []int
	if proj != nil {
		preds = proj.Where
		predIdx = make([]int, len(preds))
		for i, p := range preds {
			j, err := s.columnIndex(p.Col)
			if err != nil {
				return nil, err
			}
			predIdx[i] = j
		}
	}
	out := &Snapshot{
		Aggregation: s.Aggregation,
		Level:       s.Level,
		Start:       s.Start,
		Columns:     append([]string(nil), outCols...),
		Kinds:       outKinds,
		TotalBefore: s.TotalBefore,
		TotalAfter:  s.TotalAfter,
		Windows:     s.Windows,
	}

	// Bloom pushdown: a negative point lookup ends here — no key or
	// value data is decoded at all.
	if proj != nil && proj.Key != "" && bloom != nil && !bloom.has(proj.Key) {
		if stats != nil {
			stats.bloomSkips++
		}
		return out, nil
	}

	keys, err := decodeKeySection(keySect, nrows)
	if err != nil {
		return nil, err
	}

	// Row selection: key filter first, then predicate pushdown per
	// column with block skipping.
	selected := make([]bool, nrows)
	nSel := 0
	if proj != nil && proj.Key != "" {
		for i, k := range keys {
			if k == proj.Key {
				selected[i] = true
				nSel++
			}
		}
	} else {
		for i := range selected {
			selected[i] = true
		}
		nSel = nrows
	}

	cols := make([]*lazyCol, ncols) // parsed lazily, shared by preds and projection
	getCol := func(j int) (*lazyCol, error) {
		if cols[j] == nil {
			c, err := parseColSection(sects[j], nrows, blockRows)
			if err != nil {
				return nil, err
			}
			cols[j] = c
		}
		return cols[j], nil
	}

	for pi, p := range preds {
		if nSel == 0 {
			break
		}
		c, err := getCol(predIdx[pi])
		if err != nil {
			return nil, err
		}
		for b := range c.blocks {
			lo, hi := c.blockRange(b)
			any := false
			for i := lo; i < hi; i++ {
				if selected[i] {
					any = true
					break
				}
			}
			if !any {
				continue
			}
			m := &c.blocks[b]
			// Block fully outside the range: every row fails. NaN
			// bounds fail both comparisons, forcing the slow path.
			if m.max < p.Min || m.min > p.Max {
				for i := lo; i < hi; i++ {
					if selected[i] {
						selected[i] = false
						nSel--
					}
				}
				if stats != nil {
					stats.blocksSkipped++
				}
				continue
			}
			// Block fully inside: every row passes, nothing to decode.
			if m.min >= p.Min && m.max <= p.Max {
				if stats != nil {
					stats.blocksSkipped++
				}
				continue
			}
			if err := c.ensure(b, stats); err != nil {
				return nil, err
			}
			for i := lo; i < hi; i++ {
				if selected[i] && !p.matches(c.vals[i]) {
					selected[i] = false
					nSel--
				}
			}
		}
	}

	if nSel == 0 {
		return out, nil
	}

	// Materialize: decode only the blocks of projected columns that
	// still hold selected rows.
	flat := make([]float64, nSel*len(colIdx))
	out.Rows = make([]Row, 0, nSel)
	for oi, j := range colIdx {
		c, err := getCol(j)
		if err != nil {
			return nil, err
		}
		k := 0
		for b := range c.blocks {
			lo, hi := c.blockRange(b)
			decodedBlock := false
			for i := lo; i < hi; i++ {
				if !selected[i] {
					continue
				}
				if !decodedBlock {
					if err := c.ensure(b, stats); err != nil {
						return nil, err
					}
					decodedBlock = true
				}
				flat[k*len(colIdx)+oi] = c.vals[i]
				k++
			}
			if !decodedBlock && stats != nil {
				stats.blocksSkipped++
			}
		}
	}
	k := 0
	for i := 0; i < nrows; i++ {
		if !selected[i] {
			continue
		}
		out.Rows = append(out.Rows, Row{
			Key:    keys[i],
			Values: flat[k*len(colIdx) : (k+1)*len(colIdx) : (k+1)*len(colIdx)],
		})
		k++
	}
	return out, nil
}

// decodeKeySection decodes the dictionary and per-row key slice. All
// keys are substrings of one backing string, so a 30 k-row file costs
// one allocation for key bytes, not one per key.
func decodeKeySection(sect []byte, nrows int) ([]string, error) {
	r := &colReader{data: sect}
	dictN, err := r.length("dictionary count", 1)
	if err != nil {
		return nil, err
	}
	concatLen, err := r.length("dictionary bytes", 1)
	if err != nil {
		return nil, err
	}
	concat, err := r.bytes(concatLen, "dictionary bytes")
	if err != nil {
		return nil, err
	}
	backing := string(concat)
	dict := make([]string, dictN)
	off := 0
	for i := 0; i < dictN; i++ {
		l, err := r.uvarint("dictionary entry length")
		if err != nil {
			return nil, err
		}
		if l > uint64(len(backing)-off) {
			return nil, r.fail("dictionary entry length")
		}
		dict[i] = backing[off : off+int(l)]
		off += int(l)
	}
	if off != len(backing) {
		return nil, r.fail("dictionary bytes not fully consumed")
	}
	idsPresent, err := r.byte1("ids flag")
	if err != nil {
		return nil, err
	}
	keys := make([]string, nrows)
	switch idsPresent {
	case 0:
		if dictN != nrows {
			return nil, r.fail("identity ids with mismatched dictionary")
		}
		copy(keys, dict)
	case 1:
		for i := 0; i < nrows; i++ {
			id, err := r.uvarint("row key id")
			if err != nil {
				return nil, err
			}
			if id >= uint64(dictN) {
				return nil, r.fail("row key id out of range")
			}
			keys[i] = dict[id]
		}
	default:
		return nil, r.fail("bad ids flag")
	}
	if r.off != len(sect) {
		return nil, r.fail("trailing bytes in key section")
	}
	return keys, nil
}
