package tsv

import (
	"errors"
	"sort"
)

// ErrMixedParts is returned by MergeParts for snapshots that are not
// partial views of one aggregation window.
var ErrMixedParts = errors.New("tsv: snapshots are not parts of one window")

// MergeParts merges partial snapshots of the SAME aggregation, level and
// window — e.g. the key-hash shards of one Top-k universe — into a
// single snapshot: rows are united, collection statistics are summed,
// rows are ordered by descending first column (hits) with ties broken by
// key, and, when topK > 0, only the strongest topK rows survive.
//
// Shard parts are key-disjoint by construction (each key hashes to one
// shard), which makes the union exact. For robustness the helper still
// tolerates duplicate keys: Counter columns are summed and Gauge/Mode
// columns are taken from the row with more hits.
//
// The input snapshots are not modified; the merged snapshot shares their
// row values only when no duplicate forces a copy.
func MergeParts(topK int, parts ...*Snapshot) (*Snapshot, error) {
	if len(parts) == 0 {
		return nil, ErrNothingToAgg
	}
	first := parts[0]
	out := &Snapshot{
		Aggregation: first.Aggregation,
		Level:       first.Level,
		Start:       first.Start,
		Columns:     first.Columns,
		Kinds:       first.Kinds,
		Windows:     first.Windows,
	}
	total := 0
	for _, p := range parts {
		total += len(p.Rows)
	}
	out.Rows = make([]Row, 0, total)
	idx := make(map[string]int, total)
	var owned []bool // whether out.Rows[i].Values is a private copy
	for _, p := range parts {
		if p.Aggregation != first.Aggregation || p.Level != first.Level ||
			p.Start != first.Start || p.Windows != first.Windows {
			return nil, ErrMixedParts
		}
		if len(p.Columns) != len(first.Columns) {
			return nil, ErrSchemaChange
		}
		for i := range p.Columns {
			if p.Columns[i] != first.Columns[i] || p.Kinds[i] != first.Kinds[i] {
				return nil, ErrSchemaChange
			}
		}
		out.TotalBefore += p.TotalBefore
		out.TotalAfter += p.TotalAfter
		for _, r := range p.Rows {
			j, dup := idx[r.Key]
			if !dup {
				idx[r.Key] = len(out.Rows)
				out.Rows = append(out.Rows, r)
				owned = append(owned, false)
				continue
			}
			dst := &out.Rows[j]
			if !owned[j] {
				dst.Values = append([]float64(nil), dst.Values...)
				owned[j] = true
			}
			heavier := len(r.Values) > 0 && r.Values[0] > dst.Values[0]
			for i := range dst.Values {
				if first.Kinds[i] == Counter {
					dst.Values[i] += r.Values[i]
				} else if heavier {
					dst.Values[i] = r.Values[i]
				}
			}
		}
	}
	if len(first.Columns) > 0 {
		sort.Slice(out.Rows, func(i, j int) bool {
			vi, vj := out.Rows[i].Values[0], out.Rows[j].Values[0]
			if vi != vj {
				return vi > vj
			}
			return out.Rows[i].Key < out.Rows[j].Key
		})
	}
	if topK > 0 && topK < len(out.Rows) {
		out.Rows = out.Rows[:topK]
	}
	return out, nil
}
