package tsv

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// robustSnap builds a minimal valid snapshot.
func robustSnap(agg string, level Level, start int64, key string, v float64) *Snapshot {
	return &Snapshot{
		Aggregation: agg,
		Level:       level,
		Start:       start,
		Columns:     []string{"hits"},
		Kinds:       []Kind{Counter},
		Rows:        []Row{{Key: key, Values: []float64{v}}},
		TotalBefore: 10,
		TotalAfter:  9,
		Windows:     1,
	}
}

func TestNewStoreReapsOrphanedTempFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{".tmp-123", ".tmp-crashed"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("half-written"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	keep := filepath.Join(dir, "srvip-min-0.tsv")
	if err := os.WriteFile(keep, []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewStore(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Errorf("orphaned temp file survived NewStore: %s", e.Name())
		}
	}
	if _, err := os.Stat(keep); err != nil {
		t.Errorf("committed file deleted by NewStore: %v", err)
	}
}

func TestGetReturnsTypedCorruptError(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(robustSnap("srvip", Minutely, 0, "a", 1)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "srvip-min-0.tsv")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"garbage":            []byte("not a snapshot at all\n"),
		"truncated mid-line": data[:len(data)/2],
		"missing trailer":    data[:strings.LastIndex(string(data), "#stats")],
	}
	for name, corrupt := range cases {
		if err := os.WriteFile(path, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := st.Get("srvip", Minutely, 0)
		if err == nil {
			t.Fatalf("%s: corrupt file accepted", name)
		}
		if !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("%s: err = %v, want ErrCorruptSnapshot", name, err)
		}
		var ce *CorruptError
		if !errors.As(err, &ce) || ce.Path != path {
			t.Fatalf("%s: err = %#v, want *CorruptError with path", name, err)
		}
	}

	// A missing file is NOT corrupt — callers distinguish the two.
	os.Remove(path)
	if _, err := st.Get("srvip", Minutely, 0); errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("missing file misreported as corrupt: %v", err)
	}
}

func TestCascadeSkipsCorruptFilesWithAccounting(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Ten minutely files fill one decaminutely window; corrupt two.
	for i := int64(0); i < 10; i++ {
		if err := st.Put(robustSnap("srvip", Minutely, i*60, "a", 6)); err != nil {
			t.Fatal(err)
		}
	}
	for _, start := range []int64{120, 300} {
		path := filepath.Join(dir, (&Snapshot{Aggregation: "srvip", Level: Minutely, Start: start}).FileName())
		if err := os.WriteFile(path, []byte("#key\thits\nbroken"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Cascade("srvip", 600); err != nil {
		t.Fatalf("cascade failed on corrupt input: %v", err)
	}
	if got := st.CorruptSkipped(); got != 2 {
		t.Errorf("CorruptSkipped = %d, want 2", got)
	}
	up, err := st.Get("srvip", Decaminutely, 0)
	if err != nil {
		t.Fatalf("upper aggregate missing: %v", err)
	}
	// 8 parsable windows of 6 hits averaged over 8 windows = 6.
	if got := up.Rows[0].Values[0]; got != 6 {
		t.Errorf("aggregated hits = %v, want 6", got)
	}
	if up.Windows != 8 {
		t.Errorf("windows = %d, want 8 (two corrupt inputs skipped)", up.Windows)
	}
}

func TestCascadeAllCorruptGroupIsSkippedEntirely(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		path := filepath.Join(dir, (&Snapshot{Aggregation: "srvip", Level: Minutely, Start: i * 60}).FileName())
		if err := os.WriteFile(path, []byte("junk\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Cascade("srvip", 600); err != nil {
		t.Fatalf("cascade failed on all-corrupt group: %v", err)
	}
	if got := st.CorruptSkipped(); got != 10 {
		t.Errorf("CorruptSkipped = %d, want 10", got)
	}
	if _, err := st.Get("srvip", Decaminutely, 0); err == nil {
		t.Error("aggregate produced from zero parsable inputs")
	}
}

// failEveryWriter fails every write — the crudest chaos writer, used
// here without importing the chaos package (tsv must stay generic).
type failEveryWriter struct{ w io.Writer }

var errBoom = errors.New("boom")

func (f *failEveryWriter) Write(p []byte) (int, error) { return 0, errBoom }

func TestPutWriteFailureLeavesNoFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.WrapWriter = func(w io.Writer) io.Writer { return &failEveryWriter{w: w} }
	if err := st.Put(robustSnap("srvip", Minutely, 0, "a", 1)); !errors.Is(err, errBoom) {
		t.Fatalf("Put err = %v, want errBoom", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("failed Put left %d files behind", len(entries))
	}
}

// shortWriter writes half of every buffer and reports success for it.
type shortWriter struct{ w io.Writer }

func (s *shortWriter) Write(p []byte) (int, error) {
	if len(p) <= 1 {
		return s.w.Write(p)
	}
	n, err := s.w.Write(p[:len(p)/2])
	if err != nil {
		return n, err
	}
	return n, nil
}

func TestPutShortWriteIsSurfacedNotCommitted(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.WrapWriter = func(w io.Writer) io.Writer { return &shortWriter{w: w} }
	if err := st.Put(robustSnap("srvip", Minutely, 0, "a", 1)); err == nil {
		t.Fatal("short write committed as success")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("short-write Put left %d files behind", len(entries))
	}
}

func TestPutFsyncOption(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.FsyncOnPut = true
	if err := st.Put(robustSnap("srvip", Minutely, 0, "a", 1)); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get("srvip", Minutely, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows[0].Key != "a" {
		t.Fatalf("round-trip mismatch: %+v", got.Rows)
	}
}
