package tsv

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"
)

// xorshift is the deterministic PRNG used by the codec and golden
// tests, so fixtures are identical across runs and machines.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

func (x *xorshift) float() float64 { return float64(x.next()%1_000_000) / 1000 }

// randomSnapshot builds a deterministic snapshot: a mix of integral
// counter columns, fractional gauges, a mode column, and keys with
// optional duplicates.
func randomSnapshot(seed uint64, rows int, dupKeys bool) *Snapshot {
	x := xorshift(seed | 1)
	s := &Snapshot{
		Aggregation: "test",
		Level:       Minutely,
		Start:       60,
		Columns:     []string{"hits", "nxd", "delay", "ok_frac", "ttl_mode"},
		Kinds:       []Kind{Counter, Counter, Gauge, Gauge, Mode},
		TotalBefore: 100000,
		TotalAfter:  90000,
		Windows:     1,
	}
	ttls := []float64{60, 300, 3600, 86400}
	for i := 0; i < rows; i++ {
		key := "obj-" + string(rune('a'+i%26)) + "-"
		for n := i; ; n /= 10 {
			key += string(rune('0' + n%10))
			if n < 10 {
				break
			}
		}
		if dupKeys && i%7 == 3 {
			key = "dup-key"
		}
		s.Rows = append(s.Rows, Row{Key: key, Values: []float64{
			float64(x.next() % 100000),
			float64(x.next() % 500),
			x.float(),
			float64(x.next()%1000) / 1000,
			ttls[x.next()%4],
		}})
	}
	return s
}

func encodeToBytes(t testing.TB, s *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := EncodeColumnar(s, &buf); err != nil {
		t.Fatalf("EncodeColumnar: %v", err)
	}
	return buf.Bytes()
}

// sameSnapshot compares the logical content of two snapshots.
func sameSnapshot(t *testing.T, want, got *Snapshot) {
	t.Helper()
	if !reflect.DeepEqual(want.Columns, got.Columns) {
		t.Fatalf("columns: want %v got %v", want.Columns, got.Columns)
	}
	if !reflect.DeepEqual(want.Kinds, got.Kinds) {
		t.Fatalf("kinds: want %v got %v", want.Kinds, got.Kinds)
	}
	if want.TotalBefore != got.TotalBefore || want.TotalAfter != got.TotalAfter || want.Windows != got.Windows {
		t.Fatalf("stats: want %d/%d/%d got %d/%d/%d",
			want.TotalBefore, want.TotalAfter, want.Windows,
			got.TotalBefore, got.TotalAfter, got.Windows)
	}
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("rows: want %d got %d", len(want.Rows), len(got.Rows))
	}
	for i := range want.Rows {
		if want.Rows[i].Key != got.Rows[i].Key {
			t.Fatalf("row %d key: want %q got %q", i, want.Rows[i].Key, got.Rows[i].Key)
		}
		wv, gv := want.Rows[i].Values, got.Rows[i].Values
		if len(wv) != len(gv) {
			t.Fatalf("row %d width: want %d got %d", i, len(wv), len(gv))
		}
		for j := range wv {
			// Bit-exact, including NaN and signed zero.
			if math.Float64bits(wv[j]) != math.Float64bits(gv[j]) {
				t.Fatalf("row %d col %d: want %v got %v", i, j, wv[j], gv[j])
			}
		}
	}
}

func TestColumnarRoundTrip(t *testing.T) {
	cases := map[string]*Snapshot{
		"typical":    randomSnapshot(7, 500, false),
		"dup-keys":   randomSnapshot(8, 300, true),
		"multiblock": randomSnapshot(9, 3000, false),
		"empty-rows": {
			Aggregation: "x", Columns: []string{"hits"}, Kinds: []Kind{Counter},
			TotalBefore: 1, TotalAfter: 1, Windows: 1,
		},
		"one-row": {
			Columns: []string{"a", "b"}, Kinds: []Kind{Counter, Gauge}, Windows: 3,
			Rows: []Row{{Key: "k", Values: []float64{42, 0.5}}},
		},
		"hostile-values": {
			Columns: []string{"v"}, Kinds: []Kind{Gauge}, Windows: 1,
			Rows: []Row{
				{Key: "nan", Values: []float64{math.NaN()}},
				{Key: "neg-zero", Values: []float64{math.Copysign(0, -1)}},
				{Key: "pos-zero", Values: []float64{0}},
				{Key: "inf", Values: []float64{math.Inf(1)}},
				{Key: "neg-inf", Values: []float64{math.Inf(-1)}},
				{Key: "big-int", Values: []float64{1 << 52}},
				{Key: "neg-int", Values: []float64{-123456}},
				{Key: "tiny", Values: []float64{5e-324}},
			},
		},
		"empty-key": {
			Columns: []string{"v"}, Kinds: []Kind{Counter}, Windows: 1,
			Rows: []Row{{Key: "", Values: []float64{1}}, {Key: "x", Values: []float64{2}}},
		},
	}
	for name, snap := range cases {
		t.Run(name, func(t *testing.T) {
			data := encodeToBytes(t, snap)
			got, err := DecodeColumnar(data)
			if err != nil {
				t.Fatalf("DecodeColumnar: %v", err)
			}
			sameSnapshot(t, snap, got)
		})
	}
}

func TestColumnarDeterministic(t *testing.T) {
	snap := randomSnapshot(11, 1500, true)
	a := encodeToBytes(t, snap)
	b := encodeToBytes(t, snap)
	if !bytes.Equal(a, b) {
		t.Fatal("same snapshot encoded to different bytes")
	}
}

func TestColumnarSmallerThanTSV(t *testing.T) {
	snap := randomSnapshot(13, 5000, false)
	var tsvBuf bytes.Buffer
	if _, err := snap.WriteTo(&tsvBuf); err != nil {
		t.Fatal(err)
	}
	col := encodeToBytes(t, snap)
	if len(col) >= tsvBuf.Len() {
		t.Fatalf("columnar %d bytes >= TSV %d bytes", len(col), tsvBuf.Len())
	}
	t.Logf("columnar %d bytes vs TSV %d bytes (%.0f%%)",
		len(col), tsvBuf.Len(), 100*float64(len(col))/float64(tsvBuf.Len()))
}

// TestProjectionEquivalence is the differential contract: the columnar
// fast path must return exactly what the reference applyProjection
// computes over the fully decoded snapshot, for random projections and
// predicates.
func TestProjectionEquivalence(t *testing.T) {
	snap := randomSnapshot(17, 2500, true)
	data := encodeToBytes(t, snap)
	full, err := DecodeColumnar(data)
	if err != nil {
		t.Fatal(err)
	}
	projections := []*Projection{
		nil,
		{},
		{Columns: []string{"hits"}},
		{Columns: []string{"delay", "hits"}},
		{Columns: []string{"ttl_mode", "ok_frac", "nxd", "delay", "hits"}},
		{Key: "dup-key"},
		{Key: "no-such-key"},
		{Key: "obj-a-0", Columns: []string{"hits"}},
		{Where: []Pred{AtLeast("hits", 50000)}},
		{Where: []Pred{{Col: "hits", Min: 10000, Max: 60000}}},
		{Where: []Pred{AtLeast("hits", 50000), {Col: "nxd", Min: 0, Max: 100}}},
		{Columns: []string{"delay"}, Where: []Pred{AtLeast("hits", 80000)}},
		{Columns: []string{"hits"}, Key: "dup-key", Where: []Pred{AtLeast("hits", 0)}},
		{Where: []Pred{{Col: "ttl_mode", Min: 3600, Max: 3600}}},
		{Where: []Pred{{Col: "hits", Min: math.Inf(1), Max: math.Inf(1)}}}, // selects nothing
	}
	for i, proj := range projections {
		want, err := applyProjection(full, proj)
		if err != nil {
			t.Fatalf("proj %d: applyProjection: %v", i, err)
		}
		var cs colStats
		got, err := decodeColumnar(data, proj, &cs)
		if err != nil {
			t.Fatalf("proj %d: decodeColumnar: %v", i, err)
		}
		sameSnapshot(t, want, got)
	}
}

func TestProjectionUnknownColumn(t *testing.T) {
	snap := randomSnapshot(19, 10, false)
	data := encodeToBytes(t, snap)
	for _, proj := range []*Projection{
		{Columns: []string{"nope"}},
		{Where: []Pred{AtLeast("nope", 1)}},
		{Key: "definitely-not-present", Columns: []string{"nope"}}, // must error even on bloom skip
	} {
		if _, err := decodeColumnar(data, proj, nil); !errors.Is(err, ErrUnknownColumn) {
			t.Fatalf("proj %+v: want ErrUnknownColumn, got %v", proj, err)
		}
		full, err := DecodeColumnar(data)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := applyProjection(full, proj); !errors.Is(err, ErrUnknownColumn) {
			t.Fatalf("applyProjection %+v: want ErrUnknownColumn, got %v", proj, err)
		}
	}
}

// TestColumnarCorruptTyped truncates and corrupts an encoded file at
// every offset: decoding must fail with a typed error (or, for benign
// bit flips, succeed) and never panic.
func TestColumnarCorruptTyped(t *testing.T) {
	snap := randomSnapshot(23, 200, true)
	data := encodeToBytes(t, snap)
	for cut := 0; cut < len(data); cut++ {
		if _, err := DecodeColumnar(data[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		} else if !errors.Is(err, ErrBadColumnar) {
			t.Fatalf("truncation at %d: untyped error %v", cut, err)
		}
	}
	// Bit flips may land in value payloads (still decodable) but must
	// never panic and must stay typed when they do error.
	for off := 0; off < len(data); off += 7 {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x55
		if _, err := DecodeColumnar(mut); err != nil && !errors.Is(err, ErrBadColumnar) {
			t.Fatalf("flip at %d: untyped error %v", off, err)
		}
	}
	// Garbage prefixes.
	for _, junk := range [][]byte{nil, {}, []byte("x"), []byte("#key\thits\n"), bytes.Repeat([]byte{0xff}, 64)} {
		if _, err := DecodeColumnar(junk); !errors.Is(err, ErrBadColumnar) {
			t.Fatalf("junk %q: want ErrBadColumnar, got %v", junk, err)
		}
	}
}

func TestColumnarStoreBloomSkip(t *testing.T) {
	st, err := NewColumnarStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	snap := randomSnapshot(29, 400, false)
	if err := st.Put(snap); err != nil {
		t.Fatal(err)
	}
	got, err := st.GetProjected("test", Minutely, 60, &Projection{Key: "absent-key"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 0 {
		t.Fatalf("absent key returned %d rows", len(got.Rows))
	}
	if st.BloomSkips() == 0 {
		t.Fatal("negative point lookup did not use the bloom index")
	}
	// A present key must come back with its row.
	key := snap.Rows[10].Key
	got, err = st.GetProjected("test", Minutely, 60, &Projection{Key: key})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 1 || got.Rows[0].Key != key {
		t.Fatalf("point lookup for %q returned %+v", key, got.Rows)
	}
}

func TestColumnarPredicatePushdownSkipsBlocks(t *testing.T) {
	// Values ascending by row, so blocks have disjoint [min, max]
	// ranges and a narrow predicate can skip most of them wholesale.
	snap := &Snapshot{
		Aggregation: "test", Level: Minutely, Start: 60,
		Columns: []string{"hits", "delay"},
		Kinds:   []Kind{Counter, Gauge},
		Windows: 1,
	}
	const rows = 8 * colBlockRows
	for i := 0; i < rows; i++ {
		snap.Rows = append(snap.Rows, Row{
			Key:    "k" + string(rune('a'+i%26)) + string(rune('0'+(i/26)%10)) + string(rune('0'+i/260)),
			Values: []float64{float64(i), float64(i) + 0.5},
		})
	}
	st, err := NewColumnarStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(snap); err != nil {
		t.Fatal(err)
	}
	lo, hi := float64(3*colBlockRows), float64(3*colBlockRows+10)
	got, err := st.GetProjected("test", Minutely, 60, &Projection{
		Columns: []string{"delay"},
		Where:   []Pred{{Col: "hits", Min: lo, Max: hi}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 11 {
		t.Fatalf("want 11 rows in [%v, %v], got %d", lo, hi, len(got.Rows))
	}
	if st.BlocksSkipped() == 0 {
		t.Fatal("narrow predicate decoded every block")
	}
	if st.BlocksDecoded() >= 8 {
		t.Fatalf("decoded %d blocks; pushdown should decode ~2 of 16", st.BlocksDecoded())
	}
}
