package tsv

import (
	"testing"
)

func minuteSnap(agg string, start int64) *Snapshot {
	return &Snapshot{
		Aggregation: agg, Level: Minutely, Start: start,
		Columns: []string{"hits"}, Kinds: []Kind{Counter},
		Rows:    []Row{{Key: "k", Values: []float64{1}}},
		Windows: 1,
	}
}

func TestListCacheHitsAndInvalidation(t *testing.T) {
	bothBackends(t, func(t *testing.T, st *Store) {
		if err := st.Put(minuteSnap("a", 0)); err != nil {
			t.Fatal(err)
		}
		// First List scans the directory; the second is served from cache.
		if _, err := st.List("a", Minutely); err != nil {
			t.Fatal(err)
		}
		misses := st.ListCacheMisses()
		if misses == 0 {
			t.Fatal("first List did not scan")
		}
		if _, err := st.List("a", Minutely); err != nil {
			t.Fatal(err)
		}
		if st.ListCacheMisses() != misses {
			t.Fatal("second List scanned again")
		}
		if st.ListCacheHits() == 0 {
			t.Fatal("second List not counted as a hit")
		}

		// Put must be visible through the cache immediately.
		if err := st.Put(minuteSnap("a", 120)); err != nil {
			t.Fatal(err)
		}
		if err := st.Put(minuteSnap("a", 60)); err != nil {
			t.Fatal(err)
		}
		starts, err := st.List("a", Minutely)
		if err != nil {
			t.Fatal(err)
		}
		if len(starts) != 3 || starts[0] != 0 || starts[1] != 60 || starts[2] != 120 {
			t.Fatalf("starts after Put = %v", starts)
		}
		if st.ListCacheMisses() != misses {
			t.Fatal("Put invalidated the cache instead of updating it")
		}

		// A new aggregation put after the scan must also appear.
		if err := st.Put(minuteSnap("b", 0)); err != nil {
			t.Fatal(err)
		}
		starts, err = st.List("b", Minutely)
		if err != nil {
			t.Fatal(err)
		}
		if len(starts) != 1 {
			t.Fatalf("new agg starts = %v", starts)
		}
	})
}

func TestListCacheCopySemantics(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(minuteSnap("a", 0)); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(minuteSnap("a", 60)); err != nil {
		t.Fatal(err)
	}
	first, err := st.List("a", Minutely)
	if err != nil {
		t.Fatal(err)
	}
	first[0] = 9999 // mutate the returned slice
	second, err := st.List("a", Minutely)
	if err != nil {
		t.Fatal(err)
	}
	if second[0] != 0 {
		t.Fatalf("caller mutation leaked into the cache: %v", second)
	}
}

func TestRetentionInvalidatesListCache(t *testing.T) {
	bothBackends(t, func(t *testing.T, st *Store) {
		st.Retain[Minutely] = 2
		for i := int64(0); i < 5; i++ {
			if err := st.Put(minuteSnap("a", i*60)); err != nil {
				t.Fatal(err)
			}
		}
		// Retention only removes files already folded upward, so cascade
		// the complete decaminutely window first.
		if err := st.Cascade("a", 600); err != nil {
			t.Fatal(err)
		}
		if _, err := st.List("a", Minutely); err != nil {
			t.Fatal(err)
		}
		if err := st.Retention("a"); err != nil {
			t.Fatal(err)
		}
		starts, err := st.List("a", Minutely)
		if err != nil {
			t.Fatal(err)
		}
		if len(starts) != 2 || starts[0] != 180 || starts[1] != 240 {
			t.Fatalf("starts after retention = %v", starts)
		}
	})
}

func TestFindUsesIndexWithDuplicateKeys(t *testing.T) {
	s := &Snapshot{
		Columns: []string{"v"}, Kinds: []Kind{Counter},
		Rows: []Row{
			{Key: "a", Values: []float64{1}},
			{Key: "dup", Values: []float64{2}},
			{Key: "dup", Values: []float64{3}},
			{Key: "z", Values: []float64{4}},
		},
	}
	// Find must return the FIRST occurrence, like the old linear scan.
	if r := s.Find("dup"); r == nil || r.Values[0] != 2 {
		t.Fatalf("Find(dup) = %+v", r)
	}
	if r := s.Find("z"); r == nil || r.Values[0] != 4 {
		t.Fatalf("Find(z) = %+v", r)
	}
	if r := s.Find("missing"); r != nil {
		t.Fatalf("Find(missing) = %+v", r)
	}
	// Appending rows must rebuild the index.
	s.Rows = append(s.Rows, Row{Key: "new", Values: []float64{5}})
	if r := s.Find("new"); r == nil || r.Values[0] != 5 {
		t.Fatalf("Find(new) after append = %+v", r)
	}
	// Sorting invalidates the index; lookups must still be correct.
	s.SortByColumn("v")
	if r := s.Find("new"); r == nil || r.Values[0] != 5 {
		t.Fatalf("Find(new) after sort = %+v", r)
	}
	if r := s.Find("a"); r == nil || r.Values[0] != 1 {
		t.Fatalf("Find(a) after sort = %+v", r)
	}
}
