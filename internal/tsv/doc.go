// Package tsv implements the Observatory's on-disk time series (paper
// §2.4): TSV snapshot files whose names encode the aggregation, time
// granularity and collection start; cascading time aggregation from
// minutely files up to yearly ones (mean rates for counters, zero-filled
// for missing objects; means over present windows for gauges); and the
// per-granularity retention policy that keeps disk usage bounded.
//
// Concurrency: Store methods are safe for concurrent use. Put writes to
// a uniquely numbered temp file and renames it into place atomically,
// so concurrent puts (the parallel engines' snapshot callbacks) never
// interleave bytes; the operation counters are atomics. CascadeAll runs
// its own bounded worker pool (Store.Parallelism) whose output is
// byte-identical to the serial cascade. Instrument publishes the store
// counters and per-level cascade-duration histograms to a metrics
// registry without adding work to Put itself.
package tsv
