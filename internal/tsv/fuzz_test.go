package tsv

import (
	"bytes"
	"strings"
	"testing"
)

// fuzzSnapshotSeed serializes a representative snapshot for the corpus.
func fuzzSnapshotSeed() []byte {
	s := &Snapshot{
		Aggregation: "qname",
		Level:       Minutely,
		Start:       60,
		Columns:     []string{"hits", "rtt_avg", "popular_type"},
		Kinds:       []Kind{Counter, Gauge, Mode},
		Rows: []Row{
			{Key: "example.com.", Values: []float64{120, 3.5, 1}},
			{Key: "x\\ttricky", Values: []float64{1, 0.25, 28}},
		},
		TotalBefore: 500,
		TotalAfter:  480,
		Windows:     3,
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzParseSnapshot asserts that Read never panics and that every file
// it accepts survives a WriteTo/Read round trip — the property Cascade
// relies on when re-aggregating stored files.
func FuzzParseSnapshot(f *testing.F) {
	f.Add(fuzzSnapshotSeed())
	f.Add([]byte("#key\thits\n#kind\tc\na\t1\n#stats\ttotal_before=1\ttotal_after=1\twindows=1\n"))
	f.Add([]byte(""))
	f.Add([]byte("#stats\ttotal_before=1\ttotal_after=1\twindows=1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(s.Kinds) > len(s.Columns) {
			// Extra kind entries are tolerated on read; trim for re-write.
			s.Kinds = s.Kinds[:len(s.Columns)]
		}
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			t.Fatalf("accepted snapshot does not re-serialize: %v", err)
		}
		s2, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-written snapshot rejected: %v\ninput: %q\nrewritten: %q", err, data, buf.String())
		}
		if len(s2.Rows) != len(s.Rows) || len(s2.Columns) != len(s.Columns) {
			t.Fatalf("round trip changed shape: %d rows/%d cols -> %d rows/%d cols",
				len(s.Rows), len(s.Columns), len(s2.Rows), len(s2.Columns))
		}
		if s2.TotalBefore != s.TotalBefore || s2.TotalAfter != s.TotalAfter || s2.Windows != s.Windows {
			t.Fatalf("round trip changed stats: %d/%d/%d -> %d/%d/%d",
				s.TotalBefore, s.TotalAfter, s.Windows,
				s2.TotalBefore, s2.TotalAfter, s2.Windows)
		}
		for i := range s.Rows {
			if strings.ContainsAny(s.Rows[i].Key, "\t\n") {
				continue // key with structural bytes cannot round-trip verbatim
			}
			if s2.Rows[i].Key != s.Rows[i].Key {
				t.Fatalf("row %d key changed: %q -> %q", i, s.Rows[i].Key, s2.Rows[i].Key)
			}
		}
	})
}
