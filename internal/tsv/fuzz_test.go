package tsv

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

// fuzzSnapshotSeed serializes a representative snapshot for the corpus.
func fuzzSnapshotSeed() []byte {
	s := &Snapshot{
		Aggregation: "qname",
		Level:       Minutely,
		Start:       60,
		Columns:     []string{"hits", "rtt_avg", "popular_type"},
		Kinds:       []Kind{Counter, Gauge, Mode},
		Rows: []Row{
			{Key: "example.com.", Values: []float64{120, 3.5, 1}},
			{Key: "x\\ttricky", Values: []float64{1, 0.25, 28}},
		},
		TotalBefore: 500,
		TotalAfter:  480,
		Windows:     3,
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzParseSnapshot asserts that Read never panics and that every file
// it accepts survives a WriteTo/Read round trip — the property Cascade
// relies on when re-aggregating stored files.
func FuzzParseSnapshot(f *testing.F) {
	f.Add(fuzzSnapshotSeed())
	f.Add([]byte("#key\thits\n#kind\tc\na\t1\n#stats\ttotal_before=1\ttotal_after=1\twindows=1\n"))
	f.Add([]byte(""))
	f.Add([]byte("#stats\ttotal_before=1\ttotal_after=1\twindows=1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(s.Kinds) > len(s.Columns) {
			// Extra kind entries are tolerated on read; trim for re-write.
			s.Kinds = s.Kinds[:len(s.Columns)]
		}
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			t.Fatalf("accepted snapshot does not re-serialize: %v", err)
		}
		s2, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-written snapshot rejected: %v\ninput: %q\nrewritten: %q", err, data, buf.String())
		}
		if len(s2.Rows) != len(s.Rows) || len(s2.Columns) != len(s.Columns) {
			t.Fatalf("round trip changed shape: %d rows/%d cols -> %d rows/%d cols",
				len(s.Rows), len(s.Columns), len(s2.Rows), len(s2.Columns))
		}
		if s2.TotalBefore != s.TotalBefore || s2.TotalAfter != s.TotalAfter || s2.Windows != s.Windows {
			t.Fatalf("round trip changed stats: %d/%d/%d -> %d/%d/%d",
				s.TotalBefore, s.TotalAfter, s.Windows,
				s2.TotalBefore, s2.TotalAfter, s2.Windows)
		}
		for i := range s.Rows {
			if strings.ContainsAny(s.Rows[i].Key, "\t\n") {
				continue // key with structural bytes cannot round-trip verbatim
			}
			if s2.Rows[i].Key != s.Rows[i].Key {
				t.Fatalf("row %d key changed: %q -> %q", i, s.Rows[i].Key, s2.Rows[i].Key)
			}
		}
	})
}

// fuzzColumnarSeed encodes a representative snapshot in columnar form.
func fuzzColumnarSeed() []byte {
	s := &Snapshot{
		Aggregation: "qname",
		Level:       Minutely,
		Start:       60,
		Columns:     []string{"hits", "rtt_avg", "popular_type"},
		Kinds:       []Kind{Counter, Gauge, Mode},
		Rows: []Row{
			{Key: "example.com.", Values: []float64{120, 3.5, 1}},
			{Key: "example.org.", Values: []float64{1, 0.25, 28}},
			{Key: "example.com.", Values: []float64{7, 1.5, 1}},
		},
		TotalBefore: 500,
		TotalAfter:  480,
		Windows:     3,
	}
	var buf bytes.Buffer
	if _, err := EncodeColumnar(s, &buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzDecodeColumnar asserts the columnar decoder's hostile-input
// contract: arbitrary bytes must never panic or over-allocate, every
// rejection must be the typed ErrBadColumnar, and every accepted file
// must survive an encode/decode round trip bit-exactly.
func FuzzDecodeColumnar(f *testing.F) {
	seed := fuzzColumnarSeed()
	f.Add(seed)
	f.Add(seed[:len(seed)/2])    // truncated mid-file
	f.Add(seed[:len(colMagic)])  // header only
	f.Add([]byte(colMagic))      // magic with nothing after
	f.Add([]byte("DNSC1\n\x00")) // zero cols
	f.Add([]byte(""))
	f.Add([]byte("#key\thits\n"))         // TSV header, wrong format
	f.Add(bytes.Repeat([]byte{0xff}, 32)) // hostile lengths
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeColumnar(data)
		if err != nil {
			if !errors.Is(err, ErrBadColumnar) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		var buf bytes.Buffer
		if _, err := EncodeColumnar(s, &buf); err != nil {
			t.Fatalf("accepted snapshot does not re-encode: %v", err)
		}
		s2, err := DecodeColumnar(buf.Bytes())
		if err != nil {
			t.Fatalf("re-encoded snapshot rejected: %v", err)
		}
		if len(s2.Rows) != len(s.Rows) || len(s2.Columns) != len(s.Columns) {
			t.Fatalf("round trip changed shape: %d rows/%d cols -> %d rows/%d cols",
				len(s.Rows), len(s.Columns), len(s2.Rows), len(s2.Columns))
		}
		for i := range s.Rows {
			if s2.Rows[i].Key != s.Rows[i].Key {
				t.Fatalf("row %d key changed: %q -> %q", i, s.Rows[i].Key, s2.Rows[i].Key)
			}
			for j := range s.Rows[i].Values {
				a, b := s.Rows[i].Values[j], s2.Rows[i].Values[j]
				if math.Float64bits(a) != math.Float64bits(b) {
					t.Fatalf("row %d col %d changed: %v -> %v", i, j, a, b)
				}
			}
		}
		// Projection over the accepted file must also hold its own
		// contract: typed errors, no panics.
		if len(s.Columns) > 0 {
			if _, err := decodeColumnar(data, &Projection{Columns: s.Columns[:1]}, nil); err != nil && !errors.Is(err, ErrBadColumnar) {
				t.Fatalf("untyped projection error: %v", err)
			}
		}
	})
}
