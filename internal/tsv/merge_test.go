package tsv

import "testing"

func partSnap(rows []Row) *Snapshot {
	return &Snapshot{
		Aggregation: "srvip",
		Level:       Minutely,
		Start:       60,
		Columns:     []string{"hits", "qdots", "ttl1"},
		Kinds:       []Kind{Counter, Gauge, Mode},
		Windows:     1,
		Rows:        rows,
	}
}

func TestMergePartsDisjoint(t *testing.T) {
	a := partSnap([]Row{{Key: "x", Values: []float64{5, 1, 300}}, {Key: "y", Values: []float64{2, 2, 60}}})
	a.TotalBefore, a.TotalAfter = 7, 7
	b := partSnap([]Row{{Key: "z", Values: []float64{9, 3, 30}}})
	b.TotalBefore, b.TotalAfter = 9, 9
	got, err := MergeParts(0, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalBefore != 16 || got.TotalAfter != 16 {
		t.Errorf("stats: %d/%d", got.TotalBefore, got.TotalAfter)
	}
	if len(got.Rows) != 3 || got.Rows[0].Key != "z" || got.Rows[1].Key != "x" || got.Rows[2].Key != "y" {
		t.Fatalf("rows: %+v", got.Rows)
	}
	if got.Aggregation != "srvip" || got.Start != 60 || got.Windows != 1 {
		t.Errorf("header: %+v", got)
	}
}

func TestMergePartsTopK(t *testing.T) {
	a := partSnap([]Row{{Key: "x", Values: []float64{5, 0, 0}}, {Key: "y", Values: []float64{2, 0, 0}}})
	b := partSnap([]Row{{Key: "z", Values: []float64{9, 0, 0}}})
	got, err := MergeParts(2, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 2 || got.Rows[0].Key != "z" || got.Rows[1].Key != "x" {
		t.Fatalf("top-2: %+v", got.Rows)
	}
}

func TestMergePartsDuplicateKeys(t *testing.T) {
	a := partSnap([]Row{{Key: "x", Values: []float64{5, 1, 300}}})
	b := partSnap([]Row{{Key: "x", Values: []float64{8, 3, 60}}})
	got, err := MergeParts(0, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 1 {
		t.Fatalf("rows: %+v", got.Rows)
	}
	r := got.Rows[0]
	// Counter summed; gauge and mode taken from the heavier part.
	if r.Values[0] != 13 || r.Values[1] != 3 || r.Values[2] != 60 {
		t.Errorf("merged values: %v", r.Values)
	}
	// Inputs untouched.
	if a.Rows[0].Values[0] != 5 || b.Rows[0].Values[0] != 8 {
		t.Error("inputs mutated")
	}
}

func TestMergePartsTieBreaksByKey(t *testing.T) {
	a := partSnap([]Row{{Key: "b", Values: []float64{5, 0, 0}}})
	b := partSnap([]Row{{Key: "a", Values: []float64{5, 0, 0}}})
	got, err := MergeParts(0, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows[0].Key != "a" || got.Rows[1].Key != "b" {
		t.Errorf("tie order: %+v", got.Rows)
	}
}

func TestMergePartsRejectsMismatch(t *testing.T) {
	a := partSnap(nil)
	b := partSnap(nil)
	b.Start = 120
	if _, err := MergeParts(0, a, b); err != ErrMixedParts {
		t.Errorf("window mismatch: err = %v", err)
	}
	c := partSnap(nil)
	c.Columns = []string{"hits", "qdots", "other"}
	if _, err := MergeParts(0, a, c); err != ErrSchemaChange {
		t.Errorf("schema mismatch: err = %v", err)
	}
	if _, err := MergeParts(0); err != ErrNothingToAgg {
		t.Errorf("empty: err = %v", err)
	}
	d := partSnap(nil)
	d.Aggregation = "qname"
	if _, err := MergeParts(0, a, d); err != ErrMixedParts {
		t.Errorf("aggregation mismatch: err = %v", err)
	}
}
