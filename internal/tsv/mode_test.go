package tsv

import (
	"bytes"
	"testing"
)

func modeSnap(start int64, windows int, ttl float64) *Snapshot {
	return &Snapshot{
		Aggregation: "x", Level: Minutely, Start: start,
		Columns: []string{"hits", "ttl1"},
		Kinds:   []Kind{Counter, Mode},
		Rows:    []Row{{Key: "k", Values: []float64{10, ttl}}},
		Windows: windows,
	}
}

func TestModeAggregation(t *testing.T) {
	// Seven windows at TTL 300, three at 86400: the mode is 300, never
	// some meaningless average.
	var snaps []*Snapshot
	for i := 0; i < 7; i++ {
		snaps = append(snaps, modeSnap(int64(i)*60, 1, 300))
	}
	for i := 7; i < 10; i++ {
		snaps = append(snaps, modeSnap(int64(i)*60, 1, 86400))
	}
	out, err := Aggregate(snaps)
	if err != nil {
		t.Fatal(err)
	}
	k := out.Find("k")
	if v, _ := out.Value(k, "ttl1"); v != 300 {
		t.Errorf("ttl1 = %v, want mode 300", v)
	}
}

func TestModeAggregationWeightsByWindows(t *testing.T) {
	// One pre-aggregated file of 10 windows at 60 beats 4 files at 600.
	snaps := []*Snapshot{modeSnap(0, 10, 60)}
	for i := 1; i <= 4; i++ {
		snaps[0].Level = Minutely
		snaps = append(snaps, modeSnap(int64(i)*600, 1, 600))
	}
	out, err := Aggregate(snaps)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := out.Value(out.Find("k"), "ttl1"); v != 60 {
		t.Errorf("ttl1 = %v, want 60 (10 windows vs 4)", v)
	}
}

func TestModeTieBreaksLow(t *testing.T) {
	out, err := Aggregate([]*Snapshot{modeSnap(0, 1, 600), modeSnap(60, 1, 60)})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := out.Value(out.Find("k"), "ttl1"); v != 60 {
		t.Errorf("tie = %v, want 60", v)
	}
}

func TestModeKindSurvivesRoundTrip(t *testing.T) {
	s := modeSnap(0, 1, 300)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("#kind\tc\tm\n")) {
		t.Errorf("kind row:\n%s", buf.String())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kinds[1] != Mode {
		t.Errorf("kinds = %v", got.Kinds)
	}
}
