package tsv

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"dnsobservatory/internal/metrics"
)

// bothBackends runs fn against a fresh store of each backend so every
// query-semantics test doubles as a cross-backend contract.
func bothBackends(t *testing.T, fn func(t *testing.T, st *Store)) {
	t.Helper()
	for _, backend := range []string{BackendTSV, BackendColumnar} {
		t.Run(backend, func(t *testing.T) {
			st, err := NewStoreBackend(t.TempDir(), backend)
			if err != nil {
				t.Fatal(err)
			}
			fn(t, st)
		})
	}
}

// putWindows stores n minutely windows of a fixed 3-object scenario:
// "alpha" every window, "beta" every other window, "gamma" only in the
// first.
func putWindows(t *testing.T, st *Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		rows := []Row{{Key: "alpha", Values: []float64{100, 10.5, 300}}}
		if i%2 == 0 {
			rows = append(rows, Row{Key: "beta", Values: []float64{40, 2.25, 3600}})
		}
		if i == 0 {
			rows = append(rows, Row{Key: "gamma", Values: []float64{900, 99, 60}})
		}
		snap := &Snapshot{
			Aggregation: "srvip", Level: Minutely, Start: int64(i) * 60,
			Columns: []string{"hits", "delay", "ttl"},
			Kinds:   []Kind{Counter, Gauge, Mode},
			Rows:    rows, Windows: 1, TotalBefore: 50, TotalAfter: 45,
		}
		if err := st.Put(snap); err != nil {
			t.Fatal(err)
		}
	}
}

func TestQuerySingleWindowPassthrough(t *testing.T) {
	bothBackends(t, func(t *testing.T, st *Store) {
		putWindows(t, st, 4)
		res, err := RunQuery(st, Query{Agg: "srvip", Level: Minutely, From: 60, To: 120})
		if err != nil {
			t.Fatal(err)
		}
		if res.Files != 1 || res.Windows != 1 || res.From != 60 || res.To != 60 {
			t.Fatalf("meta = %+v", res)
		}
		// Window 1 (i=1) holds only alpha, bit-exact.
		if len(res.Rows) != 1 || res.Rows[0].Key != "alpha" || res.Rows[0].Values[1] != 10.5 {
			t.Fatalf("rows = %+v", res.Rows)
		}
	})
}

func TestQueryAggregatesLikeCascade(t *testing.T) {
	bothBackends(t, func(t *testing.T, st *Store) {
		putWindows(t, st, 10)
		res, err := RunQuery(st, Query{Agg: "srvip", Level: Minutely})
		if err != nil {
			t.Fatal(err)
		}
		if res.Files != 10 || res.Windows != 10 {
			t.Fatalf("files=%d windows=%d", res.Files, res.Windows)
		}
		if res.TotalBefore != 500 || res.TotalAfter != 450 {
			t.Fatalf("totals = %d/%d", res.TotalBefore, res.TotalAfter)
		}
		get := func(key string) *Row {
			for i := range res.Rows {
				if res.Rows[i].Key == key {
					return &res.Rows[i]
				}
			}
			t.Fatalf("key %q missing from %+v", key, res.Rows)
			return nil
		}
		// Counter: mean rate over ALL windows (absent = 0). Gauge: mean
		// over present windows. Mode: window-weighted majority.
		alpha := get("alpha")
		if alpha.Values[0] != 100 || alpha.Values[1] != 10.5 || alpha.Values[2] != 300 {
			t.Fatalf("alpha = %v", alpha.Values)
		}
		beta := get("beta") // present 5 of 10 windows
		if beta.Values[0] != 20 || beta.Values[1] != 2.25 || beta.Values[2] != 3600 {
			t.Fatalf("beta = %v", beta.Values)
		}
		gamma := get("gamma") // present 1 of 10
		if gamma.Values[0] != 90 || gamma.Values[1] != 99 {
			t.Fatalf("gamma = %v", gamma.Values)
		}
		// Report order: hits descending — alpha(100), gamma(90), beta(20).
		if res.Rows[0].Key != "alpha" || res.Rows[1].Key != "gamma" || res.Rows[2].Key != "beta" {
			t.Fatalf("order = %v %v %v", res.Rows[0].Key, res.Rows[1].Key, res.Rows[2].Key)
		}
	})
}

func TestQueryProjectionAndOrderBy(t *testing.T) {
	bothBackends(t, func(t *testing.T, st *Store) {
		putWindows(t, st, 6)
		res, err := RunQuery(st, Query{
			Agg: "srvip", Level: Minutely,
			Columns: []string{"delay"}, OrderBy: "hits", K: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		// OrderBy column is implicitly appended to the projection.
		if len(res.Columns) != 2 || res.Columns[0] != "delay" || res.Columns[1] != "hits" {
			t.Fatalf("columns = %v", res.Columns)
		}
		if res.Kinds[0] != Gauge || res.Kinds[1] != Counter {
			t.Fatalf("kinds = %v", res.Kinds)
		}
		// Over 6 windows: gamma 900/6=150, alpha 100, beta 20.
		if len(res.Rows) != 2 || res.Rows[0].Key != "gamma" || res.Rows[1].Key != "alpha" {
			t.Fatalf("rows = %+v", res.Rows)
		}
	})
}

func TestQueryTopKTieOrdering(t *testing.T) {
	bothBackends(t, func(t *testing.T, st *Store) {
		snap := &Snapshot{
			Aggregation: "tie", Level: Minutely, Start: 0,
			Columns: []string{"hits"}, Kinds: []Kind{Counter}, Windows: 1,
			Rows: []Row{
				{Key: "zed", Values: []float64{5}},
				{Key: "ant", Values: []float64{5}},
				{Key: "mid", Values: []float64{5}},
				{Key: "top", Values: []float64{9}},
				{Key: "low", Values: []float64{1}},
			},
		}
		if err := st.Put(snap); err != nil {
			t.Fatal(err)
		}
		res, err := RunQuery(st, Query{Agg: "tie", Level: Minutely, K: 3})
		if err != nil {
			t.Fatal(err)
		}
		// Ties break by ascending key: top(9), then ant/mid at 5.
		want := []string{"top", "ant", "mid"}
		for i, k := range want {
			if res.Rows[i].Key != k {
				t.Fatalf("rank %d = %q, want %q (rows %+v)", i, res.Rows[i].Key, k, res.Rows)
			}
		}
		// K larger than the row count returns everything, sorted.
		res, err = RunQuery(st, Query{Agg: "tie", Level: Minutely, K: 50})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 5 || res.Rows[4].Key != "low" {
			t.Fatalf("rows = %+v", res.Rows)
		}
	})
}

func TestQueryKeyAndWhere(t *testing.T) {
	bothBackends(t, func(t *testing.T, st *Store) {
		putWindows(t, st, 6)
		res, err := RunQuery(st, Query{Agg: "srvip", Level: Minutely, Key: "beta"})
		if err != nil {
			t.Fatal(err)
		}
		// beta exists in 3 of the 6 windows; missing windows contribute
		// nothing to Files filtering (file still read) but the point
		// lookup only aggregates windows where the key appears.
		if len(res.Rows) != 1 || res.Rows[0].Key != "beta" {
			t.Fatalf("rows = %+v", res.Rows)
		}
		if res.Files != 6 {
			t.Fatalf("files = %d", res.Files)
		}
		// beta sum = 40*3 windows over 6 total = 20.
		if res.Rows[0].Values[0] != 20 {
			t.Fatalf("beta hits = %v", res.Rows[0].Values[0])
		}

		res, err = RunQuery(st, Query{
			Agg: "srvip", Level: Minutely,
			Where: []Pred{AtLeast("hits", 50)},
		})
		if err != nil {
			t.Fatal(err)
		}
		// Predicate applies per window: alpha (100 every window) and
		// gamma (900 in window 0) pass; beta (40) never does.
		keys := map[string]bool{}
		for _, r := range res.Rows {
			keys[r.Key] = true
		}
		if !keys["alpha"] || !keys["gamma"] || keys["beta"] {
			t.Fatalf("rows = %+v", res.Rows)
		}
	})
}

func TestQueryErrors(t *testing.T) {
	bothBackends(t, func(t *testing.T, st *Store) {
		putWindows(t, st, 2)
		for name, q := range map[string]Query{
			"empty-agg":  {Level: Minutely},
			"bad-level":  {Agg: "srvip", Level: MaxLevel + 1},
			"neg-level":  {Agg: "srvip", Level: -1},
			"inverted":   {Agg: "srvip", Level: Minutely, From: 500, To: 100},
			"negative-k": {Agg: "srvip", Level: Minutely, K: -1},
		} {
			if _, err := RunQuery(st, q); !errors.Is(err, ErrBadQuery) {
				t.Errorf("%s: want ErrBadQuery, got %v", name, err)
			}
		}
		for name, q := range map[string]Query{
			"unknown-agg": {Agg: "nope", Level: Minutely},
			"empty-range": {Agg: "srvip", Level: Minutely, From: 9000},
			"wrong-level": {Agg: "srvip", Level: Daily},
		} {
			if _, err := RunQuery(st, q); !errors.Is(err, ErrNoData) {
				t.Errorf("%s: want ErrNoData, got %v", name, err)
			}
		}
		for name, q := range map[string]Query{
			"unknown-col":   {Agg: "srvip", Level: Minutely, Columns: []string{"nope"}},
			"unknown-order": {Agg: "srvip", Level: Minutely, OrderBy: "nope"},
			"unknown-where": {Agg: "srvip", Level: Minutely, Where: []Pred{AtLeast("nope", 1)}},
		} {
			if _, err := RunQuery(st, q); !errors.Is(err, ErrUnknownColumn) {
				t.Errorf("%s: want ErrUnknownColumn, got %v", name, err)
			}
		}
	})
}

func TestQuerySkipsCorruptFiles(t *testing.T) {
	bothBackends(t, func(t *testing.T, st *Store) {
		putWindows(t, st, 3)
		// Corrupt the middle file on disk.
		name := filepath.Join(st.Dir(), st.FileName(&Snapshot{Aggregation: "srvip", Level: Minutely, Start: 60}))
		if err := os.WriteFile(name, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
		eng := NewEngine(st)
		res, err := eng.Run(Query{Agg: "srvip", Level: Minutely})
		if err != nil {
			t.Fatal(err)
		}
		if res.Files != 2 || res.CorruptSkipped != 1 || res.Windows != 2 {
			t.Fatalf("files=%d corrupt=%d windows=%d", res.Files, res.CorruptSkipped, res.Windows)
		}
		if eng.CorruptSkips() != 1 || eng.Queries() != 1 || eng.FilesScanned() != 2 {
			t.Fatalf("engine counters: %d %d %d", eng.CorruptSkips(), eng.Queries(), eng.FilesScanned())
		}
	})
}

func TestEngineInstrument(t *testing.T) {
	st, err := NewColumnarStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	putWindows(t, st, 2)
	reg := metrics.NewRegistry()
	eng := NewEngine(st)
	eng.Instrument(reg)
	if _, err := eng.Run(Query{Agg: "srvip", Level: Minutely, K: 1}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"dnsobs_query_total 1",
		"dnsobs_query_files_total 2",
		"dnsobs_query_rows_returned_total 1",
		"dnsobs_query_seconds_count 1",
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// hashResult renders a query result to a canonical text form and
// hashes it — the golden comparison unit for backend equivalence.
func hashResult(res *Result) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|%v|%v|%d|%d|%d|%d|%d\n",
		res.Agg, res.Level.Name(), res.Columns, res.Kinds,
		res.From, res.To, res.Windows, res.TotalBefore, res.TotalAfter)
	for _, r := range res.Rows {
		fmt.Fprintf(h, "%s", r.Key)
		for _, v := range r.Values {
			fmt.Fprintf(h, "\t%x", math.Float64bits(v))
		}
		fmt.Fprintln(h)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestCrossBackendGolden is the equivalence contract from the issue:
// identical snapshot streams ingested into a TSV store and a columnar
// store, cascaded identically, must answer an identical query battery
// with byte-identical results (asserted by hash) and hold identical
// logical file contents at every level.
func TestCrossBackendGolden(t *testing.T) {
	tsvStore, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	colStore, err := NewColumnarStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	stores := []*Store{tsvStore, colStore}

	// Two aggregations, 60 minutely windows of deterministic data with
	// churn in the key set.
	x := xorshift(99)
	const minutes = 60
	for i := int64(0); i < minutes; i++ {
		for _, agg := range []string{"srvip", "qtype"} {
			var rows []Row
			n := 20 + int(x.next()%30)
			for j := 0; j < n; j++ {
				rows = append(rows, Row{
					Key: fmt.Sprintf("%s-obj-%d", agg, x.next()%40),
					Values: []float64{
						float64(x.next() % 10000),
						x.float(),
						[]float64{60, 300, 3600}[x.next()%3],
					},
				})
			}
			// Dedup keys within a window (stores assume unique keys per
			// snapshot; duplicates would make Find ambiguous).
			seen := map[string]bool{}
			uniq := rows[:0]
			for _, r := range rows {
				if !seen[r.Key] {
					seen[r.Key] = true
					uniq = append(uniq, r)
				}
			}
			snap := func() *Snapshot {
				return &Snapshot{
					Aggregation: agg, Level: Minutely, Start: i * 60,
					Columns: []string{"hits", "delay", "ttl"},
					Kinds:   []Kind{Counter, Gauge, Mode},
					Rows:    uniq, Windows: 1,
					TotalBefore: uint64(1000 + i), TotalAfter: uint64(900 + i),
				}
			}
			for _, st := range stores {
				if err := st.Put(snap()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for _, st := range stores {
		if err := st.CascadeAll([]string{"srvip", "qtype"}, minutes*60); err != nil {
			t.Fatal(err)
		}
	}

	// Every level's parsed contents must hash identically.
	for _, agg := range []string{"srvip", "qtype"} {
		for level := Minutely; level <= MaxLevel; level++ {
			listA, err := tsvStore.List(agg, level)
			if err != nil {
				t.Fatal(err)
			}
			listB, err := colStore.List(agg, level)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(listA) != fmt.Sprint(listB) {
				t.Fatalf("%s/%s: starts differ: %v vs %v", agg, level.Name(), listA, listB)
			}
			for _, s := range listA {
				a, err := tsvStore.Get(agg, level, s)
				if err != nil {
					t.Fatal(err)
				}
				b, err := colStore.Get(agg, level, s)
				if err != nil {
					t.Fatal(err)
				}
				var bufA, bufB bytes.Buffer
				if _, err := a.WriteTo(&bufA); err != nil {
					t.Fatal(err)
				}
				if _, err := b.WriteTo(&bufB); err != nil {
					t.Fatal(err)
				}
				ha := sha256.Sum256(bufA.Bytes())
				hb := sha256.Sum256(bufB.Bytes())
				if ha != hb {
					t.Fatalf("%s/%s/%d: TSV rendering differs between backends", agg, level.Name(), s)
				}
			}
		}
	}

	// Query battery: every query must hash identically on both stores.
	battery := []Query{
		{Agg: "srvip", Level: Minutely},
		{Agg: "srvip", Level: Minutely, K: 10},
		{Agg: "srvip", Level: Minutely, From: 600, To: 1800, K: 5, OrderBy: "delay"},
		{Agg: "srvip", Level: Minutely, Columns: []string{"hits"}, K: 3},
		{Agg: "srvip", Level: Minutely, Columns: []string{"ttl", "delay"}, OrderBy: "hits", K: 7},
		{Agg: "srvip", Level: Minutely, Key: "srvip-obj-7"},
		{Agg: "srvip", Level: Minutely, Where: []Pred{AtLeast("hits", 5000)}},
		{Agg: "srvip", Level: Minutely, Where: []Pred{{Col: "ttl", Min: 3600, Max: 3600}}, K: 4},
		{Agg: "qtype", Level: Decaminutely, K: 10},
		{Agg: "qtype", Level: Hourly, OrderBy: "delay"},
		{Agg: "srvip", Level: Hourly, From: 0, To: 3600},
	}
	for i, q := range battery {
		ra, errA := RunQuery(tsvStore, q)
		rb, errB := RunQuery(colStore, q)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("query %d: error mismatch: %v vs %v", i, errA, errB)
		}
		if errA != nil {
			continue
		}
		if ha, hb := hashResult(ra), hashResult(rb); ha != hb {
			t.Fatalf("query %d (%+v): result hash differs\n tsv: %s\n col: %s\n rows tsv=%d col=%d",
				i, q, ha, hb, len(ra.Rows), len(rb.Rows))
		}
	}
}
