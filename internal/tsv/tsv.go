package tsv

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Kind mirrors features.Kind without importing it, keeping this package
// a generic time-series layer.
type Kind int

// Column kinds. Counters aggregate as mean rates with zero for missing
// objects; gauges as means over present windows; modes (categorical
// values such as the dominant TTL) as the window-weighted majority
// value — averaging a 300 s and an 86400 s TTL into 43350 would be
// meaningless.
const (
	Counter Kind = iota
	Gauge
	Mode
)

// Level identifies a time granularity.
type Level int

// The aggregation cascade. Each level groups a fixed number of files of
// the previous one.
const (
	Minutely Level = iota
	Decaminutely
	Hourly
	Daily
	Monthly
	Yearly
)

// levelSpec describes one granularity.
type levelSpec struct {
	name    string
	seconds int64
	group   int // how many lower-level files aggregate into one
}

var levels = []levelSpec{
	{"min", 60, 0},
	{"10min", 600, 10},
	{"hour", 3600, 6},
	{"day", 86400, 24},
	{"month", 30 * 86400, 30},
	{"year", 360 * 86400, 12},
}

// Name returns the level's short name used in file names.
func (l Level) Name() string { return levels[l].name }

// Seconds returns the level's window length.
func (l Level) Seconds() int64 { return levels[l].seconds }

// GroupSize returns how many files of the previous level form one file
// of this level (0 for Minutely).
func (l Level) GroupSize() int { return levels[l].group }

// MaxLevel is the coarsest granularity.
const MaxLevel = Yearly

// Row is one DNS object's feature vector in a snapshot.
type Row struct {
	Key    string
	Values []float64
}

// Snapshot is the contents of one TSV file: the top-k objects of one
// aggregation over one time window.
type Snapshot struct {
	Aggregation string // e.g. "srvip", "esld"
	Level       Level
	Start       int64 // unix seconds of window start
	Columns     []string
	Kinds       []Kind
	Rows        []Row
	// Collection statistics (the file's last row): transactions seen
	// before and after filtering.
	TotalBefore uint64
	TotalAfter  uint64
	// Windows counts how many base windows were averaged into this
	// snapshot (1 for a freshly dumped file).
	Windows int

	// keyIndex maps each key to the index of its first row, built lazily
	// by Find so repeated point lookups stop paying a linear scan.
	// SortByColumn drops it; callers that reorder or replace Rows by hand
	// get the same protection from the per-hit key check in Find.
	keyIndex     map[string]int
	keyIndexRows int // len(Rows) when keyIndex was built
}

// Errors returned by the codec and aggregator.
var (
	ErrBadFile      = errors.New("tsv: malformed snapshot file")
	ErrSchemaChange = errors.New("tsv: snapshots have different schemas")
	ErrNothingToAgg = errors.New("tsv: no snapshots to aggregate")
	ErrMixedLevels  = errors.New("tsv: snapshots from different levels")
)

// fileStem is the canonical file name without extension: the
// granularity and the collection start moment are both encoded, per the
// paper. The store appends its backend's extension.
func (s *Snapshot) fileStem() string {
	return fmt.Sprintf("%s-%s-%d", s.Aggregation, s.Level.Name(), s.Start)
}

// FileName returns the canonical TSV file name. Stores name files
// themselves (Store.FileName) so the columnar backend can use its own
// extension; this method remains the TSV form for compatibility.
func (s *Snapshot) FileName() string {
	return s.fileStem() + ".tsv"
}

// ParseFileName inverts FileName for either backend extension (.tsv or
// .col); ext reports which (empty for neither, which is an error).
func parseStoreFileName(name string) (agg string, level Level, start int64, ext string, err error) {
	switch {
	case strings.HasSuffix(name, ".tsv"):
		ext = ".tsv"
	case strings.HasSuffix(name, ".col"):
		ext = ".col"
	default:
		return "", 0, 0, "", ErrBadFile
	}
	agg, level, start, err = ParseFileName(name)
	return agg, level, start, ext, err
}

// ParseFileName inverts FileName; it accepts both the .tsv and the
// columnar .col extensions.
func ParseFileName(name string) (agg string, level Level, start int64, err error) {
	name = strings.TrimSuffix(name, ".tsv")
	name = strings.TrimSuffix(name, ".col")
	parts := strings.Split(name, "-")
	if len(parts) < 3 {
		return "", 0, 0, ErrBadFile
	}
	start, err = strconv.ParseInt(parts[len(parts)-1], 10, 64)
	if err != nil {
		return "", 0, 0, ErrBadFile
	}
	lname := parts[len(parts)-2]
	found := false
	for i, spec := range levels {
		if spec.name == lname {
			level = Level(i)
			found = true
			break
		}
	}
	if !found {
		return "", 0, 0, ErrBadFile
	}
	agg = strings.Join(parts[:len(parts)-2], "-")
	return agg, level, start, nil
}

// WriteTo writes the snapshot in TSV form: a header row with column
// names, one row per object, and a trailing statistics row.
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(line string) error {
		m, err := bw.WriteString(line)
		n += int64(m)
		return err
	}
	kinds := make([]string, len(s.Kinds))
	for i, k := range s.Kinds {
		switch k {
		case Counter:
			kinds[i] = "c"
		case Mode:
			kinds[i] = "m"
		default:
			kinds[i] = "g"
		}
	}
	if err := write("#key\t" + strings.Join(s.Columns, "\t") + "\n"); err != nil {
		return n, err
	}
	if err := write("#kind\t" + strings.Join(kinds, "\t") + "\n"); err != nil {
		return n, err
	}
	var buf []byte // reused across rows; AppendFloat avoids FormatFloat's string alloc
	for _, r := range s.Rows {
		buf = append(buf[:0], r.Key...)
		for _, v := range r.Values {
			buf = append(buf, '\t')
			buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
		}
		buf = append(buf, '\n')
		m, err := bw.Write(buf)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	stats := fmt.Sprintf("#stats\ttotal_before=%d\ttotal_after=%d\twindows=%d\n",
		s.TotalBefore, s.TotalAfter, s.Windows)
	if err := write(stats); err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// Read parses a snapshot written by WriteTo. Aggregation, Level and
// Start are not stored in the file body (they live in the name) and are
// left zero; callers set them from ParseFileName.
//
// The trailing #stats row doubles as an end-of-file marker: WriteTo
// always emits it last, so its absence means the file was truncated —
// possibly at a clean line boundary, which no per-line check could
// catch — and Read reports ErrBadFile.
func Read(r io.Reader) (*Snapshot, error) {
	sc := bufio.NewScanner(r)
	// Start small — snapshot lines are tens of bytes, and the cascade
	// parses hundreds of files per run — but allow pathological lines to
	// grow the buffer up to 16 MiB.
	sc.Buffer(make([]byte, 0, 4<<10), 16<<20)
	s := &Snapshot{Windows: 1}
	sawStats := false
	// Row values are carved out of chunk-allocated backing arrays so a
	// 30k-row file costs a handful of allocations, not one per row.
	var flat []float64
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "#key\t"):
			s.Columns = strings.Split(line, "\t")[1:]
		case strings.HasPrefix(line, "#kind\t"):
			for _, k := range strings.Split(line, "\t")[1:] {
				switch k {
				case "c":
					s.Kinds = append(s.Kinds, Counter)
				case "m":
					s.Kinds = append(s.Kinds, Mode)
				default:
					s.Kinds = append(s.Kinds, Gauge)
				}
			}
		case strings.HasPrefix(line, "#stats\t"):
			// All three keys must parse: a file cut mid-way through this
			// line would otherwise still pass the end-of-file check.
			statKeys := 0
			for _, f := range strings.Split(line, "\t")[1:] {
				k, v, ok := strings.Cut(f, "=")
				if !ok {
					continue
				}
				n, err := strconv.ParseUint(v, 10, 64)
				if err != nil {
					return nil, ErrBadFile
				}
				switch k {
				case "total_before":
					s.TotalBefore = n
					statKeys++
				case "total_after":
					s.TotalAfter = n
					statKeys++
				case "windows":
					s.Windows = int(n)
					statKeys++
				}
			}
			if statKeys != 3 {
				return nil, ErrBadFile
			}
			sawStats = true
		case line == "" || strings.HasPrefix(line, "#"):
			// Skip blanks and unknown comments.
		default:
			if s.Columns == nil {
				return nil, ErrBadFile
			}
			// The hot path: split fields in place (no []string per row)
			// and parse values into the shared chunk.
			nCols := len(s.Columns)
			tab := strings.IndexByte(line, '\t')
			if tab < 0 {
				return nil, ErrBadFile
			}
			key, rest := line[:tab], line[tab+1:]
			if len(flat)+nCols > cap(flat) {
				chunk := nCols * 256
				if chunk < 1024 {
					chunk = 1024
				}
				flat = make([]float64, 0, chunk)
			}
			start := len(flat)
			for i := 0; i < nCols; i++ {
				var f string
				if i == nCols-1 {
					if strings.IndexByte(rest, '\t') >= 0 {
						return nil, ErrBadFile // too many fields
					}
					f = rest
				} else {
					t := strings.IndexByte(rest, '\t')
					if t < 0 {
						return nil, ErrBadFile // too few fields
					}
					f, rest = rest[:t], rest[t+1:]
				}
				v, err := strconv.ParseFloat(f, 64)
				if err != nil {
					return nil, ErrBadFile
				}
				flat = append(flat, v)
			}
			s.Rows = append(s.Rows, Row{Key: key, Values: flat[start:len(flat):len(flat)]})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if s.Columns == nil || !sawStats {
		return nil, ErrBadFile
	}
	return s, nil
}

// Aggregate combines consecutive snapshots of one level into a snapshot
// of the next level, per §2.4: counter features average over all input
// windows with missing objects contributing zero; gauge features average
// only over the windows where the object appears.
func Aggregate(snaps []*Snapshot) (*Snapshot, error) {
	if len(snaps) == 0 {
		return nil, ErrNothingToAgg
	}
	first := snaps[0]
	if first.Level >= MaxLevel {
		return nil, ErrMixedLevels
	}
	type acc struct {
		sum     []float64
		present []int // windows in which the value appeared (gauges)
		modes   []map[float64]int
	}
	hasModes := false
	for _, k := range first.Kinds {
		if k == Mode {
			hasModes = true
			break
		}
	}
	accs := map[string]*acc{}
	totalWindows := 0
	var totalBefore, totalAfter uint64
	minStart := first.Start
	for _, s := range snaps {
		if s.Level != first.Level {
			return nil, ErrMixedLevels
		}
		if len(s.Columns) != len(first.Columns) {
			return nil, ErrSchemaChange
		}
		for i := range s.Columns {
			if s.Columns[i] != first.Columns[i] || s.Kinds[i] != first.Kinds[i] {
				return nil, ErrSchemaChange
			}
		}
		if s.Start < minStart {
			minStart = s.Start
		}
		totalWindows += s.Windows
		totalBefore += s.TotalBefore
		totalAfter += s.TotalAfter
		for _, r := range s.Rows {
			a, ok := accs[r.Key]
			if !ok {
				a = &acc{sum: make([]float64, len(first.Columns)), present: make([]int, len(first.Columns))}
				if hasModes {
					a.modes = make([]map[float64]int, len(first.Columns))
				}
				accs[r.Key] = a
			}
			for i, v := range r.Values {
				a.sum[i] += v * float64(s.Windows)
				a.present[i] += s.Windows
				if first.Kinds[i] == Mode && v != 0 {
					// Zero means "nothing observed this window" for the
					// TTL-mode columns, not a zero TTL; skip it like
					// gauges skip missing data points.
					if a.modes[i] == nil {
						a.modes[i] = map[float64]int{}
					}
					a.modes[i][v] += s.Windows
				}
			}
		}
	}
	out := &Snapshot{
		Aggregation: first.Aggregation,
		Level:       first.Level + 1,
		Start:       minStart,
		Columns:     first.Columns,
		Kinds:       first.Kinds,
		TotalBefore: totalBefore,
		TotalAfter:  totalAfter,
		Windows:     totalWindows,
	}
	keys := make([]string, 0, len(accs))
	for k := range accs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		a := accs[k]
		vals := make([]float64, len(first.Columns))
		for i := range vals {
			switch first.Kinds[i] {
			case Counter:
				// Average rate per base window over the whole period;
				// absent windows count as zero.
				vals[i] = a.sum[i] / float64(totalWindows)
			case Mode:
				// Window-weighted majority value; ties break low.
				var best float64
				bestW := -1
				for v, w := range a.modes[i] {
					if w > bestW || (w == bestW && v < best) {
						best, bestW = v, w
					}
				}
				vals[i] = best
			default:
				// Mean over the windows where the object was present.
				if a.present[i] > 0 {
					vals[i] = a.sum[i] / float64(a.present[i])
				}
			}
		}
		out.Rows = append(out.Rows, Row{Key: k, Values: vals})
	}
	return out, nil
}

// Find returns the first row for key, or nil. The first call builds a
// key index, so a batch of point lookups costs one pass over the rows
// instead of one scan per lookup. Find is not safe for concurrent use
// (neither was the scan it replaces: callers sort and mutate snapshots
// freely).
func (s *Snapshot) Find(key string) *Row {
	if s.keyIndex == nil || s.keyIndexRows != len(s.Rows) {
		// Build (or rebuild after rows were appended or truncated):
		// first occurrence wins, matching the linear scan on duplicate
		// keys.
		idx := make(map[string]int, len(s.Rows))
		for i := range s.Rows {
			if _, dup := idx[s.Rows[i].Key]; !dup {
				idx[s.Rows[i].Key] = i
			}
		}
		s.keyIndex, s.keyIndexRows = idx, len(s.Rows)
	}
	i, ok := s.keyIndex[key]
	if !ok || i >= len(s.Rows) {
		return nil
	}
	if s.Rows[i].Key != key {
		// Rows changed under the index (reordered or rewritten in place
		// without going through SortByColumn); fall back to the scan
		// once and drop the stale index so the next Find rebuilds it.
		s.keyIndex, s.keyIndexRows = nil, 0
		for j := range s.Rows {
			if s.Rows[j].Key == key {
				return &s.Rows[j]
			}
		}
		return nil
	}
	return &s.Rows[i]
}

// Value returns row's value in the named column; ok is false when the
// column does not exist.
func (s *Snapshot) Value(r *Row, column string) (float64, bool) {
	for i, c := range s.Columns {
		if c == column {
			return r.Values[i], true
		}
	}
	return 0, false
}

// SortByColumn orders rows by the named column, descending. It drops
// the lazy key index Find maintains, since row positions change.
func (s *Snapshot) SortByColumn(column string) {
	s.keyIndex, s.keyIndexRows = nil, 0
	idx := -1
	for i, c := range s.Columns {
		if c == column {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	sort.SliceStable(s.Rows, func(i, j int) bool {
		if s.Rows[i].Values[idx] != s.Rows[j].Values[idx] {
			return s.Rows[i].Values[idx] > s.Rows[j].Values[idx]
		}
		return s.Rows[i].Key < s.Rows[j].Key
	})
}
