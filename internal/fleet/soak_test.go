package fleet

import (
	"crypto/sha256"
	"fmt"
	"io/fs"
	"net"
	"net/netip"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/ipwire"
	"dnsobservatory/internal/observatory"
	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/transport"
	"dnsobservatory/internal/tsv"
	"dnsobservatory/internal/wal"
)

// The chaos soak's workload: soakWindows one-minute windows, perWin
// transactions per sensor per window, spaced to stay inside the window.
const (
	soakWindows = 4
	perWin      = 120
	soakSpacing = 450 * time.Millisecond // 120×450ms = 54s < one window
)

// soakTx builds sensor s's i-th transaction of window w. Every
// aggregation key — qname, esld, etld, srvip, qtype, rcode, srcsrv,
// aafqdn — embeds the sensor index, so the per-sensor key spaces are
// pairwise disjoint and each stays far below its Top-K capacity. That
// is what makes the fleet byte-identical to a single node: with no
// evictions and no shared keys, the engine state is a disjoint union of
// per-key state, each fed by one sensor's in-order stream, so the
// arrival interleaving across sensors cannot influence any snapshot.
func soakTx(t testing.TB, s, w, i int, base time.Time) *sie.Transaction {
	t.Helper()
	var q dnswire.Message
	q.ID = uint16(w*perWin + i)
	q.Flags.RecursionDesired = true
	qname := fmt.Sprintf("h%d.ex%d.zone%d.", i%5, s, s)
	q.Questions = append(q.Questions, dnswire.Question{
		Name: qname, Type: dnswire.Type(1 + s), Class: dnswire.ClassINET})
	qw, err := q.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	r := q
	r.Flags.Response = true
	r.Flags.Authoritative = true
	r.Flags.RCode = dnswire.RCode(s) // sensor-disjoint rcode dataset keys
	r.Answers = append(r.Answers, dnswire.RR{
		Name: qname, Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: 300,
		Data: dnswire.ARData{Addr: netip.MustParseAddr("192.0.2.1")},
	})
	rw, err := r.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	src := netip.AddrFrom4([4]byte{10, byte(s), 0, byte(i%4 + 1)}) // resolver
	dst := netip.AddrFrom4([4]byte{192, 0, 2, byte(s + 1)})        // nameserver
	at := base.Add(time.Duration(w)*time.Minute + time.Duration(i)*soakSpacing)
	return &sie.Transaction{
		QueryPacket:    ipwire.AppendIPv4UDP(nil, src, dst, 4242, ipwire.DNSPort, 64, qw),
		ResponsePacket: ipwire.AppendIPv4UDP(nil, dst, src, ipwire.DNSPort, 4242, 64, rw),
		QueryTime:      at,
		ResponseTime:   at.Add(5 * time.Millisecond),
		SensorID:       1,
	}
}

// soakEngine is one collector's consumer: a serial observatory pipeline
// writing minute snapshots into its own store, counting consumed
// transactions for the test's lockstep barriers.
type soakEngine struct {
	store    *tsv.Store
	pipe     *observatory.Pipeline
	aggNames []string
	consumed atomic.Int64
	done     chan struct{}
}

func newSoakEngine(t *testing.T) *soakEngine {
	t.Helper()
	store, err := tsv.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := &soakEngine{store: store, done: make(chan struct{})}
	aggs := observatory.StandardAggregations(0.01)
	for _, a := range aggs {
		e.aggNames = append(e.aggNames, a.Name)
	}
	e.pipe = observatory.New(observatory.DefaultConfig(), aggs, func(s *tsv.Snapshot) {
		if err := store.Put(s); err != nil {
			t.Error(err)
		}
	})
	return e
}

func (e *soakEngine) ingest(t *testing.T, sum *sie.Summarizer, tx *sie.Transaction, base time.Time) {
	var s sie.Summary
	if err := sum.Summarize(tx, &s); err != nil {
		t.Errorf("summarize: %v", err)
		e.pipe.RecordRejected()
		return
	}
	e.pipe.Ingest(&s, tx.QueryTime.Sub(base).Seconds())
}

// run consumes the collector's channel until Close.
func (e *soakEngine) run(t *testing.T, coll *transport.Collector, base time.Time) {
	go func() {
		defer close(e.done)
		var sum sie.Summarizer
		sum.KeepUnparsableResponses = true
		for tx := range coll.C() {
			e.ingest(t, &sum, tx, base)
			e.consumed.Add(1)
		}
	}()
}

func waitSoak(t *testing.T, what string, cond func() bool, diag ...func() string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			for _, d := range diag {
				t.Log(d())
			}
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// soakDigests hashes every file under a store directory by relative
// path — byte identity, not just semantic equality.
func soakDigests(t *testing.T, dir string) map[string][32]byte {
	t.Helper()
	out := map[string][32]byte{}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		out[rel] = sha256.Sum256(b)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestFleetChaosSoak is the durable-ingest acceptance run: three
// collectors share the sensor fleet by consistent hash, one is killed
// mid-window with acknowledgements disabled (so its sensors hold their
// whole batch), the survivors absorb its write-ahead log and the ring
// rebalances its sensors onto them. The merged TSV store must be
// byte-identical to a single collector seeing all the traffic: zero
// transactions lost, every duplicate from the retransmissions accounted
// by the dedup counters.
//
// Determinism argument, layer by layer: (1) sensor key spaces are
// disjoint and below every Top-K capacity, so engine state is per-key
// and arrival interleaving across sensors is irrelevant; (2) each
// sensor's stream arrives in order — directly, via WAL absorption (in
// journal order), or via retransmission (in sequence order), and the
// (sensor, epoch, seq) dedup guarantees exactly one delivery along
// exactly one of those paths; (3) lockstep window barriers keep every
// engine inside window w until all of w's traffic has been consumed,
// so window dumps cut at identical points; (4) the doomed collector's
// sensors are silent in window 0 and its log is absorbed before its
// sensors reconnect, so their keys' rate-decay history starts at the
// same instant everywhere. Rates are evaluated at the window end, not
// at arrival, which closes the last order dependence.
func TestFleetChaosSoak(t *testing.T) {
	base := time.Unix(1600000000, 0)

	// --- fleet: three collectors with WALs, B refuses to ack ---
	mkColl := func(cfg transport.CollectorConfig) (*transport.Collector, string, string) {
		t.Helper()
		ln, err := transport.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		coll := transport.NewCollector(cfg)
		dir := t.TempDir()
		if err := coll.OpenWAL(dir, wal.Options{}); err != nil {
			t.Fatal(err)
		}
		go coll.Serve(ln)
		return coll, ln.Addr().String(), dir
	}
	collA, addrA, _ := mkColl(transport.CollectorConfig{QueueLen: 64})
	collC, addrC, _ := mkColl(transport.CollectorConfig{QueueLen: 64})
	collB, addrB, walDirB := mkColl(transport.CollectorConfig{QueueLen: 64, DisableAcks: true})

	rt := NewRouter(RouterConfig{Cooldown: 50 * time.Millisecond, DialTimeout: 2 * time.Second})
	rt.SetNode("A", addrA)
	rt.SetNode("B", addrB)
	rt.SetNode("C", addrC)

	// Ownership before and after B's departure, from plain rings (the
	// same placement the router computes).
	ringABC, ringAC := NewRing(0), NewRing(0)
	for _, n := range []string{"A", "B", "C"} {
		ringABC.Add(n)
	}
	ringAC.Add("A")
	ringAC.Add("C")

	const nSensors = 12
	names := make([]string, nSensors)
	ownABC := map[string]string{}
	ownAC := map[string]string{}
	perNode := map[string]int{}
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
		o, _ := ringABC.Owner(names[i])
		ownABC[names[i]] = o
		perNode[o]++
		o2, _ := ringAC.Owner(names[i])
		ownAC[names[i]] = o2
	}
	for _, n := range []string{"A", "B", "C"} {
		if perNode[n] == 0 {
			t.Fatalf("degenerate placement %v: every member needs sensors for the soak", perNode)
		}
	}
	t.Logf("placement: %v", perNode)

	// --- sensors: routed dials, conns tracked so the test can sever
	// the doomed collector's links the instant it dies ---
	conns := map[string][]net.Conn{} // touched only by this goroutine
	sensors := map[string]*transport.Sensor{}
	for i, name := range names {
		name := name
		inner := rt.DialFunc(name)
		sensors[name] = transport.NewSensor(transport.SensorConfig{
			Name:  name,
			Epoch: uint64(i + 1),
			Dial: func() (net.Conn, error) {
				c, err := inner()
				if err == nil {
					conns[name] = append(conns[name], c)
				}
				return c, err
			},
			FlushBytes:   1 << 20, // manual Flush only
			WriteTimeout: 2 * time.Second,
			AckTimeout:   2 * time.Second,
			BackoffMin:   time.Millisecond,
			BackoffMax:   10 * time.Millisecond,
		})
	}

	engA, engC := newSoakEngine(t), newSoakEngine(t)
	engA.run(t, collA, base)
	engC.run(t, collC, base)

	exp := map[string]int64{}
	barrier := func(w int) {
		t.Helper()
		waitSoak(t, fmt.Sprintf("window %d consumption A=%d C=%d", w, exp["A"], exp["C"]), func() bool {
			return engA.consumed.Load() == exp["A"] && engC.consumed.Load() == exp["C"]
		}, func() string {
			out := fmt.Sprintf("consumed A=%d C=%d\nA %+v\nC %+v\nB %+v",
				engA.consumed.Load(), engC.consumed.Load(),
				collA.Stats(), collC.Stats(), collB.Stats())
			for _, name := range names {
				out += fmt.Sprintf("\n%s(%s->%s) %+v", name, ownABC[name], ownAC[name], sensors[name].Stats())
			}
			if ws, ok := collA.WALStatus(); ok {
				out += fmt.Sprintf("\nA wal %+v", ws)
			}
			if ws, ok := collC.WALStatus(); ok {
				out += fmt.Sprintf("\nC wal %+v", ws)
			}
			return out
		})
	}
	writeWindow := func(w int, owner map[string]string, skip string) {
		t.Helper()
		for i, name := range names {
			if owner[name] == skip {
				continue
			}
			s := sensors[name]
			for j := 0; j < perWin; j++ {
				if err := s.Write(soakTx(t, i, w, j, base)); err != nil {
					t.Fatalf("window %d sensor %s write: %v", w, name, err)
				}
			}
			if err := s.Flush(); err != nil {
				t.Fatalf("window %d sensor %s flush: %v", w, name, err)
			}
			exp[owner[name]] += perWin
		}
	}

	// Window 0: B's sensors are silent — their keys must have no
	// rate-decay history predating the failover.
	writeWindow(0, ownABC, "B")
	barrier(0)

	// Window 1: everyone transmits; B journals its share but never
	// acks, so its sensors keep the whole window buffered.
	writeWindow(1, ownABC, "")
	expB := int64(perNode["B"]) * perWin
	barrier(1)
	waitSoak(t, "B journaling its frames", func() bool {
		return int64(collB.Stats().Frames) == exp["B"] && exp["B"] == expB
	})

	// --- kill B mid-stream, before it ever snapshots ---
	collB.Close()
	for _, name := range names {
		if ownABC[name] == "B" {
			for _, c := range conns[name] {
				c.Close() // sever: the sensor's next flush fails fast and redials
			}
		}
	}
	if err := collB.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// Survivors absorb B's journal, each taking exactly the sensors the
	// rebalanced ring assigns to it — before any of those sensors can
	// reconnect and retransmit.
	peer, err := wal.Open(walDirB, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var totalAbsorbed uint64
	for _, surv := range []struct {
		name string
		coll *transport.Collector
	}{{"A", collA}, {"C", collC}} {
		surv := surv
		absorbed, deduped, err := surv.coll.AbsorbLog(peer, func(sensor string) bool {
			return ownAC[sensor] == surv.name
		})
		if err != nil {
			t.Fatalf("absorb into %s: %v", surv.name, err)
		}
		if deduped != 0 {
			t.Errorf("absorb into %s deduped %d frames it had never seen", surv.name, deduped)
		}
		totalAbsorbed += absorbed
	}
	if err := peer.Close(); err != nil {
		t.Fatal(err)
	}
	if totalAbsorbed != uint64(expB) {
		t.Fatalf("absorbed %d of B's %d journaled frames", totalAbsorbed, expB)
	}
	rt.RemoveNode("B")
	for _, name := range names {
		if ownABC[name] == "B" {
			exp[ownAC[name]] += perWin // the absorbed window-1 batch
		}
	}
	barrier(1)

	// Windows 2..n: the rebalanced fleet. Displaced sensors redial via
	// the router and retransmit their unacknowledged window-1 batch
	// ahead of the new traffic; the survivors dedup it.
	for w := 2; w < soakWindows; w++ {
		writeWindow(w, ownAC, "")
		barrier(w)
	}

	// --- drain, checkpoint, merge ---
	for _, name := range names {
		if err := sensors[name].Close(); err != nil {
			t.Fatalf("sensor %s close: %v", name, err)
		}
	}
	for _, surv := range []struct {
		name string
		coll *transport.Collector
		eng  *soakEngine
	}{{"A", collA, engA}, {"C", collC, engC}} {
		if err := surv.coll.Checkpoint(uint64(surv.eng.consumed.Load())); err != nil {
			t.Fatalf("checkpoint %s: %v", surv.name, err)
		}
		surv.coll.Close()
		<-surv.eng.done
		if err := surv.coll.CloseWAL(); err != nil {
			t.Fatalf("close WAL %s: %v", surv.name, err)
		}
		st := surv.coll.Stats()
		if st.Frames+st.Replayed != st.Deduped+st.DecodeErrors+st.Shed+st.Enqueued+st.Spilled {
			t.Errorf("%s accounting identity broken: %+v", surv.name, st)
		}
		if st.Shed != 0 || st.DecodeErrors != 0 {
			t.Errorf("%s lost transactions: %+v", surv.name, st)
		}
		if int64(st.Enqueued) != surv.eng.consumed.Load() {
			t.Errorf("%s enqueued %d but engine consumed %d", surv.name, st.Enqueued, surv.eng.consumed.Load())
		}
		surv.eng.pipe.Flush()
	}

	// Every duplicate is accounted: the displaced sensors retransmitted
	// exactly the frames the survivors had already absorbed from B's
	// journal — nothing more, nothing less.
	if d := collA.Stats().Deduped + collC.Stats().Deduped; d != totalAbsorbed {
		t.Errorf("deduped %d frames, want exactly the %d absorbed ones", d, totalAbsorbed)
	}
	if totalAbsorbed == 0 {
		t.Error("chaos produced no duplicates: the soak proved nothing")
	}

	merged, err := tsv.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := MergeStores(merged, 0, engA.aggNames, engA.store, engC.store); err != nil {
		t.Fatal(err)
	}
	if err := merged.CascadeAll(engA.aggNames, soakWindows*60); err != nil {
		t.Fatal(err)
	}

	// --- baseline: one collector seeing everything, same phasing ---
	bl := newSoakEngine(t)
	var sum sie.Summarizer
	sum.KeepUnparsableResponses = true
	for w := 0; w < soakWindows; w++ {
		for i, name := range names {
			if w == 0 && ownABC[name] == "B" {
				continue
			}
			for j := 0; j < perWin; j++ {
				bl.ingest(t, &sum, soakTx(t, i, w, j, base), base)
			}
		}
	}
	bl.pipe.Flush()
	if err := bl.store.CascadeAll(bl.aggNames, soakWindows*60); err != nil {
		t.Fatal(err)
	}

	// --- the verdict: byte identity ---
	want := soakDigests(t, bl.store.Dir())
	got := soakDigests(t, merged.Dir())
	if len(want) < len(bl.aggNames) {
		t.Fatalf("baseline wrote only %d files for %d aggregations", len(want), len(bl.aggNames))
	}
	if len(got) != len(want) {
		t.Errorf("file count differs: fleet %d, single-node %d", len(got), len(want))
	}
	for rel, sumW := range want {
		sumG, ok := got[rel]
		if !ok {
			t.Errorf("fleet store is missing %s", rel)
			continue
		}
		if sumG != sumW {
			t.Errorf("%s differs between fleet and single-node ingest", rel)
		}
	}
	for rel := range got {
		if _, ok := want[rel]; !ok {
			t.Errorf("fleet store has extra file %s", rel)
		}
	}
}
