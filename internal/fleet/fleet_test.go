package fleet

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"dnsobservatory/internal/tsv"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("sensor-%d", i)
	}
	return out
}

// TestRingDeterminism: placement is a pure function of the member set —
// insertion order is irrelevant, and every key resolves on a non-empty
// ring.
func TestRingDeterminism(t *testing.T) {
	a := NewRing(0)
	for _, n := range []string{"alpha", "beta", "gamma"} {
		a.Add(n)
	}
	b := NewRing(0)
	for _, n := range []string{"gamma", "alpha", "beta", "alpha"} {
		b.Add(n)
	}
	for _, k := range keys(500) {
		oa, ok := a.Owner(k)
		if !ok {
			t.Fatalf("no owner for %q", k)
		}
		ob, _ := b.Owner(k)
		if oa != ob {
			t.Fatalf("owner of %q differs by insertion order: %q vs %q", k, oa, ob)
		}
	}
	if _, ok := NewRing(0).Owner("x"); ok {
		t.Fatal("empty ring returned an owner")
	}
	if got := a.Nodes(); len(got) != 3 || got[0] != "alpha" || got[2] != "gamma" {
		t.Fatalf("Nodes() = %v", got)
	}
	if !a.Has("beta") || a.Has("delta") {
		t.Fatal("Has is wrong")
	}
}

// TestRingRebalanceMinimality: removing one member moves only that
// member's keys; the displaced keys scatter across the survivors rather
// than piling onto one.
func TestRingRebalanceMinimality(t *testing.T) {
	r := NewRing(0)
	for _, n := range []string{"A", "B", "C"} {
		r.Add(n)
	}
	ks := keys(3000)
	before := map[string]string{}
	perNode := map[string]int{}
	for _, k := range ks {
		o, _ := r.Owner(k)
		before[k] = o
		perNode[o]++
	}
	for _, n := range []string{"A", "B", "C"} {
		if perNode[n] == 0 {
			t.Fatalf("node %s owns nothing of %d keys", n, len(ks))
		}
	}

	r.Remove("B")
	inherited := map[string]int{}
	for _, k := range ks {
		o, _ := r.Owner(k)
		if before[k] != "B" {
			if o != before[k] {
				t.Fatalf("key %q moved %s->%s though B's departure should not touch it", k, before[k], o)
			}
			continue
		}
		if o == "B" {
			t.Fatalf("key %q still owned by removed member", k)
		}
		inherited[o]++
	}
	if len(inherited) < 2 {
		t.Fatalf("B's keys all fell to one survivor: %v", inherited)
	}
}

// TestRingOwnerAvoiding: the failover walk lands on the next acceptable
// member and reports failure only when no member qualifies.
func TestRingOwnerAvoiding(t *testing.T) {
	r := NewRing(0)
	r.Add("A")
	r.Add("B")
	owner, _ := r.Owner("some-sensor")
	alt, ok := r.OwnerAvoiding("some-sensor", func(n string) bool { return n == owner })
	if !ok || alt == owner {
		t.Fatalf("avoiding %q gave (%q, %v)", owner, alt, ok)
	}
	if _, ok := r.OwnerAvoiding("some-sensor", func(string) bool { return true }); ok {
		t.Fatal("avoiding everyone still found an owner")
	}
}

// TestRouterFailover: a failed dial starts the owner's cooldown, the
// next attempt walks to a survivor, and the cooldown expiring readmits
// the member.
func TestRouterFailover(t *testing.T) {
	rt := NewRouter(RouterConfig{Cooldown: 50 * time.Millisecond})
	rt.SetNode("n1", "127.0.0.1:1111")
	rt.SetNode("n2", "127.0.0.1:2222")

	const sensor = "sensor-7"
	owner, ownerAddr, ok := rt.Owner(sensor)
	if !ok {
		t.Fatal("no owner")
	}

	// The owner refuses connections; the other member answers.
	var dialed []string
	rt.dial = func(network, address string, timeout time.Duration) (net.Conn, error) {
		dialed = append(dialed, address)
		if address == ownerAddr {
			return nil, errors.New("refused")
		}
		c, s := net.Pipe()
		s.Close()
		return c, nil
	}

	dial := rt.DialFunc(sensor)
	if _, err := dial(); err == nil {
		t.Fatal("dial to the dead owner succeeded")
	}
	// Owner is cooling down: placement moves to the survivor.
	alt, _, ok := rt.Owner(sensor)
	if !ok || alt == owner {
		t.Fatalf("owner after failure = %q (ok=%v), want the other member", alt, ok)
	}
	conn, err := dial()
	if err != nil {
		t.Fatalf("failover dial: %v", err)
	}
	conn.Close()
	if len(dialed) != 2 {
		t.Fatalf("dialed %v, want owner then survivor", dialed)
	}

	// Status surfaces the cooldown, and expiry readmits the member.
	down := 0
	for _, st := range rt.Status() {
		if st.Down {
			down++
			if st.Node != owner {
				t.Fatalf("wrong member down: %+v", st)
			}
		}
	}
	if down != 1 {
		t.Fatalf("%d members down, want 1", down)
	}
	time.Sleep(60 * time.Millisecond)
	if back, _, _ := rt.Owner(sensor); back != owner {
		t.Fatalf("owner after cooldown = %q, want %q readmitted", back, owner)
	}

	// RemoveNode is permanent until re-added.
	rt.RemoveNode(owner)
	if n, _, ok := rt.Owner(sensor); !ok || n == owner {
		t.Fatalf("owner after removal = %q (ok=%v)", n, ok)
	}
}

// TestRouterNoCollector: an empty fleet, or one entirely in cooldown,
// yields ErrNoCollector rather than a hang or a bogus dial.
func TestRouterNoCollector(t *testing.T) {
	rt := NewRouter(RouterConfig{Cooldown: time.Hour})
	if _, err := rt.DialFunc("s")(); !errors.Is(err, ErrNoCollector) {
		t.Fatalf("empty fleet dial: %v", err)
	}
	rt.SetNode("only", "127.0.0.1:1")
	rt.MarkDown("only")
	if _, err := rt.DialFunc("s")(); !errors.Is(err, ErrNoCollector) {
		t.Fatalf("all-down fleet dial: %v", err)
	}
	// MarkDown of an unknown member is a no-op.
	rt.MarkDown("ghost")
	if len(rt.Status()) != 1 {
		t.Fatalf("Status = %+v", rt.Status())
	}
}

type fakeErr struct{ timeout bool }

func (e fakeErr) Error() string   { return "fake" }
func (e fakeErr) Timeout() bool   { return e.timeout }
func (e fakeErr) Temporary() bool { return e.timeout }

type fakeConn struct {
	net.Conn
	err error
}

func (f fakeConn) Read(p []byte) (int, error)  { return 0, f.err }
func (f fakeConn) Write(p []byte) (int, error) { return 0, f.err }

// TestRoutedConnFeedback: a broken read or write marks the member down,
// but a deadline pass — routine ack-sweep behavior — does not.
func TestRoutedConnFeedback(t *testing.T) {
	isDown := func(rt *Router, node string) bool {
		for _, st := range rt.Status() {
			if st.Node == node {
				return st.Down
			}
		}
		return false
	}

	rt := NewRouter(RouterConfig{Cooldown: time.Hour})
	rt.SetNode("n", "addr")
	rc := &routedConn{Conn: fakeConn{err: fakeErr{timeout: true}}, rt: rt, node: "n"}
	rc.Read(nil)
	rc.Write(nil)
	if isDown(rt, "n") {
		t.Fatal("timeout errors must not mark the member down")
	}
	rc = &routedConn{Conn: fakeConn{err: fakeErr{}}, rt: rt, node: "n"}
	rc.Read(nil)
	if !isDown(rt, "n") {
		t.Fatal("hard read error did not mark the member down")
	}
}

func mkSnap(start int64, rows []tsv.Row, before, after uint64) *tsv.Snapshot {
	return &tsv.Snapshot{
		Aggregation: "x", Level: tsv.Minutely, Start: start,
		Columns: []string{"hits"}, Kinds: []tsv.Kind{tsv.Counter},
		Windows: 1, Rows: rows, TotalBefore: before, TotalAfter: after,
	}
}

// TestMergeStores: per-collector partial windows unite exactly — rows
// joined in canonical order, statistics summed — and windows present in
// only one source pass through unchanged.
func TestMergeStores(t *testing.T) {
	newStore := func() *tsv.Store {
		s, err := tsv.NewStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	src1, src2, dst := newStore(), newStore(), newStore()
	if err := src1.Put(mkSnap(0, []tsv.Row{{Key: "a", Values: []float64{5}}, {Key: "b", Values: []float64{2}}}, 7, 7)); err != nil {
		t.Fatal(err)
	}
	if err := src2.Put(mkSnap(0, []tsv.Row{{Key: "c", Values: []float64{9}}}, 9, 9)); err != nil {
		t.Fatal(err)
	}
	if err := src2.Put(mkSnap(60, []tsv.Row{{Key: "d", Values: []float64{1}}}, 1, 1)); err != nil {
		t.Fatal(err)
	}

	if err := MergeStores(dst, 0, []string{"x"}, src1, src2); err != nil {
		t.Fatal(err)
	}
	m0, err := dst.Get("x", tsv.Minutely, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"c", "a", "b"} // descending hits
	if len(m0.Rows) != len(want) {
		t.Fatalf("merged rows = %+v", m0.Rows)
	}
	for i, k := range want {
		if m0.Rows[i].Key != k {
			t.Fatalf("row %d = %q, want %q (canonical order)", i, m0.Rows[i].Key, k)
		}
	}
	if m0.TotalBefore != 16 || m0.TotalAfter != 16 {
		t.Fatalf("totals not summed: %+v", m0)
	}
	m60, err := dst.Get("x", tsv.Minutely, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(m60.Rows) != 1 || m60.Rows[0].Key != "d" {
		t.Fatalf("singleton window mangled: %+v", m60.Rows)
	}

	// topK truncates the merged window like a single-node run would.
	dstK := newStore()
	if err := MergeStores(dstK, 2, []string{"x"}, src1, src2); err != nil {
		t.Fatal(err)
	}
	k0, err := dstK.Get("x", tsv.Minutely, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(k0.Rows) != 2 || k0.Rows[0].Key != "c" || k0.Rows[1].Key != "a" {
		t.Fatalf("topK merge = %+v", k0.Rows)
	}

	// An aggregation absent everywhere merges to nothing, not an error.
	if err := MergeStores(newStore(), 0, []string{"ghost"}, src1, src2); err != nil {
		t.Fatal(err)
	}
}
