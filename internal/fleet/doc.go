// Package fleet shards sensors across a set of collectors and merges
// their outputs back into one global view.
//
// Placement is a consistent-hash Ring over sensor names: deterministic
// (both ends compute the same owner), and minimally disruptive on
// membership change (a leaving collector's sensors scatter across the
// survivors; everyone else stays put). Router wraps the ring with dial
// addresses, down-cooldowns and connection-failure feedback, and its
// DialFunc plugs straight into transport.SensorConfig.Dial — the
// sensor's own reconnect machinery then lands it on its new owner
// after a rebalance or a crash, retransmitting its unacknowledged
// batch, which the collector-side (sensor, epoch, seq) dedup reduces
// to exactly-once.
//
// The read side is MergeStores: per-collector minute snapshots of one
// window are key-disjoint parts of the global window (each sensor
// reports to one collector), so tsv.MergeParts unites them exactly;
// cascading the merged store derives the coarser levels. Failover
// composes with the transport's durable ingest: a dead collector's
// write-ahead log is absorbed past its last checkpoint by the
// survivors (transport.Collector.AbsorbLog), each taking the sensors
// the ring now assigns to it.
package fleet
