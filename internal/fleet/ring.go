package fleet

import (
	"sort"
	"strconv"
)

// DefaultVnodes is the virtual-node count per member: enough that
// removing one collector scatters its sensors roughly evenly across the
// survivors, small enough that rebuilding the ring is trivial.
const DefaultVnodes = 64

// Ring is a consistent-hash ring assigning sensor names to collector
// nodes. Assignment is deterministic across processes and runs — both
// ends of the fleet (dnsgen picking a collector, an operator predicting
// placement) compute the same owner from the same member set. A member
// join or leave moves only the keys in the vnode arcs it gains or
// loses; everything else stays put, so a rebalance redials a fraction
// of the sensors, not all of them.
//
// Ring is not goroutine-safe; Router wraps it with a lock.
type Ring struct {
	vnodes int
	nodes  map[string]struct{}
	points []point // sorted by hash
}

type point struct {
	hash uint64
	node string
}

// NewRing returns an empty ring with the given virtual-node count per
// member (DefaultVnodes when <= 0).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, nodes: map[string]struct{}{}}
}

// fnv64a is FNV-1a followed by a 64-bit avalanche finalizer. Raw FNV-1a
// is nearly linear in the last byte, so "node#0".."node#63" hash to one
// contiguous run and the ring degenerates into a few giant arcs; the
// finalizer (splitmix64's mixer) spreads the vnodes uniformly.
func fnv64a(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Add inserts a member; adding an existing member is a no-op.
func (r *Ring) Add(node string) {
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{hash: fnv64a(node + "#" + strconv.Itoa(i)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
}

// Remove deletes a member; its arcs fall to the next vnode clockwise.
func (r *Ring) Remove(node string) {
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports membership.
func (r *Ring) Has(node string) bool {
	_, ok := r.nodes[node]
	return ok
}

// Nodes returns the members, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Owner returns the member owning key: the first vnode clockwise from
// the key's hash. ok is false on an empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	return r.OwnerAvoiding(key, nil)
}

// OwnerAvoiding is Owner skipping members the filter rejects — the
// failover walk: the next vnode clockwise belonging to an acceptable
// member takes the key. ok is false when no member is acceptable.
func (r *Ring) OwnerAvoiding(key string, avoid func(node string) bool) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := fnv64a(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if avoid == nil || !avoid(p.node) {
			return p.node, true
		}
	}
	return "", false
}
