package fleet

import (
	"fmt"
	"sort"

	"dnsobservatory/internal/tsv"
)

// MergeStores merges per-collector snapshot stores into one global
// store: for every aggregation and minute window present in any
// source, the per-collector partial snapshots are united with
// tsv.MergeParts (rows joined, statistics summed, canonical order
// restored) and written to dst. Sensors are sharded by name, so the
// parts of one window are key-disjoint and the union is exact — the
// merged store is what a single collector seeing the whole fleet's
// traffic would have written. topK 0 keeps every row; a positive topK
// truncates the merged window like a single-node aggregation would.
//
// Only the minute level is merged: coarser levels derive from it, so
// run Store.CascadeAll on dst afterwards rather than merging derived
// files.
func MergeStores(dst *tsv.Store, topK int, aggs []string, srcs ...*tsv.Store) error {
	for _, agg := range aggs {
		byStart := map[int64][]*tsv.Snapshot{}
		for _, src := range srcs {
			starts, err := src.List(agg, tsv.Minutely)
			if err != nil {
				return fmt.Errorf("fleet: list %s: %w", agg, err)
			}
			for _, start := range starts {
				snap, err := src.Get(agg, tsv.Minutely, start)
				if err != nil {
					return fmt.Errorf("fleet: read %s@%d: %w", agg, start, err)
				}
				byStart[start] = append(byStart[start], snap)
			}
		}
		starts := make([]int64, 0, len(byStart))
		for start := range byStart {
			starts = append(starts, start)
		}
		sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
		for _, start := range starts {
			merged, err := tsv.MergeParts(topK, byStart[start]...)
			if err != nil {
				return fmt.Errorf("fleet: merge %s@%d: %w", agg, start, err)
			}
			if err := dst.Put(merged); err != nil {
				return fmt.Errorf("fleet: put %s@%d: %w", agg, start, err)
			}
		}
	}
	return nil
}
