package fleet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"dnsobservatory/internal/transport"
)

// ErrNoCollector is returned by a Router dial when every fleet member
// is unknown or cooling down.
var ErrNoCollector = errors.New("fleet: no reachable collector")

// Router maps sensors to collectors: a Ring for placement plus dial
// addresses, liveness cooldowns and connection-failure feedback. Plug
// DialFunc into transport.SensorConfig.Dial and the sensor follows the
// ring — when its collector leaves the fleet or stops answering, the
// reconnect machinery it already has (backoff, whole-batch retransmit)
// lands it on the next owner, and the collector-side dedup keeps the
// overlap exactly-once.
//
// Router is safe for concurrent use by many sensors.
type Router struct {
	mu        sync.Mutex
	ring      *Ring
	addrs     map[string]string
	downUntil map[string]time.Time
	cooldown  time.Duration

	dialTimeout time.Duration
	// dial overrides net.DialTimeout (tests).
	dial func(network, address string, timeout time.Duration) (net.Conn, error)
}

// RouterConfig tunes a Router. The zero value is usable.
type RouterConfig struct {
	// Vnodes per member (DefaultVnodes when <= 0).
	Vnodes int
	// Cooldown is how long a member marked down is skipped before it is
	// probed again (default 5s).
	Cooldown time.Duration
	// DialTimeout bounds one connection attempt (default 5s).
	DialTimeout time.Duration
}

// NodeStatus is one fleet member's view for /healthz.
type NodeStatus struct {
	Node string `json:"node"`
	Addr string `json:"addr"`
	Down bool   `json:"down"`
}

// NewRouter returns an empty router; add members with SetNode.
func NewRouter(cfg RouterConfig) *Router {
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 5 * time.Second
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	return &Router{
		ring:        NewRing(cfg.Vnodes),
		addrs:       map[string]string{},
		downUntil:   map[string]time.Time{},
		cooldown:    cfg.Cooldown,
		dialTimeout: cfg.DialTimeout,
		dial:        net.DialTimeout,
	}
}

// SetNode adds (or re-addresses) a member and clears its cooldown.
func (rt *Router) SetNode(node, addr string) {
	rt.mu.Lock()
	rt.ring.Add(node)
	rt.addrs[node] = addr
	delete(rt.downUntil, node)
	rt.mu.Unlock()
}

// RemoveNode takes a member out of the ring; its sensors redial their
// new owners on the next reconnect.
func (rt *Router) RemoveNode(node string) {
	rt.mu.Lock()
	rt.ring.Remove(node)
	delete(rt.addrs, node)
	delete(rt.downUntil, node)
	rt.mu.Unlock()
}

// MarkDown starts a member's cooldown: placement skips it until the
// cooldown expires, then probes it again.
func (rt *Router) MarkDown(node string) {
	rt.mu.Lock()
	if _, ok := rt.addrs[node]; ok {
		rt.downUntil[node] = time.Now().Add(rt.cooldown)
	}
	rt.mu.Unlock()
}

// Owner returns the member currently owning the sensor, skipping
// members in cooldown. ok is false when none is available.
func (rt *Router) Owner(sensor string) (node, addr string, ok bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.ownerLocked(sensor)
}

func (rt *Router) ownerLocked(sensor string) (string, string, bool) {
	now := time.Now()
	node, ok := rt.ring.OwnerAvoiding(sensor, func(n string) bool {
		return now.Before(rt.downUntil[n])
	})
	if !ok {
		return "", "", false
	}
	return node, rt.addrs[node], true
}

// Status reports every member and whether it is cooling down, sorted
// by node name — the fleet half of /healthz.
func (rt *Router) Status() []NodeStatus {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	now := time.Now()
	out := make([]NodeStatus, 0, len(rt.addrs))
	for _, n := range rt.ring.Nodes() {
		out = append(out, NodeStatus{Node: n, Addr: rt.addrs[n], Down: now.Before(rt.downUntil[n])})
	}
	return out
}

// DialFunc returns a transport.SensorConfig.Dial that resolves the
// sensor's current owner on every attempt. A failed dial marks the
// owner down, so the sensor's next backoff attempt walks to the
// following member; read/write failures on the established connection
// mark it down too (the collector died mid-stream).
func (rt *Router) DialFunc(sensor string) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		node, addr, ok := rt.Owner(sensor)
		if !ok {
			return nil, ErrNoCollector
		}
		network, address := transport.SplitAddr(addr)
		conn, err := rt.dial(network, address, rt.dialTimeout)
		if err != nil {
			rt.MarkDown(node)
			return nil, fmt.Errorf("fleet: dial %s (%s): %w", node, addr, err)
		}
		return &routedConn{Conn: conn, rt: rt, node: node}, nil
	}
}

// routedConn feeds connection failures back into the router: a broken
// read or write (not a deadline pass, which is routine ack-sweep
// behavior) starts the member's cooldown.
type routedConn struct {
	net.Conn
	rt   *Router
	node string
}

func (rc *routedConn) note(err error) {
	if err == nil {
		return
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return
	}
	rc.rt.MarkDown(rc.node)
}

func (rc *routedConn) Read(p []byte) (int, error) {
	n, err := rc.Conn.Read(p)
	rc.note(err)
	return n, err
}

func (rc *routedConn) Write(p []byte) (int, error) {
	n, err := rc.Conn.Write(p)
	rc.note(err)
	return n, err
}
