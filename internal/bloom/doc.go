// Package bloom provides a classic Bloom filter (Bloom, 1970). The
// Observatory consults one before evicting an entry from the
// Space-Saving cache, so that one-off observations of rare keys do not
// churn the top-k list (paper §2.2).
//
// Concurrency: a Filter is a single-owner structure with no internal
// locking. Each Space-Saving cache owns its admission filter outright,
// and the sharded ingest engine gives every shard its own filter, so a
// filter is only ever touched from one goroutine at a time.
package bloom
