package bloom

import (
	"hash/maphash"
	"math"
	"math/bits"
)

// Filter is a Bloom filter. Create one with New; the zero value is not
// usable. Filter is not safe for concurrent use.
type Filter struct {
	bits  []uint64
	mask  uint64 // len(bits)*64 - 1; size is a power of two
	k     int
	seed  maphash.Seed
	det   bool   // deterministic hashing (NewSeeded)
	dseed uint64 // seed for the deterministic hash
	count uint64 // insertions, for saturation tracking
}

// New returns a filter sized for n expected elements at the given
// false-positive rate (0 < fp < 1). The bit array is rounded up to a
// power of two so hashing can mask instead of mod.
func New(n int, fp float64) *Filter {
	f := sized(n, fp)
	f.seed = maphash.MakeSeed()
	return f
}

// NewSeeded is New with a caller-supplied deterministic hash seed: two
// filters built with identical parameters map identical keys to
// identical bit patterns, in this process or any other. The detection
// layer depends on this — its serial and sharded deployments must reach
// byte-identical admission and seen-set state, which maphash's
// per-filter random seed would break probabilistically.
func NewSeeded(n int, fp float64, seed uint64) *Filter {
	f := sized(n, fp)
	f.det = true
	f.dseed = seed
	return f
}

// sized allocates a filter for n expected elements at false-positive
// rate fp, with optimal m = -n ln(fp) / (ln 2)^2 and k = m/n ln 2.
func sized(n int, fp float64) *Filter {
	if n < 1 {
		n = 1
	}
	if fp <= 0 || fp >= 1 {
		fp = 0.01
	}
	m := int(math.Ceil(-float64(n) * math.Log(fp) / (math.Ln2 * math.Ln2)))
	size := uint64(64)
	for size < uint64(m) {
		size <<= 1
	}
	k := int(math.Round(float64(size) / float64(n) * math.Ln2))
	// The power-of-two rounding inflates m/n and with it the m/n-optimal
	// k, but ceil(log2(1/fp)) hash functions already achieve the target
	// rate at the optimal size — more probes past that only cost time.
	if kfp := int(math.Ceil(-math.Log2(fp))); k > kfp {
		k = kfp
	}
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return &Filter{
		bits: make([]uint64, size/64),
		mask: size - 1,
		k:    k,
	}
}

// hash2 derives two independent 64-bit hashes of s; the k index
// functions are Kirsch–Mitzenmacher combinations h1 + i*h2.
func (f *Filter) hash2(s string) (uint64, uint64) {
	if f.det {
		h := f.dseed ^ 14695981039346656037
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
		return f.spread(mix64(h))
	}
	return f.spread(maphash.String(f.seed, s))
}

// hash2Bytes is hash2 over a byte slice; both hash functions guarantee
// identical output for the string and byte views of one key, so
// Contains(string(b)) == ContainsBytes(b) always holds.
func (f *Filter) hash2Bytes(b []byte) (uint64, uint64) {
	if f.det {
		h := f.dseed ^ 14695981039346656037
		for _, c := range b {
			h ^= uint64(c)
			h *= 1099511628211
		}
		return f.spread(mix64(h))
	}
	return f.spread(maphash.Bytes(f.seed, b))
}

// mix64 is the SplitMix64 finalizer: FNV-1a concentrates key entropy in
// the low bits, and the k index functions need it spread across all 64.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

func (f *Filter) spread(h uint64) (uint64, uint64) {
	h2 := h>>33 | h<<31
	h2 = h2*0x9e3779b97f4a7c15 + 1 // odd multiplier keeps h2 odd-ish spread
	return h, h2 | 1
}

// Sum64 returns the deterministic 64-bit digest of s, for callers that
// probe several identically-seeded filters with one key: compute the
// digest once and reuse it via AddHash/ContainsHash. Only seeded
// filters have a stable digest; Sum64 panics on a random-seeded one.
func (f *Filter) Sum64(s string) uint64 {
	if !f.det {
		panic("bloom: Sum64 on a random-seeded filter")
	}
	h := f.dseed ^ 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return mix64(h)
}

// Sum64Bytes is Sum64 for a byte-slice view; the digests agree.
func (f *Filter) Sum64Bytes(b []byte) uint64 {
	if !f.det {
		panic("bloom: Sum64Bytes on a random-seeded filter")
	}
	h := f.dseed ^ 14695981039346656037
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return mix64(h)
}

// AddHash inserts a key by its Sum64 digest. Valid only across filters
// sharing the seed and sizing of the filter that produced the digest.
func (f *Filter) AddHash(h uint64) {
	h1, h2 := f.spread(h)
	f.set(h1, h2)
}

// ContainsHash is Contains for a Sum64 digest.
func (f *Filter) ContainsHash(h uint64) bool {
	h1, h2 := f.spread(h)
	return f.test(h1, h2)
}

// Add inserts s.
func (f *Filter) Add(s string) {
	h1, h2 := f.hash2(s)
	f.set(h1, h2)
}

// AddBytes inserts b without converting it to a string.
func (f *Filter) AddBytes(b []byte) {
	h1, h2 := f.hash2Bytes(b)
	f.set(h1, h2)
}

func (f *Filter) set(h1, h2 uint64) {
	for i := 0; i < f.k; i++ {
		idx := (h1 + uint64(i)*h2) & f.mask
		f.bits[idx/64] |= 1 << (idx % 64)
	}
	f.count++
}

// Contains reports whether s may have been added. False positives occur
// at roughly the configured rate; false negatives never.
func (f *Filter) Contains(s string) bool {
	h1, h2 := f.hash2(s)
	return f.test(h1, h2)
}

// ContainsBytes is Contains for a byte-slice view of the key.
func (f *Filter) ContainsBytes(b []byte) bool {
	h1, h2 := f.hash2Bytes(b)
	return f.test(h1, h2)
}

func (f *Filter) test(h1, h2 uint64) bool {
	for i := 0; i < f.k; i++ {
		idx := (h1 + uint64(i)*h2) & f.mask
		if f.bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// Reset clears the filter. The Observatory resets its admission filter
// periodically so that the "seen once before" signal stays fresh.
func (f *Filter) Reset() {
	clear(f.bits)
	f.count = 0
}

// Count returns the number of Add calls since the last Reset.
func (f *Filter) Count() uint64 { return f.count }

// FillRatio returns the fraction of set bits, a saturation measure.
func (f *Filter) FillRatio() float64 {
	var set int
	for _, w := range f.bits {
		set += bits.OnesCount64(w)
	}
	return float64(set) / float64(len(f.bits)*64)
}
