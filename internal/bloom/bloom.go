package bloom

import (
	"hash/maphash"
	"math"
	"math/bits"
)

// Filter is a Bloom filter. Create one with New; the zero value is not
// usable. Filter is not safe for concurrent use.
type Filter struct {
	bits  []uint64
	mask  uint64 // len(bits)*64 - 1; size is a power of two
	k     int
	seed  maphash.Seed
	count uint64 // insertions, for saturation tracking
}

// New returns a filter sized for n expected elements at the given
// false-positive rate (0 < fp < 1). The bit array is rounded up to a
// power of two so hashing can mask instead of mod.
func New(n int, fp float64) *Filter {
	if n < 1 {
		n = 1
	}
	if fp <= 0 || fp >= 1 {
		fp = 0.01
	}
	// Optimal m = -n ln(fp) / (ln 2)^2, k = m/n ln 2.
	m := int(math.Ceil(-float64(n) * math.Log(fp) / (math.Ln2 * math.Ln2)))
	size := uint64(64)
	for size < uint64(m) {
		size <<= 1
	}
	k := int(math.Round(float64(size) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return &Filter{
		bits: make([]uint64, size/64),
		mask: size - 1,
		k:    k,
		seed: maphash.MakeSeed(),
	}
}

// hash2 derives two independent 64-bit hashes of s; the k index
// functions are Kirsch–Mitzenmacher combinations h1 + i*h2.
func (f *Filter) hash2(s string) (uint64, uint64) {
	return f.spread(maphash.String(f.seed, s))
}

// hash2Bytes is hash2 over a byte slice; maphash guarantees
// Bytes(seed, b) == String(seed, string(b)), so the two views of one key
// always agree.
func (f *Filter) hash2Bytes(b []byte) (uint64, uint64) {
	return f.spread(maphash.Bytes(f.seed, b))
}

func (f *Filter) spread(h uint64) (uint64, uint64) {
	h2 := h>>33 | h<<31
	h2 = h2*0x9e3779b97f4a7c15 + 1 // odd multiplier keeps h2 odd-ish spread
	return h, h2 | 1
}

// Add inserts s.
func (f *Filter) Add(s string) {
	h1, h2 := f.hash2(s)
	f.set(h1, h2)
}

// AddBytes inserts b without converting it to a string.
func (f *Filter) AddBytes(b []byte) {
	h1, h2 := f.hash2Bytes(b)
	f.set(h1, h2)
}

func (f *Filter) set(h1, h2 uint64) {
	for i := 0; i < f.k; i++ {
		idx := (h1 + uint64(i)*h2) & f.mask
		f.bits[idx/64] |= 1 << (idx % 64)
	}
	f.count++
}

// Contains reports whether s may have been added. False positives occur
// at roughly the configured rate; false negatives never.
func (f *Filter) Contains(s string) bool {
	h1, h2 := f.hash2(s)
	return f.test(h1, h2)
}

// ContainsBytes is Contains for a byte-slice view of the key.
func (f *Filter) ContainsBytes(b []byte) bool {
	h1, h2 := f.hash2Bytes(b)
	return f.test(h1, h2)
}

func (f *Filter) test(h1, h2 uint64) bool {
	for i := 0; i < f.k; i++ {
		idx := (h1 + uint64(i)*h2) & f.mask
		if f.bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// Reset clears the filter. The Observatory resets its admission filter
// periodically so that the "seen once before" signal stays fresh.
func (f *Filter) Reset() {
	clear(f.bits)
	f.count = 0
}

// Count returns the number of Add calls since the last Reset.
func (f *Filter) Count() uint64 { return f.count }

// FillRatio returns the fraction of set bits, a saturation measure.
func (f *Filter) FillRatio() float64 {
	var set int
	for _, w := range f.bits {
		set += bits.OnesCount64(w)
	}
	return float64(set) / float64(len(f.bits)*64)
}
