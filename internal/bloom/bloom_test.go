package bloom

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1000, 0.01)
	for i := 0; i < 1000; i++ {
		f.Add(fmt.Sprintf("key-%d", i))
	}
	for i := 0; i < 1000; i++ {
		if !f.Contains(fmt.Sprintf("key-%d", i)) {
			t.Fatalf("false negative for key-%d", i)
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	f := New(10000, 0.01)
	for i := 0; i < 10000; i++ {
		f.Add(fmt.Sprintf("in-%d", i))
	}
	var fp int
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.Contains(fmt.Sprintf("out-%d", i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	// Allow generous slack over the configured 1 %.
	if rate > 0.05 {
		t.Errorf("false positive rate %.4f too high", rate)
	}
}

func TestReset(t *testing.T) {
	f := New(100, 0.01)
	f.Add("alpha")
	if !f.Contains("alpha") {
		t.Fatal("missing before reset")
	}
	if f.Count() != 1 {
		t.Errorf("count = %d", f.Count())
	}
	f.Reset()
	if f.Contains("alpha") {
		t.Error("present after reset")
	}
	if f.Count() != 0 || f.FillRatio() != 0 {
		t.Errorf("count=%d fill=%f after reset", f.Count(), f.FillRatio())
	}
}

func TestFillRatioGrows(t *testing.T) {
	f := New(1000, 0.01)
	if f.FillRatio() != 0 {
		t.Error("fresh filter not empty")
	}
	for i := 0; i < 500; i++ {
		f.Add(fmt.Sprintf("k%d", i))
	}
	if f.FillRatio() <= 0 || f.FillRatio() >= 1 {
		t.Errorf("fill ratio %f", f.FillRatio())
	}
}

func TestDegenerateParams(t *testing.T) {
	for _, f := range []*Filter{New(0, 0.01), New(10, 0), New(10, 1.5), New(-5, -1)} {
		f.Add("x")
		if !f.Contains("x") {
			t.Error("degenerate filter lost an element")
		}
	}
}

func TestAddedAlwaysContained(t *testing.T) {
	f := New(500, 0.001)
	err := quick.Check(func(s string) bool {
		f.Add(s)
		return f.Contains(s)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestSeededDeterministic(t *testing.T) {
	// Two seeded filters with the same parameters must agree bit for bit:
	// this is what makes detection snapshots reproducible across runs and
	// across the serial/sharded engines.
	a := NewSeeded(1024, 0.01, 42)
	b := NewSeeded(1024, 0.01, 42)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d.example.com.", i)
		a.Add(key)
		b.AddBytes([]byte(key)) // string and bytes paths share the hash
	}
	if a.Count() != b.Count() {
		t.Fatalf("counts diverged: %d vs %d", a.Count(), b.Count())
	}
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("key-%d.example.com.", i)
		if a.Contains(key) != b.Contains(key) {
			t.Fatalf("membership diverged on %q", key)
		}
		if a.Contains(key) != a.ContainsBytes([]byte(key)) {
			t.Fatalf("string/bytes view diverged on %q", key)
		}
	}
}

func TestSeededSeedsDiffer(t *testing.T) {
	// Different seeds give different hash functions: false positives of
	// one filter should not systematically repeat in the other.
	a := NewSeeded(256, 0.05, 1)
	b := NewSeeded(256, 0.05, 2)
	for i := 0; i < 256; i++ {
		a.Add(fmt.Sprintf("in-%d", i))
		b.Add(fmt.Sprintf("in-%d", i))
	}
	shared := 0
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("out-%d", i)
		if a.Contains(key) && b.Contains(key) {
			shared++
		}
	}
	// Independent ~5% FP rates should intersect near 0.25%; 2% is far
	// outside any plausible run of a correct implementation.
	if shared > 100 {
		t.Fatalf("%d/5000 shared false positives: seeds not independent", shared)
	}
}

func TestSeededNoFalseNegatives(t *testing.T) {
	f := NewSeeded(1000, 0.01, 7)
	for i := 0; i < 1000; i++ {
		f.Add(fmt.Sprintf("item-%d", i))
	}
	for i := 0; i < 1000; i++ {
		if !f.Contains(fmt.Sprintf("item-%d", i)) {
			t.Fatalf("false negative on item-%d", i)
		}
	}
}
