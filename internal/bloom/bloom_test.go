package bloom

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1000, 0.01)
	for i := 0; i < 1000; i++ {
		f.Add(fmt.Sprintf("key-%d", i))
	}
	for i := 0; i < 1000; i++ {
		if !f.Contains(fmt.Sprintf("key-%d", i)) {
			t.Fatalf("false negative for key-%d", i)
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	f := New(10000, 0.01)
	for i := 0; i < 10000; i++ {
		f.Add(fmt.Sprintf("in-%d", i))
	}
	var fp int
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.Contains(fmt.Sprintf("out-%d", i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	// Allow generous slack over the configured 1 %.
	if rate > 0.05 {
		t.Errorf("false positive rate %.4f too high", rate)
	}
}

func TestReset(t *testing.T) {
	f := New(100, 0.01)
	f.Add("alpha")
	if !f.Contains("alpha") {
		t.Fatal("missing before reset")
	}
	if f.Count() != 1 {
		t.Errorf("count = %d", f.Count())
	}
	f.Reset()
	if f.Contains("alpha") {
		t.Error("present after reset")
	}
	if f.Count() != 0 || f.FillRatio() != 0 {
		t.Errorf("count=%d fill=%f after reset", f.Count(), f.FillRatio())
	}
}

func TestFillRatioGrows(t *testing.T) {
	f := New(1000, 0.01)
	if f.FillRatio() != 0 {
		t.Error("fresh filter not empty")
	}
	for i := 0; i < 500; i++ {
		f.Add(fmt.Sprintf("k%d", i))
	}
	if f.FillRatio() <= 0 || f.FillRatio() >= 1 {
		t.Errorf("fill ratio %f", f.FillRatio())
	}
}

func TestDegenerateParams(t *testing.T) {
	for _, f := range []*Filter{New(0, 0.01), New(10, 0), New(10, 1.5), New(-5, -1)} {
		f.Add("x")
		if !f.Contains("x") {
			t.Error("degenerate filter lost an element")
		}
	}
}

func TestAddedAlwaysContained(t *testing.T) {
	f := New(500, 0.001)
	err := quick.Check(func(s string) bool {
		f.Add(s)
		return f.Contains(s)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}
