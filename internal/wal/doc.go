// Package wal is a crash-safe, segment-based write-ahead spill log for
// the transport layer's durable-ingest path.
//
// A Log is a directory of segment files named by the position of their
// first record (wal-%016x.seg), so positions survive garbage
// collection of old segments. Records are length-prefixed and CRC32-
// checksummed, and carry a (sensor, epoch, seq) identity plus an opaque
// payload — enough for the collector to journal accepted frames before
// enqueue and deduplicate them on replay, and for the sensor to make
// its unacknowledged batch survive a process restart.
//
// Recovery at Open scans and checksums every segment: a tail torn by a
// crash mid-write on the active segment is truncated at the first bad
// record (the records before it stay usable), while corruption inside
// a sealed segment — data that was fully written and synced — fails
// with the typed ErrBadSegment so the caller decides about the loss.
//
// Durability is explicit: Append leaves the record in the OS page
// cache; Sync is the barrier (the transport syncs before it lets a
// frame onto the wire, and before it acknowledges a journaled frame).
// Options.SyncEvery adds an every-N-appends policy for callers without
// a natural batch boundary.
//
// Cursor tails the log while appends continue — the replay half of
// spill-then-replay. TrimTo garbage-collects sealed segments below a
// consumer checkpoint; Reset drops everything (a fully-acknowledged
// sensor log) while keeping positions monotone.
package wal
