package wal

import (
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALRecord throws arbitrary bytes at the two recovery surfaces.
//
// The in-memory contract: parseRecord never panics, never allocates
// beyond MaxRecordBody whatever the length prefix claims (it only
// slices its input), and maps every malformed buffer to a typed error
// — io.EOF / io.ErrUnexpectedEOF for clean / torn ends, ErrBadRecord
// for hostile lengths, checksum mismatches and undecodable bodies.
//
// The on-disk contract: Open over an active segment holding the same
// bytes never fails — whatever the damage, recovery truncates at the
// first bad record and the log accepts appends again.
func FuzzWALRecord(f *testing.F) {
	// Well-formed seeds: each record kind, empty payload, long name.
	l, err := Open(f.TempDir(), Options{})
	if err != nil {
		f.Fatal(err)
	}
	for _, r := range []Record{
		{Kind: KindData, Sensor: "s", Epoch: 1, Seq: 9, Payload: []byte("tx")},
		{Kind: KindAck, Sensor: "sensor-name", Epoch: 1 << 40, Seq: 1},
		{Kind: KindCheckpoint, Seq: 1 << 62},
	} {
		if _, err := l.Append(r); err != nil {
			f.Fatal(err)
		}
	}
	whole, err := os.ReadFile(filepath.Join(l.Dir(), segName(1)))
	if err != nil {
		f.Fatal(err)
	}
	l.Close()
	body := whole[len(segMagic):]
	f.Add(body)
	f.Add(body[:len(body)-1]) // torn tail
	f.Add(body[recHeader:])   // header cut off: misaligned stream
	// Malformed seeds steering the fuzzer at each error path.
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})             // zero length
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}) // hostile length
	f.Add([]byte{3, 0, 0, 0, 0, 0, 0, 0, 9, 9, 9})    // bad checksum
	func() {
		// Valid envelope, undecodable body (unknown kind).
		b := []byte{1, 0, 0, 0, 0, 0, 0, 0, 0xee}
		binary.LittleEndian.PutUint32(b[4:], crcOf(b[recHeader:]))
		f.Add(b)
	}()

	f.Fuzz(func(t *testing.T, data []byte) {
		// Surface 1: the pure decoder over the raw stream.
		off := 0
		for {
			rec, n, err := parseRecord(data[off:])
			if err != nil {
				switch {
				case errors.Is(err, io.EOF),
					errors.Is(err, io.ErrUnexpectedEOF),
					errors.Is(err, ErrBadRecord):
				default:
					t.Fatalf("untyped error from parseRecord: %v", err)
				}
				break
			}
			if n <= recHeader || n > recHeader+MaxRecordBody {
				t.Fatalf("parseRecord returned length %d", n)
			}
			if len(rec.Payload) > MaxRecordBody {
				t.Fatalf("over-long payload: %d bytes", len(rec.Payload))
			}
			off += n
		}

		// Surface 2: recovery over the same bytes as an active segment.
		dir := t.TempDir()
		seg := append([]byte(segMagic), data...)
		if err := os.WriteFile(filepath.Join(dir, segName(1)), seg, 0o644); err != nil {
			t.Fatal(err)
		}
		lg, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("recovery failed on an active segment: %v", err)
		}
		defer lg.Close()
		if _, err := lg.Append(Record{Kind: KindData, Sensor: "s", Seq: 1}); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := lg.Replay(func(uint64, Record) error { return nil }); err != nil {
			t.Fatalf("replay after recovery: %v", err)
		}
	})
}
