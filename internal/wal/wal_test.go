package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// testRecord builds a distinguishable data record.
func testRecord(i int) Record {
	return Record{
		Kind:    KindData,
		Sensor:  "sensor-a",
		Epoch:   42,
		Seq:     uint64(i + 1),
		Payload: []byte(fmt.Sprintf("payload-%d", i)),
	}
}

// appendN appends n test records and returns their positions.
func appendN(t *testing.T, l *Log, n int) []uint64 {
	t.Helper()
	pos := make([]uint64, n)
	for i := 0; i < n; i++ {
		p, err := l.Append(testRecord(i))
		if err != nil {
			t.Fatal(err)
		}
		pos[i] = p
	}
	return pos
}

// collect replays the whole log into a slice (payloads copied).
func collect(t *testing.T, l *Log) (pos []uint64, recs []Record) {
	t.Helper()
	err := l.Replay(func(p uint64, r Record) error {
		r.Payload = append([]byte(nil), r.Payload...)
		pos = append(pos, p)
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return pos, recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Kind: KindData, Sensor: "s1", Epoch: 7, Seq: 1, Payload: []byte("tx-1")},
		{Kind: KindData, Sensor: "s1", Epoch: 7, Seq: 2, Payload: []byte{}},
		{Kind: KindAck, Sensor: "s1", Epoch: 7, Seq: 2},
		{Kind: KindCheckpoint, Seq: 3},
		{Kind: KindData, Sensor: "", Epoch: 0, Seq: 0, Payload: bytes.Repeat([]byte("x"), MaxRecordBody-64)},
	}
	for i, r := range want {
		p, err := l.Append(r)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if p != uint64(i+1) {
			t.Fatalf("append %d: pos %d, want %d", i, p, i+1)
		}
	}
	if got := l.LastPos(); got != uint64(len(want)) {
		t.Fatalf("LastPos = %d, want %d", got, len(want))
	}
	if got := l.FirstPos(); got != 1 {
		t.Fatalf("FirstPos = %d, want 1", got)
	}
	pos, recs := collect(t, l)
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if pos[i] != uint64(i+1) {
			t.Errorf("record %d: pos %d", i, pos[i])
		}
		w := want[i]
		if r.Kind != w.Kind || r.Sensor != w.Sensor || r.Epoch != w.Epoch || r.Seq != w.Seq ||
			!bytes.Equal(r.Payload, w.Payload) {
			t.Errorf("record %d: got %+v, want %+v", i, r, w)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Appends != uint64(len(want)) || st.Syncs == 0 {
		t.Errorf("stats = %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(testRecord(0)); !errors.Is(err, ErrClosed) {
		t.Errorf("append after close: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Errorf("sync after close: %v", err)
	}
}

func TestRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	appendN(t, l, n)
	if segs := l.Segments(); segs < 3 {
		t.Fatalf("expected rotation, got %d segments", segs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything recovered, positions continue.
	l2, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if st := l2.Stats(); st.Recovered != n {
		t.Fatalf("recovered %d records, want %d", st.Recovered, n)
	}
	pos, recs := collect(t, l2)
	if len(recs) != n || pos[0] != 1 || pos[n-1] != n {
		t.Fatalf("replay after reopen: %d records, pos [%d..%d]", len(recs), pos[0], pos[len(pos)-1])
	}
	p, err := l2.Append(testRecord(n))
	if err != nil {
		t.Fatal(err)
	}
	if p != n+1 {
		t.Fatalf("append after reopen at pos %d, want %d", p, n+1)
	}
}

func TestTruncatedTailRecovery(t *testing.T) {
	for _, cut := range []struct {
		name string
		want uint64 // records surviving recovery
		muck func(t *testing.T, path string)
	}{
		{"torn-record", 9, func(t *testing.T, path string) {
			fi, _ := os.Stat(path)
			if err := os.Truncate(path, fi.Size()-3); err != nil {
				t.Fatal(err)
			}
		}},
		{"flipped-byte", 9, func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			b[len(b)-1] ^= 0xff // corrupt the last record's payload: CRC fails
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		// Garbage after the last record: only the garbage goes.
		{"garbage-appended", 10, func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			f.Write([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
			f.Close()
		}},
	} {
		t.Run(cut.name, func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, l, 10)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
			cut.muck(t, segs[len(segs)-1])

			l2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("recovery must succeed on a torn tail: %v", err)
			}
			defer l2.Close()
			st := l2.Stats()
			if st.TruncatedBytes == 0 {
				t.Error("no bytes reported truncated")
			}
			if st.Recovered != cut.want {
				t.Errorf("recovered %d records, want %d (tail dropped)", st.Recovered, cut.want)
			}
			_, recs := collect(t, l2)
			if uint64(len(recs)) != cut.want {
				t.Errorf("replay sees %d records, want %d", len(recs), cut.want)
			}
			// The log keeps working at the truncation point.
			if p, err := l2.Append(testRecord(9)); err != nil || p != cut.want+1 {
				t.Errorf("append after recovery: pos %d, err %v", p, err)
			}
		})
	}
}

func TestSealedSegmentCorruption(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 40)
	if l.Segments() < 3 {
		t.Fatal("need several segments")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	b, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(segs[0], b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrBadSegment) {
		t.Fatalf("open over a corrupt sealed segment: %v, want ErrBadSegment", err)
	}

	// A missing middle segment breaks position continuity the same way.
	b[len(b)-1] ^= 0xff // restore the byte
	if err := os.WriteFile(segs[0], b, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(segs[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrBadSegment) {
		t.Fatalf("open over a segment gap: %v, want ErrBadSegment", err)
	}
}

func TestCursorTailsLiveAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 5)

	cur := l.NewCursor(1)
	defer cur.Close()
	read := func(wantPos uint64, wantOK bool) Record {
		t.Helper()
		pos, rec, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if ok != wantOK {
			t.Fatalf("ok = %v, want %v", ok, wantOK)
		}
		if ok && pos != wantPos {
			t.Fatalf("pos = %d, want %d", pos, wantPos)
		}
		return rec
	}
	for i := 1; i <= 5; i++ {
		rec := read(uint64(i), true)
		if rec.Seq != uint64(i) {
			t.Fatalf("record %d: seq %d", i, rec.Seq)
		}
	}
	read(0, false) // caught up

	// Appends continue across several rotations; the cursor follows.
	appendN(t, l, 30)
	for i := 6; i <= 35; i++ {
		read(uint64(i), true)
	}
	read(0, false)
	if cur.Pos() != 36 {
		t.Fatalf("cursor pos = %d, want 36", cur.Pos())
	}
}

func TestTrimToAndCursorSkip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 40)
	segsBefore := l.Segments()
	if err := l.TrimTo(30); err != nil {
		t.Fatal(err)
	}
	if l.Segments() >= segsBefore {
		t.Fatalf("trim removed nothing: %d -> %d segments", segsBefore, l.Segments())
	}
	first := l.FirstPos()
	if first <= 1 || first > 31 {
		t.Fatalf("FirstPos after trim = %d", first)
	}
	if st := l.Stats(); st.Trims == 0 {
		t.Error("trims not counted")
	}
	// A cursor starting below the trimmed range skips to what remains.
	cur := l.NewCursor(1)
	defer cur.Close()
	pos, _, ok, err := cur.Next()
	if err != nil || !ok {
		t.Fatalf("next after trim: ok=%v err=%v", ok, err)
	}
	if pos != first {
		t.Fatalf("cursor resumed at %d, want %d", pos, first)
	}
	// The active segment never goes away, even when fully checkpointed.
	if err := l.TrimTo(1000); err != nil {
		t.Fatal(err)
	}
	if l.Segments() != 1 {
		t.Fatalf("active segment removed: %d segments", l.Segments())
	}
}

func TestResetKeepsPositionsMonotone(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 10)
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, recs := collect(t, l); len(recs) != 0 {
		t.Fatalf("reset left %d records", len(recs))
	}
	p, err := l.Append(testRecord(0))
	if err != nil {
		t.Fatal(err)
	}
	if p != 11 {
		t.Fatalf("append after reset at pos %d, want 11", p)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Monotone across a reopen too.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if p, err := l2.Append(testRecord(1)); err != nil || p != 12 {
		t.Fatalf("append after reopen at pos %d, err %v", p, err)
	}
}

func TestAppendLimitsAndSyncEvery(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(Record{Kind: KindData, Payload: make([]byte, MaxRecordBody)}); !errors.Is(err, ErrRecordTooLarge) {
		t.Errorf("oversized payload: %v", err)
	}
	if _, err := l.Append(Record{Kind: KindData, Sensor: string(make([]byte, MaxSensorName+1))}); !errors.Is(err, ErrRecordTooLarge) {
		t.Errorf("oversized sensor name: %v", err)
	}
	appendN(t, l, 4)
	if st := l.Stats(); st.Syncs < 2 {
		t.Errorf("SyncEvery=2 after 4 appends: %d syncs", st.Syncs)
	}
}

func TestShortActiveHeaderRewritten(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err := os.WriteFile(segs[0], []byte("DOB"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("short header on the active segment must recover: %v", err)
	}
	defer l2.Close()
	if p, err := l2.Append(testRecord(0)); err != nil || p != 1 {
		t.Fatalf("append after header rewrite: pos %d, err %v", p, err)
	}
}
