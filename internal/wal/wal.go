package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// Segment files are named by the position of their first record, so
// positions stay stable when old segments are garbage-collected:
//
//	wal-0000000000000001.seg
//
// Every segment starts with an 8-byte magic and holds length-prefixed,
// checksummed records:
//
//	[body length: u32 LE][crc32(body): u32 LE][body]
//	body = [kind: 1 byte][epoch: uvarint][len(sensor): uvarint][sensor]
//	       [seq: uvarint][payload: rest]
//
// Positions are 1-based and strictly increasing across segments,
// rotations and Reset, within the lifetime of one directory.
const (
	segMagic   = "DOBSWAL1"
	segPrefix  = "wal-"
	segSuffix  = ".seg"
	recHeader  = 8 // length + checksum
	baseDigits = 16
)

// MaxRecordBody bounds one record body: comfortably above the largest
// transport frame payload plus the sensor-name and varint overhead, and
// the cap on what recovery will ever allocate for one record, whatever
// the length prefix claims.
const MaxRecordBody = 1<<17 + 512

// MaxSensorName bounds the sensor name carried in a record. It matches
// the transport hello limit.
const MaxSensorName = 256

// Kind tags what a record means to the layer that wrote it.
type Kind uint8

const (
	// KindData carries one spilled frame payload (a serialized
	// transaction) under the writer's (sensor, epoch, seq) identity.
	KindData Kind = 1
	// KindAck marks every data record with Seq' <= Seq as delivered
	// (sensor-side write-ahead logs).
	KindAck Kind = 2
	// KindCheckpoint marks every record with position <= Seq as consumed
	// and durably snapshotted (collector-side journals); replay after a
	// restart starts past it.
	KindCheckpoint Kind = 3
)

// Errors returned by the log. Recovery maps every malformed byte
// sequence to one of these (or io.ErrUnexpectedEOF for a record torn by
// a crash mid-write) — it never panics and never allocates more than
// MaxRecordBody for one record.
var (
	// ErrBadSegment reports corruption in a sealed segment — unlike a
	// torn active tail, which recovery truncates, a sealed segment was
	// fully written and synced, so damage there is data loss the caller
	// must decide about.
	ErrBadSegment = errors.New("wal: corrupt sealed segment")
	// ErrBadRecord reports a record that is structurally malformed: a
	// zero or oversized length prefix, a checksum mismatch, or an
	// undecodable body.
	ErrBadRecord = errors.New("wal: malformed record")
	// ErrRecordTooLarge is returned by Append for a record exceeding
	// MaxRecordBody or MaxSensorName.
	ErrRecordTooLarge = errors.New("wal: record exceeds size limit")
	// ErrClosed is returned by every method after Close.
	ErrClosed = errors.New("wal: log is closed")
)

// Record is one log entry.
type Record struct {
	Kind   Kind
	Sensor string
	Epoch  uint64
	Seq    uint64
	// Payload is the record body tail. Decoded records alias the read
	// buffer: valid until the next record is read; copy to retain.
	Payload []byte
}

// Options tunes a Log. The zero value is usable.
type Options struct {
	// SegmentBytes is the rotation threshold (default 8 MiB): an append
	// that would grow the active segment past it seals the segment and
	// starts a new one.
	SegmentBytes int
	// SyncEvery fsyncs the active segment after every N appends. 0 (the
	// default) leaves syncing to explicit Sync calls — the writing layer
	// aligns durability barriers with its own batching — plus the
	// implicit sync on rotation and Close.
	SyncEvery int
}

// Stats is a snapshot of a log's counters.
type Stats struct {
	// Appends counts records appended in this process.
	Appends uint64
	// Syncs counts fsyncs of the active segment.
	Syncs uint64
	// Resets counts whole-log resets.
	Resets uint64
	// Trims counts sealed segments garbage-collected by TrimTo.
	Trims uint64
	// Recovered counts records found on disk at Open.
	Recovered uint64
	// TruncatedBytes counts bytes of torn active tail discarded at Open.
	TruncatedBytes uint64
}

// segment is one on-disk file of the log.
type segment struct {
	base    uint64 // position of its first record
	path    string
	records uint64
	size    int64 // committed bytes, magic included
}

// Log is a crash-safe, segment-based append log. All methods are safe
// for concurrent use; Cursor gives a reader that tails the log while
// appends continue.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex
	segs    []*segment
	active  *os.File // append handle for the last segment
	nextPos uint64
	dirty   int // appends since the last fsync
	scratch []byte
	closed  bool

	appends   atomic.Uint64
	syncs     atomic.Uint64
	resets    atomic.Uint64
	trims     atomic.Uint64
	recovered uint64
	truncated uint64
}

// Open opens (creating if needed) the log in dir and recovers its
// state: every segment is scanned and checksummed, a torn tail on the
// active segment is truncated at the first bad record, and corruption
// in a sealed segment fails with ErrBadSegment.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 8 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts}
	names, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	for _, path := range names {
		base, ok := parseSegName(filepath.Base(path))
		if !ok {
			continue // foreign file; leave it alone
		}
		l.segs = append(l.segs, &segment{base: base, path: path})
	}
	if len(l.segs) == 0 {
		if err := l.addSegment(1); err != nil {
			return nil, err
		}
		l.nextPos = 1
		return l, nil
	}
	for i, s := range l.segs {
		if i > 0 {
			prev := l.segs[i-1]
			if s.base != prev.base+prev.records {
				return nil, fmt.Errorf("%w: %s: first position %d does not follow %s (%d records from %d)",
					ErrBadSegment, s.path, s.base, prev.path, prev.records, prev.base)
			}
		}
		if err := l.scanSegment(s, i == len(l.segs)-1); err != nil {
			return nil, err
		}
	}
	last := l.segs[len(l.segs)-1]
	l.nextPos = last.base + last.records
	f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	l.active = f
	return l, nil
}

// parseSegName extracts the base position from a segment file name.
func parseSegName(name string) (uint64, bool) {
	if len(name) != len(segPrefix)+baseDigits+len(segSuffix) ||
		name[:len(segPrefix)] != segPrefix || name[len(name)-len(segSuffix):] != segSuffix {
		return 0, false
	}
	var base uint64
	for _, c := range []byte(name[len(segPrefix) : len(segPrefix)+baseDigits]) {
		switch {
		case c >= '0' && c <= '9':
			base = base<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			base = base<<4 | uint64(c-'a'+10)
		default:
			return 0, false
		}
	}
	return base, base > 0
}

// segName renders the file name for a segment starting at pos.
func segName(pos uint64) string {
	return fmt.Sprintf("%s%0*x%s", segPrefix, baseDigits, pos, segSuffix)
}

// scanSegment validates one segment and counts its records. On the
// active (last) segment a torn or corrupt tail is truncated at the
// first bad record; on a sealed segment it is ErrBadSegment.
func (l *Log) scanSegment(s *segment, last bool) error {
	b, err := os.ReadFile(s.path)
	if err != nil {
		return err
	}
	if len(b) < len(segMagic) || string(b[:len(segMagic)]) != segMagic {
		if !last {
			return fmt.Errorf("%w: %s: bad segment header", ErrBadSegment, s.path)
		}
		// A crash between creating the file and writing the magic leaves
		// a short header; rewrite the segment as empty.
		l.truncated += uint64(len(b))
		if err := os.WriteFile(s.path, []byte(segMagic), 0o644); err != nil {
			return err
		}
		s.size = int64(len(segMagic))
		return nil
	}
	off := len(segMagic)
	for off < len(b) {
		_, n, err := parseRecord(b[off:])
		if err != nil {
			if !last {
				return fmt.Errorf("%w: %s: offset %d: %v", ErrBadSegment, s.path, off, err)
			}
			l.truncated += uint64(len(b) - off)
			if err := os.Truncate(s.path, int64(off)); err != nil {
				return err
			}
			break
		}
		s.records++
		l.recovered++
		off += n
	}
	s.size = int64(off)
	return nil
}

// parseRecord decodes one record from the head of b. It returns the
// record and its encoded length, io.EOF on empty input,
// io.ErrUnexpectedEOF when b ends inside the record, and ErrBadRecord
// for structural damage. The payload aliases b.
func parseRecord(b []byte) (Record, int, error) {
	var rec Record
	if len(b) == 0 {
		return rec, 0, io.EOF
	}
	if len(b) < recHeader {
		return rec, 0, io.ErrUnexpectedEOF
	}
	n := binary.LittleEndian.Uint32(b)
	if n == 0 || n > MaxRecordBody {
		return rec, 0, ErrBadRecord
	}
	if len(b) < recHeader+int(n) {
		return rec, 0, io.ErrUnexpectedEOF
	}
	body := b[recHeader : recHeader+int(n)]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(b[4:]) {
		return rec, 0, ErrBadRecord
	}
	if err := decodeBody(body, &rec); err != nil {
		return rec, 0, err
	}
	return rec, recHeader + int(n), nil
}

// decodeBody parses a record body into rec. The payload aliases body.
func decodeBody(body []byte, rec *Record) error {
	if len(body) < 1 {
		return ErrBadRecord
	}
	kind := Kind(body[0])
	if kind != KindData && kind != KindAck && kind != KindCheckpoint {
		return ErrBadRecord
	}
	b := body[1:]
	epoch, n := binary.Uvarint(b)
	if n <= 0 {
		return ErrBadRecord
	}
	b = b[n:]
	nameLen, n := binary.Uvarint(b)
	if n <= 0 || nameLen > MaxSensorName || nameLen > uint64(len(b)-n) {
		return ErrBadRecord
	}
	name := b[n : n+int(nameLen)]
	b = b[n+int(nameLen):]
	seq, n := binary.Uvarint(b)
	if n <= 0 {
		return ErrBadRecord
	}
	rec.Kind = kind
	rec.Sensor = string(name)
	rec.Epoch = epoch
	rec.Seq = seq
	rec.Payload = b[n:]
	return nil
}

// appendUvarint appends v in base-128 varint encoding.
func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// addSegment creates a fresh segment starting at pos and makes it the
// active one. Caller holds l.mu (or is Open, single-threaded).
func (l *Log) addSegment(pos uint64) error {
	path := filepath.Join(l.dir, segName(pos))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(segMagic); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	syncDir(l.dir)
	l.segs = append(l.segs, &segment{base: pos, path: path, size: int64(len(segMagic))})
	l.active = f
	return nil
}

// syncDir fsyncs a directory so a just-created or just-removed segment
// file survives a crash. Best-effort: some filesystems reject it.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Append writes one record and returns its position. Durability
// follows the sync policy: the record is in the OS page cache on
// return, on stable storage after the next Sync (or immediately when
// SyncEvery batches fill).
func (l *Log) Append(r Record) (uint64, error) {
	if len(r.Sensor) > MaxSensorName {
		return 0, ErrRecordTooLarge
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	l.scratch = append(l.scratch[:0], 0, 0, 0, 0, 0, 0, 0, 0)
	l.scratch = append(l.scratch, byte(r.Kind))
	l.scratch = appendUvarint(l.scratch, r.Epoch)
	l.scratch = appendUvarint(l.scratch, uint64(len(r.Sensor)))
	l.scratch = append(l.scratch, r.Sensor...)
	l.scratch = appendUvarint(l.scratch, r.Seq)
	l.scratch = append(l.scratch, r.Payload...)
	body := l.scratch[recHeader:]
	if len(body) > MaxRecordBody {
		return 0, ErrRecordTooLarge
	}
	binary.LittleEndian.PutUint32(l.scratch, uint32(len(body)))
	binary.LittleEndian.PutUint32(l.scratch[4:], crc32.ChecksumIEEE(body))

	s := l.segs[len(l.segs)-1]
	if s.records > 0 && s.size+int64(len(l.scratch)) > int64(l.opts.SegmentBytes) {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
		if err := l.active.Close(); err != nil {
			return 0, err
		}
		if err := l.addSegment(l.nextPos); err != nil {
			return 0, err
		}
		s = l.segs[len(l.segs)-1]
	}
	if _, err := l.active.Write(l.scratch); err != nil {
		return 0, err
	}
	s.size += int64(len(l.scratch))
	s.records++
	pos := l.nextPos
	l.nextPos++
	l.dirty++
	l.appends.Add(1)
	if l.opts.SyncEvery > 0 && l.dirty >= l.opts.SyncEvery {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	return pos, nil
}

// Sync fsyncs the active segment if it has unsynced appends.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.dirty == 0 {
		return nil
	}
	if err := l.active.Sync(); err != nil {
		return err
	}
	l.dirty = 0
	l.syncs.Add(1)
	return nil
}

// Close syncs and closes the log. The directory can be re-Opened.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	err := l.syncLocked()
	if cerr := l.active.Close(); err == nil {
		err = cerr
	}
	l.closed = true
	return err
}

// Replay calls fn for every record currently in the log, in position
// order, holding the log's lock (appends wait). A decode failure —
// possible only for corruption that appeared after Open — returns
// ErrBadSegment. fn errors abort the replay. The record payload is
// valid only during the call.
func (l *Log) Replay(fn func(pos uint64, r Record) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	for _, s := range l.segs {
		b, err := os.ReadFile(s.path)
		if err != nil {
			return err
		}
		if int64(len(b)) > s.size {
			b = b[:s.size] // never read past the committed bytes
		}
		if len(b) < len(segMagic) || string(b[:len(segMagic)]) != segMagic {
			return fmt.Errorf("%w: %s: bad segment header", ErrBadSegment, s.path)
		}
		off := len(segMagic)
		pos := s.base
		for off < len(b) {
			rec, n, err := parseRecord(b[off:])
			if err != nil {
				return fmt.Errorf("%w: %s: offset %d: %v", ErrBadSegment, s.path, off, err)
			}
			if err := fn(pos, rec); err != nil {
				return err
			}
			pos++
			off += n
		}
	}
	return nil
}

// TrimTo garbage-collects sealed segments whose records all have
// positions <= pos — the caller's durable checkpoint. The active
// segment is never removed, so positions keep increasing.
func (l *Log) TrimTo(pos uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	kept := l.segs[:0]
	removed := false
	for i, s := range l.segs {
		if i < len(l.segs)-1 && s.base+s.records <= pos+1 {
			if err := os.Remove(s.path); err != nil {
				return err
			}
			l.trims.Add(1)
			removed = true
			continue
		}
		kept = append(kept, s)
	}
	l.segs = kept
	if removed {
		syncDir(l.dir)
	}
	return nil
}

// Reset discards every record and starts an empty segment. Positions
// continue from where they were — a log reset at position N hands out
// N+1 next, so readers never see a position reused.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.active.Close(); err != nil {
		return err
	}
	for _, s := range l.segs {
		if err := os.Remove(s.path); err != nil {
			return err
		}
	}
	l.segs = l.segs[:0]
	if err := l.addSegment(l.nextPos); err != nil {
		return err
	}
	l.dirty = 0
	l.resets.Add(1)
	return nil
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// LastPos returns the position of the newest record, 0 when the log
// has never held one.
func (l *Log) LastPos() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextPos - 1
}

// FirstPos returns the position of the oldest retained record, or
// LastPos+1 when the log is empty.
func (l *Log) FirstPos() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segs[0].base
}

// Size returns the total committed bytes across segments.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var n int64
	for _, s := range l.segs {
		n += s.size
	}
	return n
}

// Segments returns the number of on-disk segment files.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	recovered, truncated := l.recovered, l.truncated
	l.mu.Unlock()
	return Stats{
		Appends:        l.appends.Load(),
		Syncs:          l.syncs.Load(),
		Resets:         l.resets.Load(),
		Trims:          l.trims.Load(),
		Recovered:      recovered,
		TruncatedBytes: truncated,
	}
}
