package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Cursor reads records in position order while appends continue — the
// tailing reader behind spill-then-replay. It holds its own read
// handle, so it never blocks the appender beyond the brief metadata
// lookups under the log lock. A Cursor is for one goroutine; it is
// safe against concurrent Append/Sync/TrimTo on the same log.
type Cursor struct {
	l    *Log
	next uint64 // position the next Next returns

	f    *os.File
	base uint64 // base of the open segment
	off  int64  // read offset in the open segment
	buf  []byte
}

// NewCursor returns a cursor positioned at start (1-based). A start
// below the oldest retained record — trimmed away — is advanced to it.
func (l *Log) NewCursor(start uint64) *Cursor {
	if start == 0 {
		start = 1
	}
	return &Cursor{l: l, next: start}
}

// Pos returns the position the next Next call will return.
func (c *Cursor) Pos() uint64 { return c.next }

// Next returns the next committed record. ok is false when the cursor
// has caught up with the appender (call again after more appends). The
// record payload is valid until the following Next.
func (c *Cursor) Next() (pos uint64, rec Record, ok bool, err error) {
	c.l.mu.Lock()
	if c.l.closed {
		c.l.mu.Unlock()
		return 0, rec, false, ErrClosed
	}
	if c.next >= c.l.nextPos {
		c.l.mu.Unlock()
		return 0, rec, false, nil
	}
	if c.l.segs[0].base > c.next {
		// Everything below the oldest segment was trimmed away — those
		// records were checkpointed, skip to what is retained.
		c.next = c.l.segs[0].base
	}
	var seg *segment
	for _, s := range c.l.segs {
		if s.base <= c.next && c.next < s.base+s.records {
			seg = s
			break
		}
	}
	if seg == nil { // cannot happen given the checks above
		c.l.mu.Unlock()
		return 0, rec, false, fmt.Errorf("wal: position %d not found", c.next)
	}
	base, path, committed := seg.base, seg.path, seg.size
	c.l.mu.Unlock()

	if c.f == nil || c.base != base {
		if c.f != nil {
			c.f.Close()
			c.f = nil
		}
		f, err := os.Open(path)
		if err != nil {
			return 0, rec, false, err
		}
		c.f, c.base, c.off = f, base, int64(len(segMagic))
		// Skip forward to c.next by walking record headers.
		for skip := c.next - base; skip > 0; skip-- {
			n, err := c.recordLen(committed)
			if err != nil {
				return 0, rec, false, err
			}
			c.off += int64(n)
		}
	}

	n, err := c.recordLen(committed)
	if err != nil {
		return 0, rec, false, err
	}
	if cap(c.buf) < n {
		c.buf = make([]byte, n)
	}
	if _, err := c.f.ReadAt(c.buf[:n], c.off); err != nil {
		return 0, rec, false, err
	}
	r, _, err := parseRecord(c.buf[:n])
	if err != nil {
		return 0, rec, false, fmt.Errorf("%w: %s: offset %d: %v", ErrBadSegment, path, c.off, err)
	}
	c.off += int64(n)
	pos = c.next
	c.next++
	// When the segment is exhausted the next call re-resolves: the same
	// file may have grown (it is still active — the open handle and
	// offset stay valid), or the cursor rolls over to the next segment
	// (base changes, handle is replaced).
	return pos, r, true, nil
}

// recordLen reads the length prefix of the record at c.off and returns
// the full encoded record length, validating it against the committed
// segment size.
func (c *Cursor) recordLen(committed int64) (int, error) {
	var hdr [recHeader]byte
	if c.off+recHeader > committed {
		return 0, io.ErrUnexpectedEOF
	}
	if _, err := c.f.ReadAt(hdr[:], c.off); err != nil {
		return 0, err
	}
	bl := binary.LittleEndian.Uint32(hdr[:])
	if bl == 0 || bl > MaxRecordBody {
		return 0, ErrBadRecord
	}
	n := recHeader + int(bl)
	if c.off+int64(n) > committed {
		return 0, io.ErrUnexpectedEOF
	}
	return n, nil
}

// Close releases the cursor's read handle.
func (c *Cursor) Close() {
	if c.f != nil {
		c.f.Close()
		c.f = nil
	}
}

// crcOf is a test hook: the checksum the log writes for a body.
func crcOf(body []byte) uint32 { return crc32.ChecksumIEEE(body) }
