package dnssec

import (
	"crypto/ed25519"
	"crypto/sha256"
	"errors"
	"sort"
	"time"

	"dnsobservatory/internal/dnswire"
)

// AlgEd25519 is the DNSSEC algorithm number of Ed25519 (RFC 8080).
const AlgEd25519 = 15

// Errors returned by signing and validation.
var (
	ErrNoRecords     = errors.New("dnssec: empty RRset")
	ErrMixedRRset    = errors.New("dnssec: records differ in name/type/class/TTL")
	ErrBadAlgorithm  = errors.New("dnssec: unsupported algorithm")
	ErrBadKey        = errors.New("dnssec: malformed key")
	ErrBadSignature  = errors.New("dnssec: signature verification failed")
	ErrKeyMismatch   = errors.New("dnssec: RRSIG key tag/signer does not match DNSKEY")
	ErrTypeMismatch  = errors.New("dnssec: RRSIG type covered does not match RRset")
	ErrSigExpired    = errors.New("dnssec: signature outside its validity window")
	ErrDigestInvalid = errors.New("dnssec: DS digest does not match DNSKEY")
)

// Key is a zone signing key.
type Key struct {
	ZoneName string
	Flags    uint16 // 256 ZSK, 257 KSK
	priv     ed25519.PrivateKey
	pub      ed25519.PublicKey
	tag      uint16
}

// NewKey derives a deterministic Ed25519 key for a zone from a 32-byte
// seed. flags should be 256 (zone signing) or 257 (key signing).
func NewKey(zone string, flags uint16, seed []byte) (*Key, error) {
	if len(seed) != ed25519.SeedSize {
		return nil, ErrBadKey
	}
	priv := ed25519.NewKeyFromSeed(seed)
	k := &Key{
		ZoneName: dnswire.Canonical(zone),
		Flags:    flags,
		priv:     priv,
		pub:      priv.Public().(ed25519.PublicKey),
	}
	k.tag = KeyTag(k.DNSKEY())
	return k, nil
}

// DNSKEY returns the public key record data.
func (k *Key) DNSKEY() dnswire.DNSKEYRData {
	return dnswire.DNSKEYRData{
		Flags:     k.Flags,
		Protocol:  3,
		Algorithm: AlgEd25519,
		PublicKey: append([]byte(nil), k.pub...),
	}
}

// DNSKEYRR returns the full DNSKEY resource record at the given TTL.
func (k *Key) DNSKEYRR(ttl uint32) dnswire.RR {
	return dnswire.RR{
		Name: k.ZoneName, Type: dnswire.TypeDNSKEY, Class: dnswire.ClassINET,
		TTL: ttl, Data: k.DNSKEY(),
	}
}

// Tag returns the key tag (RFC 4034 Appendix B).
func (k *Key) Tag() uint16 { return k.tag }

// KeyTag computes the RFC 4034 Appendix B key tag over the DNSKEY RDATA.
func KeyTag(key dnswire.DNSKEYRData) uint16 {
	rdata := []byte{byte(key.Flags >> 8), byte(key.Flags), key.Protocol, key.Algorithm}
	rdata = append(rdata, key.PublicKey...)
	var ac uint32
	for i, b := range rdata {
		if i&1 == 0 {
			ac += uint32(b) << 8
		} else {
			ac += uint32(b)
		}
	}
	ac += ac >> 16 & 0xffff
	return uint16(ac & 0xffff)
}

// DS returns the delegation-signer record data for the key (SHA-256
// digest type 2, RFC 4034 §5.1.4: digest over owner name || RDATA).
func (k *Key) DS() (dnswire.DSRData, error) {
	owner, err := canonicalName(k.ZoneName)
	if err != nil {
		return dnswire.DSRData{}, err
	}
	key := k.DNSKEY()
	h := sha256.New()
	h.Write(owner)
	h.Write([]byte{byte(key.Flags >> 8), byte(key.Flags), key.Protocol, key.Algorithm})
	h.Write(key.PublicKey)
	return dnswire.DSRData{
		KeyTag:     k.tag,
		Algorithm:  AlgEd25519,
		DigestType: 2,
		Digest:     h.Sum(nil),
	}, nil
}

// Sign produces an RRSIG covering rrset, valid in
// [inception, expiration]. All records must share name, class, type and
// TTL (an RRset in the RFC sense).
func (k *Key) Sign(rrset []dnswire.RR, inception, expiration time.Time) (dnswire.RR, error) {
	if len(rrset) == 0 {
		return dnswire.RR{}, ErrNoRecords
	}
	first := rrset[0]
	for _, rr := range rrset[1:] {
		if dnswire.Canonical(rr.Name) != dnswire.Canonical(first.Name) ||
			rr.Type != first.Type || rr.Class != first.Class || rr.TTL != first.TTL {
			return dnswire.RR{}, ErrMixedRRset
		}
	}
	sig := dnswire.RRSIGRData{
		TypeCovered: first.Type,
		Algorithm:   AlgEd25519,
		Labels:      uint8(dnswire.CountLabels(first.Name)),
		OriginalTTL: first.TTL,
		Expiration:  uint32(expiration.Unix()),
		Inception:   uint32(inception.Unix()),
		KeyTag:      k.tag,
		SignerName:  k.ZoneName,
	}
	msg, err := signedData(sig, rrset)
	if err != nil {
		return dnswire.RR{}, err
	}
	sig.Signature = ed25519.Sign(k.priv, msg)
	return dnswire.RR{
		Name: dnswire.Canonical(first.Name), Type: dnswire.TypeRRSIG,
		Class: first.Class, TTL: first.TTL, Data: sig,
	}, nil
}

// Validate verifies that rrsig is a valid signature over rrset by the
// given DNSKEY at time now.
func Validate(rrset []dnswire.RR, rrsig dnswire.RRSIGRData, key dnswire.DNSKEYRData, now time.Time) error {
	if len(rrset) == 0 {
		return ErrNoRecords
	}
	if rrsig.Algorithm != AlgEd25519 || key.Algorithm != AlgEd25519 {
		return ErrBadAlgorithm
	}
	if len(key.PublicKey) != ed25519.PublicKeySize {
		return ErrBadKey
	}
	if rrsig.KeyTag != KeyTag(key) {
		return ErrKeyMismatch
	}
	if rrsig.TypeCovered != rrset[0].Type {
		return ErrTypeMismatch
	}
	t := uint32(now.Unix())
	if t < rrsig.Inception || t > rrsig.Expiration {
		return ErrSigExpired
	}
	msg, err := signedData(rrsig, rrset)
	if err != nil {
		return err
	}
	if !ed25519.Verify(ed25519.PublicKey(key.PublicKey), msg, rrsig.Signature) {
		return ErrBadSignature
	}
	return nil
}

// VerifyDS checks a DS record against a DNSKEY (digest type 2 only).
func VerifyDS(ds dnswire.DSRData, zone string, key dnswire.DNSKEYRData) error {
	if ds.DigestType != 2 {
		return ErrBadAlgorithm
	}
	k := Key{ZoneName: dnswire.Canonical(zone), Flags: key.Flags}
	k.pub = ed25519.PublicKey(key.PublicKey)
	k.tag = KeyTag(key)
	want, err := k.DS()
	if err != nil {
		return err
	}
	if ds.KeyTag != want.KeyTag || !equalBytes(ds.Digest, want.Digest) {
		return ErrDigestInvalid
	}
	return nil
}

// signedData builds the RFC 4034 §3.1.8.1 message: RRSIG RDATA (minus
// the signature) || canonical RRset.
func signedData(sig dnswire.RRSIGRData, rrset []dnswire.RR) ([]byte, error) {
	buf := []byte{
		byte(sig.TypeCovered >> 8), byte(sig.TypeCovered),
		sig.Algorithm, sig.Labels,
		byte(sig.OriginalTTL >> 24), byte(sig.OriginalTTL >> 16), byte(sig.OriginalTTL >> 8), byte(sig.OriginalTTL),
		byte(sig.Expiration >> 24), byte(sig.Expiration >> 16), byte(sig.Expiration >> 8), byte(sig.Expiration),
		byte(sig.Inception >> 24), byte(sig.Inception >> 16), byte(sig.Inception >> 8), byte(sig.Inception),
		byte(sig.KeyTag >> 8), byte(sig.KeyTag),
	}
	signer, err := canonicalName(sig.SignerName)
	if err != nil {
		return nil, err
	}
	buf = append(buf, signer...)

	// Canonical RRset: each RR as owner || type || class || origTTL ||
	// rdlength || rdata, sorted by canonical RDATA (RFC 4034 §6.3).
	type wireRR struct{ owner, rdata []byte }
	wires := make([]wireRR, 0, len(rrset))
	for _, rr := range rrset {
		owner, err := canonicalName(rr.Name)
		if err != nil {
			return nil, err
		}
		rd, err := canonicalRData(rr)
		if err != nil {
			return nil, err
		}
		wires = append(wires, wireRR{owner, rd})
	}
	sort.Slice(wires, func(i, j int) bool { return lessBytes(wires[i].rdata, wires[j].rdata) })
	for _, wr := range wires {
		buf = append(buf, wr.owner...)
		buf = append(buf,
			byte(rrset[0].Type>>8), byte(rrset[0].Type),
			byte(rrset[0].Class>>8), byte(rrset[0].Class),
			byte(sig.OriginalTTL>>24), byte(sig.OriginalTTL>>16), byte(sig.OriginalTTL>>8), byte(sig.OriginalTTL),
			byte(len(wr.rdata)>>8), byte(len(wr.rdata)))
		buf = append(buf, wr.rdata...)
	}
	return buf, nil
}

// canonicalName encodes a name in canonical (lower-case, uncompressed)
// wire form.
func canonicalName(name string) ([]byte, error) {
	return dnswire.AppendName(nil, name, nil)
}

// canonicalRData encodes RDATA without compression, as required for
// signing (RFC 4034 §6.2).
func canonicalRData(rr dnswire.RR) ([]byte, error) {
	return dnswire.AppendRData(nil, rr)
}

func lessBytes(a, b []byte) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func equalBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
