package dnssec

import (
	"net/netip"
	"testing"
	"time"

	"dnsobservatory/internal/dnswire"
)

var (
	sigStart = time.Date(2019, 4, 1, 0, 0, 0, 0, time.UTC)
	sigEnd   = time.Date(2019, 5, 1, 0, 0, 0, 0, time.UTC)
	sigNow   = time.Date(2019, 4, 15, 0, 0, 0, 0, time.UTC)
)

func testKey(t *testing.T, zone string) *Key {
	t.Helper()
	seed := make([]byte, 32)
	copy(seed, zone)
	k, err := NewKey(zone, 256, seed)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func aRRset(name string, ttl uint32, addrs ...string) []dnswire.RR {
	var rrs []dnswire.RR
	for _, a := range addrs {
		rrs = append(rrs, dnswire.RR{
			Name: name, Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: ttl,
			Data: dnswire.ARData{Addr: netip.MustParseAddr(a)},
		})
	}
	return rrs
}

func TestSignAndValidate(t *testing.T) {
	k := testKey(t, "example.com.")
	rrset := aRRset("www.example.com.", 300, "192.0.2.1", "192.0.2.2")
	sig, err := k.Sign(rrset, sigStart, sigEnd)
	if err != nil {
		t.Fatal(err)
	}
	rd := sig.Data.(dnswire.RRSIGRData)
	if rd.SignerName != "example.com." || rd.KeyTag != k.Tag() || rd.Labels != 3 {
		t.Errorf("rrsig = %+v", rd)
	}
	if err := Validate(rrset, rd, k.DNSKEY(), sigNow); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestValidateRejectsTampering(t *testing.T) {
	k := testKey(t, "example.com.")
	rrset := aRRset("www.example.com.", 300, "192.0.2.1")
	sig, err := k.Sign(rrset, sigStart, sigEnd)
	if err != nil {
		t.Fatal(err)
	}
	rd := sig.Data.(dnswire.RRSIGRData)

	// Changed address.
	forged := aRRset("www.example.com.", 300, "203.0.113.66")
	if err := Validate(forged, rd, k.DNSKEY(), sigNow); err != ErrBadSignature {
		t.Errorf("forged rrset: %v", err)
	}
	// Changed owner.
	moved := aRRset("evil.example.com.", 300, "192.0.2.1")
	if err := Validate(moved, rd, k.DNSKEY(), sigNow); err != ErrBadSignature {
		t.Errorf("moved rrset: %v", err)
	}
	// Corrupted signature bytes.
	bad := rd
	bad.Signature = append([]byte(nil), rd.Signature...)
	bad.Signature[0] ^= 0xff
	if err := Validate(rrset, bad, k.DNSKEY(), sigNow); err != ErrBadSignature {
		t.Errorf("corrupt sig: %v", err)
	}
	// Wrong key.
	other := testKey(t, "other.com.")
	if err := Validate(rrset, rd, other.DNSKEY(), sigNow); err != ErrKeyMismatch {
		t.Errorf("wrong key: %v", err)
	}
}

func TestValidateTimeWindow(t *testing.T) {
	k := testKey(t, "example.com.")
	rrset := aRRset("a.example.com.", 60, "192.0.2.9")
	sig, err := k.Sign(rrset, sigStart, sigEnd)
	if err != nil {
		t.Fatal(err)
	}
	rd := sig.Data.(dnswire.RRSIGRData)
	if err := Validate(rrset, rd, k.DNSKEY(), sigStart.Add(-time.Hour)); err != ErrSigExpired {
		t.Errorf("before inception: %v", err)
	}
	if err := Validate(rrset, rd, k.DNSKEY(), sigEnd.Add(time.Hour)); err != ErrSigExpired {
		t.Errorf("after expiration: %v", err)
	}
}

func TestSignRejectsMixedRRset(t *testing.T) {
	k := testKey(t, "example.com.")
	mixed := aRRset("a.example.com.", 300, "192.0.2.1")
	mixed = append(mixed, aRRset("b.example.com.", 300, "192.0.2.2")...)
	if _, err := k.Sign(mixed, sigStart, sigEnd); err != ErrMixedRRset {
		t.Errorf("mixed names: %v", err)
	}
	if _, err := k.Sign(nil, sigStart, sigEnd); err != ErrNoRecords {
		t.Errorf("empty: %v", err)
	}
}

func TestRRsetOrderIndependence(t *testing.T) {
	// Canonical form sorts by RDATA, so signing [a,b] validates [b,a].
	k := testKey(t, "example.com.")
	rrset := aRRset("www.example.com.", 300, "192.0.2.9", "192.0.2.1", "192.0.2.5")
	sig, err := k.Sign(rrset, sigStart, sigEnd)
	if err != nil {
		t.Fatal(err)
	}
	rd := sig.Data.(dnswire.RRSIGRData)
	reordered := []dnswire.RR{rrset[2], rrset[0], rrset[1]}
	if err := Validate(reordered, rd, k.DNSKEY(), sigNow); err != nil {
		t.Errorf("reordered rrset: %v", err)
	}
}

func TestSignNameBearingRData(t *testing.T) {
	// NS RDATA contains a name; canonical encoding must not compress it.
	k := testKey(t, "example.com.")
	rrset := []dnswire.RR{
		{Name: "example.com.", Type: dnswire.TypeNS, Class: dnswire.ClassINET, TTL: 86400,
			Data: dnswire.NSRData{NS: "ns1.example.com."}},
		{Name: "example.com.", Type: dnswire.TypeNS, Class: dnswire.ClassINET, TTL: 86400,
			Data: dnswire.NSRData{NS: "ns2.example.com."}},
	}
	sig, err := k.Sign(rrset, sigStart, sigEnd)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(rrset, sig.Data.(dnswire.RRSIGRData), k.DNSKEY(), sigNow); err != nil {
		t.Fatalf("validate NS rrset: %v", err)
	}
}

func TestKeyTagStability(t *testing.T) {
	k := testKey(t, "example.com.")
	if k.Tag() != KeyTag(k.DNSKEY()) {
		t.Error("tag mismatch")
	}
	// Different zones/seeds give different tags (overwhelmingly likely).
	k2 := testKey(t, "other.org.")
	if k.Tag() == k2.Tag() {
		t.Error("distinct keys share a tag (possible but suspicious with fixed seeds)")
	}
}

func TestDSRoundTrip(t *testing.T) {
	k := testKey(t, "example.com.")
	ds, err := k.DS()
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Digest) != 32 || ds.DigestType != 2 || ds.Algorithm != AlgEd25519 {
		t.Fatalf("ds = %+v", ds)
	}
	if err := VerifyDS(ds, "example.com.", k.DNSKEY()); err != nil {
		t.Fatalf("verify ds: %v", err)
	}
	// Wrong zone name changes the digest.
	if err := VerifyDS(ds, "evil.com.", k.DNSKEY()); err != ErrDigestInvalid {
		t.Errorf("wrong zone: %v", err)
	}
	// Tampered digest.
	ds.Digest[0] ^= 1
	if err := VerifyDS(ds, "example.com.", k.DNSKEY()); err != ErrDigestInvalid {
		t.Errorf("tampered: %v", err)
	}
}

func TestDNSKEYWireRoundTrip(t *testing.T) {
	k := testKey(t, "example.com.")
	m := dnswire.Message{Answers: []dnswire.RR{k.DNSKEYRR(3600)}}
	wire, err := m.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	var got dnswire.Message
	if err := got.Unpack(wire); err != nil {
		t.Fatal(err)
	}
	kd := got.Answers[0].Data.(dnswire.DNSKEYRData)
	if kd.Flags != 256 || kd.Algorithm != AlgEd25519 || len(kd.PublicKey) != 32 {
		t.Errorf("dnskey = %+v", kd)
	}
	// The parsed key still validates signatures.
	rrset := aRRset("www.example.com.", 300, "192.0.2.1")
	sig, err := k.Sign(rrset, sigStart, sigEnd)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(rrset, sig.Data.(dnswire.RRSIGRData), kd, sigNow); err != nil {
		t.Fatalf("validate with parsed key: %v", err)
	}
}

func TestNewKeyBadSeed(t *testing.T) {
	if _, err := NewKey("x.com.", 256, []byte("short")); err != ErrBadKey {
		t.Errorf("bad seed: %v", err)
	}
}
