// Package dnssec implements real DNSSEC signing and validation with
// Ed25519 (RFC 8080, algorithm 15): canonical RRset form and signature
// computation per RFC 4034 §3 and §6, key tags per RFC 4034 Appendix B,
// and DS digests per RFC 4034 §5. The simulator signs its zones with
// keys from this package, so the Observatory's ok_sec feature counts
// cryptographically genuine signatures, and a validator can verify any
// captured response end to end.
//
// Concurrency: signing and validation are pure functions of their
// inputs; a key pair is immutable after generation. Any number of
// goroutines may sign or validate with the same key concurrently.
package dnssec
