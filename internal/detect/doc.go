// Package detect is the streaming detection layer: analytics that rank
// DNS objects by signals volume-ordered top-k (the Observatory paper's
// view, §2.3) structurally misses.
//
// Two detectors share one ingest path:
//
//   - Information-content heavy hitters: per-eSLD streaming state that
//     combines a character-distribution entropy estimate over observed
//     subdomain labels with an exponentially decayed query rate, ranked
//     by score = entropy × mean subdomain length × rate (bits per
//     second). This is the information-based heavy-hitter ranking of
//     "Information-Based Heavy Hitters for Real-Time DNS Data
//     Exfiltration Detection" (PAPERS.md): low-and-slow exfiltration
//     carries few queries but near-maximal bits per query, so it ranks
//     high here while staying invisible to volume top-k. State is
//     bounded by a Space-Saving cache per partition.
//
//   - Newly-observed domains (NOD): a time-bucketed rotating seen-set of
//     Bloom filters over eSLDs, emitting a first-seen row for every
//     eSLD absent from the whole horizon, per "A Study of Newly
//     Observed Hostnames and DNS Tunneling in the Wild" (PAPERS.md).
//     Presence refreshes on every observation, so the horizon is
//     "since last seen", not "since first seen".
//
// # Determinism and concurrency contract
//
// A Detector is ALWAYS internally split into Config.Partitions
// fixed partitions routed by an FNV-1a hash of the eSLD — the same
// routing in every deployment. The serial pipeline observes all
// partitions from one goroutine (Observe); the sharded engine assigns
// each partition to exactly one worker (AppendKey on the dispatcher,
// ObservePartition on the owning worker). Because each partition sees
// the identical sub-stream either way, and all hashing is seeded and
// deterministic (bloom.NewSeeded), the merged window snapshots
// (MergeWindow over CollectWindow parts) are byte-identical between a
// serial and a sharded deployment of the same Config — the same
// contract spacesaving.Merge gives the volume aggregations.
//
// No method is safe for concurrent use on the same partition: callers
// must guarantee one goroutine per partition (the sharded engine's
// ownership discipline) or one goroutine total (serial). CollectWindow
// and PublishWindow run on the window-dump path, where the caller
// already holds exclusive access.
package detect
