package detect

import (
	"math"

	"dnsobservatory/internal/bloom"
	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/metrics"
	"dnsobservatory/internal/publicsuffix"
	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/spacesaving"
	"dnsobservatory/internal/tsv"
)

// Aggregation names the detection snapshots are stored and served under.
const (
	AggESLD = "detect_esld" // information-content heavy hitters
	AggNOD  = "detect_nod"  // newly-observed domains
)

// Config sizes a Detector. The zero value is not usable; start from
// DefaultConfig. Byte-identical serial/sharded snapshots require the
// two deployments to share an identical Config.
type Config struct {
	// K is the number of rows kept in the merged information-content
	// snapshot; NODK the same for the newly-observed-domain snapshot.
	K    int
	NODK int

	// Capacity is the total number of eSLDs tracked by the
	// information-content cache, split evenly across partitions.
	Capacity int

	// HalfLifeSec is the decay half-life of the per-eSLD rate estimate.
	// 300 s spans several 60 s windows so that low-and-slow sources
	// accumulate rate instead of decaying to zero between queries.
	HalfLifeSec float64

	// Partitions fixes the internal partition count. It must be
	// identical across deployments for byte-identical merges; it is NOT
	// the worker count (workers own whole partitions).
	Partitions int

	// AdmitterN / AdmitterFP size the per-partition Bloom admission
	// filter guarding information-content cache evictions. The filter
	// resets every window, mirroring the volume aggregations.
	AdmitterN  int
	AdmitterFP float64

	// NODHorizonSec is how long an eSLD must stay unobserved before it
	// counts as newly observed again. NODBuckets filters rotate across
	// the horizon, so forgetting happens within one bucket width of the
	// nominal horizon.
	NODHorizonSec float64
	NODBuckets    int

	// NODCapacity / NODFP size each rotating seen-set bucket:
	// NODCapacity is the expected distinct eSLDs per horizon across the
	// whole stream (split across partitions).
	NODCapacity int
	NODFP       float64

	// NODMaxPerWindow caps first-seen rows recorded per partition per
	// window; the remainder is counted as overflow (and still enters
	// the seen-set, so it is not re-reported later).
	NODMaxPerWindow int

	// Suffixes is the public-suffix list for eSLD extraction; nil means
	// publicsuffix.Default.
	Suffixes *publicsuffix.List

	// Metrics receives the dnsobs_detect_* families; nil keeps the
	// counters standalone (tests, library use).
	Metrics *metrics.Registry
}

// DefaultConfig returns production-shaped detection sizing.
func DefaultConfig() Config {
	return Config{
		K:               64,
		NODK:            128,
		Capacity:        2048,
		HalfLifeSec:     300,
		Partitions:      16,
		AdmitterN:       1 << 16,
		AdmitterFP:      0.01,
		NODHorizonSec:   3600,
		NODBuckets:      4,
		NODCapacity:     1 << 16,
		NODFP:           0.001,
		NODMaxPerWindow: 512,
	}
}

// withDefaults fills unset fields so a partially specified Config
// (tests often set only what they exercise) stays safe.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.K <= 0 {
		c.K = d.K
	}
	if c.NODK <= 0 {
		c.NODK = d.NODK
	}
	if c.Capacity <= 0 {
		c.Capacity = d.Capacity
	}
	if c.HalfLifeSec <= 0 {
		c.HalfLifeSec = d.HalfLifeSec
	}
	if c.Partitions <= 0 {
		c.Partitions = d.Partitions
	}
	if c.AdmitterN <= 0 {
		c.AdmitterN = d.AdmitterN
	}
	if c.AdmitterFP <= 0 {
		c.AdmitterFP = d.AdmitterFP
	}
	if c.NODHorizonSec <= 0 {
		c.NODHorizonSec = d.NODHorizonSec
	}
	if c.NODBuckets <= 0 {
		c.NODBuckets = d.NODBuckets
	}
	if c.NODCapacity <= 0 {
		c.NODCapacity = d.NODCapacity
	}
	if c.NODFP <= 0 {
		c.NODFP = d.NODFP
	}
	if c.NODMaxPerWindow <= 0 {
		c.NODMaxPerWindow = d.NODMaxPerWindow
	}
	if c.Suffixes == nil {
		c.Suffixes = publicsuffix.Default
	}
	return c
}

// Snapshot schemas. Score sits in column 0 so the canonical snapshot
// ordering (descending first column) ranks by information content, and
// MergeParts truncation keeps the strongest rows.
var (
	icColumns = []string{"score", "hits", "rate", "entropy", "sublen"}
	icKinds   = []tsv.Kind{tsv.Gauge, tsv.Counter, tsv.Gauge, tsv.Gauge, tsv.Gauge}

	nodColumns = []string{"hits", "first_seen"}
	nodKinds   = []tsv.Kind{tsv.Counter, tsv.Gauge}
)

// Detector is the streaming detection state for one pipeline. See the
// package comment for the concurrency and determinism contract.
type Detector struct {
	cfg   Config
	parts []*partition
	m     *detectMetrics
}

// New builds a Detector from cfg (missing fields defaulted).
func New(cfg Config) *Detector {
	cfg = cfg.withDefaults()
	d := &Detector{cfg: cfg, m: newDetectMetrics(cfg.Metrics)}
	p := cfg.Partitions
	perCap := (cfg.Capacity + p - 1) / p
	admN := (cfg.AdmitterN + p - 1) / p
	nodN := (cfg.NODCapacity + p - 1) / p
	d.parts = make([]*partition, p)
	for i := range d.parts {
		d.parts[i] = newPartition(i, perCap, admN, nodN, cfg)
	}
	return d
}

// Partitions returns the fixed partition count, for engines assigning
// partition ownership to workers.
func (d *Detector) Partitions() int { return len(d.parts) }

// hashString routes an eSLD to its partition: FNV-1a, the same hash the
// sharded engine uses for aggregation keys.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Observe is the serial ingest path: extract the eSLD, route it to its
// partition, and fold the observation into both detectors. now is the
// engine's window-clamped stream time.
func (d *Detector) Observe(sum *sie.Summary, now float64) {
	d.parts[0].offered++
	esld, sub, ok := d.esldSub(sum)
	if !ok {
		return // bare root — no eSLD to track
	}
	part := hashString(esld) % uint64(len(d.parts))
	d.parts[part].observeStr(esld, sub, now)
}

// esldSub splits sum's query name into its eSLD key and the subdomain
// prefix (separating dot included). The memo PrecomputeHashes leaves on
// the summary makes the common case free; hand-built summaries fall
// back to the public-suffix walk. Either way the eSLD is a
// suffix-substring of the name it was derived from, so the subdomain is
// the prefix it leaves behind.
func (d *Detector) esldSub(sum *sie.Summary) (esld, sub string, ok bool) {
	esld, ok = sum.ESLD()
	if ok {
		if len(esld) <= 1 {
			return "", "", false
		}
		return esld, sum.QName[:len(sum.QName)-len(esld)], true
	}
	cq := dnswire.Canonical(sum.QName)
	esld = d.cfg.Suffixes.ESLD(cq)
	if len(esld) <= 1 {
		return "", "", false
	}
	return esld, cq[:len(cq)-len(esld)], true
}

// RecordOffered counts one pre-filter transaction on the sharded path,
// where the detect slot may be empty (no eSLD) but the stream volume
// must still be accounted. Only the worker owning partition 0 calls it.
func (d *Detector) RecordOffered() { d.parts[0].offered++ }

// AppendKey extracts sum's eSLD onto buf and returns the extended
// buffer, the owning partition, and whether an eSLD exists. The sharded
// dispatcher calls it when staging a batch slot; the key bytes are a
// view into the batch's reusable buffer.
func (d *Detector) AppendKey(sum *sie.Summary, buf []byte) ([]byte, int, bool) {
	esld, _, ok := d.esldSub(sum)
	if !ok {
		return buf, 0, false
	}
	part := int(hashString(esld) % uint64(len(d.parts)))
	return append(buf, esld...), part, true
}

// ObservePartition is the sharded ingest path: the worker owning part
// folds one observation staged by AppendKey. key must be the eSLD bytes
// AppendKey produced for sum.
func (d *Detector) ObservePartition(part int, key []byte, sum *sie.Summary, now float64) {
	// Re-derive the subdomain prefix the same way AppendKey derived the
	// key, so the two views slice the same base string.
	var sub string
	if _, ok := sum.ESLD(); ok {
		sub = sum.QName[:len(sum.QName)-len(key)]
	} else {
		cq := dnswire.Canonical(sum.QName)
		sub = cq[:len(cq)-len(key)]
	}
	d.parts[part].observeBytes(key, sub, now)
}

// partition is the single-owner detection state for one key-hash slice
// of the eSLD space. All fields are plain (non-atomic): exactly one
// goroutine touches a partition at any time.
type partition struct {
	id       int
	offered  uint64 // pre-filter transactions; maintained on partition 0 only
	observed uint64 // eSLD observations folded into this partition

	ic       *spacesaving.Cache
	admitter *bloom.Filter
	free     []*icStats // recycled feature state from evicted entries

	nod nodState

	// Window bookmarks: cumulative counters at the last CollectWindow,
	// so window deltas come from subtraction, not separate counters.
	lastOffered, lastObserved  uint64
	lastDropped, lastEvictions uint64
	lastFirstSeen, lastSeen    uint64
	lastOverflow               uint64
}

// Seed bases for the deterministic Bloom hashing; the partition index
// is folded in so no two filters share a hash function.
const (
	icSeedBase  = 0xd15ea5e0c0ffee00
	nodSeedBase = 0x00ddba11beefcafe
)

func newPartition(id, capacity, admN, nodN int, cfg Config) *partition {
	p := &partition{id: id}
	p.admitter = bloom.NewSeeded(admN, cfg.AdmitterFP, icSeedBase+uint64(id))
	p.ic = spacesaving.New(capacity, cfg.HalfLifeSec, p.admitter)
	p.ic.OnEvictState = func(st any) {
		s := st.(*icStats)
		*s = icStats{}
		p.free = append(p.free, s)
	}
	b := cfg.NODBuckets
	p.nod = nodState{
		buckets:   make([]*bloom.Filter, b),
		curIdx:    -1,
		bucketSec: cfg.NODHorizonSec / float64(b),
		maxWin:    cfg.NODMaxPerWindow,
		win:       make(map[string]*nodRow),
	}
	for i := range p.nod.buckets {
		// One seed per partition is enough: the buckets never compare
		// bit patterns with each other, only with their own inserts.
		p.nod.buckets[i] = bloom.NewSeeded(nodN, cfg.NODFP, nodSeedBase+uint64(id))
	}
	return p
}

func (p *partition) observeStr(key, sub string, now float64) {
	p.observed++
	st := p.foldIC(p.ic.Observe(key, now), sub)
	n := &p.nod
	n.rollTo(now)
	// Fast path for tracked repeat traffic: the entry remembers the last
	// bucket it was inserted into, so while the bucket has not rotated
	// the observation is seen-by-construction and the insert would only
	// set already-set bits. No filter work, no digest.
	if st != nil && st.nodBucket == n.curIdx+1 {
		n.account(false, key, now)
		return
	}
	// All buckets share one seed and sizing, so the key digests once and
	// every bucket probes and inserts with it.
	isNew := n.probe(n.buckets[0].Sum64(key))
	if st != nil {
		st.nodBucket = n.curIdx + 1
	}
	n.account(isNew, key, now)
}

// probe folds one observation digest into the seen-set and reports
// whether the key is newly observed. Repeat traffic — the hot path —
// lands in the current bucket, whose bits are already set, so the
// insert is skipped (setting set bits is a no-op) and the whole
// observation costs one membership test.
func (n *nodState) probe(h uint64) (isNew bool) {
	cur := n.buckets[n.cur]
	if cur.ContainsHash(h) {
		return false
	}
	isNew = true
	for i, b := range n.buckets {
		if i != n.cur && b.ContainsHash(h) {
			isNew = false
			break
		}
	}
	cur.AddHash(h)
	return isNew
}

// observeBytes is observeStr for the sharded byte-view key. The two
// paths fold identical state because bloom and spacesaving guarantee
// string/bytes hash agreement.
func (p *partition) observeBytes(key []byte, sub string, now float64) {
	p.observed++
	st := p.foldIC(p.ic.ObserveBytes(key, now), sub)
	n := &p.nod
	n.rollTo(now)
	if st != nil && st.nodBucket == n.curIdx+1 {
		n.accountBytes(false, key, now)
		return
	}
	isNew := n.probe(n.buckets[0].Sum64Bytes(key))
	if st != nil {
		st.nodBucket = n.curIdx + 1
	}
	n.accountBytes(isNew, key, now)
}

// icStats is the per-eSLD feature state hanging off a Space-Saving
// entry: a 39-class character histogram over subdomain bytes (26
// letters case-folded + 10 digits + '-' + '_' + other; dots are label
// separators, not content, and are skipped).
type icStats struct {
	hist       [39]uint32
	chars      uint64 // subdomain bytes observed (dots excluded)
	samples    uint64 // observations folded in
	windowHits uint64 // observations this window; reset by CollectWindow
	nodBucket  int64  // 1 + absolute NOD bucket index last inserted into; 0 = none
}

func (p *partition) foldIC(e *spacesaving.Entry, sub string) *icStats {
	if e == nil {
		return nil // not admitted past the Bloom filter
	}
	st, _ := e.State.(*icStats)
	if st == nil {
		if n := len(p.free); n > 0 {
			st = p.free[n-1]
			p.free = p.free[:n-1]
		} else {
			st = new(icStats)
		}
		e.State = st
	}
	st.samples++
	st.windowHits++
	for i := 0; i < len(sub); i++ {
		c := sub[i]
		var cls int
		switch {
		case c >= 'a' && c <= 'z':
			cls = int(c - 'a')
		case c >= '0' && c <= '9':
			cls = 26 + int(c-'0')
		case c == '.':
			continue
		case c == '-':
			cls = 36
		case c == '_':
			cls = 37
		case c >= 'A' && c <= 'Z':
			cls = int(c - 'A')
		default:
			cls = 38
		}
		st.hist[cls]++
		st.chars++
	}
	return st
}

// entropyOf is the Shannon entropy (bits per character) of the
// accumulated class histogram.
func entropyOf(hist *[39]uint32) float64 {
	var total uint64
	for _, c := range hist {
		total += uint64(c)
	}
	if total == 0 {
		return 0
	}
	inv := 1 / float64(total)
	var h float64
	for _, c := range hist {
		if c > 0 {
			p := float64(c) * inv
			h -= p * math.Log2(p)
		}
	}
	return h
}

// nodRow is one newly-observed eSLD recorded this window.
type nodRow struct {
	hits      uint64  // observations since first seen, within this window
	firstSeen float64 // stream time of the first sighting
}

// nodState is the rotating seen-set. Buckets form a ring over absolute
// bucket indexes floor(now / bucketSec); stepping forward resets each
// bucket stepped into, so a key last added at time t is forgotten
// between horizon−bucketSec and horizon after t.
type nodState struct {
	buckets   []*bloom.Filter
	cur       int   // ring position of the current bucket
	curIdx    int64 // absolute index of the current bucket; -1 = unset
	bucketSec float64
	maxWin    int
	win       map[string]*nodRow

	firstSeen, seen, overflow uint64
}

func (n *nodState) rollTo(now float64) {
	idx := int64(math.Floor(now / n.bucketSec))
	if n.curIdx < 0 {
		n.curIdx = idx
		return
	}
	if idx <= n.curIdx {
		return // clamped or stale timestamps never roll backwards
	}
	steps := idx - n.curIdx
	n.curIdx = idx
	if steps >= int64(len(n.buckets)) {
		// The whole horizon elapsed: every bucket is stale.
		for _, b := range n.buckets {
			b.Reset()
		}
		n.cur = 0
		return
	}
	for ; steps > 0; steps-- {
		n.cur = (n.cur + 1) % len(n.buckets)
		n.buckets[n.cur].Reset()
	}
}

func (n *nodState) account(isNew bool, key string, now float64) {
	if isNew {
		if len(n.win) < n.maxWin {
			n.firstSeen++
			n.win[key] = &nodRow{hits: 1, firstSeen: now}
		} else {
			n.overflow++
		}
		return
	}
	n.seen++
	if r, ok := n.win[key]; ok {
		r.hits++
	}
}

func (n *nodState) accountBytes(isNew bool, key []byte, now float64) {
	if isNew {
		if len(n.win) < n.maxWin {
			n.firstSeen++
			n.win[string(key)] = &nodRow{hits: 1, firstSeen: now}
		} else {
			n.overflow++
		}
		return
	}
	n.seen++
	if r, ok := n.win[string(key)]; ok {
		r.hits++
	}
}
