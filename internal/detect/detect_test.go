package detect

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dnsobservatory/internal/metrics"
	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/tsv"
)

// qsum builds the minimal summary the detector reads.
func qsum(qname string) *sie.Summary { return &sie.Summary{QName: qname} }

// encode renders a snapshot to its canonical TSV bytes.
func encode(t *testing.T, snap *tsv.Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := snap.WriteTo(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

func TestEntropyOf(t *testing.T) {
	var hist [39]uint32
	if got := entropyOf(&hist); got != 0 {
		t.Fatalf("empty histogram entropy = %v, want 0", got)
	}
	hist[0] = 8
	if got := entropyOf(&hist); got != 0 {
		t.Fatalf("single-class entropy = %v, want 0", got)
	}
	hist[1] = 8
	if got := entropyOf(&hist); math.Abs(got-1) > 1e-12 {
		t.Fatalf("two-class uniform entropy = %v, want 1", got)
	}
	// Uniform over 16 classes: exactly 4 bits.
	hist = [39]uint32{}
	for i := 0; i < 16; i++ {
		hist[i] = 3
	}
	if got := entropyOf(&hist); math.Abs(got-4) > 1e-12 {
		t.Fatalf("16-class uniform entropy = %v, want 4", got)
	}
}

func TestCharClasses(t *testing.T) {
	d := New(Config{Partitions: 1, Capacity: 16})
	// Dots are skipped; upper and lower case fold together; digits,
	// dashes, underscores and other bytes land in their own classes.
	d.Observe(qsum("aA9-_\x7f.example.com."), 1)
	parts := d.CollectAll(0, 60)
	ic := parts[0].IC
	if len(ic.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(ic.Rows))
	}
	row := ic.Rows[0]
	if row.Key != "example.com." {
		t.Fatalf("key = %q", row.Key)
	}
	// 6 content chars ("aA9-_" + 0x7f; the label dot is skipped),
	// classes {a:2, 9:1, -:1, _:1, other:1} -> entropy of {2,1,1,1,1}/6.
	wantEnt := -(2.0/6*math.Log2(2.0/6) + 4*(1.0/6*math.Log2(1.0/6)))
	sublen, ent := row.Values[4], row.Values[3]
	if sublen != 6 {
		t.Fatalf("sublen = %v, want 6", sublen)
	}
	if math.Abs(ent-wantEnt) > 1e-12 {
		t.Fatalf("entropy = %v, want %v", ent, wantEnt)
	}
	if row.Values[1] != 1 { // window hits
		t.Fatalf("hits = %v, want 1", row.Values[1])
	}
	if row.Values[0] <= 0 { // score = ent * sublen * rate
		t.Fatalf("score = %v, want > 0", row.Values[0])
	}
}

func TestObserveRootSkipped(t *testing.T) {
	d := New(Config{Partitions: 1})
	// A bare public suffix is its own eSLD (matching the esld
	// aggregation's keying); only the root has nothing to track.
	d.Observe(qsum("com."), 1)
	d.Observe(qsum("."), 1)
	c := d.Counters()
	if c.Offered != 2 || c.Observed != 1 {
		t.Fatalf("offered=%d observed=%d, want 2/1", c.Offered, c.Observed)
	}
	if _, _, ok := d.AppendKey(qsum("."), nil); ok {
		t.Fatal("AppendKey accepted the root")
	}
	if key, _, ok := d.AppendKey(qsum("com."), nil); !ok || string(key) != "com." {
		t.Fatalf("AppendKey(com.) = %q/%v, want com./true", key, ok)
	}
}

func TestESLDOnlyQueryScoresZero(t *testing.T) {
	d := New(Config{Partitions: 1})
	d.Observe(qsum("example.com."), 1) // no subdomain: zero content chars
	parts := d.CollectAll(0, 60)
	row := parts[0].IC.Rows[0]
	if row.Values[0] != 0 || row.Values[3] != 0 || row.Values[4] != 0 {
		t.Fatalf("score/entropy/sublen = %v/%v/%v, want all 0",
			row.Values[0], row.Values[3], row.Values[4])
	}
}

func TestNODRotationBoundary(t *testing.T) {
	// horizon 40 s over 4 buckets: 10 s per bucket.
	cfg := Config{Partitions: 1, NODHorizonSec: 40, NODBuckets: 4}
	d := New(cfg)

	// First sighting at t=9.5: first-seen exactly once, even when the
	// next observation lands just across the bucket boundary.
	d.Observe(qsum("a.fresh.org."), 9.5)
	d.Observe(qsum("b.fresh.org."), 10.5)
	c := d.Counters()
	if c.FirstSeen != 1 || c.Seen != 1 {
		t.Fatalf("across boundary: firstSeen=%d seen=%d, want 1/1", c.FirstSeen, c.Seen)
	}

	// Silent for a full horizon: every bucket holding the key has been
	// recycled, so the next sighting is first-seen again.
	d.Observe(qsum("c.fresh.org."), 10.5+41)
	c = d.Counters()
	if c.FirstSeen != 2 {
		t.Fatalf("after horizon: firstSeen=%d, want 2", c.FirstSeen)
	}

	// Steady re-observation refreshes the seen-set (since-last-seen
	// semantics): touching the key every bucket keeps it "seen" far past
	// the horizon measured from the first sighting.
	base := 200.0
	d2 := New(cfg)
	for i := 0; i < 12; i++ { // 120 s > 2 horizons, one touch per 10 s
		d2.Observe(qsum("x.steady.net."), base+float64(i)*10)
	}
	c2 := d2.Counters()
	if c2.FirstSeen != 1 || c2.Seen != 11 {
		t.Fatalf("steady: firstSeen=%d seen=%d, want 1/11", c2.FirstSeen, c2.Seen)
	}

	// A gap much longer than the horizon takes the full-reset path.
	d2.Observe(qsum("y.steady.net."), base+120+1000)
	if c := d2.Counters(); c.FirstSeen != 2 {
		t.Fatalf("after gap: firstSeen=%d, want 2", c.FirstSeen)
	}
}

func TestNODFirstSeenOncePerHorizonWindowDump(t *testing.T) {
	// Window dumps must not re-emit a key that stays active: the seen-set
	// persists across CollectWindow even though the row map is cleared.
	cfg := Config{Partitions: 1, NODHorizonSec: 120, NODBuckets: 4}
	d := New(cfg)
	d.Observe(qsum("w.roll.io."), 5)
	p1 := d.CollectAll(0, 60)
	d.Observe(qsum("w.roll.io."), 65)
	p2 := d.CollectAll(60, 120)
	if n := len(p1[0].NOD.Rows); n != 1 {
		t.Fatalf("window 1 NOD rows = %d, want 1", n)
	}
	if n := len(p2[0].NOD.Rows); n != 0 {
		t.Fatalf("window 2 NOD rows = %d, want 0 (still within horizon)", n)
	}
	if p2[0].Seen != 1 || p2[0].FirstSeen != 0 {
		t.Fatalf("window 2 deltas: firstSeen=%d seen=%d, want 0/1",
			p2[0].FirstSeen, p2[0].Seen)
	}
}

func TestNODOverflowCap(t *testing.T) {
	d := New(Config{Partitions: 1, NODMaxPerWindow: 2})
	for i := 0; i < 5; i++ {
		d.Observe(qsum(fmt.Sprintf("h.site%d.org.", i)), 1)
	}
	c := d.Counters()
	if c.FirstSeen != 2 || c.Overflow != 3 {
		t.Fatalf("firstSeen=%d overflow=%d, want 2/3", c.FirstSeen, c.Overflow)
	}
	// Overflowed keys still entered the seen-set: no late first-seen.
	d.Observe(qsum("h.site4.org."), 2)
	if c := d.Counters(); c.FirstSeen != 2 || c.Seen != 1 {
		t.Fatalf("re-observe overflowed: firstSeen=%d seen=%d, want 2/1",
			c.FirstSeen, c.Seen)
	}
}

func TestAccountingIdentity(t *testing.T) {
	d := New(Config{Partitions: 4, Capacity: 64, NODMaxPerWindow: 8})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		name := fmt.Sprintf("s%d.dom%d.com.", rng.Intn(50), rng.Intn(200))
		d.Observe(qsum(name), float64(i)/10)
	}
	c := d.Counters()
	if c.Observed != c.FirstSeen+c.Seen+c.Overflow {
		t.Fatalf("NOD identity broken: %d != %d+%d+%d",
			c.Observed, c.FirstSeen, c.Seen, c.Overflow)
	}
	if c.Observed != c.ICHits {
		t.Fatalf("IC identity broken: observed %d != ic hits %d", c.Observed, c.ICHits)
	}
	if c.Offered < c.Observed {
		t.Fatalf("offered %d < observed %d", c.Offered, c.Observed)
	}
}

// TestSerialBytesPathEquivalence drives the same stream through the
// serial path (Observe) and the sharded path (AppendKey +
// ObservePartition + RecordOffered) and requires byte-identical merged
// snapshots — the property the sharded engine's determinism rests on.
func TestSerialBytesPathEquivalence(t *testing.T) {
	cfg := Config{Partitions: 8, Capacity: 128, NODHorizonSec: 120, NODBuckets: 4}
	serial := New(cfg)
	bytesPath := New(cfg)

	rng := rand.New(rand.NewSource(42))
	var names []string
	for i := 0; i < 3000; i++ {
		names = append(names, fmt.Sprintf("%c%d.zone%d.net.",
			'a'+rng.Intn(26), rng.Intn(100), rng.Intn(300)))
	}
	names = append(names, "com.", "arpa.") // no-eSLD cases

	var buf []byte
	for i, name := range names {
		now := float64(i) / 20
		sum := qsum(name)
		serial.Observe(sum, now)

		bytesPath.RecordOffered()
		buf = buf[:0]
		key, part, ok := bytesPath.AppendKey(sum, buf)
		if !ok {
			continue
		}
		bytesPath.ObservePartition(part, key, sum, now)
	}

	we := float64(len(names)) / 20
	icA, nodA, err := serial.MergeWindow(serial.CollectAll(0, we))
	if err != nil {
		t.Fatal(err)
	}
	icB, nodB, err := bytesPath.MergeWindow(bytesPath.CollectAll(0, we))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, icA), encode(t, icB)) {
		t.Fatal("detect_esld snapshots differ between string and bytes paths")
	}
	if !bytes.Equal(encode(t, nodA), encode(t, nodB)) {
		t.Fatal("detect_nod snapshots differ between string and bytes paths")
	}
	ca, cb := serial.Counters(), bytesPath.Counters()
	if ca != cb {
		t.Fatalf("counters diverged: serial %+v bytes %+v", ca, cb)
	}
}

// TestMergeOrderIndependence shuffles the partition parts before
// merging: the merged snapshot must not depend on collection order.
func TestMergeOrderIndependence(t *testing.T) {
	cfg := Config{Partitions: 8, Capacity: 128}
	d := New(cfg)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		d.Observe(qsum(fmt.Sprintf("q%d.host%d.org.", rng.Intn(40), rng.Intn(150))), float64(i)/30)
	}
	parts := d.CollectAll(0, 60)
	ic1, nod1, err := d.MergeWindow(parts)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := append([]WindowPart(nil), parts...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	ic2, nod2, err := d.MergeWindow(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, ic1), encode(t, ic2)) {
		t.Fatal("merged detect_esld depends on part order")
	}
	if !bytes.Equal(encode(t, nod1), encode(t, nod2)) {
		t.Fatal("merged detect_nod depends on part order")
	}
}

func TestWindowDeltasAndTotals(t *testing.T) {
	d := New(Config{Partitions: 2})
	d.Observe(qsum("a.w1.com."), 1)
	d.Observe(qsum("b.w1.com."), 2)
	d.Observe(qsum("."), 3) // offered, not observed
	parts := d.CollectAll(0, 60)
	var off, obs uint64
	for _, p := range parts {
		off += p.Offered
		obs += p.Observed
	}
	if off != 3 || obs != 2 {
		t.Fatalf("window 1 deltas: offered=%d observed=%d, want 3/2", off, obs)
	}
	ic, nod, err := d.MergeWindow(parts)
	if err != nil {
		t.Fatal(err)
	}
	if ic.TotalBefore != 3 || ic.TotalAfter != 2 {
		t.Fatalf("ic totals = %d/%d, want 3/2", ic.TotalBefore, ic.TotalAfter)
	}
	if nod.TotalBefore != 3 || nod.TotalAfter != 2 {
		t.Fatalf("nod totals = %d/%d, want 3/2", nod.TotalBefore, nod.TotalAfter)
	}

	// Second window starts from zero deltas.
	d.Observe(qsum("a.w1.com."), 61)
	parts = d.CollectAll(60, 120)
	off, obs = 0, 0
	for _, p := range parts {
		off += p.Offered
		obs += p.Observed
	}
	if off != 1 || obs != 1 {
		t.Fatalf("window 2 deltas: offered=%d observed=%d, want 1/1", off, obs)
	}
}

func TestMergeTruncatesToK(t *testing.T) {
	d := New(Config{Partitions: 2, K: 5, NODK: 3, Capacity: 256, NODMaxPerWindow: 256})
	for i := 0; i < 50; i++ {
		name := fmt.Sprintf("deadbeef%02d.t%02d.com.", i, i)
		for j := 0; j <= i%7; j++ {
			d.Observe(qsum(name), float64(i))
		}
	}
	ic, nod, err := d.MergeWindow(d.CollectAll(0, 60))
	if err != nil {
		t.Fatal(err)
	}
	if len(ic.Rows) != 5 {
		t.Fatalf("ic rows = %d, want K=5", len(ic.Rows))
	}
	if len(nod.Rows) != 3 {
		t.Fatalf("nod rows = %d, want NODK=3", len(nod.Rows))
	}
	for i := 1; i < len(ic.Rows); i++ {
		if ic.Rows[i].Values[0] > ic.Rows[i-1].Values[0] {
			t.Fatal("ic rows not sorted by descending score")
		}
	}
}

func TestPublishWindowMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	d := New(Config{Partitions: 2, Metrics: reg})
	d.Observe(qsum("aa.pub1.com."), 1)
	d.Observe(qsum("bb.pub2.com."), 2)
	d.Observe(qsum("aa.pub1.com."), 3)
	parts := d.CollectAll(0, 60)
	d.PublishWindow(parts)
	if got := reg.SumCounter(MetricObserved); got != 3 {
		t.Fatalf("%s = %d, want 3", MetricObserved, got)
	}
	if got := reg.SumCounter(MetricNODFirstSeen); got != 2 {
		t.Fatalf("%s = %d, want 2", MetricNODFirstSeen, got)
	}
	if got := reg.SumCounter(MetricNODSeen); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricNODSeen, got)
	}
	if got := reg.Sum(MetricICTracked); got != 2 {
		t.Fatalf("%s = %v, want 2 tracked eSLDs", MetricICTracked, got)
	}
}

func TestDefaultsApplied(t *testing.T) {
	d := New(Config{})
	if d.Partitions() != DefaultConfig().Partitions {
		t.Fatalf("partitions = %d, want default %d", d.Partitions(), DefaultConfig().Partitions)
	}
	// The zero config must be fully usable.
	d.Observe(qsum("x.defaults.org."), 1)
	if c := d.Counters(); c.Observed != 1 {
		t.Fatalf("observed = %d, want 1", c.Observed)
	}
}

func TestEvictionRecyclesState(t *testing.T) {
	// A tiny cache forces evictions; the identity and window collection
	// must survive heavy churn, and evicted state is recycled.
	d := New(Config{Partitions: 1, Capacity: 4, AdmitterN: 64})
	for i := 0; i < 400; i++ {
		// Repeat each name enough to pass the Bloom admitter.
		name := fmt.Sprintf("qqq.churn%d.com.", i%40)
		d.Observe(qsum(name), float64(i)/100)
		d.Observe(qsum(name), float64(i)/100)
	}
	c := d.Counters()
	if c.Observed != c.FirstSeen+c.Seen+c.Overflow || c.Observed != c.ICHits {
		t.Fatalf("identity broken under churn: %+v", c)
	}
	parts := d.CollectAll(0, 60)
	if parts[0].ICLen > 4 {
		t.Fatalf("cache grew past capacity: %d", parts[0].ICLen)
	}
	if parts[0].ICEvictions == 0 {
		t.Fatal("expected evictions under churn")
	}
}
