package detect

import (
	"dnsobservatory/internal/metrics"
	"dnsobservatory/internal/spacesaving"
	"dnsobservatory/internal/tsv"
)

// Metric family names published by the detection layer.
const (
	MetricObserved     = "dnsobs_detect_observed_total"
	MetricNODFirstSeen = "dnsobs_detect_nod_first_seen_total"
	MetricNODSeen      = "dnsobs_detect_nod_seen_total"
	MetricNODOverflow  = "dnsobs_detect_nod_overflow_total"
	MetricICDropped    = "dnsobs_detect_ic_dropped_total"
	MetricICEvictions  = "dnsobs_detect_ic_evictions_total"
	MetricICTracked    = "dnsobs_detect_ic_tracked"
)

// WindowPart is one partition's contribution to a window: two partial
// snapshots plus the window's counter deltas, produced by CollectWindow
// on whichever goroutine owns the partition and handed to the merger.
type WindowPart struct {
	IC  *tsv.Snapshot // partial detect_esld snapshot
	NOD *tsv.Snapshot // partial detect_nod snapshot

	// Window deltas for metric publication.
	Offered, Observed         uint64
	FirstSeen, Seen, Overflow uint64
	ICDropped, ICEvictions    uint64
	ICLen                     int
}

// CollectWindow drains partition part's window state: rows for every
// eSLD active this window (information content scored at windowEnd, so
// idle objects decay), rows for every newly observed eSLD, and the
// counter deltas since the previous collection. It resets the
// per-window state (window hit counts, NOD rows, the admission filter)
// exactly as the volume aggregations do at dump time. Only the
// partition's owner may call it.
func (d *Detector) CollectWindow(part int, windowStart, windowEnd float64) WindowPart {
	p := d.parts[part]
	ws := int64(windowStart)

	ic := &tsv.Snapshot{
		Aggregation: AggESLD,
		Level:       tsv.Minutely,
		Start:       ws,
		Columns:     icColumns,
		Kinds:       icKinds,
		Windows:     1,
	}
	p.ic.Entries(func(e *spacesaving.Entry) {
		st, _ := e.State.(*icStats)
		if st == nil || st.windowHits == 0 {
			return
		}
		ent := entropyOf(&st.hist)
		meanLen := float64(st.chars) / float64(st.samples)
		rate := p.ic.RateAt(e, windowEnd)
		ic.Rows = append(ic.Rows, tsv.Row{
			Key:    e.Key,
			Values: []float64{ent * meanLen * rate, float64(st.windowHits), rate, ent, meanLen},
		})
		st.windowHits = 0
	})

	nod := &tsv.Snapshot{
		Aggregation: AggNOD,
		Level:       tsv.Minutely,
		Start:       ws,
		Columns:     nodColumns,
		Kinds:       nodKinds,
		Windows:     1,
	}
	for key, r := range p.nod.win {
		nod.Rows = append(nod.Rows, tsv.Row{
			Key:    key,
			Values: []float64{float64(r.hits), r.firstSeen},
		})
	}
	clear(p.nod.win)

	wp := WindowPart{IC: ic, NOD: nod, ICLen: p.ic.Len()}
	wp.Offered, p.lastOffered = p.offered-p.lastOffered, p.offered
	wp.Observed, p.lastObserved = p.observed-p.lastObserved, p.observed
	wp.FirstSeen, p.lastFirstSeen = p.nod.firstSeen-p.lastFirstSeen, p.nod.firstSeen
	wp.Seen, p.lastSeen = p.nod.seen-p.lastSeen, p.nod.seen
	wp.Overflow, p.lastOverflow = p.nod.overflow-p.lastOverflow, p.nod.overflow
	wp.ICDropped, p.lastDropped = p.ic.Dropped()-p.lastDropped, p.ic.Dropped()
	wp.ICEvictions, p.lastEvictions = p.ic.Evictions()-p.lastEvictions, p.ic.Evictions()

	// The collection statistics row: pre-filter stream volume on one
	// side, eSLD observations folded into this partition on the other.
	// Summed across partitions by MergeParts, they describe the window.
	ic.TotalBefore, ic.TotalAfter = wp.Offered, wp.Observed
	nod.TotalBefore, nod.TotalAfter = wp.Offered, wp.Observed

	p.admitter.Reset()
	return wp
}

// CollectAll runs CollectWindow over every partition — the serial
// pipeline's dump path, where one goroutine owns all of them.
func (d *Detector) CollectAll(windowStart, windowEnd float64) []WindowPart {
	out := make([]WindowPart, len(d.parts))
	for i := range d.parts {
		out[i] = d.CollectWindow(i, windowStart, windowEnd)
	}
	return out
}

// MergeWindow unites the partition parts of one window into the two
// final snapshots, ranked by descending score (detect_esld) and window
// hits (detect_nod) and truncated to Config.K / Config.NODK rows.
// Partitions are key-disjoint by construction, so the union is exact;
// since every deployment produces the same per-partition rows (see the
// package comment), the merged snapshots are byte-identical regardless
// of how partitions were grouped into workers.
func (d *Detector) MergeWindow(parts []WindowPart) (ic, nod *tsv.Snapshot, err error) {
	ics := make([]*tsv.Snapshot, len(parts))
	nods := make([]*tsv.Snapshot, len(parts))
	for i, p := range parts {
		ics[i], nods[i] = p.IC, p.NOD
	}
	ic, err = tsv.MergeParts(d.cfg.K, ics...)
	if err != nil {
		return nil, nil, err
	}
	nod, err = tsv.MergeParts(d.cfg.NODK, nods...)
	if err != nil {
		return nil, nil, err
	}
	return ic, nod, nil
}

// PublishWindow folds one window's counter deltas into the
// dnsobs_detect_* metric families. Call it from the dump path (serial
// pipeline or sharded merger), never from workers.
func (d *Detector) PublishWindow(parts []WindowPart) {
	var w WindowPart
	tracked := 0
	for _, p := range parts {
		w.Observed += p.Observed
		w.FirstSeen += p.FirstSeen
		w.Seen += p.Seen
		w.Overflow += p.Overflow
		w.ICDropped += p.ICDropped
		w.ICEvictions += p.ICEvictions
		tracked += p.ICLen
	}
	m := d.m
	m.observed.Add(w.Observed)
	m.nodFirstSeen.Add(w.FirstSeen)
	m.nodSeen.Add(w.Seen)
	m.nodOverflow.Add(w.Overflow)
	m.icDropped.Add(w.ICDropped)
	m.icEvictions.Add(w.ICEvictions)
	m.icTracked.Set(float64(tracked))
}

// Counters is the cumulative accounting of a Detector, for invariant
// checks: Observed == FirstSeen+Seen+Overflow == ICHits always holds,
// and Offered >= Observed (transactions without an eSLD are offered but
// not observed). Read it only while no goroutine is observing.
type Counters struct {
	Offered, Observed         uint64
	FirstSeen, Seen, Overflow uint64
	ICHits, ICDropped         uint64
}

// Counters sums the per-partition counters. Quiescent callers only.
func (d *Detector) Counters() Counters {
	var c Counters
	for _, p := range d.parts {
		c.Offered += p.offered
		c.Observed += p.observed
		c.FirstSeen += p.nod.firstSeen
		c.Seen += p.nod.seen
		c.Overflow += p.nod.overflow
		c.ICHits += p.ic.Hits()
		c.ICDropped += p.ic.Dropped()
	}
	return c
}

// detectMetrics mirrors the engineMetrics convention: with a registry
// the counters are registered families; without one they are standalone
// so the publish path never nil-checks.
type detectMetrics struct {
	observed     *metrics.Counter
	nodFirstSeen *metrics.Counter
	nodSeen      *metrics.Counter
	nodOverflow  *metrics.Counter
	icDropped    *metrics.Counter
	icEvictions  *metrics.Counter
	icTracked    *metrics.Gauge
}

func newDetectMetrics(reg *metrics.Registry) *detectMetrics {
	if reg == nil {
		return &detectMetrics{
			observed:     metrics.NewCounter(),
			nodFirstSeen: metrics.NewCounter(),
			nodSeen:      metrics.NewCounter(),
			nodOverflow:  metrics.NewCounter(),
			icDropped:    metrics.NewCounter(),
			icEvictions:  metrics.NewCounter(),
			icTracked:    metrics.NewGauge(),
		}
	}
	return &detectMetrics{
		observed:     reg.Counter(MetricObserved, "eSLD observations folded into the detection layer"),
		nodFirstSeen: reg.Counter(MetricNODFirstSeen, "eSLDs newly observed within the NOD horizon"),
		nodSeen:      reg.Counter(MetricNODSeen, "eSLD observations already present in the NOD seen-set"),
		nodOverflow:  reg.Counter(MetricNODOverflow, "first-seen events beyond the per-window row cap"),
		icDropped:    reg.Counter(MetricICDropped, "observations refused by the information-content admission filter"),
		icEvictions:  reg.Counter(MetricICEvictions, "information-content top-k minimum displacements"),
		icTracked:    reg.Gauge(MetricICTracked, "eSLDs currently tracked by the information-content cache"),
	}
}
