package simnet

import (
	"testing"

	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/sie"
)

// classStats runs a single-class workload and tallies QTYPEs and RCODEs.
func classStats(t *testing.T, mix WorkloadMix) (qtypes map[dnswire.Type]int, rcodes map[dnswire.RCode]int, qdotsSum, n int) {
	t.Helper()
	cfg := smallConfig()
	cfg.Duration = 40
	cfg.Mix = mix
	cfg.HEShare = 0
	sim := New(cfg)
	qtypes = map[dnswire.Type]int{}
	rcodes = map[dnswire.RCode]int{}
	var s sie.Summarizer
	var sum sie.Summary
	sim.Run(func(tx *sie.Transaction) {
		if err := s.Summarize(tx, &sum); err != nil {
			t.Fatal(err)
		}
		qtypes[sum.QType]++
		if sum.Answered {
			rcodes[sum.RCode]++
		}
		qdotsSum += sum.QDots
		n++
	})
	if n == 0 {
		t.Fatal("no transactions")
	}
	return qtypes, rcodes, qdotsSum, n
}

func TestWorkloadClassShapes(t *testing.T) {
	cases := []struct {
		name  string
		mix   WorkloadMix
		check func(t *testing.T, qt map[dnswire.Type]int, rc map[dnswire.RCode]int, qdots float64, n int)
	}{
		{"forward", WorkloadMix{Forward: 1},
			func(t *testing.T, qt map[dnswire.Type]int, rc map[dnswire.RCode]int, qdots float64, n int) {
				if qt[dnswire.TypeA] < n*8/10 {
					t.Errorf("A share %d/%d", qt[dnswire.TypeA], n)
				}
			}},
		{"ptr", WorkloadMix{PTR: 1},
			func(t *testing.T, qt map[dnswire.Type]int, rc map[dnswire.RCode]int, qdots float64, n int) {
				if qt[dnswire.TypePTR] < n/2 {
					t.Errorf("PTR share %d/%d", qt[dnswire.TypePTR], n)
				}
				if qdots < 5 {
					t.Errorf("PTR qdots %.1f, want deep names", qdots)
				}
			}},
		{"mx", WorkloadMix{MX: 1},
			func(t *testing.T, qt map[dnswire.Type]int, rc map[dnswire.RCode]int, qdots float64, n int) {
				if qt[dnswire.TypeMX] == 0 {
					t.Error("no MX queries")
				}
				// MX probing attracts Refused/ServFail (Table 2 err 34%).
				if rc[dnswire.RCodeRefused]+rc[dnswire.RCodeServFail] == 0 {
					t.Error("no MX failures")
				}
			}},
		{"srv", WorkloadMix{SRV: 1},
			func(t *testing.T, qt map[dnswire.Type]int, rc map[dnswire.RCode]int, qdots float64, n int) {
				if qt[dnswire.TypeSRV] == 0 {
					t.Error("no SRV queries")
				}
				if rc[dnswire.RCodeNXDomain] == 0 {
					t.Error("no SRV NXDOMAIN (most service names do not exist)")
				}
			}},
		{"ds", WorkloadMix{DS: 1},
			func(t *testing.T, qt map[dnswire.Type]int, rc map[dnswire.RCode]int, qdots float64, n int) {
				if qt[dnswire.TypeDS] == 0 {
					t.Error("no DS queries")
				}
			}},
		{"soa", WorkloadMix{SOA: 1},
			func(t *testing.T, qt map[dnswire.Type]int, rc map[dnswire.RCode]int, qdots float64, n int) {
				if qt[dnswire.TypeSOA] == 0 {
					t.Error("no SOA queries")
				}
			}},
		{"cname", WorkloadMix{CNAME: 1},
			func(t *testing.T, qt map[dnswire.Type]int, rc map[dnswire.RCode]int, qdots float64, n int) {
				if qt[dnswire.TypeCNAME] == 0 {
					t.Error("no CNAME queries")
				}
			}},
		{"junk", WorkloadMix{Junk: 1},
			func(t *testing.T, qt map[dnswire.Type]int, rc map[dnswire.RCode]int, qdots float64, n int) {
				total := 0
				for _, c := range rc {
					total += c
				}
				if rc[dnswire.RCodeNXDomain] < total*9/10 {
					t.Errorf("junk NXD %d/%d, want ~all", rc[dnswire.RCodeNXDomain], total)
				}
			}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			qt, rc, qdotsSum, n := classStats(t, c.mix)
			c.check(t, qt, rc, float64(qdotsSum)/float64(n), n)
		})
	}
}

func TestDSServedByParent(t *testing.T) {
	cfg := smallConfig()
	cfg.Duration = 40
	cfg.Mix = WorkloadMix{DS: 1}
	sim := New(cfg)
	var s sie.Summarizer
	var sum sie.Summary
	var dsTx, fromHierarchy int
	sim.Run(func(tx *sie.Transaction) {
		if err := s.Summarize(tx, &sum); err != nil {
			t.Fatal(err)
		}
		if sum.QType != dnswire.TypeDS {
			return
		}
		dsTx++
		if sim.IsHierarchyServer(sum.Nameserver) {
			fromHierarchy++
		}
	})
	if dsTx == 0 {
		t.Fatal("no DS transactions")
	}
	if fromHierarchy != dsTx {
		t.Errorf("%d/%d DS answers from non-registry servers (DS lives in the parent zone)",
			dsTx-fromHierarchy, dsTx)
	}
}

func TestSensorsAssigned(t *testing.T) {
	cfg := smallConfig()
	cfg.Duration = 10
	cfg.Sensors = 5
	sim := New(cfg)
	seen := map[uint32]bool{}
	sim.Run(func(tx *sie.Transaction) {
		seen[tx.SensorID] = true
	})
	if len(seen) != 5 {
		t.Errorf("sensors seen = %d, want 5", len(seen))
	}
	for id := range seen {
		if id < 1 || id > 5 {
			t.Errorf("sensor id %d out of range", id)
		}
	}
}
