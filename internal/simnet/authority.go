package simnet

import (
	"errors"
	"fmt"
	"net/netip"
	"strings"
	"time"

	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/ipwire"
)

// Authority is the scenario's authoritative server side, frozen for
// concurrent use: a read-only index of every root, TLD and zone
// nameserver that answers ipwire-framed DNS queries the way the live
// simulation would, minus the passive-path randomness (drops, cookies,
// per-response TTL rolls). It exists for the active probe plane, where
// thousands of goroutines resolve against the population at once —
// Sim itself mutates shared state per query and must stay
// single-threaded.
//
// Build one with NewAuthority after simnet.New; the constructor mints
// every lazily-created ccTLD server up front (Infra.CCTLDServer mutates
// the Infra maps, so it must never run inside Exchange) and from then
// on the Authority only reads.
type Authority struct {
	cfg    AuthorityConfig
	byAddr map[netip.Addr]*authServer
	zones  map[string]*SLD
	fqdns  map[string]*FQDN
	roots  []*Server
	tlds   map[string]tldDelegation
}

// AuthorityConfig tunes the frozen authoritative plane.
type AuthorityConfig struct {
	// DelayScale is the fraction of each server's modeled response
	// delay that Exchange actually sleeps. The modeled delay is always
	// reported in full as the returned rtt — DelayScale only throttles
	// wall-clock time, so 0 (the default) gives a CPU-bound loopback
	// population whose latency histograms still look like the paper's.
	DelayScale float64
}

// tldDelegation is the referral a root server hands out for one TLD:
// NS owner names parallel to the real registry servers they resolve to.
// Unlike the passive path (which fabricates glue addresses because the
// resolver model never dials them), these glue records point at the
// actual TLD servers, so an iterative prober can follow them.
type tldDelegation struct {
	names   []string
	servers []*Server
}

// authServer is one nameserver address with its role in the hierarchy.
type authServer struct {
	srv  *Server
	role authRole
	// tlds is the set of public suffixes a registry server answers for
	// (the gTLD fleet serves both com. and net.).
	tlds map[string]bool
	// zones maps the zone apexes a leaf authoritative serves.
	zones map[string]*SLD
}

type authRole uint8

const (
	roleRoot authRole = iota
	roleTLD
	roleAuth
)

// Errors returned by Exchange for queries the population cannot route.
var (
	// ErrNoServer means the destination address is not an authoritative
	// nameserver of this scenario.
	ErrNoServer = errors.New("simnet: no authoritative server at address")
	// ErrBadQuery means the query packet or DNS payload did not parse.
	ErrBadQuery = errors.New("simnet: malformed query")
)

// NewAuthority freezes sim's server side for concurrent probing.
func NewAuthority(s *Sim, cfg AuthorityConfig) *Authority {
	a := &Authority{
		cfg:    cfg,
		byAddr: map[netip.Addr]*authServer{},
		zones:  map[string]*SLD{},
		fqdns:  map[string]*FQDN{},
		roots:  s.Infra.RootServers,
		tlds:   map[string]tldDelegation{},
	}
	for _, srv := range s.Infra.RootServers {
		a.index(srv, roleRoot)
	}
	var all []*SLD
	all = append(all, s.Universe.SLDs...)
	all = append(all, s.Universe.PTRZones...)
	all = append(all, s.AVZones...)
	for _, zone := range all {
		a.zones[zone.Name] = zone
		for _, f := range zone.FQDNs {
			a.fqdns[f.Name] = f
		}
		tld := dnswire.TLD(zone.Name)
		if _, ok := a.tlds[tld]; !ok {
			a.tlds[tld] = s.tldDelegation(tld)
		}
		for _, srv := range zone.NS {
			as := a.index(srv, roleAuth)
			as.zones[zone.Name] = zone
		}
	}
	for tld, deleg := range a.tlds {
		for _, srv := range deleg.servers {
			as := a.index(srv, roleTLD)
			as.tlds[tld] = true
		}
	}
	return a
}

// tldDelegation builds the real-glue referral set for one TLD, minting
// the registry server if the passive path never touched this suffix.
func (s *Sim) tldDelegation(tld string) tldDelegation {
	if tld == "com." || tld == "net." {
		d := tldDelegation{servers: s.Infra.GTLDServers}
		for i := range d.servers {
			d.names = append(d.names, fmt.Sprintf("%c.gtld-servers.net.", 'a'+i))
		}
		return d
	}
	return tldDelegation{
		names:   []string{"a.nic." + tld},
		servers: []*Server{s.Infra.CCTLDServer(tld)},
	}
}

// index registers srv's addresses under role, keeping the first role a
// shared address was registered with (hierarchy wins over leaf).
func (a *Authority) index(srv *Server, role authRole) *authServer {
	if as, ok := a.byAddr[srv.Addr]; ok {
		return as
	}
	as := &authServer{srv: srv, role: role}
	switch role {
	case roleTLD:
		as.tlds = map[string]bool{}
	case roleAuth:
		as.zones = map[string]*SLD{}
	}
	a.byAddr[srv.Addr] = as
	if srv.Addr6.IsValid() {
		a.byAddr[srv.Addr6] = as
	}
	return as
}

// RootAddrs returns the 13 root server addresses — the priming set an
// iterative prober starts from.
func (a *Authority) RootAddrs() []netip.Addr {
	addrs := make([]netip.Addr, len(a.roots))
	for i, srv := range a.roots {
		addrs[i] = srv.Addr
	}
	return addrs
}

// Zone returns the zone serving name (longest-suffix match), or nil.
func (a *Authority) Zone(name string) *SLD { return a.zoneFor(name) }

// Servers reports how many distinct nameserver addresses the frozen
// plane answers on.
func (a *Authority) Servers() int { return len(a.byAddr) }

// Exchange answers one ipwire-framed DNS query (UDP or TCP framing,
// detected from the packet) addressed to a nameserver of the
// population. It returns the framed response and the server's modeled
// response delay. Responses over 1232 bytes are truncated over UDP
// (TC set, sections emptied) — retry the same question in a TCP frame
// for the full answer. Safe for concurrent use; the returned slice is
// freshly allocated.
func (a *Authority) Exchange(query []byte) (resp []byte, rtt time.Duration, err error) {
	pkt, isTCP, err := ipwire.DecodeAny(query)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	as, ok := a.byAddr[pkt.Dst]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %v", ErrNoServer, pkt.Dst)
	}
	var q dnswire.Message
	if err := q.Unpack(pkt.Payload); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	question := q.Question()
	if question.Name == "" {
		return nil, 0, fmt.Errorf("%w: empty question", ErrBadQuery)
	}

	m := dnswire.Message{
		ID:        q.ID,
		Flags:     dnswire.Flags{Response: true},
		Questions: []dnswire.Question{question},
	}
	switch as.role {
	case roleRoot:
		a.answerRoot(&m, question)
	case roleTLD:
		a.answerTLD(&m, as, question)
	case roleAuth:
		a.answerAuth(&m, as, question)
	}
	if q.OPT() != nil {
		m.SetEDNS(maxUDPPayload, false)
	}

	rtt = a.delay(as.srv, q.ID, question.Name)
	wire, err := m.Pack(make([]byte, 0, 512))
	if err != nil {
		return nil, 0, err
	}
	if !isTCP && len(wire) > maxUDPPayload {
		trunc := dnswire.Message{
			ID:        m.ID,
			Flags:     m.Flags,
			Questions: m.Questions,
		}
		trunc.Flags.Truncated = true
		if q.OPT() != nil {
			trunc.SetEDNS(maxUDPPayload, false)
		}
		if wire, err = trunc.Pack(wire[:0]); err != nil {
			return nil, 0, err
		}
	}

	srv := as.srv
	hops := srv.Hops
	if hops > 254 {
		hops = 254
	}
	rttl := uint8(255 - hops)
	v6 := pkt.Dst.Is6()
	switch {
	case isTCP && v6:
		resp = ipwire.AppendIPv6TCPDNS(nil, pkt.Dst, pkt.Src, pkt.DstPort, pkt.SrcPort, rttl, 1, wire)
	case isTCP:
		resp = ipwire.AppendIPv4TCPDNS(nil, pkt.Dst, pkt.Src, pkt.DstPort, pkt.SrcPort, rttl, 1, wire)
	case v6:
		resp = ipwire.AppendIPv6UDP(nil, pkt.Dst, pkt.Src, pkt.DstPort, pkt.SrcPort, rttl, wire)
	default:
		resp = ipwire.AppendIPv4UDP(nil, pkt.Dst, pkt.Src, pkt.DstPort, pkt.SrcPort, rttl, wire)
	}
	if a.cfg.DelayScale > 0 {
		time.Sleep(time.Duration(float64(rtt) * a.cfg.DelayScale))
	}
	return resp, rtt, nil
}

// delay is the server's modeled response time for this query: the base
// delay with a deterministic ±15 % per-query jitter, so repeated probes
// see realistic spread without any shared rng state.
func (a *Authority) delay(srv *Server, id uint16, qname string) time.Duration {
	h := uint64(14695981039346656037)
	for i := 0; i < len(qname); i++ {
		h = (h ^ uint64(qname[i])) * 1099511628211
	}
	h = (h ^ uint64(id)) * 1099511628211
	factor := 0.85 + 0.3*float64(h%1024)/1024
	return time.Duration(srv.BaseDelayMs * factor * float64(time.Millisecond))
}

// zoneFor finds the deepest zone whose apex is a suffix of name.
func (a *Authority) zoneFor(name string) *SLD {
	for n := name; n != "" && n != "."; {
		if z, ok := a.zones[n]; ok {
			return z
		}
		dot := strings.IndexByte(n, '.')
		if dot < 0 || dot+1 >= len(n) {
			break
		}
		n = n[dot+1:]
	}
	return nil
}

// answerRoot builds a root server's response: a referral to the TLD's
// registry servers with real glue, or NXDOMAIN with the root SOA.
func (a *Authority) answerRoot(m *dnswire.Message, q dnswire.Question) {
	tld := dnswire.TLD(q.Name)
	deleg, ok := a.tlds[tld]
	if !ok {
		m.Flags.Authoritative = true
		m.Flags.RCode = dnswire.RCodeNXDomain
		addAuthoritySOA(m, ".", 86400)
		return
	}
	for i, name := range deleg.names {
		m.Authority = append(m.Authority, dnswire.RR{
			Name: tld, Type: dnswire.TypeNS, Class: dnswire.ClassINET, TTL: 172800,
			Data: dnswire.NSRData{NS: name},
		})
		m.Additional = append(m.Additional, dnswire.RR{
			Name: name, Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: 172800,
			Data: dnswire.ARData{Addr: deleg.servers[i].Addr},
		})
	}
}

// answerTLD builds a registry server's response: a referral into the
// delegated zone, NXDOMAIN with the TLD SOA for unregistered names, or
// REFUSED for suffixes this registry does not run.
func (a *Authority) answerTLD(m *dnswire.Message, as *authServer, q dnswire.Question) {
	tld := dnswire.TLD(q.Name)
	if !as.tlds[tld] {
		m.Flags.RCode = dnswire.RCodeRefused
		return
	}
	zone := a.zoneFor(q.Name)
	if zone == nil {
		m.Flags.Authoritative = true
		m.Flags.RCode = dnswire.RCodeNXDomain
		addAuthoritySOA(m, tld, 900)
		return
	}
	for i, nsName := range zone.NSNames {
		m.Authority = append(m.Authority, dnswire.RR{
			Name: zone.Name, Type: dnswire.TypeNS, Class: dnswire.ClassINET, TTL: 172800,
			Data: dnswire.NSRData{NS: nsName},
		})
		m.Additional = append(m.Additional, dnswire.RR{
			Name: nsName, Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: 172800,
			Data: dnswire.ARData{Addr: zone.NS[i].Addr},
		})
	}
}

// answerAuth builds a leaf authoritative's response: the answer RRset
// for names it serves, NODATA or NXDOMAIN with the zone SOA otherwise,
// REFUSED when the zone is not on this server.
func (a *Authority) answerAuth(m *dnswire.Message, as *authServer, q dnswire.Question) {
	zone := a.zoneFor(q.Name)
	if zone == nil || as.zones[zone.Name] == nil {
		m.Flags.RCode = dnswire.RCodeRefused
		return
	}
	m.Flags.Authoritative = true
	in := dnswire.ClassINET

	// Zone-apex RRsets answer regardless of whether the apex is also a
	// hostname of the population.
	if q.Name == zone.Name {
		switch q.Type {
		case dnswire.TypeNS:
			for i, nsName := range zone.NSNames {
				m.Answers = append(m.Answers, dnswire.RR{Name: zone.Name, Type: q.Type, Class: in,
					TTL: zone.NSTTL, Data: dnswire.NSRData{NS: nsName}})
				m.Additional = append(m.Additional, dnswire.RR{Name: nsName, Type: dnswire.TypeA,
					Class: in, TTL: zone.NSTTL, Data: dnswire.ARData{Addr: zone.NS[i].Addr}})
			}
			return
		case dnswire.TypeSOA:
			m.Answers = append(m.Answers, dnswire.RR{Name: zone.Name, Type: q.Type, Class: in, TTL: 3600,
				Data: dnswire.SOARData{MName: zone.NSNames[0], RName: "hostmaster." + zone.Name,
					Serial: zone.Serial, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: zone.NegTTL}})
			return
		case dnswire.TypeMX:
			m.Answers = append(m.Answers, dnswire.RR{Name: zone.Name, Type: q.Type, Class: in, TTL: 3600,
				Data: dnswire.MXRData{Preference: 10, MX: "mail." + zone.Name}})
			return
		}
	}

	f, ok := a.fqdns[q.Name]
	if !ok || f.SLD != zone {
		m.Flags.RCode = dnswire.RCodeNXDomain
		addAuthoritySOA(m, zone.Name, zone.NegTTL)
		return
	}
	switch q.Type {
	case dnswire.TypeA:
		m.Answers = append(m.Answers, dnswire.RR{Name: q.Name, Type: q.Type, Class: in, TTL: zone.ATTL,
			Data: dnswire.ARData{Addr: zone.AddrFor(f, false)}})
	case dnswire.TypeAAAA:
		if !f.HasV6() {
			addAuthoritySOA(m, zone.Name, zone.NegTTL) // NODATA
			return
		}
		m.Answers = append(m.Answers, dnswire.RR{Name: q.Name, Type: q.Type, Class: in, TTL: zone.ATTL,
			Data: dnswire.AAAARData{Addr: zone.AddrFor(f, true)}})
	default:
		addAuthoritySOA(m, zone.Name, zone.NegTTL) // NODATA for other types
	}
}

// addAuthoritySOA appends the RFC 2308 negative-answer SOA.
func addAuthoritySOA(m *dnswire.Message, zone string, negTTL uint32) {
	mname := "ns1." + zone
	if zone == "." {
		mname = "a.root-servers.net."
	}
	m.Authority = append(m.Authority, dnswire.RR{
		Name: zone, Type: dnswire.TypeSOA, Class: dnswire.ClassINET, TTL: negTTL,
		Data: dnswire.SOARData{MName: mname, RName: "hostmaster." + zone,
			Serial: 1, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: negTTL},
	})
}
