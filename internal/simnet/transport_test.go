package simnet

import (
	"testing"

	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/ipwire"
	"dnsobservatory/internal/sie"
)

// TestDualStackTransport verifies that dual-stack resolver/server pairs
// exchange some transactions over IPv6, and that both address families
// parse cleanly through the summarizer.
func TestDualStackTransport(t *testing.T) {
	cfg := smallConfig()
	cfg.Duration = 40
	sim := New(cfg)
	var s sie.Summarizer
	var sum sie.Summary
	var v4, v6 int
	sim.Run(func(tx *sie.Transaction) {
		if err := s.Summarize(tx, &sum); err != nil {
			t.Fatalf("parse: %v", err)
		}
		if sum.Nameserver.Is4() {
			v4++
		} else {
			v6++
			if !sum.Resolver.Is6() {
				t.Error("v6 transaction with v4 resolver address")
			}
		}
	})
	if v6 == 0 {
		t.Fatal("no IPv6 transactions")
	}
	if v4 == 0 {
		t.Fatal("no IPv4 transactions")
	}
	if v6 > v4 {
		t.Errorf("IPv6 (%d) outweighs IPv4 (%d); expected a minority share", v6, v4)
	}
}

// TestPrivacySensitiveOptionsDropped confirms the §2.5 privacy layer:
// queries on the wire carry EDNS cookies and client-subnet data, but
// nothing of them survives preprocessing into a Summary.
func TestPrivacySensitiveOptionsDropped(t *testing.T) {
	cfg := smallConfig()
	cfg.Duration = 20
	sim := New(cfg)
	var msg dnswire.Message
	var withOptions int
	var s sie.Summarizer
	var sum sie.Summary
	sim.Run(func(tx *sie.Transaction) {
		pkt, _, err := ipwire.DecodeAny(tx.QueryPacket)
		if err != nil {
			t.Fatal(err)
		}
		if err := msg.Unpack(pkt.Payload); err != nil {
			t.Fatal(err)
		}
		if opt := msg.OPT(); opt != nil {
			for _, o := range opt.Data.(dnswire.OPTRData).Options {
				if o.Code == dnswire.EDNSOptionCookie || o.Code == dnswire.EDNSOptionClientSubnet {
					withOptions++
				}
			}
		}
		if err := s.Summarize(tx, &sum); err != nil {
			t.Fatal(err)
		}
		// Summary has no field that could carry option payloads; the
		// structural check is that parsing them costs nothing and the
		// retained fields are limited to the documented set.
		if sum.QName == "" {
			t.Error("summary lost the query name")
		}
	})
	if withOptions == 0 {
		t.Fatal("no queries carried EDNS privacy-sensitive options; the drop path is untested")
	}
}
