package simnet

import (
	"runtime"
	"testing"

	"dnsobservatory/internal/encwire"
	"dnsobservatory/internal/sie"
)

func benchConfig() Config {
	cfg := DefaultConfig()
	cfg.Duration = 10
	cfg.QPS = 500
	cfg.Resolvers = 40
	cfg.Sensors = 8
	cfg.SLDs = 400
	cfg.Mix.Exfil = 0.002
	return cfg
}

// BenchmarkEncIngest measures event generation for the plaintext path
// and for each encrypted mode (framing, padding, connection tracking
// and observation emit included). The CI contract for BENCH_10.json is
// that every encrypted mode stays within 15% of plain.
func BenchmarkEncIngest(b *testing.B) {
	cases := []struct {
		name string
		mode encwire.Mode
	}{
		{"plain", encwire.ModePlain},
		{"dot", encwire.ModeDoT},
		{"doh", encwire.ModeDoH},
		{"doq", encwire.ModeDoQ},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var txs, msgs uint64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := benchConfig()
				cfg.EncMode = c.mode
				if c.mode != encwire.ModePlain {
					cfg.EncPolicy = encwire.PadEDNS0
					cfg.EncEmit = func(*encwire.Observation) { msgs++ }
				}
				sim := New(cfg)
				// Collect the construction garbage now so GC assist work
				// from New (key generation, zone building) is not charged
				// to the timed Run section.
				runtime.GC()
				b.StartTimer()
				st := sim.Run(func(*sie.Transaction) {})
				txs += st.Transactions
			}
			b.ReportMetric(float64(txs)/float64(b.N), "tx/run")
			if c.mode != encwire.ModePlain {
				b.ReportMetric(float64(msgs)/float64(b.N), "obs/run")
			}
		})
	}
}
