package simnet

import (
	"crypto/sha256"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dnsobservatory/internal/encwire"
	"dnsobservatory/internal/observatory"
	"dnsobservatory/internal/sie"
	"dnsobservatory/internal/tsv"
)

// encTestConfig is a small scenario exercising every workload class the
// encrypted leg must carry, including the C2-style tunnel and exfil
// channels.
func encTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Duration = 20
	cfg.QPS = 300
	cfg.Resolvers = 30
	cfg.Sensors = 8
	cfg.SLDs = 300
	cfg.Mix.Exfil = 0.002
	return cfg
}

// ingestToStore replays a transaction stream through the standard
// aggregation pipeline into a TSV store (the dnsobs ingest contract,
// mirroring the probe golden test).
func ingestToStore(t *testing.T, dir string, sim *Sim) {
	t.Helper()
	store, err := tsv.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	aggs := observatory.StandardAggregations(0.01)
	var aggNames []string
	for _, a := range aggs {
		aggNames = append(aggNames, a.Name)
	}
	var lastStart int64 = -1
	pipe := observatory.New(observatory.DefaultConfig(), aggs, func(s *tsv.Snapshot) {
		if err := store.Put(s); err != nil {
			t.Error(err)
		}
		lastStart = s.Start
	})
	var summarizer sie.Summarizer
	summarizer.KeepUnparsableResponses = true
	var sum sie.Summary
	var base time.Time
	sim.Run(func(tx *sie.Transaction) {
		if err := summarizer.Summarize(tx, &sum); err != nil {
			pipe.RecordRejected()
			return
		}
		if base.IsZero() {
			base = tx.QueryTime.Truncate(time.Minute)
		}
		pipe.Ingest(&sum, tx.QueryTime.Sub(base).Seconds())
	})
	pipe.Flush()
	if err := store.CascadeAll(aggNames, lastStart+60); err != nil {
		t.Fatal(err)
	}
}

// storeDigests hashes every file under a store directory.
func storeDigests(t *testing.T, dir string) map[string][32]byte {
	t.Helper()
	out := map[string][32]byte{}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		out[rel] = sha256.Sum256(b)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestEncModesGoldenStore is the differential golden test: the same
// seed run plaintext and over each encrypted mode must produce
// byte-identical aggregation snapshot stores. Encryption of the client
// leg changes framing and timing of that leg — never the DNS semantics
// of the resolver↔authoritative stream the Observatory aggregates.
func TestEncModesGoldenStore(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run in -short mode")
	}
	type result struct {
		mode    encwire.Mode
		digests map[string][32]byte
		obs     int
	}
	modes := []encwire.Mode{encwire.ModePlain, encwire.ModeDoT, encwire.ModeDoH, encwire.ModeDoQ}
	results := make([]result, 0, len(modes))
	for _, mode := range modes {
		cfg := encTestConfig()
		cfg.EncMode = mode
		cfg.EncPolicy = encwire.PadEDNS0
		obs := 0
		tunneled := map[uint32]bool{}
		if mode != encwire.ModePlain {
			cfg.EncEmit = func(o *encwire.Observation) {
				obs++
				tunneled[o.Workload] = true
			}
		}
		dir := t.TempDir()
		ingestToStore(t, dir, New(cfg))
		if mode != encwire.ModePlain {
			if obs == 0 {
				t.Fatalf("%v: no encwire observations emitted", mode)
			}
			// The C2-style channels must ride the encrypted leg too.
			if !tunneled[sie.WorkloadTunnel] || !tunneled[sie.WorkloadExfil] {
				t.Errorf("%v: tunnel/exfil workloads missing from observations: %v", mode, tunneled)
			}
		}
		results = append(results, result{mode, storeDigests(t, dir), obs})
	}
	ref := results[0]
	if len(ref.digests) == 0 {
		t.Fatal("plaintext run produced no snapshot files")
	}
	for _, res := range results[1:] {
		if len(res.digests) != len(ref.digests) {
			t.Fatalf("%v: file count %d != plaintext %d", res.mode, len(res.digests), len(ref.digests))
		}
		for rel, sum := range ref.digests {
			got, ok := res.digests[rel]
			if !ok {
				t.Errorf("%v: store missing %s", res.mode, rel)
				continue
			}
			if got != sum {
				t.Errorf("%v: %s differs from plaintext store", res.mode, rel)
			}
		}
	}
}

// TestEncLegObservations checks the client-leg stream itself: flow
// accounting, timestamps, labels and the cache-hit size replay.
func TestEncLegObservations(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run in -short mode")
	}
	cfg := encTestConfig()
	cfg.EncMode = encwire.ModeDoH
	cfg.EncPolicy = encwire.PadNone
	var obs []encwire.Observation
	cfg.EncEmit = func(o *encwire.Observation) { obs = append(obs, *o) }
	sim := New(cfg)
	stats := sim.Run(nil)

	encStats, ok := sim.EncStats()
	if !ok {
		t.Fatal("EncStats not available on an encrypted run")
	}
	if encStats.Messages != encStats.Queries+encStats.Responses {
		t.Fatalf("accounting identity broken: %+v", encStats)
	}
	if uint64(len(obs)) != encStats.Messages {
		t.Fatalf("emitted %d observations, stats count %d", len(obs), encStats.Messages)
	}
	if encStats.Flows != stats.ClientQueries {
		t.Fatalf("flows %d != client queries %d", encStats.Flows, stats.ClientQueries)
	}
	// Every client event produces at least one message; cache hits and
	// resolutions both cross the encrypted channel.
	if encStats.Queries < stats.ClientQueries {
		t.Fatalf("queries %d < client events %d", encStats.Queries, stats.ClientQueries)
	}
	end := cfg.Start.Add(time.Duration((cfg.Duration + 5) * float64(time.Second)))
	domains := 0
	for i := range obs {
		o := &obs[i]
		if o.Mode != encwire.ModeDoH {
			t.Fatalf("observation %d mode = %v", i, o.Mode)
		}
		if o.Time.Before(cfg.Start) || o.Time.After(end) {
			t.Fatalf("observation %d time %v outside run window", i, o.Time)
		}
		if o.Domain != "" {
			domains++
		}
	}
	if domains == 0 {
		t.Fatal("no observation carries a ground-truth domain")
	}
	if encStats.Handshakes == 0 || encStats.Handshakes >= encStats.Queries {
		t.Fatalf("handshakes = %d of %d queries: connection reuse not modeled", encStats.Handshakes, encStats.Queries)
	}
}

// TestEncTransportTag: encrypted runs stamp ClientTransport on every
// SIE transaction; plaintext runs leave it zero (wire-compatible).
func TestEncTransportTag(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run in -short mode")
	}
	cfg := encTestConfig()
	cfg.Duration = 5
	cfg.EncMode = encwire.ModeDoQ
	sim := New(cfg)
	n := 0
	sim.Run(func(tx *sie.Transaction) {
		n++
		if tx.ClientTransport != sie.TransportDoQ {
			t.Fatalf("transaction %d ClientTransport = %d, want %d", n, tx.ClientTransport, sie.TransportDoQ)
		}
	})
	if n == 0 {
		t.Fatal("no transactions emitted")
	}

	cfg = encTestConfig()
	cfg.Duration = 5
	sim = New(cfg)
	sim.Run(func(tx *sie.Transaction) {
		if tx.ClientTransport != sie.TransportUDP53 {
			t.Fatalf("plaintext run ClientTransport = %d", tx.ClientTransport)
		}
	})
}
