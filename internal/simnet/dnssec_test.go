package simnet

import (
	"testing"
	"time"

	"dnsobservatory/internal/dnssec"
	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/ipwire"
	"dnsobservatory/internal/sie"
)

// TestSignedResponsesValidate captures signed-zone answers off the wire
// and cryptographically validates every RRSIG against the zone DNSKEY —
// end-to-end proof that the ok_sec feature counts genuine signatures.
func TestSignedResponsesValidate(t *testing.T) {
	cfg := smallConfig()
	cfg.Duration = 30
	cfg.Mix = WorkloadMix{Forward: 1}
	cfg.HEShare = 0
	sim := New(cfg)
	// Force a popular zone signed.
	z := sim.Universe.SLDs[0]
	z.Signed = true
	z.initKey()

	now := cfg.Start.Add(15 * time.Second)
	var msg dnswire.Message
	var validated, signedSeen int
	sim.Run(func(tx *sie.Transaction) {
		if !tx.Answered() {
			return
		}
		pkt, _, err := ipwire.DecodeAny(tx.ResponsePacket)
		if err != nil {
			t.Fatal(err)
		}
		if err := msg.Unpack(pkt.Payload); err != nil {
			t.Fatal(err)
		}
		if !msg.Flags.Authoritative || len(msg.Answers) == 0 {
			return
		}
		if sim.Universe.Suffixes.ESLD(msg.Question().Name) != z.Name {
			return
		}
		// Split answers into the data RRset and its signature.
		var rrset []dnswire.RR
		var sig *dnswire.RRSIGRData
		for i := range msg.Answers {
			if rd, ok := msg.Answers[i].Data.(dnswire.RRSIGRData); ok {
				sig = &rd
			} else {
				rrset = append(rrset, msg.Answers[i])
			}
		}
		if sig == nil {
			return
		}
		signedSeen++
		if err := dnssec.Validate(rrset, *sig, z.Key.DNSKEY(), now); err != nil {
			t.Fatalf("signature on %s does not validate: %v", msg.Question().Name, err)
		}
		validated++
	})
	if signedSeen == 0 || validated != signedSeen {
		t.Fatalf("validated %d of %d signed responses", validated, signedSeen)
	}
}

// TestDSRecordsMatchZoneKeys verifies the registry-served DS digests
// against the child zone keys, and that the registry's RRSIG over the
// DS RRset validates with the registry DNSKEY.
func TestDSRecordsMatchZoneKeys(t *testing.T) {
	cfg := smallConfig()
	cfg.Duration = 40
	cfg.Mix = WorkloadMix{DS: 1}
	sim := New(cfg)
	now := cfg.Start.Add(20 * time.Second)

	var msg dnswire.Message
	var checked int
	sim.Run(func(tx *sie.Transaction) {
		if !tx.Answered() {
			return
		}
		pkt, _, err := ipwire.DecodeAny(tx.ResponsePacket)
		if err != nil {
			t.Fatal(err)
		}
		if err := msg.Unpack(pkt.Payload); err != nil {
			t.Fatal(err)
		}
		if msg.Question().Type != dnswire.TypeDS || len(msg.Answers) == 0 {
			return
		}
		zone := sim.Universe.Lookup(msg.Question().Name)
		if zone == nil || zone.Key == nil {
			return
		}
		var dsRRs []dnswire.RR
		var sig *dnswire.RRSIGRData
		for i := range msg.Answers {
			switch rd := msg.Answers[i].Data.(type) {
			case dnswire.DSRData:
				dsRRs = append(dsRRs, msg.Answers[i])
				if err := dnssec.VerifyDS(rd, zone.Name, zone.Key.DNSKEY()); err != nil {
					t.Fatalf("DS for %s: %v", zone.Name, err)
				}
			case dnswire.RRSIGRData:
				sig = &rd
			}
		}
		if sig != nil && len(dsRRs) > 0 {
			regKey := sim.registryKey(dnswire.TLD(zone.Name))
			if err := dnssec.Validate(dsRRs, *sig, regKey.DNSKEY(), now); err != nil {
				t.Fatalf("registry RRSIG over DS for %s: %v", zone.Name, err)
			}
			checked++
		}
	})
	if checked == 0 {
		t.Fatal("no signed DS responses observed")
	}
}
