package simnet

import (
	"math/rand"
	"net/netip"
	"strings"
	"testing"

	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/sie"
)

// smallConfig is a fast scenario for tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Duration = 30
	cfg.QPS = 400
	cfg.Resolvers = 40
	cfg.SLDs = 300
	cfg.Sensors = 8
	return cfg
}

func TestRunDeterministic(t *testing.T) {
	collect := func() (Stats, []string) {
		var keys []string
		var s sie.Summarizer
		var sum sie.Summary
		sim := New(smallConfig())
		st := sim.Run(func(tx *sie.Transaction) {
			if len(keys) < 500 {
				if err := s.Summarize(tx, &sum); err != nil {
					t.Fatal(err)
				}
				keys = append(keys, sum.QName+"|"+sum.Nameserver.String())
			}
		})
		return st, keys
	}
	st1, k1 := collect()
	st2, k2 := collect()
	if st1 != st2 {
		t.Errorf("stats differ: %+v vs %+v", st1, st2)
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("transaction %d differs: %q vs %q", i, k1[i], k2[i])
		}
	}
}

func TestAllTransactionsParse(t *testing.T) {
	var s sie.Summarizer
	var sum sie.Summary
	var n, answered int
	sim := New(smallConfig())
	st := sim.Run(func(tx *sie.Transaction) {
		if err := s.Summarize(tx, &sum); err != nil {
			t.Fatalf("transaction %d: %v", n, err)
		}
		n++
		if sum.Answered {
			answered++
		}
	})
	if uint64(n) != st.Transactions {
		t.Errorf("emitted %d, stats say %d", n, st.Transactions)
	}
	if n < 1000 {
		t.Fatalf("only %d transactions", n)
	}
	unansRate := 1 - float64(answered)/float64(n)
	if unansRate > 0.15 {
		t.Errorf("unanswered rate %.3f too high", unansRate)
	}
	if st.CacheHits == 0 {
		t.Error("resolver caches never hit")
	}
}

func TestCachingMakesVolumeTTLSensitive(t *testing.T) {
	// Two equally popular domains; one with a 10 s TTL, one with 3600 s.
	// The short-TTL domain must generate far more cache-miss traffic.
	cfg := smallConfig()
	cfg.Duration = 120
	cfg.Mix = WorkloadMix{Forward: 1}
	cfg.HEShare = 0
	sim := New(cfg)
	short, long := sim.Universe.SLDs[0], sim.Universe.SLDs[1]
	short.ATTL = 10
	long.ATTL = 3600
	// Equalize popularity.
	long.Weight = short.Weight
	sim.Universe.buildCum()

	counts := map[string]int{}
	var s sie.Summarizer
	var sum sie.Summary
	sim.Run(func(tx *sie.Transaction) {
		if err := s.Summarize(tx, &sum); err != nil {
			t.Fatal(err)
		}
		if sum.QType == dnswire.TypeA && sum.AA {
			counts[sim.Universe.Suffixes.ESLD(sum.QName)]++
		}
	})
	cs, cl := counts[short.Name], counts[long.Name]
	if cs < cl*2 {
		t.Errorf("short TTL domain got %d tx, long TTL %d — caching not TTL-sensitive", cs, cl)
	}
}

func TestQMinResolversMinimize(t *testing.T) {
	cfg := smallConfig()
	cfg.QMinResolvers = 5
	sim := New(cfg)
	qmin := map[netip.Addr]bool{}
	for _, r := range sim.Resolvers {
		if r.QMin {
			qmin[r.Addr] = true
		}
	}
	if len(qmin) != 5 {
		t.Fatalf("qmin resolvers = %d", len(qmin))
	}
	roots := map[netip.Addr]bool{}
	for _, s := range sim.Infra.RootServers {
		roots[s.Addr] = true
	}
	gtlds := map[netip.Addr]bool{}
	for _, s := range sim.Infra.GTLDServers {
		gtlds[s.Addr] = true
	}
	var s sie.Summarizer
	var sum sie.Summary
	var rootQ, tldQ int
	sim.Run(func(tx *sie.Transaction) {
		if err := s.Summarize(tx, &sum); err != nil {
			t.Fatal(err)
		}
		if !qmin[sum.Resolver] {
			return
		}
		if roots[sum.Nameserver] {
			rootQ++
			if sum.QDots > 1 {
				t.Errorf("qmin resolver sent %d-label %q to root", sum.QDots, sum.QName)
			}
		}
		if gtlds[sum.Nameserver] {
			tldQ++
			if sum.QDots > 2 {
				t.Errorf("qmin resolver sent %d-label %q to gTLD", sum.QDots, sum.QName)
			}
		}
	})
	if rootQ == 0 || tldQ == 0 {
		t.Errorf("qmin resolvers sent no root (%d) or TLD (%d) queries", rootQ, tldQ)
	}
}

func TestBotnetFloodsGTLDWithNXDomain(t *testing.T) {
	cfg := smallConfig()
	cfg.Mix = WorkloadMix{Botnet: 1}
	sim := New(cfg)
	gtlds := map[netip.Addr]bool{}
	for _, s := range sim.Infra.GTLDServers {
		gtlds[s.Addr] = true
	}
	var s sie.Summarizer
	var sum sie.Summary
	var toGTLD, nxd int
	sim.Run(func(tx *sie.Transaction) {
		if err := s.Summarize(tx, &sum); err != nil {
			t.Fatal(err)
		}
		if gtlds[sum.Nameserver] && sum.Answered {
			toGTLD++
			if sum.RCode == dnswire.RCodeNXDomain {
				nxd++
				if !sum.AA {
					t.Error("gTLD NXDOMAIN without AA flag")
				}
			}
		}
	})
	if toGTLD == 0 {
		t.Fatal("no gTLD transactions")
	}
	if float64(nxd)/float64(toGTLD) < 0.95 {
		t.Errorf("gTLD NXD share %.2f, want ~1 for pure DGA traffic", float64(nxd)/float64(toGTLD))
	}
}

func TestHappyEyeballsEmptyAAAA(t *testing.T) {
	cfg := smallConfig()
	cfg.Duration = 90
	cfg.Mix = WorkloadMix{Forward: 1}
	cfg.HEShare = 1
	cfg.V6ServerShare = 0
	sim := New(cfg)
	// Give domain 0 a pathological negative TTL vs its A TTL.
	d := sim.Universe.SLDs[0]
	d.ATTL = 900
	d.NegTTL = 15

	var s sie.Summarizer
	var sum sie.Summary
	var aaaaEmpty, all int
	sim.Run(func(tx *sie.Transaction) {
		if err := s.Summarize(tx, &sum); err != nil {
			t.Fatal(err)
		}
		if !sum.AA || sim.Universe.Suffixes.ESLD(sum.QName) != d.Name {
			return
		}
		all++
		if sum.QType == dnswire.TypeAAAA && sum.NoData() {
			aaaaEmpty++
			if !sum.HasSOA || sum.SOAMinimum != 15 {
				t.Errorf("negative answer SOA minimum = %d (has=%v)", sum.SOAMinimum, sum.HasSOA)
			}
		}
	})
	if all < 20 {
		t.Fatalf("only %d authoritative tx for the domain", all)
	}
	share := float64(aaaaEmpty) / float64(all)
	if share < 0.6 {
		t.Errorf("empty AAAA share %.2f, want > 0.6 for negTTL 15 vs A TTL 900", share)
	}
}

func TestV6EnableEventStopsEmptyAAAA(t *testing.T) {
	cfg := smallConfig()
	cfg.Duration = 120
	cfg.Mix = WorkloadMix{Forward: 1}
	cfg.HEShare = 1
	cfg.V6ServerShare = 0
	cfg.Events = []Event{V6EnableEvent(60, "")} // fixed below
	sim := New(cfg)
	d := sim.Universe.SLDs[0]
	d.NegTTL = 5
	sim.events[0] = V6EnableEvent(60, d.Name)

	var s sie.Summarizer
	var sum sie.Summary
	type half struct{ empty, data int }
	var h1, h2 half
	sim.Run(func(tx *sie.Transaction) {
		if err := s.Summarize(tx, &sum); err != nil {
			t.Fatal(err)
		}
		if !sum.AA || sum.QType != dnswire.TypeAAAA || sim.Universe.Suffixes.ESLD(sum.QName) != d.Name {
			return
		}
		h := &h1
		if tx.QueryTime.Sub(cfg.Start).Seconds() >= 60 {
			h = &h2
		}
		if sum.NoData() {
			h.empty++
		} else if len(sum.V6Addrs) > 0 {
			h.data++
		}
	})
	if h1.empty == 0 || h1.data != 0 {
		t.Errorf("before enablement: empty=%d data=%d", h1.empty, h1.data)
	}
	if h2.data == 0 {
		t.Errorf("after enablement: empty=%d data=%d", h2.empty, h2.data)
	}
}

func TestTTLChangeEventIncreasesTraffic(t *testing.T) {
	cfg := smallConfig()
	cfg.Duration = 360
	cfg.Mix = WorkloadMix{Forward: 1}
	cfg.HEShare = 0
	sim := New(cfg)
	d := sim.Universe.SLDs[0]
	// Old cache entries must be able to expire within the run, so start
	// from a modest TTL; the slash to 10 s then multiplies miss traffic.
	d.ATTL = 60
	sim.events = append(sim.events, TTLChangeEvent(120, d.Name, 10))

	var s sie.Summarizer
	var sum sie.Summary
	var before, after int
	sim.Run(func(tx *sie.Transaction) {
		if err := s.Summarize(tx, &sum); err != nil {
			t.Fatal(err)
		}
		if !sum.AA || sum.QType != dnswire.TypeA || sim.Universe.Suffixes.ESLD(sum.QName) != d.Name {
			return
		}
		if tx.QueryTime.Sub(cfg.Start).Seconds() < 120 {
			before++
		} else {
			after++
		}
	})
	if after < before*3 {
		t.Errorf("TTL slash: before=%d after=%d, want big increase", before, after)
	}
}

func TestRenumberEvent(t *testing.T) {
	cfg := smallConfig()
	cfg.Duration = 60
	cfg.Mix = WorkloadMix{Forward: 1}
	cfg.HEShare = 0
	sim := New(cfg)
	d := sim.Universe.SLDs[0]
	d.ATTL = 1 // keep cache misses flowing
	newBase := netip.MustParseAddr("203.0.113.10")
	sim.events = append(sim.events, RenumberEvent(30, d.Name, newBase, 38400))

	var s sie.Summarizer
	var sum sie.Summary
	sawOld, sawNew := false, false
	sim.Run(func(tx *sie.Transaction) {
		if err := s.Summarize(tx, &sum); err != nil {
			t.Fatal(err)
		}
		if !sum.AA || sum.QType != dnswire.TypeA || sim.Universe.Suffixes.ESLD(sum.QName) != d.Name {
			return
		}
		for _, a := range sum.V4Addrs {
			if strings.HasPrefix(a.String(), "203.0.113.") {
				sawNew = true
				if len(sum.AnswerTTLs) > 0 && sum.AnswerTTLs[0] != 38400 {
					t.Errorf("post-renumber TTL = %d", sum.AnswerTTLs[0])
				}
			} else {
				sawOld = true
			}
		}
	})
	if !sawOld || !sawNew {
		t.Errorf("renumbering: old=%v new=%v", sawOld, sawNew)
	}
}

func TestNonConformingTTLVaries(t *testing.T) {
	cfg := smallConfig()
	cfg.Duration = 40
	cfg.Mix = WorkloadMix{Forward: 1}
	cfg.HEShare = 0
	sim := New(cfg)
	d := sim.Universe.SLDs[0]
	d.NonConforming = true
	ttls := map[uint32]bool{}
	var s sie.Summarizer
	var sum sie.Summary
	sim.Run(func(tx *sie.Transaction) {
		if err := s.Summarize(tx, &sum); err != nil {
			t.Fatal(err)
		}
		if sum.AA && sum.QType == dnswire.TypeA && sim.Universe.Suffixes.ESLD(sum.QName) == d.Name {
			for _, ttl := range sum.AnswerTTLs {
				ttls[ttl] = true
				if ttl >= 1024 {
					t.Errorf("non-conforming TTL %d >= 1024", ttl)
				}
			}
		}
	})
	if len(ttls) < 3 {
		t.Errorf("non-conforming zone served only %d distinct TTLs", len(ttls))
	}
}

func TestOrgSharesOrdering(t *testing.T) {
	// AMAZON-hosted SLD popularity mass should exceed GODADDY's.
	sim := New(smallConfig())
	mass := map[string]float64{}
	for _, d := range sim.Universe.SLDs {
		mass[d.Org.Name] += d.Weight
	}
	if mass["AMAZON"] <= mass["GODADDY"] {
		t.Errorf("AMAZON mass %.2f <= GODADDY %.2f", mass["AMAZON"], mass["GODADDY"])
	}
}

func TestInfraShape(t *testing.T) {
	sim := New(smallConfig())
	if len(sim.Infra.RootServers) != 13 || len(sim.Infra.GTLDServers) != 13 {
		t.Fatalf("root=%d gtld=%d", len(sim.Infra.RootServers), len(sim.Infra.GTLDServers))
	}
	// Every nameserver resolves to an ASN.
	for _, d := range sim.Universe.SLDs[:50] {
		for _, ns := range d.NS {
			if _, ok := sim.Infra.Routing.Lookup(ns.Addr); !ok {
				t.Errorf("server %v not in routing table", ns.Addr)
			}
		}
	}
	// Fast letters of Fig. 3c: E, F, L among the quickest roots.
	e := sim.Infra.RootServers[4].BaseDelayMs
	g := sim.Infra.RootServers[6].BaseDelayMs
	if e >= g {
		t.Errorf("root E (%.1f ms) not faster than G (%.1f ms)", e, g)
	}
}

func TestSampleCum(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cum := cumWeights(3, func(i int) float64 { return []float64{1, 0, 9}[i] })
	counts := [3]int{}
	for i := 0; i < 10000; i++ {
		counts[sampleCum(rng, cum)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index drawn %d times", counts[1])
	}
	if counts[2] < counts[0]*5 {
		t.Errorf("weights not respected: %v", counts)
	}
	if sampleCum(rng, nil) != -1 {
		t.Error("empty cum should return -1")
	}
}

func TestPublicSuffixAwareSLDNames(t *testing.T) {
	sim := New(smallConfig())
	for _, d := range sim.Universe.SLDs[:100] {
		esld := sim.Universe.Suffixes.ESLD(d.Name)
		if esld != d.Name {
			t.Errorf("SLD %q has eSLD %q", d.Name, esld)
		}
	}
}
