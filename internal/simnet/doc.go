// Package simnet synthesizes the Internet that DNS Observatory watches:
// a domain universe with Zipf popularity, an authoritative nameserver
// population owned by realistic organizations (with per-org delay, hop
// and anycast profiles), recursive resolvers with RFC 2308 caches,
// Happy-Eyeballs clients, a DGA botnet, PRSD attacks, and scheduled
// infrastructure events (TTL changes, renumbering, IPv6 enablement).
//
// It replaces the paper's proprietary Farsight SIE feed: the output is
// the same stream of cache-miss resolver↔nameserver transactions, as
// raw IP/UDP/DNS packets with timestamps, so every downstream Observatory
// code path runs unchanged (see DESIGN.md, "Substitutions").
//
// Concurrency: a simulation is single-owner and deterministic — one
// seeded random source drives every decision, so a (Config, Seed) pair
// always emits the same stream. Run one simulation per goroutine; the
// callback it invokes runs on that same goroutine.
package simnet
