package simnet

import "dnsobservatory/internal/encwire"

// The encrypted client→resolver leg. When Config.EncMode is set, every
// client dispatch opens an encwire flow and every client-visible
// resolution (cache hit or full walk) becomes one query/response
// message pair on it, so the run emits two synchronized streams: the
// plaintext resolver↔authoritative SIE transactions the Observatory
// aggregates, and the encrypted client-leg size/timing observations a
// passive on-path observer would see.
//
// Determinism contract: the encwire layer draws only from its own RNG
// (seeded below with a salted copy of the scenario seed), and these
// hooks never touch s.rng, resolver caches or response builders — so
// enabling encryption cannot change a single byte of the SIE stream.
// TestEncModesGoldenStore pins that down.

// encSeedSalt decorrelates the layer RNG from the scenario RNG without
// asking scenarios for a second seed.
const encSeedSalt = 0x5e77a1de5c0ffee5

type encLeg struct {
	layer *encwire.Layer
	// flow is the scratch Flow the dispatch loop reuses via BeginFlow:
	// one flow per client event, never two live at once.
	flow encwire.Flow
	// resp remembers, per resolver cache key, the client-visible
	// response size of the last successful resolution, so cache-hit
	// responses are replayed at their true size.
	resp map[string]int
}

// newEncLeg builds the layer for cfg (cfg.EncMode != ModePlain).
func newEncLeg(cfg Config) *encLeg {
	return &encLeg{
		layer: encwire.NewLayer(encwire.Config{
			Mode:   cfg.EncMode,
			Policy: cfg.EncPolicy,
			Block:  cfg.EncBlock,
			Seed:   cfg.Seed ^ encSeedSalt,
			Start:  cfg.Start,
			Emit:   cfg.EncEmit,
		}),
		resp: make(map[string]int),
	}
}

// EncStats returns the encrypted-leg counters; ok is false when the
// scenario runs plaintext.
func (s *Sim) EncStats() (encwire.Stats, bool) {
	if s.enc == nil {
		return encwire.Stats{}, false
	}
	return s.enc.layer.Stats(), true
}

// clientQueryLen models the DNS message size of the stub client's
// query: header, question, and the EDNS0 OPT record stub resolvers
// attach (padding, when configured, is added by the encwire policy).
func clientQueryLen(qname string) int {
	return 12 + len(qname) + 1 + 4 + 11
}

// encCacheHit records the client exchange for a resolution served from
// the resolver cache: no upstream delay, response size replayed from
// the last real resolution of the same key.
func (s *Sim) encCacheHit(key, qname, dom string, t float64) {
	if s.enc == nil || s.encFlow == nil {
		return
	}
	qlen := clientQueryLen(qname)
	rlen := s.enc.resp[key]
	if rlen == 0 {
		// The key was cached by a resolution whose final transaction was
		// dropped; approximate a small positive answer.
		rlen = qlen + 48
	}
	s.encFlow.Message(t, dom, qlen, rlen, 0)
}

// encResolved records the client exchange for a full resolution: the
// query went out at t, the resolver answered after done-t seconds with
// the response transact packed last (s.lastRespLen; 0 means the
// upstream dropped it and the client saw a timeout, observed as a
// query-only message).
func (s *Sim) encResolved(key, qname, dom string, t, done float64) {
	if s.enc == nil || s.encFlow == nil {
		return
	}
	qlen := clientQueryLen(qname)
	rlen := s.lastRespLen
	if rlen > 0 {
		s.enc.resp[key] = rlen
	}
	delayMs := (done - t) * 1000
	if delayMs < 0 {
		delayMs = 0
	}
	s.encFlow.Message(t, dom, qlen, rlen, delayMs)
}
