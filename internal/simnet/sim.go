package simnet

import (
	"crypto/sha256"
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"dnsobservatory/internal/dnssec"
	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/encwire"
	"dnsobservatory/internal/ipwire"
	"dnsobservatory/internal/sie"
)

// WorkloadMix weights the client-side query classes. Values are relative
// weights, not required to sum to 1.
type WorkloadMix struct {
	Forward float64 // web lookups: A, plus AAAA from Happy Eyeballs clients
	Botnet  float64 // Mylobot-style DGA: unique <rand>.com A queries
	PRSD    float64 // pseudo-random subdomain attack: NS/<rand>.victim
	Junk    float64 // queries for nonexistent TLDs (root NXDOMAIN)
	PTR     float64 // reverse DNS
	TXT     float64 // anti-virus style TXT protocols (deep names, TTL 5)
	MX      float64
	SRV     float64
	CNAME   float64
	SOA     float64
	DS      float64
	NS      float64 // legitimate NS queries
	Rare    float64 // one-off lookups of never-seen domains on fresh servers
	Exfil   float64 // low-and-slow data exfiltration: high-entropy subdomains, tiny volume
}

// DefaultMix approximates the QTYPE shares of Table 2 after caching.
func DefaultMix() WorkloadMix {
	return WorkloadMix{
		Forward: 0.600,
		Botnet:  0.015,
		PRSD:    0.018,
		Junk:    0.030,
		PTR:     0.065,
		TXT:     0.014,
		MX:      0.012,
		SRV:     0.011,
		CNAME:   0.010,
		SOA:     0.005,
		DS:      0.005,
		NS:      0.006,
		Rare:    0.004,
	}
}

// Event is a scheduled infrastructure change.
type Event struct {
	At    float64 // seconds from simulation start
	Apply func(*Sim)
}

// Config parameterizes a simulation.
type Config struct {
	Seed     int64
	Start    time.Time
	Duration float64 // simulated seconds
	QPS      float64 // client query events per second (pre-cache)

	Resolvers     int
	Sensors       int
	QMinResolvers int

	SLDs          int
	ServerScale   float64 // scales per-org nameserver counts
	V6ServerShare float64 // share of SLDs serving AAAA
	HEShare       float64 // share of forward lookups from dual-stack (Happy Eyeballs) clients

	Mix    WorkloadMix
	Events []Event

	// UnansweredBase is the per-transaction drop probability for healthy
	// servers; impaired servers use 15x this.
	UnansweredBase float64

	// ColdCaches starts every resolver empty. By default caches are
	// prewarmed with TLD and SLD delegations carrying uniformly random
	// residual lifetimes — production resolvers have been up for weeks,
	// and a cold start floods the TLD infrastructure with one-off
	// delegation fetches that the paper's steady-state feed never shows.
	ColdCaches bool

	// DelegCacheSec is how long a resolver effectively retains an SLD
	// delegation. Real NS TTLs are 172800 s, but production caches evict
	// under memory pressure long before that; this knob sets the
	// effective residency and thereby the gTLD refresh-traffic share
	// (the paper observes gTLDs at 9.6 % of transactions, 26.4 % NXD).
	DelegCacheSec uint32

	// EncMode, when not ModePlain, models the client→resolver leg over
	// an encrypted transport: every client dispatch additionally emits
	// encwire observations (sizes and timing of the encrypted channel)
	// through EncEmit. The resolver↔authoritative SIE stream is
	// byte-identical with or without it — the encwire layer has its own
	// RNG and never touches resolver state (see enc.go).
	EncMode   encwire.Mode
	EncPolicy encwire.Policy
	EncBlock  int // PadBlock block size; encwire.DefaultBlock when 0

	// EncEmit receives every client-leg observation. The pointer is a
	// scratch value valid only during the call. nil keeps the layer's
	// counters without emitting.
	EncEmit func(*encwire.Observation)
}

// DefaultConfig is a laptop-scale scenario that preserves the paper's
// distributional shapes.
func DefaultConfig() Config {
	return Config{
		Seed:           1,
		Start:          time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC),
		Duration:       600,
		QPS:            2000,
		Resolvers:      200,
		Sensors:        40,
		QMinResolvers:  3,
		SLDs:           4000,
		ServerScale:    0.02,
		V6ServerShare:  0.30,
		HEShare:        0.35,
		Mix:            DefaultMix(),
		UnansweredBase: 0.01,
		DelegCacheSec:  1800,
	}
}

// Stats summarizes a run.
type Stats struct {
	ClientQueries uint64 // client-side events
	CacheHits     uint64 // answered from resolver caches (no transaction)
	Transactions  uint64 // emitted resolver↔nameserver transactions
	Truncated     uint64 // oversize responses truncated over UDP
	TCPRetries    uint64 // TCP/53 retries following truncation
}

// Sim is an instantiated scenario. Create with New, run with Run.
type Sim struct {
	cfg        Config
	rng        *rand.Rand
	Infra      *Infra
	Universe   *Universe
	Resolvers  []*Resolver
	AVZones    []*SLD // anti-virus TXT domains
	ExfilZones []*SLD // exfiltration drop zones (built only when Mix.Exfil > 0)

	mixCum []float64
	mixFns []func(*Sim, *Resolver, float64)
	// mixLabels maps each workload class index to its sie.Workload* tag;
	// curLabel is the tag of the generator currently dispatching. Every
	// transaction emitted during the dispatch — including the hierarchy
	// walk it causes — carries it as ground truth for detection scoring.
	mixLabels []uint32
	curLabel  uint32
	events    []Event
	nextEvt   int

	emit  func(*sie.Transaction)
	stats Stats

	// prsdTargets, when set by PRSDTargetEvent, focus attack traffic.
	prsdTargets []*SLD
	// rareMinted counts the ephemeral domains created by doRare.
	rareMinted int
	// registryKeys holds per-TLD registry signing keys (DS RRsets are
	// signed by the parent zone).
	registryKeys map[string]*dnssec.Key

	// Scratch buffers reused across transactions; emitted transactions
	// are valid only during the emit callback.
	qbuf, rbuf  []byte
	pbuf, pbuf2 []byte
	tx          sie.Transaction

	// Encrypted client-leg state (nil/zero for plaintext scenarios).
	// encFlow is the flow of the client dispatch currently running;
	// lastRespLen is the DNS size of the response the most recent
	// transact packed (0 when it was dropped), which is what the
	// resolver forwards to the client.
	enc          *encLeg
	encFlow      *encwire.Flow
	lastRespLen  int
	transportTag uint32
}

// New instantiates the scenario.
func New(cfg Config) *Sim {
	if cfg.QPS <= 0 || cfg.Resolvers <= 0 || cfg.SLDs <= 0 {
		panic("simnet: QPS, Resolvers and SLDs must be positive")
	}
	if cfg.ServerScale <= 0 {
		cfg.ServerScale = 0.02
	}
	if cfg.Sensors <= 0 {
		cfg.Sensors = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Sim{cfg: cfg, rng: rng}
	s.Infra = newInfra(rng, cfg.ServerScale)
	s.Universe = newUniverse(rng, s.Infra, cfg.SLDs, cfg.ServerScale, cfg.V6ServerShare)
	s.Resolvers = newResolverPool(rng, cfg.Resolvers, cfg.Sensors, cfg.QMinResolvers)
	s.buildAVZones()
	if cfg.Mix.Exfil > 0 {
		// Minted only when the class is active, so default scenarios
		// consume the identical rng stream they always have.
		s.buildExfilZones()
	}

	// Exfil rides at the end of the class tables: a zero weight adds a
	// zero-width interval that sampleCum never selects, so existing
	// scenarios keep their exact dispatch sequence.
	mix := cfg.Mix
	weights := []float64{mix.Forward, mix.Botnet, mix.PRSD, mix.Junk, mix.PTR,
		mix.TXT, mix.MX, mix.SRV, mix.CNAME, mix.SOA, mix.DS, mix.NS, mix.Rare,
		mix.Exfil}
	s.mixFns = []func(*Sim, *Resolver, float64){
		(*Sim).doForward, (*Sim).doBotnet, (*Sim).doPRSD, (*Sim).doJunk, (*Sim).doPTR,
		(*Sim).doTXT, (*Sim).doMX, (*Sim).doSRV, (*Sim).doCNAME, (*Sim).doSOA,
		(*Sim).doDS, (*Sim).doNS, (*Sim).doRare, (*Sim).doExfil,
	}
	s.mixCum = cumWeights(len(weights), func(i int) float64 { return weights[i] })
	s.mixLabels = []uint32{
		sie.WorkloadUnlabeled, sie.WorkloadDGA, sie.WorkloadPRSD, sie.WorkloadUnlabeled,
		sie.WorkloadUnlabeled, sie.WorkloadTunnel, sie.WorkloadUnlabeled, sie.WorkloadUnlabeled,
		sie.WorkloadUnlabeled, sie.WorkloadUnlabeled, sie.WorkloadUnlabeled, sie.WorkloadUnlabeled,
		sie.WorkloadUnlabeled, sie.WorkloadExfil,
	}
	s.events = append(s.events, cfg.Events...)
	sort.SliceStable(s.events, func(i, j int) bool { return s.events[i].At < s.events[j].At })
	if cfg.EncMode != encwire.ModePlain {
		s.enc = newEncLeg(cfg)
		s.transportTag = uint32(cfg.EncMode)
	}
	if !cfg.ColdCaches {
		s.prewarm()
	}
	return s
}

// prewarm seeds every resolver's delegation cache with residual
// lifetimes drawn uniformly over the delegation TTL, so refresh traffic
// is steady from the first simulated second.
func (s *Sim) prewarm() {
	const delegTTL = 172800
	tldSet := map[string]bool{}
	for _, t := range tldWeights {
		// ensureTLD keys on the last label ("uk." for co.uk zones).
		tldSet[dnswire.TLD(t.suffix)] = true
	}
	for _, z := range s.Universe.PTRZones {
		tldSet[dnswire.TLD(z.Name)] = true
	}
	tlds := make([]string, 0, len(tldSet))
	for t := range tldSet {
		tlds = append(tlds, t)
	}
	sort.Strings(tlds) // deterministic rng consumption
	for _, r := range s.Resolvers {
		for _, t := range tlds {
			r.store("d|"+t, uint32(1+s.rng.Intn(delegTTL)), 0, false)
		}
		sldTTL := int(s.delegCacheSec())
		for _, z := range s.Universe.SLDs {
			r.store("d|"+z.Name, uint32(1+s.rng.Intn(sldTTL)), 0, false)
		}
		for _, z := range s.Universe.PTRZones {
			r.store("d|"+z.Name, uint32(1+s.rng.Intn(sldTTL)), 0, false)
		}
		for _, z := range s.AVZones {
			r.store("d|"+z.Name, uint32(1+s.rng.Intn(sldTTL)), 0, false)
		}
		for _, z := range s.ExfilZones {
			r.store("d|"+z.Name, uint32(1+s.rng.Intn(sldTTL)), 0, false)
		}
	}
}

// buildAVZones mints the anti-virus TXT service domains: distant servers
// (hops ~10), TTL 5, deep unique query names.
func (s *Sim) buildAVZones() {
	for i := 0; i < 4; i++ {
		org := s.Infra.Tail[(37+i*11)%len(s.Infra.Tail)]
		srv := s.Infra.NewServer(org, 100+i)
		srv.BaseDelayMs = 38 + s.rng.Float64()*8
		srv.Hops = 10
		z := &SLD{
			Name:    fmt.Sprintf("avcheck%d.com.", i),
			Org:     org,
			Weight:  1,
			ATTL:    5,
			NSTTL:   86400,
			NegTTL:  5,
			NS:      []*Server{srv},
			NSNames: []string{fmt.Sprintf("ns1.avcheck%d.com.", i)},
		}
		s.AVZones = append(s.AVZones, z)
		s.Universe.byName[z.Name] = z
	}
}

// buildExfilZones mints the exfiltration drop zone: one innocuous-named
// eSLD on a distant tail server. The zone answers A for any subdomain,
// so the channel looks like an ordinary CDN edge — only the qname
// entropy gives it away.
func (s *Sim) buildExfilZones() {
	org := s.Infra.Tail[53%len(s.Infra.Tail)]
	srv := s.Infra.NewServer(org, 200)
	srv.BaseDelayMs = 55 + s.rng.Float64()*10
	srv.Hops = 12
	z := &SLD{
		Name:    "cdn-sync-edge.net.",
		Org:     org,
		Weight:  1,
		ATTL:    30,
		NSTTL:   86400,
		NegTTL:  5,
		NS:      []*Server{srv},
		NSNames: []string{"ns1.cdn-sync-edge.net."},
		V4Base:  netip.AddrFrom4([4]byte{198, 51, 100, 7}),
		V6Base:  netip.MustParseAddr("2001:db8:eeee::1"),
	}
	s.ExfilZones = append(s.ExfilZones, z)
	s.Universe.byName[z.Name] = z
}

// Schedule adds an event to an instantiated scenario. It must be called
// before Run.
func (s *Sim) Schedule(ev Event) {
	s.events = append(s.events, ev)
	sort.SliceStable(s.events, func(i, j int) bool { return s.events[i].At < s.events[j].At })
}

// Run generates cfg.Duration seconds of traffic, invoking emit for every
// transaction. The *sie.Transaction (and its packet slices) is reused:
// consume it synchronously.
func (s *Sim) Run(emit func(*sie.Transaction)) Stats {
	s.emit = emit
	var carry float64
	gcAt := 3600.0
	for sec := 0.0; sec < s.cfg.Duration; sec++ {
		for s.nextEvt < len(s.events) && s.events[s.nextEvt].At <= sec {
			s.events[s.nextEvt].Apply(s)
			s.nextEvt++
		}
		carry += s.cfg.QPS
		n := int(carry)
		carry -= float64(n)
		// Sorted event offsets keep transaction times roughly monotone.
		offs := make([]float64, n)
		for i := range offs {
			offs[i] = s.rng.Float64()
		}
		sort.Float64s(offs)
		for _, off := range offs {
			s.stats.ClientQueries++
			t := sec + off
			ri := s.rng.Intn(len(s.Resolvers))
			r := s.Resolvers[ri]
			cls := sampleCum(s.rng, s.mixCum)
			s.curLabel = s.mixLabels[cls]
			if s.enc != nil {
				s.enc.layer.BeginFlow(&s.enc.flow, t, uint32(ri), s.curLabel)
				s.encFlow = &s.enc.flow
				s.lastRespLen = 0
			}
			s.mixFns[cls](s, r, t)
		}
		if sec >= gcAt {
			for _, r := range s.Resolvers {
				r.gc(sec)
			}
			gcAt += 3600
		}
	}
	return s.stats
}

// Stats returns the running statistics.
func (s *Sim) Stats() Stats { return s.stats }

// ---- workload classes ----

func (s *Sim) doForward(r *Resolver, t float64) {
	sld := s.Universe.PickSLD()
	f := sld.PickFQDN(s.rng)
	t = s.lookup(r, t, f.Name, dnswire.TypeA, sld, f, true)
	if s.rng.Float64() < s.cfg.HEShare {
		// Happy Eyeballs: the dual-stack client asks for AAAA as well.
		s.lookup(r, t+0.001, f.Name, dnswire.TypeAAAA, sld, f, true)
	}
}

func (s *Sim) doBotnet(r *Resolver, t float64) {
	// DGA: unique SLD under .com; NXDOMAIN at the gTLD servers.
	name := fmt.Sprintf("%s.com.", s.randLabel(14))
	s.lookup(r, t, name, dnswire.TypeA, nil, nil, false)
}

func (s *Sim) doPRSD(r *Resolver, t float64) {
	// Random-subdomain attack against a popular (often signed) SLD.
	var sld *SLD
	if len(s.prsdTargets) > 0 {
		sld = s.prsdTargets[s.rng.Intn(len(s.prsdTargets))]
	} else {
		sld = s.Universe.PickSLD()
	}
	name := s.randLabel(10) + "." + sld.Name
	s.lookup(r, t, name, dnswire.TypeNS, sld, nil, false)
}

func (s *Sim) doJunk(r *Resolver, t float64) {
	// Nonexistent TLD: chromium-style probes and leaked local names.
	junk := []string{"local.", "lan.", "home.", "corp.", "internal.", s.randLabel(8) + "."}
	name := junk[s.rng.Intn(len(junk))]
	if s.rng.Float64() < 0.5 {
		name = s.randLabel(6) + "." + name
	}
	s.lookupJunk(r, t, name, dnswire.TypeA)
}

func (s *Sim) doPTR(r *Resolver, t float64) {
	if s.Universe.ptrCum == nil {
		s.Universe.ptrCum = cumWeights(len(s.Universe.PTRZones),
			func(i int) float64 { return s.Universe.PTRZones[i].Weight })
	}
	z := s.Universe.PTRZones[sampleCum(s.rng, s.Universe.ptrCum)]
	// x.y.<zone>: two host octet labels, 6 labels total.
	name := fmt.Sprintf("%d.%d.%s", s.rng.Intn(256), s.rng.Intn(256), z.Name)
	exists := s.rng.Float64() < 0.56
	var f *FQDN
	if exists {
		f = &FQDN{Name: name, SLD: z, V6Override: 0}
	}
	s.lookup(r, t, name, dnswire.TypePTR, z, f, exists)
}

func (s *Sim) doTXT(r *Resolver, t float64) {
	z := s.AVZones[s.rng.Intn(len(s.AVZones))]
	// Deep, mostly unique names: hash-chunk labels (custom protocol).
	name := fmt.Sprintf("%s.%s.%s.%s", s.randLabel(8), s.randLabel(8), s.randLabel(4), z.Name)
	f := &FQDN{Name: name, SLD: z, V6Override: 0}
	s.lookup(r, t, name, dnswire.TypeTXT, z, f, true)
}

func (s *Sim) doMX(r *Resolver, t float64) {
	sld := s.Universe.PickSLD()
	s.lookup(r, t, sld.Name, dnswire.TypeMX, sld, sld.FQDNs[len(sld.FQDNs)-1], true)
}

func (s *Sim) doSRV(r *Resolver, t float64) {
	sld := s.Universe.PickSLD()
	svc := []string{"_sip._udp.", "_ldap._tcp.", "_xmpp-client._tcp.", "_autodiscover._tcp."}
	name := svc[s.rng.Intn(len(svc))] + sld.Name
	exists := s.rng.Float64() < 0.25
	var f *FQDN
	if exists {
		f = &FQDN{Name: name, SLD: sld, V6Override: 0}
	}
	s.lookup(r, t, name, dnswire.TypeSRV, sld, f, exists)
}

func (s *Sim) doCNAME(r *Resolver, t float64) {
	sld := s.Universe.PickSLD()
	exists := s.rng.Float64() < 0.35
	var name string
	var f *FQDN
	if exists {
		f = sld.PickFQDN(s.rng)
		name = f.Name
	} else {
		name = s.randLabel(8) + "." + sld.Name
	}
	s.lookup(r, t, name, dnswire.TypeCNAME, sld, f, exists)
}

func (s *Sim) doSOA(r *Resolver, t float64) {
	sld := s.Universe.PickSLD()
	exists := s.rng.Float64() < 0.5
	name := sld.Name
	if !exists {
		name = s.randLabel(6) + "." + sld.Name
	}
	var f *FQDN
	if exists {
		f = sld.FQDNs[len(sld.FQDNs)-1]
	}
	s.lookup(r, t, name, dnswire.TypeSOA, sld, f, exists)
}

func (s *Sim) doNS(r *Resolver, t float64) {
	sld := s.Universe.PickSLD()
	s.lookup(r, t, sld.Name, dnswire.TypeNS, sld, sld.FQDNs[len(sld.FQDNs)-1], true)
}

// doRare looks up a never-before-seen domain hosted on freshly minted
// tail servers — the long tail of 1.5 M nameserver IPs the paper keeps
// discovering for days (Fig. 5) and the sparse /24 population of Fig. 6.
func (s *Sim) doRare(r *Resolver, t float64) {
	u := s.Universe
	i := len(u.SLDs) + s.rareMinted
	s.rareMinted++
	// Cycle through the tail orgs so successive mints within one org get
	// consecutive allocation indices — that is what clusters some rare
	// servers into shared /24s (Fig. 6's 2- and 3-address prefixes).
	orgIdx := s.rareMinted % len(s.Infra.Tail)
	org := s.Infra.Tail[orgIdx]
	srv := s.Infra.NewServer(org, 1000+s.rareMinted/len(s.Infra.Tail))
	name := fmt.Sprintf("%s%d.%s.", s.randLabel(7), i, u.pickTLD())
	z := &SLD{
		Name:    name,
		Org:     org,
		ATTL:    3600,
		NSTTL:   86400,
		NegTTL:  3600,
		Serial:  1,
		NS:      []*Server{srv},
		NSNames: []string{"ns1." + name},
		V4Base:  netip.AddrFrom4([4]byte{203, byte(i / 250 % 250), byte(i % 250), 10}),
		V6Base:  netip.MustParseAddr("2001:db8:ffff::1"),
	}
	z.FQDNs = []*FQDN{{Name: "www." + name, SLD: z, Weight: 1, V6Override: 0}}
	z.buildCum()
	u.byName[name] = z
	s.lookup(r, t, z.FQDNs[0].Name, dnswire.TypeA, z, z.FQDNs[0], true)
}

// doExfil is the low-and-slow exfiltration channel: a handful of
// queries per second, each carrying ~60 characters of encoded payload
// across three subdomain labels of the drop zone. Names never repeat,
// so resolver caches never absorb them, but the volume stays far below
// any volume-ranked top-k cutoff — the workload information-content
// ranking exists to catch.
func (s *Sim) doExfil(r *Resolver, t float64) {
	z := s.ExfilZones[s.rng.Intn(len(s.ExfilZones))]
	name := fmt.Sprintf("%s.%s.%s.%s", s.randHexLabel(24), s.randHexLabel(24), s.randHexLabel(12), z.Name)
	f := &FQDN{Name: name, SLD: z, V6Override: 0}
	s.lookup(r, t, name, dnswire.TypeA, z, f, true)
}

func (s *Sim) doDS(r *Resolver, t float64) {
	// DS lives in the parent zone: the TLD registry answers.
	sld := s.Universe.PickSLD()
	t0 := t
	t = s.ensureTLD(r, t, sld.Name, dnswire.TypeDS)
	key := "q|" + sld.Name + "|DS"
	if hit, _ := r.cached(key, t); hit {
		s.stats.CacheHits++
		s.encCacheHit(key, sld.Name, sld.Name, t0)
		return
	}
	srv := s.tldServerFor(sld.Name)
	resp := s.newResponse(sld.Name, dnswire.TypeDS)
	resp.Flags.Authoritative = true
	if sld.Signed {
		ds, err := sld.Key.DS()
		if err != nil {
			panic(err)
		}
		resp.Answers = append(resp.Answers, dnswire.RR{
			Name: sld.Name, Type: dnswire.TypeDS, Class: dnswire.ClassINET, TTL: 86400,
			Data: ds,
		})
		// The parent (registry) zone signs the DS RRset.
		s.signWith(s.registryKey(dnswire.TLD(sld.Name)), resp, sld.Name, dnswire.TypeDS, 86400, sld.Serial)
	} else {
		s.addSOA(resp, dnswire.TLD(sld.Name), 900, 86400)
	}
	r.store(key, 86400, t, !sld.Signed)
	done := s.transact(r, srv, t, sld.Name, dnswire.TypeDS, resp, true)
	s.encResolved(key, sld.Name, sld.Name, t0, done)
}

// ---- resolution walk ----

// lookup resolves qname/qtype at resolver r starting at time t. zone is
// the authoritative zone (nil only for the botnet path, which dies at
// the TLD); f is the existing FQDN (nil when the name does not exist).
// Returns the time after resolution completes.
func (s *Sim) lookup(r *Resolver, t float64, qname string, qtype dnswire.Type, zone *SLD, f *FQDN, exists bool) float64 {
	key := "q|" + qname + "|" + qtype.String()
	dom := ""
	if zone != nil {
		dom = zone.Name
	}
	if hit, _ := r.cached(key, t); hit {
		s.stats.CacheHits++
		s.encCacheHit(key, qname, dom, t)
		return t
	}
	t0 := t
	t = s.ensureTLD(r, t, qname, qtype)
	t = s.ensureSLD(r, t, qname, qtype, zone)
	if zone == nil {
		// Botnet DGA: the gTLD returned NXDOMAIN; resolution ends there.
		s.encResolved(key, qname, dom, t0, t)
		return t
	}
	// Authoritative query.
	srv := s.pickByRTT(zone.NS)
	resp := s.newResponse(qname, qtype)
	resp.Flags.Authoritative = true
	var ttl uint32
	switch {
	case !exists || f == nil:
		resp.Flags.RCode = dnswire.RCodeNXDomain
		s.addSOA(resp, zone.Name, zone.NegTTL, zone.Serial)
		if zone.Signed {
			nsec := s.nsec(zone)
			sig := s.denialSig(zone, nsec)
			resp.Authority = append(resp.Authority, nsec, sig)
		}
		r.store(key, zone.NegTTL, t, true)
	default:
		ttl = s.answerTTL(zone)
		built := s.buildAnswer(resp, zone, f, qname, qtype, ttl)
		if !built {
			// NODATA: name exists, type does not (e.g. AAAA on v4-only).
			s.addSOA(resp, zone.Name, zone.NegTTL, zone.Serial)
			r.store(key, zone.NegTTL, t, true)
		} else {
			if zone.Signed {
				s.signAnswer(zone, resp, qname, qtype, ttl)
			}
			r.store(key, ttl, t, false)
		}
	}
	// Occasional server-side failure overrides the payload.
	if s.rng.Float64() < s.failShare(qtype) {
		resp.Answers, resp.Authority, resp.Additional = nil, nil, nil
		if s.rng.Float64() < 0.5 {
			resp.Flags.RCode = dnswire.RCodeServFail
		} else {
			resp.Flags.RCode = dnswire.RCodeRefused
		}
		delete(r.cache, key)
	}
	done := s.transact(r, srv, t, qname, qtype, resp, true)
	s.encResolved(key, qname, dom, t0, done)
	return done
}

// lookupJunk sends a query for a nonexistent TLD to a root server.
func (s *Sim) lookupJunk(r *Resolver, t float64, qname string, qtype dnswire.Type) {
	key := "q|" + qname + "|" + qtype.String()
	if hit, _ := r.cached(key, t); hit {
		s.stats.CacheHits++
		s.encCacheHit(key, qname, "", t)
		return
	}
	root := s.pickByRTT(s.Infra.RootServers)
	sent := qname
	if r.QMin {
		sent = dnswire.TLD(qname)
	}
	resp := s.newResponse(sent, qtype)
	resp.Flags.Authoritative = true
	resp.Flags.RCode = dnswire.RCodeNXDomain
	s.addSOA(resp, ".", 86400, 2019010100)
	r.store(key, 3600, t, true)
	done := s.transact(r, root, t, sent, qtype, resp, true)
	s.encResolved(key, qname, "", t, done)
}

// delegCacheSec returns the effective SLD-delegation cache residency.
func (s *Sim) delegCacheSec() uint32 {
	if s.cfg.DelegCacheSec > 0 {
		return s.cfg.DelegCacheSec
	}
	return 7200
}

// ensureTLD walks to a root server if the TLD delegation is not cached.
func (s *Sim) ensureTLD(r *Resolver, t float64, qname string, qtype dnswire.Type) float64 {
	tld := dnswire.TLD(qname)
	key := "d|" + tld
	if hit, _ := r.cached(key, t); hit {
		return t
	}
	root := s.pickByRTT(s.Infra.RootServers)
	sent, sentType := qname, qtype
	if r.QMin {
		sent, sentType = tld, dnswire.TypeNS
	}
	resp := s.newResponse(sent, sentType)
	// Referral: NS records for the TLD in AUTHORITY, glue in ADDITIONAL.
	for i := 0; i < 4; i++ {
		resp.Authority = append(resp.Authority, dnswire.RR{
			Name: tld, Type: dnswire.TypeNS, Class: dnswire.ClassINET, TTL: 172800,
			Data: dnswire.NSRData{NS: fmt.Sprintf("%c.nic.%s", 'a'+i, tld)},
		})
		resp.Additional = append(resp.Additional, dnswire.RR{
			Name: fmt.Sprintf("%c.nic.%s", 'a'+i, tld), Type: dnswire.TypeA,
			Class: dnswire.ClassINET, TTL: 172800,
			Data: dnswire.ARData{Addr: netip.AddrFrom4([4]byte{192, 41, byte(i), 30})},
		})
	}
	r.store(key, 172800, t, false)
	return s.transact(r, root, t, sent, sentType, resp, true)
}

// ensureSLD walks to the TLD server if the SLD delegation is not cached;
// for nonexistent SLDs (zone == nil) the TLD answers NXDOMAIN and the
// walk ends.
func (s *Sim) ensureSLD(r *Resolver, t float64, qname string, qtype dnswire.Type, zone *SLD) float64 {
	var sldName string
	if zone != nil {
		sldName = zone.Name
	} else {
		sldName = s.Universe.Suffixes.ESLD(qname)
	}
	key := "d|" + sldName
	if hit, neg := r.cached(key, t); hit {
		if neg && zone == nil {
			s.stats.CacheHits++
		}
		return t
	}
	srv := s.tldServerFor(sldName)
	sent, sentType := qname, qtype
	if r.QMin {
		// A minimizing resolver reveals at most one label below the
		// suffix the server is authoritative for; deep zones (reverse
		// DNS) are approached three labels at a time in our two-level
		// delegation model, matching the paper's lenient 3-label bound.
		sent, sentType = dnswire.LastLabels(sldName, 3), dnswire.TypeNS
	}
	resp := s.newResponse(sent, sentType)
	if zone == nil {
		resp.Flags.Authoritative = true
		resp.Flags.RCode = dnswire.RCodeNXDomain
		s.addSOA(resp, dnswire.TLD(qname), 900, 1)
		r.store(key, 900, t, true)
		return s.transact(r, srv, t, sent, sentType, resp, true)
	}
	for i, nsName := range zone.NSNames {
		resp.Authority = append(resp.Authority, dnswire.RR{
			Name: zone.Name, Type: dnswire.TypeNS, Class: dnswire.ClassINET, TTL: 172800,
			Data: dnswire.NSRData{NS: nsName},
		})
		resp.Additional = append(resp.Additional, dnswire.RR{
			Name: nsName, Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: 172800,
			Data: dnswire.ARData{Addr: zone.NS[i].Addr},
		})
	}
	r.store(key, s.delegCacheSec(), t, false)
	return s.transact(r, srv, t, sent, sentType, resp, true)
}

// tldServerFor picks the registry server for a name: the lettered
// VERISIGN fleet for com/net, per-TLD anycast otherwise.
func (s *Sim) tldServerFor(name string) *Server {
	tld := dnswire.TLD(name)
	if tld == "com." || tld == "net." {
		return s.pickByRTT(s.Infra.GTLDServers)
	}
	return s.Infra.CCTLDServer(tld)
}

// IsHierarchyServer reports whether addr is a root or TLD server of
// this scenario (ccTLD servers count from the moment they are minted).
func (s *Sim) IsHierarchyServer(addr netip.Addr) bool {
	return s.Infra.hierarchy[addr]
}

// pickByRTT selects a server weighted by 1/delay² — recursive resolvers
// prefer low-RTT authoritatives (why the paper's fastest gTLD letter B
// absorbs the most botnet traffic, §3.5).
func (s *Sim) pickByRTT(servers []*Server) *Server {
	var total float64
	for _, srv := range servers {
		total += 1 / (srv.BaseDelayMs * srv.BaseDelayMs)
	}
	x := s.rng.Float64() * total
	for _, srv := range servers {
		x -= 1 / (srv.BaseDelayMs * srv.BaseDelayMs)
		if x <= 0 {
			return srv
		}
	}
	return servers[len(servers)-1]
}

// answerTTL returns the zone's current answer TTL. Non-conforming zones
// roll a fresh value per response (Table 4); the palette is small enough
// that each value clears the 10 % detection threshold of §4.2.1 while
// still flipping the hourly mode.
func (s *Sim) answerTTL(zone *SLD) uint32 {
	if zone.NonConforming {
		return uint32(1+s.rng.Intn(8)) * 100
	}
	return zone.ATTL
}

// buildAnswer fills resp's ANSWER section for an existing name; returns
// false for the NODATA case.
func (s *Sim) buildAnswer(resp *dnswire.Message, zone *SLD, f *FQDN, qname string, qtype dnswire.Type, ttl uint32) bool {
	in := dnswire.ClassINET
	switch qtype {
	case dnswire.TypeA:
		resp.Answers = append(resp.Answers, dnswire.RR{Name: qname, Type: qtype, Class: in, TTL: ttl,
			Data: dnswire.ARData{Addr: zone.AddrFor(f, false)}})
	case dnswire.TypeAAAA:
		if !f.HasV6() {
			return false
		}
		resp.Answers = append(resp.Answers, dnswire.RR{Name: qname, Type: qtype, Class: in, TTL: ttl,
			Data: dnswire.AAAARData{Addr: zone.AddrFor(f, true)}})
	case dnswire.TypePTR:
		resp.Answers = append(resp.Answers, dnswire.RR{Name: qname, Type: qtype, Class: in, TTL: zone.ATTL,
			Data: dnswire.PTRRData{Target: fmt.Sprintf("host-%s.isp.net.", s.randLabel(6))}})
	case dnswire.TypeTXT:
		strs := []string{"st=" + s.randLabel(24)}
		if s.rng.Float64() < 0.12 {
			// Some custom-protocol responses ship blobs well past the
			// UDP ceiling, triggering the TCP fallback.
			for i := 0; i < 6; i++ {
				strs = append(strs, s.randLabel(220))
			}
		}
		resp.Answers = append(resp.Answers, dnswire.RR{Name: qname, Type: qtype, Class: in, TTL: zone.ATTL,
			Data: dnswire.TXTRData{Strings: strs}})
	case dnswire.TypeMX:
		resp.Answers = append(resp.Answers, dnswire.RR{Name: qname, Type: qtype, Class: in, TTL: 3600,
			Data: dnswire.MXRData{Preference: 10, MX: "mail." + zone.Name}})
	case dnswire.TypeSRV:
		resp.Answers = append(resp.Answers, dnswire.RR{Name: qname, Type: qtype, Class: in, TTL: 300,
			Data: dnswire.SRVRData{Priority: 1, Weight: 5, Port: 5060, Target: "sip." + zone.Name}})
	case dnswire.TypeCNAME:
		resp.Answers = append(resp.Answers, dnswire.RR{Name: qname, Type: qtype, Class: in, TTL: 300,
			Data: dnswire.CNAMERData{Target: "edge." + zone.Name}})
	case dnswire.TypeSOA:
		resp.Answers = append(resp.Answers, dnswire.RR{Name: zone.Name, Type: qtype, Class: in, TTL: 3600,
			Data: dnswire.SOARData{MName: zone.NSNames[0], RName: "hostmaster." + zone.Name,
				Serial: zone.Serial, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: zone.NegTTL}})
	case dnswire.TypeNS:
		for _, nsName := range zone.NSNames {
			resp.Answers = append(resp.Answers, dnswire.RR{Name: zone.Name, Type: qtype, Class: in,
				TTL: zone.NSTTL, Data: dnswire.NSRData{NS: nsName}})
		}
		for i, nsName := range zone.NSNames {
			resp.Additional = append(resp.Additional, dnswire.RR{Name: nsName, Type: dnswire.TypeA,
				Class: in, TTL: zone.NSTTL, Data: dnswire.ARData{Addr: zone.NS[i].Addr}})
		}
	default:
		return false
	}
	return true
}

// failShare is the per-qtype probability of Refused/ServFail, shaping
// the "err" column of Table 2 (MX probing gets refused a lot).
func (s *Sim) failShare(qtype dnswire.Type) float64 {
	switch qtype {
	case dnswire.TypeMX:
		return 0.25
	case dnswire.TypeSRV:
		return 0.18
	case dnswire.TypeSOA:
		return 0.12
	case dnswire.TypePTR:
		return 0.15
	default:
		return 0.04
	}
}

// ---- message / packet assembly ----

// newResponse starts a response message echoing the question.
func (s *Sim) newResponse(qname string, qtype dnswire.Type) *dnswire.Message {
	m := &dnswire.Message{
		Flags: dnswire.Flags{Response: true, RecursionDesired: false},
		Questions: []dnswire.Question{
			{Name: qname, Type: qtype, Class: dnswire.ClassINET}},
	}
	return m
}

// addSOA appends the zone SOA to AUTHORITY (negative answers, RFC 2308).
func (s *Sim) addSOA(resp *dnswire.Message, zone string, negTTL uint32, serial uint32) {
	mname := "ns1." + zone
	if zone == "." {
		mname = "a.root-servers.net."
	}
	resp.Authority = append(resp.Authority, dnswire.RR{
		Name: zone, Type: dnswire.TypeSOA, Class: dnswire.ClassINET, TTL: negTTL,
		Data: dnswire.SOARData{MName: mname, RName: "hostmaster." + zone,
			Serial: serial, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: negTTL},
	})
}

// sigWindow returns the validity interval used for all zone signatures:
// a week before the scenario start to ninety days after.
func (s *Sim) sigWindow() (time.Time, time.Time) {
	return s.cfg.Start.Add(-7 * 24 * time.Hour), s.cfg.Start.Add(90 * 24 * time.Hour)
}

// signAnswer appends a genuine RRSIG over resp.Answers, cached per
// RRset so steady-state traffic reuses precomputed signatures.
func (s *Sim) signAnswer(zone *SLD, resp *dnswire.Message, qname string, qtype dnswire.Type, ttl uint32) {
	s.signWith(zone.Key, resp, qname, qtype, ttl, zone.Serial)
}

// signWith signs resp.Answers with key, caching in the key owner's zone
// when available.
func (s *Sim) signWith(key *dnssec.Key, resp *dnswire.Message, qname string, qtype dnswire.Type, ttl uint32, serial uint32) {
	if key == nil {
		return
	}
	zone := s.Universe.Lookup(dnswire.Canonical(key.ZoneName))
	cacheKey := fmt.Sprintf("%s|%d|%d|%d", qname, qtype, ttl, serial)
	if zone != nil && zone.sigCache != nil {
		if sig, ok := zone.sigCache[cacheKey]; ok {
			resp.Answers = append(resp.Answers, sig)
			return
		}
	}
	inc, exp := s.sigWindow()
	sig, err := key.Sign(resp.Answers, inc, exp)
	if err != nil {
		return
	}
	if zone != nil && zone.sigCache != nil && len(zone.sigCache) < 4096 {
		zone.sigCache[cacheKey] = sig
	}
	resp.Answers = append(resp.Answers, sig)
}

// registryKey returns (minting on first use) the signing key of a TLD
// registry zone — the parent that signs DS RRsets.
func (s *Sim) registryKey(tld string) *dnssec.Key {
	if k, ok := s.registryKeys[tld]; ok {
		return k
	}
	seed := sha256.Sum256([]byte("registry:" + tld))
	k, err := dnssec.NewKey(tld, 257, seed[:])
	if err != nil {
		panic(err)
	}
	if s.registryKeys == nil {
		s.registryKeys = map[string]*dnssec.Key{}
	}
	s.registryKeys[tld] = k
	return k
}

// nsec builds the zone's denial-of-existence record (a fixed synthetic
// next-name/bitmap; the signature over it is genuine).
func (s *Sim) nsec(zone *SLD) dnswire.RR {
	return dnswire.RR{
		Name: zone.Name, Type: dnswire.TypeNSEC, Class: dnswire.ClassINET, TTL: zone.NegTTL,
		Data: dnswire.RawRData{Data: []byte("\x01z" + zone.Name + "\x00\x06@\x80\x00\x00\x00\x03")},
	}
}

// denialSig signs the NSEC record, cached per zone serial.
func (s *Sim) denialSig(zone *SLD, nsec dnswire.RR) dnswire.RR {
	cacheKey := fmt.Sprintf("nsec|%d|%d", zone.NegTTL, zone.Serial)
	if sig, ok := zone.sigCache[cacheKey]; ok {
		return sig
	}
	inc, exp := s.sigWindow()
	sig, err := zone.Key.Sign([]dnswire.RR{nsec}, inc, exp)
	if err != nil {
		panic(err)
	}
	if len(zone.sigCache) < 4096 {
		zone.sigCache[cacheKey] = sig
	}
	return sig
}

// transact emits one query/response transaction to srv at time t and
// returns the completion time. answered=false callers are not used;
// drops are decided here from server health.
func (s *Sim) transact(r *Resolver, srv *Server, t float64, qname string, qtype dnswire.Type, resp *dnswire.Message, wantAnswer bool) float64 {
	id := uint16(s.rng.Intn(65536))
	q := dnswire.Message{
		ID:    id,
		Flags: dnswire.Flags{RecursionDesired: false},
		Questions: []dnswire.Question{
			{Name: qname, Type: qtype, Class: dnswire.ClassINET}},
	}
	q.SetEDNS(4096, true)
	// A share of resolvers attach EDNS0 cookies and client-subnet data —
	// exactly the fields the Observatory's preprocessing must drop
	// before anything is aggregated (paper §2.5).
	if s.rng.Float64() < 0.25 {
		opt := q.OPT()
		opts := opt.Data.(dnswire.OPTRData)
		cookie := make([]byte, 8)
		s.rng.Read(cookie)
		opts.Options = append(opts.Options,
			dnswire.EDNSOption{Code: dnswire.EDNSOptionCookie, Data: cookie})
		if s.rng.Float64() < 0.4 {
			opts.Options = append(opts.Options, dnswire.EDNSOption{
				Code: dnswire.EDNSOptionClientSubnet,
				Data: []byte{0, 1, 24, 0, byte(s.rng.Intn(224)), byte(s.rng.Intn(256)), byte(s.rng.Intn(256))},
			})
		}
		opt.Data = opts
	}
	var err error
	s.qbuf, err = q.Pack(s.qbuf[:0])
	if err != nil {
		panic(err)
	}
	sport := uint16(1024 + s.rng.Intn(60000))
	// Dual-stack pairs talk DNS over IPv6.
	v6 := r.Addr6.IsValid() && srv.Addr6.IsValid() && s.rng.Float64() < 0.5
	if v6 {
		s.pbuf = ipwire.AppendIPv6UDP(s.pbuf[:0], r.Addr6, srv.Addr6, sport, ipwire.DNSPort, 64, s.qbuf)
	} else {
		s.pbuf = ipwire.AppendIPv4UDP(s.pbuf[:0], r.Addr, srv.Addr, sport, ipwire.DNSPort, 64, s.qbuf)
	}

	dropP := s.cfg.UnansweredBase
	if srv.Impaired {
		dropP *= 15
	}
	answered := wantAnswer && s.rng.Float64() >= dropP

	delayMs := srv.BaseDelayMs * math.Exp(s.rng.NormFloat64()*0.25)
	qt := s.cfg.Start.Add(time.Duration(t * float64(time.Second)))

	s.tx = sie.Transaction{
		QueryPacket:     s.pbuf,
		QueryTime:       qt,
		SensorID:        r.SensorID,
		Workload:        s.curLabel,
		ClientTransport: s.transportTag,
	}
	s.lastRespLen = 0
	if answered {
		resp.ID = id
		resp.SetEDNS(4096, true)
		s.rbuf, err = resp.Pack(s.rbuf[:0])
		if err != nil {
			panic(err)
		}
		hops := srv.Hops
		if hops > 254 {
			hops = 254
		}
		rttl := uint8(255 - hops)
		if len(s.rbuf) > maxUDPPayload {
			// Oversize response: the server truncates over UDP, the
			// resolver retries over TCP (RFC 1035 §4.2; the paper lists
			// TCP/53 support as future work — here it is).
			return s.truncateAndRetry(r, srv, t, qt, sport, resp, rttl, delayMs, v6)
		}
		if v6 {
			s.pbuf2 = ipwire.AppendIPv6UDP(s.pbuf2[:0], srv.Addr6, r.Addr6, ipwire.DNSPort, sport, rttl, s.rbuf)
		} else {
			s.pbuf2 = ipwire.AppendIPv4UDP(s.pbuf2[:0], srv.Addr, r.Addr, ipwire.DNSPort, sport, rttl, s.rbuf)
		}
		s.tx.ResponsePacket = s.pbuf2
		s.tx.ResponseTime = qt.Add(time.Duration(delayMs * float64(time.Millisecond)))
		s.lastRespLen = len(s.rbuf)
	}
	s.stats.Transactions++
	if s.emit != nil {
		s.emit(&s.tx)
	}
	if !answered {
		// The resolver retries elsewhere; model the timeout cost only.
		return t + 0.4
	}
	return t + delayMs/1000
}

// maxUDPPayload is the effective UDP response ceiling; responses above
// it are truncated (the DNS-flag-day 1232-byte convention).
const maxUDPPayload = 1232

// truncateAndRetry emits the truncated UDP exchange followed by the TCP
// retry carrying the full response, and returns the completion time.
func (s *Sim) truncateAndRetry(r *Resolver, srv *Server, t float64, qt time.Time, sport uint16, resp *dnswire.Message, rttl uint8, delayMs float64, v6 bool) float64 {
	// 1) Truncated UDP response: TC set, record sections emptied.
	trunc := dnswire.Message{
		ID:        resp.ID,
		Flags:     resp.Flags,
		Questions: resp.Questions,
	}
	trunc.Flags.Truncated = true
	trunc.SetEDNS(4096, true)
	var err error
	s.rbuf, err = trunc.Pack(s.rbuf[:0])
	if err != nil {
		panic(err)
	}
	if v6 {
		s.pbuf2 = ipwire.AppendIPv6UDP(s.pbuf2[:0], srv.Addr6, r.Addr6, ipwire.DNSPort, sport, rttl, s.rbuf)
	} else {
		s.pbuf2 = ipwire.AppendIPv4UDP(s.pbuf2[:0], srv.Addr, r.Addr, ipwire.DNSPort, sport, rttl, s.rbuf)
	}
	s.tx.ResponsePacket = s.pbuf2
	s.tx.ResponseTime = qt.Add(time.Duration(delayMs * float64(time.Millisecond)))
	s.stats.Transactions++
	s.stats.Truncated++
	if s.emit != nil {
		s.emit(&s.tx)
	}

	// 2) TCP retry: same question, full response, one RTT later.
	q := dnswire.Message{ID: resp.ID + 1, Questions: resp.Questions}
	q.SetEDNS(4096, true)
	s.qbuf, err = q.Pack(s.qbuf[:0])
	if err != nil {
		panic(err)
	}
	tcpPort := uint16(1024 + s.rng.Intn(60000))
	seq := s.rng.Uint32()
	t2 := t + delayMs/1000
	qt2 := s.cfg.Start.Add(time.Duration(t2 * float64(time.Second)))
	resp.ID = q.ID
	if v6 {
		s.pbuf = ipwire.AppendIPv6TCPDNS(s.pbuf[:0], r.Addr6, srv.Addr6, tcpPort, ipwire.DNSPort, 64, seq, s.qbuf)
	} else {
		s.pbuf = ipwire.AppendIPv4TCPDNS(s.pbuf[:0], r.Addr, srv.Addr, tcpPort, ipwire.DNSPort, 64, seq, s.qbuf)
	}
	s.rbuf, err = resp.Pack(s.rbuf[:0])
	if err != nil {
		panic(err)
	}
	if v6 {
		s.pbuf2 = ipwire.AppendIPv6TCPDNS(s.pbuf2[:0], srv.Addr6, r.Addr6, ipwire.DNSPort, tcpPort, rttl, seq+1, s.rbuf)
	} else {
		s.pbuf2 = ipwire.AppendIPv4TCPDNS(s.pbuf2[:0], srv.Addr, r.Addr, ipwire.DNSPort, tcpPort, rttl, seq+1, s.rbuf)
	}
	s.tx = sie.Transaction{
		QueryPacket:     s.pbuf,
		ResponsePacket:  s.pbuf2,
		QueryTime:       qt2,
		ResponseTime:    qt2.Add(time.Duration(delayMs * float64(time.Millisecond))),
		SensorID:        r.SensorID,
		Workload:        s.curLabel,
		ClientTransport: s.transportTag,
	}
	// The client ultimately receives the full response over TCP.
	s.lastRespLen = len(s.rbuf)
	s.stats.Transactions++
	s.stats.TCPRetries++
	if s.emit != nil {
		s.emit(&s.tx)
	}
	return t2 + delayMs/1000
}

// randLabel returns an n-char lowercase label.
func (s *Sim) randLabel(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + s.rng.Intn(26))
	}
	return string(b)
}

// randHexLabel returns an n-char label over the hex alphabet — the
// shape of base16-encoded exfiltrated bytes.
func (s *Sim) randHexLabel(n int) string {
	const hex = "0123456789abcdef"
	b := make([]byte, n)
	for i := range b {
		b[i] = hex[s.rng.Intn(16)]
	}
	return string(b)
}
