package simnet

import (
	"testing"

	"dnsobservatory/internal/sie"
)

// TestTruncationFallback drives a TXT-heavy workload so oversize
// responses trigger the UDP-truncate → TCP-retry path, and verifies
// both legs parse and carry the expected flags.
func TestTruncationFallback(t *testing.T) {
	cfg := smallConfig()
	cfg.Duration = 60
	cfg.Mix = WorkloadMix{TXT: 1}
	sim := New(cfg)

	var s sie.Summarizer
	var sum sie.Summary
	var udpTrunc, tcpFull, tcpAnswered int
	st := sim.Run(func(tx *sie.Transaction) {
		if err := s.Summarize(tx, &sum); err != nil {
			t.Fatalf("parse: %v", err)
		}
		if sum.Trunc {
			udpTrunc++
			if sum.TCP {
				t.Error("truncated response marked as TCP")
			}
			if sum.HasAnswerData {
				t.Error("truncated response still carries answers")
			}
		}
		if sum.TCP {
			tcpFull++
			if sum.Answered && sum.HasAnswerData {
				tcpAnswered++
			}
			if sum.RespSize <= maxUDPPayload {
				t.Errorf("TCP retry for small response (%dB)", sum.RespSize)
			}
		}
	})
	if st.Truncated == 0 || st.TCPRetries == 0 {
		t.Fatalf("no truncations: %+v", st)
	}
	if udpTrunc != int(st.Truncated) || tcpFull != int(st.TCPRetries) {
		t.Errorf("observed %d/%d, stats %d/%d", udpTrunc, tcpFull, st.Truncated, st.TCPRetries)
	}
	if tcpAnswered == 0 {
		t.Error("no full answers over TCP")
	}
	// TCP must stay a small share of all transactions (paper: <3%).
	share := float64(st.TCPRetries) / float64(st.Transactions)
	if share > 0.2 {
		t.Errorf("TCP share %.2f too high even for a pure-TXT workload", share)
	}
}

// TestTCPShareInDefaultMix keeps the global TCP share near the paper's
// <3 % claim under the default workload.
func TestTCPShareInDefaultMix(t *testing.T) {
	cfg := smallConfig()
	cfg.Duration = 60
	sim := New(cfg)
	st := sim.Run(nil)
	share := float64(st.TCPRetries) / float64(st.Transactions)
	if share > 0.03 {
		t.Errorf("TCP share %.4f exceeds 3%%", share)
	}
}
