package simnet

import (
	"fmt"
	"math/rand"
	"net/netip"
)

// Resolver is one recursive resolver contributing cache-miss traffic.
// Its cache implements TTL-based positive caching and RFC 2308 negative
// caching; only misses generate observable transactions, which is what
// makes query volumes TTL-sensitive (paper §4.1).
type Resolver struct {
	Addr     netip.Addr
	Addr6    netip.Addr // zero when the resolver is v4-only
	SensorID uint32
	QMin     bool // performs QNAME minimization (RFC 7816)

	cache map[string]cacheEntry
}

type cacheEntry struct {
	expires  float64
	negative bool
}

func newResolver(addr netip.Addr, sensor uint32, qmin bool) *Resolver {
	return &Resolver{Addr: addr, SensorID: sensor, QMin: qmin, cache: make(map[string]cacheEntry)}
}

// cached reports whether key is live at now.
func (r *Resolver) cached(key string, now float64) (hit, negative bool) {
	e, ok := r.cache[key]
	if !ok || e.expires <= now {
		return false, false
	}
	return true, e.negative
}

// store caches key for ttl seconds.
func (r *Resolver) store(key string, ttl uint32, now float64, negative bool) {
	if ttl == 0 {
		return
	}
	r.cache[key] = cacheEntry{expires: now + float64(ttl), negative: negative}
}

// CacheLen returns the number of live-or-stale cache entries (for tests
// and memory accounting).
func (r *Resolver) CacheLen() int { return len(r.cache) }

// gc drops expired entries; the simulator calls it periodically so that
// long runs stay bounded.
func (r *Resolver) gc(now float64) {
	for k, e := range r.cache {
		if e.expires <= now {
			delete(r.cache, k)
		}
	}
}

// newResolverPool mints n resolvers across sensors. A handful of
// sensors each contribute several resolvers, as SIE contributors do;
// qminCount resolvers (a university lab, per §3.6) minimize QNAMEs.
func newResolverPool(rng *rand.Rand, n, sensors, qminCount int) []*Resolver {
	if sensors < 1 {
		sensors = 1
	}
	out := make([]*Resolver, n)
	for i := range out {
		addr := netip.AddrFrom4([4]byte{
			byte(203 - i/200), byte(i / 250 % 250), byte(i % 250), byte(1 + i%200)})
		out[i] = newResolver(addr, uint32(1+i%sensors), i < qminCount)
		// Roughly a third of the pool is dual-stack and can speak
		// DNS-over-IPv6 to v6-capable authoritatives.
		if i%3 == 0 {
			a16 := [16]byte{0x20, 0x01, 0x0d, 0xb8, 0x00, 0x53}
			a16[14] = byte(i >> 8)
			a16[15] = byte(i)
			out[i].Addr6 = netip.AddrFrom16(a16)
		}
	}
	if len(out) == 0 {
		panic(fmt.Sprintf("simnet: resolver pool of %d", n))
	}
	return out
}
