package simnet

import (
	"crypto/sha256"
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"sort"
	"strings"

	"dnsobservatory/internal/dnssec"
	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/publicsuffix"
)

// SLD is one registered (effective second-level) domain with its zone
// configuration and hosting.
type SLD struct {
	Name    string // canonical, e.g. "example.com."
	Org     *Org
	NSNames []string  // NS record targets
	NS      []*Server // authoritative servers
	Weight  float64   // popularity mass (Zipf)

	ATTL   uint32 // TTL of A/AAAA answers
	NSTTL  uint32 // TTL of NS records
	NegTTL uint32 // SOA minimum: negative-caching TTL
	Serial uint32

	IPv6    bool // serves AAAA records
	Signed  bool // DNSSEC: responses carry RRSIG when DO is set
	FQDNs   []*FQDN
	fqdnCum []float64 // cumulative weights for sampling

	// NonConforming servers return a different TTL on every response
	// (Table 4's largest category).
	NonConforming bool

	// Key signs the zone when Signed; sigCache holds one RRSIG per
	// answer RRset so steady-state responses reuse signatures, as real
	// authoritatives serve precomputed ones.
	Key      *dnssec.Key
	sigCache map[string]dnswire.RR

	// Address base: FQDN i resolves to base+i.
	V4Base netip.Addr
	V6Base netip.Addr
}

// FQDN is one hostname under an SLD.
type FQDN struct {
	Name   string
	SLD    *SLD
	Weight float64
	// V6 overrides the SLD's IPv6 flag when set mid-run (the §5.3
	// enablement events); -1 inherit, 0 off, 1 on.
	V6Override int8
}

// HasV6 reports whether the name currently serves AAAA data.
func (f *FQDN) HasV6() bool {
	switch f.V6Override {
	case 0:
		return false
	case 1:
		return true
	}
	return f.SLD.IPv6
}

// Universe is the domain population.
type Universe struct {
	SLDs   []*SLD
	sldCum []float64 // cumulative popularity for sampling
	byName map[string]*SLD

	// PTRZones are reverse-DNS zones under in-addr.arpa.
	PTRZones []*SLD
	ptrCum   []float64

	Suffixes *publicsuffix.List
	rng      *rand.Rand
}

// Common hostname labels weighted toward www; the tail of per-SLD FQDNs
// gets generated labels.
var hostLabels = []string{"www", "api", "cdn", "img", "mail", "m", "app", "static", "edge", "login"}

// tldWeights drives which public suffix newly minted SLDs land under;
// com dominates, as in the observed DNS.
var tldWeights = []struct {
	suffix string
	w      float64
}{
	{"com", 0.48}, {"net", 0.09}, {"org", 0.06}, {"de", 0.04}, {"co.uk", 0.03},
	{"ru", 0.03}, {"nl", 0.02}, {"io", 0.02}, {"jp", 0.02}, {"fr", 0.02},
	{"it", 0.015}, {"pl", 0.015}, {"br", 0.01}, {"com.br", 0.01}, {"top", 0.01},
	{"xyz", 0.01}, {"info", 0.01}, {"cn", 0.01}, {"com.cn", 0.01}, {"org.il", 0.008},
	{"co.il", 0.008}, {"net.me", 0.006}, {"me", 0.006}, {"in", 0.01}, {"co.in", 0.008},
	{"au", 0.006}, {"com.au", 0.01}, {"se", 0.008}, {"ch", 0.008}, {"es", 0.008},
	{"ca", 0.008}, {"us", 0.006}, {"tv", 0.005}, {"cc", 0.005}, {"biz", 0.005},
	{"online", 0.004}, {"site", 0.004}, {"shop", 0.004}, {"app", 0.004}, {"dev", 0.004},
	{"kr", 0.005}, {"tw", 0.004}, {"vn", 0.004}, {"tr", 0.004}, {"mx", 0.004},
	{"ar", 0.003}, {"cl", 0.003}, {"za", 0.003}, {"co.za", 0.003}, {"ke", 0.002},
	{"co.ke", 0.002}, {"ng", 0.002}, {"eg", 0.002}, {"sa", 0.002}, {"ae", 0.002},
	{"th", 0.002}, {"co.th", 0.002}, {"my", 0.002}, {"sg", 0.002}, {"ph", 0.002},
	{"id", 0.003}, {"hk", 0.002}, {"com.hk", 0.002}, {"nz", 0.002}, {"co.nz", 0.002},
}

// ttlMenu is the classic TTL palette; weights skew short for CDNs.
var ttlMenu = []struct {
	ttl uint32
	w   float64
}{
	{30, 0.08}, {60, 0.16}, {120, 0.07}, {300, 0.28}, {600, 0.1},
	{900, 0.05}, {1800, 0.05}, {3600, 0.12}, {14400, 0.03}, {86400, 0.06},
}

func (u *Universe) pickTTL() uint32 {
	x := u.rng.Float64()
	var cum float64
	for _, t := range ttlMenu {
		cum += t.w
		if x < cum {
			return t.ttl
		}
	}
	return 300
}

func (u *Universe) pickTLD() string {
	x := u.rng.Float64()
	var cum float64
	for _, t := range tldWeights {
		cum += t.w
		if x < cum {
			return t.suffix
		}
	}
	return "com"
}

// newUniverse mints nSLD popular domains with Zipf(1.0, s≈1) popularity
// plus reverse-DNS zones, assigns hosting organizations per Table 1
// shares, and builds per-org server pools sized by the profile counts
// scaled by serverScale.
func newUniverse(rng *rand.Rand, inf *Infra, nSLD int, serverScale float64, v6Share float64) *Universe {
	u := &Universe{
		byName:   map[string]*SLD{},
		Suffixes: publicsuffix.Default,
		rng:      rng,
	}
	// Per-org server pools. Anycast orgs keep small pools regardless of
	// scale pressure from hosting share. Pools sort fastest-first so the
	// skewed draw concentrates popular zones on low-delay addresses —
	// the paper's Fig. 3b correlation between popularity and speed.
	pools := map[*Org][]*Server{}
	poolFor := func(o *Org) []*Server {
		if p, ok := pools[o]; ok {
			return p
		}
		n := int(float64(o.Servers) * serverScale)
		if n < 2 {
			n = 2
		}
		p := make([]*Server, n)
		for i := range p {
			p[i] = inf.NewServer(o, i)
		}
		sort.Slice(p, func(i, j int) bool { return p[i].BaseDelayMs < p[j].BaseDelayMs })
		pools[o] = p
		return p
	}

	zipf := func(rank int) float64 { return 1 / math.Pow(float64(rank+1), 1.0) }

	for i := 0; i < nSLD; i++ {
		tld := u.pickTLD()
		name := fmt.Sprintf("%s%d.%s.", sldSyllables(rng, i), i, tld)
		org := inf.PickHostingOrgRanked(i, nSLD)
		pool := poolFor(org)
		// IPv6 adoption correlates with popularity: the CDNs and cloud
		// providers behind the biggest domains enabled AAAA early, which
		// keeps the AAAA NoData share near the paper's 25 % (Table 2).
		// The boost is multiplicative so a v6Share of zero stays zero.
		v6p := v6Share
		switch {
		case i < nSLD/20:
			v6p = math.Min(0.9, v6Share*2.8)
		case i < nSLD/5:
			v6p = math.Min(0.75, v6Share*2.0)
		}
		sld := &SLD{
			Name:   name,
			Org:    org,
			Weight: zipf(i),
			ATTL:   u.pickTTL(),
			NSTTL:  86400,
			Serial: 2019010100 + uint32(i),
			IPv6:   rng.Float64() < v6p,
			Signed: rng.Float64() < 0.4,
			V4Base: netip.AddrFrom4([4]byte{byte(100 + i%80), byte(i / 250 % 250), byte(i % 250), 10}),
			V6Base: netip.MustParseAddr(fmt.Sprintf("2001:db8:%x::10", i%65536)),
		}
		// Negative-caching TTL: most zones keep it near the A TTL; a
		// minority slash it (the §5.2 pathology).
		switch {
		case rng.Float64() < 0.06:
			sld.NegTTL = 10 + uint32(rng.Intn(20)) // 10–30 s, pathological
		case rng.Float64() < 0.3:
			sld.NegTTL = 300
		default:
			sld.NegTTL = sld.ATTL
		}
		// 2–4 nameservers from the org pool; anycast orgs reuse few IPs.
		// The pool draw is heavily skewed toward its first entries: DNS
		// providers concentrate many customer zones on few addresses,
		// which is what produces the paper's "1K nameserver IPs handle
		// half the traffic" concentration (Fig. 2a).
		// Head domains additionally restrict themselves to the fastest
		// quarter of the provider pool — the most popular sites sit on
		// the best-provisioned addresses, producing the Fig. 3b
		// popularity/delay correlation.
		drawFrom := len(pool)
		if i < nSLD/10 && drawFrom > 4 {
			drawFrom /= 4
		}
		nns := 2 + rng.Intn(3)
		for j := 0; j < nns; j++ {
			srv := pool[skewedIndex(rng, drawFrom)]
			sld.NS = append(sld.NS, srv)
			sld.NSNames = append(sld.NSNames,
				fmt.Sprintf("ns%d.%s", j+1, name))
		}
		// FQDNs: a handful of hostnames, www-heavy, plus the apex.
		nf := 3 + rng.Intn(8)
		for j := 0; j < nf; j++ {
			var label string
			if j < len(hostLabels) {
				label = hostLabels[j]
			} else {
				label = fmt.Sprintf("h%d", j)
			}
			f := &FQDN{
				Name:       label + "." + name,
				SLD:        sld,
				Weight:     1 / math.Pow(float64(j+1), 1.3),
				V6Override: -1,
			}
			sld.FQDNs = append(sld.FQDNs, f)
		}
		sld.FQDNs = append(sld.FQDNs, &FQDN{Name: name, SLD: sld, Weight: 0.4, V6Override: -1})
		if sld.Signed {
			sld.initKey()
		}
		sld.buildCum()
		u.SLDs = append(u.SLDs, sld)
		u.byName[name] = sld
	}
	u.buildCum()
	u.buildPTRZones(inf)
	return u
}

// skewedIndex draws an index in [0,n) with mass concentrated near zero
// (P(idx < x) = (x/n)^(1/8)): DNS providers concentrate most customer
// zones on a handful of their addresses.
func skewedIndex(rng *rand.Rand, n int) int {
	u := rng.Float64()
	u4 := u * u * u * u
	idx := int(float64(n) * u4 * u4)
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// sldSyllables makes pronounceable-ish names deterministically.
func sldSyllables(rng *rand.Rand, i int) string {
	syl := []string{"ak", "bo", "cu", "de", "fi", "go", "ha", "in", "jo", "ka",
		"lu", "me", "no", "pa", "qi", "ra", "su", "ta", "ul", "vo", "wi", "xa", "yo", "zu"}
	var sb strings.Builder
	n := 2 + rng.Intn(2)
	for j := 0; j < n; j++ {
		sb.WriteString(syl[(i*7+j*13+rng.Intn(4))%len(syl)])
	}
	return sb.String()
}

// buildPTRZones creates reverse-DNS zones (one per /16 of popular
// address space) served by ISP-style tail infrastructure; reverse
// lookups are slower (≈2× forward, paper Table 2).
func (u *Universe) buildPTRZones(inf *Infra) {
	for i := 0; i < 40; i++ {
		org := inf.Tail[(i*3)%len(inf.Tail)]
		srv := inf.NewServer(org, i)
		srv.BaseDelayMs *= 2
		name := fmt.Sprintf("%d.%d.in-addr.arpa.", i%250, 100+i%80)
		z := &SLD{
			Name:   name,
			Org:    org,
			Weight: 1 / float64(i+1),
			ATTL:   86400,
			NSTTL:  86400,
			NegTTL: 3600,
			NS:     []*Server{srv},
			NSNames: []string{
				fmt.Sprintf("ns1.isp%d.net.", i)},
		}
		u.PTRZones = append(u.PTRZones, z)
	}
}

// initKey derives the zone's deterministic Ed25519 signing key.
func (s *SLD) initKey() {
	seed := sha256.Sum256([]byte("zsk:" + s.Name))
	key, err := dnssec.NewKey(s.Name, 256, seed[:])
	if err != nil {
		panic(err) // seed length is fixed; unreachable
	}
	s.Key = key
	s.sigCache = map[string]dnswire.RR{}
}

// InvalidateSignatures drops cached RRSIGs; events that change records
// (renumbering, TTL changes) call this through bumpSerial.
func (s *SLD) InvalidateSignatures() {
	if s.sigCache != nil {
		s.sigCache = map[string]dnswire.RR{}
	}
}

func (s *SLD) buildCum() {
	s.fqdnCum = cumWeights(len(s.FQDNs), func(i int) float64 { return s.FQDNs[i].Weight })
}

func (u *Universe) buildCum() {
	u.sldCum = cumWeights(len(u.SLDs), func(i int) float64 { return u.SLDs[i].Weight })
}

func cumWeights(n int, w func(int) float64) []float64 {
	cum := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += w(i)
		cum[i] = sum
	}
	return cum
}

// sampleCum draws an index from a cumulative weight array.
func sampleCum(rng *rand.Rand, cum []float64) int {
	if len(cum) == 0 {
		return -1
	}
	x := rng.Float64() * cum[len(cum)-1]
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// PickSLD draws a domain by popularity.
func (u *Universe) PickSLD() *SLD {
	return u.SLDs[sampleCum(u.rng, u.sldCum)]
}

// PickFQDN draws a hostname within the SLD by popularity.
func (s *SLD) PickFQDN(rng *rand.Rand) *FQDN {
	return s.FQDNs[sampleCum(rng, s.fqdnCum)]
}

// Lookup finds an SLD by canonical name.
func (u *Universe) Lookup(name string) *SLD { return u.byName[name] }

// AddrFor returns the address FQDN f resolves to.
func (s *SLD) AddrFor(f *FQDN, v6 bool) netip.Addr {
	idx := 0
	for i, g := range s.FQDNs {
		if g == f {
			idx = i
			break
		}
	}
	if v6 {
		b := s.V6Base.As16()
		b[15] += byte(idx)
		return netip.AddrFrom16(b)
	}
	b := s.V4Base.As4()
	b[3] += byte(idx)
	return netip.AddrFrom4(b)
}
