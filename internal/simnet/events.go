package simnet

import (
	"fmt"
	"net/netip"
)

// Scheduled infrastructure events, the ground truth behind the paper's
// §4 (TTL dynamics, Table 4 change classes) and §5.3 (IPv6 enablement).

// TTLChangeEvent changes an SLD's answer TTL at time at — the Fig. 7
// scenario (xmsecu.com slashing 600 s to 10 s) is one of these.
func TTLChangeEvent(at float64, sldName string, newTTL uint32) Event {
	return Event{At: at, Apply: func(s *Sim) {
		if z := s.Universe.Lookup(sldName); z != nil {
			z.ATTL = newTTL
		}
	}}
}

// NegTTLChangeEvent changes an SLD's negative-caching TTL.
func NegTTLChangeEvent(at float64, sldName string, newTTL uint32) Event {
	return Event{At: at, Apply: func(s *Sim) {
		if z := s.Universe.Lookup(sldName); z != nil {
			z.NegTTL = newTTL
		}
	}}
}

// RenumberEvent moves an SLD's address block (all its FQDNs change A
// records), bumping the zone serial and setting a new answer TTL — the
// Table 4 "Renumbering" class, where e.g. ns2.oh-isp.com moved into a
// cloud and its TTL rose from 600 to 38400.
func RenumberEvent(at float64, sldName string, newBase netip.Addr, newTTL uint32) Event {
	return Event{At: at, Apply: func(s *Sim) {
		if z := s.Universe.Lookup(sldName); z != nil {
			z.V4Base = newBase
			z.ATTL = newTTL
			z.Serial++
		}
	}}
}

// NSChangeEvent switches an SLD to a new DNS provider: fresh NS names
// on fresh servers, after the operator slashed TTLs (Table 4 "Change
// NS": f1g1ns1.dnspod.net → ns3.dnsv2.com with TTL 600→10).
func NSChangeEvent(at float64, sldName string, provider string) Event {
	return Event{At: at, Apply: func(s *Sim) {
		z := s.Universe.Lookup(sldName)
		if z == nil {
			return
		}
		org := s.Infra.PickHostingOrg()
		var servers []*Server
		var names []string
		for i := 0; i < len(z.NS); i++ {
			servers = append(servers, s.Infra.NewServer(org, 500+i))
			names = append(names, fmt.Sprintf("ns%d.%s.", i+3, provider))
		}
		z.NS = servers
		z.NSNames = names
		z.Org = org
		z.Serial++
	}}
}

// NonConformingEvent marks an SLD's servers as returning a different
// TTL on every response — Table 4's largest class.
func NonConformingEvent(at float64, sldName string) Event {
	return Event{At: at, Apply: func(s *Sim) {
		if z := s.Universe.Lookup(sldName); z != nil {
			z.NonConforming = true
		}
	}}
}

// V6EnableEvent turns on AAAA data for every FQDN of an SLD (§5.3: 10
// FQDNs added IPv6 during April 2019).
func V6EnableEvent(at float64, sldName string) Event {
	return Event{At: at, Apply: func(s *Sim) {
		if z := s.Universe.Lookup(sldName); z != nil {
			z.IPv6 = true
			for _, f := range z.FQDNs {
				f.V6Override = 1
			}
		}
	}}
}

// PRSDTargetEvent adds an SLD to the PRSD attack target set, used by
// the Fig. 8 analysis to reproduce the "TTL up yet queries up" outliers
// (query-rate increases that are NXDOMAIN-driven).
func PRSDTargetEvent(at float64, sldName string) Event {
	return Event{At: at, Apply: func(s *Sim) {
		if z := s.Universe.Lookup(sldName); z != nil {
			s.prsdTargets = append(s.prsdTargets, z)
		}
	}}
}
