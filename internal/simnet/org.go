package simnet

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"

	"dnsobservatory/internal/routing"
)

// OrgProfile describes one hosting / DNS organization, calibrated against
// Table 1 of the paper.
type OrgProfile struct {
	Name        string  // organization handle (org name after extraction)
	ASNs        int     // how many ASes announce its prefixes
	HostShare   float64 // share of SLD hosting popularity mass
	Servers     int     // nameserver IP count at scale 1.0
	MeanDelayMs float64 // mean response delay
	MeanHops    float64 // mean router hops from resolvers
	Anycast     bool    // few IPs, many locations (CLOUDFLARE-style)
}

// DefaultOrgs mirrors Table 1. VERISIGN and PCH host TLD infrastructure
// rather than SLDs, so their HostShare is zero — their traffic share
// emerges from TLD referral volume instead.
func DefaultOrgs() []OrgProfile {
	return []OrgProfile{
		{Name: "AMAZON", ASNs: 3, HostShare: 0.16, Servers: 5026, MeanDelayMs: 60.9, MeanHops: 12.0},
		{Name: "VERISIGN", ASNs: 7, HostShare: 0, Servers: 62, MeanDelayMs: 53.5, MeanHops: 9.6},
		{Name: "CLOUDFLARE", ASNs: 2, HostShare: 0.066, Servers: 995, MeanDelayMs: 26.5, MeanHops: 6.6, Anycast: true},
		{Name: "AKAMAI", ASNs: 6, HostShare: 0.064, Servers: 6844, MeanDelayMs: 14.9, MeanHops: 7.3},
		{Name: "MICROSOFT", ASNs: 5, HostShare: 0.027, Servers: 475, MeanDelayMs: 74.8, MeanHops: 13.5},
		{Name: "PCH", ASNs: 2, HostShare: 0, Servers: 178, MeanDelayMs: 29.9, MeanHops: 7.2, Anycast: true},
		{Name: "ULTRADNS", ASNs: 1, HostShare: 0.023, Servers: 925, MeanDelayMs: 24.6, MeanHops: 8.2, Anycast: true},
		{Name: "GOOGLE", ASNs: 1, HostShare: 0.021, Servers: 243, MeanDelayMs: 89.9, MeanHops: 13.3},
		{Name: "DYNDNS", ASNs: 1, HostShare: 0.018, Servers: 598, MeanDelayMs: 56.0, MeanHops: 10.5},
		{Name: "GODADDY", ASNs: 2, HostShare: 0.012, Servers: 372, MeanDelayMs: 63.0, MeanHops: 11.0},
	}
}

// tailOrgCount is how many small long-tail hosting organizations exist
// beyond the named ones; together they absorb the remaining popularity.
const tailOrgCount = 400

// Org is an instantiated organization.
type Org struct {
	OrgProfile
	asns     []uint32
	prefixes []netip.Prefix
}

// Server is one authoritative nameserver IP.
type Server struct {
	Addr        netip.Addr
	Addr6       netip.Addr // zero when the server is v4-only
	Org         *Org
	BaseDelayMs float64 // median response delay of this server
	Hops        int     // router distance from the resolver population
	Impaired    bool    // >350 ms class of Fig. 3a
}

// Infra is the instantiated server-side Internet: organizations, their
// prefixes and the routing table, plus root and gTLD server sets.
type Infra struct {
	Orgs    []*Org
	Tail    []*Org // long-tail hosting orgs
	Routing *routing.Table

	// Root and TLD infrastructure: 13 lettered servers each, per the
	// paper's Fig. 3 (anycast IPv4 addresses).
	RootServers []*Server
	GTLDServers []*Server // com/net registry (VERISIGN)
	CCTLDByTLD  map[string]*Server

	rng     *rand.Rand
	nextASN uint32
	// next /16 block per org for address allocation.
	nextBlock int
	// hierarchy indexes root and TLD server addresses.
	hierarchy map[netip.Addr]bool
}

// letterDelays approximate Fig. 3c/d medians: root letters vary widely
// with E, F, L fastest; gTLD letters form consistent groups with B
// fastest.
var rootLetterDelay = [13]float64{32, 68, 47, 42, 14, 12, 95, 52, 36, 41, 57, 11, 118}
var gtldLetterDelay = [13]float64{28, 9, 24, 24, 38, 38, 41, 26, 30, 45, 46, 33, 35}

// newInfra builds organizations, address space and TLD infrastructure.
// serverScale scales per-org server counts (1.0 = paper scale).
func newInfra(rng *rand.Rand, serverScale float64) *Infra {
	inf := &Infra{
		Routing:    &routing.Table{},
		CCTLDByTLD: map[string]*Server{},
		rng:        rng,
		nextASN:    64500,
		hierarchy:  map[netip.Addr]bool{},
	}
	for _, p := range DefaultOrgs() {
		inf.Orgs = append(inf.Orgs, inf.newOrg(p))
	}
	for i := 0; i < tailOrgCount; i++ {
		inf.Tail = append(inf.Tail, inf.newOrg(OrgProfile{
			Name:        fmt.Sprintf("HOSTER%03d", i),
			ASNs:        1,
			Servers:     8,
			MeanDelayMs: inf.tailDelay(),
			MeanHops:    0, // derived from delay below
		}))
	}
	_ = serverScale
	inf.buildRoots()
	inf.buildGTLD()
	return inf
}

// tailDelay draws a long-tail org's mean delay matching the Fig. 3a
// sections: 3.1 % colocated (0–5 ms), 22.3 % regional (5–35 ms), 71.5 %
// distant (35–350 ms), 2.3 % impaired (>350 ms).
func (inf *Infra) tailDelay() float64 {
	u := inf.rng.Float64()
	switch {
	case u < 0.031:
		return 1 + inf.rng.Float64()*4
	case u < 0.031+0.223:
		return 5 + inf.rng.Float64()*30
	case u < 0.031+0.223+0.715:
		// Log-uniform across 35–350 ms.
		return 35 * math.Exp(inf.rng.Float64()*math.Log(10))
	default:
		return 350 + inf.rng.Float64()*650
	}
}

// newOrg allocates ASNs, prefixes and routing entries for a profile.
func (inf *Infra) newOrg(p OrgProfile) *Org {
	o := &Org{OrgProfile: p}
	for i := 0; i < p.ASNs; i++ {
		asn := inf.nextASN
		inf.nextASN++
		o.asns = append(o.asns, asn)
		if i == 0 {
			inf.Routing.SetASName(asn, fmt.Sprintf("%s - %s Inc., US", p.Name, p.Name))
		} else {
			inf.Routing.SetASName(asn, fmt.Sprintf("%s-%02d - %s Inc., US", p.Name, i+1, p.Name))
		}
		// One /16 per ASN, carved from 10.0.0.0/8-style space spread over
		// distinct /8s so the Hilbert heatmap shows dispersion.
		block := inf.nextBlock
		inf.nextBlock++
		a := byte(13 + block/200)
		b := byte(block % 200)
		pfx := netip.PrefixFrom(netip.AddrFrom4([4]byte{a, b, 0, 0}), 16)
		o.prefixes = append(o.prefixes, pfx)
		inf.Routing.Add(pfx, asn)
	}
	return o
}

// serverGroupPattern clusters consecutive server indices into shared
// /24 prefixes: five singletons, two pairs, one triple per cycle of
// twelve, approximating the paper's observed /24 density (48 % of
// prefixes hold one nameserver address, 24 % two, 7.7 % three).
var serverGroupPattern = []struct{ group, offset int }{
	{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0},
	{5, 0}, {5, 1},
	{6, 0}, {6, 1},
	{7, 0}, {7, 1}, {7, 2},
}

// NewServer mints a nameserver inside one of org's prefixes. Anycast
// orgs concentrate many logical servers on few addresses, so callers
// should mint fewer addresses for them.
func (inf *Infra) NewServer(o *Org, index int) *Server {
	pfx := o.prefixes[index%len(o.prefixes)]
	base := pfx.Addr().As4()
	// Spread across the /16 in clustered /24 groups.
	n := index / len(o.prefixes)
	cycle, pos := n/len(serverGroupPattern), n%len(serverGroupPattern)
	p24 := cycle*8 + serverGroupPattern[pos].group
	base[2] = byte((p24 * 13) % 250)
	base[3] = byte(1 + serverGroupPattern[pos].offset*17 + (p24*5)%60)
	delay := o.MeanDelayMs
	if delay <= 0 {
		delay = inf.tailDelay()
	}
	// Per-server spread around the org mean (lognormal, sigma 0.35).
	delay *= math.Exp(inf.rng.NormFloat64() * 0.35)
	if delay < 0.3 {
		delay = 0.3
	}
	hops := o.MeanHops
	if hops <= 0 {
		hops = hopsForDelay(delay)
	}
	h := int(hops + inf.rng.NormFloat64()*1.5 + 0.5)
	if h < 1 {
		h = 1
	}
	if h > 30 {
		h = 30
	}
	srv := &Server{
		Addr:        netip.AddrFrom4(base),
		Org:         o,
		BaseDelayMs: delay,
		Hops:        h,
		Impaired:    delay > 350,
	}
	// A quarter of the fleet also answers on an IPv6 address (the
	// paper's srvip top list mixes IPv4 and IPv6 nameservers).
	if inf.rng.Float64() < 0.25 {
		a16 := [16]byte{0x20, 0x01, 0x0d, 0xb8, 0x00, 0xa0}
		copy(a16[12:], base[:])
		srv.Addr6 = netip.AddrFrom16(a16)
	}
	return srv
}

// hopsForDelay maps a delay class to a plausible router distance,
// encoding the paper's observed delay–hops correlation.
func hopsForDelay(d float64) float64 {
	switch {
	case d < 5:
		return 3
	case d < 35:
		return 7
	case d < 150:
		return 11
	case d < 350:
		return 14
	default:
		return 17
	}
}

// buildRoots mints the 13 lettered root servers, spread across operators
// (PCH-style anycast for the fast letters, distinct orgs otherwise).
func (inf *Infra) buildRoots() {
	for i := 0; i < 13; i++ {
		o := inf.Tail[i] // 13 distinct root operators from the tail pool
		s := inf.NewServer(o, 0)
		s.BaseDelayMs = rootLetterDelay[i] * math.Exp(inf.rng.NormFloat64()*0.05)
		s.Hops = int(hopsForDelay(s.BaseDelayMs))
		// Canonical addresses so experiments can label letters.
		s.Addr = netip.AddrFrom4([4]byte{198, 41, byte(i), 4})
		inf.RootServers = append(inf.RootServers, s)
		inf.hierarchy[s.Addr] = true
		if s.Addr6.IsValid() {
			inf.hierarchy[s.Addr6] = true
		}
		inf.Routing.Add(netip.PrefixFrom(s.Addr, 24), o.asns[0])
	}
}

// buildGTLD mints the 13 lettered com/net registry servers (VERISIGN).
func (inf *Infra) buildGTLD() {
	verisign := inf.orgByName("VERISIGN")
	for i := 0; i < 13; i++ {
		s := inf.NewServer(verisign, i)
		s.BaseDelayMs = gtldLetterDelay[i] * math.Exp(inf.rng.NormFloat64()*0.05)
		s.Hops = int(hopsForDelay(s.BaseDelayMs))
		s.Addr = netip.AddrFrom4([4]byte{192, 5 + byte(i), 6, 30})
		inf.GTLDServers = append(inf.GTLDServers, s)
		inf.hierarchy[s.Addr] = true
		if s.Addr6.IsValid() {
			inf.hierarchy[s.Addr6] = true
		}
		inf.Routing.Add(netip.PrefixFrom(s.Addr, 24), verisign.asns[i%len(verisign.asns)])
	}
}

// CCTLDServer returns (minting on first use) the authoritative server
// for a ccTLD or non-com/net gTLD; these run on PCH-style anycast.
func (inf *Infra) CCTLDServer(tld string) *Server {
	if s, ok := inf.CCTLDByTLD[tld]; ok {
		return s
	}
	pch := inf.orgByName("PCH")
	s := inf.NewServer(pch, len(inf.CCTLDByTLD))
	inf.CCTLDByTLD[tld] = s
	inf.hierarchy[s.Addr] = true
	if s.Addr6.IsValid() {
		inf.hierarchy[s.Addr6] = true
	}
	return s
}

// orgByName finds a named organization.
func (inf *Infra) orgByName(name string) *Org {
	for _, o := range inf.Orgs {
		if o.Name == name {
			return o
		}
	}
	panic("simnet: unknown org " + name)
}

// PickHostingOrg draws a hosting organization for an SLD according to
// the Table 1 popularity shares, with the remainder going to the long
// tail.
func (inf *Infra) PickHostingOrg() *Org {
	u := inf.rng.Float64()
	var cum float64
	for _, o := range inf.Orgs {
		cum += o.HostShare
		if u < cum {
			return o
		}
	}
	return inf.Tail[inf.rng.Intn(len(inf.Tail))]
}

// PickHostingOrgRanked weights hosting by domain popularity: the head
// of the popularity distribution lives mostly on the big CDN / cloud
// providers (Table 1's named organizations), the tail on small hosters.
func (inf *Infra) PickHostingOrgRanked(rank, total int) *Org {
	if rank >= total/10 || inf.rng.Float64() >= 0.55 {
		return inf.PickHostingOrg()
	}
	var sum float64
	for _, o := range inf.Orgs {
		sum += o.HostShare
	}
	u := inf.rng.Float64() * sum
	for _, o := range inf.Orgs {
		u -= o.HostShare
		if u < 0 {
			return o
		}
	}
	return inf.Orgs[0]
}
