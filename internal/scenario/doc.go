// Package scenario loads simulation scenarios from JSON: the knobs of a
// simnet.Config, per-domain overrides (TTLs, IPv6, DNSSEC), and a
// schedule of infrastructure events. It is the configuration surface of
// cmd/dnsgen, letting users stage the paper's experiments — TTL slashes,
// negative-caching pathologies, renumberings — without writing Go.
//
// A minimal file:
//
//	{
//	  "duration_sec": 600,
//	  "qps": 1000,
//	  "domains": [
//	    {"index": 3, "attl": 750, "negttl": 15, "ipv6": false}
//	  ],
//	  "events": [
//	    {"at_sec": 300, "type": "ttl", "domain": 3, "ttl": 10},
//	    {"at_sec": 400, "type": "enable-v6", "domain": 3}
//	  ]
//	}
//
// Concurrency: loading happens once at startup and returns plain
// values; nothing here is shared or mutated afterwards.
package scenario
