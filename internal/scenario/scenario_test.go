package scenario

import (
	"strings"
	"testing"

	"dnsobservatory/internal/dnswire"
	"dnsobservatory/internal/sie"
)

const fixture = `{
  "seed": 7,
  "duration_sec": 120,
  "qps": 400,
  "resolvers": 40,
  "slds": 300,
  "happy_eyeballs_share": 0.9,
  "domains": [
    {"index": 2, "attl": 750, "negttl": 15, "ipv6": false},
    {"index": 5, "non_conforming": true}
  ],
  "events": [
    {"at_sec": 60, "type": "ttl", "domain": 2, "ttl": 10},
    {"at_sec": 80, "type": "enable-v6", "domain": 2}
  ]
}`

func TestLoadAndConfig(t *testing.T) {
	f, err := Load(strings.NewReader(fixture))
	if err != nil {
		t.Fatal(err)
	}
	cfg := f.Config()
	if cfg.Seed != 7 || cfg.Duration != 120 || cfg.QPS != 400 ||
		cfg.Resolvers != 40 || cfg.SLDs != 300 || cfg.HEShare != 0.9 {
		t.Errorf("config = %+v", cfg)
	}
	// Defaults inherited for unset fields.
	if cfg.Sensors == 0 || cfg.DelegCacheSec == 0 {
		t.Error("defaults not inherited")
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"bogus": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := Load(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestBuildAppliesOverridesAndEvents(t *testing.T) {
	f, err := Load(strings.NewReader(fixture))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	z := sim.Universe.SLDs[2]
	if z.ATTL != 750 || z.NegTTL != 15 || z.IPv6 {
		t.Errorf("overrides: %+v", z)
	}
	if !sim.Universe.SLDs[5].NonConforming {
		t.Error("non-conforming override lost")
	}

	// Run it: before t=60 the domain serves TTL 750; after, TTL 10;
	// after t=80 it serves AAAA data.
	var s sie.Summarizer
	var sum sie.Summary
	sawOld, sawNew, sawV6 := false, false, false
	sim.Run(func(tx *sie.Transaction) {
		if err := s.Summarize(tx, &sum); err != nil {
			t.Fatal(err)
		}
		if !sum.AA || sim.Universe.Suffixes.ESLD(sum.QName) != z.Name {
			return
		}
		for _, ttl := range sum.AnswerTTLs {
			switch ttl {
			case 750:
				sawOld = true
			case 10:
				sawNew = true
			}
		}
		if sum.QType == dnswire.TypeAAAA && len(sum.V6Addrs) > 0 {
			sawV6 = true
		}
	})
	if !sawOld || !sawNew || !sawV6 {
		t.Errorf("old=%v new=%v v6=%v", sawOld, sawNew, sawV6)
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []string{
		`{"slds": 10, "domains": [{"index": 99}]}`,
		`{"slds": 10, "events": [{"type": "warp", "domain": 0}]}`,
		`{"slds": 10, "events": [{"type": "renumber", "domain": 0, "addr": "zzz"}]}`,
	}
	for i, c := range cases {
		f, err := Load(strings.NewReader(c))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if _, err := f.Build(); err == nil {
			t.Errorf("case %d: Build accepted", i)
		}
	}
}

func TestAllEventTypes(t *testing.T) {
	doc := `{
	  "slds": 50, "duration_sec": 30, "qps": 100, "resolvers": 10,
	  "events": [
	    {"at_sec": 1, "type": "ttl", "domain": 0, "ttl": 30},
	    {"at_sec": 1, "type": "negttl", "domain": 1, "ttl": 30},
	    {"at_sec": 1, "type": "renumber", "domain": 2, "ttl": 600, "addr": "203.0.113.9"},
	    {"at_sec": 1, "type": "change-ns", "domain": 3, "provider": "dns.example"},
	    {"at_sec": 1, "type": "non-conforming", "domain": 4},
	    {"at_sec": 1, "type": "enable-v6", "domain": 5},
	    {"at_sec": 1, "type": "prsd-target", "domain": 6}
	  ]
	}`
	f, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(nil) // events fire without panicking
	if sim.Universe.SLDs[4].NonConforming != true {
		t.Error("non-conforming event not applied")
	}
	if sim.Universe.SLDs[0].ATTL != 30 {
		t.Error("ttl event not applied")
	}
}
