package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"net/netip"

	"dnsobservatory/internal/simnet"
)

// File is the JSON scenario document. Zero-valued simulation fields
// inherit simnet.DefaultConfig.
type File struct {
	// Comment is ignored; a place for humans to describe the scenario.
	Comment     string  `json:"_comment"`
	Seed        int64   `json:"seed"`
	DurationSec float64 `json:"duration_sec"`
	QPS         float64 `json:"qps"`
	Resolvers   int     `json:"resolvers"`
	Sensors     int     `json:"sensors"`
	SLDs        int     `json:"slds"`
	HEShare     float64 `json:"happy_eyeballs_share"`
	V6Share     float64 `json:"v6_server_share"`

	Domains []DomainOverride `json:"domains"`
	Events  []EventSpec      `json:"events"`
}

// DomainOverride adjusts one generated domain, addressed by its
// popularity index (0 = most popular).
type DomainOverride struct {
	Index         int    `json:"index"`
	ATTL          uint32 `json:"attl"`
	NegTTL        uint32 `json:"negttl"`
	IPv6          *bool  `json:"ipv6"`
	Signed        *bool  `json:"signed"`
	NonConforming bool   `json:"non_conforming"`
}

// EventSpec schedules one infrastructure change. Types: "ttl",
// "negttl", "renumber", "change-ns", "non-conforming", "enable-v6",
// "prsd-target".
type EventSpec struct {
	AtSec    float64 `json:"at_sec"`
	Type     string  `json:"type"`
	Domain   int     `json:"domain"`
	TTL      uint32  `json:"ttl"`
	Addr     string  `json:"addr"`     // renumber target base address
	Provider string  `json:"provider"` // change-ns provider label
}

// Load parses a scenario document.
func Load(r io.Reader) (*File, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return &f, nil
}

// Config converts the file's simulation knobs to a simnet.Config.
func (f *File) Config() simnet.Config {
	cfg := simnet.DefaultConfig()
	if f.Seed != 0 {
		cfg.Seed = f.Seed
	}
	if f.DurationSec > 0 {
		cfg.Duration = f.DurationSec
	}
	if f.QPS > 0 {
		cfg.QPS = f.QPS
	}
	if f.Resolvers > 0 {
		cfg.Resolvers = f.Resolvers
	}
	if f.Sensors > 0 {
		cfg.Sensors = f.Sensors
	}
	if f.SLDs > 0 {
		cfg.SLDs = f.SLDs
	}
	if f.HEShare > 0 {
		cfg.HEShare = f.HEShare
	}
	if f.V6Share > 0 {
		cfg.V6ServerShare = f.V6Share
	}
	return cfg
}

// Build instantiates the simulation, applies domain overrides and
// schedules the events.
func (f *File) Build() (*simnet.Sim, error) {
	return f.BuildWith(nil)
}

// BuildWith is Build with a config hook: mutate, when non-nil, adjusts
// the converted simnet.Config before the simulation is instantiated —
// how dnsgen attaches an encrypted client leg to a scenario file
// without the file format having to know about it.
func (f *File) BuildWith(mutate func(*simnet.Config)) (*simnet.Sim, error) {
	cfg := f.Config()
	if mutate != nil {
		mutate(&cfg)
	}
	sim := simnet.New(cfg)
	for _, d := range f.Domains {
		z, err := f.domain(sim, d.Index)
		if err != nil {
			return nil, err
		}
		if d.ATTL > 0 {
			z.ATTL = d.ATTL
		}
		if d.NegTTL > 0 {
			z.NegTTL = d.NegTTL
		}
		if d.IPv6 != nil {
			z.IPv6 = *d.IPv6
			for _, fq := range z.FQDNs {
				if *d.IPv6 {
					fq.V6Override = 1
				} else {
					fq.V6Override = 0
				}
			}
		}
		if d.Signed != nil {
			z.Signed = *d.Signed
		}
		if d.NonConforming {
			z.NonConforming = true
		}
	}
	for _, e := range f.Events {
		z, err := f.domain(sim, e.Domain)
		if err != nil {
			return nil, err
		}
		switch e.Type {
		case "ttl":
			sim.Schedule(simnet.TTLChangeEvent(e.AtSec, z.Name, e.TTL))
		case "negttl":
			sim.Schedule(simnet.NegTTLChangeEvent(e.AtSec, z.Name, e.TTL))
		case "renumber":
			addr, err := netip.ParseAddr(e.Addr)
			if err != nil {
				return nil, fmt.Errorf("scenario: renumber addr: %w", err)
			}
			sim.Schedule(simnet.RenumberEvent(e.AtSec, z.Name, addr, e.TTL))
		case "change-ns":
			provider := e.Provider
			if provider == "" {
				provider = "newdns.example"
			}
			sim.Schedule(simnet.NSChangeEvent(e.AtSec, z.Name, provider))
		case "non-conforming":
			sim.Schedule(simnet.NonConformingEvent(e.AtSec, z.Name))
		case "enable-v6":
			sim.Schedule(simnet.V6EnableEvent(e.AtSec, z.Name))
		case "prsd-target":
			sim.Schedule(simnet.PRSDTargetEvent(e.AtSec, z.Name))
		default:
			return nil, fmt.Errorf("scenario: unknown event type %q", e.Type)
		}
	}
	return sim, nil
}

func (f *File) domain(sim *simnet.Sim, idx int) (*simnet.SLD, error) {
	if idx < 0 || idx >= len(sim.Universe.SLDs) {
		return nil, fmt.Errorf("scenario: domain index %d out of range (%d domains)",
			idx, len(sim.Universe.SLDs))
	}
	return sim.Universe.SLDs[idx], nil
}
